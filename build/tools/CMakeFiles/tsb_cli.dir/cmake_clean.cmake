file(REMOVE_RECURSE
  "CMakeFiles/tsb_cli.dir/tsb_cli.cpp.o"
  "CMakeFiles/tsb_cli.dir/tsb_cli.cpp.o.d"
  "tsb"
  "tsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
