# Empty dependencies file for tsb_cli.
# This may be replaced when dependencies are built.
