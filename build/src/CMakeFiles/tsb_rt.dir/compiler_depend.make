# Empty compiler generated dependencies file for tsb_rt.
# This may be replaced when dependencies are built.
