file(REMOVE_RECURSE
  "CMakeFiles/tsb_rt.dir/rt/atomic_registers.cpp.o"
  "CMakeFiles/tsb_rt.dir/rt/atomic_registers.cpp.o.d"
  "CMakeFiles/tsb_rt.dir/rt/commit_adopt.cpp.o"
  "CMakeFiles/tsb_rt.dir/rt/commit_adopt.cpp.o.d"
  "CMakeFiles/tsb_rt.dir/rt/harness.cpp.o"
  "CMakeFiles/tsb_rt.dir/rt/harness.cpp.o.d"
  "CMakeFiles/tsb_rt.dir/rt/leader_election.cpp.o"
  "CMakeFiles/tsb_rt.dir/rt/leader_election.cpp.o.d"
  "CMakeFiles/tsb_rt.dir/rt/rt_consensus.cpp.o"
  "CMakeFiles/tsb_rt.dir/rt/rt_consensus.cpp.o.d"
  "CMakeFiles/tsb_rt.dir/rt/rt_counter.cpp.o"
  "CMakeFiles/tsb_rt.dir/rt/rt_counter.cpp.o.d"
  "CMakeFiles/tsb_rt.dir/rt/rt_mutex.cpp.o"
  "CMakeFiles/tsb_rt.dir/rt/rt_mutex.cpp.o.d"
  "CMakeFiles/tsb_rt.dir/rt/rt_snapshot.cpp.o"
  "CMakeFiles/tsb_rt.dir/rt/rt_snapshot.cpp.o.d"
  "libtsb_rt.a"
  "libtsb_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsb_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
