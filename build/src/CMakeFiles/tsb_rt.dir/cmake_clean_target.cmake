file(REMOVE_RECURSE
  "libtsb_rt.a"
)
