
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/atomic_registers.cpp" "src/CMakeFiles/tsb_rt.dir/rt/atomic_registers.cpp.o" "gcc" "src/CMakeFiles/tsb_rt.dir/rt/atomic_registers.cpp.o.d"
  "/root/repo/src/rt/commit_adopt.cpp" "src/CMakeFiles/tsb_rt.dir/rt/commit_adopt.cpp.o" "gcc" "src/CMakeFiles/tsb_rt.dir/rt/commit_adopt.cpp.o.d"
  "/root/repo/src/rt/harness.cpp" "src/CMakeFiles/tsb_rt.dir/rt/harness.cpp.o" "gcc" "src/CMakeFiles/tsb_rt.dir/rt/harness.cpp.o.d"
  "/root/repo/src/rt/leader_election.cpp" "src/CMakeFiles/tsb_rt.dir/rt/leader_election.cpp.o" "gcc" "src/CMakeFiles/tsb_rt.dir/rt/leader_election.cpp.o.d"
  "/root/repo/src/rt/rt_consensus.cpp" "src/CMakeFiles/tsb_rt.dir/rt/rt_consensus.cpp.o" "gcc" "src/CMakeFiles/tsb_rt.dir/rt/rt_consensus.cpp.o.d"
  "/root/repo/src/rt/rt_counter.cpp" "src/CMakeFiles/tsb_rt.dir/rt/rt_counter.cpp.o" "gcc" "src/CMakeFiles/tsb_rt.dir/rt/rt_counter.cpp.o.d"
  "/root/repo/src/rt/rt_mutex.cpp" "src/CMakeFiles/tsb_rt.dir/rt/rt_mutex.cpp.o" "gcc" "src/CMakeFiles/tsb_rt.dir/rt/rt_mutex.cpp.o.d"
  "/root/repo/src/rt/rt_snapshot.cpp" "src/CMakeFiles/tsb_rt.dir/rt/rt_snapshot.cpp.o" "gcc" "src/CMakeFiles/tsb_rt.dir/rt/rt_snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
