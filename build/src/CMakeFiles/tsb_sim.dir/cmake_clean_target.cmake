file(REMOVE_RECURSE
  "libtsb_sim.a"
)
