
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/config.cpp" "src/CMakeFiles/tsb_sim.dir/sim/config.cpp.o" "gcc" "src/CMakeFiles/tsb_sim.dir/sim/config.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/tsb_sim.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/tsb_sim.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/explorer.cpp" "src/CMakeFiles/tsb_sim.dir/sim/explorer.cpp.o" "gcc" "src/CMakeFiles/tsb_sim.dir/sim/explorer.cpp.o.d"
  "/root/repo/src/sim/model_checker.cpp" "src/CMakeFiles/tsb_sim.dir/sim/model_checker.cpp.o" "gcc" "src/CMakeFiles/tsb_sim.dir/sim/model_checker.cpp.o.d"
  "/root/repo/src/sim/protocol_search.cpp" "src/CMakeFiles/tsb_sim.dir/sim/protocol_search.cpp.o" "gcc" "src/CMakeFiles/tsb_sim.dir/sim/protocol_search.cpp.o.d"
  "/root/repo/src/sim/schedule.cpp" "src/CMakeFiles/tsb_sim.dir/sim/schedule.cpp.o" "gcc" "src/CMakeFiles/tsb_sim.dir/sim/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
