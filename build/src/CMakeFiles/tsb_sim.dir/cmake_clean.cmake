file(REMOVE_RECURSE
  "CMakeFiles/tsb_sim.dir/sim/config.cpp.o"
  "CMakeFiles/tsb_sim.dir/sim/config.cpp.o.d"
  "CMakeFiles/tsb_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/tsb_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/tsb_sim.dir/sim/explorer.cpp.o"
  "CMakeFiles/tsb_sim.dir/sim/explorer.cpp.o.d"
  "CMakeFiles/tsb_sim.dir/sim/model_checker.cpp.o"
  "CMakeFiles/tsb_sim.dir/sim/model_checker.cpp.o.d"
  "CMakeFiles/tsb_sim.dir/sim/protocol_search.cpp.o"
  "CMakeFiles/tsb_sim.dir/sim/protocol_search.cpp.o.d"
  "CMakeFiles/tsb_sim.dir/sim/schedule.cpp.o"
  "CMakeFiles/tsb_sim.dir/sim/schedule.cpp.o.d"
  "libtsb_sim.a"
  "libtsb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
