# Empty dependencies file for tsb_sim.
# This may be replaced when dependencies are built.
