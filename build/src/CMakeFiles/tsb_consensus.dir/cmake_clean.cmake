file(REMOVE_RECURSE
  "CMakeFiles/tsb_consensus.dir/consensus/ballot.cpp.o"
  "CMakeFiles/tsb_consensus.dir/consensus/ballot.cpp.o.d"
  "CMakeFiles/tsb_consensus.dir/consensus/historyless.cpp.o"
  "CMakeFiles/tsb_consensus.dir/consensus/historyless.cpp.o.d"
  "CMakeFiles/tsb_consensus.dir/consensus/kset.cpp.o"
  "CMakeFiles/tsb_consensus.dir/consensus/kset.cpp.o.d"
  "CMakeFiles/tsb_consensus.dir/consensus/racing.cpp.o"
  "CMakeFiles/tsb_consensus.dir/consensus/racing.cpp.o.d"
  "libtsb_consensus.a"
  "libtsb_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsb_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
