# Empty compiler generated dependencies file for tsb_consensus.
# This may be replaced when dependencies are built.
