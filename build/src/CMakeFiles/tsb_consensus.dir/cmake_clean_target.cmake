file(REMOVE_RECURSE
  "libtsb_consensus.a"
)
