
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/ballot.cpp" "src/CMakeFiles/tsb_consensus.dir/consensus/ballot.cpp.o" "gcc" "src/CMakeFiles/tsb_consensus.dir/consensus/ballot.cpp.o.d"
  "/root/repo/src/consensus/historyless.cpp" "src/CMakeFiles/tsb_consensus.dir/consensus/historyless.cpp.o" "gcc" "src/CMakeFiles/tsb_consensus.dir/consensus/historyless.cpp.o.d"
  "/root/repo/src/consensus/kset.cpp" "src/CMakeFiles/tsb_consensus.dir/consensus/kset.cpp.o" "gcc" "src/CMakeFiles/tsb_consensus.dir/consensus/kset.cpp.o.d"
  "/root/repo/src/consensus/racing.cpp" "src/CMakeFiles/tsb_consensus.dir/consensus/racing.cpp.o" "gcc" "src/CMakeFiles/tsb_consensus.dir/consensus/racing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tsb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
