# Empty dependencies file for tsb_util.
# This may be replaced when dependencies are built.
