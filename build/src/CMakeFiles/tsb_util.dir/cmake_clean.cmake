file(REMOVE_RECURSE
  "CMakeFiles/tsb_util.dir/util/interner.cpp.o"
  "CMakeFiles/tsb_util.dir/util/interner.cpp.o.d"
  "CMakeFiles/tsb_util.dir/util/rng.cpp.o"
  "CMakeFiles/tsb_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/tsb_util.dir/util/stats.cpp.o"
  "CMakeFiles/tsb_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/tsb_util.dir/util/table.cpp.o"
  "CMakeFiles/tsb_util.dir/util/table.cpp.o.d"
  "libtsb_util.a"
  "libtsb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
