file(REMOVE_RECURSE
  "libtsb_util.a"
)
