
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bound/adversary.cpp" "src/CMakeFiles/tsb_bound.dir/bound/adversary.cpp.o" "gcc" "src/CMakeFiles/tsb_bound.dir/bound/adversary.cpp.o.d"
  "/root/repo/src/bound/certificate.cpp" "src/CMakeFiles/tsb_bound.dir/bound/certificate.cpp.o" "gcc" "src/CMakeFiles/tsb_bound.dir/bound/certificate.cpp.o.d"
  "/root/repo/src/bound/covering.cpp" "src/CMakeFiles/tsb_bound.dir/bound/covering.cpp.o" "gcc" "src/CMakeFiles/tsb_bound.dir/bound/covering.cpp.o.d"
  "/root/repo/src/bound/lemmas.cpp" "src/CMakeFiles/tsb_bound.dir/bound/lemmas.cpp.o" "gcc" "src/CMakeFiles/tsb_bound.dir/bound/lemmas.cpp.o.d"
  "/root/repo/src/bound/valency.cpp" "src/CMakeFiles/tsb_bound.dir/bound/valency.cpp.o" "gcc" "src/CMakeFiles/tsb_bound.dir/bound/valency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tsb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
