# Empty dependencies file for tsb_bound.
# This may be replaced when dependencies are built.
