file(REMOVE_RECURSE
  "CMakeFiles/tsb_bound.dir/bound/adversary.cpp.o"
  "CMakeFiles/tsb_bound.dir/bound/adversary.cpp.o.d"
  "CMakeFiles/tsb_bound.dir/bound/certificate.cpp.o"
  "CMakeFiles/tsb_bound.dir/bound/certificate.cpp.o.d"
  "CMakeFiles/tsb_bound.dir/bound/covering.cpp.o"
  "CMakeFiles/tsb_bound.dir/bound/covering.cpp.o.d"
  "CMakeFiles/tsb_bound.dir/bound/lemmas.cpp.o"
  "CMakeFiles/tsb_bound.dir/bound/lemmas.cpp.o.d"
  "CMakeFiles/tsb_bound.dir/bound/valency.cpp.o"
  "CMakeFiles/tsb_bound.dir/bound/valency.cpp.o.d"
  "libtsb_bound.a"
  "libtsb_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsb_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
