file(REMOVE_RECURSE
  "libtsb_bound.a"
)
