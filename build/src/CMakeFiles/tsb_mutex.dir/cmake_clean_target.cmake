file(REMOVE_RECURSE
  "libtsb_mutex.a"
)
