file(REMOVE_RECURSE
  "CMakeFiles/tsb_mutex.dir/mutex/algorithm.cpp.o"
  "CMakeFiles/tsb_mutex.dir/mutex/algorithm.cpp.o.d"
  "CMakeFiles/tsb_mutex.dir/mutex/bakery.cpp.o"
  "CMakeFiles/tsb_mutex.dir/mutex/bakery.cpp.o.d"
  "CMakeFiles/tsb_mutex.dir/mutex/burns_lynch.cpp.o"
  "CMakeFiles/tsb_mutex.dir/mutex/burns_lynch.cpp.o.d"
  "CMakeFiles/tsb_mutex.dir/mutex/canonical.cpp.o"
  "CMakeFiles/tsb_mutex.dir/mutex/canonical.cpp.o.d"
  "CMakeFiles/tsb_mutex.dir/mutex/cost_model.cpp.o"
  "CMakeFiles/tsb_mutex.dir/mutex/cost_model.cpp.o.d"
  "CMakeFiles/tsb_mutex.dir/mutex/encoder.cpp.o"
  "CMakeFiles/tsb_mutex.dir/mutex/encoder.cpp.o.d"
  "CMakeFiles/tsb_mutex.dir/mutex/peterson.cpp.o"
  "CMakeFiles/tsb_mutex.dir/mutex/peterson.cpp.o.d"
  "CMakeFiles/tsb_mutex.dir/mutex/tournament.cpp.o"
  "CMakeFiles/tsb_mutex.dir/mutex/tournament.cpp.o.d"
  "CMakeFiles/tsb_mutex.dir/mutex/visibility.cpp.o"
  "CMakeFiles/tsb_mutex.dir/mutex/visibility.cpp.o.d"
  "libtsb_mutex.a"
  "libtsb_mutex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsb_mutex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
