
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mutex/algorithm.cpp" "src/CMakeFiles/tsb_mutex.dir/mutex/algorithm.cpp.o" "gcc" "src/CMakeFiles/tsb_mutex.dir/mutex/algorithm.cpp.o.d"
  "/root/repo/src/mutex/bakery.cpp" "src/CMakeFiles/tsb_mutex.dir/mutex/bakery.cpp.o" "gcc" "src/CMakeFiles/tsb_mutex.dir/mutex/bakery.cpp.o.d"
  "/root/repo/src/mutex/burns_lynch.cpp" "src/CMakeFiles/tsb_mutex.dir/mutex/burns_lynch.cpp.o" "gcc" "src/CMakeFiles/tsb_mutex.dir/mutex/burns_lynch.cpp.o.d"
  "/root/repo/src/mutex/canonical.cpp" "src/CMakeFiles/tsb_mutex.dir/mutex/canonical.cpp.o" "gcc" "src/CMakeFiles/tsb_mutex.dir/mutex/canonical.cpp.o.d"
  "/root/repo/src/mutex/cost_model.cpp" "src/CMakeFiles/tsb_mutex.dir/mutex/cost_model.cpp.o" "gcc" "src/CMakeFiles/tsb_mutex.dir/mutex/cost_model.cpp.o.d"
  "/root/repo/src/mutex/encoder.cpp" "src/CMakeFiles/tsb_mutex.dir/mutex/encoder.cpp.o" "gcc" "src/CMakeFiles/tsb_mutex.dir/mutex/encoder.cpp.o.d"
  "/root/repo/src/mutex/peterson.cpp" "src/CMakeFiles/tsb_mutex.dir/mutex/peterson.cpp.o" "gcc" "src/CMakeFiles/tsb_mutex.dir/mutex/peterson.cpp.o.d"
  "/root/repo/src/mutex/tournament.cpp" "src/CMakeFiles/tsb_mutex.dir/mutex/tournament.cpp.o" "gcc" "src/CMakeFiles/tsb_mutex.dir/mutex/tournament.cpp.o.d"
  "/root/repo/src/mutex/visibility.cpp" "src/CMakeFiles/tsb_mutex.dir/mutex/visibility.cpp.o" "gcc" "src/CMakeFiles/tsb_mutex.dir/mutex/visibility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
