# Empty compiler generated dependencies file for tsb_mutex.
# This may be replaced when dependencies are built.
