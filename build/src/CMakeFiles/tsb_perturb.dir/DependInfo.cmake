
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perturb/counter.cpp" "src/CMakeFiles/tsb_perturb.dir/perturb/counter.cpp.o" "gcc" "src/CMakeFiles/tsb_perturb.dir/perturb/counter.cpp.o.d"
  "/root/repo/src/perturb/fetch_add.cpp" "src/CMakeFiles/tsb_perturb.dir/perturb/fetch_add.cpp.o" "gcc" "src/CMakeFiles/tsb_perturb.dir/perturb/fetch_add.cpp.o.d"
  "/root/repo/src/perturb/long_lived.cpp" "src/CMakeFiles/tsb_perturb.dir/perturb/long_lived.cpp.o" "gcc" "src/CMakeFiles/tsb_perturb.dir/perturb/long_lived.cpp.o.d"
  "/root/repo/src/perturb/perturbation.cpp" "src/CMakeFiles/tsb_perturb.dir/perturb/perturbation.cpp.o" "gcc" "src/CMakeFiles/tsb_perturb.dir/perturb/perturbation.cpp.o.d"
  "/root/repo/src/perturb/snapshot.cpp" "src/CMakeFiles/tsb_perturb.dir/perturb/snapshot.cpp.o" "gcc" "src/CMakeFiles/tsb_perturb.dir/perturb/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tsb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
