file(REMOVE_RECURSE
  "libtsb_perturb.a"
)
