# Empty dependencies file for tsb_perturb.
# This may be replaced when dependencies are built.
