file(REMOVE_RECURSE
  "CMakeFiles/tsb_perturb.dir/perturb/counter.cpp.o"
  "CMakeFiles/tsb_perturb.dir/perturb/counter.cpp.o.d"
  "CMakeFiles/tsb_perturb.dir/perturb/fetch_add.cpp.o"
  "CMakeFiles/tsb_perturb.dir/perturb/fetch_add.cpp.o.d"
  "CMakeFiles/tsb_perturb.dir/perturb/long_lived.cpp.o"
  "CMakeFiles/tsb_perturb.dir/perturb/long_lived.cpp.o.d"
  "CMakeFiles/tsb_perturb.dir/perturb/perturbation.cpp.o"
  "CMakeFiles/tsb_perturb.dir/perturb/perturbation.cpp.o.d"
  "CMakeFiles/tsb_perturb.dir/perturb/snapshot.cpp.o"
  "CMakeFiles/tsb_perturb.dir/perturb/snapshot.cpp.o.d"
  "libtsb_perturb.a"
  "libtsb_perturb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsb_perturb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
