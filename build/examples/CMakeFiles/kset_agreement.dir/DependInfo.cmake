
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/kset_agreement.cpp" "examples/CMakeFiles/kset_agreement.dir/kset_agreement.cpp.o" "gcc" "examples/CMakeFiles/kset_agreement.dir/kset_agreement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tsb_bound.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tsb_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tsb_perturb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tsb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tsb_mutex.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tsb_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
