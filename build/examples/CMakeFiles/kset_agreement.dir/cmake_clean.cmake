file(REMOVE_RECURSE
  "CMakeFiles/kset_agreement.dir/kset_agreement.cpp.o"
  "CMakeFiles/kset_agreement.dir/kset_agreement.cpp.o.d"
  "kset_agreement"
  "kset_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kset_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
