# Empty compiler generated dependencies file for kset_agreement.
# This may be replaced when dependencies are built.
