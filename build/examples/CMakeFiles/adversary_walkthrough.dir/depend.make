# Empty dependencies file for adversary_walkthrough.
# This may be replaced when dependencies are built.
