file(REMOVE_RECURSE
  "CMakeFiles/adversary_walkthrough.dir/adversary_walkthrough.cpp.o"
  "CMakeFiles/adversary_walkthrough.dir/adversary_walkthrough.cpp.o.d"
  "adversary_walkthrough"
  "adversary_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
