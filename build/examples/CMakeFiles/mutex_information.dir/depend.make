# Empty dependencies file for mutex_information.
# This may be replaced when dependencies are built.
