file(REMOVE_RECURSE
  "CMakeFiles/mutex_information.dir/mutex_information.cpp.o"
  "CMakeFiles/mutex_information.dir/mutex_information.cpp.o.d"
  "mutex_information"
  "mutex_information.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_information.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
