# Empty dependencies file for randomized_duel.
# This may be replaced when dependencies are built.
