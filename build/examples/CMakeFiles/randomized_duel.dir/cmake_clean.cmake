file(REMOVE_RECURSE
  "CMakeFiles/randomized_duel.dir/randomized_duel.cpp.o"
  "CMakeFiles/randomized_duel.dir/randomized_duel.cpp.o.d"
  "randomized_duel"
  "randomized_duel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomized_duel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
