# Empty compiler generated dependencies file for bench_historyless.
# This may be replaced when dependencies are built.
