file(REMOVE_RECURSE
  "CMakeFiles/bench_historyless.dir/bench_historyless.cpp.o"
  "CMakeFiles/bench_historyless.dir/bench_historyless.cpp.o.d"
  "bench_historyless"
  "bench_historyless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_historyless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
