file(REMOVE_RECURSE
  "CMakeFiles/bench_space_bound.dir/bench_space_bound.cpp.o"
  "CMakeFiles/bench_space_bound.dir/bench_space_bound.cpp.o.d"
  "bench_space_bound"
  "bench_space_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_space_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
