# Empty compiler generated dependencies file for bench_rt_space.
# This may be replaced when dependencies are built.
