file(REMOVE_RECURSE
  "CMakeFiles/bench_rt_space.dir/bench_rt_space.cpp.o"
  "CMakeFiles/bench_rt_space.dir/bench_rt_space.cpp.o.d"
  "bench_rt_space"
  "bench_rt_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rt_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
