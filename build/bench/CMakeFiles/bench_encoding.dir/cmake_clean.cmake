file(REMOVE_RECURSE
  "CMakeFiles/bench_encoding.dir/bench_encoding.cpp.o"
  "CMakeFiles/bench_encoding.dir/bench_encoding.cpp.o.d"
  "bench_encoding"
  "bench_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
