# Empty compiler generated dependencies file for bench_perturbable.
# This may be replaced when dependencies are built.
