file(REMOVE_RECURSE
  "CMakeFiles/bench_perturbable.dir/bench_perturbable.cpp.o"
  "CMakeFiles/bench_perturbable.dir/bench_perturbable.cpp.o.d"
  "bench_perturbable"
  "bench_perturbable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perturbable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
