# Empty dependencies file for bench_mutex_cost.
# This may be replaced when dependencies are built.
