file(REMOVE_RECURSE
  "CMakeFiles/bench_mutex_cost.dir/bench_mutex_cost.cpp.o"
  "CMakeFiles/bench_mutex_cost.dir/bench_mutex_cost.cpp.o.d"
  "bench_mutex_cost"
  "bench_mutex_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mutex_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
