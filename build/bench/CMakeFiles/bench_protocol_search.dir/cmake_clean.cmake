file(REMOVE_RECURSE
  "CMakeFiles/bench_protocol_search.dir/bench_protocol_search.cpp.o"
  "CMakeFiles/bench_protocol_search.dir/bench_protocol_search.cpp.o.d"
  "bench_protocol_search"
  "bench_protocol_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocol_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
