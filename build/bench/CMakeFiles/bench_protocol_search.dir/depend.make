# Empty dependencies file for bench_protocol_search.
# This may be replaced when dependencies are built.
