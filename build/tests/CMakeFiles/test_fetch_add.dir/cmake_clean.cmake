file(REMOVE_RECURSE
  "CMakeFiles/test_fetch_add.dir/test_fetch_add.cpp.o"
  "CMakeFiles/test_fetch_add.dir/test_fetch_add.cpp.o.d"
  "test_fetch_add"
  "test_fetch_add.pdb"
  "test_fetch_add[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fetch_add.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
