# Empty compiler generated dependencies file for test_fetch_add.
# This may be replaced when dependencies are built.
