# Empty dependencies file for test_burns_lynch.
# This may be replaced when dependencies are built.
