file(REMOVE_RECURSE
  "CMakeFiles/test_burns_lynch.dir/test_burns_lynch.cpp.o"
  "CMakeFiles/test_burns_lynch.dir/test_burns_lynch.cpp.o.d"
  "test_burns_lynch"
  "test_burns_lynch.pdb"
  "test_burns_lynch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_burns_lynch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
