# Empty dependencies file for test_protocol_search.
# This may be replaced when dependencies are built.
