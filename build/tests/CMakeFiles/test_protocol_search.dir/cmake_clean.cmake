file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_search.dir/test_protocol_search.cpp.o"
  "CMakeFiles/test_protocol_search.dir/test_protocol_search.cpp.o.d"
  "test_protocol_search"
  "test_protocol_search.pdb"
  "test_protocol_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
