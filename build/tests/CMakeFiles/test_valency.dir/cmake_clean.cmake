file(REMOVE_RECURSE
  "CMakeFiles/test_valency.dir/test_valency.cpp.o"
  "CMakeFiles/test_valency.dir/test_valency.cpp.o.d"
  "test_valency"
  "test_valency.pdb"
  "test_valency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_valency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
