file(REMOVE_RECURSE
  "CMakeFiles/test_historyless.dir/test_historyless.cpp.o"
  "CMakeFiles/test_historyless.dir/test_historyless.cpp.o.d"
  "test_historyless"
  "test_historyless.pdb"
  "test_historyless[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_historyless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
