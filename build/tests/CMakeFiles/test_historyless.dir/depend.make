# Empty dependencies file for test_historyless.
# This may be replaced when dependencies are built.
