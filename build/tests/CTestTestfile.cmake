# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_valency[1]_include.cmake")
include("/root/repo/build/tests/test_lemmas[1]_include.cmake")
include("/root/repo/build/tests/test_adversary[1]_include.cmake")
include("/root/repo/build/tests/test_consensus[1]_include.cmake")
include("/root/repo/build/tests/test_model_checker[1]_include.cmake")
include("/root/repo/build/tests/test_perturb[1]_include.cmake")
include("/root/repo/build/tests/test_mutex[1]_include.cmake")
include("/root/repo/build/tests/test_encoder[1]_include.cmake")
include("/root/repo/build/tests/test_rt[1]_include.cmake")
include("/root/repo/build/tests/test_protocol_search[1]_include.cmake")
include("/root/repo/build/tests/test_historyless[1]_include.cmake")
include("/root/repo/build/tests/test_burns_lynch[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_fetch_add[1]_include.cmake")
