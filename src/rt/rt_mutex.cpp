#include "rt/rt_mutex.hpp"

#include <cassert>

#include "rt/harness.hpp"

namespace tsb::rt {

// ---------------------------------------------------------------------------
// RtPetersonMutex
// ---------------------------------------------------------------------------

RtPetersonMutex::RtPetersonMutex(int n)
    : n_(n), regs_(static_cast<std::size_t>(2 * n - 1)) {
  assert(n >= 2);
  // level[i] starts at "-1"; stored with +1 offset, so 0 is correct.
}

std::string RtPetersonMutex::name() const {
  return "rt-peterson(n=" + std::to_string(n_) + ")";
}

void RtPetersonMutex::lock(int p) {
  for (int m = 0; m < n_ - 1; ++m) {
    regs_.write(static_cast<std::size_t>(p),
                static_cast<std::uint64_t>(m + 1));  // level[p] = m
    regs_.write(static_cast<std::size_t>(n_ + m),
                static_cast<std::uint64_t>(p + 1));  // waiting[m] = p
    std::uint32_t round = 0;
    for (;;) {
      if (regs_.read(static_cast<std::size_t>(n_ + m)) !=
          static_cast<std::uint64_t>(p + 1)) {
        break;  // someone else is the waiter now
      }
      bool higher = false;
      for (int k = 0; k < n_ && !higher; ++k) {
        if (k == p) continue;
        if (regs_.read(static_cast<std::size_t>(k)) >=
            static_cast<std::uint64_t>(m + 1)) {
          higher = true;
        }
      }
      if (!higher) break;  // nobody at level >= m anymore
      spin_backoff(round);
    }
  }
}

void RtPetersonMutex::unlock(int p) {
  regs_.write(static_cast<std::size_t>(p), 0);  // level[p] = -1
}

// ---------------------------------------------------------------------------
// RtTournamentMutex
// ---------------------------------------------------------------------------

namespace {
int leaves_for(int n) {
  int leaves = 1;
  while (leaves < n) leaves <<= 1;
  return leaves;
}
int height_for(int n) {
  int leaves = 1, height = 0;
  while (leaves < n) {
    leaves <<= 1;
    ++height;
  }
  return height;
}
}  // namespace

RtTournamentMutex::RtTournamentMutex(int n)
    : n_(n),
      leaves_(leaves_for(n)),
      height_(height_for(n)),
      regs_(static_cast<std::size_t>(3 * (leaves_for(n) - 1))) {
  assert(n >= 2);
}

std::string RtTournamentMutex::name() const {
  return "rt-tournament(n=" + std::to_string(n_) + ")";
}

void RtTournamentMutex::lock(int p) {
  for (int level = 1; level <= height_; ++level) {
    const int node = node_at(p, level);
    const int side = side_at(p, level);
    regs_.write(reg_flag(node, side), 1);
    regs_.write(reg_turn(node), static_cast<std::uint64_t>(side));
    std::uint32_t round = 0;
    while (regs_.read(reg_flag(node, 1 - side)) == 1 &&
           regs_.read(reg_turn(node)) == static_cast<std::uint64_t>(side)) {
      spin_backoff(round);
    }
  }
}

void RtTournamentMutex::unlock(int p) {
  for (int level = height_; level >= 1; --level) {
    const int node = node_at(p, level);
    const int side = side_at(p, level);
    regs_.write(reg_flag(node, side), 0);
  }
}

// ---------------------------------------------------------------------------
// RtBakeryMutex
// ---------------------------------------------------------------------------

RtBakeryMutex::RtBakeryMutex(int n)
    : n_(n), regs_(static_cast<std::size_t>(2 * n)) {
  assert(n >= 2);
}

std::string RtBakeryMutex::name() const {
  return "rt-bakery(n=" + std::to_string(n_) + ")";
}

void RtBakeryMutex::lock(int p) {
  // Doorway: draw a ticket one larger than everything currently visible.
  regs_.write(reg_choosing(p), 1);
  std::uint64_t max = 0;
  for (int k = 0; k < n_; ++k) {
    const std::uint64_t num = regs_.read(reg_number(k));
    if (num > max) max = num;
  }
  const std::uint64_t ticket = max + 1;
  regs_.write(reg_number(p), ticket);
  regs_.write(reg_choosing(p), 0);
  // Wait for every smaller (ticket, id) pair to leave.
  for (int k = 0; k < n_; ++k) {
    if (k == p) continue;
    std::uint32_t round = 0;
    while (regs_.read(reg_choosing(k)) == 1) {
      spin_backoff(round);
    }
    round = 0;
    for (;;) {
      const std::uint64_t num = regs_.read(reg_number(k));
      if (num == 0 || num > ticket ||
          (num == ticket && k > p)) {
        break;
      }
      spin_backoff(round);
    }
  }
}

void RtBakeryMutex::unlock(int p) { regs_.write(reg_number(p), 0); }

}  // namespace tsb::rt
