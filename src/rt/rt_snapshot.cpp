#include "rt/rt_snapshot.hpp"

#include <cassert>

#include "rt/harness.hpp"

namespace tsb::rt {

RtSwmrSnapshot::RtSwmrSnapshot(int n)
    : n_(n),
      regs_(static_cast<std::size_t>(n)),
      seq_(static_cast<std::size_t>(n), 0) {
  assert(n >= 1);
}

void RtSwmrSnapshot::update(int p, std::uint32_t v) {
  const std::uint64_t seq = ++seq_[static_cast<std::size_t>(p)];
  regs_.write(static_cast<std::size_t>(p), (seq << 32) | v);
}

std::vector<std::uint32_t> RtSwmrSnapshot::scan() const {
  std::vector<std::uint64_t> a(static_cast<std::size_t>(n_));
  std::vector<std::uint64_t> b(static_cast<std::size_t>(n_));
  auto collect = [&](std::vector<std::uint64_t>& view) {
    for (int q = 0; q < n_; ++q) {
      view[static_cast<std::size_t>(q)] =
          regs_.read(static_cast<std::size_t>(q));
    }
  };
  collect(a);
  std::uint32_t round = 0;
  for (;;) {
    collect(b);
    if (a == b) break;
    retries_.fetch_add(1, std::memory_order_relaxed);
    a.swap(b);
    spin_backoff(round);
  }
  std::vector<std::uint32_t> out(static_cast<std::size_t>(n_));
  for (int q = 0; q < n_; ++q) {
    out[static_cast<std::size_t>(q)] =
        static_cast<std::uint32_t>(a[static_cast<std::size_t>(q)]);
  }
  return out;
}

}  // namespace tsb::rt
