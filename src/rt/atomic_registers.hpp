#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"

namespace tsb::rt {

/// An array of atomic (linearizable) shared registers with built-in space
/// and step instrumentation — the runtime counterpart of the simulator's
/// register model, used by every multithreaded implementation.
///
/// All accesses are seq_cst: atomic registers in the literature are
/// linearizable MWMR registers, and seq_cst loads/stores of a single
/// std::atomic word provide exactly that (plus a convenient global order).
///
/// Instrumentation answers the experiments' questions directly:
///  * distinct_registers_written() — the space actually exercised, the
///    quantity the n-1 lower bound constrains;
///  * total reads/writes — step counts for the work experiments.
/// Counting goes through the obs metrics layer: per-thread sharded relaxed
/// counters, so instrumentation adds no shared contended cache line to the
/// algorithm being measured. The accessors are thin views over those
/// metrics. When tracing is enabled, each access also lands on the calling
/// thread's trace timeline and the running distinct-registers count is
/// emitted as a "rt.covered" counter track.
class AtomicRegisterArray {
 public:
  explicit AtomicRegisterArray(std::size_t size);
  ~AtomicRegisterArray();

  std::size_t size() const { return size_; }

  std::uint64_t read(std::size_t r) const;
  void write(std::size_t r, std::uint64_t v);

  std::uint64_t total_reads() const { return reads_.value(); }
  std::uint64_t total_writes() const { return writes_.value(); }
  std::size_t distinct_registers_written() const {
    return distinct_.load(std::memory_order_relaxed);
  }
  std::vector<std::size_t> written_registers() const;

  /// Clears counters and written-marks (not register contents).
  void reset_stats();
  /// Resets contents to `value` as well.
  void reset(std::uint64_t value = 0);

 private:
  // One cache line per register: the experiments measure algorithmic
  // communication, which false sharing would contaminate.
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint8_t> written{0};
  };

  std::size_t size_;
  std::unique_ptr<Cell[]> cells_;
  mutable obs::Counter reads_;
  obs::Counter writes_;
  std::atomic<std::size_t> distinct_{0};
};

}  // namespace tsb::rt
