#include "rt/rt_consensus.hpp"

#include <algorithm>
#include <cassert>

#include "rt/harness.hpp"
#include "util/require.hpp"

namespace tsb::rt {

// ---------------------------------------------------------------------------
// RtBallotConsensus
// ---------------------------------------------------------------------------

RtBallotConsensus::RtBallotConsensus(int n)
    : n_(n), regs_(static_cast<std::size_t>(n)) {
  assert(n >= 1);
}

std::string RtBallotConsensus::name() const {
  return "rt-ballot(n=" + std::to_string(n_) + ")";
}

// Word layout: mb and ab get 24 bits each, av the low 16 (value+1; 0 = none).
std::uint64_t RtBallotConsensus::pack(std::uint64_t mb, std::uint64_t ab,
                                      std::uint64_t av) {
  return (mb << 40) | (ab << 16) | av;
}

void RtBallotConsensus::unpack(std::uint64_t word, std::uint64_t& mb,
                               std::uint64_t& ab, std::uint64_t& av) {
  mb = word >> 40;
  ab = (word >> 16) & 0xffffff;
  av = word & 0xffff;
}

std::uint64_t RtBallotConsensus::propose(int p, std::uint64_t v) {
  assert(v < (1ull << 15));
  const auto un = static_cast<std::uint64_t>(n_);
  std::uint64_t b = static_cast<std::uint64_t>(p) + 1;  // own ballots: p+1+kn
  std::uint64_t my_ab = 0;
  std::uint64_t my_av = 0;  // encoded value+1; 0 = none
  util::Rng backoff(util::mix64(static_cast<std::uint64_t>(p) + 0x5157));
  std::uint64_t retries = 0;

  auto relax = [&] {
    // Randomized backoff breaks ballot-race livelock between symmetric
    // threads; obstruction freedom guarantees whoever gets a quiet window
    // finishes in two phases. Yielding keeps single-core machines moving.
    std::uint32_t round = retries > 2 ? 1000 : 0;  // yield quickly
    const std::uint64_t spins =
        backoff.below(1ull << std::min<std::uint64_t>(4 + retries, 10));
    for (std::uint64_t i = 0; i < spins; ++i) spin_backoff(round);
    ++retries;
  };

  for (;;) {
    // Prepare: announce the ballot, keep the accepted fields.
    regs_.write(static_cast<std::size_t>(p), pack(b, my_ab, my_av));

    std::uint64_t highest = 0;
    std::uint64_t best_ab = 0;
    std::uint64_t best_av = 0;
    for (int q = 0; q < n_; ++q) {
      std::uint64_t mb, ab, av;
      unpack(regs_.read(static_cast<std::size_t>(q)), mb, ab, av);
      highest = std::max(highest, std::max(mb, ab));
      if (ab > best_ab) {
        best_ab = ab;
        best_av = av;
      }
    }
    if (highest > b) {
      while (b <= highest) b += un;
      relax();
      continue;
    }

    // Accept the value of the highest accepted ballot (or our input).
    const std::uint64_t w = best_ab > 0 ? best_av : v + 1;
    my_ab = b;
    my_av = w;
    regs_.write(static_cast<std::size_t>(p), pack(b, b, w));

    std::uint64_t above = 0;
    for (int q = 0; q < n_; ++q) {
      std::uint64_t mb, ab, av;
      unpack(regs_.read(static_cast<std::size_t>(q)), mb, ab, av);
      above = std::max(above, std::max(mb, ab));
    }
    if (above > b) {
      while (b <= above) b += un;
      relax();
      continue;
    }
    return w - 1;  // chosen
  }
}

// ---------------------------------------------------------------------------
// RtRoundsConsensus
// ---------------------------------------------------------------------------

RtRoundsConsensus::RtRoundsConsensus(int n, int max_rounds)
    : n_(n),
      max_rounds_(max_rounds),
      regs_(CommitAdopt::registers_needed(n) *
            static_cast<std::size_t>(max_rounds)) {}

std::string RtRoundsConsensus::name() const {
  return "rt-rounds(n=" + std::to_string(n_) + ")";
}

std::uint64_t RtRoundsConsensus::propose(int p, std::uint64_t v) {
  std::uint64_t pref = v;
  for (int r = 0; r < max_rounds_; ++r) {
    CommitAdopt ca(regs_, CommitAdopt::registers_needed(n_) *
                              static_cast<std::size_t>(r),
                   n_);
    const CommitAdopt::Result res = ca.propose(p, pref);
    pref = res.value;
    if (res.commit) return pref;
    std::uint32_t round = 1000;  // contention proven: yield immediately
    spin_backoff(round);
  }
  // Loud in release builds too: under an adversarial schedule, running off
  // the end of the bank would otherwise continue into out-of-range
  // registers. (The array's own bounds check is the second line of
  // defense.)
  TSB_REQUIRE(false, "round bank exhausted: pathological contention");
  return pref;
}

// ---------------------------------------------------------------------------
// RtRandomizedConsensus
// ---------------------------------------------------------------------------

RtRandomizedConsensus::RtRandomizedConsensus(int n, Coin coin,
                                             std::uint64_t seed,
                                             int max_rounds)
    : n_(n),
      coin_(coin),
      max_rounds_(max_rounds),
      seed_(seed),
      // Per round: 2n commit-adopt registers plus n voting registers.
      regs_(static_cast<std::size_t>(3 * n) *
            static_cast<std::size_t>(max_rounds)) {}

std::string RtRandomizedConsensus::name() const {
  return std::string("rt-randomized(") +
         (coin_ == Coin::kLocal ? "local-coin" : "voting-coin") +
         ", n=" + std::to_string(n_) + ")";
}

void RtRandomizedConsensus::reset() {
  regs_.reset(0);
  max_round_used_.store(0, std::memory_order_relaxed);
}

std::uint64_t RtRandomizedConsensus::shared_coin(int p, int round,
                                                 util::Rng& rng) {
  if (coin_ == Coin::kLocal) return rng.coin() ? 1 : 0;
  // Voting coin: everyone publishes one +/-1 vote for this round in its
  // own register, collects all votes, and takes the sign of the sum.
  // Against the schedulers real threads produce, all processes usually
  // read the same full bank and agree.
  const std::size_t base = static_cast<std::size_t>(3 * n_) *
                               static_cast<std::size_t>(round) +
                           static_cast<std::size_t>(2 * n_);
  // Encode +1 as 2, -1 as 1, empty as 0.
  regs_.write(base + static_cast<std::size_t>(p), rng.coin() ? 2 : 1);
  std::int64_t sum = 0;
  for (int q = 0; q < n_; ++q) {
    const std::uint64_t e = regs_.read(base + static_cast<std::size_t>(q));
    if (e == 2) ++sum;
    if (e == 1) --sum;
  }
  return sum >= 0 ? 1 : 0;
}

std::uint64_t RtRandomizedConsensus::propose(int p, std::uint64_t v) {
  assert(v <= 1 && "randomized consensus is binary: the coin proposes 0/1");
  util::Rng rng(util::hash_combine(seed_, static_cast<std::uint64_t>(p)));
  std::uint64_t pref = v;
  for (int r = 0; r < max_rounds_; ++r) {
    CommitAdopt ca(regs_, static_cast<std::size_t>(3 * n_) *
                              static_cast<std::size_t>(r),
                   n_);
    const CommitAdopt::Result res = ca.propose(p, pref);
    // Track the deepest round reached (for the step-complexity experiment).
    int seen = max_round_used_.load(std::memory_order_relaxed);
    while (seen < r && !max_round_used_.compare_exchange_weak(
                           seen, r, std::memory_order_relaxed)) {
    }
    if (res.commit) return res.value;
    if (res.anchored) {
      pref = res.value;  // a commit on res.value may exist: stick to it
    } else {
      // Nobody can have committed this round: free to follow the coin.
      const std::uint64_t c = shared_coin(p, r, rng);
      pref = c;
    }
  }
  TSB_REQUIRE(false, "randomized consensus exceeded its round bank");
  return pref;
}

}  // namespace tsb::rt
