#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/atomic_registers.hpp"

namespace tsb::rt {

/// Single-writer atomic snapshot from n registers, obstruction-free scan
/// by double collect (Afek et al.'s core mechanism; we omit the helping
/// machinery that upgrades it to wait-freedom because the paper's model
/// only requires solo termination).
///
/// Register p holds (seq << 32) | value; update(p, v) is one write with an
/// incremented sequence number. scan() repeats collects until two
/// consecutive ones are identical — that common view is a linearizable
/// snapshot (any write between the collects would have bumped a sequence
/// number).
class RtSwmrSnapshot {
 public:
  explicit RtSwmrSnapshot(int n);

  std::string name() const {
    return "rt-swmr-snapshot(n=" + std::to_string(n_) + ")";
  }
  int num_processes() const { return n_; }

  /// Process p's update; p-private. Values must fit 32 bits.
  void update(int p, std::uint32_t v);

  /// Linearizable snapshot of all components.
  std::vector<std::uint32_t> scan() const;

  /// Scan retry statistics (collect pairs beyond the first, summed).
  std::uint64_t scan_retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

  const AtomicRegisterArray& registers() const { return regs_; }

 private:
  int n_;
  AtomicRegisterArray regs_;
  std::vector<std::uint64_t> seq_;  // own sequence mirror, one per process
  mutable std::atomic<std::uint64_t> retries_{0};
};

}  // namespace tsb::rt
