#pragma once

#include <cstdint>
#include <string>

#include "rt/atomic_registers.hpp"

namespace tsb::rt {

/// Wait-free counter from n single-writer registers (runtime counterpart
/// of perturb::SwmrCounter): inc() is one write to the caller's register,
/// read() collects and sums. Space n = JTT's n-1 plus one.
///
/// Correctness note for tests: a read() that runs concurrently with
/// inc()s returns a value between "incs completed before the read began"
/// and "incs started before the read ended" (it is a regular counter —
/// exactly what the perturbation bound needs).
class RtSwmrCounter {
 public:
  explicit RtSwmrCounter(int n);

  std::string name() const { return "rt-swmr-counter(n=" + std::to_string(n_) + ")"; }
  int num_processes() const { return n_; }

  /// Process p's increment; p-private (single writer).
  void inc(int p);

  /// Anyone may read.
  std::uint64_t read() const;

  const AtomicRegisterArray& registers() const { return regs_; }

 private:
  int n_;
  AtomicRegisterArray regs_;
  std::vector<std::uint64_t> local_;  // own count mirror, one per process
};

}  // namespace tsb::rt
