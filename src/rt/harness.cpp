#include "rt/harness.hpp"

#include <exception>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace tsb::rt {

void SpinBarrier::arrive_and_wait() {
  const int gen = generation_.load(std::memory_order_acquire);
  if (waiting_.fetch_add(1, std::memory_order_acq_rel) == parties_ - 1) {
    waiting_.store(0, std::memory_order_relaxed);
    generation_.store(gen + 1, std::memory_order_release);
    return;
  }
  std::uint32_t round = 0;
  while (generation_.load(std::memory_order_acquire) == gen) {
    spin_backoff(round);
  }
}

void run_threads(int n, const std::function<void(int)>& body) {
  SpinBarrier barrier(n);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      // Trace timelines are keyed by the logical process id, not the OS
      // thread — re-runs and thread-pool reuse then line up in Perfetto.
      obs::set_thread_id(i);
      barrier.arrive_and_wait();
      obs::Span span("rt.thread");
      span.set_value(i);
      // A throwing body must not take the process down (std::terminate)
      // or leave join() below hanging: park the exception, let the thread
      // exit cleanly, and rethrow the first one on the calling thread.
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  obs::Registry::global().counter("rt.run_threads").add();
  if (first_error) std::rethrow_exception(first_error);
}

void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

void spin_backoff(std::uint32_t& round) {
  if (round < 16) {
    cpu_relax();
  } else {
    std::this_thread::yield();
  }
  ++round;
}

}  // namespace tsb::rt
