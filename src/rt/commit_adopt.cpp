#include "rt/commit_adopt.hpp"

#include <cassert>

namespace tsb::rt {

namespace {
// A/B entries: 0 = empty; otherwise value+1 in the low 32 bits, and for B
// a flag bit 33 marking "phase 1 saw a uniform proposal set".
constexpr std::uint64_t kUniformFlag = 1ull << 33;

std::uint64_t encode(std::uint64_t v) { return v + 1; }
std::uint64_t decode(std::uint64_t e) { return (e & 0xffffffffull) - 1; }
}  // namespace

CommitAdopt::CommitAdopt(AtomicRegisterArray& regs, std::size_t base, int n)
    : regs_(regs), base_(base), n_(n) {
  assert(base + registers_needed(n) <= regs.size());
}

CommitAdopt::Result CommitAdopt::propose(int p, std::uint64_t v) {
  assert(v < (1ull << 31));

  // Phase 1: publish, then check whether everyone visible agrees.
  regs_.write(base_ + static_cast<std::size_t>(p), encode(v));
  bool uniform = true;
  for (int q = 0; q < n_; ++q) {
    const std::uint64_t e = regs_.read(base_ + static_cast<std::size_t>(q));
    if (e != 0 && decode(e) != v) uniform = false;
  }

  // Phase 2: publish the phase-1 verdict, then reconcile.
  regs_.write(base_ + static_cast<std::size_t>(n_ + p),
              encode(v) | (uniform ? kUniformFlag : 0));
  bool all_uniform_same = true;
  bool saw_any = false;
  std::uint64_t anchored_value = 0;
  bool anchored = false;
  for (int q = 0; q < n_; ++q) {
    const std::uint64_t e =
        regs_.read(base_ + static_cast<std::size_t>(n_ + q));
    if (e == 0) continue;
    saw_any = true;
    const std::uint64_t u = decode(e);
    if (e & kUniformFlag) {
      anchored = true;
      anchored_value = u;
    }
    if (!(e & kUniformFlag) || u != v) all_uniform_same = false;
  }
  assert(saw_any);  // we wrote our own entry
  (void)saw_any;

  Result out;
  if (uniform && all_uniform_same) {
    out.commit = true;
    out.anchored = true;
    out.value = v;
  } else if (anchored) {
    out.anchored = true;
    out.value = anchored_value;
  } else {
    out.value = v;
  }
  return out;
}

}  // namespace tsb::rt
