#pragma once

#include <atomic>
#include <cstdint>
#include <chrono>
#include <functional>
#include <vector>

namespace tsb::rt {

/// Sense-reversing spin barrier for aligned thread starts — experiments
/// want all processes to begin an algorithm at (nearly) the same instant
/// so contention is real.
class SpinBarrier {
 public:
  explicit SpinBarrier(int parties) : parties_(parties) {}

  void arrive_and_wait();

 private:
  const int parties_;
  std::atomic<int> waiting_{0};
  std::atomic<int> generation_{0};
};

/// Spawn `n` threads, release them through a shared barrier, run
/// `body(thread_id)` in each, and join. A body that throws cannot hang the
/// join or terminate the process: the thread parks its exception and exits
/// cleanly, all threads are still joined, and the *first* exception raised
/// (in completion order) is rethrown to the caller afterwards.
void run_threads(int n, const std::function<void(int)>& body);

/// Wall-clock a callable, in seconds.
template <typename F>
double time_seconds(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Brief polite pause inside spin loops (exponential-ish backoff is the
/// caller's business; this is the single-step primitive).
void cpu_relax();

/// Spin-loop step that stays polite on oversubscribed machines: pauses for
/// the first few rounds, then yields the CPU. On a single-core box (where
/// a pure pause-spin burns a full scheduler quantum per lock handoff —
/// milliseconds) this is the difference between microsecond and
/// millisecond handoffs. Callers keep one counter per wait episode.
void spin_backoff(std::uint32_t& round);

}  // namespace tsb::rt
