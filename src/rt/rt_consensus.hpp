#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "rt/atomic_registers.hpp"
#include "rt/commit_adopt.hpp"
#include "util/rng.hpp"

namespace tsb::rt {

/// Runtime (multithreaded) binary/small-value consensus protocols on
/// instrumented atomic registers. These are the "laptop run" counterparts
/// of the simulator protocols: same algorithms, unbounded rounds, real
/// contention, with register-space instrumentation for experiment E9.
class RtConsensus {
 public:
  virtual ~RtConsensus() = default;
  virtual std::string name() const = 0;
  virtual int num_processes() const = 0;

  /// Propose v (< 2^31) as process p; returns the decided value.
  /// Thread-safe for distinct p.
  virtual std::uint64_t propose(int p, std::uint64_t v) = 0;

  virtual const AtomicRegisterArray& registers() const = 0;
  virtual void reset() = 0;  ///< prepare for a fresh instance
};

/// Shared-memory Paxos with per-process ballots from n single-writer
/// registers — the unbounded-ballot original of consensus::BallotConsensus
/// (see that header for the algorithm and its safety argument). Space: n
/// registers, one register-word triple (mb, ab, av) per process.
/// Obstruction-free; live under real schedulers thanks to ballot racing
/// (a loser re-prepares above the winner, and in practice one of them
/// lands a quiet window quickly).
class RtBallotConsensus final : public RtConsensus {
 public:
  explicit RtBallotConsensus(int n);

  std::string name() const override;
  int num_processes() const override { return n_; }
  std::uint64_t propose(int p, std::uint64_t v) override;
  const AtomicRegisterArray& registers() const override { return regs_; }
  void reset() override { regs_.reset(0); }

 private:
  static std::uint64_t pack(std::uint64_t mb, std::uint64_t ab,
                            std::uint64_t av);
  static void unpack(std::uint64_t word, std::uint64_t& mb, std::uint64_t& ab,
                     std::uint64_t& av);

  int n_;
  AtomicRegisterArray regs_;
};

/// Round-based obstruction-free consensus: rounds of commit-adopt; decide
/// on commit. The classic structure the paper's introduction refers to.
/// Rounds consume registers (2n each) from a preallocated bank; exceeding
/// the bank is a hard failure (tests size it generously — contention
/// resolves within a few rounds in practice).
class RtRoundsConsensus final : public RtConsensus {
 public:
  RtRoundsConsensus(int n, int max_rounds = 512);

  std::string name() const override;
  int num_processes() const override { return n_; }
  std::uint64_t propose(int p, std::uint64_t v) override;
  const AtomicRegisterArray& registers() const override { return regs_; }
  void reset() override { regs_.reset(0); }

 private:
  int n_;
  int max_rounds_;
  AtomicRegisterArray regs_;
};

/// Randomized wait-free(-in-expectation) consensus in the Aspnes–Herlihy
/// style: rounds of commit-adopt; a process that leaves a round unanchored
/// takes its next preference from a coin. Two coins are provided:
///  * kLocal — private coin flips (terminates against the oblivious
///    schedulers real threads provide; simple);
///  * kVoting — a shared coin by vote aggregation in n single-writer
///    registers per round (all processes likely see the same flip, giving
///    constant expected rounds).
class RtRandomizedConsensus final : public RtConsensus {
 public:
  enum class Coin { kLocal, kVoting };

  RtRandomizedConsensus(int n, Coin coin, std::uint64_t seed,
                        int max_rounds = 4096);

  std::string name() const override;
  int num_processes() const override { return n_; }
  std::uint64_t propose(int p, std::uint64_t v) override;
  const AtomicRegisterArray& registers() const override { return regs_; }
  void reset() override;

  /// Rounds consumed by the slowest process in the last run (statistics
  /// for experiment E8).
  int max_round_used() const {
    return max_round_used_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t shared_coin(int p, int round, util::Rng& rng);

  int n_;
  Coin coin_;
  int max_rounds_;
  std::uint64_t seed_;
  AtomicRegisterArray regs_;
  std::atomic<int> max_round_used_{0};
};

}  // namespace tsb::rt
