#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "rt/fault.hpp"

namespace tsb::rt {

/// Seeded adversarial scheduler in the PCT (probabilistic concurrency
/// testing) style, executing real threads *cooperatively*: every
/// instrumented register access is a scheduling point, exactly one thread
/// holds the grant at any instant, and the scheduler decides at each point
/// which thread runs next. Because only one thread ever runs between
/// decisions and every decision is a pure function of (seed, FaultPlan,
/// the threads' own deterministic code), a run replays bit-identically
/// from its seed — the property the chaos determinism tests byte-compare.
///
/// Scheduling policy:
///  * each thread gets a distinct initial priority (a seeded shuffle);
///    the highest-priority runnable thread runs;
///  * `change_points` global access indices are pre-sampled below
///    `horizon`; when the step counter crosses one, the running thread is
///    demoted below everyone — the PCT priority-change device that
///    explores "unlucky" interleavings with provable density;
///  * a thread that keeps the grant for `burst_limit` consecutive accesses
///    is demoted too, so spin loops cannot starve the system after the
///    change points are spent (the deterministic fairness backstop);
///  * FaultPlan injections ride the same access stream: crash unwinds the
///    victim via fault::ThreadCrashed, stall removes it from the runnable
///    set for k global steps, yield demotes it.
///
/// Watchdogs, all graceful: a global step budget and a wall-clock timeout
/// abort every thread (status kAborted, run outcome "timeout"), and a
/// per-thread step budget unwinds just the over-budget thread (status
/// kBudget) — the solo-termination check's "did not decide" signal.
class ChaosScheduler final : public fault::AccessHook {
 public:
  struct Options {
    std::uint64_t seed = 1;
    int change_points = 16;
    std::uint64_t horizon = 20'000;      ///< change-point sampling range
    std::uint64_t burst_limit = 512;     ///< forced demotion interval
    std::uint64_t step_budget = 0;       ///< global accesses; 0 = unlimited
    std::uint64_t per_thread_budget = 0; ///< own accesses; 0 = unlimited
    std::uint64_t wall_timeout_ms = 10'000;  ///< 0 = no wall watchdog
  };

  enum class ThreadStatus : std::uint8_t {
    kRunning,   ///< still executing (only seen mid-run)
    kDone,      ///< body returned normally
    kCrashed,   ///< FaultPlan crash injection unwound it
    kBudget,    ///< per-thread step budget exceeded
    kAborted,   ///< run-wide abort (wall timeout or global step budget)
    kFailed,    ///< body threw something other than ThreadCrashed
  };

  struct Outcome {
    std::vector<ThreadStatus> status;
    std::vector<std::uint64_t> accesses;  ///< per-thread access counts
    std::uint64_t total_steps = 0;
    bool timed_out = false;         ///< wall-clock watchdog tripped
    bool step_budget_hit = false;   ///< global step budget tripped
    /// First exception a body threw other than ThreadCrashed (a safety
    /// violation — e.g. a failed TSB_REQUIRE). chaos_run fills this in.
    std::exception_ptr error;
  };

  ChaosScheduler(int n, const fault::FaultPlan& plan, const Options& opts);

  // fault::AccessHook — called on the bound thread's every register access.
  void on_access(int tid, std::uint64_t access, std::size_t reg,
                 bool is_write) override;

  /// Register the calling thread and block until the scheduler grants it.
  /// All n threads must call this before any of them runs.
  void thread_begin(int tid);

  /// The thread is finished (normally or by unwinding); hands the grant on.
  void thread_end(int tid, ThreadStatus status);

  /// Valid after every thread has called thread_end.
  Outcome outcome() const;

 private:
  struct ThreadState {
    enum class Run : std::uint8_t { kUnregistered, kWaiting, kDone };
    Run run = Run::kUnregistered;
    int priority = 0;
    std::uint64_t stall_until = 0;   ///< global step before which unschedulable
    std::uint64_t accesses = 0;
    std::size_t next_injection = 0;  ///< cursor into plan_.per_thread[tid]
    ThreadStatus status = ThreadStatus::kRunning;
  };

  // All private methods require mu_ held.
  void demote(int tid);
  int pick_next();
  void abort_all_locked(bool timed_out);
  [[noreturn]] void throw_abort();

  const int n_;
  const fault::FaultPlan plan_;
  const Options opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ThreadState> threads_;
  std::vector<std::uint64_t> change_points_;  ///< sorted global step indices
  std::size_t next_change_ = 0;
  int registered_ = 0;
  int live_ = 0;
  int granted_ = -1;
  int lowest_priority_ = 0;   ///< decreasing; demotions take the next value
  std::uint64_t step_ = 0;
  std::uint64_t burst_ = 0;   ///< consecutive grants to granted_
  bool aborting_ = false;
  bool timed_out_ = false;
  bool step_budget_hit_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

/// Run body(0..n-1) on n real threads under a ChaosScheduler driven by
/// `plan` and `opts`. Crash-injected and watchdogged threads unwind and
/// exit cleanly; any *other* exception a body throws (e.g. a failed
/// TSB_REQUIRE) is captured into Outcome::error (the thread's status
/// becomes kFailed) after all threads joined — join() can never hang on a
/// crashed worker, and the campaign still gets the full schedule outcome
/// alongside the violation.
ChaosScheduler::Outcome chaos_run(int n, const fault::FaultPlan& plan,
                                  const ChaosScheduler::Options& opts,
                                  const std::function<void(int)>& body);

}  // namespace tsb::rt
