#include "rt/rt_counter.hpp"

#include <cassert>

namespace tsb::rt {

RtSwmrCounter::RtSwmrCounter(int n)
    : n_(n),
      regs_(static_cast<std::size_t>(n)),
      local_(static_cast<std::size_t>(n), 0) {
  assert(n >= 1);
}

void RtSwmrCounter::inc(int p) {
  // Single-writer: only p touches local_[p] and register p.
  const std::uint64_t next = ++local_[static_cast<std::size_t>(p)];
  regs_.write(static_cast<std::size_t>(p), next);
}

std::uint64_t RtSwmrCounter::read() const {
  std::uint64_t sum = 0;
  for (int q = 0; q < n_; ++q) {
    sum += regs_.read(static_cast<std::size_t>(q));
  }
  return sum;
}

}  // namespace tsb::rt
