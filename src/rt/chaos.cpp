#include "rt/chaos.hpp"

#include <atomic>
#include <functional>
#include <memory>

#include "obs/jsonl_sink.hpp"
#include "obs/metrics.hpp"
#include "rt/chaos_scheduler.hpp"
#include "rt/commit_adopt.hpp"
#include "rt/leader_election.hpp"
#include "rt/rt_consensus.hpp"
#include "rt/rt_mutex.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace tsb::rt::chaos {

const char* target_name(Target t) {
  switch (t) {
    case Target::kBallot: return "ballot";
    case Target::kRounds: return "rounds";
    case Target::kRandomized: return "randomized";
    case Target::kCommitAdopt: return "commit-adopt";
    case Target::kLeader: return "leader";
    case Target::kPeterson: return "peterson";
    case Target::kTournament: return "tournament";
    case Target::kBakery: return "bakery";
  }
  return "?";
}

std::vector<Target> all_targets() {
  return {Target::kBallot,     Target::kRounds,   Target::kRandomized,
          Target::kCommitAdopt, Target::kLeader,  Target::kPeterson,
          Target::kTournament, Target::kBakery};
}

bool parse_targets(const std::string& csv, std::vector<Target>* out) {
  out->clear();
  if (csv.empty() || csv == "all") {
    *out = all_targets();
    return true;
  }
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string name = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    bool found = false;
    for (Target t : all_targets()) {
      if (name == target_name(t)) {
        out->push_back(t);
        found = true;
        break;
      }
    }
    if (!found) return false;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out->empty();
}

namespace {

/// Crash injection is sound only where the algorithm's liveness survives a
/// crashed participant (the NST setting the paper is about). The mutexes
/// and leader election are deadlock-free only crash-free — a crashed lock
/// holder *legitimately* strands its peers — so they get stalls/yields only.
bool crash_safe(Target t) {
  switch (t) {
    case Target::kBallot:
    case Target::kRounds:
    case Target::kRandomized:
    case Target::kCommitAdopt:
      return true;
    default:
      return false;
  }
}

bool liveness_expected(Target t) {
  // Under stall/yield-only faults these must terminate within the step
  // budget; an abort there is reported as a violation (deadlock), not a
  // tolerated timeout.
  return !crash_safe(t);
}

char status_code(ChaosScheduler::ThreadStatus s) {
  switch (s) {
    case ChaosScheduler::ThreadStatus::kRunning: return 'R';
    case ChaosScheduler::ThreadStatus::kDone: return 'D';
    case ChaosScheduler::ThreadStatus::kCrashed: return 'C';
    case ChaosScheduler::ThreadStatus::kBudget: return 'B';
    case ChaosScheduler::ThreadStatus::kAborted: return 'A';
    case ChaosScheduler::ThreadStatus::kFailed: return 'F';
  }
  return '?';
}

struct RunRecord {
  Target target = Target::kBallot;
  std::string scenario;  // "solo" | "crash" | "perturb" | "clean"
  std::string plan_str;
  std::string status;    // "ok" | "timeout" | "violation" | "solo_fail"
  std::string detail;
  std::string statuses;  // one code per thread, e.g. "DCCD"
  std::vector<std::int64_t> decided;  // -1 = did not decide
  std::uint64_t steps = 0;
  std::size_t distinct = 0;
  int winners = -1;   // leader only
  int commits = -1;   // commit-adopt only
  bool solo = false;
  int planned_crashes = 0, planned_stalls = 0, planned_yields = 0;
};

std::string exception_detail(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown exception";
  }
}

/// Execute run `run_seed` deterministically. Everything — target choice,
/// fault plan, inputs, schedule — is a pure function of the seed.
RunRecord run_one(std::uint64_t run_seed, const std::vector<Target>& targets,
                  const Options& opts) {
  util::Rng rng(util::mix64(run_seed) ^ 0x0C4A05C4A05ull);
  RunRecord rec;
  rec.target = targets[rng.below(targets.size())];
  const int n = opts.n;
  const bool crashable = crash_safe(rec.target) && opts.allow_crash;

  // ----- fault plan -------------------------------------------------------
  fault::FaultPlan plan(n);
  int survivor = -1;
  const std::uint64_t roll = rng.below(100);
  if (crashable && roll < 30) {
    // The paper's NST scenario: crash all but one early; the survivor must
    // decide on its own within its access budget.
    rec.solo = true;
    survivor = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    for (int t = 0; t < n; ++t) {
      if (t != survivor) plan.crash(t, rng.below(30) + 1);
    }
    rec.scenario = "solo";
  } else if (crashable && roll < 55) {
    // Crash a random non-empty strict subset at random points.
    const int ncrash =
        1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n - 1)));
    std::vector<int> order(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) order[static_cast<std::size_t>(t)] = t;
    rng.shuffle(order);
    for (int j = 0; j < ncrash; ++j) {
      plan.crash(order[static_cast<std::size_t>(j)], rng.below(100) + 1);
    }
    rec.scenario = "crash";
  }
  if (opts.allow_stall) {
    const int k = static_cast<int>(rng.below(3));
    for (int j = 0; j < k; ++j) {
      plan.stall(static_cast<int>(rng.below(static_cast<std::uint64_t>(n))),
                 rng.below(200) + 1, rng.below(2000) + 1);
    }
  }
  if (opts.allow_yield) {
    const int k = static_cast<int>(rng.below(3));
    for (int j = 0; j < k; ++j) {
      plan.yield(static_cast<int>(rng.below(static_cast<std::uint64_t>(n))),
                 rng.below(200) + 1);
    }
  }
  plan.sort();
  if (rec.scenario.empty()) {
    rec.scenario = (plan.stalls() + plan.yields()) > 0 ? "perturb" : "clean";
  }
  rec.plan_str = plan.to_string();
  rec.planned_crashes = plan.crashes();
  rec.planned_stalls = plan.stalls();
  rec.planned_yields = plan.yields();

  ChaosScheduler::Options sopts;
  sopts.seed = run_seed;
  sopts.change_points = opts.change_points;
  sopts.step_budget = opts.step_budget;
  sopts.per_thread_budget = rec.solo ? opts.solo_budget : 0;
  sopts.wall_timeout_ms = opts.run_timeout_ms;

  // ----- inputs & body ----------------------------------------------------
  std::vector<std::uint64_t> inputs(static_cast<std::size_t>(n));
  for (auto& v : inputs) v = rng.below(2);
  std::vector<std::int64_t> decided(static_cast<std::size_t>(n), -1);
  std::vector<CommitAdopt::Result> ca_results(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> won(static_cast<std::size_t>(n), 0);
  std::atomic<int> owner{-1};

  std::unique_ptr<RtConsensus> consensus;
  std::unique_ptr<RtMutex> mutex;
  std::unique_ptr<RtLeaderElection> leader;
  std::unique_ptr<AtomicRegisterArray> ca_regs;
  std::unique_ptr<CommitAdopt> ca;
  const AtomicRegisterArray* regs = nullptr;

  std::function<void(int)> body;
  switch (rec.target) {
    case Target::kBallot:
    case Target::kRounds:
    case Target::kRandomized: {
      if (rec.target == Target::kBallot) {
        consensus = std::make_unique<RtBallotConsensus>(n);
      } else if (rec.target == Target::kRounds) {
        consensus = std::make_unique<RtRoundsConsensus>(n);
      } else {
        consensus = std::make_unique<RtRandomizedConsensus>(
            n, RtRandomizedConsensus::Coin::kLocal, run_seed);
      }
      regs = &consensus->registers();
      body = [&](int p) {
        decided[static_cast<std::size_t>(p)] = static_cast<std::int64_t>(
            consensus->propose(p, inputs[static_cast<std::size_t>(p)]));
      };
      break;
    }
    case Target::kCommitAdopt: {
      ca_regs = std::make_unique<AtomicRegisterArray>(
          CommitAdopt::registers_needed(n));
      ca = std::make_unique<CommitAdopt>(*ca_regs, 0, n);
      regs = ca_regs.get();
      body = [&](int p) {
        const CommitAdopt::Result r =
            ca->propose(p, inputs[static_cast<std::size_t>(p)] + 1);
        ca_results[static_cast<std::size_t>(p)] = r;
        decided[static_cast<std::size_t>(p)] =
            static_cast<std::int64_t>(r.value);
      };
      break;
    }
    case Target::kLeader: {
      leader = std::make_unique<RtLeaderElection>(n);
      regs = &leader->registers();
      body = [&](int p) {
        won[static_cast<std::size_t>(p)] = leader->participate(p) ? 1 : 0;
        decided[static_cast<std::size_t>(p)] =
            won[static_cast<std::size_t>(p)];
      };
      break;
    }
    case Target::kPeterson:
    case Target::kTournament:
    case Target::kBakery: {
      if (rec.target == Target::kPeterson) {
        mutex = std::make_unique<RtPetersonMutex>(n);
      } else if (rec.target == Target::kTournament) {
        mutex = std::make_unique<RtTournamentMutex>(n);
      } else {
        mutex = std::make_unique<RtBakeryMutex>(n);
      }
      regs = &mutex->registers();
      body = [&](int p) {
        for (int it = 0; it < 3; ++it) {
          mutex->lock(p);
          TSB_REQUIRE(owner.exchange(p, std::memory_order_relaxed) == -1,
                      "mutual exclusion violated: overlapping critical "
                      "sections");
          // Explicit scheduling point inside the critical section: the
          // adversary gets a chance to run a rival while we hold the lock.
          fault::interleave();
          TSB_REQUIRE(owner.exchange(-1, std::memory_order_relaxed) == p,
                      "mutual exclusion violated: owner changed under us");
          mutex->unlock(p);
          decided[static_cast<std::size_t>(p)] = it + 1;
        }
      };
      break;
    }
  }

  // ----- execute ----------------------------------------------------------
  const ChaosScheduler::Outcome out = chaos_run(n, plan, sopts, body);
  rec.steps = out.total_steps;
  rec.decided = decided;
  rec.distinct = regs->distinct_registers_written();
  for (auto s : out.status) rec.statuses += status_code(s);

  // ----- verdict ----------------------------------------------------------
  const bool aborted = out.timed_out || out.step_budget_hit;
  if (out.error) {
    rec.status = "violation";
    rec.detail = exception_detail(out.error);
    return rec;
  }
  if (aborted) {
    if (liveness_expected(rec.target)) {
      rec.status = "violation";
      rec.detail = "budget exhausted on a deadlock-free algorithm under "
                   "stall/yield faults (possible deadlock)";
    } else {
      rec.status = "timeout";
    }
    return rec;
  }
  const auto done = [&](int p) {
    return out.status[static_cast<std::size_t>(p)] ==
           ChaosScheduler::ThreadStatus::kDone;
  };
  if (rec.solo) {
    if (!done(survivor)) {
      rec.status = "solo_fail";
      rec.detail = "crash-all-but-one survivor did not decide within its "
                   "access budget (NST violated)";
      return rec;
    }
  }
  switch (rec.target) {
    case Target::kBallot:
    case Target::kRounds:
    case Target::kRandomized: {
      std::int64_t agreed = -1;
      for (int p = 0; p < n; ++p) {
        if (!done(p)) continue;
        const std::int64_t v = decided[static_cast<std::size_t>(p)];
        bool valid = false;
        for (auto in : inputs) valid |= (static_cast<std::int64_t>(in) == v);
        if (!valid) {
          rec.status = "violation";
          rec.detail = "validity violated: decided value was never proposed";
          return rec;
        }
        if (agreed == -1) agreed = v;
        if (v != agreed) {
          rec.status = "violation";
          rec.detail = "agreement violated: two processes decided "
                       "different values";
          return rec;
        }
      }
      // The paper's quantity: a run where all n processes decide must have
      // touched at least n-1 distinct registers.
      if (plan.crashes() == 0 &&
          rec.statuses == std::string(static_cast<std::size_t>(n), 'D') &&
          rec.distinct + 1 < static_cast<std::size_t>(n)) {
        rec.status = "violation";
        rec.detail = "space bound violated: fewer than n-1 distinct "
                     "registers written on a full run";
        return rec;
      }
      break;
    }
    case Target::kCommitAdopt: {
      bool all_same = true;
      for (auto v : inputs) all_same &= (v == inputs[0]);
      std::int64_t committed = -1;
      rec.commits = 0;
      for (int p = 0; p < n; ++p) {
        if (!done(p)) continue;
        const CommitAdopt::Result& r = ca_results[static_cast<std::size_t>(p)];
        bool valid = false;
        for (auto in : inputs) valid |= (in + 1 == r.value);
        if (!valid) {
          rec.status = "violation";
          rec.detail = "commit-adopt validity violated";
          return rec;
        }
        if (all_same && !r.commit) {
          rec.status = "violation";
          rec.detail = "commit-adopt agreement-on-uniform violated: "
                       "uniform proposals must all commit";
          return rec;
        }
        if (r.commit) {
          ++rec.commits;
          if (committed == -1) committed = static_cast<std::int64_t>(r.value);
        }
      }
      if (committed != -1) {
        for (int p = 0; p < n; ++p) {
          if (!done(p)) continue;
          if (static_cast<std::int64_t>(
                  ca_results[static_cast<std::size_t>(p)].value) !=
              committed) {
            rec.status = "violation";
            rec.detail = "commit-adopt safety violated: a committed value "
                         "was not universally returned";
            return rec;
          }
        }
      }
      break;
    }
    case Target::kLeader: {
      rec.winners = 0;
      for (int p = 0; p < n; ++p) {
        if (won[static_cast<std::size_t>(p)]) ++rec.winners;
      }
      if (rec.winners != 1) {
        rec.status = "violation";
        rec.detail = "leader election violated: " +
                     std::to_string(rec.winners) + " winners";
        return rec;
      }
      break;
    }
    case Target::kPeterson:
    case Target::kTournament:
    case Target::kBakery:
      // Exclusion is checked inline by TSB_REQUIRE; reaching here crash-
      // free with no abort means every process completed its sections.
      break;
  }
  rec.status = "ok";
  return rec;
}

std::string decided_json(const std::vector<std::int64_t>& xs) {
  std::string s = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) s += ',';
    s += std::to_string(xs[i]);
  }
  return s + "]";
}

void emit_run_record(std::uint64_t run, std::uint64_t run_seed,
                     const Options& opts, const RunRecord& rec) {
  if (!obs::chaos_enabled()) return;
  obs::JsonObj o;
  o.str("type", "chaos.run")
      .num("run", static_cast<std::int64_t>(run))
      .num("seed", static_cast<std::int64_t>(run_seed))
      .str("target", target_name(rec.target))
      .num("n", opts.n)
      .str("scenario", rec.scenario)
      .str("plan", rec.plan_str)
      .str("status", rec.status)
      .str("threads", rec.statuses)
      .num("steps", static_cast<std::int64_t>(rec.steps))
      .raw("decided", decided_json(rec.decided))
      .num("distinct", static_cast<std::int64_t>(rec.distinct));
  if (rec.winners >= 0) o.num("winners", rec.winners);
  if (rec.commits >= 0) o.num("commits", rec.commits);
  if (!rec.detail.empty()) o.str("detail", rec.detail);
  obs::chaos_sink().write(o.render());
}

}  // namespace

std::string Result::summary_json(const Options& opts) const {
  obs::JsonObj o;
  return o.str("type", "chaos.campaign")
      .num("runs", runs)
      .num("seed", static_cast<std::int64_t>(opts.seed))
      .num("n", opts.n)
      .num("violations", violations)
      .num("solo_runs", solo_runs)
      .num("solo_failures", solo_failures)
      .num("timeouts", timeouts)
      .num("crashes", crashes)
      .num("stalls", stalls)
      .num("yields", yields)
      .num("total_steps", static_cast<std::int64_t>(total_steps))
      .str("first_violation", first_violation)
      .boolean("ok", ok())
      .render();
}

Result run_campaign(const Options& opts) {
  Result res;
  const std::vector<Target> targets =
      opts.targets.empty() ? all_targets() : opts.targets;
  for (int i = 0; i < opts.runs; ++i) {
    const std::uint64_t run_seed =
        opts.seed + static_cast<std::uint64_t>(i);
    const RunRecord rec =
        run_one(run_seed, targets, opts);
    ++res.runs;
    res.crashes += rec.planned_crashes;
    res.stalls += rec.planned_stalls;
    res.yields += rec.planned_yields;
    res.total_steps += rec.steps;
    if (rec.solo) ++res.solo_runs;
    if (rec.status == "violation") {
      ++res.violations;
      if (res.first_violation.empty()) {
        res.first_violation = "seed " + std::to_string(run_seed) + " (" +
                              target_name(rec.target) + "): " + rec.detail;
      }
    } else if (rec.status == "solo_fail") {
      ++res.solo_failures;
      if (res.first_violation.empty()) {
        res.first_violation = "seed " + std::to_string(run_seed) + " (" +
                              target_name(rec.target) + "): " + rec.detail;
      }
    } else if (rec.status == "timeout") {
      ++res.timeouts;
    }
    emit_run_record(static_cast<std::uint64_t>(i), run_seed, opts, rec);
  }
  obs::Registry::global().counter("chaos.runs").add(
      static_cast<std::uint64_t>(res.runs));
  if (res.violations > 0 || res.solo_failures > 0) {
    obs::Registry::global().counter("chaos.violations").add(
        static_cast<std::uint64_t>(res.violations + res.solo_failures));
  }
  if (obs::chaos_enabled()) {
    obs::chaos_sink().write(res.summary_json(opts));
  }
  return res;
}

}  // namespace tsb::rt::chaos
