#include "rt/fault.hpp"

#include <algorithm>

namespace tsb::rt::fault {

namespace detail {

std::atomic<int> g_bound_threads{0};

namespace {
struct Binding {
  AccessHook* hook = nullptr;
  int tid = -1;
  std::uint64_t accesses = 0;
};
thread_local Binding t_binding;
}  // namespace

void dispatch(std::size_t reg, bool is_write) {
  Binding& b = t_binding;
  if (b.hook == nullptr) return;  // some other thread's chaos run
  b.hook->on_access(b.tid, ++b.accesses, reg, is_write);
}

}  // namespace detail

void bind_thread(AccessHook* hook, int tid) {
  detail::t_binding = {hook, tid, 0};
  detail::g_bound_threads.fetch_add(1, std::memory_order_relaxed);
}

void unbind_thread() {
  if (detail::t_binding.hook == nullptr) return;
  detail::t_binding = {};
  detail::g_bound_threads.fetch_sub(1, std::memory_order_relaxed);
}

bool thread_bound() { return detail::t_binding.hook != nullptr; }

FaultPlan& FaultPlan::crash(int t, std::uint64_t at_access) {
  per_thread[static_cast<std::size_t>(t)].push_back(
      {at_access, Injection::Action::kCrash, 0});
  return *this;
}

FaultPlan& FaultPlan::stall(int t, std::uint64_t at_access,
                            std::uint64_t steps) {
  per_thread[static_cast<std::size_t>(t)].push_back(
      {at_access, Injection::Action::kStall, steps});
  return *this;
}

FaultPlan& FaultPlan::yield(int t, std::uint64_t at_access) {
  per_thread[static_cast<std::size_t>(t)].push_back(
      {at_access, Injection::Action::kYield, 0});
  return *this;
}

void FaultPlan::sort() {
  for (auto& v : per_thread) {
    std::stable_sort(v.begin(), v.end(),
                     [](const Injection& a, const Injection& b) {
                       return a.at_access < b.at_access;
                     });
  }
}

namespace {
int count(const FaultPlan& plan, Injection::Action a) {
  int c = 0;
  for (const auto& v : plan.per_thread) {
    for (const Injection& inj : v) {
      if (inj.action == a) ++c;
    }
  }
  return c;
}
}  // namespace

int FaultPlan::crashes() const { return count(*this, Injection::Action::kCrash); }
int FaultPlan::stalls() const { return count(*this, Injection::Action::kStall); }
int FaultPlan::yields() const { return count(*this, Injection::Action::kYield); }

std::string FaultPlan::to_string() const {
  std::string out;
  for (std::size_t t = 0; t < per_thread.size(); ++t) {
    for (const Injection& inj : per_thread[t]) {
      if (!out.empty()) out += ' ';
      out += 't' + std::to_string(t) + ':';
      switch (inj.action) {
        case Injection::Action::kCrash:
          out += "crash@" + std::to_string(inj.at_access);
          break;
        case Injection::Action::kStall:
          out += "stall@" + std::to_string(inj.at_access) + 'x' +
                 std::to_string(inj.arg);
          break;
        case Injection::Action::kYield:
          out += "yield@" + std::to_string(inj.at_access);
          break;
      }
    }
  }
  return out.empty() ? "none" : out;
}

}  // namespace tsb::rt::fault
