#include "rt/chaos_scheduler.hpp"

#include <algorithm>
#include <thread>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace tsb::rt {

ChaosScheduler::ChaosScheduler(int n, const fault::FaultPlan& plan,
                               const Options& opts)
    : n_(n), plan_(plan), opts_(opts), threads_(static_cast<std::size_t>(n)) {
  util::Rng rng(util::mix64(opts.seed) ^ 0xC4A05C4A05ull);
  // Distinct initial priorities: a seeded shuffle of 1..n (higher wins).
  std::vector<int> prio(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) prio[static_cast<std::size_t>(i)] = i + 1;
  rng.shuffle(prio);
  for (int i = 0; i < n; ++i) {
    threads_[static_cast<std::size_t>(i)].priority =
        prio[static_cast<std::size_t>(i)];
  }
  // PCT change points: global access indices sampled below the horizon.
  change_points_.reserve(static_cast<std::size_t>(opts.change_points));
  for (int i = 0; i < opts.change_points; ++i) {
    change_points_.push_back(rng.below(std::max<std::uint64_t>(opts.horizon, 1)) + 1);
  }
  std::sort(change_points_.begin(), change_points_.end());
}

void ChaosScheduler::demote(int tid) {
  threads_[static_cast<std::size_t>(tid)].priority = --lowest_priority_;
}

int ChaosScheduler::pick_next() {
  for (;;) {
    int best = -1;
    std::uint64_t min_stall = 0;
    bool have_stalled = false;
    for (int t = 0; t < n_; ++t) {
      const ThreadState& ts = threads_[static_cast<std::size_t>(t)];
      if (ts.run != ThreadState::Run::kWaiting) continue;
      if (ts.stall_until > step_) {
        if (!have_stalled || ts.stall_until < min_stall) {
          min_stall = ts.stall_until;
          have_stalled = true;
        }
        continue;
      }
      if (best == -1 ||
          ts.priority > threads_[static_cast<std::size_t>(best)].priority) {
        best = t;
      }
    }
    if (best != -1) return best;
    if (!have_stalled) return -1;  // everyone is done
    // Every live thread is stalled: fast-forward the step clock to the
    // earliest release (deterministic — no wall time involved).
    step_ = min_stall;
  }
}

void ChaosScheduler::abort_all_locked(bool timed_out) {
  aborting_ = true;
  if (timed_out) {
    timed_out_ = true;
  } else {
    step_budget_hit_ = true;
  }
  cv_.notify_all();
}

void ChaosScheduler::throw_abort() {
  throw fault::ThreadCrashed{fault::ThreadCrashed::Why::kAborted};
}

void ChaosScheduler::thread_begin(int tid) {
  std::unique_lock<std::mutex> lock(mu_);
  ThreadState& ts = threads_[static_cast<std::size_t>(tid)];
  ts.run = ThreadState::Run::kWaiting;
  ++registered_;
  ++live_;
  if (registered_ == n_) {
    // Everyone is at the gate: the run (and its wall clock) starts now.
    if (opts_.wall_timeout_ms > 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(opts_.wall_timeout_ms);
    }
    granted_ = pick_next();
    burst_ = 0;
    cv_.notify_all();
  }
  cv_.wait(lock, [&] { return aborting_ || granted_ == tid; });
  if (aborting_) throw_abort();
}

void ChaosScheduler::on_access(int tid, std::uint64_t access, std::size_t reg,
                               bool is_write) {
  (void)reg;
  (void)is_write;
  std::unique_lock<std::mutex> lock(mu_);
  if (aborting_) throw_abort();
  ThreadState& ts = threads_[static_cast<std::size_t>(tid)];
  ++step_;
  ts.accesses = access;

  // Run-wide watchdogs: graceful abort, every thread unwinds as kAborted.
  if (opts_.step_budget > 0 && step_ > opts_.step_budget) {
    abort_all_locked(/*timed_out=*/false);
    throw_abort();
  }
  if (opts_.wall_timeout_ms > 0 && (step_ & 0x1FF) == 0 &&
      std::chrono::steady_clock::now() > deadline_) {
    abort_all_locked(/*timed_out=*/true);
    throw_abort();
  }
  // Per-thread watchdog: only this thread is over budget; unwind it alone.
  if (opts_.per_thread_budget > 0 && access > opts_.per_thread_budget) {
    throw fault::ThreadCrashed{fault::ThreadCrashed::Why::kBudget};
  }

  // Scripted faults at this thread's own access index.
  if (static_cast<std::size_t>(tid) < plan_.per_thread.size()) {
    const auto& script = plan_.per_thread[static_cast<std::size_t>(tid)];
    while (ts.next_injection < script.size() &&
           script[ts.next_injection].at_access <= access) {
      const fault::Injection& inj = script[ts.next_injection++];
      obs::flight::record(obs::flight::Ev::kChaosFault, tid,
                          static_cast<std::int64_t>(inj.action));
      switch (inj.action) {
        case fault::Injection::Action::kCrash:
          // thread_end (called by the unwinding harness) hands the grant on.
          throw fault::ThreadCrashed{fault::ThreadCrashed::Why::kPlanned};
        case fault::Injection::Action::kStall:
          ts.stall_until = step_ + inj.arg;
          break;
        case fault::Injection::Action::kYield:
          demote(tid);
          break;
      }
    }
  }

  // PCT change points demote whoever is running when the step clock
  // crosses them.
  while (next_change_ < change_points_.size() &&
         change_points_[next_change_] <= step_) {
    ++next_change_;
    demote(tid);
  }
  // Fairness backstop: a spin loop cannot keep the grant forever.
  if (++burst_ > opts_.burst_limit) {
    demote(tid);
  }

  // Highest-priority runnable thread wins; the stall/priority state set
  // above already encodes whether the grant moves.
  const int next = pick_next();
  if (next != tid) {
    granted_ = next;
    burst_ = 0;
    cv_.notify_all();
    cv_.wait(lock, [&] { return aborting_ || granted_ == tid; });
    if (aborting_) throw_abort();
  }
}

void ChaosScheduler::thread_end(int tid, ThreadStatus status) {
  std::unique_lock<std::mutex> lock(mu_);
  ThreadState& ts = threads_[static_cast<std::size_t>(tid)];
  ts.run = ThreadState::Run::kDone;
  ts.status = status;
  --live_;
  if (granted_ == tid) {
    granted_ = pick_next();
    burst_ = 0;
  }
  cv_.notify_all();
}

ChaosScheduler::Outcome ChaosScheduler::outcome() const {
  std::unique_lock<std::mutex> lock(mu_);
  Outcome out;
  out.status.reserve(threads_.size());
  out.accesses.reserve(threads_.size());
  for (const ThreadState& ts : threads_) {
    out.status.push_back(ts.status);
    out.accesses.push_back(ts.accesses);
  }
  out.total_steps = step_;
  out.timed_out = timed_out_;
  out.step_budget_hit = step_budget_hit_;
  return out;
}

ChaosScheduler::Outcome chaos_run(int n, const fault::FaultPlan& plan,
                                  const ChaosScheduler::Options& opts,
                                  const std::function<void(int)>& body) {
  ChaosScheduler sched(n, plan, opts);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      obs::set_thread_id(i);
      fault::bind_thread(&sched, i);
      ChaosScheduler::ThreadStatus status = ChaosScheduler::ThreadStatus::kDone;
      try {
        sched.thread_begin(i);
        body(i);
      } catch (const fault::ThreadCrashed& c) {
        switch (c.why) {
          case fault::ThreadCrashed::Why::kPlanned:
            status = ChaosScheduler::ThreadStatus::kCrashed;
            break;
          case fault::ThreadCrashed::Why::kBudget:
            status = ChaosScheduler::ThreadStatus::kBudget;
            break;
          case fault::ThreadCrashed::Why::kAborted:
            status = ChaosScheduler::ThreadStatus::kAborted;
            break;
        }
      } catch (...) {
        status = ChaosScheduler::ThreadStatus::kFailed;
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      sched.thread_end(i, status);
      fault::unbind_thread();
    });
  }
  for (auto& t : threads) t.join();
  ChaosScheduler::Outcome out = sched.outcome();
  out.error = first_error;
  return out;
}

}  // namespace tsb::rt
