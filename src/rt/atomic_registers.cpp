#include "rt/atomic_registers.hpp"

#include "obs/trace_sink.hpp"
#include "rt/fault.hpp"
#include "util/require.hpp"

namespace tsb::rt {

namespace {
// Process-wide aggregates across every register array, for end-of-run
// metrics export; instance accessors use the per-instance counters.
struct RegMetrics {
  obs::Counter& reads = obs::Registry::global().counter("rt.registers.reads");
  obs::Counter& writes =
      obs::Registry::global().counter("rt.registers.writes");
};
RegMetrics& reg_metrics() {
  static RegMetrics m;
  return m;
}
}  // namespace

AtomicRegisterArray::AtomicRegisterArray(std::size_t size)
    : size_(size), cells_(std::make_unique<Cell[]>(size)) {}

AtomicRegisterArray::~AtomicRegisterArray() {
  // Fold this array's totals into the process-wide aggregates once, at
  // quiescence, rather than paying a second sharded add on every access.
  // (Counts cover the interval since the last reset_stats().)
  reg_metrics().reads.add(reads_.value());
  reg_metrics().writes.add(writes_.value());
}

std::uint64_t AtomicRegisterArray::read(std::size_t r) const {
  // Out-of-range would be silent UB into the Cell array; chaos campaigns
  // (and everyone else) need it to fail loudly, in release builds too.
  TSB_REQUIRE(r < size_, "register read out of range");
  // Chaos injection point: one relaxed load when no campaign is active.
  fault::on_access(r, /*is_write=*/false);
  reads_.add();
  obs::trace_instant("reg.read", static_cast<std::int64_t>(r));
  return cells_[r].value.load(std::memory_order_seq_cst);
}

void AtomicRegisterArray::write(std::size_t r, std::uint64_t v) {
  TSB_REQUIRE(r < size_, "register write out of range");
  fault::on_access(r, /*is_write=*/true);
  writes_.add();
  obs::trace_instant("reg.write", static_cast<std::int64_t>(r));
  if (cells_[r].written.load(std::memory_order_relaxed) == 0 &&
      cells_[r].written.exchange(1, std::memory_order_relaxed) == 0) {
    // First write to this register: the covered count grows — the runtime
    // mirror of the paper's quantity, traced over time.
    const std::size_t now =
        distinct_.fetch_add(1, std::memory_order_relaxed) + 1;
    obs::trace_counter("rt.covered", static_cast<std::int64_t>(now));
  }
  cells_[r].value.store(v, std::memory_order_seq_cst);
}

std::vector<std::size_t> AtomicRegisterArray::written_registers() const {
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < size_; ++r) {
    if (cells_[r].written.load(std::memory_order_relaxed)) out.push_back(r);
  }
  return out;
}

void AtomicRegisterArray::reset_stats() {
  reads_.reset();
  writes_.reset();
  distinct_.store(0, std::memory_order_relaxed);
  for (std::size_t r = 0; r < size_; ++r) {
    cells_[r].written.store(0, std::memory_order_relaxed);
  }
}

void AtomicRegisterArray::reset(std::uint64_t value) {
  for (std::size_t r = 0; r < size_; ++r) {
    cells_[r].value.store(value, std::memory_order_seq_cst);
  }
  reset_stats();
}

}  // namespace tsb::rt
