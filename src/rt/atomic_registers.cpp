#include "rt/atomic_registers.hpp"

#include <cassert>

namespace tsb::rt {

AtomicRegisterArray::AtomicRegisterArray(std::size_t size)
    : size_(size), cells_(std::make_unique<Cell[]>(size)) {}

std::uint64_t AtomicRegisterArray::read(std::size_t r) const {
  assert(r < size_);
  cells_[r].reads.fetch_add(1, std::memory_order_relaxed);
  return cells_[r].value.load(std::memory_order_seq_cst);
}

void AtomicRegisterArray::write(std::size_t r, std::uint64_t v) {
  assert(r < size_);
  cells_[r].writes.fetch_add(1, std::memory_order_relaxed);
  cells_[r].written.store(1, std::memory_order_relaxed);
  cells_[r].value.store(v, std::memory_order_seq_cst);
}

std::uint64_t AtomicRegisterArray::total_reads() const {
  std::uint64_t sum = 0;
  for (std::size_t r = 0; r < size_; ++r) {
    sum += cells_[r].reads.load(std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t AtomicRegisterArray::total_writes() const {
  std::uint64_t sum = 0;
  for (std::size_t r = 0; r < size_; ++r) {
    sum += cells_[r].writes.load(std::memory_order_relaxed);
  }
  return sum;
}

std::size_t AtomicRegisterArray::distinct_registers_written() const {
  std::size_t count = 0;
  for (std::size_t r = 0; r < size_; ++r) {
    count += cells_[r].written.load(std::memory_order_relaxed);
  }
  return count;
}

std::vector<std::size_t> AtomicRegisterArray::written_registers() const {
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < size_; ++r) {
    if (cells_[r].written.load(std::memory_order_relaxed)) out.push_back(r);
  }
  return out;
}

void AtomicRegisterArray::reset_stats() {
  for (std::size_t r = 0; r < size_; ++r) {
    cells_[r].reads.store(0, std::memory_order_relaxed);
    cells_[r].writes.store(0, std::memory_order_relaxed);
    cells_[r].written.store(0, std::memory_order_relaxed);
  }
}

void AtomicRegisterArray::reset(std::uint64_t value) {
  for (std::size_t r = 0; r < size_; ++r) {
    cells_[r].value.store(value, std::memory_order_seq_cst);
  }
  reset_stats();
}

}  // namespace tsb::rt
