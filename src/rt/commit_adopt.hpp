#pragma once

#include <cstdint>

#include "rt/atomic_registers.hpp"

namespace tsb::rt {

/// Commit-adopt (Gafni's reconciliation primitive) from 2n single-writer
/// registers — the round building block of the classic obstruction-free
/// and randomized consensus protocols ([AH90]-style) in this repository.
///
/// propose(p, v) returns (decision, value) with the guarantees:
///  * if every caller proposes the same v, every caller commits v;
///  * if any caller commits v, every caller returns value v (commit or
///    adopt), and no other value is ever committed;
///  * wait-free: two writes and two collects.
///
/// Register layout within the backing array, starting at `base`:
///   A[p] = base + p       (phase-1 proposals)
///   B[p] = base + n + p   (phase-2 proposals with a "saw uniform" flag)
/// Values must fit in 31 bits; 0 encodes "empty".
class CommitAdopt {
 public:
  CommitAdopt(AtomicRegisterArray& regs, std::size_t base, int n);

  static std::size_t registers_needed(int n) {
    return 2 * static_cast<std::size_t>(n);
  }

  struct Result {
    bool commit = false;    ///< safe to decide `value`
    bool anchored = false;  ///< some phase-2 entry was uniform: `value` is
                            ///< the only possibly-committed value
    std::uint64_t value = 0;
  };

  Result propose(int p, std::uint64_t v);

 private:
  AtomicRegisterArray& regs_;
  std::size_t base_;
  int n_;
};

}  // namespace tsb::rt
