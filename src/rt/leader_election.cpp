#include "rt/leader_election.hpp"

#include <cassert>

#include "rt/harness.hpp"

namespace tsb::rt {

namespace {
int leaves_for(int n) {
  int leaves = 1;
  while (leaves < n) leaves <<= 1;
  return leaves;
}
int height_for(int n) {
  int leaves = 1, height = 0;
  while (leaves < n) {
    leaves <<= 1;
    ++height;
  }
  return height;
}
// Register roles within a node.
constexpr int kFlag0 = 0;
constexpr int kFlag1 = 1;
constexpr int kTurn = 2;   // 0 = unset, else side+1
constexpr int kWon = 3;    // 0 = unset, else side+1
}  // namespace

RtLeaderElection::RtLeaderElection(int n)
    : n_(n),
      leaves_(leaves_for(n)),
      height_(height_for(n)),
      regs_(static_cast<std::size_t>(
          4 * (leaves_for(n) > 1 ? leaves_for(n) - 1 : 1))) {
  assert(n >= 1);
}

bool RtLeaderElection::duel(int node, int side) {
  regs_.write(reg(node, kFlag0 + side), 1);
  regs_.write(reg(node, kTurn), static_cast<std::uint64_t>(side + 1));
  std::uint32_t round = 0;
  for (;;) {
    if (regs_.read(reg(node, kFlag0 + (1 - side))) == 0) return true;
    const std::uint64_t turn = regs_.read(reg(node, kTurn));
    if (turn == static_cast<std::uint64_t>((1 - side) + 1)) return true;
    const std::uint64_t won = regs_.read(reg(node, kWon));
    if (won == static_cast<std::uint64_t>((1 - side) + 1)) return false;
    spin_backoff(round);
  }
}

bool RtLeaderElection::participate(int p) {
  assert(p >= 0 && p < n_);
  if (n_ == 1) return true;
  for (int level = 1; level <= height_; ++level) {
    const int node = node_at(p, level);
    const int side = side_at(p, level);
    if (!duel(node, side)) return false;  // lost: not the leader
    regs_.write(reg(node, kWon), static_cast<std::uint64_t>(side + 1));
  }
  return true;  // won every duel up to the root
}

}  // namespace tsb::rt
