#pragma once

#include <cstdint>
#include <string>

#include "rt/atomic_registers.hpp"

namespace tsb::rt {

/// Runtime mutual-exclusion locks over instrumented atomic registers —
/// the multithreaded counterparts of the mutex-module algorithms, used by
/// the throughput experiment (E10) and the exclusion stress tests.
class RtMutex {
 public:
  virtual ~RtMutex() = default;
  virtual std::string name() const = 0;
  virtual int num_processes() const = 0;
  virtual void lock(int p) = 0;
  virtual void unlock(int p) = 0;
  virtual const AtomicRegisterArray& registers() const = 0;
};

/// Peterson's n-process filter lock on atomics.
class RtPetersonMutex final : public RtMutex {
 public:
  explicit RtPetersonMutex(int n);
  std::string name() const override;
  int num_processes() const override { return n_; }
  void lock(int p) override;
  void unlock(int p) override;
  const AtomicRegisterArray& registers() const override { return regs_; }

 private:
  // Registers: level[i] = i, waiting[m] = n + m. Values are offset by one
  // so the "empty"/-1 level is register value 0.
  int n_;
  AtomicRegisterArray regs_;
};

/// Tournament of two-process Peterson locks on atomics.
class RtTournamentMutex final : public RtMutex {
 public:
  explicit RtTournamentMutex(int n);
  std::string name() const override;
  int num_processes() const override { return n_; }
  void lock(int p) override;
  void unlock(int p) override;
  const AtomicRegisterArray& registers() const override { return regs_; }

 private:
  int node_at(int p, int level) const { return (leaves_ + p) >> level; }
  int side_at(int p, int level) const {
    return ((leaves_ + p) >> (level - 1)) & 1;
  }
  std::size_t reg_flag(int node, int side) const {
    return static_cast<std::size_t>(3 * (node - 1) + side);
  }
  std::size_t reg_turn(int node) const {
    return static_cast<std::size_t>(3 * (node - 1) + 2);
  }

  int n_;
  int leaves_;
  int height_;
  AtomicRegisterArray regs_;
};

/// Lamport's bakery lock on atomics. 2n registers: choosing[i] = i,
/// number[i] = n + i. Unlike the Peterson variants it is first-come
/// first-served, and its doorway/ticket structure gives the chaos
/// campaigns a third, structurally different exclusion algorithm to stall.
class RtBakeryMutex final : public RtMutex {
 public:
  explicit RtBakeryMutex(int n);
  std::string name() const override;
  int num_processes() const override { return n_; }
  void lock(int p) override;
  void unlock(int p) override;
  const AtomicRegisterArray& registers() const override { return regs_; }

 private:
  std::size_t reg_choosing(int i) const { return static_cast<std::size_t>(i); }
  std::size_t reg_number(int i) const {
    return static_cast<std::size_t>(n_ + i);
  }

  int n_;
  AtomicRegisterArray regs_;
};

}  // namespace tsb::rt
