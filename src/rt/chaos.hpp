#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tsb::rt::chaos {

/// The rt algorithms a chaos campaign can target. Crash injections make
/// sense only for the wait-free / obstruction-free targets (consensus,
/// commit-adopt): the mutexes and leader election are deadlock-free only
/// when no participant crashes (a crashed lock holder legitimately strands
/// its peers), so those targets receive stall/yield faults only.
enum class Target : std::uint8_t {
  kBallot,       ///< RtBallotConsensus
  kRounds,       ///< RtRoundsConsensus
  kRandomized,   ///< RtRandomizedConsensus (local coin)
  kCommitAdopt,  ///< CommitAdopt, single instance
  kLeader,       ///< RtLeaderElection
  kPeterson,     ///< RtPetersonMutex
  kTournament,   ///< RtTournamentMutex
  kBakery,       ///< RtBakeryMutex
};

const char* target_name(Target t);

/// Every target, in declaration order — the default campaign rotation.
std::vector<Target> all_targets();

/// Parse a comma-separated target list ("ballot,bakery,commit-adopt");
/// "all" (or empty) yields all_targets(). Returns false on an unknown name.
bool parse_targets(const std::string& csv, std::vector<Target>* out);

struct Options {
  int runs = 100;            ///< total runs, split across targets by seed
  std::uint64_t seed = 1;    ///< campaign seed; run i uses seed + i
  int n = 4;                 ///< processes per run
  std::vector<Target> targets;  ///< empty = all targets

  // Fault mix: which injection kinds the plan generator may draw.
  bool allow_crash = true;
  bool allow_stall = true;
  bool allow_yield = true;

  std::uint64_t step_budget = 500'000;  ///< global scheduler steps per run
  std::uint64_t solo_budget = 50'000;   ///< survivor's own access budget in
                                        ///< solo (NST) runs
  std::uint64_t run_timeout_ms = 5'000; ///< wall-clock backstop per run
  int change_points = 16;               ///< PCT priority-change points
};

/// Campaign aggregate. ok() is the acceptance question: no safety
/// violation and every crash-all-but-one run solo-terminated. Timeouts are
/// tracked separately — on the obstruction-free targets an adversarial
/// schedule may legitimately exhaust the step budget without anything
/// being *wrong*, and the CLI maps that to its own exit code.
struct Result {
  int runs = 0;
  int violations = 0;
  int solo_runs = 0;
  int solo_failures = 0;
  int timeouts = 0;
  int crashes = 0;  ///< injections planned, summed over runs
  int stalls = 0;
  int yields = 0;
  std::uint64_t total_steps = 0;
  std::string first_violation;  ///< first failing run's detail + seed

  bool ok() const { return violations == 0 && solo_failures == 0; }

  /// The one-line JSON summary `tsb chaos` prints (and appends to the
  /// chaos sink). Deterministic: no timestamps.
  std::string summary_json(const Options& opts) const;
};

/// Run a seeded chaos campaign. Run i is a pure function of (seed + i,
/// targets, n, fault-mix flags): the same options replay bit-identically,
/// and any single run replays standalone via {seed = campaign_seed + i,
/// runs = 1}. Per-run records are appended to obs::chaos_sink() when it is
/// open; records carry no timestamps so whole files byte-compare.
Result run_campaign(const Options& opts);

}  // namespace tsb::rt::chaos
