#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace tsb::rt::fault {

/// Why a chaos-injected thread is being unwound. Thrown out of an
/// instrumented register access; the chaos harness catches it, reports the
/// thread's fate to the scheduler, and lets the thread exit cleanly (so
/// join() never hangs on a "crashed" process).
struct ThreadCrashed {
  enum class Why : std::uint8_t {
    kPlanned,  ///< the FaultPlan crashed this thread at this access
    kBudget,   ///< per-thread step budget exceeded (liveness watchdog)
    kAborted,  ///< the whole run was aborted (wall timeout / step budget)
  };
  Why why = Why::kPlanned;
};

/// One scripted fault, keyed by the victim thread's own access count
/// (1-based: at_access = 1 fires on the thread's first register access).
struct Injection {
  enum class Action : std::uint8_t {
    kCrash,  ///< unwind the thread permanently
    kStall,  ///< deschedule the thread for `arg` global scheduler steps
    kYield,  ///< demote the thread to lowest priority (forced reschedule)
  };
  std::uint64_t at_access = 0;
  Action action = Action::kYield;
  std::uint64_t arg = 0;  ///< stall length; unused otherwise
};

/// A deterministic per-thread fault script. Building one from a seed and
/// replaying it always injects the same faults at the same access indices;
/// under the cooperative ChaosScheduler the whole run replays bit-identically.
struct FaultPlan {
  explicit FaultPlan(int threads = 0)
      : per_thread(static_cast<std::size_t>(threads)) {}

  /// per_thread[t], sorted by at_access (append in order or call sort()).
  std::vector<std::vector<Injection>> per_thread;

  FaultPlan& crash(int t, std::uint64_t at_access);
  FaultPlan& stall(int t, std::uint64_t at_access, std::uint64_t steps);
  FaultPlan& yield(int t, std::uint64_t at_access);

  /// Restore the per-thread at_access ordering after out-of-order appends.
  void sort();

  int crashes() const;
  int stalls() const;
  int yields() const;

  /// Canonical compact encoding ("t0:crash@3 t1:stall@5x12 ..."), used by
  /// the determinism tests and the chaos run records.
  std::string to_string() const;
};

/// Consumer of instrumented accesses from chaos-bound threads — the
/// ChaosScheduler. `access` is the calling thread's own 1-based access
/// counter; `reg` is kInterleave for explicit interleave points.
class AccessHook {
 public:
  virtual ~AccessHook() = default;
  virtual void on_access(int tid, std::uint64_t access, std::size_t reg,
                         bool is_write) = 0;
};

/// Sentinel register index for fault::interleave() scheduling points.
inline constexpr std::size_t kInterleave = static_cast<std::size_t>(-1);

namespace detail {
// Count of threads currently bound to a hook, process-wide. The gate an
// uninstrumented access pays is exactly one relaxed load of this word.
extern std::atomic<int> g_bound_threads;
void dispatch(std::size_t reg, bool is_write);
}  // namespace detail

/// Per-access hook, called by AtomicRegisterArray::read/write. When no
/// chaos run is active anywhere in the process this is one relaxed load
/// and an untaken branch; threads not bound to a hook (e.g. unrelated
/// tests running concurrently) fall out of dispatch on a thread-local.
inline void on_access(std::size_t reg, bool is_write) {
  if (detail::g_bound_threads.load(std::memory_order_relaxed) != 0) {
    detail::dispatch(reg, is_write);
  }
}

/// An explicit scheduling point for code whose critical work does not
/// touch shared registers (e.g. the chaos campaign's critical-section
/// overlap probe). No-op when the calling thread is not chaos-bound.
inline void interleave() { on_access(kInterleave, false); }

/// Bind the calling thread to `hook` as logical thread `tid`: every
/// instrumented access it performs is routed through hook->on_access with
/// a fresh 1-based access counter. Unbind before the thread exits.
void bind_thread(AccessHook* hook, int tid);
void unbind_thread();

/// True while the calling thread is bound (accesses are being injected).
bool thread_bound();

}  // namespace tsb::rt::fault
