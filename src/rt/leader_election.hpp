#pragma once

#include <cstdint>
#include <string>

#include "rt/atomic_registers.hpp"

namespace tsb::rt {

/// Weak leader election — the paper's contrast problem: each process
/// learns only whether *it* was chosen; exactly one process ever wins.
/// (The GHHW line of work the paper cites solves it deterministically and
/// obstruction-free in O(log n) registers, far below the Omega(n) wall
/// consensus hits; that construction is intricate and out of scope here.)
///
/// This implementation is a tournament of two-party duels. Each duel is a
/// Peterson-style handshake (flag[2], turn) plus a result register the
/// winner announces through:
///
///   flag[s] := 1; turn := s
///   spin: flag[1-s] == 0        -> WIN  (peer absent so far: any peer
///                                        arriving later writes turn after
///                                        me and loses by the turn rule)
///   or:   turn == 1-s           -> WIN  (peer wrote turn after me)
///   or:   won == 1-s            -> LOSE (peer announced)
///   winner: won := s
///
/// With both parties present, the later turn-writer observes turn == own
/// side and waits for the announcement; the earlier one wins via the turn
/// rule. Exactly one wins. Losers return immediately (weak LE needs no
/// more). Liveness is deadlock-freedom assuming no crashes: a process that
/// stops forever mid-duel can strand its peer — deterministic wait-free
/// leader election from registers is impossible, and matching GHHW's
/// obstruction-freedom needs their machinery.
class RtLeaderElection {
 public:
  explicit RtLeaderElection(int n);

  std::string name() const {
    return "rt-leader-election(n=" + std::to_string(n_) + ")";
  }
  int num_processes() const { return n_; }

  /// Returns true for exactly one participant.
  bool participate(int p);

  const AtomicRegisterArray& registers() const { return regs_; }

 private:
  // Per tree node: flag0, flag1, turn, won (4 registers).
  int node_at(int p, int level) const { return (leaves_ + p) >> level; }
  int side_at(int p, int level) const {
    return ((leaves_ + p) >> (level - 1)) & 1;
  }
  std::size_t reg(int node, int which) const {
    return static_cast<std::size_t>(4 * (node - 1) + which);
  }

  bool duel(int node, int side);

  int n_;
  int leaves_;
  int height_;
  AtomicRegisterArray regs_;
};

}  // namespace tsb::rt
