#include "bound/valency.hpp"

#include <cassert>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace tsb::bound {

std::size_t ValencyOracle::PairKeyHash::operator()(const PairKey& k) const {
  std::uint64_t h = static_cast<std::uint64_t>(k.root);
  h = util::hash_combine(h, k.pbits);
  return static_cast<std::size_t>(h);
}

bool ValencyOracle::can_decide(const Config& c, ProcSet p, Value v) {
  TSB_REQUIRE(v == 0 || v == 1, "valency queries are binary");
  ++queries_;
  return lookup(c, p).can[v];
}

Value ValencyOracle::some_decidable(const Config& c, ProcSet p) {
  if (can_decide(c, p, 0)) return 0;
  TSB_REQUIRE(can_decide(c, p, 1),
              "Proposition 1(i) violated: some set can decide nothing — the "
              "protocol is not solo terminating at a queried configuration "
              "(for capped protocols: raise the cap)");
  return 1;
}

std::optional<Schedule> ValencyOracle::deciding_schedule(const Config& c,
                                                         ProcSet p, Value v) {
  TSB_REQUIRE(v == 0 || v == 1, "valency queries are binary");
  ++queries_;
  const PairAnswer& a = lookup(c, p);
  if (!a.can[v]) return std::nullopt;
  return a.witness[v];
}

const ValencyOracle::PairAnswer& ValencyOracle::lookup(const Config& c,
                                                       ProcSet p) {
  roots_.pack(c, roots_.scratch());
  const PairKey key{roots_.intern_scratch().id, p.bits()};
  if (auto it = memo_.find(key); it != memo_.end()) {
    ++cache_hits_;
    return it->second;
  }
  PairAnswer answer = compute_pair(c, p);
  return memo_.emplace(key, std::move(answer)).first->second;
}

ValencyOracle::PairAnswer ValencyOracle::compute_pair(const Config& c,
                                                      ProcSet p) {
  ++explorations_;
  const int n = proto_.num_processes();
  sim::ConfigId found[2] = {sim::kNoConfig, sim::kNoConfig};
  // One pass answers both values: scan each visited configuration for
  // deciding processes (matching some_decided) and keep going until both
  // a 0-deciding and a 1-deciding configuration have been seen — or the
  // P-only space is exhausted, which makes the negative answers exact.
  auto visit = [&](const sim::ConfigView& cv) {
    for (sim::ProcId q = 0; q < n; ++q) {
      const sim::PendingOp op = proto_.poised(q, cv.states[q]);
      if (!op.is_decide()) continue;
      const sim::Value v = op.value;
      if ((v == 0 || v == 1) && found[v] == sim::kNoConfig) found[v] = cv.id;
    }
    return found[0] == sim::kNoConfig || found[1] == sim::kNoConfig;
  };

  PairAnswer answer;
  auto finish = [&](auto& explorer, const sim::ExploreResult& res) {
    // A truncated pass can only under-report; positive answers found
    // before the cap are still sound.
    if (res.truncated) ever_truncated_ = true;
    for (int v = 0; v < 2; ++v) {
      if (found[v] == sim::kNoConfig) continue;
      answer.can[v] = true;
      auto w = explorer.witness_by_id(found[v]);
      assert(w.has_value());
      answer.witness[v] = std::move(*w);
    }
  };

  if (opts_.threads > 1) {
    if (!par_) {
      par_.emplace(proto_, sim::ParallelExplorer::Options{opts_.max_configs,
                                                          opts_.threads});
    }
    finish(*par_, par_->explore(c, p, visit));
  } else {
    if (!seq_) {
      seq_.emplace(proto_, sim::Explorer::Options{opts_.max_configs});
    }
    finish(*seq_, seq_->explore(c, p, visit));
  }
  return answer;
}

}  // namespace tsb::bound
