#include "bound/valency.hpp"

#include <cassert>
#include <cstring>

#include "obs/flight.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/memledger.hpp"
#include "util/checkpoint.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace tsb::bound {

namespace {
// One audit record per public valency query: which configuration (root id
// in the oracle's arena), which processes, which value, the verdict,
// whether the memo answered, and the witness configuration the verdict
// rests on. `tsb report` aggregates these into the cache-stats table and
// cross-links them to lemma events through the config field.
void audit_query(const char* op, sim::ConfigId root, ProcSet p, Value v,
                 bool answer, bool memo_hit, sim::ConfigId witness) {
  obs::JsonObj ev = obs::audit_event("valency");
  ev.str("op", op)
      .num("config", static_cast<std::int64_t>(root))
      .raw("procs", obs::json_int_array(p.to_vector()))
      .num("v", static_cast<std::int64_t>(v))
      .boolean("answer", answer)
      .boolean("memo_hit", memo_hit);
  if (witness != sim::kNoConfig) {
    ev.num("witness", static_cast<std::int64_t>(witness));
  }
  obs::audit_sink().write(ev.render());
}
}  // namespace

std::size_t ValencyOracle::PairKeyHash::operator()(const PairKey& k) const {
  std::uint64_t h = static_cast<std::uint64_t>(k.root);
  h = util::hash_combine(h, k.pbits);
  return static_cast<std::size_t>(h);
}

bool ValencyOracle::can_decide(const Config& c, ProcSet p, Value v) {
  TSB_REQUIRE(v == 0 || v == 1, "valency queries are binary");
  ++queries_;
  const PairAnswer& a = lookup(c, p);
  if (obs::audit_enabled()) {
    audit_query("can_decide", last_root_id_, p, v, a.can[v], last_lookup_hit_,
                a.witness_id[v]);
  }
  return a.can[v];
}

Value ValencyOracle::some_decidable(const Config& c, ProcSet p) {
  if (can_decide(c, p, 0)) return 0;
  TSB_REQUIRE(can_decide(c, p, 1),
              "Proposition 1(i) violated: some set can decide nothing — the "
              "protocol is not solo terminating at a queried configuration "
              "(for capped protocols: raise the cap)");
  return 1;
}

std::optional<Schedule> ValencyOracle::deciding_schedule(const Config& c,
                                                         ProcSet p, Value v) {
  TSB_REQUIRE(v == 0 || v == 1, "valency queries are binary");
  ++queries_;
  const PairAnswer& a = lookup(c, p);
  if (obs::audit_enabled()) {
    audit_query("deciding_schedule", last_root_id_, p, v, a.can[v],
                last_lookup_hit_, a.witness_id[v]);
  }
  if (!a.can[v]) return std::nullopt;
  return decanonicalize(a.witness[v], last_perm_);
}

Schedule ValencyOracle::decanonicalize(const Schedule& s,
                                       sim::ProcPerm pi) const {
  if (pi.is_identity()) return s;
  const sim::ProcPerm inv = pi.inverse();
  std::vector<sim::ProcId> steps;
  steps.reserve(s.size());
  for (const sim::ProcId q : s.steps()) steps.push_back(inv(q));
  return Schedule(std::move(steps));
}

void ValencyOracle::check_deadline() const {
  // Wall-clock watchdog: don't even start a pass past the deadline. Both
  // backends re-check it mid-pass, so a single long pass cannot hang
  // either.
  if (deadline_ != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() >= deadline_) {
    throw util::BudgetExhausted(
        "valency oracle wall-clock budget exhausted (" +
        std::to_string(opts_.time_budget_ms) + " ms)");
  }
}

sim::ReachGraph& ValencyOracle::ensure_graph() {
  if (!graph_) {
    graph_ = std::make_unique<sim::ReachGraph>(
        proto_, sim::ReachGraph::Options{
                    .max_configs = opts_.max_configs,
                    .threads = opts_.threads,
                    .max_arena_bytes = opts_.max_arena_bytes,
                    .spill_dir = opts_.spill_dir,
                    .spill_threshold_bytes = opts_.spill_threshold_bytes,
                    .spill_seg_configs = opts_.spill_seg_configs,
                    .graph_spill = opts_.graph_spill});
    graph_->set_deadline(deadline_);
  }
  return *graph_;
}

const ValencyOracle::PairAnswer& ValencyOracle::lookup(const Config& c,
                                                       ProcSet p) {
  roots_.pack(c, roots_.scratch());
  last_root_id_ = roots_.intern_scratch().id;
  last_perm_ = sim::ProcPerm::identity();
  PairKey key{last_root_id_, p.bits()};
  if (opts_.reuse) {
    ensure_graph();
    // Memoize on the canonical projected (config, ProcSet-orbit, ambient)
    // triple, so any two queries the engine cannot distinguish — same
    // P-states, registers, frozen-process decide bits — share one entry;
    // audit ids stay in the roots_ space above. Ambient rides in bits the
    // P mask can never reach (n <= 28 whenever facts/ambient are live).
    const sim::ReachGraph::Node node = graph_->intern_node(c, p, &last_perm_);
    key = PairKey{node.id,
                  node.pbits | (static_cast<std::uint64_t>(node.ambient) << 60)};
  }
  if (auto it = memo_.find(key); it != memo_.end()) {
    ++cache_hits_;
    last_lookup_hit_ = true;
    obs::flight::record(obs::flight::Ev::kValencyQuery,
                        static_cast<std::int64_t>(last_root_id_), 1);
    return it->second;
  }
  last_lookup_hit_ = false;
  obs::flight::record(obs::flight::Ev::kValencyQuery,
                      static_cast<std::int64_t>(last_root_id_), 0);
  PairAnswer answer =
      opts_.reuse ? compute_pair_shared(c, p) : compute_pair(c, p);
  if (obs::audit_enabled()) {
    obs::JsonObj ev = obs::audit_event("valency.explore");
    ev.num("config", static_cast<std::int64_t>(last_root_id_))
        .raw("procs", obs::json_int_array(p.to_vector()))
        .boolean("can0", answer.can[0])
        .boolean("can1", answer.can[1]);
    obs::audit_sink().write(ev.render());
  }
  const PairAnswer& stored = memo_.emplace(key, std::move(answer)).first->second;
  // Memo growth only happens here (one entry per miss), so this is the
  // natural ledger refresh point. An approximation: node + entry bytes per
  // bucket, the witness schedules' steps (accumulated — entries are never
  // evicted), and the root-id arena.
  for (int v = 0; v < 2; ++v) {
    memo_witness_bytes_ += stored.witness[v].size() * sizeof(sim::ProcId);
  }
  const std::size_t memo_bytes =
      memo_.bucket_count() * sizeof(void*) +
      memo_.size() *
          (sizeof(PairKey) + sizeof(PairAnswer) + 2 * sizeof(void*)) +
      memo_witness_bytes_;
  obs::MemLedger::global().set(obs::MemAccount::kValencyMemo,
                               memo_bytes + roots_.memory_bytes());
  return stored;
}

ValencyOracle::PairAnswer ValencyOracle::compute_pair_shared(const Config& c,
                                                             ProcSet p) {
  ++explorations_;
  check_deadline();
  sim::ProcPerm perm;
  sim::ReachGraph::QueryResult qr = graph_->query(c, p, &perm);
  last_perm_ = perm;
  if (qr.truncated) ever_truncated_ = true;

  PairAnswer answer;
  bool replay_ok = true;
  for (int v = 0; v < 2; ++v) {
    if (!qr.can[v]) continue;
    answer.can[v] = true;
    answer.witness_id[v] = qr.witness_id[v];
    answer.witness[v] = std::move(qr.witness[v]);
    // De-canonicalized replay through the raw engine: the canonical-frame
    // witness, translated into the caller's process ids, must decide v
    // from the *original* configuration. This is the soundness check on
    // the whole reuse/symmetry machinery, run on every fresh witness.
    const Schedule w = decanonicalize(answer.witness[v], perm);
    const Config end = sim::run(proto_, c, w);
    replay_ok = replay_ok && sim::some_decided(proto_, end, v);
  }

  if (obs::stats_enabled()) {
    obs::JsonObj rec;
    rec.str("type", "valency.reuse")
        .num("config", static_cast<std::int64_t>(last_root_id_))
        .raw("procs", obs::json_int_array(p.to_vector()))
        .num("expanded", static_cast<std::int64_t>(qr.expanded))
        .num("reused", static_cast<std::int64_t>(qr.reused))
        .num("visited", static_cast<std::int64_t>(qr.visited))
        .boolean("from_facts", qr.from_facts)
        .boolean("truncated", qr.truncated)
        .boolean("can0", qr.can[0])
        .boolean("can1", qr.can[1])
        .boolean("replay_ok", replay_ok)
        .num("graph_nodes", static_cast<std::int64_t>(graph_->nodes()))
        .num("facts", static_cast<std::int64_t>(graph_->fact_entries()));
    obs::stats_sink().write(rec.render());
    if (graph_->symmetric()) {
      obs::JsonObj orb;
      orb.str("type", "canonical.orbit")
          .num("config", static_cast<std::int64_t>(last_root_id_))
          .num("canonical",
               static_cast<std::int64_t>(graph_->intern_node(c, p, nullptr).id))
          .raw("procs", obs::json_int_array(p.to_vector()))
          .boolean("identity", perm.is_identity());
      obs::stats_sink().write(orb.render());
    }
  }
  // The record above is written first so `tsb report` can flag the failure
  // from artifacts even though the run itself dies right here.
  TSB_REQUIRE(replay_ok,
              "shared-graph witness failed de-canonicalized replay — "
              "reachability engine or a Protocol::symmetric() declaration "
              "is unsound");
  return answer;
}

ValencyOracle::PairAnswer ValencyOracle::compute_pair(const Config& c,
                                                      ProcSet p) {
  ++explorations_;
  check_deadline();
  const int n = proto_.num_processes();
  sim::ConfigId found[2] = {sim::kNoConfig, sim::kNoConfig};
  // One pass answers both values: scan each visited configuration for
  // deciding processes (matching some_decided) and keep going until both
  // a 0-deciding and a 1-deciding configuration have been seen — or the
  // P-only space is exhausted, which makes the negative answers exact.
  auto visit = [&](const sim::ConfigView& cv) {
    for (sim::ProcId q = 0; q < n; ++q) {
      const sim::PendingOp op = proto_.poised(q, cv.states[q]);
      if (!op.is_decide()) continue;
      const sim::Value v = op.value;
      if ((v == 0 || v == 1) && found[v] == sim::kNoConfig) found[v] = cv.id;
    }
    return found[0] == sim::kNoConfig || found[1] == sim::kNoConfig;
  };

  PairAnswer answer;
  auto finish = [&](auto& explorer, const sim::ExploreResult& res) {
    // A truncated pass can only under-report; positive answers found
    // before the cap are still sound. A *budget* truncation with a value
    // still unresolved must not produce a negative answer at all — the
    // graceful-degradation contract is a distinct failure, not a verdict.
    if (res.budget_exhausted &&
        (found[0] == sim::kNoConfig || found[1] == sim::kNoConfig)) {
      throw util::BudgetExhausted(
          "valency query exceeded its memory/time budget with a value "
          "undetermined; negative answers would be unsound");
    }
    if (res.truncated) ever_truncated_ = true;
    for (int v = 0; v < 2; ++v) {
      if (found[v] == sim::kNoConfig) continue;
      answer.can[v] = true;
      answer.witness_id[v] = found[v];
      auto w = explorer.witness_by_id(found[v]);
      assert(w.has_value());
      answer.witness[v] = std::move(*w);
    }
  };

  if (opts_.threads > 1) {
    if (!par_) {
      sim::ParallelExplorer::Options popts;
      popts.max_configs = opts_.max_configs;
      popts.threads = opts_.threads;
      if (opts_.chunk_configs != 0) popts.chunk_configs = opts_.chunk_configs;
      if (opts_.parallel_threshold != 0) {
        popts.parallel_threshold = opts_.parallel_threshold;
      }
      par_.emplace(proto_, popts);
      par_->set_budget(opts_.max_arena_bytes, deadline_);
      if (opts_.spill_threshold_bytes != 0 && !opts_.spill_dir.empty()) {
        par_->set_spill(opts_.spill_dir, opts_.spill_threshold_bytes,
                        opts_.spill_seg_configs);
      }
    }
    finish(*par_, par_->explore(c, p, visit));
  } else {
    if (!seq_) {
      seq_.emplace(proto_, sim::Explorer::Options{opts_.max_configs});
      seq_->set_budget(opts_.max_arena_bytes, deadline_);
      if (opts_.spill_threshold_bytes != 0 && !opts_.spill_dir.empty()) {
        seq_->set_spill(opts_.spill_dir, opts_.spill_threshold_bytes,
                        opts_.spill_seg_configs);
      }
    }
    finish(*seq_, seq_->explore(c, p, visit));
  }
  return answer;
}

// --- checkpoint/resume ----------------------------------------------------

std::string ValencyOracle::state_fingerprint() const {
  // Everything that changes verdicts or the serialized layout; formatted
  // as stable text so the manifest diff on a mismatch is human-readable.
  return "proto=" + proto_.name() +
         " n=" + std::to_string(proto_.num_processes()) +
         " m=" + std::to_string(proto_.num_registers()) +
         " cap=" + std::to_string(opts_.max_configs) +
         " reuse=" + (opts_.reuse ? std::string("1") : std::string("0")) +
         " spill_thresh=" + std::to_string(opts_.spill_threshold_bytes) +
         " spill_seg=" + std::to_string(opts_.spill_seg_configs) +
         " ckpt_fmt=" + std::to_string(util::ckpt::kFormatVersion);
}

void ValencyOracle::save_state(util::ckpt::SectionWriter& w) const {
  w.begin("oracle");
  w.put_u8(opts_.reuse ? 1 : 0);
  w.put_u8(graph_ ? 1 : 0);
  w.end();

  w.begin("roots");
  const std::size_t W = roots_.words_per_config();
  const std::size_t count = roots_.size();
  w.put_u64(count);
  for (std::size_t id = 0; id < count; ++id) {
    w.put_bytes(roots_.words(static_cast<sim::ConfigId>(id)),
                W * sizeof(sim::Value));
  }
  w.end();

  w.begin("memo");
  w.put_u64(memo_.size());
  for (const auto& [key, a] : memo_) {
    w.put_u32(key.root);
    w.put_u64(key.pbits);
    for (int v = 0; v < 2; ++v) {
      w.put_u8(a.can[v] ? 1 : 0);
      w.put_u32(a.witness_id[v]);
      const auto& steps = a.witness[v].steps();
      w.put_u32(static_cast<std::uint32_t>(steps.size()));
      for (const sim::ProcId q : steps) {
        w.put_u8(static_cast<std::uint8_t>(q));
      }
    }
  }
  w.end();

  if (graph_) graph_->save(w);
}

void ValencyOracle::restore_state(util::ckpt::SectionReader& r) {
  TSB_REQUIRE(roots_.size() == 0 && memo_.empty() && !graph_,
              "ValencyOracle::restore_state requires a fresh oracle");
  r.expect("oracle");
  const bool saved_reuse = r.get_u8() != 0;
  const bool has_graph = r.get_u8() != 0;
  r.done();
  if (saved_reuse != opts_.reuse) {
    throw util::CheckpointInvalid(
        "checkpoint was written with --reuse " +
        std::string(saved_reuse ? "on" : "off") +
        " but this run has it " + (opts_.reuse ? "on" : "off") +
        "; memo keys are not comparable across modes");
  }

  r.expect("roots");
  const std::size_t W = roots_.words_per_config();
  const std::uint64_t root_count = r.get_u64();
  for (std::uint64_t i = 0; i < root_count; ++i) {
    std::memcpy(roots_.scratch(), r.get_bytes(W * sizeof(sim::Value)),
                W * sizeof(sim::Value));
    const auto res = roots_.intern_scratch();
    if (!res.inserted || static_cast<std::uint64_t>(res.id) != i) {
      throw util::CheckpointInvalid(
          "checkpoint roots section re-interned to a different id (root " +
          std::to_string(i) + " -> " + std::to_string(res.id) + ")");
    }
  }
  r.done();

  r.expect("memo");
  const std::uint64_t memo_count = r.get_u64();
  for (std::uint64_t i = 0; i < memo_count; ++i) {
    PairKey key{};
    key.root = r.get_u32();
    key.pbits = r.get_u64();
    PairAnswer a;
    for (int v = 0; v < 2; ++v) {
      a.can[v] = r.get_u8() != 0;
      a.witness_id[v] = r.get_u32();
      const std::uint32_t len = r.get_u32();
      std::vector<sim::ProcId> steps;
      steps.reserve(len);
      for (std::uint32_t s = 0; s < len; ++s) {
        steps.push_back(static_cast<sim::ProcId>(r.get_u8()));
      }
      a.witness[v] = Schedule(std::move(steps));
      memo_witness_bytes_ += a.witness[v].size() * sizeof(sim::ProcId);
    }
    if (!memo_.emplace(key, std::move(a)).second) {
      throw util::CheckpointInvalid(
          "checkpoint memo section carries a duplicate pair key");
    }
  }
  r.done();

  if (has_graph) {
    if (!opts_.reuse) {
      throw util::CheckpointInvalid(
          "checkpoint carries a reachability graph but reuse is off");
    }
    ensure_graph().restore(r);
  }

  const std::size_t memo_bytes =
      memo_.bucket_count() * sizeof(void*) +
      memo_.size() *
          (sizeof(PairKey) + sizeof(PairAnswer) + 2 * sizeof(void*)) +
      memo_witness_bytes_;
  obs::MemLedger::global().set(obs::MemAccount::kValencyMemo,
                               memo_bytes + roots_.memory_bytes());
}

}  // namespace tsb::bound
