#include "bound/valency.hpp"

#include <cassert>

#include "obs/jsonl_sink.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace tsb::bound {

namespace {
// One audit record per public valency query: which configuration (root id
// in the oracle's arena), which processes, which value, the verdict,
// whether the memo answered, and the witness configuration the verdict
// rests on. `tsb report` aggregates these into the cache-stats table and
// cross-links them to lemma events through the config field.
void audit_query(const char* op, sim::ConfigId root, ProcSet p, Value v,
                 bool answer, bool memo_hit, sim::ConfigId witness) {
  obs::JsonObj ev = obs::audit_event("valency");
  ev.str("op", op)
      .num("config", static_cast<std::int64_t>(root))
      .raw("procs", obs::json_int_array(p.to_vector()))
      .num("v", static_cast<std::int64_t>(v))
      .boolean("answer", answer)
      .boolean("memo_hit", memo_hit);
  if (witness != sim::kNoConfig) {
    ev.num("witness", static_cast<std::int64_t>(witness));
  }
  obs::audit_sink().write(ev.render());
}
}  // namespace

std::size_t ValencyOracle::PairKeyHash::operator()(const PairKey& k) const {
  std::uint64_t h = static_cast<std::uint64_t>(k.root);
  h = util::hash_combine(h, k.pbits);
  return static_cast<std::size_t>(h);
}

bool ValencyOracle::can_decide(const Config& c, ProcSet p, Value v) {
  TSB_REQUIRE(v == 0 || v == 1, "valency queries are binary");
  ++queries_;
  const PairAnswer& a = lookup(c, p);
  if (obs::audit_enabled()) {
    audit_query("can_decide", last_root_id_, p, v, a.can[v], last_lookup_hit_,
                a.witness_id[v]);
  }
  return a.can[v];
}

Value ValencyOracle::some_decidable(const Config& c, ProcSet p) {
  if (can_decide(c, p, 0)) return 0;
  TSB_REQUIRE(can_decide(c, p, 1),
              "Proposition 1(i) violated: some set can decide nothing — the "
              "protocol is not solo terminating at a queried configuration "
              "(for capped protocols: raise the cap)");
  return 1;
}

std::optional<Schedule> ValencyOracle::deciding_schedule(const Config& c,
                                                         ProcSet p, Value v) {
  TSB_REQUIRE(v == 0 || v == 1, "valency queries are binary");
  ++queries_;
  const PairAnswer& a = lookup(c, p);
  if (obs::audit_enabled()) {
    audit_query("deciding_schedule", last_root_id_, p, v, a.can[v],
                last_lookup_hit_, a.witness_id[v]);
  }
  if (!a.can[v]) return std::nullopt;
  return a.witness[v];
}

const ValencyOracle::PairAnswer& ValencyOracle::lookup(const Config& c,
                                                       ProcSet p) {
  roots_.pack(c, roots_.scratch());
  const PairKey key{roots_.intern_scratch().id, p.bits()};
  last_root_id_ = key.root;
  if (auto it = memo_.find(key); it != memo_.end()) {
    ++cache_hits_;
    last_lookup_hit_ = true;
    return it->second;
  }
  last_lookup_hit_ = false;
  PairAnswer answer = compute_pair(c, p);
  if (obs::audit_enabled()) {
    obs::JsonObj ev = obs::audit_event("valency.explore");
    ev.num("config", static_cast<std::int64_t>(key.root))
        .raw("procs", obs::json_int_array(p.to_vector()))
        .boolean("can0", answer.can[0])
        .boolean("can1", answer.can[1]);
    obs::audit_sink().write(ev.render());
  }
  return memo_.emplace(key, std::move(answer)).first->second;
}

ValencyOracle::PairAnswer ValencyOracle::compute_pair(const Config& c,
                                                      ProcSet p) {
  ++explorations_;
  // Wall-clock watchdog: don't even start a pass past the deadline. The
  // explorers re-check it mid-pass, so a single long pass cannot hang
  // either.
  if (deadline_ != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() >= deadline_) {
    throw util::BudgetExhausted(
        "valency oracle wall-clock budget exhausted (" +
        std::to_string(opts_.time_budget_ms) + " ms)");
  }
  const int n = proto_.num_processes();
  sim::ConfigId found[2] = {sim::kNoConfig, sim::kNoConfig};
  // One pass answers both values: scan each visited configuration for
  // deciding processes (matching some_decided) and keep going until both
  // a 0-deciding and a 1-deciding configuration have been seen — or the
  // P-only space is exhausted, which makes the negative answers exact.
  auto visit = [&](const sim::ConfigView& cv) {
    for (sim::ProcId q = 0; q < n; ++q) {
      const sim::PendingOp op = proto_.poised(q, cv.states[q]);
      if (!op.is_decide()) continue;
      const sim::Value v = op.value;
      if ((v == 0 || v == 1) && found[v] == sim::kNoConfig) found[v] = cv.id;
    }
    return found[0] == sim::kNoConfig || found[1] == sim::kNoConfig;
  };

  PairAnswer answer;
  auto finish = [&](auto& explorer, const sim::ExploreResult& res) {
    // A truncated pass can only under-report; positive answers found
    // before the cap are still sound. A *budget* truncation with a value
    // still unresolved must not produce a negative answer at all — the
    // graceful-degradation contract is a distinct failure, not a verdict.
    if (res.budget_exhausted &&
        (found[0] == sim::kNoConfig || found[1] == sim::kNoConfig)) {
      throw util::BudgetExhausted(
          "valency query exceeded its memory/time budget with a value "
          "undetermined; negative answers would be unsound");
    }
    if (res.truncated) ever_truncated_ = true;
    for (int v = 0; v < 2; ++v) {
      if (found[v] == sim::kNoConfig) continue;
      answer.can[v] = true;
      answer.witness_id[v] = found[v];
      auto w = explorer.witness_by_id(found[v]);
      assert(w.has_value());
      answer.witness[v] = std::move(*w);
    }
  };

  if (opts_.threads > 1) {
    if (!par_) {
      par_.emplace(proto_, sim::ParallelExplorer::Options{opts_.max_configs,
                                                          opts_.threads});
      par_->set_budget(opts_.max_arena_bytes, deadline_);
    }
    finish(*par_, par_->explore(c, p, visit));
  } else {
    if (!seq_) {
      seq_.emplace(proto_, sim::Explorer::Options{opts_.max_configs});
      seq_->set_budget(opts_.max_arena_bytes, deadline_);
    }
    finish(*seq_, seq_->explore(c, p, visit));
  }
  return answer;
}

}  // namespace tsb::bound
