#include "bound/valency.hpp"

#include <cassert>

#include "util/require.hpp"

#include "util/rng.hpp"

namespace tsb::bound {

std::size_t ValencyOracle::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = k.config.hash();
  h = util::hash_combine(h, k.pbits);
  h = util::hash_combine(h, static_cast<std::uint64_t>(k.v));
  return static_cast<std::size_t>(h);
}

bool ValencyOracle::can_decide(const Config& c, ProcSet p, Value v) {
  ++queries_;
  Key key{c, p.bits(), v};
  if (auto it = memo_.find(key); it != memo_.end()) {
    ++cache_hits_;
    return it->second;
  }
  const bool result = compute(c, p, v, nullptr);
  memo_.emplace(std::move(key), result);
  return result;
}

Value ValencyOracle::some_decidable(const Config& c, ProcSet p) {
  if (can_decide(c, p, 0)) return 0;
  TSB_REQUIRE(can_decide(c, p, 1),
              "Proposition 1(i) violated: some set can decide nothing — the "
              "protocol is not solo terminating at a queried configuration "
              "(for capped protocols: raise the cap)");
  return 1;
}

std::optional<Schedule> ValencyOracle::deciding_schedule(const Config& c,
                                                         ProcSet p, Value v) {
  Schedule witness;
  if (!compute(c, p, v, &witness)) return std::nullopt;
  return witness;
}

bool ValencyOracle::compute(const Config& c, ProcSet p, Value v,
                            Schedule* witness_out) {
  sim::Explorer explorer(proto_, {.max_configs = opts_.max_configs});
  auto result = explorer.explore(c, p, [&](const Config& cfg) {
    return !sim::some_decided(proto_, cfg, v);  // abort once v is decided
  });
  if (result.truncated) ever_truncated_ = true;
  if (result.aborted && witness_out != nullptr) {
    auto w = explorer.witness(*result.abort_config);
    assert(w.has_value());
    *witness_out = std::move(*w);
  }
  return result.aborted;
}

}  // namespace tsb::bound
