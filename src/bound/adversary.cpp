#include "bound/adversary.hpp"

#include "obs/flight.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace_sink.hpp"
#include "util/checkpoint.hpp"
#include "util/require.hpp"

namespace tsb::bound {

SpaceBoundAdversary::Result SpaceBoundAdversary::run() {
  try {
    return run_impl();
  } catch (const util::RequirementFailed& e) {
    // A lemma's precondition or postcondition failed: either the protocol
    // is not a correct solo-terminating consensus protocol, or a capped
    // simulation ran out of headroom. Either way: no certificate.
    Result out;
    out.error = e.what();
    return out;
  } catch (const util::BudgetExhausted& e) {
    // A configured memory/time budget tripped mid-construction. Nothing is
    // wrong with the protocol — the run is truncated cleanly, reported
    // with its own status (and exit code at the CLI), never an OOM/hang.
    Result out;
    out.budget_exhausted = true;
    out.error = e.what();
    if (obs::audit_enabled()) {
      obs::JsonObj ev = obs::audit_event("adversary.budget_exhausted");
      ev.str("protocol", proto_.name()).str("detail", e.what());
      obs::audit_sink().write(ev.render());
    }
    return out;
  } catch (const util::CheckpointStop& e) {
    // Graceful stop at a quiescent point; the final checkpoint (if a
    // directory is configured) was committed before the throw. The CLI
    // maps this to its own "checkpointed and stopped" exit code.
    Result out;
    out.stopped = true;
    out.error = e.what();
    if (obs::audit_enabled()) {
      obs::JsonObj ev = obs::audit_event("adversary.stopped");
      ev.str("protocol", proto_.name()).str("detail", e.what());
      obs::audit_sink().write(ev.render());
    }
    return out;
  }
  // util::CheckpointInvalid deliberately propagates: a corrupt or
  // mismatched checkpoint is a refusal, not a run outcome.
}

SpaceBoundAdversary::Result SpaceBoundAdversary::run_impl() {
  obs::Span span("adversary.run");
  Result out;
  const int n = proto_.num_processes();
  if (n < 2) {
    out.error = "theorem requires n >= 2";
    return out;
  }

  ValencyOracle oracle(proto_,
                       {.max_configs = opts_.valency_max_configs,
                        .threads = opts_.threads,
                        .max_arena_bytes = opts_.valency_max_arena_bytes,
                        .time_budget_ms = opts_.valency_time_budget_ms,
                        .reuse = opts_.reuse,
                        .spill_dir = opts_.spill_dir,
                        .spill_threshold_bytes = opts_.spill_threshold_bytes,
                        .spill_seg_configs = opts_.spill_seg_configs,
                        .graph_spill = opts_.graph_spill,
                        .chunk_configs = opts_.chunk_configs,
                        .parallel_threshold = opts_.parallel_threshold});

  // Checkpoint/resume wiring. The serializer captures the oracle by
  // reference, so it must be unregistered on every exit path before the
  // oracle dies — including the CheckpointStop unwind itself.
  util::ckpt::CheckpointService& ckpt = util::ckpt::CheckpointService::global();
  struct WriterGuard {
    ~WriterGuard() {
      util::ckpt::CheckpointService::global().set_writer(nullptr);
    }
  } writer_guard;
  if (!opts_.checkpoint_dir.empty()) {
    const std::string fingerprint = oracle.state_fingerprint();
    // configure() first: it reads any committed manifest to continue the
    // generation numbering, whether or not this run resumes from it.
    ckpt.configure(opts_.checkpoint_dir, opts_.checkpoint_interval_ms,
                   opts_.checkpoint_every, fingerprint);
    if (opts_.resume) {
      const util::ckpt::Manifest m = util::ckpt::Manifest::load(
          util::ckpt::manifest_path(opts_.checkpoint_dir));
      if (m.get_u64("format") != util::ckpt::kFormatVersion) {
        throw util::CheckpointInvalid(
            "checkpoint format version " + m.get("format") +
            " is not this binary's " +
            std::to_string(util::ckpt::kFormatVersion) + "; refusing to resume");
      }
      if (m.get("fingerprint") != fingerprint) {
        throw util::CheckpointInvalid(
            "checkpoint fingerprint mismatch: written by {" +
            m.get("fingerprint") + "} but this run is {" + fingerprint +
            "}; resuming across incompatible flags would silently change "
            "the campaign");
      }
      {
        util::ckpt::SectionReader r(util::ckpt::state_path(
            opts_.checkpoint_dir, m.get_u64("generation")));
        oracle.restore_state(r);
        r.expect_end();
      }
      if (m.has("telemetry_ticks")) {
        // Tick ids continue where the interrupted run's file ended, so a
        // report over the concatenated timelines keeps its monotonic-tick
        // invariant.
        obs::telemetry::set_tick_base(m.get_u64("telemetry_ticks"));
      }
      if (obs::audit_enabled()) {
        obs::JsonObj ev = obs::audit_event("adversary.resume");
        ev.str("protocol", proto_.name())
            .str("dir", opts_.checkpoint_dir)
            .num("generation",
                 static_cast<std::int64_t>(m.get_u64("generation")))
            .num("graph_nodes",
                 static_cast<std::int64_t>(oracle.graph_nodes()));
        obs::audit_sink().write(ev.render());
      }
    }
  } else if (opts_.resume) {
    throw util::CheckpointInvalid("resume requested without a checkpoint dir");
  }
  ckpt.set_writer(
      [&oracle](util::ckpt::SectionWriter& w) { oracle.save_state(w); },
      [](util::ckpt::Manifest& m) {
        m.set_u64("telemetry_ticks", obs::telemetry::ticks());
      });

  LemmaToolkit lemmas(proto_, oracle);
  lemmas.enable_narrative(opts_.narrative);

  if (obs::audit_enabled()) {
    obs::JsonObj ev = obs::audit_event("adversary.begin");
    ev.str("protocol", proto_.name())
        .num("n", n)
        .num("registers", proto_.num_registers())
        .num("threads", opts_.threads)
        .boolean("reuse", opts_.reuse)
        .boolean("spill", opts_.spill_threshold_bytes != 0)
        .boolean("graph_spill",
                 opts_.spill_threshold_bytes != 0 && opts_.graph_spill)
        .boolean("symmetric", proto_.symmetric());
    obs::audit_sink().write(ev.render());
  }

  // Proposition 2: initial bivalent configuration.
  obs::flight::record(obs::flight::Ev::kPhase, 0);
  auto init = lemmas.proposition2();
  const ProcSet everyone = ProcSet::first_n(n);

  out.certificate.protocol = proto_.name();
  out.certificate.inputs = init.inputs;

  if (n == 2) {
    // Theorem 1, n = 2 case: if p0 decided without writing, p1 could not
    // tell p0 took steps and would decide 1 from the indistinguishable
    // configuration, violating Agreement. So p0's solo run reaches a write:
    // one covered register = n - 1.
    obs::flight::record(obs::flight::Ev::kPhase, 3);
    auto esc = lemmas.solo_escape(init.config, /*z=*/0, /*covered=*/{});
    if (!esc.found) {
      out.error = "p0 decided without ever writing: protocol violates "
                  "Agreement (or is not solo terminating)";
      return out;
    }
    out.certificate.schedule = esc.zeta_prime;
    out.certificate.covering = {{0, esc.escape_reg}};
  } else {
    // Lemma 4 from the initial configuration: a pair Q bivalent from
    // I-alpha with the other n-2 processes covering distinct registers.
    obs::flight::record(obs::flight::Ev::kPhase, 1);
    auto l4 = lemmas.lemma4(init.config, everyone);
    const Config c0 = sim::run(proto_, init.config, l4.alpha);
    const ProcSet r = everyone - l4.q;

    // Lemma 3: a Q-only alpha' and q in Q with R u {q} bivalent from
    // C0-alpha'-beta.
    obs::flight::record(obs::flight::Ev::kPhase, 2);
    auto l3 = lemmas.lemma3(c0, everyone, r);
    const Config cq = sim::run(proto_, c0, l3.phi);

    // Lemma 2: z in Q - {q} writes outside R's covered registers in its
    // solo terminating execution from C0-alpha'.
    const ProcId z = (l4.q.without(l3.q)).min();
    const auto covered = covered_registers(proto_, cq, r);
    if (obs::audit_enabled()) {
      // The construction's claim going into the final escape: R covers
      // these registers at C0-alpha'; z's escape register must join them.
      // `tsb report` checks this narrative against the certificate event
      // (whose registers come from the independent replay).
      std::vector<int> regs(covered.begin(), covered.end());
      obs::JsonObj ev = obs::audit_event("covering.pre_escape");
      ev.num("config", static_cast<std::int64_t>(oracle.intern_root(cq)))
          .raw("procs", obs::json_int_array(r.to_vector()))
          .raw("regs", obs::json_int_array(regs))
          .num("z", z);
      obs::audit_sink().write(ev.render());
    }
    obs::flight::record(obs::flight::Ev::kPhase, 3);
    auto esc = lemmas.solo_escape(cq, z, covered);
    if (!esc.found) {
      out.error = "Lemma 2 escape not found: the protocol is not a correct "
                  "solo-terminating consensus protocol";
      return out;
    }

    out.certificate.schedule = l4.alpha + l3.phi + esc.zeta_prime;
    const Config final_cfg = sim::run(proto_, cq, esc.zeta_prime);
    r.for_each([&](int p) {
      out.certificate.covering.emplace_back(
          p, *covered_register(proto_, final_cfg, p));
    });
    out.certificate.covering.emplace_back(z, esc.escape_reg);
  }

  // The full covering is in place: n-1 distinct registers (the certificate
  // checker re-verifies this claim below against the raw engine).
  obs::TraceSink::global().counter("covered", n - 1);

  out.lemma_stats = lemmas.stats();
  out.valency_queries = oracle.queries();
  out.valency_cache_hits = oracle.cache_hits();
  out.reach_expanded = oracle.edges_expanded();
  out.reach_reused = oracle.edges_reused();
  out.reach_fact_answers = oracle.fact_answers();
  out.reach_fact_subsumed = oracle.fact_subsumed();
  out.reach_graph_nodes = oracle.graph_nodes();
  out.graph_spilled_bytes = oracle.graph_spilled_bytes();
  out.narrative = lemmas.narrative();

  obs::Registry& reg = obs::Registry::global();
  reg.counter("bound.valency_queries").add(out.valency_queries);
  reg.counter("bound.valency_cache_hits").add(out.valency_cache_hits);
  reg.counter("bound.reach_expanded").add(out.reach_expanded);
  reg.counter("bound.reach_reused").add(out.reach_reused);
  reg.counter("bound.reach_fact_answers").add(out.reach_fact_answers);
  reg.counter("bound.reach_fact_subsumed").add(out.reach_fact_subsumed);
  reg.counter("bound.reach_graph_nodes").add(out.reach_graph_nodes);
  reg.counter("bound.lemma1_calls").add(out.lemma_stats.lemma1_calls);
  reg.counter("bound.lemma3_calls").add(out.lemma_stats.lemma3_calls);
  reg.counter("bound.lemma4_calls").add(out.lemma_stats.lemma4_calls);
  reg.counter("bound.solo_escapes").add(out.lemma_stats.solo_escapes);
  reg.counter("bound.di_stages").add(out.lemma_stats.total_di_stages);

  if (oracle.ever_truncated()) {
    out.error = "valency oracle hit its configuration cap; results unsound";
    return out;
  }

  // Independent verification through the raw engine.
  out.check = check_certificate(proto_, out.certificate);
  if (obs::audit_enabled()) {
    // Registers come from the replay verification, NOT from the
    // construction: `tsb report` compares the two and fails loudly if the
    // adversary's narrative and the checked certificate ever disagree.
    std::vector<int> regs(out.check.registers.begin(),
                          out.check.registers.end());
    obs::JsonObj ev = obs::audit_event("certificate");
    ev.str("protocol", out.certificate.protocol)
        .boolean("verified",
                 out.check.ok && out.check.distinct_registers >= n - 1)
        .num("distinct_registers", out.check.distinct_registers)
        .raw("registers", obs::json_int_array(regs))
        .num("clones",
             static_cast<std::int64_t>(out.lemma_stats.solo_escapes))
        .num("schedule_len",
             static_cast<std::int64_t>(out.certificate.schedule.size()));
    if (!out.check.ok) ev.str("error", out.check.error);
    obs::audit_sink().write(ev.render());
  }
  if (!out.check.ok) {
    out.error = "certificate check failed: " + out.check.error;
    return out;
  }
  if (out.check.distinct_registers < n - 1) {
    out.error = "certificate covers fewer than n-1 registers";
    return out;
  }
  out.ok = true;
  obs::TraceSink::global().instant("certificate.verified",
                                   out.check.distinct_registers);
  span.set_value(out.check.distinct_registers);
  return out;
}

}  // namespace tsb::bound
