#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bound/covering.hpp"
#include "bound/valency.hpp"

namespace tsb::bound {

/// Constructive implementations of the paper's propositions and lemmas.
///
/// Each method follows the corresponding proof step by step (not a generic
/// search), so the executions it produces *are* the paper's constructions.
/// Preconditions are asserted through the valency oracle; a correct
/// obstruction-free protocol can never trip them — the proofs guarantee
/// each object exists.
class LemmaToolkit {
 public:
  LemmaToolkit(const Protocol& proto, ValencyOracle& oracle)
      : proto_(proto), oracle_(oracle) {}

  /// Proposition 2: an initial configuration I (p0 input 0, p1 input 1,
  /// others input 0) such that {p0} is 0-univalent, {p1} is 1-univalent,
  /// hence {p0, p1} — and any superset — is bivalent from I.
  struct InitialBivalent {
    Config config;
    std::vector<Value> inputs;
    ProcId p0 = 0;
    ProcId p1 = 1;
  };
  InitialBivalent proposition2();

  /// Lemma 1: given P bivalent from C with |P| >= 3, a P-only execution phi
  /// and z in P such that P - {z} is bivalent from C-phi.
  struct Lemma1Result {
    Schedule phi;
    ProcId z = -1;
  };
  Lemma1Result lemma1(const Config& c, ProcSet p);

  /// Lemma 2, constructive form: run z solo from c until it is poised to
  /// write to a register outside `covered`; zeta_prime is the {z}-only
  /// prefix executed before that write (reads plus covered writes only).
  /// Lemma 2 guarantees the escape exists whenever some P (z not in P,
  /// R subset of P covering exactly `covered`) is bivalent from c-beta; if z
  /// decides first, found = false and the caller's precondition was wrong.
  struct SoloEscape {
    bool found = false;
    Schedule zeta_prime;
    RegId escape_reg = -1;
  };
  SoloEscape solo_escape(const Config& c, ProcId z,
                         const std::set<RegId>& covered,
                         std::size_t max_steps = 1'000'000);

  /// Lemma 3: given a non-empty covering set R subset of P in C with
  /// Q = P - R bivalent from C, a Q-only execution phi and q in Q such that
  /// R u {q} is bivalent from C-phi-beta (beta the block write by R).
  struct Lemma3Result {
    Schedule phi;
    ProcId q = -1;
  };
  Lemma3Result lemma3(const Config& c, ProcSet p, ProcSet r);

  /// Lemma 4: given P bivalent from C with |P| >= 2, a P-only execution
  /// alpha and a pair Q subset of P such that Q is bivalent from C-alpha and
  /// every process in P - Q covers a different register in C-alpha.
  struct Lemma4Result {
    Schedule alpha;
    ProcSet q;  ///< the bivalent pair
  };
  Lemma4Result lemma4(const Config& c, ProcSet p);

  // --- instrumentation ---------------------------------------------------
  struct Stats {
    std::size_t lemma1_calls = 0;
    std::size_t lemma3_calls = 0;
    std::size_t lemma4_calls = 0;
    std::size_t solo_escapes = 0;
    std::size_t total_di_stages = 0;    ///< D_i configurations built
    std::size_t max_di_stages = 0;      ///< longest D_i chain before repeat
    std::size_t longest_alpha = 0;      ///< longest schedule returned
  };
  const Stats& stats() const { return stats_; }

  /// Appends a human-readable account of every construction step; consumed
  /// by the walkthrough example. Empty unless enabled.
  void enable_narrative(bool on) { narrate_ = on; }
  const std::string& narrative() const { return narrative_; }

 private:
  void note(const std::string& line);

  const Protocol& proto_;
  ValencyOracle& oracle_;
  Stats stats_;
  bool narrate_ = false;
  std::string narrative_;
  int depth_ = 0;  // recursion depth, for narrative indentation
};

}  // namespace tsb::bound
