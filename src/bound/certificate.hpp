#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace tsb::bound {

/// A checkable witness for the space lower bound on a concrete protocol:
/// an execution from a stated initial configuration after which a stated
/// set of processes simultaneously cover pairwise-distinct registers.
///
/// The certificate deliberately contains only raw data (inputs, a schedule,
/// claimed poised writes); `check_certificate` replays it through the
/// execution engine alone — no valency oracle, no lemma code — so a bug in
/// the adversary cannot vouch for itself.
struct CoveringCertificate {
  std::string protocol;                 ///< name, for reports
  std::vector<sim::Value> inputs;       ///< initial configuration
  sim::Schedule schedule;               ///< execution from that configuration
  std::vector<std::pair<sim::ProcId, sim::RegId>> covering;  ///< claimed
};

struct CertificateCheck {
  bool ok = false;
  std::string error;                 ///< first failure, when !ok
  int distinct_registers = 0;        ///< covered by the claimed processes
  std::set<sim::RegId> registers;    ///< the covered registers
  std::set<sim::RegId> written_after_block;  ///< written by the block write
};

/// Replay the certificate and verify:
///  1. every claimed (process, register) is indeed a poised write in the
///     final configuration;
///  2. the claimed registers are pairwise distinct;
///  3. extending the execution by the block write of the claimed processes
///     writes exactly those registers (so the protocol's executions write
///     `covering.size()` distinct registers — its space is at least that).
CertificateCheck check_certificate(const sim::Protocol& proto,
                                   const CoveringCertificate& cert);

}  // namespace tsb::bound
