#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "sim/explorer.hpp"

namespace tsb::bound {

using sim::Config;
using sim::ConfigHash;
using sim::ProcSet;
using sim::Protocol;
using sim::Schedule;
using sim::Value;

/// Zhu's refined valency (Definition 1): for a reachable configuration C
/// and a non-empty set of processes P, "P can decide v from C" iff there is
/// a P-only execution from C in which v is decided.
///
/// This oracle answers such queries *exactly* by exhaustive P-only
/// reachability, which terminates because the experiment protocols have
/// finite configuration spaces. Queries are memoized on (C, P, v); the
/// lemma searches issue the same query along many prefixes.
///
/// A value counts as "decided in the execution" if some process is in a
/// decided state at any configuration along it, including C itself —
/// matching Proposition 1(iv), where an earlier decision pins the valency
/// of every set of processes.
class ValencyOracle {
 public:
  struct Options {
    std::size_t max_configs = 2'000'000;
  };

  explicit ValencyOracle(const Protocol& proto)
      : ValencyOracle(proto, Options{}) {}
  ValencyOracle(const Protocol& proto, Options opts)
      : proto_(proto), opts_(opts) {}

  /// Definition 1: P can decide v from C.
  bool can_decide(const Config& c, ProcSet p, Value v);

  /// P is bivalent from C: P can decide both 0 and 1.
  bool bivalent(const Config& c, ProcSet p) {
    return can_decide(c, p, 0) && can_decide(c, p, 1);
  }

  /// P is v-univalent from C: P can decide v but not 1-v.
  bool univalent_on(const Config& c, ProcSet p, Value v) {
    return can_decide(c, p, v) && !can_decide(c, p, 1 - v);
  }

  /// Some value P can decide from C (Proposition 1(i): one always exists
  /// for solo-terminating protocols). Returns 0 if P can decide 0, else 1.
  Value some_decidable(const Config& c, ProcSet p);

  /// A P-only schedule from C in which v is decided (witness for
  /// can_decide). Not memoized; used to extract executions for the lemmas.
  std::optional<Schedule> deciding_schedule(const Config& c, ProcSet p,
                                            Value v);

  /// True if any reachability query ever hit the configuration cap, which
  /// would make answers unsound. The adversary asserts this stays false.
  bool ever_truncated() const { return ever_truncated_; }

  std::size_t queries() const { return queries_; }
  std::size_t cache_hits() const { return cache_hits_; }

 private:
  struct Key {
    Config config;
    std::uint64_t pbits;
    Value v;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  bool compute(const Config& c, ProcSet p, Value v,
               Schedule* witness_out);

  const Protocol& proto_;
  Options opts_;
  std::unordered_map<Key, bool, KeyHash> memo_;
  bool ever_truncated_ = false;
  std::size_t queries_ = 0;
  std::size_t cache_hits_ = 0;
};

}  // namespace tsb::bound
