#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "sim/explorer.hpp"
#include "sim/parallel_explorer.hpp"

namespace tsb::bound {

using sim::Config;
using sim::ConfigHash;
using sim::ProcSet;
using sim::Protocol;
using sim::Schedule;
using sim::Value;

/// Zhu's refined valency (Definition 1): for a reachable configuration C
/// and a non-empty set of processes P, "P can decide v from C" iff there is
/// a P-only execution from C in which v is decided.
///
/// This oracle answers such queries *exactly* by exhaustive P-only
/// reachability, which terminates because the experiment protocols have
/// finite configuration spaces.
///
/// Exploration is shared between the two values: one BFS pass per (C, P)
/// answers both v = 0 and v = 1 (it runs until a deciding configuration for
/// each value is found, or the P-only space is exhausted), and the deciding
/// witnesses are extracted from the same pass. Results are memoized per
/// (C, P) pair, keyed on an interned 32-bit id of C rather than a full
/// configuration copy — so querying the complementary value, or asking for
/// a witness after a decidability check (the lemma searches do both,
/// constantly), never explores again.
///
/// A value counts as "decided in the execution" if some process is in a
/// decided state at any configuration along it, including C itself —
/// matching Proposition 1(iv), where an earlier decision pins the valency
/// of every set of processes.
class ValencyOracle {
 public:
  struct Options {
    std::size_t max_configs = 2'000'000;
    /// Worker threads for each reachability pass; > 1 switches to the
    /// ParallelExplorer (identical results, see its determinism rule).
    int threads = 1;
    /// Graceful-degradation budgets. When a reachability pass would push
    /// the arena past `max_arena_bytes` (0 = uncapped), or any pass runs
    /// past `time_budget_ms` of wall clock measured from the oracle's
    /// construction (0 = no watchdog), the query throws
    /// util::BudgetExhausted rather than returning an unsound negative
    /// answer or OOMing/hanging.
    std::size_t max_arena_bytes = 0;
    std::uint64_t time_budget_ms = 0;
  };

  explicit ValencyOracle(const Protocol& proto)
      : ValencyOracle(proto, Options{}) {}
  ValencyOracle(const Protocol& proto, Options opts)
      : proto_(proto),
        opts_(opts),
        roots_(proto.num_processes(), proto.num_registers()) {
    if (opts_.time_budget_ms > 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(opts_.time_budget_ms);
    }
  }

  /// Definition 1: P can decide v from C.
  bool can_decide(const Config& c, ProcSet p, Value v);

  /// P is bivalent from C: P can decide both 0 and 1.
  bool bivalent(const Config& c, ProcSet p) {
    return can_decide(c, p, 0) && can_decide(c, p, 1);
  }

  /// P is v-univalent from C: P can decide v but not 1-v.
  bool univalent_on(const Config& c, ProcSet p, Value v) {
    return can_decide(c, p, v) && !can_decide(c, p, 1 - v);
  }

  /// Some value P can decide from C (Proposition 1(i): one always exists
  /// for solo-terminating protocols). Returns 0 if P can decide 0, else 1.
  Value some_decidable(const Config& c, ProcSet p);

  /// A P-only schedule from C in which v is decided (witness for
  /// can_decide): the BFS-first deciding configuration's discovery path,
  /// cached from the same shared exploration that answered can_decide.
  std::optional<Schedule> deciding_schedule(const Config& c, ProcSet p,
                                            Value v);

  /// True if any reachability query ever hit the configuration cap with an
  /// undetermined value, which would make a negative answer unsound. The
  /// adversary asserts this stays false.
  bool ever_truncated() const { return ever_truncated_; }

  std::size_t queries() const { return queries_; }
  std::size_t cache_hits() const { return cache_hits_; }
  /// Underlying BFS passes actually run (each covers both values of one
  /// (C, P) pair); queries() - cache_hits() public misses map 1:1 onto
  /// pair lookups, of which this many missed the memo.
  std::size_t explorations() const { return explorations_; }

  /// Intern `c` in the oracle's root arena and return its stable 32-bit id
  /// — the id space the audit trail's valency events use as "config", so
  /// lemma/adversary emitters can cross-link configurations to the queries
  /// asked about them without copying configurations into the log.
  sim::ConfigId intern_root(const Config& c) {
    roots_.pack(c, roots_.scratch());
    return roots_.intern_scratch().id;
  }

 private:
  struct PairAnswer {
    bool can[2] = {false, false};
    Schedule witness[2];  ///< meaningful iff can[v]
    /// BFS-discovery id of the deciding configuration inside the pass that
    /// answered this pair (kNoConfig when !can[v]); recorded in the audit
    /// trail so a query's verdict points at its witness.
    sim::ConfigId witness_id[2] = {sim::kNoConfig, sim::kNoConfig};
  };
  struct PairKey {
    sim::ConfigId root;
    std::uint64_t pbits;
    bool operator==(const PairKey&) const = default;
  };
  struct PairKeyHash {
    std::size_t operator()(const PairKey& k) const;
  };

  /// Memoized shared-exploration answer for (c, p).
  const PairAnswer& lookup(const Config& c, ProcSet p);
  PairAnswer compute_pair(const Config& c, ProcSet p);

  const Protocol& proto_;
  Options opts_;
  sim::ConfigArena roots_;  ///< interns query roots for 32-bit memo keys
  std::unordered_map<PairKey, PairAnswer, PairKeyHash> memo_;
  std::optional<sim::Explorer> seq_;          ///< reused across queries
  std::optional<sim::ParallelExplorer> par_;  ///< reused across queries
  std::chrono::steady_clock::time_point deadline_ =
      std::chrono::steady_clock::time_point::max();
  bool ever_truncated_ = false;
  std::size_t queries_ = 0;
  std::size_t cache_hits_ = 0;
  std::size_t explorations_ = 0;
  // Set by lookup() for the audit events the public queries emit.
  bool last_lookup_hit_ = false;
  sim::ConfigId last_root_id_ = sim::kNoConfig;
};

}  // namespace tsb::bound
