#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "sim/explorer.hpp"
#include "sim/parallel_explorer.hpp"
#include "sim/reach_graph.hpp"

namespace tsb::bound {

using sim::Config;
using sim::ConfigHash;
using sim::ProcSet;
using sim::Protocol;
using sim::Schedule;
using sim::Value;

/// Zhu's refined valency (Definition 1): for a reachable configuration C
/// and a non-empty set of processes P, "P can decide v from C" iff there is
/// a P-only execution from C in which v is decided.
///
/// This oracle answers such queries *exactly* by exhaustive P-only
/// reachability, which terminates because the experiment protocols have
/// finite configuration spaces.
///
/// Two interchangeable backends answer a (C, P) pair (both values in one
/// pass, witnesses extracted from the same pass):
///
///  * reuse = true (default): the persistent shared-subgraph engine
///    (sim::ReachGraph), which explores the *projection* of the
///    configuration onto (P-states, registers, ambient decide bits) — the
///    exact quantities P-only dynamics and Definition 1 verdicts depend
///    on. Successor edges expand at most once per session, queries consume
///    previously expanded subgraphs, exhaustive passes persist per-node
///    decided-value facts that answer later queries without any expansion,
///    and symmetric protocols are additionally quotiented by process
///    renaming. The memo keys on the canonical projected
///    (ConfigId, ProcSet-orbit, ambient) triple, so any two queries the
///    projection cannot distinguish share one entry — including the lemma
///    peel loops' neighbours, whose roots differ only in frozen-process
///    state; audit events keep reporting ids in the oracle's own root
///    arena. Every freshly computed witness is de-canonicalized and
///    replayed through the raw engine from the *original* configuration
///    before it is memoized.
///
///  * reuse = false: the original fresh-BFS-per-pair backend (Explorer /
///    ParallelExplorer), kept as the differential-testing anchor.
///
/// A value counts as "decided in the execution" if some process is in a
/// decided state at any configuration along it, including C itself —
/// matching Proposition 1(iv), where an earlier decision pins the valency
/// of every set of processes.
class ValencyOracle {
 public:
  struct Options {
    std::size_t max_configs = 2'000'000;
    /// Worker threads for each reachability pass; > 1 switches to the
    /// ParallelExplorer (reuse = false) or the engine's level-batched
    /// expansion (reuse = true). Identical results either way.
    int threads = 1;
    /// Graceful-degradation budgets. When a reachability pass would push
    /// the arena past `max_arena_bytes` (0 = uncapped), or any pass runs
    /// past `time_budget_ms` of wall clock measured from the oracle's
    /// construction (0 = no watchdog), the query throws
    /// util::BudgetExhausted rather than returning an unsound negative
    /// answer or OOMing/hanging. With reuse = true the byte budget covers
    /// the whole persistent graph (cumulative across queries), since the
    /// shared graph is precisely what holds the memory.
    std::size_t max_arena_bytes = 0;
    std::uint64_t time_budget_ms = 0;
    /// Shared-subgraph engine on/off (see class comment).
    bool reuse = true;
    /// Out-of-core node storage: when resident packed-config bytes exceed
    /// spill_threshold_bytes (0 = never), the backend arena compresses
    /// cold full segments to an unlinked file under spill_dir and reads
    /// them back through mmap. Verdicts and witnesses are unchanged;
    /// max_arena_bytes keeps capping RAM (spilled bytes leave it), so
    /// spill + budget together turn "OOM at n = 7" into "slower but
    /// finishes". spill_seg_configs (0 = default) shrinks segments so
    /// tests/CI can force spilling on tiny campaigns.
    std::string spill_dir = ".";
    std::size_t spill_threshold_bytes = 0;
    std::size_t spill_seg_configs = 0;
    /// Out-of-core edge arrays: with spilling enabled, the shared engine's
    /// per-node edge data spills alongside the node arena. False keeps the
    /// PR 7 behaviour (edge arrays always resident) for A/B comparisons.
    /// Purely a memory-plan knob — verdicts and witnesses never change, so
    /// it is excluded from the checkpoint fingerprint.
    bool graph_spill = true;
    /// Work-stealing tuning for the reuse = false parallel backend
    /// (ParallelExplorer::Options::chunk_configs / parallel_threshold);
    /// 0 keeps each explorer default. Purely perf — verdicts never change.
    std::uint32_t chunk_configs = 0;
    std::size_t parallel_threshold = 0;
  };

  explicit ValencyOracle(const Protocol& proto)
      : ValencyOracle(proto, Options{}) {}
  ValencyOracle(const Protocol& proto, Options opts)
      : proto_(proto),
        opts_(opts),
        roots_(proto.num_processes(), proto.num_registers()) {
    if (opts_.time_budget_ms > 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(opts_.time_budget_ms);
    }
  }

  /// Definition 1: P can decide v from C.
  bool can_decide(const Config& c, ProcSet p, Value v);

  /// P is bivalent from C: P can decide both 0 and 1.
  bool bivalent(const Config& c, ProcSet p) {
    return can_decide(c, p, 0) && can_decide(c, p, 1);
  }

  /// P is v-univalent from C: P can decide v but not 1-v.
  bool univalent_on(const Config& c, ProcSet p, Value v) {
    return can_decide(c, p, v) && !can_decide(c, p, 1 - v);
  }

  /// Some value P can decide from C (Proposition 1(i): one always exists
  /// for solo-terminating protocols). Returns 0 if P can decide 0, else 1.
  Value some_decidable(const Config& c, ProcSet p);

  /// A P-only schedule from C in which v is decided (witness for
  /// can_decide). With reuse = false this is the BFS-first deciding
  /// configuration's discovery path; with reuse = true it is the engine's
  /// (possibly fact-chased) witness, de-canonicalized into the caller's
  /// process ids and replay-verified before memoization.
  std::optional<Schedule> deciding_schedule(const Config& c, ProcSet p,
                                            Value v);

  /// True if any reachability query ever hit the configuration cap with an
  /// undetermined value, which would make a negative answer unsound. The
  /// adversary asserts this stays false.
  bool ever_truncated() const { return ever_truncated_; }

  std::size_t queries() const { return queries_; }
  std::size_t cache_hits() const { return cache_hits_; }
  /// Underlying reachability passes actually run (each covers both values
  /// of one (C, P) pair); queries() - cache_hits() public misses map 1:1
  /// onto pair lookups, of which this many missed the memo.
  std::size_t explorations() const { return explorations_; }

  // Shared-subgraph engine statistics (all 0 when reuse = false or no
  // query has run yet).
  bool reuse_enabled() const { return opts_.reuse; }
  std::uint64_t edges_expanded() const {
    return graph_ ? graph_->edges_expanded() : 0;
  }
  std::uint64_t edges_reused() const {
    return graph_ ? graph_->edges_reused() : 0;
  }
  /// Pair computations answered entirely from persisted facts.
  std::uint64_t fact_answers() const {
    return graph_ ? graph_->fact_answers() : 0;
  }
  /// Pair computations where a superset projection's stored negative
  /// transferred to the query's strictly smaller ProcSet at the root.
  std::uint64_t fact_subsumed() const {
    return graph_ ? graph_->fact_subsumed() : 0;
  }
  /// Edge-store spill accounting (0 unless graph spilling is armed).
  std::size_t graph_spilled_bytes() const {
    return graph_ ? graph_->edge_spilled_bytes() : 0;
  }
  std::size_t graph_spilled_segments() const {
    return graph_ ? graph_->edge_spilled_segments() : 0;
  }
  std::size_t graph_faulted_in() const {
    return graph_ ? graph_->edge_faulted_in() : 0;
  }
  std::size_t graph_nodes() const { return graph_ ? graph_->nodes() : 0; }
  std::size_t fact_entries() const {
    return graph_ ? graph_->fact_entries() : 0;
  }
  /// True when the engine runs in symmetry-quotient mode.
  bool engine_symmetric() const { return graph_ && graph_->symmetric(); }

  /// Intern `c` in the oracle's root arena and return its stable 32-bit id
  /// — the id space the audit trail's valency events use as "config", so
  /// lemma/adversary emitters can cross-link configurations to the queries
  /// asked about them without copying configurations into the log. This id
  /// space is the *original* one: canonicalization never leaks into the
  /// audit trail's config ids.
  sim::ConfigId intern_root(const Config& c) {
    roots_.pack(c, roots_.scratch());
    return roots_.intern_scratch().id;
  }

  // --- checkpoint/resume ---------------------------------------------------
  // The oracle is the session's persistent state: the root arena (audit-
  // stable ids), the pair memo with its witnesses, and (reuse = true) the
  // shared reachability graph. save_state writes them as the "oracle",
  // "roots", "memo" and (iff the graph exists) "graph" sections of a
  // checkpoint in progress; restore_state rebuilds them into a fresh
  // oracle before any query runs. Query/hit/exploration counters are
  // deliberately NOT restored — resume re-runs the deterministic adversary
  // from its start ("warm replay"), so the counters rebuild themselves
  // (with more cache hits than the uninterrupted run — verdicts, visited
  // sets and certificates are what resume keeps identical, not stats).

  /// Append this oracle's sections to a checkpoint state file.
  void save_state(util::ckpt::SectionWriter& w) const;
  /// Rebuild from save_state's sections. Must run on a freshly constructed
  /// oracle; throws util::CheckpointInvalid on any shape/flag disagreement.
  void restore_state(util::ckpt::SectionReader& r);
  /// The oracle slice of the checkpoint flag fingerprint: protocol name and
  /// shape plus every option that changes verdicts or the serialized state
  /// layout. Thread count is deliberately excluded — results are
  /// thread-independent, so --threads may change across a resume.
  std::string state_fingerprint() const;

 private:
  struct PairAnswer {
    bool can[2] = {false, false};
    /// Meaningful iff can[v]. With reuse = true this is stored in the
    /// canonical-root frame; public accessors de-canonicalize through the
    /// current lookup's renaming (equivariance: symmetric queries share
    /// the memo entry and each translates it into its own frame).
    Schedule witness[2];
    /// Id of the deciding configuration (kNoConfig when !can[v]) — pass-
    /// local discovery id for reuse = false, engine arena id for
    /// reuse = true; recorded in the audit trail so a query's verdict
    /// points at its witness.
    sim::ConfigId witness_id[2] = {sim::kNoConfig, sim::kNoConfig};
  };
  struct PairKey {
    sim::ConfigId root;
    std::uint64_t pbits;
    bool operator==(const PairKey&) const = default;
  };
  struct PairKeyHash {
    std::size_t operator()(const PairKey& k) const;
  };

  /// Lazily construct the reuse = true engine (also the restore path's
  /// entry point, so a resumed graph exists before the first query).
  sim::ReachGraph& ensure_graph();
  /// Memoized shared-exploration answer for (c, p).
  const PairAnswer& lookup(const Config& c, ProcSet p);
  PairAnswer compute_pair(const Config& c, ProcSet p);
  PairAnswer compute_pair_shared(const Config& c, ProcSet p);
  Schedule decanonicalize(const Schedule& s, sim::ProcPerm pi) const;
  void check_deadline() const;

  const Protocol& proto_;
  Options opts_;
  sim::ConfigArena roots_;  ///< interns query roots for audit-stable ids
  std::unordered_map<PairKey, PairAnswer, PairKeyHash> memo_;
  std::size_t memo_witness_bytes_ = 0;  ///< ledger: stored witness steps
  std::optional<sim::Explorer> seq_;          ///< reuse = false backends,
  std::optional<sim::ParallelExplorer> par_;  ///< reused across queries
  std::unique_ptr<sim::ReachGraph> graph_;    ///< reuse = true backend
  std::chrono::steady_clock::time_point deadline_ =
      std::chrono::steady_clock::time_point::max();
  bool ever_truncated_ = false;
  std::size_t queries_ = 0;
  std::size_t cache_hits_ = 0;
  std::size_t explorations_ = 0;
  // Set by lookup() for the audit events and witness translation the
  // public queries do.
  bool last_lookup_hit_ = false;
  sim::ConfigId last_root_id_ = sim::kNoConfig;
  sim::ProcPerm last_perm_;  ///< caller frame -> canonical frame
};

}  // namespace tsb::bound
