#include "bound/lemmas.hpp"

#include <cassert>

#include "obs/jsonl_sink.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"
#include "obs/trace_sink.hpp"
#include "util/require.hpp"

namespace tsb::bound {

namespace {
std::vector<int> regs_vec(const std::set<RegId>& regs) {
  return std::vector<int>(regs.begin(), regs.end());
}
}  // namespace

void LemmaToolkit::note(const std::string& line) {
  if (!narrate_) return;
  narrative_.append(static_cast<std::size_t>(2 * depth_), ' ');
  narrative_ += line;
  narrative_ += '\n';
}

LemmaToolkit::InitialBivalent LemmaToolkit::proposition2() {
  const int n = proto_.num_processes();
  assert(n >= 2);
  InitialBivalent out;
  out.inputs.assign(static_cast<std::size_t>(n), 0);
  out.inputs[1] = 1;  // p0 starts with 0, p1 with 1, the rest with 0
  out.config = sim::initial_config(proto_, out.inputs);

  // By Validity, I is indistinguishable from the all-v configuration to pv,
  // so {pv} is v-univalent from I. We verify rather than trust.
  TSB_REQUIRE(oracle_.univalent_on(out.config, ProcSet::single(0), 0),
              "Validity violated: {p0} not 0-univalent from I");
  TSB_REQUIRE(oracle_.univalent_on(out.config, ProcSet::single(1), 1),
              "Validity violated: {p1} not 1-univalent from I");
  note("Proposition 2: initial configuration with inputs(p0)=0, inputs(p1)=1 "
       "is bivalent for {p0,p1}");
  if (obs::audit_enabled()) {
    obs::JsonObj ev = obs::audit_event("prop2");
    ev.num("config",
           static_cast<std::int64_t>(oracle_.intern_root(out.config)))
        .raw("inputs", obs::json_int_array(
                           std::vector<int>(out.inputs.begin(),
                                            out.inputs.end())));
    obs::audit_sink().write(ev.render());
  }
  return out;
}

LemmaToolkit::Lemma1Result LemmaToolkit::lemma1(const Config& c, ProcSet p) {
  ++stats_.lemma1_calls;
  TSB_REQUIRE(p.size() >= 3, "Lemma 1 needs |P| >= 3");
  TSB_REQUIRE(oracle_.bivalent(c, p), "Lemma 1 precondition: P bivalent");
  auto audit = [&](const char* how, const Lemma1Result& res) {
    if (!obs::audit_enabled()) return;
    obs::JsonObj ev = obs::audit_event("lemma1");
    ev.num("config", static_cast<std::int64_t>(oracle_.intern_root(c)))
        .raw("procs", obs::json_int_array(p.to_vector()))
        .str("how", how)
        .num("z", res.z)
        .num("phi_len", static_cast<std::int64_t>(res.phi.size()));
    obs::audit_sink().write(ev.render());
  };

  // Pick any two processes of P (we take the two largest ids so the pair
  // that survives the recursion tends to be the low ids — purely cosmetic).
  const auto members = p.to_vector();
  const ProcId z1 = members[members.size() - 1];
  const ProcId z2 = members[members.size() - 2];
  const ProcSet q1 = p.without(z1);
  const ProcSet q2 = p.without(z2);

  // Q1 n Q2 can decide some v from C; then both Q1 and Q2 can decide v.
  const Value v = oracle_.some_decidable(c, q1 & q2);
  const Value vbar = 1 - v;

  // If either Qi can also decide the complement, it is bivalent already.
  if (oracle_.can_decide(c, q1, vbar)) {
    note("Lemma 1: Q1 = P-{p" + std::to_string(z1) +
         "} already bivalent; phi is empty");
    Lemma1Result res{Schedule{}, z1};
    audit("q1_bivalent", res);
    return res;
  }
  if (oracle_.can_decide(c, q2, vbar)) {
    note("Lemma 1: Q2 = P-{p" + std::to_string(z2) +
         "} already bivalent; phi is empty");
    Lemma1Result res{Schedule{}, z2};
    audit("q2_bivalent", res);
    return res;
  }

  // Both Q1 and Q2 are v-univalent from C. P is bivalent, so take a P-only
  // execution psi deciding vbar, and the longest prefix psi' after which
  // both Q1 and Q2 are still v-univalent.
  auto psi = oracle_.deciding_schedule(c, p, vbar);
  TSB_REQUIRE(psi.has_value(), "P bivalent but no deciding execution found");

  std::size_t longest = 0;
  {
    Config cur = c;
    for (std::size_t i = 0; i <= psi->size(); ++i) {
      if (i > 0) cur = sim::step(proto_, cur, (*psi)[i - 1]);
      if (oracle_.univalent_on(cur, q1, v) &&
          oracle_.univalent_on(cur, q2, v)) {
        longest = i;
      }
    }
  }
  // psi' != psi: at the end vbar has been decided, so neither set is
  // v-univalent there.
  TSB_REQUIRE(longest < psi->size(),
              "both sets stayed univalent along a vbar-deciding execution");

  const ProcId sigma_proc = (*psi)[longest];
  const Schedule phi = psi->prefix(longest + 1);

  // If sigma is by a process of Q1 (anything but z1), Q1 stays v-univalent
  // across it, so by maximality Q2 can now decide vbar; and Q1 n Q2 subset
  // of Q1 is v-univalent, so Q2 can also decide v: Q2 = P - {z2} is
  // bivalent. Symmetric otherwise.
  const ProcId z = (sigma_proc != z1) ? z2 : z1;
  TSB_REQUIRE(oracle_.bivalent(sim::run(proto_, c, phi), p.without(z)),
              "Lemma 1 postcondition failed");
  note("Lemma 1: after phi (" + std::to_string(phi.size()) +
       " steps), P-{p" + std::to_string(z) + "} is bivalent");
  Lemma1Result res{phi, z};
  audit("longest_prefix", res);
  return res;
}

LemmaToolkit::SoloEscape LemmaToolkit::solo_escape(
    const Config& c, ProcId z, const std::set<RegId>& covered,
    std::size_t max_steps) {
  ++stats_.solo_escapes;
  SoloEscape out;
  // The hidden insertion of Lemma 2 — the construction's "clone" step: z's
  // solo prefix will be obliterated by the next block write, so P - {z}
  // cannot distinguish the run with it from the run without it. One audit
  // event per attempt; `tsb report` counts the found ones as clones.
  auto audit = [&] {
    if (!obs::audit_enabled()) return;
    obs::JsonObj ev = obs::audit_event("solo_escape");
    ev.num("config", static_cast<std::int64_t>(oracle_.intern_root(c)))
        .num("z", z)
        .raw("covered", obs::json_int_array(regs_vec(covered)))
        .boolean("found", out.found)
        .num("steps", static_cast<std::int64_t>(out.zeta_prime.size()));
    if (out.found) ev.num("escape_reg", out.escape_reg);
    obs::audit_sink().write(ev.render());
  };
  Config cur = c;
  for (std::size_t i = 0; i < max_steps; ++i) {
    const sim::PendingOp op = sim::poised_in(proto_, cur, z);
    if (op.is_decide()) {
      audit();
      return out;  // precondition violated; found = false
    }
    if (op.is_write() && covered.count(op.reg) == 0) {
      out.found = true;
      out.escape_reg = op.reg;
      note("Lemma 2: p" + std::to_string(z) + " poised to write R" +
           std::to_string(op.reg) + " outside the covered set after " +
           std::to_string(out.zeta_prime.size()) + " solo steps");
      audit();
      return out;
    }
    cur = sim::step(proto_, cur, z);
    out.zeta_prime.push(z);
  }
  audit();
  return out;  // step cap hit: protocol is not solo terminating
}

LemmaToolkit::Lemma3Result LemmaToolkit::lemma3(const Config& c, ProcSet p,
                                                ProcSet r) {
  ++stats_.lemma3_calls;
  TSB_REQUIRE(!r.is_empty(), "Lemma 3 needs a non-empty covering set");
  TSB_REQUIRE(r.subset_of(p), "R must be a subset of P");
  TSB_REQUIRE(is_covering_set(proto_, c, r), "R must cover registers in C");
  const ProcSet q_set = p - r;
  TSB_REQUIRE(oracle_.bivalent(c, q_set), "Lemma 3 precondition: Q bivalent");
  auto audit = [&](const char* how, const Lemma3Result& res) {
    if (!obs::audit_enabled()) return;
    obs::JsonObj ev = obs::audit_event("lemma3");
    ev.num("config", static_cast<std::int64_t>(oracle_.intern_root(c)))
        .raw("procs", obs::json_int_array(p.to_vector()))
        .raw("covering_procs", obs::json_int_array(r.to_vector()))
        .raw("covered",
             obs::json_int_array(regs_vec(covered_registers(proto_, c, r))))
        .str("how", how)
        .num("q", res.q)
        .num("phi_len", static_cast<std::int64_t>(res.phi.size()));
    obs::audit_sink().write(ev.render());
  };

  const Schedule beta = block_write(r);
  const Config c_beta = sim::run(proto_, c, beta);

  // R can decide some v from C-beta.
  const Value v = oracle_.some_decidable(c_beta, r);
  if (oracle_.can_decide(c_beta, r, 1 - v)) {
    // R itself is bivalent from C-beta; any superset R u {q} is too.
    note("Lemma 3: R already bivalent after its block write; phi is empty");
    Lemma3Result res{Schedule{}, q_set.min()};
    audit("r_bivalent", res);
    return res;
  }
  const Value vbar = 1 - v;

  // Q is bivalent from C: take a Q-only execution psi deciding vbar. R takes
  // no steps in psi, so its block write applies at every prefix. Find the
  // longest prefix phi with R still able to decide v from C-phi-beta.
  auto psi = oracle_.deciding_schedule(c, q_set, vbar);
  TSB_REQUIRE(psi.has_value(), "Q bivalent but no deciding execution found");

  std::size_t longest = 0;
  bool found = false;
  {
    Config cur = c;
    for (std::size_t i = 0; i <= psi->size(); ++i) {
      if (i > 0) cur = sim::step(proto_, cur, (*psi)[i - 1]);
      const Config after_block = sim::run(proto_, cur, beta);
      if (oracle_.can_decide(after_block, r, v)) {
        longest = i;
        found = true;
      }
    }
  }
  TSB_REQUIRE(found, "the empty prefix must qualify");
  TSB_REQUIRE(longest < psi->size(),
              "R can still decide v after Q decided vbar");

  // The next step sigma is by some q in Q; the proof shows it must be a
  // write outside R's covered set, and that R u {q} is bivalent from
  // C-phi-beta.
  const ProcId q = (*psi)[longest];
  const Schedule phi = psi->prefix(longest);
  TSB_REQUIRE(oracle_.bivalent(sim::run(proto_, c, phi + beta), r.with(q)),
              "Lemma 3 postcondition failed");
  note("Lemma 3: after phi (" + std::to_string(phi.size()) +
       " steps) and the block write by " + r.to_string() + ", R u {p" +
       std::to_string(q) + "} is bivalent");
  Lemma3Result res{phi, q};
  audit("longest_prefix", res);
  return res;
}

LemmaToolkit::Lemma4Result LemmaToolkit::lemma4(const Config& c, ProcSet p) {
  obs::Span span("lemma4");
  span.set_value(p.size());
  ++stats_.lemma4_calls;
  TSB_REQUIRE(p.size() >= 2, "Lemma 4 needs |P| >= 2");
  TSB_REQUIRE(oracle_.bivalent(c, p), "Lemma 4 precondition: P bivalent");
  if (obs::audit_enabled()) {
    obs::JsonObj ev = obs::audit_event("lemma4.enter");
    ev.num("config", static_cast<std::int64_t>(oracle_.intern_root(c)))
        .raw("procs", obs::json_int_array(p.to_vector()))
        .num("depth", depth_);
    obs::audit_sink().write(ev.render());
  }

  if (p.size() == 2) {
    note("Lemma 4 base: |P| = 2, alpha empty, Q = " + p.to_string());
    if (obs::audit_enabled()) {
      obs::JsonObj ev = obs::audit_event("lemma4.done");
      ev.raw("procs", obs::json_int_array(p.to_vector()))
          .raw("bivalent_pair", obs::json_int_array(p.to_vector()))
          .num("alpha_len", 0)
          .num("depth", depth_);
      obs::audit_sink().write(ev.render());
    }
    return {Schedule{}, p};
  }

  note("Lemma 4 on P = " + p.to_string() + ":");
  ++depth_;

  // Lemma 1: peel off z; P - {z} is bivalent from D = C-gamma.
  auto [gamma, z] = lemma1(c, p);
  const ProcSet pz = p.without(z);
  const Config d = sim::run(proto_, c, gamma);

  // Build the chain D_0, D_1, ... : each D_i comes with a bivalent pair
  // Q_i subset of P-{z} and a well-spread covering set R_i = (P-{z}) - Q_i,
  // and D_{i+1} is reached from D_i by alpha_i = phi_i beta_i psi_i.
  struct Stage {
    Config d_i;
    ProcSet q_i;
    ProcSet r_i;
    std::set<RegId> covered;
    // How the chain continues from here (set when stage i+1 is built):
    Schedule phi_i;
    Schedule beta_i;
    Schedule psi_i;
  };
  std::vector<Stage> stages;

  obs::Heartbeat hb("lemma4");
  auto push_stage = [&](const Config& d_i, ProcSet q_i) {
    Stage s;
    s.d_i = d_i;
    s.q_i = q_i;
    s.r_i = pz - q_i;
    s.covered = covered_registers(proto_, d_i, s.r_i);
    TSB_REQUIRE(well_spread(proto_, d_i, s.r_i),
                "induction hypothesis: R_i must be well spread");
    // The covering being forced, live: each D_i stage's distinct covered
    // registers as a Chrome counter track.
    obs::TraceSink::global().counter(
        "covered", static_cast<std::int64_t>(s.covered.size()));
    hb.beat([&] {
      return "|P|=" + std::to_string(p.size()) + " stage " +
             std::to_string(stages.size()) + " covered=" +
             std::to_string(stages.empty() ? 0 : stages.back().covered.size());
    });
    if (obs::audit_enabled()) {
      obs::JsonObj ev = obs::audit_event("lemma4.stage");
      ev.num("config", static_cast<std::int64_t>(oracle_.intern_root(s.d_i)))
          .num("stage", static_cast<std::int64_t>(stages.size()))
          .num("depth", depth_)
          .raw("bivalent_pair", obs::json_int_array(s.q_i.to_vector()))
          .raw("covering_procs", obs::json_int_array(s.r_i.to_vector()))
          .raw("covered", obs::json_int_array(regs_vec(s.covered)));
      obs::audit_sink().write(ev.render());
    }
    stages.push_back(std::move(s));
    ++stats_.total_di_stages;
  };

  // D_0 by the induction hypothesis applied to P - {z} at D.
  {
    auto base = lemma4(d, pz);
    push_stage(sim::run(proto_, d, base.alpha), base.q);
    stages.back().phi_i = base.alpha;  // temporarily: eta lives here; moved
    // Keep eta separate for readability:
  }
  const Schedule eta = stages[0].phi_i;
  stages[0].phi_i = Schedule{};

  // Extend the chain until two stages' covering sets coincide (pigeonhole:
  // there are finitely many registers).
  std::size_t rep_i = 0, rep_j = 0;
  for (std::size_t j = 1;; ++j) {
    // Construct stage j from stage j-1.
    Stage& prev = stages[j - 1];
    if (prev.r_i.is_empty()) {
      // Paper: D_{i+1} = D_i with an empty alpha_i. The covering set is
      // empty both times, so the repeat fires immediately.
      push_stage(prev.d_i, prev.q_i);
    } else {
      auto l3 = lemma3(prev.d_i, pz, prev.r_i);
      prev.phi_i = l3.phi;
      prev.beta_i = block_write(prev.r_i);
      const Config after_block =
          sim::run(proto_, prev.d_i, prev.phi_i + prev.beta_i);
      if (obs::audit_enabled()) {
        // This block write joins the constructed execution (the probes
        // inside lemma3 do not): it obliterates R_{j-1}'s covered
        // registers, which is what hides z's insertions later.
        obs::JsonObj ev = obs::audit_event("block_write");
        ev.num("config",
               static_cast<std::int64_t>(oracle_.intern_root(after_block)))
            .num("stage", static_cast<std::int64_t>(j - 1))
            .num("depth", depth_)
            .raw("procs", obs::json_int_array(prev.r_i.to_vector()))
            .raw("regs", obs::json_int_array(regs_vec(prev.covered)));
        obs::audit_sink().write(ev.render());
      }
      // R_i u {q} bivalent => superset P - {z} bivalent: hypothesis applies.
      auto sub = lemma4(after_block, pz);
      prev.psi_i = sub.alpha;
      push_stage(sim::run(proto_, after_block, sub.alpha), sub.q);
    }

    // Pigeonhole check: some earlier stage covering the same register set?
    bool done = false;
    for (std::size_t i = 0; i < j; ++i) {
      if (stages[i].covered == stages[j].covered) {
        rep_i = i;
        rep_j = j;
        done = true;
        break;
      }
    }
    if (done) break;
  }
  stats_.max_di_stages = std::max(stats_.max_di_stages, stages.size());
  note("pigeonhole: stages " + std::to_string(rep_i) + " and " +
       std::to_string(rep_j) + " cover the same registers");
  if (obs::audit_enabled()) {
    obs::JsonObj ev = obs::audit_event("lemma4.pigeonhole");
    ev.num("depth", depth_)
        .num("stage_i", static_cast<std::int64_t>(rep_i))
        .num("stage_j", static_cast<std::int64_t>(rep_j))
        .raw("covered", obs::json_int_array(regs_vec(stages[rep_i].covered)));
    obs::audit_sink().write(ev.render());
  }

  // Insert z's hidden steps: run z solo from D_i-phi_i until it is poised
  // to write outside V (Lemma 2 guarantees this); its covered writes are
  // then obliterated by the block write beta_i, so P - {z} cannot tell and
  // the chain's remaining schedule applies unchanged.
  Stage& si = stages[rep_i];
  const Config d_phi = sim::run(proto_, si.d_i, si.phi_i);
  auto esc = solo_escape(d_phi, z, si.covered);
  TSB_REQUIRE(esc.found,
              "Lemma 2 violated: the protocol cannot be a correct "
              "solo-terminating consensus protocol");

  Schedule alpha = gamma + eta;
  for (std::size_t k = 0; k < rep_i; ++k) {
    alpha.append(stages[k].phi_i);
    alpha.append(stages[k].beta_i);
    alpha.append(stages[k].psi_i);
  }
  alpha.append(si.phi_i);
  alpha.append(esc.zeta_prime);
  alpha.append(si.beta_i);
  alpha.append(si.psi_i);
  for (std::size_t k = rep_i + 1; k < rep_j; ++k) {
    alpha.append(stages[k].phi_i);
    alpha.append(stages[k].beta_i);
    alpha.append(stages[k].psi_i);
  }

  // Sanity: C-alpha is indistinguishable from D_j to P - {z}; Q_j is
  // bivalent from it and P - Q_j covers |P| - 2 distinct registers
  // (R_j covers V, z covers its escape register outside V).
  const Config c_alpha = sim::run(proto_, c, alpha);
  const ProcSet q_j = stages[rep_j].q_i;
  TSB_REQUIRE(sim::indistinguishable(c_alpha, stages[rep_j].d_i, pz),
              "hidden insertion of z was detected by P - {z}");
  TSB_REQUIRE(oracle_.bivalent(c_alpha, q_j), "Q_j lost bivalence");
  TSB_REQUIRE(well_spread(proto_, c_alpha, p - q_j),
              "P - Q_j is not well spread in C-alpha");
  TSB_REQUIRE(static_cast<int>(
                  covered_registers(proto_, c_alpha, p - q_j).size()) ==
                  p.size() - 2,
              "covering size mismatch");
  // z's hidden escape write joined the covering: |P| - 2 at this level.
  obs::TraceSink::global().counter(
      "covered", static_cast<std::int64_t>(p.size() - 2));

  stats_.longest_alpha = std::max(stats_.longest_alpha, alpha.size());
  --depth_;
  note("Lemma 4 done: |alpha| = " + std::to_string(alpha.size()) +
       ", bivalent pair " + q_j.to_string() + ", covering " +
       describe_covering(proto_, c_alpha, p - q_j));
  if (obs::audit_enabled()) {
    obs::JsonObj ev = obs::audit_event("lemma4.done");
    ev.num("config",
           static_cast<std::int64_t>(oracle_.intern_root(c_alpha)))
        .raw("procs", obs::json_int_array(p.to_vector()))
        .raw("bivalent_pair", obs::json_int_array(q_j.to_vector()))
        .raw("covered", obs::json_int_array(
                            regs_vec(covered_registers(proto_, c_alpha,
                                                       p - q_j))))
        .num("alpha_len", static_cast<std::int64_t>(alpha.size()))
        .num("depth", depth_);
    obs::audit_sink().write(ev.render());
  }
  return {alpha, q_j};
}

}  // namespace tsb::bound
