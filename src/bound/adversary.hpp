#pragma once

#include <string>

#include "bound/certificate.hpp"
#include "bound/lemmas.hpp"

namespace tsb::bound {

/// Theorem 1 driver: runs Zhu's adversary against a concrete protocol and
/// produces a covering certificate witnessing that executions of the
/// protocol reach a configuration where n-1 distinct registers are covered
/// (and are then written). This realises the paper's statement "every
/// nondeterministic solo terminating binary consensus protocol for n >= 2
/// processes uses at least n-1 registers" as an executable construction.
class SpaceBoundAdversary {
 public:
  struct Options {
    std::size_t valency_max_configs = 2'000'000;
    /// Worker threads for the oracle's reachability passes (> 1 uses the
    /// parallel explorer; results are identical at any thread count).
    int threads = 1;
    bool narrative = false;  ///< record a human-readable walkthrough
    /// Graceful-degradation budgets passed through to the valency oracle
    /// (see ValencyOracle::Options): arena heap cap in bytes and total
    /// wall-clock budget in ms; 0 disables each. Exhaustion yields a
    /// Result with budget_exhausted set — a distinct clean outcome, never
    /// an OOM or a hang.
    std::size_t valency_max_arena_bytes = 0;
    std::uint64_t valency_time_budget_ms = 0;
    /// Shared-subgraph valency engine (ValencyOracle::Options::reuse).
    /// Off = the fresh-BFS-per-query backend, kept as the differential
    /// anchor; identical verdicts and certificates either way.
    bool reuse = true;
    /// Out-of-core spill for the oracle's config storage (see
    /// ValencyOracle::Options). threshold 0 = all in RAM. Verdicts and
    /// certificates are unchanged by spilling; it exists so campaigns past
    /// the RAM wall (n = 7) can keep the frontier advancing from disk.
    std::string spill_dir = ".";
    std::size_t spill_threshold_bytes = 0;
    std::size_t spill_seg_configs = 0;
    /// Spill the shared engine's edge arrays too (ValencyOracle::Options::
    /// graph_spill); false reproduces the PR 7 node-arena-only behaviour.
    bool graph_spill = true;
    /// Work-stealing tuning for the --no-reuse parallel backend; 0 keeps
    /// the explorer defaults (see ValencyOracle::Options).
    std::uint32_t chunk_configs = 0;
    std::size_t parallel_threshold = 0;
    /// Crash-safe campaigns: non-empty = checkpoint the oracle's session
    /// state (roots, memo, shared graph) into this directory at the
    /// engines' quiescent points, every `checkpoint_interval_ms` of wall
    /// clock or `checkpoint_every` expansions (0 disables each; with both
    /// 0 a checkpoint is still written on a requested stop). `resume`
    /// restores the directory's committed checkpoint before running and
    /// re-drives the deterministic construction over the warm state —
    /// identical verdict, visited set and certificate to an uninterrupted
    /// run. Invalid/mismatched checkpoints throw util::CheckpointInvalid.
    std::string checkpoint_dir;
    std::uint64_t checkpoint_interval_ms = 0;
    std::uint64_t checkpoint_every = 0;
    bool resume = false;
  };

  struct Result {
    bool ok = false;
    bool budget_exhausted = false;  ///< stopped by a configured budget
    /// Stopped gracefully at a quiescent point (SIGTERM/SIGINT or a test
    /// hook) after writing a final checkpoint — the campaign continues
    /// later via resume. Distinct from both ok and budget_exhausted.
    bool stopped = false;
    std::string error;
    CoveringCertificate certificate;  ///< n-1 covered registers
    CertificateCheck check;           ///< independent verification
    LemmaToolkit::Stats lemma_stats;
    std::size_t valency_queries = 0;
    std::size_t valency_cache_hits = 0;
    // Shared-subgraph engine statistics (all zero with Options::reuse off).
    std::uint64_t reach_expanded = 0;   ///< protocol steps actually paid
    std::uint64_t reach_reused = 0;     ///< stored edges walked instead
    std::uint64_t reach_fact_answers = 0;  ///< queries settled by facts alone
    std::uint64_t reach_fact_subsumed = 0;  ///< superset negatives transferred
    std::size_t reach_graph_nodes = 0;  ///< projected configs interned
    std::size_t graph_spilled_bytes = 0;  ///< edge bytes on disk at finish
    std::string narrative;  ///< populated when Options::narrative
  };

  explicit SpaceBoundAdversary(const sim::Protocol& proto)
      : SpaceBoundAdversary(proto, Options{}) {}
  SpaceBoundAdversary(const sim::Protocol& proto, Options opts)
      : proto_(proto), opts_(opts) {}

  /// Run the full construction (Proposition 2 -> Lemma 4 -> Lemma 3 ->
  /// Lemma 2) and check the certificate. For n = 2 the theorem's special
  /// case applies: a solo run of p0 must write before deciding, yielding a
  /// single covered register = n-1.
  Result run();

 private:
  Result run_impl();

  const sim::Protocol& proto_;
  Options opts_;
};

}  // namespace tsb::bound
