#pragma once

#include <optional>
#include <set>
#include <string>

#include "sim/engine.hpp"

namespace tsb::bound {

using sim::Config;
using sim::ProcId;
using sim::ProcSet;
using sim::Protocol;
using sim::RegId;
using sim::Schedule;

/// Covering machinery (Definition 2).
///
/// A process covers register r in C if it is poised to write to r. A set R
/// of processes all of which cover some register is a set of covering
/// processes; a block write by R performs exactly one step per member —
/// each its pending write — and nothing else. R = {} is a valid covering
/// set with the empty block write, as the paper allows for technical
/// reasons (the |P| = 3 base of Lemma 4 exercises it).

/// The register p covers in c, i.e. the target of its pending write;
/// nullopt if p is not poised to write.
std::optional<RegId> covered_register(const Protocol& proto, const Config& c,
                                      ProcId p);

/// True iff every process in r covers some register in c.
bool is_covering_set(const Protocol& proto, const Config& c, ProcSet r);

/// The registers covered by processes of r in c (deduplicated).
std::set<RegId> covered_registers(const Protocol& proto, const Config& c,
                                  ProcSet r);

/// True iff r is a covering set whose members cover pairwise distinct
/// registers ("well spread" in the Lemma 4 outline).
bool well_spread(const Protocol& proto, const Config& c, ProcSet r);

/// The block write by R: one step per member, ascending process id. When
/// members cover distinct registers the order is immaterial (the resulting
/// configurations are indistinguishable); we fix an order for determinism.
Schedule block_write(ProcSet r);

/// Pretty-print "p3 covers R1, p5 covers R0" for reports.
std::string describe_covering(const Protocol& proto, const Config& c,
                              ProcSet r);

}  // namespace tsb::bound
