#include "bound/covering.hpp"

namespace tsb::bound {

std::optional<RegId> covered_register(const Protocol& proto, const Config& c,
                                      ProcId p) {
  const sim::PendingOp op = sim::poised_in(proto, c, p);
  if (op.is_write()) return op.reg;
  return std::nullopt;
}

bool is_covering_set(const Protocol& proto, const Config& c, ProcSet r) {
  bool ok = true;
  r.for_each([&](int p) {
    if (!covered_register(proto, c, p)) ok = false;
  });
  return ok;
}

std::set<RegId> covered_registers(const Protocol& proto, const Config& c,
                                  ProcSet r) {
  std::set<RegId> regs;
  r.for_each([&](int p) {
    if (auto reg = covered_register(proto, c, p)) regs.insert(*reg);
  });
  return regs;
}

bool well_spread(const Protocol& proto, const Config& c, ProcSet r) {
  if (!is_covering_set(proto, c, r)) return false;
  return static_cast<int>(covered_registers(proto, c, r).size()) == r.size();
}

Schedule block_write(ProcSet r) {
  Schedule beta;
  r.for_each([&](int p) { beta.push(p); });
  return beta;
}

std::string describe_covering(const Protocol& proto, const Config& c,
                              ProcSet r) {
  std::string out;
  r.for_each([&](int p) {
    if (!out.empty()) out += ", ";
    out += "p" + std::to_string(p);
    if (auto reg = covered_register(proto, c, p)) {
      out += " covers R" + std::to_string(*reg);
    } else {
      out += " covers nothing";
    }
  });
  return out.empty() ? "(empty covering set)" : out;
}

}  // namespace tsb::bound
