#include "bound/certificate.hpp"

namespace tsb::bound {

CertificateCheck check_certificate(const sim::Protocol& proto,
                                   const CoveringCertificate& cert) {
  CertificateCheck out;

  if (static_cast<int>(cert.inputs.size()) != proto.num_processes()) {
    out.error = "input vector size does not match process count";
    return out;
  }

  const sim::Config init = sim::initial_config(proto, cert.inputs);
  const sim::Config final_cfg = sim::run(proto, init, cert.schedule);

  // 1. Claimed poised writes.
  for (auto [p, r] : cert.covering) {
    const sim::PendingOp op = sim::poised_in(proto, final_cfg, p);
    if (!op.is_write()) {
      out.error = "p" + std::to_string(p) + " is not poised to write";
      return out;
    }
    if (op.reg != r) {
      out.error = "p" + std::to_string(p) + " covers R" +
                  std::to_string(op.reg) + ", certificate claims R" +
                  std::to_string(r);
      return out;
    }
    out.registers.insert(r);
  }

  // 2. Distinctness.
  if (out.registers.size() != cert.covering.size()) {
    out.error = "claimed covered registers are not pairwise distinct";
    return out;
  }
  out.distinct_registers = static_cast<int>(out.registers.size());

  // 3. The block write by the claimed processes writes exactly them.
  sim::Schedule block;
  for (auto [p, r] : cert.covering) block.push(p);
  sim::Trace trace;
  (void)sim::run(proto, final_cfg, block, &trace);
  out.written_after_block = trace.registers_written();
  if (out.written_after_block != out.registers) {
    out.error = "block write did not write exactly the covered registers";
    return out;
  }

  out.ok = true;
  return out;
}

}  // namespace tsb::bound
