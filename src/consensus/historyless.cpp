#include "consensus/historyless.hpp"

#include <cassert>

namespace tsb::consensus {

// State layout (both protocols): 0/1 = about to swap, carrying the input
// bit; 2 | (d << 2) = decided d.
namespace {
constexpr sim::State decided(sim::Value d) { return 2 | (d << 2); }
constexpr bool is_decided(sim::State s) { return (s & 2) != 0; }
constexpr sim::Value decision(sim::State s) { return s >> 2; }
}  // namespace

// ---------------------------------------------------------------------------
// SwapConsensus
// ---------------------------------------------------------------------------

sim::State SwapConsensus::initial_state(sim::ProcId, sim::Value input) const {
  return input & 1;
}

sim::PendingOp SwapConsensus::poised(sim::ProcId, sim::State s) const {
  if (is_decided(s)) return sim::PendingOp::decide(decision(s));
  // Write our proposal; the returned old value arbitrates.
  return sim::PendingOp::swap(0, s & 1);
}

sim::State SwapConsensus::after_swap(sim::ProcId, sim::State s,
                                     sim::Value observed) const {
  if (observed == sim::kEmptyRegister) return decided(s & 1);  // first
  return decided(observed & 1);  // adopt whoever swapped before us
}

sim::State SwapConsensus::after_read(sim::ProcId, sim::State s,
                                     sim::Value) const {
  assert(false && "swap-consensus never reads");
  return s;
}

sim::State SwapConsensus::after_write(sim::ProcId, sim::State s) const {
  assert(false && "swap-consensus never plain-writes");
  return s;
}

// ---------------------------------------------------------------------------
// TasLeaderElection
// ---------------------------------------------------------------------------

sim::State TasLeaderElection::initial_state(sim::ProcId, sim::Value) const {
  return 0;  // inputs are irrelevant to leader election
}

sim::PendingOp TasLeaderElection::poised(sim::ProcId, sim::State s) const {
  if (is_decided(s)) return sim::PendingOp::decide(decision(s));
  return sim::PendingOp::swap(0, 1);  // mark the object taken
}

sim::State TasLeaderElection::after_swap(sim::ProcId, sim::State,
                                         sim::Value observed) const {
  return decided(observed == sim::kEmptyRegister ? 1 : 0);
}

sim::State TasLeaderElection::after_read(sim::ProcId, sim::State s,
                                         sim::Value) const {
  assert(false && "test-and-set never reads");
  return s;
}

sim::State TasLeaderElection::after_write(sim::ProcId, sim::State s) const {
  assert(false && "test-and-set never plain-writes");
  return s;
}

}  // namespace tsb::consensus
