#include "consensus/kset.hpp"

#include <cassert>

namespace tsb::consensus {

PartitionedKSet::PartitionedKSet(int n, int k, int max_ballot)
    : n_(n), k_(k) {
  assert(k >= 1 && n >= 2 * k);
  group_.resize(static_cast<std::size_t>(n));
  local_.resize(static_cast<std::size_t>(n));

  // Near-equal contiguous groups: the first (n % k) groups get one extra.
  int next = 0;
  for (int g = 0; g < k; ++g) {
    const int size = n / k + (g < n % k ? 1 : 0);
    reg_offset_.push_back(next);  // registers are laid out like processes
    groups_.push_back(std::make_unique<BallotConsensus>(size, max_ballot));
    for (int i = 0; i < size; ++i, ++next) {
      group_[static_cast<std::size_t>(next)] = g;
      local_[static_cast<std::size_t>(next)] = i;
    }
  }
  assert(next == n);
}

std::string PartitionedKSet::name() const {
  return "partitioned-kset(n=" + std::to_string(n_) +
         ", k=" + std::to_string(k_) + ")";
}

int PartitionedKSet::num_registers() const {
  return n_;  // one single-writer register per process, grouped
}

sim::Value PartitionedKSet::initial_register() const {
  return BallotConsensus::pack_reg(0, 0, -1);
}

sim::ProcId PartitionedKSet::local_proc(sim::ProcId p) const {
  return local_[static_cast<std::size_t>(p)];
}

sim::State PartitionedKSet::initial_state(sim::ProcId p,
                                          sim::Value input) const {
  return groups_[static_cast<std::size_t>(group_of(p))]->initial_state(
      local_proc(p), input);
}

sim::PendingOp PartitionedKSet::poised(sim::ProcId p, sim::State s) const {
  const int g = group_of(p);
  sim::PendingOp op = groups_[static_cast<std::size_t>(g)]->poised(local_proc(p), s);
  if (op.is_read() || op.is_write()) op.reg += reg_offset(g);
  return op;
}

sim::State PartitionedKSet::after_read(sim::ProcId p, sim::State s,
                                       sim::Value observed) const {
  return groups_[static_cast<std::size_t>(group_of(p))]->after_read(
      local_proc(p), s, observed);
}

sim::State PartitionedKSet::after_write(sim::ProcId p, sim::State s) const {
  return groups_[static_cast<std::size_t>(group_of(p))]->after_write(
      local_proc(p), s);
}

}  // namespace tsb::consensus
