#include "consensus/racing.hpp"

#include <cassert>

namespace tsb::consensus {

namespace {
constexpr int kCollect = 0;
constexpr int kWrite = 1;
constexpr int kDecide = 2;
}  // namespace

RacingConsensus::RacingConsensus(int n, AdoptRule rule) : n_(n), rule_(rule) {
  assert(n >= 1 && n <= 15);  // 4-bit fields
}

std::string RacingConsensus::name() const {
  return std::string("racing-consensus(") +
         (rule_ == AdoptRule::kStrictMajority ? "strict" : "at-least") +
         ", n=" + std::to_string(n_) + ")";
}

sim::State RacingConsensus::encode(const Fields& f) {
  return static_cast<sim::State>(
      (static_cast<std::uint64_t>(f.tag) << 0) |
      (static_cast<std::uint64_t>(f.v) << 2) |
      (static_cast<std::uint64_t>(f.pos) << 3) |
      (static_cast<std::uint64_t>(f.c0) << 7) |
      (static_cast<std::uint64_t>(f.c1) << 11) |
      (static_cast<std::uint64_t>(f.f0) << 15) |
      (static_cast<std::uint64_t>(f.f1) << 19) |
      (static_cast<std::uint64_t>(f.t) << 23));
}

RacingConsensus::Fields RacingConsensus::decode(sim::State s) {
  const auto u = static_cast<std::uint64_t>(s);
  Fields f;
  f.tag = static_cast<int>((u >> 0) & 0x3);
  f.v = static_cast<int>((u >> 2) & 0x1);
  f.pos = static_cast<int>((u >> 3) & 0xf);
  f.c0 = static_cast<int>((u >> 7) & 0xf);
  f.c1 = static_cast<int>((u >> 11) & 0xf);
  f.f0 = static_cast<int>((u >> 15) & 0xf);
  f.f1 = static_cast<int>((u >> 19) & 0xf);
  f.t = static_cast<int>((u >> 23) & 0xf);
  return f;
}

sim::State RacingConsensus::initial_state(sim::ProcId, sim::Value input) const {
  Fields f;
  f.tag = kCollect;
  f.v = static_cast<int>(input & 1);
  f.pos = 0;
  f.f0 = n_;  // "no register differing from 0 seen yet"
  f.f1 = n_;
  return encode(f);
}

sim::PendingOp RacingConsensus::poised(sim::ProcId, sim::State s) const {
  const Fields f = decode(s);
  switch (f.tag) {
    case kCollect:
      return sim::PendingOp::read(f.pos);
    case kWrite:
      return sim::PendingOp::write(f.t, f.v);
    default:
      return sim::PendingOp::decide(f.v);
  }
}

sim::State RacingConsensus::finish_collect(Fields f) const {
  // Post-collect rule: adopt, then decide or write.
  const int cv = f.v == 0 ? f.c0 : f.c1;
  const int cvb = f.v == 0 ? f.c1 : f.c0;
  const bool adopt = rule_ == AdoptRule::kStrictMajority
                         ? cvb > cv
                         : (cvb >= cv && cvb > 0);
  Fields next;
  next.v = adopt ? 1 - f.v : f.v;
  const int count = next.v == 0 ? f.c0 : f.c1;
  if (count == n_) {
    next.tag = kDecide;
    return encode(next);
  }
  next.tag = kWrite;
  next.t = next.v == 0 ? f.f0 : f.f1;
  assert(next.t < n_);  // count < n, so some register differs from v
  return encode(next);
}

sim::State RacingConsensus::after_read(sim::ProcId, sim::State s,
                                       sim::Value observed) const {
  Fields f = decode(s);
  assert(f.tag == kCollect);
  if (observed == 0) {
    ++f.c0;
  } else if (observed == 1) {
    ++f.c1;
  }
  if (observed != 0 && f.f0 == n_) f.f0 = f.pos;
  if (observed != 1 && f.f1 == n_) f.f1 = f.pos;
  ++f.pos;
  if (f.pos == n_) return finish_collect(f);
  return encode(f);
}

sim::State RacingConsensus::after_write(sim::ProcId, sim::State s) const {
  Fields f = decode(s);
  assert(f.tag == kWrite);
  Fields next;
  next.tag = kCollect;
  next.v = f.v;
  next.pos = 0;
  next.f0 = n_;
  next.f1 = n_;
  return encode(next);
}

}  // namespace tsb::consensus
