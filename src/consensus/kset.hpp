#pragma once

#include <memory>
#include <vector>

#include "consensus/ballot.hpp"
#include "sim/protocol.hpp"

namespace tsb::consensus {

/// k-set agreement by partitioning: the n processes are split into k
/// contiguous groups and each group runs an independent binary consensus
/// (BallotConsensus) on its members' inputs. At most one value is decided
/// per group, so at most k values overall; every decided value is some
/// process's input.
///
/// The paper's Section 4 asks whether the covering/valency technique yields
/// an Omega(n-k) space bound for k-set agreement (the best protocols use
/// n-k+1 registers [BRS15]). This partitioned protocol is not
/// space-optimal — it uses n registers — but it makes the conjectured bound
/// concrete on an instance: running the Theorem 1 adversary inside each
/// group forces sum over groups of (n_g - 1) = n - k distinct covered
/// registers, matching the conjecture's form. bench_space_bound reports
/// this experiment.
class PartitionedKSet final : public sim::Protocol {
 public:
  /// Splits n processes into k groups of near-equal size (every group gets
  /// at least 2 processes; requires n >= 2k). `max_ballot` is per group.
  PartitionedKSet(int n, int k, int max_ballot);

  std::string name() const override;
  int num_processes() const override { return n_; }
  int num_registers() const override;
  sim::Value initial_register() const override;
  sim::State initial_state(sim::ProcId p, sim::Value input) const override;
  sim::PendingOp poised(sim::ProcId p, sim::State s) const override;
  sim::State after_read(sim::ProcId p, sim::State s,
                        sim::Value observed) const override;
  sim::State after_write(sim::ProcId p, sim::State s) const override;

  int k() const { return k_; }
  int group_of(sim::ProcId p) const { return group_[static_cast<std::size_t>(p)]; }
  int group_size(int g) const { return groups_[static_cast<std::size_t>(g)]->num_processes(); }
  const BallotConsensus& group_protocol(int g) const {
    return *groups_[static_cast<std::size_t>(g)];
  }

 private:
  sim::ProcId local_proc(sim::ProcId p) const;
  int reg_offset(int g) const { return reg_offset_[static_cast<std::size_t>(g)]; }

  int n_;
  int k_;
  std::vector<std::unique_ptr<BallotConsensus>> groups_;
  std::vector<int> group_;       // process -> group
  std::vector<int> local_;       // process -> index within group
  std::vector<int> reg_offset_;  // group -> first register index
};

}  // namespace tsb::consensus
