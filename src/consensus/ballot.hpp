#pragma once

#include <string>

#include "sim/protocol.hpp"

namespace tsb::consensus {

/// Obstruction-free binary consensus from n single-writer registers via
/// ballots — shared-memory Paxos in the style of the classic round-based
/// protocols the paper cites as upper bounds ([AH90]-era structure).
///
/// Register R[p] (written only by p) holds a triple (mb, ab, av):
///   mb — the highest ballot p has started,
///   ab — the ballot at which p last accepted a value,
///   av — that value.
/// Ballot numbers are partitioned by ownership: ballot b belongs to process
/// (b-1) mod n, so no two processes ever accept at the same ballot.
///
/// propose(v):
///   b := own lowest ballot
///   loop:
///     R[p] := (b, ab, av)                                  // prepare
///     collect; if any mb or ab > b: b := own ballot above it; continue
///     w := av of the highest ab seen (v if none)
///     R[p] := (b, b, w)                                    // accept
///     collect; if any mb or ab > b: b := own ballot above it; continue
///     decide w
///
/// Safety (Agreement) is the Synod argument: if p decides w at ballot b,
/// its final collect saw no ballot above b, so any process q moving to a
/// ballot b' > b wrote its prepare after p's accept-write and therefore
/// collects R[p] = (b, b, w); by induction on b' the highest accepted entry
/// q can pick from always carries w. Validity: every accepted value is
/// chained to some input. Solo termination: a process running alone
/// restarts at most once (to exceed everything seen) and then decides.
///
/// Simulation cap: like every known correct obstruction-free consensus
/// protocol, ballots grow without bound under contention. `max_ballot`
/// bounds the simulated state space: a process needing a ballot above the
/// cap enters a harmless self-loop (it re-reads its own register forever).
/// This makes exhaustive analysis possible; configurations at the cap are
/// the only ones where solo termination fails, and certificates produced
/// by the adversary are checked against an uncapped instance (the capped
/// protocol's executions below the cap are literally executions of the
/// uncapped protocol).
class BallotConsensus final : public sim::Protocol {
 public:
  /// `max_ballot` = highest usable ballot number (>= n recommended:
  /// every process gets at least one ballot).
  BallotConsensus(int n, int max_ballot);

  std::string name() const override;
  int num_processes() const override { return n_; }
  int num_registers() const override { return n_; }
  sim::Value initial_register() const override { return pack_reg(0, 0, -1); }
  sim::State initial_state(sim::ProcId p, sim::Value input) const override;
  sim::PendingOp poised(sim::ProcId p, sim::State s) const override;
  sim::State after_read(sim::ProcId p, sim::State s,
                        sim::Value observed) const override;
  sim::State after_write(sim::ProcId p, sim::State s) const override;

  int max_ballot() const { return cap_; }

  /// Whether s is the ballot-cap self-loop state — the only states from
  /// which solo termination fails (tests verify exactly that).
  bool is_stuck_state(sim::State s) const;

  /// Register word layout (also used by tests).
  static sim::Value pack_reg(int mb, int ab, int av);
  static void unpack_reg(sim::Value v, int& mb, int& ab, int& av);

 private:
  enum Phase : int {
    kPrepWrite = 0,   // poised to write (b, ab, av)
    kPrepCollect = 1, // reading all registers
    kAccWrite = 2,    // poised to write (b, b, w)
    kAccCollect = 3,  // reading all registers
    kDecided = 4,
    kStuck = 5,       // ballot cap exceeded: self-loop on own register
  };

  struct Fields {
    int phase = kPrepWrite;
    int b = 0;        // current ballot
    int pos = 0;      // collect cursor
    int max_bal = 0;  // highest mb/ab seen in current collect
    int max_ab = 0;   // highest ab seen in current collect
    int av_max = -1;  // value at max_ab
    int ab_own = 0;   // own accepted ballot (mirrors R[p])
    int av_own = -1;  // own accepted value
    int v_in = 0;     // input, used when nothing is accepted yet
    int w = 0;        // value being accepted (kAccWrite/kAccCollect)
  };
  static sim::State encode(const Fields& f);
  static Fields decode(sim::State s);

  /// Smallest ballot owned by p that is strictly greater than `above`;
  /// -1 if it would exceed the cap.
  int next_own_ballot(sim::ProcId p, int above) const;

  sim::State finish_collect(sim::ProcId p, Fields f) const;

  int n_;
  int cap_;
};

}  // namespace tsb::consensus
