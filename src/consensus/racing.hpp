#pragma once

#include <string>

#include "sim/protocol.hpp"

namespace tsb::consensus {

/// Anonymous, memoryless-style obstruction-free binary consensus from n
/// registers holding values in {empty, 0, 1} — in the style of the upper
/// bound [Zhu15] cited by the paper ("there is a memoryless anonymous
/// protocol that uses n registers").
///
/// propose(v):
///   repeat:
///     collect R[0..n-1]                       (one read per step)
///     if more registers hold the complement of v than hold v: v := ~v
///     if all n registers hold v: decide v
///     else: write v to the first register not holding v
///
/// The only state carried across loop iterations is the preference v
/// (memoryless); within a collect the process tracks counts and the first
/// register differing from each value, which is what the post-collect rule
/// needs. Register alphabet and local state are finite, so the full
/// configuration space is finite and the model checker settles every
/// instance *exhaustively*.
///
/// What the checker found (see test_model_checker.cpp):
///  * kStrictMajority (adopt iff count(~v) > count(v)): UNSAFE already at
///    n = 2 — a single stale covered write lands after a decider saw an
///    all-v view, the victim then sees a 1-1 tie, keeps its preference and
///    overwrites: a textbook covered-write obliteration, i.e. exactly the
///    phenomenon the paper's Lemma 2/3 machinery formalizes.
///  * kAtLeast (adopt iff count(~v) >= count(v) > 0... complement count
///    positive): exhaustively CORRECT for n = 2 — agreement, validity and
///    solo termination from every one of the reachable configurations.
///    This makes it a finite-state, anonymous, memoryless, multi-writer
///    obstruction-free consensus protocol using n = 2 registers
///    (consistent with the paper's conjecture that n are necessary).
///    At n = 3 the same rule is UNSAFE again (deeper obliteration).
///
/// Both rules are kept: the n = 2 kAtLeast instance is a genuine
/// upper-bound protocol the Theorem 1 adversary runs against (with
/// multi-writer registers, so its covering witness is not an artifact of
/// register ownership), and the broken instances are regression anchors
/// proving the model checker has teeth.
class RacingConsensus final : public sim::Protocol {
 public:
  enum class AdoptRule {
    kStrictMajority,  ///< adopt ~v iff count(~v) > count(v)
    kAtLeast,         ///< adopt ~v iff count(~v) >= count(v) and count(~v) > 0
  };

  explicit RacingConsensus(int n, AdoptRule rule = AdoptRule::kStrictMajority);

  std::string name() const override;
  int num_processes() const override { return n_; }
  int num_registers() const override { return n_; }
  /// Every transition below ignores its ProcId parameter: processes are
  /// distinguished only by their states, so process renaming is an
  /// automorphism and the canonicalizing engine may quotient by it.
  bool symmetric() const override { return true; }
  sim::State initial_state(sim::ProcId p, sim::Value input) const override;
  sim::PendingOp poised(sim::ProcId p, sim::State s) const override;
  sim::State after_read(sim::ProcId p, sim::State s,
                        sim::Value observed) const override;
  sim::State after_write(sim::ProcId p, sim::State s) const override;

  AdoptRule rule() const { return rule_; }

 private:
  // Local-state encoding. Fields (4 bits each unless noted):
  //   tag: 0 = collecting, 1 = poised to write, 2 = decided
  //   v:   current preference (1 bit)
  //   pos: next register to read in the current collect
  //   c0, c1: registers seen holding 0 / holding 1 so far
  //   f0, f1: first register seen not holding 0 / not holding 1 (n = none)
  //   t:   write target (tag 1 only)
  struct Fields {
    int tag = 0;
    int v = 0;
    int pos = 0;
    int c0 = 0, c1 = 0;
    int f0 = 0, f1 = 0;
    int t = 0;
  };
  static sim::State encode(const Fields& f);
  static Fields decode(sim::State s);
  sim::State finish_collect(Fields f) const;

  int n_;
  AdoptRule rule_;
};

}  // namespace tsb::consensus
