#pragma once

#include <string>

#include "sim/protocol.hpp"

namespace tsb::consensus {

/// Protocols from *historyless* base objects — the paper's Section 4:
/// "the Omega(sqrt n) lower bound in [FHS98] actually holds for historyless
/// base objects, such as swap objects. It is not clear how to modify our
/// lower bound to work in this case. The difficulty is that, when a
/// process performs swap, it sees the value it overwrote."
///
/// These protocols make that boundary executable. A single swap register
/// solves 2-process consensus wait-free (swap has consensus number 2) —
/// whereas bench_protocol_search shows no 1-register read/write protocol
/// exists. One swap register also solves test-and-set (weak leader
/// election) for ANY n, deterministically and wait-free — impossible from
/// read/write registers altogether. The reason Zhu's technique cannot rule
/// this out is demonstrated in bench_historyless: a "hidden" swap is
/// always detected by the next swapper.

/// Wait-free binary consensus for n = 2 from ONE swap register.
///
/// propose(v): old := swap(R0, v); decide (old == empty ? v : old).
///
/// The first swapper wins and the second adopts the overwritten value —
/// two steps, wait-free, anonymous. The model checker verifies n = 2
/// exhaustively; at n >= 3 the third swapper sees the *second* process's
/// value and agreement fails (swap's consensus number is exactly 2), which
/// the checker also exhibits.
class SwapConsensus final : public sim::Protocol {
 public:
  explicit SwapConsensus(int n) : n_(n) {}

  std::string name() const override {
    return "swap-consensus(n=" + std::to_string(n_) + ")";
  }
  int num_processes() const override { return n_; }
  int num_registers() const override { return 1; }
  sim::State initial_state(sim::ProcId p, sim::Value input) const override;
  sim::PendingOp poised(sim::ProcId p, sim::State s) const override;
  sim::State after_read(sim::ProcId p, sim::State s,
                        sim::Value observed) const override;
  sim::State after_write(sim::ProcId p, sim::State s) const override;
  sim::State after_swap(sim::ProcId p, sim::State s,
                        sim::Value observed) const override;

 private:
  int n_;
};

/// Deterministic wait-free test-and-set (= weak leader election) for any n
/// from ONE swap register: old := swap(R0, taken); leader iff old == empty.
///
/// Contrast object for the paper's discussion of weak leader election:
/// from read/write registers the problem needs Theta(log n) registers and
/// intricate obstruction-free machinery (GHHW); one historyless swap
/// object collapses it to a single step. A process decides 1 (leader) or
/// 0 (not leader).
class TasLeaderElection final : public sim::Protocol {
 public:
  explicit TasLeaderElection(int n) : n_(n) {}

  std::string name() const override {
    return "tas-leader-election(n=" + std::to_string(n_) + ")";
  }
  int num_processes() const override { return n_; }
  int num_registers() const override { return 1; }
  sim::State initial_state(sim::ProcId p, sim::Value input) const override;
  sim::PendingOp poised(sim::ProcId p, sim::State s) const override;
  sim::State after_read(sim::ProcId p, sim::State s,
                        sim::Value observed) const override;
  sim::State after_write(sim::ProcId p, sim::State s) const override;
  sim::State after_swap(sim::ProcId p, sim::State s,
                        sim::Value observed) const override;

 private:
  int n_;
};

}  // namespace tsb::consensus
