#include "consensus/ballot.hpp"

#include <cassert>

namespace tsb::consensus {

BallotConsensus::BallotConsensus(int n, int max_ballot)
    : n_(n), cap_(max_ballot) {
  assert(n >= 1 && n <= 63);
  assert(max_ballot >= n && max_ballot <= 255);
}

std::string BallotConsensus::name() const {
  return "ballot-consensus(n=" + std::to_string(n_) +
         ", max_ballot=" + std::to_string(cap_) + ")";
}

sim::Value BallotConsensus::pack_reg(int mb, int ab, int av) {
  return (static_cast<sim::Value>(mb) << 16) |
         (static_cast<sim::Value>(ab) << 8) |
         static_cast<sim::Value>(av + 1);
}

void BallotConsensus::unpack_reg(sim::Value v, int& mb, int& ab, int& av) {
  mb = static_cast<int>((v >> 16) & 0xff);
  ab = static_cast<int>((v >> 8) & 0xff);
  av = static_cast<int>(v & 0x3) - 1;
}

sim::State BallotConsensus::encode(const Fields& f) {
  std::uint64_t u = 0;
  u |= static_cast<std::uint64_t>(f.phase) << 0;       // 3 bits
  u |= static_cast<std::uint64_t>(f.b) << 3;           // 8 bits
  u |= static_cast<std::uint64_t>(f.pos) << 11;        // 6 bits
  u |= static_cast<std::uint64_t>(f.max_bal) << 17;    // 8 bits
  u |= static_cast<std::uint64_t>(f.max_ab) << 25;     // 8 bits
  u |= static_cast<std::uint64_t>(f.av_max + 1) << 33; // 2 bits
  u |= static_cast<std::uint64_t>(f.ab_own) << 35;     // 8 bits
  u |= static_cast<std::uint64_t>(f.av_own + 1) << 43; // 2 bits
  u |= static_cast<std::uint64_t>(f.v_in) << 45;       // 1 bit
  u |= static_cast<std::uint64_t>(f.w) << 46;          // 1 bit
  return static_cast<sim::State>(u);
}

BallotConsensus::Fields BallotConsensus::decode(sim::State s) {
  const auto u = static_cast<std::uint64_t>(s);
  Fields f;
  f.phase = static_cast<int>((u >> 0) & 0x7);
  f.b = static_cast<int>((u >> 3) & 0xff);
  f.pos = static_cast<int>((u >> 11) & 0x3f);
  f.max_bal = static_cast<int>((u >> 17) & 0xff);
  f.max_ab = static_cast<int>((u >> 25) & 0xff);
  f.av_max = static_cast<int>((u >> 33) & 0x3) - 1;
  f.ab_own = static_cast<int>((u >> 35) & 0xff);
  f.av_own = static_cast<int>((u >> 43) & 0x3) - 1;
  f.v_in = static_cast<int>((u >> 45) & 0x1);
  f.w = static_cast<int>((u >> 46) & 0x1);
  return f;
}

bool BallotConsensus::is_stuck_state(sim::State s) const {
  return decode(s).phase == kStuck;
}

int BallotConsensus::next_own_ballot(sim::ProcId p, int above) const {
  // Ballots owned by p are {p+1, p+1+n, p+1+2n, ...}.
  int b = p + 1;
  while (b <= above) b += n_;
  return b <= cap_ ? b : -1;
}

sim::State BallotConsensus::initial_state(sim::ProcId p,
                                          sim::Value input) const {
  Fields f;
  f.phase = kPrepWrite;
  f.b = next_own_ballot(p, 0);
  f.v_in = static_cast<int>(input & 1);
  assert(f.b > 0);
  return encode(f);
}

sim::PendingOp BallotConsensus::poised(sim::ProcId p, sim::State s) const {
  const Fields f = decode(s);
  switch (f.phase) {
    case kPrepWrite:
      return sim::PendingOp::write(p, pack_reg(f.b, f.ab_own, f.av_own));
    case kPrepCollect:
    case kAccCollect:
      return sim::PendingOp::read(f.pos);
    case kAccWrite:
      return sim::PendingOp::write(p, pack_reg(f.b, f.b, f.w));
    case kDecided:
      return sim::PendingOp::decide(f.av_own);
    default:  // kStuck: harmless self-loop, keeps the state space finite
      return sim::PendingOp::read(p);
  }
}

sim::State BallotConsensus::finish_collect(sim::ProcId p, Fields f) const {
  if (f.max_bal > f.b) {
    // Someone is ahead: move to an own ballot above everything seen.
    const int nb = next_own_ballot(p, f.max_bal);
    Fields next;
    if (nb < 0) {
      next.phase = kStuck;
      next.ab_own = f.ab_own;
      next.av_own = f.av_own;
      return encode(next);
    }
    next.phase = kPrepWrite;
    next.b = nb;
    next.ab_own = f.ab_own;
    next.av_own = f.av_own;
    next.v_in = f.v_in;
    return encode(next);
  }

  if (f.phase == kPrepCollect) {
    // Nothing above us: accept the value of the highest accepted ballot
    // seen, or our input if nothing was ever accepted.
    Fields next = f;
    next.phase = kAccWrite;
    next.pos = 0;
    next.w = f.max_ab > 0 ? f.av_max : f.v_in;
    assert(f.max_ab == 0 || f.av_max >= 0);
    return encode(next);
  }

  // kAccCollect with nothing above us: the value is chosen.
  Fields next;
  next.phase = kDecided;
  next.b = f.b;
  next.ab_own = f.ab_own;
  next.av_own = f.av_own;
  assert(next.av_own >= 0);
  return encode(next);
}

sim::State BallotConsensus::after_read(sim::ProcId p, sim::State s,
                                       sim::Value observed) const {
  Fields f = decode(s);
  if (f.phase == kStuck) return s;
  assert(f.phase == kPrepCollect || f.phase == kAccCollect);

  int mb, ab, av;
  unpack_reg(observed, mb, ab, av);
  f.max_bal = std::max(f.max_bal, std::max(mb, ab));
  if (ab > f.max_ab) {
    f.max_ab = ab;
    f.av_max = av;
  }
  ++f.pos;
  if (f.pos == n_) return finish_collect(p, f);
  return encode(f);
}

sim::State BallotConsensus::after_write(sim::ProcId p, sim::State s) const {
  (void)p;
  Fields f = decode(s);
  if (f.phase == kPrepWrite) {
    Fields next = f;
    next.phase = kPrepCollect;
    next.pos = 0;
    next.max_bal = 0;
    next.max_ab = 0;
    next.av_max = -1;
    return encode(next);
  }
  assert(f.phase == kAccWrite);
  Fields next = f;
  next.phase = kAccCollect;
  next.pos = 0;
  next.max_bal = 0;
  next.max_ab = 0;
  next.av_max = -1;
  next.ab_own = f.b;   // mirror the accept-write in local state
  next.av_own = f.w;
  return encode(next);
}

}  // namespace tsb::consensus
