#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tsb::util {

/// Column-aligned plain-text table used by every benchmark binary so that
/// experiment output is directly comparable across runs (and greppable by
/// EXPERIMENTS.md tooling). Also renders CSV for downstream plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; the number of cells must equal the number of headers.
  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats each argument with to_cell().
  template <typename... Ts>
  Table& row(const Ts&... vals) {
    return add_row({to_cell(vals)...});
  }

  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(bool b) { return b ? "yes" : "no"; }
  static std::string to_cell(double v);
  template <typename T>
  static std::string to_cell(const T& v) {
    return std::to_string(v);
  }

  /// Render with aligned columns, a header rule, and an optional title.
  std::string to_text(const std::string& title = "") const;
  std::string to_csv() const;

  void print(std::ostream& os, const std::string& title = "") const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tsb::util
