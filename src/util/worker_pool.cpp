#include "util/worker_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace tsb::util {

WorkerPool::WorkerPool(int threads) {
  const int count = std::max(1, threads);
  threads_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(const std::function<void(int)>& task) {
  std::unique_lock<std::mutex> lock(mu_);
  task_ = &task;
  error_ = nullptr;
  remaining_ = size();
  ++generation_;
  work_ready_.notify_all();
  round_done_.wait(lock, [this] { return remaining_ == 0; });
  task_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

void WorkerPool::worker_main(int index) {
  // Stable trace track per worker: the caller keeps id 0, workers take
  // 1..size(). Worker timelines in Perfetto then line up run to run
  // instead of depending on first-touch assignment order.
  obs::set_thread_id(index + 1);
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(int)>* task;
    {
      // Queue wait vs. work time is the per-worker utilization picture:
      // "pool.wait" covers sleeping for the next round, "pool.task" the
      // round itself. Both are one relaxed load when tracing is off.
      obs::Span wait_span("pool.wait");
      wait_span.set_value(index);
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock,
                       [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      task = task_;
    }
    std::exception_ptr err;
    {
      obs::Span task_span("pool.task");
      task_span.set_value(index);
      try {
        (*task)(index);
      } catch (...) {
        err = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !error_) error_ = err;
      if (--remaining_ == 0) round_done_.notify_one();
    }
  }
}

}  // namespace tsb::util
