#include "util/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/flight.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/memledger.hpp"
#include "obs/timeseries.hpp"
#include "util/iofault.hpp"
#include "util/require.hpp"

namespace tsb::util::ckpt {

namespace {

/// Telemetry watchdog probe (checkpoint-stall rule): seconds since the
/// service's last successful write.
std::int64_t ckpt_age_probe() {
  return CheckpointService::global().seconds_since_last_write();
}

constexpr char kMagic[8] = {'T', 'S', 'B', 'C', 'K', 'P', 'T', '\n'};
constexpr std::size_t kMaxSectionName = 256;

std::string errno_detail() { return std::strerror(errno); }

void le32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void le64(std::uint8_t* out, std::uint64_t v) {
  le32(out, static_cast<std::uint32_t>(v));
  le32(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t rd32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t rd64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(rd32(p)) |
         (static_cast<std::uint64_t>(rd32(p + 4)) << 32);
}

/// Best-effort directory fsync so the rename itself is durable; failure is
/// ignored (some filesystems refuse O_RDONLY dir fsync).
void fsync_dir_of(const std::string& path) {
  std::string dir = ".";
  if (const std::size_t slash = path.rfind('/'); slash != std::string::npos) {
    dir = slash == 0 ? "/" : path.substr(0, slash);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)iofault::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
  static const std::uint32_t* table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// --- SectionWriter ---------------------------------------------------------

SectionWriter::SectionWriter(const std::string& path)
    : path_(path), tmp_(path + ".tmp") {
  fd_ = ::open(tmp_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) fail("open " + tmp_);
  std::uint8_t hdr[sizeof(kMagic) + 4];
  std::memcpy(hdr, kMagic, sizeof(kMagic));
  le32(hdr + sizeof(kMagic), kFormatVersion);
  try {
    raw(hdr, sizeof(hdr));
  } catch (...) {
    // A throwing constructor never runs the destructor: close and unlink
    // here or a full-disk failure leaks the fd and a stray tmp file.
    ::close(fd_);
    ::unlink(tmp_.c_str());
    fd_ = -1;
    throw;
  }
}

SectionWriter::~SectionWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(tmp_.c_str());  // never leave a half-written tmp behind
  }
}

void SectionWriter::fail(const std::string& what) {
  // Write-path failures are resource exhaustion (full disk, dead device),
  // not corruption: surface them on the BudgetExhausted path so the CLI
  // degrades to exit 4, matching the spill writer's contract.
  throw BudgetExhausted("checkpoint write failed: " + what + ": " +
                        errno_detail());
}

void SectionWriter::raw(const void* data, std::size_t len) {
  if (!iofault::write_full(fd_, data, len)) fail("write " + tmp_);
  total_ += len;
}

void SectionWriter::begin(const std::string& name) {
  TSB_REQUIRE(!in_section_ && !finished_, "checkpoint section misnesting");
  TSB_REQUIRE(!name.empty() && name.size() < kMaxSectionName,
              "checkpoint section name");
  std::uint8_t len4[4];
  le32(len4, static_cast<std::uint32_t>(name.size()));
  raw(len4, 4);
  raw(name.data(), name.size());
  sec_header_ = total_;
  std::uint8_t placeholder[12] = {};
  raw(placeholder, sizeof(placeholder));
  sec_len_ = 0;
  sec_crc_ = 0;
  in_section_ = true;
}

void SectionWriter::put_bytes(const void* data, std::size_t len) {
  TSB_REQUIRE(in_section_, "checkpoint put outside a section");
  raw(data, len);
  sec_crc_ = crc32(data, len, sec_crc_);
  sec_len_ += len;
}

void SectionWriter::put_u32(std::uint32_t v) {
  std::uint8_t b[4];
  le32(b, v);
  put_bytes(b, 4);
}

void SectionWriter::put_u64(std::uint64_t v) {
  std::uint8_t b[8];
  le64(b, v);
  put_bytes(b, 8);
}

void SectionWriter::put_str(const std::string& s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  put_bytes(s.data(), s.size());
}

void SectionWriter::end() {
  TSB_REQUIRE(in_section_, "checkpoint end without begin");
  std::uint8_t hdr[12];
  le64(hdr, sec_len_);
  le32(hdr + 8, sec_crc_);
  if (!iofault::pwrite_full(fd_, hdr, sizeof(hdr),
                            static_cast<off_t>(sec_header_))) {
    fail("backpatch " + tmp_);
  }
  in_section_ = false;
}

void SectionWriter::finish() {
  TSB_REQUIRE(!in_section_ && !finished_, "checkpoint finish misnesting");
  // END sentinel: zero-length name, zero-length payload, zero CRC. Its
  // presence is what lets a reader distinguish "complete file" from "file
  // truncated exactly at a section boundary".
  std::uint8_t sentinel[4 + 12] = {};
  raw(sentinel, sizeof(sentinel));
  if (iofault::fsync(fd_) != 0) fail("fsync " + tmp_);
  if (::close(fd_) != 0) {
    // fd_ is dead either way, so the destructor won't run the unlink:
    // remove the tmp file here (preserving the close errno for fail) or
    // a close failure leaves .tmp debris the error contract forbids.
    const int err = errno;
    fd_ = -1;
    ::unlink(tmp_.c_str());
    errno = err;
    fail("close " + tmp_);
  }
  fd_ = -1;
  if (iofault::rename(tmp_.c_str(), path_.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp_.c_str());
    errno = err;
    fail("rename " + tmp_);
  }
  fsync_dir_of(path_);
  finished_ = true;
}

// --- SectionReader ---------------------------------------------------------

SectionReader::SectionReader(const std::string& path) : path_(path) {
  fd_ = ::open(path_.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw CheckpointInvalid("checkpoint state file missing or unreadable: " +
                            path_ + ": " + errno_detail());
  }
  std::uint8_t hdr[sizeof(kMagic) + 4];
  if (!iofault::read_full(fd_, hdr, sizeof(hdr))) fail("truncated header");
  if (std::memcmp(hdr, kMagic, sizeof(kMagic)) != 0) {
    fail("bad magic (not a checkpoint state file)");
  }
  const std::uint32_t version = rd32(hdr + sizeof(kMagic));
  if (version != kFormatVersion) {
    fail("unsupported format version " + std::to_string(version) +
         " (this build reads version " + std::to_string(kFormatVersion) + ")");
  }
}

SectionReader::~SectionReader() {
  if (fd_ >= 0) ::close(fd_);
}

void SectionReader::fail(const std::string& what) {
  throw CheckpointInvalid("checkpoint invalid: " + path_ +
                          (sec_name_.empty() ? "" : " section " + sec_name_) +
                          ": " + what);
}

std::string SectionReader::next() {
  std::uint8_t len4[4];
  if (!iofault::read_full(fd_, len4, 4)) fail("truncated at section header");
  const std::uint32_t name_len = rd32(len4);
  if (name_len >= kMaxSectionName) fail("implausible section name length");
  std::string name(name_len, '\0');
  if (name_len > 0 && !iofault::read_full(fd_, name.data(), name_len)) {
    fail("truncated section name");
  }
  sec_name_ = name_len > 0 ? name : "<end>";
  std::uint8_t hdr[12];
  if (!iofault::read_full(fd_, hdr, sizeof(hdr))) {
    fail("truncated section length/CRC");
  }
  const std::uint64_t len = rd64(hdr);
  const std::uint32_t want_crc = rd32(hdr + 8);
  if (name_len == 0 && len != 0) fail("END sentinel carries a payload");
  payload_.resize(len);
  if (len > 0 && !iofault::read_full(fd_, payload_.data(), len)) {
    fail("truncated section payload (" + std::to_string(len) + " bytes)");
  }
  const std::uint32_t got_crc =
      len > 0 ? crc32(payload_.data(), payload_.size()) : 0;
  if (got_crc != want_crc) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "CRC mismatch (stored %08x, computed %08x)",
                  want_crc, got_crc);
    fail(buf);
  }
  pos_ = 0;
  return name_len > 0 ? name : std::string();
}

void SectionReader::expect(const std::string& name) {
  const std::string got = next();
  if (got != name) {
    fail("expected section '" + name + "', found '" +
         (got.empty() ? "<end>" : got) + "'");
  }
}

void SectionReader::expect_end() {
  const std::string got = next();
  if (!got.empty()) fail("expected END sentinel, found '" + got + "'");
}

const std::uint8_t* SectionReader::get_bytes(std::size_t len) {
  if (remaining() < len) fail("section payload shorter than its schema");
  const std::uint8_t* p = payload_.data() + pos_;
  pos_ += len;
  return p;
}

std::uint8_t SectionReader::get_u8() { return *get_bytes(1); }
std::uint32_t SectionReader::get_u32() { return rd32(get_bytes(4)); }
std::uint64_t SectionReader::get_u64() { return rd64(get_bytes(8)); }

std::string SectionReader::get_str() {
  const std::uint32_t len = get_u32();
  if (remaining() < len) fail("string runs past its section");
  const std::uint8_t* p = get_bytes(len);
  return std::string(reinterpret_cast<const char*>(p), len);
}

void SectionReader::done() {
  if (remaining() != 0) {
    fail("section payload longer than its schema (" +
         std::to_string(remaining()) + " trailing bytes)");
  }
}

// --- Manifest --------------------------------------------------------------

void Manifest::set_u64(const std::string& k, std::uint64_t v) {
  kv[k] = std::to_string(v);
}

const std::string& Manifest::get(const std::string& k) const {
  const auto it = kv.find(k);
  if (it == kv.end()) {
    throw CheckpointInvalid("checkpoint manifest missing key '" + k + "'");
  }
  return it->second;
}

std::uint64_t Manifest::get_u64(const std::string& k) const {
  return std::strtoull(get(k).c_str(), nullptr, 10);
}

void Manifest::save(const std::string& path) const {
  std::string body;
  for (const auto& [k, v] : kv) {
    body += k;
    body += '=';
    body += v;
    body += '\n';
  }
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc=%08x\n",
                crc32(body.data(), body.size()));
  body += crc_line;

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw BudgetExhausted("checkpoint manifest write failed: open " + tmp +
                          ": " + errno_detail());
  }
  const bool ok =
      iofault::write_full(fd, body.data(), body.size()) &&
      iofault::fsync(fd) == 0;
  const int saved_errno = errno;
  ::close(fd);
  if (!ok) {
    ::unlink(tmp.c_str());
    errno = saved_errno;
    throw BudgetExhausted("checkpoint manifest write failed: " + tmp + ": " +
                          errno_detail());
  }
  // The commit point of the whole checkpoint: before this rename the
  // previous manifest (if any) still names the previous complete state
  // file; after it, the new one. Crash anywhere: one of the two, whole.
  if (iofault::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw BudgetExhausted("checkpoint manifest rename failed: " + path + ": " +
                          errno_detail());
  }
  fsync_dir_of(path);
}

Manifest Manifest::load(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw CheckpointInvalid("checkpoint manifest missing or unreadable: " +
                            path + ": " + errno_detail());
  }
  std::string body;
  char buf[4096];
  for (;;) {
    const ssize_t r = iofault::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw CheckpointInvalid("checkpoint manifest read failed: " + path +
                              ": " + errno_detail());
    }
    if (r == 0) break;
    body.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);

  // The trailing line must be the self-CRC; anything else means the write
  // was torn mid-file and the manifest cannot be trusted.
  if (body.empty() || body.back() != '\n') {
    throw CheckpointInvalid("checkpoint manifest torn (no trailing newline): " +
                            path);
  }
  const std::size_t last_nl = body.rfind('\n', body.size() - 2);
  const std::size_t crc_at = last_nl == std::string::npos ? 0 : last_nl + 1;
  const std::string crc_line = body.substr(crc_at, body.size() - crc_at - 1);
  if (crc_line.rfind("crc=", 0) != 0) {
    throw CheckpointInvalid(
        "checkpoint manifest torn (self-CRC line missing): " + path);
  }
  const std::uint32_t want =
      static_cast<std::uint32_t>(std::strtoul(crc_line.c_str() + 4, nullptr, 16));
  const std::uint32_t got = crc32(body.data(), crc_at);
  if (want != got) {
    char detail[64];
    std::snprintf(detail, sizeof(detail), " (stored %08x, computed %08x)",
                  want, got);
    throw CheckpointInvalid("checkpoint manifest checksum mismatch" +
                            std::string(detail) + ": " + path);
  }

  Manifest m;
  std::size_t at = 0;
  while (at < crc_at) {
    const std::size_t nl = body.find('\n', at);
    const std::string line = body.substr(at, nl - at);
    at = nl + 1;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw CheckpointInvalid("checkpoint manifest malformed line '" + line +
                              "': " + path);
    }
    m.kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return m;
}

std::string manifest_path(const std::string& dir) {
  return dir + "/" + kManifestName;
}

std::string state_path(const std::string& dir, std::uint64_t gen) {
  return dir + "/state-" + std::to_string(gen) + ".bin";
}

// --- CheckpointService -----------------------------------------------------

CheckpointService& CheckpointService::global() {
  // Leaked, like the other process-wide observability singletons: signal
  // handlers and teardown paths may touch it at arbitrary lifetimes.
  static CheckpointService* s = new CheckpointService;
  return *s;
}

void CheckpointService::configure(const std::string& dir,
                                  std::uint64_t interval_ms,
                                  std::uint64_t every_work,
                                  const std::string& fingerprint) {
  // Registered outside mu_: the telemetry tick holds its own lock while
  // calling the probe (which takes mu_), so taking the locks in the other
  // order here would be an inversion.
  obs::telemetry::set_ckpt_probe(dir.empty() ? nullptr : &ckpt_age_probe,
                                 dir.empty() ? 0 : interval_ms);
  std::lock_guard<std::mutex> lock(mu_);
  dir_ = dir;
  interval_ms_ = interval_ms;
  every_work_ = every_work;
  fingerprint_ = fingerprint;
  work_acc_ = 0;
  last_write_ = std::chrono::steady_clock::now();
  ever_wrote_ = false;
  generation_ = 0;
  if (!dir_.empty()) {
    ::mkdir(dir_.c_str(), 0755);  // EEXIST is fine
    // Continue the generation sequence of an existing (valid) checkpoint
    // so resume's next write never clobbers the state file the manifest
    // still commits to. A corrupt manifest just restarts at generation 1 —
    // resume validation (which refuses corrupt manifests loudly) has
    // already run by the time anything depends on the old state.
    try {
      generation_ = Manifest::load(manifest_path(dir_)).get_u64("generation");
    } catch (const CheckpointInvalid&) {
    }
  }
  active_.store(!dir_.empty(), std::memory_order_relaxed);
  engaged_.store(!dir_.empty() ||
                     stop_requested_.load(std::memory_order_relaxed) ||
                     stop_after_.load(std::memory_order_relaxed) != 0,
                 std::memory_order_relaxed);
}

void CheckpointService::reset() {
  obs::telemetry::set_ckpt_probe(nullptr, 0);
  std::lock_guard<std::mutex> lock(mu_);
  dir_.clear();
  fingerprint_.clear();
  interval_ms_ = 0;
  every_work_ = 0;
  writer_ = nullptr;
  manifest_extra_ = nullptr;
  generation_ = 0;
  work_acc_ = 0;
  ever_wrote_ = false;
  writes_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
  write_ms_.store(0, std::memory_order_relaxed);
  active_.store(false, std::memory_order_relaxed);
  in_write_.store(false, std::memory_order_relaxed);
  stop_requested_.store(false, std::memory_order_relaxed);
  stop_after_.store(0, std::memory_order_relaxed);
  engaged_.store(false, std::memory_order_relaxed);
}

void CheckpointService::set_writer(Serializer s,
                                   std::function<void(Manifest&)> extra) {
  std::lock_guard<std::mutex> lock(mu_);
  writer_ = std::move(s);
  manifest_extra_ = std::move(extra);
}

bool CheckpointService::due() const {
  if (stop_requested_.load(std::memory_order_relaxed)) return true;
  if (!active_.load(std::memory_order_relaxed)) return false;
  if (in_write_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (!writer_) return false;
  if (every_work_ != 0 && work_acc_ >= every_work_) return true;
  if (interval_ms_ != 0) {
    const auto now = std::chrono::steady_clock::now();
    return now - last_write_ >= std::chrono::milliseconds(interval_ms_);
  }
  return false;
}

void CheckpointService::stop_after_polls(std::uint64_t n) {
  stop_after_.store(n, std::memory_order_relaxed);
  if (n != 0) engaged_.store(true, std::memory_order_relaxed);
}

void CheckpointService::poll_slow(std::uint64_t work) {
  // Checked first: during a write the serializer runs with mu_ released,
  // so a serializer that re-enters a polling loop lands here and must
  // bail out — without touching the lock, the test hook, or the stop
  // unwind — instead of recursing into write_now.
  if (in_write_.load(std::memory_order_relaxed)) return;

  // Deterministic-interrupt test hook: the n-th poll becomes a stop
  // request, exactly as if SIGTERM had landed at this quiescent point.
  std::uint64_t hook = stop_after_.load(std::memory_order_relaxed);
  while (hook != 0) {
    if (stop_after_.compare_exchange_weak(hook, hook - 1,
                                          std::memory_order_relaxed)) {
      if (hook == 1) request_stop();
      break;
    }
  }

  bool due_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    work_acc_ += work;
    if (active_.load(std::memory_order_relaxed) && writer_ != nullptr &&
        !stop_requested_.load(std::memory_order_relaxed)) {
      if (every_work_ != 0 && work_acc_ >= every_work_) {
        due_now = true;
      } else if (interval_ms_ != 0 &&
                 std::chrono::steady_clock::now() - last_write_ >=
                     std::chrono::milliseconds(interval_ms_)) {
        due_now = true;
      }
    }
  }

  if (stop_requested_.load(std::memory_order_relaxed)) {
    write_now("stop");
    throw CheckpointStop(
        active_.load(std::memory_order_relaxed)
            ? "stop requested: state checkpointed at a quiescent point"
            : "stop requested: stopping at a quiescent point (no checkpoint "
              "directory configured)");
  }
  if (due_now) write_now("interval");
}

void CheckpointService::write_now(const char* why) {
  // Copy everything the write needs under the lock, then run the
  // serializer with mu_ RELEASED: a serializer that calls poll(),
  // add_work(), or due() on the same thread must hit the in_write_
  // reentrancy guard, not deadlock on the non-recursive mutex.
  Serializer writer;
  std::function<void(Manifest&)> extra;
  std::string dir;
  std::string fingerprint;
  std::uint64_t gen = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!active_.load(std::memory_order_relaxed) || !writer_ ||
        in_write_.load(std::memory_order_relaxed)) {
      return;
    }
    in_write_.store(true, std::memory_order_relaxed);
    writer = writer_;
    extra = manifest_extra_;
    dir = dir_;
    fingerprint = fingerprint_;
    gen = generation_ + 1;
  }
  struct Guard {
    std::atomic<bool>* flag;
    ~Guard() { flag->store(false, std::memory_order_relaxed); }
  } guard{&in_write_};

  const auto t0 = std::chrono::steady_clock::now();
  const std::string spath = state_path(dir, gen);
  std::uint64_t state_bytes = 0;
  {
    SectionWriter w(spath);
    writer(w);
    w.finish();
    state_bytes = w.bytes_written();
  }
  Manifest m;
  m.set_u64("format", kFormatVersion);
  m.set_u64("generation", gen);
  m.set("state", "state-" + std::to_string(gen) + ".bin");
  m.set("fingerprint", fingerprint);
  m.set("why", why);
  m.set_u64("checkpoints", writes_.load(std::memory_order_relaxed) + 1);
  if (extra) extra(m);
  m.save(manifest_path(dir));

  std::uint64_t ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The new manifest is committed; the previous generation's state file
    // is now garbage and can go. (Deleting only after the commit point is
    // what makes a crash during THIS write recoverable from the previous
    // one.)
    if (generation_ != 0 && generation_ != gen) {
      ::unlink(state_path(dir, generation_).c_str());
    }
    generation_ = gen;
    work_acc_ = 0;
    last_write_ = std::chrono::steady_clock::now();
    ever_wrote_ = true;

    ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(last_write_ - t0)
            .count());
    writes_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(state_bytes, std::memory_order_relaxed);
    write_ms_.fetch_add(ms, std::memory_order_relaxed);
  }

  obs::MemLedger::global().set(obs::MemAccount::kCkptState, state_bytes);
  obs::flight::record(obs::flight::Ev::kCkpt,
                      static_cast<std::int64_t>(state_bytes),
                      static_cast<std::int64_t>(ms));
  if (obs::stats_enabled()) {
    obs::JsonObj rec;
    rec.str("type", "ckpt.write")
        .str("why", why)
        .num("generation", static_cast<std::int64_t>(gen))
        .num("bytes", static_cast<std::int64_t>(state_bytes))
        .num("ms", static_cast<std::int64_t>(ms))
        .num("total_writes",
             static_cast<std::int64_t>(writes_.load(std::memory_order_relaxed)))
        .num("total_ms", static_cast<std::int64_t>(
                             write_ms_.load(std::memory_order_relaxed)));
    obs::stats_sink().write(rec.render());
  }
}

std::int64_t CheckpointService::seconds_since_last_write() const {
  if (!active_.load(std::memory_order_relaxed)) return -1;
  std::lock_guard<std::mutex> lock(mu_);
  // Before the first write, age is measured from configure(): a stalled
  // first checkpoint is exactly as alarming as a stalled tenth.
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now() - last_write_)
      .count();
}

std::string CheckpointService::dir() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dir_;
}

}  // namespace tsb::util::ckpt
