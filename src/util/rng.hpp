#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace tsb::util {

/// Deterministic, seedable 64-bit PRNG (xoshiro256**).
///
/// All randomness in the repository flows through this generator so that
/// every experiment, test, and adversary run is reproducible from a seed.
/// We deliberately do not use std::mt19937_64: its state is large and its
/// streams are awkward to split; xoshiro256** is small, fast, and passes
/// BigCrush.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialise the state from a single seed via splitmix64, which
  /// guarantees the state is never all-zero.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound). bound must be > 0. Uses Lemire's
  /// nearly-divisionless rejection method, so the result is unbiased.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Fair coin.
  bool coin() { return (next() & 1ull) != 0; }

  /// Bernoulli with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Uniform double in [0,1).
  double uniform01();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A derived generator whose stream is independent of this one for all
  /// practical purposes; used to hand each simulated process its own coin
  /// stream from one experiment seed.
  Rng split(std::uint64_t stream_id);

  // UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next(); }

 private:
  std::uint64_t s_[4]{};
};

/// splitmix64 step; exposed because protocol state hashing reuses it.
std::uint64_t splitmix64(std::uint64_t& state);

/// One-shot mixing function suitable for hash combining.
std::uint64_t mix64(std::uint64_t x);

/// Hash-combine in the boost style but with a 64-bit mixer.
inline std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return seed ^ (mix64(value) + 0x9e3779b97f4a7c15ull + (seed << 6) +
                 (seed >> 2));
}

}  // namespace tsb::util
