#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace tsb::util {

/// A set of process ids in [0, 64), stored as one machine word.
///
/// The covering/valency machinery manipulates sets of processes constantly
/// (P, Q = P - R, R u {q}, ...); a value-type bitset keeps that free of
/// allocation and makes set identities in the proofs read literally in code.
class ProcSet {
 public:
  constexpr ProcSet() = default;
  constexpr explicit ProcSet(std::uint64_t bits) : bits_(bits) {}

  /// The set {0, 1, ..., n-1}.
  static constexpr ProcSet first_n(int n) {
    return ProcSet(n >= 64 ? ~0ull : ((1ull << n) - 1ull));
  }
  static constexpr ProcSet single(int p) { return ProcSet(1ull << p); }
  static constexpr ProcSet empty() { return ProcSet(); }

  constexpr bool contains(int p) const { return (bits_ >> p) & 1ull; }
  constexpr bool is_empty() const { return bits_ == 0; }
  constexpr int size() const { return __builtin_popcountll(bits_); }
  constexpr std::uint64_t bits() const { return bits_; }

  constexpr ProcSet with(int p) const { return ProcSet(bits_ | (1ull << p)); }
  constexpr ProcSet without(int p) const {
    return ProcSet(bits_ & ~(1ull << p));
  }

  constexpr ProcSet operator|(ProcSet o) const {
    return ProcSet(bits_ | o.bits_);
  }
  constexpr ProcSet operator&(ProcSet o) const {
    return ProcSet(bits_ & o.bits_);
  }
  constexpr ProcSet operator-(ProcSet o) const {
    return ProcSet(bits_ & ~o.bits_);
  }
  constexpr bool operator==(const ProcSet&) const = default;

  constexpr bool subset_of(ProcSet o) const {
    return (bits_ & ~o.bits_) == 0;
  }

  /// Smallest member; set must be non-empty.
  int min() const {
    assert(bits_ != 0);
    return __builtin_ctzll(bits_);
  }

  std::vector<int> to_vector() const {
    std::vector<int> out;
    out.reserve(static_cast<std::size_t>(size()));
    for (std::uint64_t b = bits_; b != 0; b &= b - 1) {
      out.push_back(__builtin_ctzll(b));
    }
    return out;
  }

  std::string to_string() const {
    std::string s = "{";
    bool first = true;
    for (int p : to_vector()) {
      if (!first) s += ",";
      s += "p" + std::to_string(p);
      first = false;
    }
    return s + "}";
  }

  /// Iteration support: for (int p : set.to_vector()) is the common idiom;
  /// for hot loops use this manual form to avoid the vector.
  template <typename F>
  void for_each(F&& f) const {
    for (std::uint64_t b = bits_; b != 0; b &= b - 1) {
      f(__builtin_ctzll(b));
    }
  }

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace tsb::util
