#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace tsb::util {

/// Maps arbitrary byte strings to dense int64 ids and back.
///
/// Simulator protocol states must be single int64 words so configurations
/// stay hashable value types. Protocols whose local state does not pack into
/// 64 bits (e.g. round-based protocols carrying a view) serialize the state
/// to bytes and intern it here; the id becomes the state word.
///
/// Ids are assigned consecutively from 0, so a protocol can also use the
/// interner as a visited-state census.
class StateInterner {
 public:
  /// Intern a byte string; returns a stable id.
  std::int64_t intern(const std::string& bytes);

  /// Reverse lookup. id must have been produced by intern().
  const std::string& lookup(std::int64_t id) const;

  /// Whether the byte string is already interned (does not insert).
  bool contains(const std::string& bytes) const;

  std::size_t size() const { return table_.size(); }

 private:
  std::unordered_map<std::string, std::int64_t> ids_;
  std::vector<std::string> table_;
};

/// Tiny append-only byte serializer used with StateInterner.
class ByteWriter {
 public:
  void put_i64(std::int64_t v);
  void put_i32(std::int32_t v);
  void put_u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  const std::string& str() const { return bytes_; }

 private:
  std::string bytes_;
};

/// Cursor-based reader matching ByteWriter.
class ByteReader {
 public:
  explicit ByteReader(const std::string& bytes) : bytes_(bytes) {}
  std::int64_t get_i64();
  std::int32_t get_i32();
  std::uint8_t get_u8();
  bool done() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace tsb::util
