#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsb::util {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  LinearFit fit;
  const std::size_t n = xs.size();
  if (n < 2) return fit;

  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);

  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double log2_factorial(int n) {
  double sum = 0.0;
  for (int i = 2; i <= n; ++i) sum += std::log2(static_cast<double>(i));
  return sum;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace tsb::util
