#pragma once

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "util/require.hpp"

namespace tsb::util::spill {

/// Records per delta group in a spilled block: the first is stored raw (a
/// random-access checkpoint), the rest as deltas against their predecessor.
/// 64 keeps worst-case decode at 63 delta applications while amortizing the
/// raw checkpoint to under an eighth of the group.
inline constexpr std::size_t kGroupRecords = 64;

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t u) {
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

inline std::uint64_t get_varint(const std::uint8_t*& p) {
  std::uint64_t v = 0;
  int shift = 0;
  while (*p & 0x80) {
    v |= static_cast<std::uint64_t>(*p++ & 0x7f) << shift;
    shift += 7;
  }
  v |= static_cast<std::uint64_t>(*p++) << shift;
  return v;
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::size_t page_size();

inline std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

/// Delta/varint/zigzag block codec shared by ConfigArena (Value words) and
/// the reach graph's edge stores (u8 / u32 / u64 words). A block holds
/// `nrecs` fixed-stride records in groups of kGroupRecords: per group the
/// first record is raw, the rest are (changed-word count, then per change a
/// varint word index and a zigzag-varint value delta) against their
/// predecessor. A per-group u32 offset table up front gives random access
/// at group granularity. Deltas are computed mod 2^64, so the encoding is
/// bit-exact for any unsigned or two's-complement word width. `nrecs` must
/// be a multiple of kGroupRecords and `stride` must fit the one-byte
/// changed-word count.
template <class W>
void encode_block(const W* recs, std::size_t nrecs, std::size_t stride,
                  std::vector<std::uint8_t>& block) {
  const std::size_t ngroups = nrecs / kGroupRecords;
  std::vector<std::uint8_t> payload;
  payload.reserve(nrecs * 2);
  std::vector<std::uint32_t> offsets(ngroups);
  for (std::size_t g = 0; g < ngroups; ++g) {
    offsets[g] = static_cast<std::uint32_t>(payload.size());
    const W* prev = nullptr;
    for (std::size_t c = 0; c < kGroupRecords; ++c) {
      const W* cur = recs + (g * kGroupRecords + c) * stride;
      if (prev == nullptr) {
        const std::size_t at = payload.size();
        payload.resize(at + stride * sizeof(W));
        std::memcpy(payload.data() + at, cur, stride * sizeof(W));
      } else {
        std::uint8_t nchanged = 0;
        for (std::size_t i = 0; i < stride; ++i) nchanged += cur[i] != prev[i];
        payload.push_back(nchanged);
        for (std::size_t i = 0; i < stride; ++i) {
          if (cur[i] == prev[i]) continue;
          put_varint(payload, i);
          put_varint(payload,
                     zigzag(static_cast<std::int64_t>(
                         static_cast<std::uint64_t>(cur[i]) -
                         static_cast<std::uint64_t>(prev[i]))));
        }
      }
      prev = cur;
    }
  }
  block.clear();
  block.reserve(4 + 4 * ngroups + payload.size());
  put_u32(block, static_cast<std::uint32_t>(ngroups));
  for (std::uint32_t off : offsets) put_u32(block, off);
  block.insert(block.end(), payload.begin(), payload.end());
}

/// Decode one record (index `local` within the block) into `out`
/// (`stride` words).
template <class W>
void decode_record(const std::uint8_t* block, std::size_t local,
                   std::size_t stride, W* out) {
  const std::size_t ngroups = get_u32(block);
  const std::size_t g = local / kGroupRecords;
  TSB_REQUIRE(g < ngroups, "spill codec: record index out of block range");
  const std::uint8_t* p = block + 4 + 4 * ngroups + get_u32(block + 4 + 4 * g);
  std::memcpy(out, p, stride * sizeof(W));
  p += stride * sizeof(W);
  const std::size_t upto = local % kGroupRecords;
  for (std::size_t c = 1; c <= upto; ++c) {
    const std::uint8_t nchanged = *p++;
    for (std::uint8_t j = 0; j < nchanged; ++j) {
      const std::size_t slot = get_varint(p);
      const std::uint64_t delta =
          static_cast<std::uint64_t>(unzigzag(get_varint(p)));
      out[slot] =
          static_cast<W>(static_cast<std::uint64_t>(out[slot]) + delta);
    }
  }
}

/// Decode every record of the block into `out` (`nrecs * stride` words):
/// the fault-in path when a spilled segment must become writable again.
template <class W>
void decode_all(const std::uint8_t* block, std::size_t nrecs,
                std::size_t stride, W* out) {
  const std::size_t ngroups = get_u32(block);
  TSB_REQUIRE(ngroups == nrecs / kGroupRecords,
              "spill codec: block group count mismatch");
  for (std::size_t g = 0; g < ngroups; ++g) {
    const std::uint8_t* p =
        block + 4 + 4 * ngroups + get_u32(block + 4 + 4 * g);
    W* rec = out + g * kGroupRecords * stride;
    std::memcpy(rec, p, stride * sizeof(W));
    p += stride * sizeof(W);
    for (std::size_t c = 1; c < kGroupRecords; ++c) {
      W* cur = rec + c * stride;
      std::memcpy(cur, cur - stride, stride * sizeof(W));
      const std::uint8_t nchanged = *p++;
      for (std::uint8_t j = 0; j < nchanged; ++j) {
        const std::size_t slot = get_varint(p);
        const std::uint64_t delta =
            static_cast<std::uint64_t>(unzigzag(get_varint(p)));
        cur[slot] =
            static_cast<W>(static_cast<std::uint64_t>(cur[slot]) + delta);
      }
    }
  }
}

/// The unlinked backing file behind every spill consumer. The file is
/// unlinked the moment it exists: the fd keeps the space alive, the name
/// never leaks past a crash, and the memory ledger (not the filesystem) is
/// the interface for "how much is spilled". Blocks append at page-aligned
/// offsets so they can be mapped read-only directly; release() unmaps and
/// (best effort) punches a hole so a re-spilled segment's superseded block
/// returns its disk space. Writes go through the iofault wrapper, so the
/// CI fault matrix can inject ENOSPC/short-write/EINTR on any spill write.
class BackingFile {
 public:
  struct Block {
    std::uint8_t* map = nullptr;  ///< mmap'd compressed block (read-only)
    std::size_t map_len = 0;      ///< mapped length (page-aligned)
    std::size_t skip = 0;         ///< offset of the block within the map
    std::size_t bytes = 0;        ///< compressed payload bytes
    std::uint64_t file_off = 0;   ///< block start within the backing file
    bool valid() const { return map != nullptr; }
  };

  BackingFile() = default;
  ~BackingFile() { close(); }
  BackingFile(const BackingFile&) = delete;
  BackingFile& operator=(const BackingFile&) = delete;

  /// Create the unlinked O_EXCL backing file under `dir`. Returns false
  /// (and leaves the object invalid) if the directory is unusable.
  bool open(const std::string& dir);
  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Append `len` bytes at the next page-aligned offset and map them
  /// read-only. Returns false with errno set on write/mmap failure; the
  /// caller owns the consequence (the spill consumers treat it as a budget
  /// failure, not a shrug).
  bool append(const std::uint8_t* data, std::size_t len, Block& out);

  /// Unmap a block and, best effort, punch a hole over its file range so a
  /// superseded block's disk space returns to the filesystem.
  void release(Block& b);

  /// Back to an empty file (all blocks must be released first).
  void truncate();
  void close();

  std::uint64_t end_offset() const { return end_; }

 private:
  int fd_ = -1;
  std::uint64_t end_ = 0;
};

/// A segmented, spillable array of fixed-stride records: the reach graph's
/// per-node edge data (successor ids, per-edge renamings, decide flags)
/// each live in one of these. Records are `stride` words of W, stored in
/// power-of-two segments allocated flat; cold full segments compress into
/// the BackingFile at quiescent points and decode on demand.
///
/// Unlike ConfigArena's immutable configuration words, edge records MUTATE
/// after they are first written (a later query with a different ProcSet
/// expands a previously unexpanded edge at an old node), so write_ptr() on
/// a spilled record faults the whole segment back to resident — decoding
/// it, releasing the stale disk block (hole-punched), and letting the next
/// quiescent spill re-encode it. read() on a spilled record decodes into a
/// thread-local buffer and never faults anything in.
///
/// Thread safety: none — callers are externally synchronized (the reach
/// graph touches its edge stores only from the query thread; its worker
/// pool reads the ConfigArena, never these).
template <class W>
class SpillStore {
 public:
  /// `name` labels ledger attributions and failure messages; `fill` is the
  /// value new records are initialized to (kUnexpanded for successor ids).
  void init(std::string name, std::size_t stride, W fill) {
    TSB_REQUIRE(segs_.empty(), "SpillStore::init on a non-empty store");
    TSB_REQUIRE(stride >= 1 && stride <= 255,
                "spill delta encoding stores word counts in one byte");
    name_ = std::move(name);
    stride_ = stride;
    fill_ = fill;
    // Segments target ~4 MB each, like the arena: big enough to amortize
    // the spill syscalls, small enough to be a meaningful spill quantum.
    seg_recs_ = kGroupRecords;
    while (seg_recs_ * stride_ * sizeof(W) < (4u << 20) &&
           seg_recs_ < (1u << 22)) {
      seg_recs_ <<= 1;
    }
    recompute_geometry();
  }

  /// Enable spilling to an unlinked backing file under `dir`.
  /// `seg_recs_hint` (0 = keep the ~4 MB default) shrinks segments so tiny
  /// test runs still cross segment boundaries. Must be called while the
  /// store is empty. Returns false if the directory is unusable.
  bool set_spill(const std::string& dir, std::size_t seg_recs_hint) {
    TSB_REQUIRE(size_ == 0, "SpillStore::set_spill on a non-empty store");
    if (seg_recs_hint != 0) {
      std::size_t sr = kGroupRecords;
      while (sr < seg_recs_hint) sr <<= 1;
      seg_recs_ = sr;
      recompute_geometry();
    }
    return file_.open(dir);
  }

  bool spill_enabled() const { return file_.valid(); }
  std::size_t size() const { return size_; }
  std::size_t stride() const { return stride_; }
  std::size_t segment_records() const { return seg_recs_; }
  const std::string& name() const { return name_; }

  /// Grow to at least `nrecs` records; new records read as `fill`.
  void ensure(std::size_t nrecs) {
    if (nrecs <= cap_) {
      if (nrecs > size_) size_ = nrecs;
      return;
    }
    while (cap_ < nrecs) {
      segs_.emplace_back();
      alloc_seg(segs_.back());
      cap_ += seg_recs_;
    }
    size_ = nrecs;
  }

  /// Read access to one record. Resident segments return a direct pointer;
  /// spilled segments decode into a thread-local buffer valid until this
  /// thread's next read() of a spilled record in any SpillStore<W>.
  const W* read(std::size_t idx) const {
    const Seg& s = segs_[idx >> shift_];
    if (s.data != nullptr) return s.data.get() + (idx & mask_) * stride_;
    return decode_tls(s, idx & mask_);
  }

  /// Writable pointer to a record. Faults the segment back to resident if
  /// it was spilled (the record is about to change, so the on-disk copy is
  /// stale either way).
  W* write_ptr(std::size_t idx) {
    Seg& s = segs_[idx >> shift_];
    if (s.data == nullptr) fault_in(s);
    return s.data.get() + (idx & mask_) * stride_;
  }

  /// True when resident bytes exceed `resident_target` and a cold full
  /// segment exists to release. Cheap.
  bool spill_needed(std::size_t resident_target) const {
    if (!file_.valid() || resident_bytes_ <= resident_target) return false;
    const std::size_t full = size_ >> shift_;
    for (std::size_t i = 0; i < full; ++i) {
      if (segs_[i].data != nullptr) return true;
    }
    return false;
  }

  /// Spill cold full segments (lowest record ids first) until resident
  /// bytes drop to `resident_target` or only pinned/partial/spilled
  /// segments remain. Records >= pin_floor never spill (callers pin the
  /// hot frontier). Caller guarantees quiescence. Returns bytes released.
  /// A write/mmap failure throws util::BudgetExhausted after recording a
  /// flight event — the operator's memory plan can no longer be kept, and
  /// pretending otherwise would trade a clean exit 4 for an OOM-kill later.
  std::size_t maybe_spill(std::size_t resident_target, std::size_t pin_floor);

  std::size_t resident_bytes() const {
    // The TLS decode buffer is shared across stores and bounded by one
    // record; charge the segment arrays only.
    return resident_bytes_;
  }
  std::size_t spilled_bytes() const { return spilled_bytes_; }
  std::size_t mapped_bytes() const { return mapped_bytes_; }
  std::size_t spilled_segments() const { return spilled_segments_; }
  std::size_t faulted_in() const { return faulted_in_; }
  std::size_t spill_failures() const { return spill_failures_; }

 private:
  struct Seg {
    std::unique_ptr<W[]> data;  ///< flat resident array (null once spilled)
    BackingFile::Block blk;     ///< compressed block once spilled
  };

  void recompute_geometry() {
    mask_ = seg_recs_ - 1;
    shift_ = 0;
    for (std::size_t s = seg_recs_; s > 1; s >>= 1) ++shift_;
  }

  void alloc_seg(Seg& s) {
    const std::size_t n = seg_recs_ * stride_;
    s.data.reset(new W[n]);
    for (std::size_t i = 0; i < n; ++i) s.data[i] = fill_;
    resident_bytes_ += n * sizeof(W);
  }

  void fault_in(Seg& s) {
    const std::size_t n = seg_recs_ * stride_;
    std::unique_ptr<W[]> fresh(new W[n]);
    decode_all<W>(s.blk.map + s.blk.skip, seg_recs_, stride_, fresh.get());
    spilled_bytes_ -= s.blk.bytes;
    mapped_bytes_ -= s.blk.map_len;
    file_.release(s.blk);
    s.data = std::move(fresh);
    resident_bytes_ += n * sizeof(W);
    ++faulted_in_;
  }

  const W* decode_tls(const Seg& s, std::size_t local) const {
    static thread_local std::vector<W> buf;
    if (buf.size() < stride_) buf.resize(stride_);
    decode_record<W>(s.blk.map + s.blk.skip, local, stride_, buf.data());
    return buf.data();
  }

  std::string name_;
  std::size_t stride_ = 0;
  W fill_{};
  std::size_t seg_recs_ = 0;
  std::size_t mask_ = 0;
  int shift_ = 0;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
  std::vector<Seg> segs_;
  BackingFile file_;
  std::size_t resident_bytes_ = 0;
  std::size_t spilled_bytes_ = 0;
  std::size_t mapped_bytes_ = 0;
  std::size_t spilled_segments_ = 0;
  std::size_t faulted_in_ = 0;
  std::size_t spill_failures_ = 0;
};

/// Out-of-line spill failure path shared by every SpillStore instantiation.
[[noreturn]] void throw_spill_failure(const std::string& name, int err,
                                      std::size_t resident_bytes,
                                      std::size_t resident_target);

template <class W>
std::size_t SpillStore<W>::maybe_spill(std::size_t resident_target,
                                       std::size_t pin_floor) {
  if (!file_.valid()) return 0;
  const std::size_t seg_bytes = seg_recs_ * stride_ * sizeof(W);
  // Only FULL segments spill (the partial tail is still being appended
  // to), and never one at or above the pin floor.
  const std::size_t full = size_ >> shift_;
  const std::size_t pinned = pin_floor >> shift_;
  const std::size_t limit = full < pinned ? full : pinned;
  std::size_t released = 0;
  std::vector<std::uint8_t> block;
  for (std::size_t i = 0; i < limit; ++i) {
    if (resident_bytes_ <= resident_target) break;
    Seg& s = segs_[i];
    if (s.data == nullptr) continue;
    encode_block<W>(s.data.get(), seg_recs_, stride_, block);
    BackingFile::Block blk;
    if (!file_.append(block.data(), block.size(), blk)) {
      ++spill_failures_;
      const int err = errno;
      file_.close();
      throw_spill_failure(name_, err, resident_bytes_, resident_target);
    }
    s.blk = blk;
    s.data.reset();
    resident_bytes_ -= seg_bytes;
    spilled_bytes_ += blk.bytes;
    mapped_bytes_ += blk.map_len;
    ++spilled_segments_;
    released += seg_bytes;
  }
  return released;
}

}  // namespace tsb::util::spill
