#include "util/table.hpp"

#include <cassert>
#include <cstdio>
#include <ostream>

namespace tsb::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

Table& Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::to_cell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

std::string Table::to_text(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) {
        line.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };

  std::string out;
  if (!title.empty()) out += "== " + title + " ==\n";
  out += render_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string q = "\"";
    for (char ch : cell) {
      if (ch == '"') q += '"';
      q += ch;
    }
    return q + "\"";
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += quote(headers_[c]);
    if (c + 1 < headers_.size()) out += ',';
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += quote(row[c]);
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  }
  return out;
}

void Table::print(std::ostream& os, const std::string& title) const {
  os << to_text(title) << '\n';
}

}  // namespace tsb::util
