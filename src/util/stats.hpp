#pragma once

#include <cstdint>
#include <vector>

namespace tsb::util {

/// Streaming summary statistics (Welford) for benchmark measurements.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double total() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Ordinary least squares fit of y = a + b*x. Used by the mutex-cost
/// experiment to estimate growth exponents (fit log-cost against log-n and
/// against log(n log n)).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};

LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys);

/// log2(n!) computed in double precision; the Fan-Lynch information bound.
double log2_factorial(int n);

/// Exact percentile (by sorting a copy); p in [0,100].
double percentile(std::vector<double> values, double p);

}  // namespace tsb::util
