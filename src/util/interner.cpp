#include "util/interner.hpp"

#include <cassert>
#include <cstring>

namespace tsb::util {

std::int64_t StateInterner::intern(const std::string& bytes) {
  auto [it, inserted] =
      ids_.try_emplace(bytes, static_cast<std::int64_t>(table_.size()));
  if (inserted) table_.push_back(bytes);
  return it->second;
}

const std::string& StateInterner::lookup(std::int64_t id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < table_.size());
  return table_[static_cast<std::size_t>(id)];
}

bool StateInterner::contains(const std::string& bytes) const {
  return ids_.count(bytes) != 0;
}

void ByteWriter::put_i64(std::int64_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  bytes_.append(buf, sizeof v);
}

void ByteWriter::put_i32(std::int32_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  bytes_.append(buf, sizeof v);
}

std::int64_t ByteReader::get_i64() {
  assert(pos_ + sizeof(std::int64_t) <= bytes_.size());
  std::int64_t v;
  std::memcpy(&v, bytes_.data() + pos_, sizeof v);
  pos_ += sizeof v;
  return v;
}

std::int32_t ByteReader::get_i32() {
  assert(pos_ + sizeof(std::int32_t) <= bytes_.size());
  std::int32_t v;
  std::memcpy(&v, bytes_.data() + pos_, sizeof v);
  pos_ += sizeof v;
  return v;
}

std::uint8_t ByteReader::get_u8() {
  assert(pos_ < bytes_.size());
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

}  // namespace tsb::util
