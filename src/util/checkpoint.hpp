#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace tsb::util {

/// Clean "the run stopped at a quiescent point after persisting a
/// checkpoint" signal — the graceful-shutdown sibling of BudgetExhausted.
/// Nothing is wrong; callers surface it with its own exit code (5 at the
/// CLI) and the campaign continues later via `tsb resume`.
class CheckpointStop : public std::runtime_error {
 public:
  explicit CheckpointStop(const std::string& what)
      : std::runtime_error(what) {}
};

/// A checkpoint failed validation: bad magic, unsupported format version,
/// CRC mismatch, truncated section, torn manifest, or a flag-fingerprint
/// disagreement with the resuming run. Refusal is the only sound response
/// — resuming from corrupt state could silently fabricate a verdict — so
/// this is distinct from both RequirementFailed (protocol is wrong) and
/// BudgetExhausted (resources ran out), and maps to its own exit code (6).
class CheckpointInvalid : public std::runtime_error {
 public:
  explicit CheckpointInvalid(const std::string& what)
      : std::runtime_error(what) {}
};

namespace ckpt {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `len` bytes, continuing
/// from `seed` (pass a previous return value to extend). crc32("123456789")
/// == 0xCBF43926 — the standard check value the unit tests pin.
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

/// Bump when the state-file layout changes incompatibly; readers refuse
/// other versions rather than guessing.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Streaming writer for the versioned, per-section-CRC checkpoint state
/// file. Layout:
///
///   "TSBCKPT\n" magic, u32 format version,
///   then per section: u32 name length, name bytes,
///                     u64 payload length, u32 payload CRC-32, payload,
///   terminated by a zero-length-name END sentinel section whose payload
///   is empty — so a file truncated at any byte, including exactly at a
///   section boundary, is detectable without trusting file size.
///
/// Sections stream: begin() writes the header with placeholder length/CRC,
/// the put_* calls append payload bytes while folding them into a running
/// CRC, end() backpatches the real length and CRC via pwrite. The whole
/// file is written to `<path>.tmp`, fsync'd, and atomically renamed into
/// place by finish() — a crash mid-write never leaves a half file under
/// the final name. All I/O goes through util::iofault wrappers; a write
/// failure (full disk, dead device) throws BudgetExhausted with the errno
/// detail, degrading to the CLI's exit 4 like the spill writer.
class SectionWriter {
 public:
  explicit SectionWriter(const std::string& path);
  ~SectionWriter();
  SectionWriter(const SectionWriter&) = delete;
  SectionWriter& operator=(const SectionWriter&) = delete;

  void begin(const std::string& name);
  void put_bytes(const void* data, std::size_t len);
  void put_u8(std::uint8_t v) { put_bytes(&v, 1); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_str(const std::string& s);
  void end();

  /// Write the END sentinel, fsync, close, and atomically rename the tmp
  /// file to the final path. No further calls allowed.
  void finish();

  std::uint64_t bytes_written() const { return total_; }

 private:
  void raw(const void* data, std::size_t len);
  [[noreturn]] void fail(const std::string& what);

  std::string path_;
  std::string tmp_;
  int fd_ = -1;
  bool finished_ = false;
  bool in_section_ = false;
  std::uint64_t total_ = 0;       ///< file offset == bytes written
  std::uint64_t sec_header_ = 0;  ///< offset of current section's len field
  std::uint64_t sec_len_ = 0;
  std::uint32_t sec_crc_ = 0;
};

/// Sequential reader for SectionWriter files. Sections are read strictly
/// in the order they were written (the format is a stream, not an index):
/// expect(name) loads the next section, validates its CRC, and throws
/// CheckpointInvalid on any mismatch — wrong name, wrong magic/version,
/// truncation, or checksum failure. Payload parsing goes through the
/// bounds-checked get_* cursor, which also throws instead of reading past
/// the section.
class SectionReader {
 public:
  explicit SectionReader(const std::string& path);
  ~SectionReader();
  SectionReader(const SectionReader&) = delete;
  SectionReader& operator=(const SectionReader&) = delete;

  /// Load the next section, requiring its name to be `name`.
  void expect(const std::string& name);
  /// Load the next section whatever its name; "" for the END sentinel.
  std::string next();
  /// Require the next section to be the END sentinel.
  void expect_end();

  std::size_t remaining() const { return payload_.size() - pos_; }
  const std::uint8_t* get_bytes(std::size_t len);
  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  std::string get_str();
  /// The whole current payload must have been consumed; called by the
  /// engine restore paths so a format drift fails loudly, not silently.
  void done();

 private:
  [[noreturn]] void fail(const std::string& what);

  std::string path_;
  int fd_ = -1;
  std::string sec_name_;
  std::vector<std::uint8_t> payload_;
  std::size_t pos_ = 0;
};

/// The checkpoint directory's commit record: a short text file of
/// `key=value` lines with a trailing self-CRC line covering everything
/// above it. The manifest names the format version, the state-file
/// generation it commits, the flag fingerprint the resuming run must
/// match, and observability continuity (telemetry tick count). It is
/// written tmp + fsync + rename *after* the state file it points to, so
/// the rename is the checkpoint's commit point: a crash anywhere in the
/// sequence leaves either the previous complete checkpoint or the new one,
/// never a half-committed mix.
struct Manifest {
  std::map<std::string, std::string> kv;

  void set(const std::string& k, const std::string& v) { kv[k] = v; }
  void set_u64(const std::string& k, std::uint64_t v);
  const std::string& get(const std::string& k) const;  ///< throws if absent
  std::uint64_t get_u64(const std::string& k) const;
  bool has(const std::string& k) const { return kv.count(k) != 0; }

  /// Serialize + CRC + tmp/fsync/rename to `path`. Throws
  /// BudgetExhausted on I/O failure (exit-4 path, like SectionWriter).
  void save(const std::string& path) const;
  /// Parse + CRC-validate `path`. Throws CheckpointInvalid when the file
  /// is missing, torn, or fails its checksum.
  static Manifest load(const std::string& path);
};

inline constexpr const char* kManifestName = "manifest.tsb";

/// Path helpers for a checkpoint directory's generation-numbered files.
std::string manifest_path(const std::string& dir);
std::string state_path(const std::string& dir, std::uint64_t gen);

/// Process-wide checkpoint coordinator, polled from the engines' existing
/// quiescent points (the sequential explorer's every-4096-expansions
/// check, the reach graph's every-256-steps walk check, the parallel
/// explorer's stop-the-world rendezvous).
///
/// The run that owns checkpointable state registers a serializer callback
/// (the adversary's, capturing its oracle); poll() fires it when the
/// configured wall-clock interval or expansion-count budget elapses, and
/// write_now() orchestrates the durable commit: state file via
/// SectionWriter (tmp + fsync + rename), then the manifest rename as the
/// commit point, then deletion of older generations. request_stop() is
/// async-signal-safe (one atomic store — SIGTERM/SIGINT handlers call it);
/// the next poll() at a quiescent point writes a final checkpoint and
/// throws CheckpointStop, which unwinds to the CLI for a flushed exit 5.
/// When no checkpoint directory is configured, a stop request still
/// throws CheckpointStop (graceful stop without persistence).
class CheckpointService {
 public:
  static CheckpointService& global();

  /// Configure the directory and cadence. interval_ms and every_work are
  /// alternatives (0 = unused); when both are 0 checkpoints are written
  /// only on request_stop(). `fingerprint` is recorded in every manifest
  /// and must match on resume.
  void configure(const std::string& dir, std::uint64_t interval_ms,
                 std::uint64_t every_work, const std::string& fingerprint);
  /// Drop configuration and serializer (tests; between CLI runs).
  void reset();

  using Serializer = std::function<void(SectionWriter&)>;
  /// Register/clear the state serializer. Extra manifest keys (telemetry
  /// tick counts, engine counters) are re-collected per write via
  /// `manifest_extra` (may be null).
  void set_writer(Serializer s,
                  std::function<void(Manifest&)> manifest_extra = nullptr);

  bool enabled() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Quiescent-point hook. `work` is the expansions since the caller's
  /// last poll. Fast path when idle: one relaxed load (engaged_ covers
  /// "configured", "stop requested", and the test hook). May invoke the
  /// serializer inline; throws CheckpointStop after a stop-request's final
  /// checkpoint.
  void poll(std::uint64_t work) {
    if (!engaged_.load(std::memory_order_relaxed)) return;
    poll_slow(work);
  }

  /// True when an interval/work checkpoint is due or a stop was requested
  /// — the parallel explorer checks this between chunks to decide whether
  /// to rendezvous.
  bool due() const;

  /// Accumulate expansion work from a context that is NOT quiescent (the
  /// parallel explorer's workers between chunks), so work-count cadences
  /// see parallel progress; the write itself still happens only at a
  /// rendezvoused poll(). One relaxed load when checkpointing is off.
  void add_work(std::uint64_t work) {
    if (!engaged_.load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(mu_);
    work_acc_ += work;
  }

  /// Async-signal-safe stop request (SIGTERM/SIGINT): two atomic stores.
  void request_stop() {
    stop_requested_.store(true, std::memory_order_relaxed);
    engaged_.store(true, std::memory_order_relaxed);
  }
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_relaxed);
  }

  /// Test hook: request_stop() automatically after `n` more polls, so
  /// differential tests interrupt a run at a deterministic moment.
  void stop_after_polls(std::uint64_t n);

  /// Write a checkpoint right now (caller guarantees quiescence). `why`
  /// lands in the ckpt.write stats record ("interval" / "stop" / "final").
  /// No-op when no directory or serializer is configured.
  void write_now(const char* why);

  // Forensics for the ledger / report / bench overhead gate.
  std::uint64_t checkpoints_written() const {
    return writes_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_written() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t write_ms_total() const {
    return write_ms_.load(std::memory_order_relaxed);
  }
  /// Seconds since the last successful write (-1: never wrote / disabled).
  /// The telemetry watchdog's checkpoint-stall rule reads this.
  std::int64_t seconds_since_last_write() const;
  std::uint64_t interval_ms() const { return interval_ms_; }
  std::string dir() const;

 private:
  CheckpointService() = default;
  void poll_slow(std::uint64_t work);

  std::atomic<bool> engaged_{false};  ///< poll() must take the slow path
  std::atomic<bool> active_{false};   ///< a checkpoint dir is configured
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> stop_after_{0};  ///< 0 = hook off
  mutable std::mutex mu_;  ///< guards config + write orchestration
  std::string dir_;
  std::string fingerprint_;
  std::uint64_t interval_ms_ = 0;
  std::uint64_t every_work_ = 0;
  Serializer writer_;
  std::function<void(Manifest&)> manifest_extra_;
  std::uint64_t generation_ = 0;
  std::uint64_t work_acc_ = 0;
  /// Reentrancy guard: set (outside mu_) for the duration of a write so a
  /// serializer that calls poll()/due() no-ops instead of recursing. The
  /// serializer itself runs with mu_ released — holding the non-recursive
  /// mutex across the callback would deadlock any such re-entry.
  std::atomic<bool> in_write_{false};
  std::chrono::steady_clock::time_point last_write_{};
  bool ever_wrote_ = false;
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> write_ms_{0};
};

}  // namespace ckpt
}  // namespace tsb::util
