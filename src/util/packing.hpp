#pragma once

#include <cassert>
#include <cstdint>

namespace tsb::util {

/// Lossless packing of small structured values into the int64 register /
/// state word used by the simulator.
///
/// The model allows unbounded registers; our concrete protocols only ever
/// store pairs such as (round, value) or (id, preference). Packing them
/// into one word keeps configurations hashable and cheap to copy, which the
/// valency analyzer depends on.
///
/// Layout of pack_pair: [ hi : 32 bits | lo : 32 bits ], both fields are
/// signed 32-bit values stored zig-zag-free by offsetting through uint32.

constexpr std::int64_t kNilValue = -1;  ///< canonical "empty register" mark

inline std::int64_t pack_pair(std::int32_t hi, std::int32_t lo) {
  return static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(hi)) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(lo)));
}

inline std::int32_t unpack_hi(std::int64_t packed) {
  return static_cast<std::int32_t>(
      static_cast<std::uint32_t>(static_cast<std::uint64_t>(packed) >> 32));
}

inline std::int32_t unpack_lo(std::int64_t packed) {
  return static_cast<std::int32_t>(
      static_cast<std::uint32_t>(static_cast<std::uint64_t>(packed)));
}

/// Packing of (a, b, c, d) 16-bit fields; used by protocol states that track
/// a program counter plus a few small scalars.
inline std::int64_t pack_quad(std::uint16_t a, std::uint16_t b,
                              std::uint16_t c, std::uint16_t d) {
  return static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(a) << 48) |
      (static_cast<std::uint64_t>(b) << 32) |
      (static_cast<std::uint64_t>(c) << 16) | static_cast<std::uint64_t>(d));
}

inline std::uint16_t quad_a(std::int64_t p) {
  return static_cast<std::uint16_t>(static_cast<std::uint64_t>(p) >> 48);
}
inline std::uint16_t quad_b(std::int64_t p) {
  return static_cast<std::uint16_t>(static_cast<std::uint64_t>(p) >> 32);
}
inline std::uint16_t quad_c(std::int64_t p) {
  return static_cast<std::uint16_t>(static_cast<std::uint64_t>(p) >> 16);
}
inline std::uint16_t quad_d(std::int64_t p) {
  return static_cast<std::uint16_t>(static_cast<std::uint64_t>(p));
}

}  // namespace tsb::util
