#include "util/rng.hpp"

namespace tsb::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : s_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's method: multiply-shift with rejection of the biased region.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1ull;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::uniform01() {
  // 53 random mantissa bits -> uniform double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::split(std::uint64_t stream_id) {
  std::uint64_t s = hash_combine(s_[0] ^ s_[3], stream_id);
  return Rng(splitmix64(s));
}

}  // namespace tsb::util
