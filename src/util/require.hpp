#pragma once

#include <stdexcept>
#include <string>

namespace tsb::util {

/// Always-on invariant check for load-bearing conditions.
///
/// The lemma machinery's preconditions and postconditions are part of the
/// reproduction's trust story: a protocol that is not a correct solo-
/// terminating consensus protocol must make the adversary *fail loudly*,
/// not fabricate a certificate — in release builds too, where assert() is
/// compiled out. Violations throw; SpaceBoundAdversary::run() catches and
/// reports them as errors.
class RequirementFailed : public std::runtime_error {
 public:
  explicit RequirementFailed(const std::string& what)
      : std::runtime_error(what) {}
};

/// Graceful-degradation signal: an exploration or valency query hit its
/// configured memory or wall-clock budget. Distinct from RequirementFailed
/// because nothing is *wrong* — the answer is "unknown within budget", and
/// callers (the adversary, the CLI) must surface that as a clean truncated
/// result with its own exit code rather than as a violation, and must never
/// substitute an unsound partial answer.
class BudgetExhausted : public std::runtime_error {
 public:
  explicit BudgetExhausted(const std::string& what)
      : std::runtime_error(what) {}
};

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw RequirementFailed(std::string(file) + ":" + std::to_string(line) +
                          ": requirement failed: " + expr +
                          (msg.empty() ? "" : " — " + msg));
}

}  // namespace tsb::util

#define TSB_REQUIRE(cond, msg)                                       \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::tsb::util::require_failed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                \
  } while (false)
