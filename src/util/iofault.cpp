#include "util/iofault.hpp"

#include <errno.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace tsb::util::iofault {

namespace {

// One armed fault at a time: the matrix tests one hostile event per run,
// and a single slot keeps every wrapper to one relaxed load when disarmed.
std::atomic<int> g_kind{static_cast<int>(Kind::kNone)};
std::atomic<int> g_countdown{0};
std::atomic<std::uint64_t> g_fired{0};

/// True iff the armed fault is `k` and this call consumed the countdown.
bool take(Kind k) {
  if (static_cast<Kind>(g_kind.load(std::memory_order_relaxed)) != k) {
    return false;
  }
  if (g_countdown.fetch_sub(1, std::memory_order_relaxed) != 1) return false;
  g_fired.fetch_add(1, std::memory_order_relaxed);
  return true;
}

/// Write-shaped faults share one countdown so "the 3rd write fails" means
/// the 3rd write whatever its fd. EINTR is transient by definition — it
/// fires once and disarms, so the caller's retry loop gets to succeed.
/// ENOSPC and short-write model a full/dying disk and stay armed once
/// their countdown elapses: the device does not heal between retries.
Kind take_write_fault() {
  const Kind k = static_cast<Kind>(g_kind.load(std::memory_order_relaxed));
  if (k != Kind::kShortWrite && k != Kind::kEnospc && k != Kind::kEintr) {
    return Kind::kNone;
  }
  if (g_countdown.fetch_sub(1, std::memory_order_relaxed) > 1) {
    return Kind::kNone;
  }
  g_fired.fetch_add(1, std::memory_order_relaxed);
  if (k == Kind::kEintr) {
    g_kind.store(static_cast<int>(Kind::kNone), std::memory_order_relaxed);
  } else {
    // Clamp so the counter never has to wrap its way back to firing.
    g_countdown.store(0, std::memory_order_relaxed);
  }
  return k;
}

}  // namespace

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kNone: return "none";
    case Kind::kShortWrite: return "short_write";
    case Kind::kEnospc: return "enospc";
    case Kind::kEintr: return "eintr";
    case Kind::kTornRename: return "torn_rename";
    case Kind::kBitflip: return "bitflip";
  }
  return "?";
}

void arm(Kind k, int countdown) {
  g_countdown.store(countdown < 1 ? 1 : countdown, std::memory_order_relaxed);
  g_fired.store(0, std::memory_order_relaxed);
  g_kind.store(static_cast<int>(k), std::memory_order_relaxed);
}

void disarm() {
  g_kind.store(static_cast<int>(Kind::kNone), std::memory_order_relaxed);
}

Kind armed() {
  return static_cast<Kind>(g_kind.load(std::memory_order_relaxed));
}

std::uint64_t fired() { return g_fired.load(std::memory_order_relaxed); }

bool arm_from_env() {
  const char* env = std::getenv("TSB_IO_FAULT");
  if (env == nullptr || *env == '\0') return false;
  std::string spec(env);
  int countdown = 1;
  if (const std::size_t colon = spec.find(':'); colon != std::string::npos) {
    countdown = std::atoi(spec.c_str() + colon + 1);
    spec.resize(colon);
  }
  for (const Kind k : {Kind::kShortWrite, Kind::kEnospc, Kind::kEintr,
                       Kind::kTornRename, Kind::kBitflip}) {
    if (spec == kind_name(k)) {
      arm(k, countdown);
      return true;
    }
  }
  return false;
}

namespace {

/// Short-write device model: the first faulted call consumes half the
/// buffer (a legal POSIX short write), every later one accepts nothing —
/// so a correct retry loop makes forward progress exactly once and then
/// must report the device dead rather than spin.
ssize_t short_write_len(std::size_t len) {
  if (g_fired.load(std::memory_order_relaxed) > 1) return 0;
  return static_cast<ssize_t>(len > 1 ? len / 2 : len);
}

}  // namespace

ssize_t write(int fd, const void* buf, std::size_t len) {
  switch (take_write_fault()) {
    case Kind::kShortWrite: {
      const ssize_t l = short_write_len(len);
      return l == 0 ? 0 : ::write(fd, buf, static_cast<std::size_t>(l));
    }
    case Kind::kEnospc:
      errno = ENOSPC;
      return -1;
    case Kind::kEintr:
      errno = EINTR;
      return -1;
    default:
      return ::write(fd, buf, len);
  }
}

ssize_t pwrite(int fd, const void* buf, std::size_t len, off_t off) {
  switch (take_write_fault()) {
    case Kind::kShortWrite: {
      const ssize_t l = short_write_len(len);
      return l == 0 ? 0 : ::pwrite(fd, buf, static_cast<std::size_t>(l), off);
    }
    case Kind::kEnospc:
      errno = ENOSPC;
      return -1;
    case Kind::kEintr:
      errno = EINTR;
      return -1;
    default:
      return ::pwrite(fd, buf, len, off);
  }
}

ssize_t read(int fd, void* buf, std::size_t len) {
  const ssize_t r = ::read(fd, buf, len);
  if (r > 0 && take(Kind::kBitflip)) {
    // Flip one mid-buffer bit: media corruption the CRC layer must catch.
    static_cast<unsigned char*>(buf)[static_cast<std::size_t>(r) / 2] ^= 0x10;
  }
  return r;
}

int rename(const char* from, const char* to) {
  if (take(Kind::kTornRename)) {
    // A crash between "data written" and "rename committed" leaves the
    // source half-written; modelled as truncating it before the (now
    // successful) rename, so the renamed file carries torn content that
    // only checksum validation can refuse.
    struct ::stat st;
    if (::stat(from, &st) == 0 && st.st_size > 1) {
      (void)::truncate(from, st.st_size / 2);
    }
  }
  return ::rename(from, to);
}

int fsync(int fd) { return ::fsync(fd); }

bool write_full(int fd, const void* buf, std::size_t len) {
  const char* p = static_cast<const char*>(buf);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t w = iofault::write(fd, p + done, len - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) {
      errno = EIO;
      return false;
    }
    done += static_cast<std::size_t>(w);
  }
  return true;
}

bool pwrite_full(int fd, const void* buf, std::size_t len, off_t off) {
  const char* p = static_cast<const char*>(buf);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t w = iofault::pwrite(fd, p + done, len - done,
                                      off + static_cast<off_t>(done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) {
      errno = EIO;
      return false;
    }
    done += static_cast<std::size_t>(w);
  }
  return true;
}

bool read_full(int fd, void* buf, std::size_t len) {
  char* p = static_cast<char*>(buf);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t r = iofault::read(fd, p + done, len - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF before len: truncated input
    done += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace tsb::util::iofault
