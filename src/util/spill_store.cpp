#include "util/spill_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/flight.hpp"
#include "obs/memledger.hpp"
#include "util/iofault.hpp"

namespace tsb::util::spill {

std::size_t page_size() {
  static const std::size_t sz =
      static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return sz;
}

bool BackingFile::open(const std::string& dir) {
  close();
  const std::string path =
      dir + "/tsb-spill-" + std::to_string(::getpid()) + "-" +
      std::to_string(reinterpret_cast<std::uintptr_t>(this) & 0xffffffu) +
      ".bin";
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  if (fd < 0) return false;
  ::unlink(path.c_str());
  fd_ = fd;
  end_ = 0;
  return true;
}

bool BackingFile::append(const std::uint8_t* data, std::size_t len,
                         Block& out) {
  const std::uint64_t off = end_;
  if (!iofault::pwrite_full(fd_, data, len, static_cast<off_t>(off))) {
    return false;
  }
  const std::size_t map_len = round_up(len, page_size());
  void* map = MAP_FAILED;
  do {
    map = ::mmap(nullptr, map_len, PROT_READ, MAP_SHARED, fd_,
                 static_cast<off_t>(off));
  } while (map == MAP_FAILED && errno == EINTR);
  if (map == MAP_FAILED) return false;
  end_ = off + map_len;
  out.map = static_cast<std::uint8_t*>(map);
  out.map_len = map_len;
  out.skip = 0;
  out.bytes = len;
  out.file_off = off;
  return true;
}

void BackingFile::release(Block& b) {
  if (b.map == nullptr) return;
  ::munmap(b.map, b.map_len);
#ifdef FALLOC_FL_PUNCH_HOLE
  if (fd_ >= 0) {
    // Best effort: a superseded block's space goes back to the filesystem.
    // Filesystems without hole punching just keep the (unlinked) space
    // until close; the resident budget is unaffected either way.
    ::fallocate(fd_, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                static_cast<off_t>(b.file_off),
                static_cast<off_t>(b.map_len));
  }
#endif
  b = Block{};
}

void BackingFile::truncate() {
  if (fd_ >= 0) ::ftruncate(fd_, 0);
  end_ = 0;
}

void BackingFile::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  end_ = 0;
}

void throw_spill_failure(const std::string& name, int err,
                         std::size_t resident_bytes,
                         std::size_t resident_target) {
  // Disk trouble (ENOSPC, a dying device). Continuing in RAM would
  // silently abandon the operator's memory plan mid-campaign, so this is a
  // budget failure, not a shrug: flight event, ledger attribution, clean
  // exit 4 upstream.
  obs::flight::record(obs::flight::Ev::kBudgetTrip,
                      static_cast<std::int64_t>(resident_bytes),
                      -static_cast<std::int64_t>(err));
  throw BudgetExhausted(
      name + " spill write failed (" + std::string(std::strerror(err)) +
      ") with " + obs::format_bytes(resident_bytes) + " resident over a " +
      obs::format_bytes(resident_target) +
      " spill target; exploration cannot keep its memory plan; ledger: " +
      obs::MemLedger::global().attribution(3));
}

}  // namespace tsb::util::spill
