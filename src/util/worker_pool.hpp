#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tsb::util {

/// A fixed pool of worker threads executing one task-per-worker barrier
/// rounds: run(f) invokes f(0) ... f(size()-1) concurrently, one call per
/// worker, and returns when all have finished. The parallel explorer runs
/// its per-level phases through this, so thread startup cost is paid once
/// per exploration rather than once per BFS level.
///
/// Synchronization is a generation counter under one mutex: workers sleep
/// between rounds, so an idle pool burns no CPU. An exception thrown by any
/// worker's task is captured and rethrown from run() (first one wins).
class WorkerPool {
 public:
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Run task(worker_index) on every worker; blocks until all complete.
  void run(const std::function<void(int)>& task);

 private:
  void worker_main(int index);

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable round_done_;
  const std::function<void(int)>* task_ = nullptr;
  std::uint64_t generation_ = 0;
  int remaining_ = 0;
  bool stopping_ = false;
  std::exception_ptr error_;
  std::vector<std::thread> threads_;
};

}  // namespace tsb::util
