#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace tsb::util::iofault {

/// Pluggable I/O fault injection for the durability-critical write/read
/// paths (checkpoint files, the arena spill file), in the spirit of
/// src/rt/fault.* but aimed at the filesystem instead of the shared-memory
/// model: the hostile events a multi-day campaign actually meets are a full
/// disk, a signal-interrupted write, a crash between rename()s, and silent
/// media corruption. Production code routes those syscalls through the
/// wrappers below; tests (and the CI fault matrix, via TSB_IO_FAULT) arm
/// exactly one fault and assert the run degrades to a clean refusal or
/// exit 4 — never a crash, never a wrong answer.
///
/// A countdown of eligible calls arms each fault's onset. Transient kinds
/// (kEintr) inject once and let the retry succeed — precisely the contract
/// an EINTR loop must survive. Persistent kinds (kEnospc, kShortWrite)
/// model a disk that does not heal: once fired they keep failing, so retry
/// loops surface them as errors instead of spinning. Disarmed cost is one
/// relaxed load per wrapped call.
enum class Kind : int {
  kNone = 0,
  kShortWrite,  ///< write/pwrite takes half the buffer once, then nothing
  kEnospc,      ///< write/pwrite fails with ENOSPC (stays failing)
  kEintr,       ///< write/pwrite fails with EINTR once, then succeeds
  kTornRename,  ///< source file is truncated to half before the rename
  kBitflip,     ///< one bit of the next read()'s buffer is flipped
};

const char* kind_name(Kind k);

/// Arm `k` to fire on the `countdown`-th eligible wrapped call (1 = next).
void arm(Kind k, int countdown = 1);
void disarm();
Kind armed();
/// Injections performed since the last arm().
std::uint64_t fired();

/// Arm from the TSB_IO_FAULT environment variable ("enospc", "torn_rename:3",
/// ...), the CI fault matrix's entry point. Unknown values are ignored (the
/// layer stays disarmed). Returns true when a fault was armed.
bool arm_from_env();

// --- wrapped syscalls -----------------------------------------------------
// Same contracts as the raw calls; the armed fault (if any, and if its
// countdown elapses on this call) is injected first.

ssize_t write(int fd, const void* buf, std::size_t len);
ssize_t pwrite(int fd, const void* buf, std::size_t len, off_t off);
ssize_t read(int fd, void* buf, std::size_t len);
int rename(const char* from, const char* to);
int fsync(int fd);

/// write() the whole buffer, retrying short writes and EINTR. Returns false
/// (with errno set) on any non-retryable failure.
bool write_full(int fd, const void* buf, std::size_t len);
/// pwrite() the whole buffer at `off`, retrying short writes and EINTR.
bool pwrite_full(int fd, const void* buf, std::size_t len, off_t off);
/// read() exactly `len` bytes, retrying short reads and EINTR. False on
/// EOF-before-len or error.
bool read_full(int fd, void* buf, std::size_t len);

}  // namespace tsb::util::iofault
