#pragma once

/// Umbrella header for the observability layer.
///
/// src/obs is dependency-free (standard library only) and sits below every
/// other module: sim, bound, rt, mutex and perturb all instrument through
/// it, the CLI and benches export through it.
///
/// The discipline, enforced by tests/test_obs.cpp and the TSan CI job:
///  * disabled instrumentation costs one relaxed load (tracing) or one
///    sharded relaxed load+store (metrics) — never a locked instruction,
///    never a shared contended cache line;
///  * enabling tracing/metrics changes no observable behavior, only emits.
#include "obs/flight.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/memledger.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"
#include "obs/status.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace_sink.hpp"
#include "obs/watchdog.hpp"
