#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace tsb::obs {

/// Anomaly rules the telemetry watchdog evaluates over the last-k samples.
/// Each names a failure mode a multi-day campaign can silently slide into:
enum class WatchRule : int {
  kThroughputCollapse = 0,  ///< cps far below the trailing median
  kSpillThrash,             ///< mapped-byte churn with flat visited growth
  kStealStarvation,         ///< idle spins growing while work is pending
  kLedgerRunaway,           ///< tracked bytes racing toward the mem budget
  kCheckpointStall,         ///< checkpoint age far past the configured cadence
  kCount
};

constexpr int kWatchRules = static_cast<int>(WatchRule::kCount);

/// Rule name as it appears in watch.* records, status files and stderr
/// lines ("throughput_collapse", "spill_thrash", ...).
const char* watch_rule_name(WatchRule r);

/// One telemetry sample, as the watchdog sees it. Negative values mean
/// "unknown this tick" and disable the rules that need them — a sequential
/// run never trips steal starvation, a run without --mem-budget never trips
/// ledger runaway.
struct WatchSample {
  std::uint64_t tick = 0;
  double t_s = 0.0;               ///< seconds since telemetry open
  std::string phase;              ///< "explore", "valency.reach", ...
  std::int64_t visited = -1;      ///< cumulative configurations this phase
  std::int64_t frontier = -1;     ///< pending work items
  double cps = -1.0;              ///< interval configs/sec; < 0 = unknown
  std::int64_t idle_spins = -1;   ///< cumulative out-of-work spins
  std::uint64_t mapped_bytes = 0; ///< arena.mapped ledger account
  std::uint64_t spill_bytes = 0;  ///< arena.spill ledger account
  std::uint64_t ledger_total = 0; ///< tracked-heap total
  std::uint64_t mem_budget = 0;   ///< --mem-budget; 0 = none configured
  std::int64_t ckpt_age_s = -1;   ///< s since last checkpoint; -1 = off
  std::uint64_t ckpt_interval_ms = 0;  ///< cadence; 0 disables the rule
};

struct WatchAlert {
  WatchRule rule;
  std::uint64_t tick = 0;  ///< tick the episode started
  std::string detail;      ///< human-readable evidence for the fire
};

/// Rule-driven anomaly detector over a sliding window of telemetry samples.
///
/// Episode semantics: a rule fires on the rising edge of its condition and
/// then stays latched (active) until the condition clears, so a six-hour
/// throughput collapse produces one alert, not 21600 — and a second
/// collapse after recovery produces a second alert. The sample window is
/// scoped to the current phase (a phase change resets it): comparing
/// lemma4's rate against explore's median would alert on every handoff.
///
/// The class is deliberately pure — observe() in, alerts out — so synthetic
/// timelines unit-test every rule without a process or a clock; the global()
/// instance is the one the telemetry tick feeds and the status file reads.
/// Methods take an internal mutex: observe() runs on whichever engine
/// thread beats the heartbeat while the status publisher reads active().
class Watchdog {
 public:
  struct Options {
    int window = 16;            ///< samples retained (and thrash horizon)
    int min_samples = 5;        ///< same-phase history a rule needs to arm
    double collapse_frac = 0.30;    ///< fire below this fraction of median
    double thrash_churn_factor = 2.0;  ///< window churn vs peak mapped
    double flat_visited_frac = 0.01;   ///< "flat" = growth under this share
    int starvation_run = 4;     ///< consecutive idle-growing intervals
    std::int64_t starvation_min_spins = 1024;  ///< spin growth floor
    double runaway_eta_s = 60.0;    ///< alert when exit-4 ETA dips below
    double ckpt_stall_factor = 3.0;  ///< fire past this multiple of cadence
    double ckpt_stall_min_s = 5.0;   ///< but never under this absolute age
  };

  Watchdog() : Watchdog(Options{}) {}
  explicit Watchdog(const Options& opts) : opts_(opts) {}

  /// Feed one sample; returns the rules whose episodes started this tick.
  /// Rules whose condition went false this tick are reported by
  /// cleared_last() until the next observe().
  std::vector<WatchAlert> observe(const WatchSample& s);

  bool active(WatchRule r) const;
  /// Currently-latched rules, for the status file and `tsb monitor`.
  std::vector<WatchRule> active_rules() const;
  /// Rules cleared by the most recent observe() (episode ended).
  std::vector<WatchRule> cleared_last() const;
  /// Episodes started so far for `r` (the "exactly once per episode" count).
  std::uint64_t fires(WatchRule r) const;

  void reset();

  /// The process-wide instance the telemetry tick feeds.
  static Watchdog& global();

 private:
  // Rule conditions over the current window (newest sample = back()).
  bool collapse_now(std::string* detail) const;
  bool thrash_now(std::string* detail) const;
  bool starvation_now(std::string* detail) const;
  bool runaway_now(std::string* detail) const;
  bool ckpt_stall_now(std::string* detail) const;

  Options opts_;
  mutable std::mutex mu_;
  std::deque<WatchSample> win_;
  bool latched_[kWatchRules] = {};
  std::uint64_t episode_tick_[kWatchRules] = {};
  std::uint64_t fires_[kWatchRules] = {};
  std::vector<WatchRule> cleared_;
};

}  // namespace tsb::obs
