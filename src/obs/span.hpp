#pragma once

#include "obs/profiler.hpp"
#include "obs/trace_sink.hpp"

namespace tsb::obs {

/// RAII timing span: records a Chrome "complete" event covering its
/// lifetime on the current thread's track. Construction when tracing is
/// disabled costs one relaxed load and the destructor another — spans can
/// wrap hot sections unconditionally.
///
/// `value` rides along in the event's args; callers use it for a result
/// the span produced (configs visited, round number, ...). Names must be
/// static strings — the sink stores the pointer.
///
/// Spans also feed the sampling profiler's per-thread label stack while it
/// runs, so profile samples resolve to these same names. That adds one
/// more relaxed load when the profiler is off.
class Span {
 public:
  explicit Span(const char* name) {
    TraceSink& sink = TraceSink::global();
    if (sink.enabled()) {
      name_ = name;
      start_ns_ = sink.now_ns();
      live_ = true;
    }
    if (profiler_enabled()) {
      prof_detail::push(name);
      prof_pushed_ = true;
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void set_value(std::int64_t v) { value_ = v; }

  ~Span() {
    if (prof_pushed_) prof_detail::pop();
    if (!live_) return;
    TraceSink& sink = TraceSink::global();
    // If tracing stopped mid-span, drop it rather than emit a bogus time.
    if (!sink.enabled()) return;
    const std::uint64_t end = sink.now_ns();
    sink.complete(name_, start_ns_, end - start_ns_, value_);
  }

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::int64_t value_ = 0;
  bool live_ = false;
  bool prof_pushed_ = false;
};

}  // namespace tsb::obs
