#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace tsb::obs {

/// Chrome trace_event phases we emit. kComplete carries a duration (a
/// span); kInstant marks a point; kCounter graphs a named value over time —
/// Perfetto renders counters as a track, which is how "covered registers
/// over time" becomes a picture of the n-1 bound being forced.
enum class Ph : char {
  kComplete = 'X',
  kInstant = 'i',
  kCounter = 'C',
};

struct TraceEvent {
  const char* name;  ///< static string; the sink never copies names
  std::uint64_t ts_ns;
  std::uint64_t dur_ns;
  std::int64_t value;
  std::int32_t tid;
  Ph ph;
};

namespace detail {
// A plain global, not a member behind TraceSink::global(): the disabled
// check must not pay the function-local-static guard on every access.
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True while a trace is being recorded. The cheapest possible check — one
/// relaxed load of a namespace-scope atomic — so instrumentation sites can
/// gate out before even naming the sink.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Process-wide bounded event sink.
///
/// Disabled (the default) every record call is one relaxed load — cheap
/// enough to leave instrumentation in hot paths unconditionally. Enabled,
/// a record claims a distinct slot with one relaxed fetch_add and fills it;
/// no two threads ever write the same slot, so recording is TSan-clean.
/// When the buffer is full new events are counted as dropped rather than
/// wrapping: overwriting a slot another thread may still be filling would
/// be a race, and for our workloads the interesting prefix (construction
/// rounds, first contention) is worth more than the steady-state tail.
///
/// Exports happen after the run quiesces (threads joined / work done).
class TraceSink {
 public:
  static TraceSink& global();

  /// Start recording into a fresh buffer of `capacity` events; the time
  /// origin is now. Not thread-safe against concurrent recording.
  void enable(std::size_t capacity = 1 << 20);
  void disable();
  bool enabled() const { return trace_enabled(); }

  /// Nanoseconds since enable(); 0 when disabled.
  std::uint64_t now_ns() const;

  // The record calls are inline so that when the sink is disabled an
  // instrumentation site compiles down to one relaxed load and a branch —
  // cheap enough to sit inside a register access.
  void complete(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns,
                std::int64_t value = 0) {
    if (!enabled()) return;
    record({name, ts_ns, dur_ns, value, thread_id(), Ph::kComplete});
  }
  void instant(const char* name, std::int64_t value = 0) {
    if (!enabled()) return;
    record({name, now_ns(), 0, value, thread_id(), Ph::kInstant});
  }
  /// Counter track: the named series takes `value` at the current time.
  void counter(const char* name, std::int64_t value) {
    if (!enabled()) return;
    record({name, now_ns(), 0, value, thread_id(), Ph::kCounter});
  }

  std::size_t size() const;
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Drops broken out by event category, so a full buffer's victims are
  /// attributable: losing counter samples thins a track, losing spans
  /// removes whole phases from the timeline. Exported as registry gauges
  /// by disable(), which puts them on the --metrics JSON line.
  std::uint64_t dropped(Ph ph) const {
    return dropped_by_[ph_index(ph)].load(std::memory_order_relaxed);
  }

  /// Chrome trace_event JSON ({"traceEvents":[...]}), loadable in
  /// chrome://tracing and Perfetto. ts/dur are microseconds per the spec.
  void write_chrome_trace(std::ostream& out) const;
  /// One JSON object per line, ts/dur in nanoseconds.
  void write_jsonl(std::ostream& out) const;
  /// Write to `path`, picking the format by extension: ".jsonl" gets JSONL,
  /// anything else the Chrome format. Returns false if the file can't open.
  bool write_file(const std::string& path) const;

  /// Events recorded so far, in claim order (quiescent callers only).
  std::vector<TraceEvent> snapshot() const;

 private:
  static int ph_index(Ph ph) {
    return ph == Ph::kComplete ? 0 : ph == Ph::kInstant ? 1 : 2;
  }

  void record(const TraceEvent& ev);

  std::atomic<std::size_t> head_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> dropped_by_[3] = {};  // span, instant, counter
  std::vector<TraceEvent> buf_;
  std::chrono::steady_clock::time_point epoch_{};
};

/// Free-function entry points for the hottest instrumentation sites: with
/// tracing disabled these are one relaxed load and a predicted branch —
/// the sink singleton (and its init guard) is never touched.
inline void trace_instant(const char* name, std::int64_t value = 0) {
  if (trace_enabled()) TraceSink::global().instant(name, value);
}
inline void trace_counter(const char* name, std::int64_t value) {
  if (trace_enabled()) TraceSink::global().counter(name, value);
}

}  // namespace tsb::obs
