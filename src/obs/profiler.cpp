#include "obs/profiler.hpp"

#include <signal.h>
#include <sys/time.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <ostream>
#include <vector>

#include "obs/jsonl_sink.hpp"

namespace tsb::obs {

namespace prof_detail {

std::atomic<bool> g_prof_enabled{false};

namespace {

constexpr int kMaxDepth = 32;
constexpr int kTableSlots = 256;  // power of two; labels number in dozens

// One open-addressing slot keyed by label pointer identity (span labels
// are static strings). label claims the slot via CAS from nullptr — the
// only RMW here, and only on first sight of a label.
struct Slot {
  std::atomic<const char*> label{nullptr};
  std::atomic<std::uint64_t> cpu_self{0};
  std::atomic<std::uint64_t> cpu_total{0};
  std::atomic<std::uint64_t> wall_self{0};
  std::atomic<std::uint64_t> wall_total{0};
};

// Heap-allocated once per thread and leaked: the global registry keeps a
// pointer past thread exit, and the handful of pooled threads bound the
// leak. Only the owning thread (and its own signal handler) touches
// stack/depth; slots are atomics so aggregation can read them live.
struct ThreadProf {
  const char* stack[kMaxDepth] = {};
  std::atomic<int> depth{0};
  Slot slots[kTableSlots];
  std::atomic<std::uint64_t> table_full{0};  ///< samples dropped: no slot
};

std::mutex g_registry_mu;
std::vector<ThreadProf*>& registry() {
  static std::vector<ThreadProf*>* v = new std::vector<ThreadProf*>();
  return *v;
}

thread_local ThreadProf* t_prof = nullptr;

// Samples on threads with no label stack (never entered a span, or the
// profiler started before the thread's first span).
std::atomic<std::uint64_t> g_unlabeled_cpu{0};
std::atomic<std::uint64_t> g_unlabeled_wall{0};

ThreadProf* thread_state() {
  if (t_prof == nullptr) {
    auto* tp = new ThreadProf();  // leaked, see above
    {
      std::lock_guard<std::mutex> lock(g_registry_mu);
      registry().push_back(tp);
    }
    t_prof = tp;
  }
  return t_prof;
}

Slot* find_slot(ThreadProf* tp, const char* label) {
  const auto h = reinterpret_cast<std::uintptr_t>(label);
  std::size_t idx = (h >> 4) & (kTableSlots - 1);
  for (int probe = 0; probe < kTableSlots; ++probe) {
    Slot& s = tp->slots[idx];
    const char* cur = s.label.load(std::memory_order_relaxed);
    if (cur == label) return &s;
    if (cur == nullptr) {
      const char* expected = nullptr;
      if (s.label.compare_exchange_strong(expected, label,
                                          std::memory_order_relaxed)) {
        return &s;
      }
      if (expected == label) return &s;
    }
    idx = (idx + 1) & (kTableSlots - 1);
  }
  tp->table_full.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

// Async-signal-safe by construction: TLS read (initial-exec model, no lazy
// allocation), relaxed atomics, no calls out.
void on_sample(bool cpu) {
  ThreadProf* tp = t_prof;
  if (tp == nullptr) {
    (cpu ? g_unlabeled_cpu : g_unlabeled_wall)
        .fetch_add(1, std::memory_order_relaxed);
    return;
  }
  int d = tp->depth.load(std::memory_order_relaxed);
  if (d > kMaxDepth) d = kMaxDepth;
  if (d <= 0) {
    (cpu ? g_unlabeled_cpu : g_unlabeled_wall)
        .fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (Slot* s = find_slot(tp, tp->stack[d - 1])) {
    (cpu ? s->cpu_self : s->wall_self).fetch_add(1, std::memory_order_relaxed);
  }
  for (int i = 0; i < d; ++i) {
    const char* label = tp->stack[i];
    bool dup = false;  // recursion: count each label once per sample
    for (int j = 0; j < i && !dup; ++j) dup = tp->stack[j] == label;
    if (dup) continue;
    if (Slot* s = find_slot(tp, label)) {
      (cpu ? s->cpu_total : s->wall_total)
          .fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void sigprof_handler(int) { on_sample(/*cpu=*/true); }
void sigalrm_handler(int) { on_sample(/*cpu=*/false); }

struct sigaction g_old_prof;
struct sigaction g_old_alrm;

}  // namespace

void push(const char* label) {
  ThreadProf* tp = thread_state();
  const int d = tp->depth.load(std::memory_order_relaxed);
  if (d < kMaxDepth) tp->stack[d] = label;
  // The store below publishes stack[d] to this thread's own signal
  // handler; program order plus the signal fence is the contract.
  std::atomic_signal_fence(std::memory_order_release);
  tp->depth.store(d + 1, std::memory_order_relaxed);
}

void pop() {
  ThreadProf* tp = t_prof;
  if (tp == nullptr) return;
  const int d = tp->depth.load(std::memory_order_relaxed);
  if (d > 0) tp->depth.store(d - 1, std::memory_order_relaxed);
}

}  // namespace prof_detail

Profiler& Profiler::global() {
  static Profiler* p = new Profiler();
  return *p;
}

bool Profiler::start(int hz) {
  using namespace prof_detail;
  if (running_ || hz < 1 || hz > 10'000) return false;
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    for (ThreadProf* tp : registry()) {
      for (Slot& s : tp->slots) {
        s.label.store(nullptr, std::memory_order_relaxed);
        s.cpu_self.store(0, std::memory_order_relaxed);
        s.cpu_total.store(0, std::memory_order_relaxed);
        s.wall_self.store(0, std::memory_order_relaxed);
        s.wall_total.store(0, std::memory_order_relaxed);
      }
      tp->table_full.store(0, std::memory_order_relaxed);
    }
  }
  g_unlabeled_cpu.store(0, std::memory_order_relaxed);
  g_unlabeled_wall.store(0, std::memory_order_relaxed);

  struct sigaction sa;
  sa.sa_handler = sigprof_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  if (sigaction(SIGPROF, &sa, &g_old_prof) != 0) return false;
  sa.sa_handler = sigalrm_handler;
  if (sigaction(SIGALRM, &sa, &g_old_alrm) != 0) {
    sigaction(SIGPROF, &g_old_prof, nullptr);
    return false;
  }

  itimerval tv;
  tv.it_interval.tv_sec = 0;
  tv.it_interval.tv_usec = 1'000'000 / hz;
  tv.it_value = tv.it_interval;
  if (setitimer(ITIMER_PROF, &tv, nullptr) != 0 ||
      setitimer(ITIMER_REAL, &tv, nullptr) != 0) {
    const itimerval off{};
    setitimer(ITIMER_PROF, &off, nullptr);
    sigaction(SIGPROF, &g_old_prof, nullptr);
    sigaction(SIGALRM, &g_old_alrm, nullptr);
    return false;
  }
  hz_ = hz;
  running_ = true;
  g_prof_enabled.store(true, std::memory_order_relaxed);
  return true;
}

void Profiler::stop() {
  using namespace prof_detail;
  if (!running_) return;
  const itimerval off{};
  setitimer(ITIMER_PROF, &off, nullptr);
  setitimer(ITIMER_REAL, &off, nullptr);
  g_prof_enabled.store(false, std::memory_order_relaxed);
  sigaction(SIGPROF, &g_old_prof, nullptr);
  sigaction(SIGALRM, &g_old_alrm, nullptr);
  running_ = false;
}

std::vector<Profiler::LabelStat> Profiler::aggregate() const {
  using namespace prof_detail;
  // Label pointers for the same literal may differ across TUs; merge by
  // string value. Cold path, map is fine.
  std::map<std::string, LabelStat> merged;
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    for (ThreadProf* tp : registry()) {
      for (Slot& s : tp->slots) {
        const char* label = s.label.load(std::memory_order_relaxed);
        if (label == nullptr) continue;
        LabelStat& agg = merged[label];
        agg.cpu_self += s.cpu_self.load(std::memory_order_relaxed);
        agg.cpu_total += s.cpu_total.load(std::memory_order_relaxed);
        agg.wall_self += s.wall_self.load(std::memory_order_relaxed);
        agg.wall_total += s.wall_total.load(std::memory_order_relaxed);
      }
    }
  }
  const std::uint64_t ucpu = g_unlabeled_cpu.load(std::memory_order_relaxed);
  const std::uint64_t uwall = g_unlabeled_wall.load(std::memory_order_relaxed);
  if (ucpu != 0 || uwall != 0) {
    LabelStat& agg = merged["(unlabeled)"];
    agg.cpu_self += ucpu;
    agg.cpu_total += ucpu;
    agg.wall_self += uwall;
    agg.wall_total += uwall;
  }
  std::vector<LabelStat> out;
  out.reserve(merged.size());
  for (auto& [label, stat] : merged) {
    stat.label = label;
    out.push_back(std::move(stat));
  }
  std::sort(out.begin(), out.end(), [](const LabelStat& a, const LabelStat& b) {
    return a.cpu_self != b.cpu_self ? a.cpu_self > b.cpu_self
                                    : a.label < b.label;
  });
  return out;
}

std::uint64_t Profiler::cpu_samples() const {
  std::uint64_t t = 0;
  for (const LabelStat& s : aggregate()) t += s.cpu_self;
  return t;
}

std::uint64_t Profiler::wall_samples() const {
  std::uint64_t t = 0;
  for (const LabelStat& s : aggregate()) t += s.wall_self;
  return t;
}

void Profiler::emit_jsonl() const {
  if (!stats_enabled() || hz_ == 0) return;
  const double period_ms = 1000.0 / hz_;
  const auto stats = aggregate();
  for (const LabelStat& s : stats) {
    JsonObj rec;
    rec.str("type", "prof.label")
        .str("label", s.label)
        .num("cpu_self", static_cast<std::int64_t>(s.cpu_self))
        .num("cpu_total", static_cast<std::int64_t>(s.cpu_total))
        .num("wall_self", static_cast<std::int64_t>(s.wall_self))
        .num("wall_total", static_cast<std::int64_t>(s.wall_total))
        .numf("cpu_self_ms", static_cast<double>(s.cpu_self) * period_ms)
        .numf("cpu_total_ms", static_cast<double>(s.cpu_total) * period_ms);
    stats_sink().write(rec.render());
  }
  std::uint64_t cpu = 0;
  std::uint64_t wall = 0;
  for (const LabelStat& s : stats) {
    cpu += s.cpu_self;
    wall += s.wall_self;
  }
  JsonObj sum;
  sum.str("type", "prof.summary")
      .num("hz", hz_)
      .num("labels", static_cast<std::int64_t>(stats.size()))
      .num("cpu_samples", static_cast<std::int64_t>(cpu))
      .num("wall_samples", static_cast<std::int64_t>(wall));
  stats_sink().write(sum.render());
}

void Profiler::render(std::ostream& out) const {
  const double period_ms = hz_ > 0 ? 1000.0 / hz_ : 0.0;
  const auto stats = aggregate();
  std::uint64_t cpu = 0;
  for (const LabelStat& s : stats) cpu += s.cpu_self;
  out << "sampling profile (" << hz_ << " Hz, " << cpu << " cpu samples):\n";
  char line[200];
  std::snprintf(line, sizeof(line), "  %-18s %10s %10s %10s %10s\n", "label",
                "cpu self", "cpu total", "wall self", "wall total");
  out << line;
  for (const LabelStat& s : stats) {
    std::snprintf(line, sizeof(line),
                  "  %-18s %8.0fms %8.0fms %8.0fms %8.0fms\n",
                  s.label.c_str(), static_cast<double>(s.cpu_self) * period_ms,
                  static_cast<double>(s.cpu_total) * period_ms,
                  static_cast<double>(s.wall_self) * period_ms,
                  static_cast<double>(s.wall_total) * period_ms);
    out << line;
  }
}

}  // namespace tsb::obs
