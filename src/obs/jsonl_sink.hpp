#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tsb::obs {

/// One-line JSON object builder for structured forensics records.
///
/// Every record the stats and audit sinks carry is a flat-ish JSON object
/// built field by field; the builder owns escaping and comma placement so
/// emitters never hand-assemble JSON. Methods return *this for chaining:
///
///   JsonObj().str("type", "explore.level").num("frontier", 128).render()
///
/// num() takes std::int64_t (casts at call sites keep overload resolution
/// trivial); raw() splices a pre-rendered JSON value (arrays, nested
/// objects) verbatim.
class JsonObj {
 public:
  JsonObj() : s_("{") {}

  JsonObj& num(std::string_view key, std::int64_t v);
  JsonObj& numf(std::string_view key, double v);
  JsonObj& boolean(std::string_view key, bool v);
  JsonObj& str(std::string_view key, std::string_view v);
  JsonObj& raw(std::string_view key, std::string_view json);

  /// Finish the object. The builder is spent afterwards.
  std::string render();

 private:
  void key(std::string_view k);
  std::string s_;
  bool first_ = true;
};

/// "[1,2,3]" — the array form stats/audit records use for register sets,
/// shard occupancies and input vectors.
std::string json_int_array(const std::vector<int>& xs);
std::string json_u64_array(const std::vector<std::uint64_t>& xs);

namespace detail {
// Plain globals for the same reason as g_trace_enabled: the disabled check
// at an instrumentation site must be one relaxed load, nothing more.
extern std::atomic<bool> g_stats_enabled;
extern std::atomic<bool> g_audit_enabled;
extern std::atomic<bool> g_chaos_enabled;
}  // namespace detail

/// True while per-level exploration stats are being recorded.
inline bool stats_enabled() {
  return detail::g_stats_enabled.load(std::memory_order_relaxed);
}
/// True while the adversary audit trail is being recorded.
inline bool audit_enabled() {
  return detail::g_audit_enabled.load(std::memory_order_relaxed);
}
/// True while chaos-campaign per-run records are being recorded.
inline bool chaos_enabled() {
  return detail::g_chaos_enabled.load(std::memory_order_relaxed);
}

/// A line-oriented JSON sink streaming to a file.
///
/// Unlike the bounded in-memory TraceSink (built for events recorded inside
/// nanosecond-scale operations), a JsonlSink streams: records are rare —
/// one per BFS level, one per adversary decision — and are written through
/// a FILE* under a mutex, so nothing is lost on a crash mid-run and there
/// is no capacity to size. Emitters must gate on stats_enabled() /
/// audit_enabled() before building a record; write() on a closed sink is a
/// counted no-op, never an error.
class JsonlSink {
 public:
  explicit JsonlSink(std::atomic<bool>& gate) : gate_(gate) {}
  ~JsonlSink() { close(); }

  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  /// Truncate `path`, start the clock, raise the gate. Returns false (gate
  /// stays down) if the file cannot be opened.
  bool open(const std::string& path);
  /// Lower the gate, flush and close. Safe to call repeatedly.
  void close();
  bool is_open() const { return gate_.load(std::memory_order_relaxed); }

  /// Nanoseconds since open(); 0 when closed.
  std::uint64_t now_ns() const;

  /// Append one record (a rendered JsonObj) as its own line.
  void write(const std::string& line);

  std::uint64_t lines() const { return lines_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool>& gate_;
  mutable std::mutex mu_;
  std::FILE* f_ = nullptr;
  std::atomic<std::uint64_t> lines_{0};
  std::chrono::steady_clock::time_point epoch_{};
};

/// Process-wide sinks. stats_sink() carries machine-shaped run telemetry
/// (per-BFS-level exploration records, bench phase summaries); audit_sink()
/// carries the adversary's decision trail; chaos_sink() carries the chaos
/// campaign's per-run records. All feed `tsb report`. Chaos records must
/// carry NO timestamps — the determinism tests byte-compare whole files.
JsonlSink& stats_sink();
JsonlSink& audit_sink();
JsonlSink& chaos_sink();

/// Start an audit record: {"type":..., "ts_ns":...}. Callers append their
/// event's fields and write() the result to audit_sink(). Only call when
/// audit_enabled().
inline JsonObj audit_event(std::string_view type) {
  JsonObj o;
  o.str("type", type)
      .num("ts_ns", static_cast<std::int64_t>(audit_sink().now_ns()));
  return o;
}

}  // namespace tsb::obs
