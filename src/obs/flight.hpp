#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace tsb::obs::flight {

/// Typed flight-recorder events. Each carries two int64 payload slots whose
/// meaning is fixed per type (and rendered by `tsb report`):
enum class Ev : std::uint8_t {
  kNone = 0,
  kLevel,         ///< BFS level committed: a=level index, b=frontier size
  kBudgetCheck,   ///< budget poll: a=tracked bytes, b=budget bytes (0=off)
  kBudgetTrip,    ///< budget exhausted: a=tracked bytes, b=budget bytes
  kValencyQuery,  ///< oracle lookup: a=root config id, b=1 if memo hit
  kReachQuery,    ///< shared-graph query: a=node id, b=pbits
  kChaosFault,    ///< rt fault injected: a=thread id, b=fault kind
  kPhase,         ///< adversary stage entered: a=phase code (see phase_name)
  kSteal,         ///< work-stealing: a=thief worker, b=victim worker
  kSpill,         ///< arena spill: a=bytes released, b=total spilled bytes
  kWatch,         ///< telemetry watchdog fired: a=WatchRule, b=tick id
  kCkpt,          ///< checkpoint committed: a=state-file bytes, b=write ms
};

const char* ev_name(Ev ev);
/// Names for Ev::kPhase payloads (0=proposition2, 1=lemma4, 2=lemma3,
/// 3=solo_escape).
const char* phase_name(std::int64_t code);

namespace detail {
extern std::atomic<bool> g_flight_enabled;
extern std::atomic<bool> g_dump_requested;
void record_impl(Ev ev, std::int64_t a, std::int64_t b);
}  // namespace detail

/// Per-thread lock-free ring buffers of the last `ring_events` events each
/// (power of two, default 64k). Recording is wait-free for the owning
/// thread: a steady-clock read plus three relaxed stores into the ring.
/// Rings are registered on a thread's first event and leaked, so a dump
/// triggered from any context can walk every ring; slots are relaxed
/// atomics, making concurrent dumps TSan-clean at the cost of the odd torn
/// event in a mid-write slot (a forensics tool can live with one garbage
/// line in 64k).
void enable(std::size_t ring_events = 1u << 16);
void disable();

inline bool enabled() {
  return detail::g_flight_enabled.load(std::memory_order_relaxed);
}

/// The single instrumentation entry point: one relaxed load when the
/// recorder is off.
inline void record(Ev ev, std::int64_t a = 0, std::int64_t b = 0) {
  if (!enabled()) return;
  detail::record_impl(ev, a, b);
}

std::uint64_t events_recorded();

/// Dump every ring, oldest surviving event first per thread, as JSONL:
/// one {"type":"flight.dump",...} header then {"type":"flight.event",...}
/// lines. Stdio path — not for signal context. False if the file cannot
/// be written.
bool dump(const std::string& path, const char* reason);

/// Where signal-triggered dumps go (also the default `dump()` target the
/// CLI uses at exit). Truncated to an internal fixed buffer so the fatal
/// handler never allocates.
void set_dump_path(const std::string& path);

/// Install SIGUSR1 (request an in-band dump, serviced by the next
/// Heartbeat::beat) and fatal-signal handlers (SIGSEGV/SIGABRT/SIGBUS/
/// SIGFPE: write the rings with raw write(2), restore the default handler,
/// re-raise).
void install_signal_handlers();

/// True if a SIGUSR1 arrived; clears the request and dumps to the
/// configured path. Called from the Heartbeat path — one relaxed load when
/// no request is pending.
bool service_dump_request();

}  // namespace tsb::obs::flight
