#include "obs/timeseries.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>

#include "obs/flight.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/memledger.hpp"
#include "obs/metrics.hpp"
#include "obs/watchdog.hpp"

namespace tsb::obs::telemetry {

namespace detail {
std::atomic<bool> g_telemetry_enabled{false};
}  // namespace detail

namespace {

// All state under one mutex: ticks are heartbeat-cadence rare, and the
// writer may be the main thread, worker 0 of the parallel explorer, or the
// CLI's final-snapshot path.
std::mutex g_mu;
std::FILE* g_file = nullptr;
std::uint64_t g_tick = 0;
std::chrono::steady_clock::time_point g_epoch{};
std::uint64_t g_mem_budget = 0;
std::int64_t (*g_ckpt_age_fn)() = nullptr;
std::uint64_t g_ckpt_interval_ms = 0;

// Previous tick, for the interval rate. Rates only make sense within one
// phase: visited restarts when an engine hands off.
std::string g_prev_phase;
std::int64_t g_prev_visited = -1;
double g_prev_t = 0.0;

void write_line(const std::string& line) {
  std::fwrite(line.data(), 1, line.size(), g_file);
  std::fputc('\n', g_file);
  // Flushed per record: a killed campaign keeps everything up to the last
  // completed interval, and a truncated final line is the worst case the
  // consumers must (and do) tolerate.
  std::fflush(g_file);
}

}  // namespace

bool open(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_file != nullptr) {
    std::fclose(g_file);
    g_file = nullptr;
  }
  g_file = std::fopen(path.c_str(), "w");
  if (g_file == nullptr) {
    detail::g_telemetry_enabled.store(false, std::memory_order_relaxed);
    return false;
  }
  g_tick = 0;
  g_epoch = std::chrono::steady_clock::now();
  g_prev_phase.clear();
  g_prev_visited = -1;
  g_prev_t = 0.0;
  Watchdog::global().reset();
  detail::g_telemetry_enabled.store(true, std::memory_order_relaxed);
  return true;
}

void close() {
  std::lock_guard<std::mutex> lock(g_mu);
  detail::g_telemetry_enabled.store(false, std::memory_order_relaxed);
  if (g_file != nullptr) {
    std::fclose(g_file);
    g_file = nullptr;
  }
}

void set_mem_budget(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_mem_budget = bytes;
}

void set_tick_base(std::uint64_t base) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_tick = base;
}

void set_ckpt_probe(std::int64_t (*age_s)(), std::uint64_t interval_ms) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_ckpt_age_fn = age_s;
  g_ckpt_interval_ms = interval_ms;
}

std::uint64_t ticks() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_tick;
}

void tick(const StatusSnapshot& s) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_file == nullptr) return;

  const double t_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - g_epoch)
                         .count();
  const std::uint64_t id = g_tick++;

  double cps = -1.0;
  if (s.visited >= 0 && g_prev_visited >= 0 && s.phase == g_prev_phase &&
      t_s > g_prev_t && s.visited >= g_prev_visited) {
    cps = static_cast<double>(s.visited - g_prev_visited) / (t_s - g_prev_t);
  }

  MemLedger& ledger = MemLedger::global();
  Registry& reg = Registry::global();

  JsonObj o;
  o.str("type", "telemetry.tick")
      .num("tick", static_cast<std::int64_t>(id))
      .numf("t_s", t_s)
      .str("phase", s.phase);
  if (s.level >= 0) o.num("level", s.level);
  if (s.frontier >= 0) o.num("frontier", s.frontier);
  if (s.visited >= 0) o.num("visited", s.visited);
  if (s.cap >= 0) o.num("cap", s.cap);
  if (cps >= 0) o.numf("cps", cps);
  if (s.steals >= 0) o.num("steals", s.steals);
  if (s.idle_spins >= 0) o.num("idle_spins", s.idle_spins);
  o.num("peak_rss_kb", peak_rss_kb())
      .num("ledger_total", static_cast<std::int64_t>(ledger.total()))
      .raw("ledger", ledger.json())
      .raw("counters", reg.counters_json())
      .raw("gauges", reg.gauges_json());
  write_line(o.render());

  WatchSample w;
  w.tick = id;
  w.t_s = t_s;
  w.phase = s.phase;
  w.visited = s.visited;
  w.frontier = s.frontier;
  w.cps = cps;
  w.idle_spins = s.idle_spins;
  w.mapped_bytes = ledger.get(MemAccount::kArenaMapped);
  w.spill_bytes = ledger.get(MemAccount::kArenaSpill);
  w.ledger_total = ledger.total();
  w.mem_budget = g_mem_budget;
  w.ckpt_age_s = g_ckpt_age_fn != nullptr ? g_ckpt_age_fn() : -1;
  w.ckpt_interval_ms = g_ckpt_interval_ms;

  Watchdog& dog = Watchdog::global();
  for (const WatchAlert& a : dog.observe(w)) {
    const char* rule = watch_rule_name(a.rule);
    JsonObj alert;
    alert.str("type", "watch.alert")
        .str("rule", rule)
        .num("tick", static_cast<std::int64_t>(a.tick))
        .numf("t_s", t_s)
        .str("phase", s.phase)
        .str("detail", a.detail);
    write_line(alert.render());
    std::fprintf(stderr, "[watch +%.1fs] %s: %s (tick %llu)\n", t_s, rule,
                 a.detail.c_str(), static_cast<unsigned long long>(a.tick));
    std::fflush(stderr);
    flight::record(flight::Ev::kWatch, static_cast<std::int64_t>(a.rule),
                   static_cast<std::int64_t>(a.tick));
  }
  for (WatchRule r : dog.cleared_last()) {
    JsonObj clear;
    clear.str("type", "watch.clear")
        .str("rule", watch_rule_name(r))
        .num("tick", static_cast<std::int64_t>(id))
        .numf("t_s", t_s);
    write_line(clear.render());
  }

  g_prev_phase = s.phase;
  g_prev_visited = s.visited;
  g_prev_t = t_s;
}

}  // namespace tsb::obs::telemetry
