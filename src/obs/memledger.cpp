#include "obs/memledger.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "obs/jsonl_sink.hpp"

namespace tsb::obs {

const char* mem_account_name(MemAccount a) {
  switch (a) {
    case MemAccount::kArenaWords: return "arena.words";
    case MemAccount::kArenaTable: return "arena.table";
    case MemAccount::kArenaSpill: return "arena.spill";
    case MemAccount::kArenaMapped: return "arena.mapped";
    case MemAccount::kExploreFrontier: return "explore.frontier";
    case MemAccount::kExploreShards: return "explore.shards";
    case MemAccount::kReachNodes: return "reach.nodes";
    case MemAccount::kReachEdges: return "reach.edges";
    case MemAccount::kGraphSpill: return "graph.spill";
    case MemAccount::kGraphMapped: return "graph.mapped";
    case MemAccount::kReachFacts: return "reach.facts";
    case MemAccount::kReachQuery: return "reach.query";
    case MemAccount::kValencyMemo: return "valency.memo";
    case MemAccount::kCkptState: return "ckpt.state";
    case MemAccount::kCount: break;
  }
  return "?";
}

MemLedger& MemLedger::global() {
  // Leaked like Registry::global(): instrumented code must be able to
  // update accounts during static destruction.
  static MemLedger* ledger = new MemLedger();
  return *ledger;
}

std::uint64_t MemLedger::total() const {
  std::uint64_t t = 0;
  for (const Cell& c : cells_) t += c.cur.load(std::memory_order_relaxed);
  return t;
}

std::uint64_t MemLedger::peak_total() const {
  std::uint64_t t = 0;
  for (const Cell& c : cells_) t += c.peak.load(std::memory_order_relaxed);
  return t;
}

void MemLedger::reset() {
  for (Cell& c : cells_) {
    c.cur.store(0, std::memory_order_relaxed);
    c.peak.store(0, std::memory_order_relaxed);
  }
}

std::vector<MemLedger::Row> MemLedger::snapshot() const {
  std::vector<Row> rows;
  for (int i = 0; i < kMemAccounts; ++i) {
    const auto a = static_cast<MemAccount>(i);
    const Row r{a, get(a), peak(a)};
    if (r.bytes != 0 || r.peak != 0) rows.push_back(r);
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& x, const Row& y) { return x.bytes > y.bytes; });
  return rows;
}

std::string MemLedger::json() const {
  JsonObj o;
  for (const Row& r : snapshot()) {
    o.num(mem_account_name(r.account), static_cast<std::int64_t>(r.bytes));
  }
  return o.render();
}

std::string MemLedger::attribution(int top) const {
  const std::vector<Row> rows = snapshot();
  const std::uint64_t t = total();
  std::string out;
  int shown = 0;
  for (const Row& r : rows) {
    if (shown == top || r.bytes == 0) break;
    if (shown) out += ", ";
    out += mem_account_name(r.account);
    out += ' ';
    out += format_bytes(r.bytes);
    if (t > 0) {
      char pct[16];
      std::snprintf(pct, sizeof(pct), " (%.0f%%)",
                    100.0 * static_cast<double>(r.bytes) /
                        static_cast<double>(t));
      out += pct;
    }
    ++shown;
  }
  return out.empty() ? "no tracked allocations" : out;
}

void MemLedger::render(std::ostream& out) const {
  const std::vector<Row> rows = snapshot();
  const std::uint64_t t = total();
  out << "memory ledger (tracked " << format_bytes(t) << ", tracked peak "
      << format_bytes(peak_total()) << "):\n";
  if (rows.empty()) {
    out << "  (no tracked allocations)\n";
    return;
  }
  for (const Row& r : rows) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-17s %10s  (peak %10s)  %5.1f%%\n",
                  mem_account_name(r.account), format_bytes(r.bytes).c_str(),
                  format_bytes(r.peak).c_str(),
                  t > 0 ? 100.0 * static_cast<double>(r.bytes) /
                              static_cast<double>(t)
                        : 0.0);
    out << line;
  }
}

void MemLedger::emit_record() const {
  if (!stats_enabled()) return;
  JsonObj rec;
  rec.str("type", "ledger")
      .num("total", static_cast<std::int64_t>(total()))
      .num("peak_total", static_cast<std::int64_t>(peak_total()))
      .raw("accounts", json());
  JsonObj peaks;
  for (const Row& r : snapshot()) {
    peaks.num(mem_account_name(r.account), static_cast<std::int64_t>(r.peak));
  }
  rec.raw("peaks", peaks.render());
  stats_sink().write(rec.render());
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.1fGiB",
                  static_cast<double>(bytes) / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fMiB",
                  static_cast<double>(bytes) / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB",
                  static_cast<double>(bytes) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace tsb::obs
