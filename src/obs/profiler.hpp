#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tsb::obs {

namespace prof_detail {
extern std::atomic<bool> g_prof_enabled;
void push(const char* label);
void pop();
}  // namespace prof_detail

/// True while the sampling profiler is armed. Span checks this with one
/// relaxed load; when false the profiler adds zero work anywhere.
inline bool profiler_enabled() {
  return prof_detail::g_prof_enabled.load(std::memory_order_relaxed);
}

/// In-process sampling profiler resolving samples to obs span labels.
///
/// Replaces the out-of-band gprof workflow: no recompilation, no
/// symbolization, works inside the TSan job. Two POSIX interval timers
/// drive it — ITIMER_PROF (SIGPROF) ticks with consumed CPU time and
/// ITIMER_REAL (SIGALRM) with wall time. Each signal handler walks *its
/// own thread's* label stack (maintained by Span push/pop, so the labels
/// are the static strings already in traces and reports) and bumps two
/// per-label counts in a fixed-size per-thread table: `self` for the
/// innermost label, `total` for every distinct label on the stack — the
/// flame-style aggregation without storing stacks.
///
/// Signal-safety rules (documented in DESIGN.md, enforced by construction):
/// the handler touches only lock-free atomics in pre-registered per-thread
/// state — no allocation, no locks, no stdio; threads that never opened a
/// span are counted as "(unlabeled)". Wall samples land on whichever
/// thread the kernel delivers SIGALRM to (the main thread in practice), so
/// wall numbers profile the orchestrating thread, not worker idle time.
class Profiler {
 public:
  struct LabelStat {
    std::string label;
    std::uint64_t cpu_self = 0;   ///< samples with the label innermost
    std::uint64_t cpu_total = 0;  ///< samples with the label anywhere
    std::uint64_t wall_self = 0;
    std::uint64_t wall_total = 0;
  };

  static Profiler& global();

  /// Arm the label stacks, install the SIGPROF/SIGALRM handlers and start
  /// both interval timers at `hz`. False if already running or the timers
  /// cannot be set. Counts from a previous start() are cleared.
  bool start(int hz = 200);
  /// Disarm timers, restore the previous handlers. Counts remain readable.
  void stop();
  bool running() const { return running_; }
  int hz() const { return hz_; }

  std::uint64_t cpu_samples() const;
  std::uint64_t wall_samples() const;

  /// Merged per-label counts across all threads, cpu_self-descending.
  /// Sample counts convert to time as count * (1000 / hz) milliseconds.
  std::vector<LabelStat> aggregate() const;

  /// Write one {"type":"prof.label",...} record per label plus a
  /// {"type":"prof.summary",...} record to the stats sink.
  void emit_jsonl() const;

  /// Human flame-style table (self/total ms per label).
  void render(std::ostream& out) const;

 private:
  Profiler() = default;
  bool running_ = false;
  int hz_ = 0;
};

}  // namespace tsb::obs
