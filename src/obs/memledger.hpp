#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tsb::obs {

/// Subsystem accounts of the memory ledger. Fixed at compile time so an
/// update is an array-indexed relaxed store — owners refresh their account
/// from already-rate-limited code (level boundaries, the every-256-steps
/// budget check), never per element.
enum class MemAccount : int {
  kArenaWords,       ///< BFS ConfigArena resident packed words + scratch
  kArenaTable,       ///< BFS ConfigArena open-addressing visited table
  kArenaSpill,       ///< compressed bytes in arena spill backing files
  kArenaMapped,      ///< mmap'd (clean, file-backed) spill block bytes
  kExploreFrontier,  ///< explorer parent edges + expansion buffers
  kExploreShards,    ///< ParallelExplorer per-shard dedup tables
  kReachNodes,       ///< shared reach graph: projected-config arena
  kReachEdges,       ///< shared reach graph: succ/perm edges + decide flags
  kGraphSpill,       ///< compressed bytes in edge-store spill backing files
  kGraphMapped,      ///< mmap'd (clean, file-backed) edge spill block bytes
  kReachFacts,       ///< shared reach graph: persisted fact map
  kReachQuery,       ///< shared reach graph: per-query entry/edge/mark state
  kValencyMemo,      ///< valency oracle: pair memo + root-id arena
  kCkptState,        ///< last checkpoint state file's on-disk bytes
  kCount
};

constexpr int kMemAccounts = static_cast<int>(MemAccount::kCount);

/// Name of an account as it appears in ledger records, status files and
/// budget reports ("arena.words", "reach.edges", ...).
const char* mem_account_name(MemAccount a);

/// Process-wide registry of per-subsystem byte gauges.
///
/// The ledger answers "which subsystem is eating the budget" — a question
/// raw RSS cannot: it feeds heartbeat lines, the --status-file snapshot,
/// the `ledger` JSONL record, and the exit-4 budget report. Accounts hold
/// the owner's *current* heap bytes (capacities, the same arithmetic as
/// each subsystem's memory_bytes()) plus a high-water mark, so a report
/// rendered after shrink-on-truncation still shows where the peak went.
///
/// Concurrency: set() is a relaxed store plus a racy peak update — a peak
/// may be lost under a concurrent set of the same account, which never
/// happens in practice (each account has one owner) and would only shave
/// the watermark, never corrupt it. Readers see a consistent-enough
/// snapshot for forensics; nothing here is a synchronization point.
class MemLedger {
 public:
  static MemLedger& global();

  void set(MemAccount a, std::uint64_t bytes) {
    Cell& c = cells_[static_cast<int>(a)];
    c.cur.store(bytes, std::memory_order_relaxed);
    if (bytes > c.peak.load(std::memory_order_relaxed)) {
      c.peak.store(bytes, std::memory_order_relaxed);
    }
  }
  std::uint64_t get(MemAccount a) const {
    return cells_[static_cast<int>(a)].cur.load(std::memory_order_relaxed);
  }
  std::uint64_t peak(MemAccount a) const {
    return cells_[static_cast<int>(a)].peak.load(std::memory_order_relaxed);
  }
  /// Sum of current account values (the tracked-heap total heartbeats and
  /// the status file report next to peak RSS).
  std::uint64_t total() const;
  /// Sum of per-account peaks — an upper bound on the tracked peak.
  std::uint64_t peak_total() const;

  /// Zero every account (tests; benches isolating runs).
  void reset();

  struct Row {
    MemAccount account;
    std::uint64_t bytes;
    std::uint64_t peak;
  };
  /// Non-zero accounts, largest current first.
  std::vector<Row> snapshot() const;

  /// {"arena.words":123,...} of non-zero accounts, for the status file and
  /// the `ledger` stats record.
  std::string json() const;

  /// Short one-line attribution for BudgetExhausted messages:
  /// "reach.edges 412.0MiB (54%), reach.nodes 201.3MiB (26%), ...".
  std::string attribution(int top) const;

  /// The exit-4 budget report: one line per non-zero account with current
  /// and peak bytes and the share of the tracked total.
  void render(std::ostream& out) const;

  /// Write a {"type":"ledger",...} record to the stats sink (no-op when
  /// stats are disabled).
  void emit_record() const;

 private:
  struct Cell {
    std::atomic<std::uint64_t> cur{0};
    std::atomic<std::uint64_t> peak{0};
  };
  Cell cells_[kMemAccounts];
};

/// "412.0MiB" / "87.5KiB" / "640B" — shared by the budget report, heartbeat
/// lines and `tsb top`.
std::string format_bytes(std::uint64_t bytes);

}  // namespace tsb::obs
