#include "obs/watchdog.hpp"

#include <algorithm>
#include <cmath>

#include "obs/memledger.hpp"

namespace tsb::obs {

const char* watch_rule_name(WatchRule r) {
  switch (r) {
    case WatchRule::kThroughputCollapse: return "throughput_collapse";
    case WatchRule::kSpillThrash: return "spill_thrash";
    case WatchRule::kStealStarvation: return "steal_starvation";
    case WatchRule::kLedgerRunaway: return "ledger_runaway";
    case WatchRule::kCheckpointStall: return "checkpoint_stall";
    case WatchRule::kCount: break;
  }
  return "?";
}

Watchdog& Watchdog::global() {
  // Leaked for the same reason as Registry::global(): alerts can be read
  // from status publishes during arbitrary-lifetime teardown.
  static Watchdog* w = new Watchdog;
  return *w;
}

bool Watchdog::collapse_now(std::string* detail) const {
  const WatchSample& cur = win_.back();
  if (cur.cps < 0) return false;
  // Trailing median of the window's earlier rate samples; the current one
  // is the accused and does not vote.
  std::vector<double> hist;
  for (std::size_t i = 0; i + 1 < win_.size(); ++i) {
    if (win_[i].cps >= 0) hist.push_back(win_[i].cps);
  }
  if (static_cast<int>(hist.size()) < opts_.min_samples) return false;
  std::nth_element(hist.begin(), hist.begin() + hist.size() / 2, hist.end());
  const double median = hist[hist.size() / 2];
  if (median <= 0 || cur.cps >= opts_.collapse_frac * median) return false;
  *detail = "rate " + std::to_string(static_cast<std::int64_t>(cur.cps)) +
            " configs/s under " +
            std::to_string(static_cast<int>(opts_.collapse_frac * 100)) +
            "% of trailing median " +
            std::to_string(static_cast<std::int64_t>(median));
  return true;
}

bool Watchdog::thrash_now(std::string* detail) const {
  if (static_cast<int>(win_.size()) < opts_.min_samples) return false;
  std::uint64_t churn = 0;
  std::uint64_t peak_mapped = 0;
  for (std::size_t i = 0; i < win_.size(); ++i) {
    peak_mapped = std::max(peak_mapped, win_[i].mapped_bytes);
    if (i == 0) continue;
    const std::uint64_t a = win_[i - 1].mapped_bytes;
    const std::uint64_t b = win_[i].mapped_bytes;
    churn += b > a ? b - a : a - b;
  }
  if (peak_mapped == 0 ||
      static_cast<double>(churn) <
          opts_.thrash_churn_factor * static_cast<double>(peak_mapped)) {
    return false;
  }
  const std::int64_t v0 = win_.front().visited;
  const std::int64_t v1 = win_.back().visited;
  if (v0 < 0 || v1 < 0) return false;
  const double growth = static_cast<double>(v1 - v0);
  if (growth > opts_.flat_visited_frac *
                   static_cast<double>(std::max<std::int64_t>(v1, 1))) {
    return false;
  }
  *detail = "mapped-byte churn " + std::to_string(churn) + " B vs peak " +
            std::to_string(peak_mapped) + " B with visited growth " +
            std::to_string(v1 - v0) + " over the window";
  return true;
}

bool Watchdog::starvation_now(std::string* detail) const {
  const int need = opts_.starvation_run + 1;
  if (static_cast<int>(win_.size()) < need) return false;
  const std::size_t first = win_.size() - static_cast<std::size_t>(need);
  for (std::size_t i = first; i < win_.size(); ++i) {
    if (win_[i].idle_spins < 0 || win_[i].frontier <= 0) return false;
    if (i > first && win_[i].idle_spins <= win_[i - 1].idle_spins) {
      return false;
    }
  }
  const std::int64_t growth =
      win_.back().idle_spins - win_[first].idle_spins;
  if (growth < opts_.starvation_min_spins) return false;
  *detail = "idle spins grew " + std::to_string(growth) + " over " +
            std::to_string(opts_.starvation_run) +
            " intervals with frontier " + std::to_string(win_.back().frontier);
  return true;
}

bool Watchdog::runaway_now(std::string* detail) const {
  const WatchSample& cur = win_.back();
  if (cur.mem_budget == 0 || win_.size() < 2) return false;
  if (cur.ledger_total >= cur.mem_budget) {
    *detail = "tracked " + std::to_string(cur.ledger_total) +
              " B at/over budget " + std::to_string(cur.mem_budget) + " B";
    return true;
  }
  const WatchSample& first = win_.front();
  const double dt = cur.t_s - first.t_s;
  if (dt <= 0 || cur.ledger_total <= first.ledger_total) return false;
  const double rate =
      static_cast<double>(cur.ledger_total - first.ledger_total) / dt;
  const double eta =
      static_cast<double>(cur.mem_budget - cur.ledger_total) / rate;
  if (eta >= opts_.runaway_eta_s) return false;
  *detail = "tracked bytes growing " +
            std::to_string(static_cast<std::int64_t>(rate)) +
            " B/s, projected exit-4 in " +
            std::to_string(static_cast<std::int64_t>(eta)) + " s (" +
            format_bytes(cur.mem_budget - cur.ledger_total) + " headroom)";
  return true;
}

bool Watchdog::ckpt_stall_now(std::string* detail) const {
  const WatchSample& cur = win_.back();
  // Only armed when a wall-clock cadence is configured and the probe is
  // live; an expansion-count-only cadence has no wall-clock expectation.
  if (cur.ckpt_interval_ms == 0 || cur.ckpt_age_s < 0) return false;
  const double age_s = static_cast<double>(cur.ckpt_age_s);
  const double expect_s =
      static_cast<double>(cur.ckpt_interval_ms) / 1000.0;
  if (age_s < opts_.ckpt_stall_min_s ||
      age_s < opts_.ckpt_stall_factor * expect_s) {
    return false;
  }
  *detail = "last checkpoint " + std::to_string(cur.ckpt_age_s) +
            " s ago vs configured interval " +
            std::to_string(static_cast<std::int64_t>(expect_s)) +
            " s (engine not reaching a quiescent point, or writes stuck)";
  return true;
}

std::vector<WatchAlert> Watchdog::observe(const WatchSample& s) {
  std::lock_guard<std::mutex> lock(mu_);
  // The window is per phase: median-rate and flat-growth comparisons are
  // meaningless across an engine handoff.
  if (!win_.empty() && win_.back().phase != s.phase) win_.clear();
  win_.push_back(s);
  while (static_cast<int>(win_.size()) >
         std::max(opts_.window, opts_.starvation_run + 1)) {
    win_.pop_front();
  }

  struct RuleEval {
    WatchRule rule;
    bool (Watchdog::*now)(std::string*) const;
  };
  static constexpr RuleEval kRules[] = {
      {WatchRule::kThroughputCollapse, &Watchdog::collapse_now},
      {WatchRule::kSpillThrash, &Watchdog::thrash_now},
      {WatchRule::kStealStarvation, &Watchdog::starvation_now},
      {WatchRule::kLedgerRunaway, &Watchdog::runaway_now},
      {WatchRule::kCheckpointStall, &Watchdog::ckpt_stall_now},
  };

  std::vector<WatchAlert> fired;
  cleared_.clear();
  for (const RuleEval& r : kRules) {
    const int idx = static_cast<int>(r.rule);
    std::string detail;
    const bool cond = (this->*r.now)(&detail);
    if (cond && !latched_[idx]) {
      latched_[idx] = true;
      episode_tick_[idx] = s.tick;
      ++fires_[idx];
      fired.push_back({r.rule, s.tick, std::move(detail)});
    } else if (!cond && latched_[idx]) {
      latched_[idx] = false;
      cleared_.push_back(r.rule);
    }
  }
  return fired;
}

bool Watchdog::active(WatchRule r) const {
  std::lock_guard<std::mutex> lock(mu_);
  return latched_[static_cast<int>(r)];
}

std::vector<WatchRule> Watchdog::active_rules() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WatchRule> out;
  for (int i = 0; i < kWatchRules; ++i) {
    if (latched_[i]) out.push_back(static_cast<WatchRule>(i));
  }
  return out;
}

std::vector<WatchRule> Watchdog::cleared_last() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cleared_;
}

std::uint64_t Watchdog::fires(WatchRule r) const {
  std::lock_guard<std::mutex> lock(mu_);
  return fires_[static_cast<int>(r)];
}

void Watchdog::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  win_.clear();
  cleared_.clear();
  for (int i = 0; i < kWatchRules; ++i) {
    latched_[i] = false;
    episode_tick_[i] = 0;
    fires_[i] = 0;
  }
}

}  // namespace tsb::obs
