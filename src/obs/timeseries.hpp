#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/status.hpp"

namespace tsb::obs::telemetry {

namespace detail {
extern std::atomic<bool> g_telemetry_enabled;
}  // namespace detail

/// True while a --telemetry file is open. One relaxed load, so the
/// Heartbeat path can consult it unconditionally.
inline bool enabled() {
  return detail::g_telemetry_enabled.load(std::memory_order_relaxed);
}

/// Open (truncating) the telemetry timeline file and start the clock.
/// Returns false (telemetry stays off) when the file cannot be opened.
/// Resets the tick counter and the global watchdog: a file is one run.
bool open(const std::string& path);

/// Final flush + close. Safe to call repeatedly or when never opened.
void close();

/// Memory budget the ledger-runaway watchdog projects against (the CLI
/// forwards --mem-budget). 0 disables that rule.
void set_mem_budget(std::uint64_t bytes);

/// First tick id the next ticks will use. A resumed run passes the tick
/// count recorded in the checkpoint manifest so tick ids stay monotonic
/// across the interruption — `tsb report` can concatenate the original and
/// resumed timelines and still assert a strictly increasing sequence.
void set_tick_base(std::uint64_t base);

/// Register the checkpoint-age probe the checkpoint-stall watchdog rule
/// samples each tick: `age_s` returns seconds since the last successful
/// checkpoint write (-1 = checkpointing disabled), `interval_ms` is the
/// configured cadence (0 = no wall-clock cadence, rule off). Pass
/// (nullptr, 0) to unregister.
void set_ckpt_probe(std::int64_t (*age_s)(), std::uint64_t interval_ms);

/// Append one self-contained {"type":"telemetry.tick",...} record — phase,
/// level/frontier/visited/cap from the snapshot, interval configs/sec,
/// every non-zero metrics-registry counter and gauge, the full memory
/// ledger, and peak RSS — then run the watchdog over the updated window,
/// appending {"type":"watch.alert"/"watch.clear",...} records, a stderr
/// warning and a flight-recorder event for every episode edge.
///
/// Riding the Heartbeat cadence keeps this off the hot path: callers are
/// already rate-limited to the progress interval. Each record is written
/// and flushed as one line, so a run killed mid-campaign loses at most the
/// interval since the last tick; tick ids are monotonic within the file.
void tick(const StatusSnapshot& s);

/// Ticks written since open().
std::uint64_t ticks();

}  // namespace tsb::obs::telemetry
