#include "obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

namespace tsb::obs {

namespace detail {
thread_local int tls_thread_id = -1;

namespace {
std::atomic<int> next_thread_id{0};
}  // namespace

int assign_thread_id() {
  tls_thread_id = next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return tls_thread_id;
}
}  // namespace detail

void set_thread_id(int id) { detail::tls_thread_id = id; }

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) {
    for (const auto& b : s.bucket) n += b.load(std::memory_order_relaxed);
  }
  return n;
}

std::uint64_t Histogram::sum() const {
  std::uint64_t t = 0;
  for (const auto& s : shards_) t += s.sum.load(std::memory_order_relaxed);
  return t;
}

std::uint64_t Histogram::count_in_bucket(int b) const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) {
    n += s.bucket[b].load(std::memory_order_relaxed);
  }
  return n;
}

std::uint64_t Histogram::percentile_upper(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  // Rank of the p-th percentile sample, 1-based, clamped to [1, n].
  std::uint64_t rank = static_cast<std::uint64_t>(p / 100.0 * n + 0.5);
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += count_in_bucket(b);
    if (seen >= rank) return bucket_hi(b);
  }
  return bucket_hi(kBuckets - 1);
}

void Histogram::reset() {
  for (auto& s : shards_) {
    for (auto& b : s.bucket) b.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::global() {
  // Intentionally leaked: metrics are flushed from destructors of
  // arbitrary-lifetime objects, and a registry that dies at static
  // destruction would leave them dangling references.
  static Registry* r = new Registry;
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string Registry::json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    const std::uint64_t v = c->value();
    if (v == 0) continue;
    out << (first ? "" : ",") << '"' << name << "\":" << v;
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (g->value() == 0 && g->max() == 0) continue;
    out << (first ? "" : ",") << '"' << name << "\":{\"last\":" << g->value()
        << ",\"max\":" << g->max() << '}';
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const std::uint64_t n = h->count();
    if (n == 0) continue;
    out << (first ? "" : ",") << '"' << name << "\":{\"count\":" << n
        << ",\"sum\":" << h->sum() << ",\"mean\":"
        << static_cast<double>(h->sum()) / static_cast<double>(n)
        << ",\"p50_le\":" << h->percentile_upper(50)
        << ",\"p99_le\":" << h->percentile_upper(99) << '}';
    first = false;
  }
  out << "}}";
  return out.str();
}

std::string Registry::counters_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const auto& [name, c] : counters_) {
    const std::uint64_t v = c->value();
    if (v == 0) continue;
    out << (first ? "" : ",") << '"' << name << "\":" << v;
    first = false;
  }
  out << '}';
  return out.str();
}

std::string Registry::gauges_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const auto& [name, g] : gauges_) {
    const std::int64_t v = g->value();
    if (v == 0) continue;
    out << (first ? "" : ",") << '"' << name << "\":" << v;
    first = false;
  }
  out << '}';
  return out.str();
}

std::int64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::int64_t>(ru.ru_maxrss);  // KiB on Linux
#else
  return 0;
#endif
}

void emit_metrics(const std::string& who) {
  const std::string line =
      "{\"metrics_for\":\"" + who + "\"," + Registry::global().json().substr(1);
  std::cout << line << "\n";
  if (const char* path = std::getenv("TSB_METRICS_OUT")) {
    if (std::FILE* f = std::fopen(path, "a")) {
      std::fputs(line.c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
  }
}

}  // namespace tsb::obs
