#include "obs/progress.hpp"

#include <atomic>
#include <cstdio>

namespace tsb::obs {

namespace {
std::atomic<bool> progress_on{false};
}

void set_progress(bool on) {
  progress_on.store(on, std::memory_order_relaxed);
}

bool progress_enabled() {
  return progress_on.load(std::memory_order_relaxed);
}

Heartbeat::Heartbeat(const char* what, std::chrono::milliseconds interval)
    : what_(what),
      interval_(interval),
      start_(std::chrono::steady_clock::now()),
      last_(start_) {}

void Heartbeat::beat(const std::function<std::string()>& line) {
  if (!progress_enabled()) return;
  const auto now = std::chrono::steady_clock::now();
  if (now - last_ < interval_) return;
  last_ = now;
  const double secs = std::chrono::duration<double>(now - start_).count();
  std::fprintf(stderr, "[%s +%.1fs] %s\n", what_, secs, line().c_str());
  std::fflush(stderr);
}

void Heartbeat::flush(const std::string& line) {
  if (!progress_enabled()) return;
  const auto now = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(now - start_).count();
  std::fprintf(stderr, "[%s +%.1fs] %s\n", what_, secs, line.c_str());
  std::fflush(stderr);
}

}  // namespace tsb::obs
