#include "obs/progress.hpp"

#include <atomic>
#include <cstdio>

#include "obs/flight.hpp"
#include "obs/memledger.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace tsb::obs {

namespace {
std::atomic<bool> progress_on{false};
std::atomic<std::int64_t> interval_ms{1000};
}  // namespace

void set_progress(bool on) {
  progress_on.store(on, std::memory_order_relaxed);
}

bool progress_enabled() {
  return progress_on.load(std::memory_order_relaxed);
}

void set_progress_interval(std::chrono::milliseconds interval) {
  interval_ms.store(interval.count(), std::memory_order_relaxed);
}

std::chrono::milliseconds progress_interval() {
  return std::chrono::milliseconds(
      interval_ms.load(std::memory_order_relaxed));
}

Heartbeat::Heartbeat(const char* what) : Heartbeat(what, progress_interval()) {}

Heartbeat::Heartbeat(const char* what, std::chrono::milliseconds interval)
    : what_(what),
      interval_(interval),
      start_(std::chrono::steady_clock::now()),
      last_(start_) {}

void Heartbeat::beat(const std::function<std::string()>& line) {
  beat(line, nullptr);
}

void Heartbeat::beat(const std::function<std::string()>& line,
                     const StatusFn& status) {
  // A SIGUSR1 dump request is served from here even when neither progress
  // nor a status file is on: the beat is the one rate-limited hook every
  // long-running engine already calls.
  flight::service_dump_request();
  const bool prog = progress_enabled();
  const bool stat = status_enabled();
  const bool telem = telemetry::enabled();
  if (!prog && !stat && !telem) return;
  const auto now = std::chrono::steady_clock::now();
  if (now - last_ < interval_) return;
  last_ = now;
  // Mid-level RSS sample: level boundaries can be minutes apart at n >= 6,
  // and a blowup inside one must show in progress lines and the status
  // file, not only post mortem.
  const std::int64_t rss = peak_rss_kb();
  static Gauge& rss_gauge = Registry::global().gauge("process.peak_rss_kb");
  rss_gauge.set(rss);
  if (prog) {
    const double secs = std::chrono::duration<double>(now - start_).count();
    std::fprintf(stderr, "[%s +%.1fs] %s rss=%lldKiB tracked=%s\n", what_,
                 secs, line().c_str(), static_cast<long long>(rss),
                 format_bytes(MemLedger::global().total()).c_str());
    std::fflush(stderr);
  }
  if (stat || telem) {
    StatusSnapshot s;
    s.phase = what_;
    if (status) status(s);
    if (stat) publish_status(s);
    if (telem) telemetry::tick(s);
  }
}

void Heartbeat::flush(const std::string& line) {
  if (!progress_enabled()) return;
  const auto now = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(now - start_).count();
  std::fprintf(stderr, "[%s +%.1fs] %s\n", what_, secs, line.c_str());
  std::fflush(stderr);
}

}  // namespace tsb::obs
