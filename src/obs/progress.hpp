#pragma once

#include <chrono>
#include <functional>
#include <string>

namespace tsb::obs {

/// Global switch for progress heartbeats (CLI --progress). Off by default:
/// library code calls Heartbeat::beat unconditionally and the disabled
/// check is a single relaxed load.
void set_progress(bool on);
bool progress_enabled();

/// Rate-limited progress line for long computations. A caller in a hot
/// loop calls beat() with a lambda that renders the line; the lambda runs
/// only when progress is enabled and at most once per interval, so the
/// rendering cost (string building) is never paid on the fast path.
///
///   obs::Heartbeat hb("model-check");
///   ... hb.beat([&] { return "configs=" + std::to_string(n); });
///
/// Lines go to stderr so they interleave with, but do not corrupt,
/// machine-readable stdout.
class Heartbeat {
 public:
  explicit Heartbeat(
      const char* what,
      std::chrono::milliseconds interval = std::chrono::milliseconds(1000));

  void beat(const std::function<std::string()>& line);

  /// Emit unconditionally (end-of-phase summary), if progress is enabled.
  void flush(const std::string& line);

 private:
  const char* what_;
  std::chrono::milliseconds interval_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_;
};

}  // namespace tsb::obs
