#pragma once

#include <chrono>
#include <functional>
#include <string>

#include "obs/status.hpp"

namespace tsb::obs {

/// Global switch for progress heartbeats (CLI --progress). Off by default:
/// library code calls Heartbeat::beat unconditionally and the disabled
/// check is a single relaxed load.
void set_progress(bool on);
bool progress_enabled();

/// Process-wide default Heartbeat interval (CLI --progress-interval-ms).
/// Heartbeats constructed without an explicit interval pick it up; 1000ms
/// until overridden.
void set_progress_interval(std::chrono::milliseconds interval);
std::chrono::milliseconds progress_interval();

/// Rate-limited progress line for long computations. A caller in a hot
/// loop calls beat() with a lambda that renders the line; the lambda runs
/// only when progress is enabled and at most once per interval, so the
/// rendering cost (string building) is never paid on the fast path.
///
///   obs::Heartbeat hb("model-check");
///   ... hb.beat([&] { return "configs=" + std::to_string(n); });
///
/// Lines go to stderr so they interleave with, but do not corrupt,
/// machine-readable stdout.
///
/// The beat is also the engine's slow-path tick: it samples peak RSS into
/// the "process.peak_rss_kb" gauge (so mid-level blowups are visible, not
/// just level boundaries), services pending SIGUSR1 flight-recorder dumps,
/// and — when the caller supplies a status callback — publishes the
/// --status-file snapshot at the same cadence.
class Heartbeat {
 public:
  /// Uses the process-wide progress_interval().
  explicit Heartbeat(const char* what);
  Heartbeat(const char* what, std::chrono::milliseconds interval);

  using StatusFn = std::function<void(StatusSnapshot&)>;

  void beat(const std::function<std::string()>& line);
  /// Same, and fill `status` into the live status file when one is
  /// configured. The callback runs under the same rate limit as the line.
  void beat(const std::function<std::string()>& line, const StatusFn& status);

  /// Emit unconditionally (end-of-phase summary), if progress is enabled.
  void flush(const std::string& line);

 private:
  const char* what_;
  std::chrono::milliseconds interval_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_;
};

}  // namespace tsb::obs
