#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace tsb::obs {

namespace detail {
// The assigned-id fast path lives in the header: counting happens inside
// operations that cost a handful of nanoseconds, so the id lookup cannot
// afford an out-of-line call.
extern thread_local int tls_thread_id;
int assign_thread_id();
}  // namespace detail

/// Dense per-thread id used to pick counter shards and to label trace
/// events. Assigned lazily on first use; rt::run_threads overrides it with
/// the logical process id so trace timelines line up with algorithm
/// processes rather than OS scheduling accidents.
inline int thread_id() {
  const int id = detail::tls_thread_id;
  return id >= 0 ? id : detail::assign_thread_id();
}
void set_thread_id(int id);

/// A monotonically increasing counter with per-thread sharded accumulation.
///
/// Each shard lives on its own cache line, so counting from inside a
/// contended algorithm does not add coherence traffic on a line any other
/// thread touches — instrumentation must not perturb the contention being
/// measured. The bump is a relaxed load+store rather than a locked RMW:
/// thread ids are dense, so shards are single-writer whenever at most
/// kShards threads are live (every workload here), making the count exact
/// without putting a locked instruction inside the paths being measured.
/// With more threads than shards, colliding writers may lose increments —
/// still atomic per access (TSan-clean), and acceptable for a statistic.
/// Reads merge the shards; no torn values, no ordering claims.
class Counter {
 public:
  static constexpr int kShards = 16;  // power of two

  void add(std::uint64_t delta = 1) {
    auto& v = shards_[static_cast<unsigned>(thread_id()) & (kShards - 1)].v;
    v.store(v.load(std::memory_order_relaxed) + delta,
            std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Last-value gauge that also remembers the maximum it ever held.
class Gauge {
 public:
  void set(std::int64_t x) {
    v_.store(x, std::memory_order_relaxed);
    std::int64_t m = max_.load(std::memory_order_relaxed);
    while (x > m &&
           !max_.compare_exchange_weak(m, x, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void reset() {
    v_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Log-scale (power-of-two bucket) histogram with sharded accumulation.
///
/// Bucket b holds samples x with bit_width(x) == b, i.e. bucket 0 is {0},
/// bucket 1 is {1}, bucket 2 is [2,3], bucket 3 is [4,7], ... bucket 64 is
/// the top half of the uint64 range. Log buckets keep record() branch-free
/// and cheap while still answering the questions benches ask (orders of
/// magnitude, tail quantile bounds).
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  static int bucket_of(std::uint64_t x) {
    return static_cast<int>(std::bit_width(x));
  }
  /// Smallest / largest value that lands in bucket b.
  static std::uint64_t bucket_lo(int b) {
    return b == 0 ? 0 : 1ull << (b - 1);
  }
  static std::uint64_t bucket_hi(int b) {
    return b == 0 ? 0 : b >= 64 ? ~0ull : (1ull << b) - 1;
  }

  void record(std::uint64_t x) {
    Shard& s = shards_[static_cast<unsigned>(thread_id()) & (kShards - 1)];
    s.bucket[bucket_of(x)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(x, std::memory_order_relaxed);
  }

  std::uint64_t count() const;
  std::uint64_t sum() const;
  std::uint64_t count_in_bucket(int b) const;
  /// Upper bound of the bucket containing the p-th percentile sample
  /// (p in [0,100]); 0 if empty. A bound, not an interpolation — log
  /// buckets only localize quantiles to a factor of two.
  std::uint64_t percentile_upper(double p) const;
  void reset();

 private:
  static constexpr int kShards = 8;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> bucket[kBuckets] = {};
    std::atomic<std::uint64_t> sum{0};
  };
  Shard shards_[kShards];
};

/// Process-wide registry of named metrics.
///
/// Registration takes a mutex; the returned references are stable for the
/// life of the process, so hot paths look a metric up once (function-local
/// static) and then touch only relaxed atomics. Names are dotted paths
/// ("sim.steps.write") and become JSON keys on export.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zero every registered metric (benches isolate phases with this).
  void reset();

  /// One-line JSON object of every non-zero metric:
  ///   {"counters":{...},"gauges":{...},"histograms":{...}}
  /// Gauges export {"last":v,"max":m}; histograms export count, sum, mean
  /// and p50/p99 upper bounds.
  std::string json() const;

  /// Flat {"name":value} objects of every non-zero counter / every gauge
  /// with a non-zero last value — the delta-friendly shape the telemetry
  /// time-series embeds per tick (cumulative values; consumers diff).
  std::string counters_json() const;
  std::string gauges_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-wide peak resident set size in KiB (getrusage), 0 where
/// unavailable. The explorers publish it per BFS level as the
/// "process.peak_rss_kb" gauge so memory blowups are visible in-flight,
/// not only post-mortem.
std::int64_t peak_rss_kb();

/// Print the process's metrics as a single JSON line on stdout, tagged with
/// `who` — every bench binary calls this last, giving perf-tracking scripts
/// one greppable machine-readable record per run. When the TSB_METRICS_OUT
/// environment variable names a file, the line is also appended there.
void emit_metrics(const std::string& who);

}  // namespace tsb::obs
