#include "obs/trace_sink.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "obs/metrics.hpp"

namespace tsb::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

TraceSink& TraceSink::global() {
  // Leaked for the same reason as Registry::global(): instrumentation in
  // destructors must never observe a dead sink.
  static TraceSink* sink = new TraceSink;
  return *sink;
}

void TraceSink::enable(std::size_t capacity) {
  buf_.assign(capacity, TraceEvent{});
  head_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  for (auto& d : dropped_by_) d.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  detail::g_trace_enabled.store(true, std::memory_order_release);
}

void TraceSink::disable() {
  detail::g_trace_enabled.store(false, std::memory_order_release);
  // Surface the recording's fate where machines look for it: the metrics
  // JSON line (zero-valued gauges are elided by Registry::json, so a clean
  // run adds only the event count).
  Registry& reg = Registry::global();
  reg.gauge("obs.trace.events").set(static_cast<std::int64_t>(size()));
  reg.gauge("obs.trace.dropped.span")
      .set(static_cast<std::int64_t>(dropped(Ph::kComplete)));
  reg.gauge("obs.trace.dropped.instant")
      .set(static_cast<std::int64_t>(dropped(Ph::kInstant)));
  reg.gauge("obs.trace.dropped.counter")
      .set(static_cast<std::int64_t>(dropped(Ph::kCounter)));
}

std::uint64_t TraceSink::now_ns() const {
  if (!enabled()) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceSink::record(const TraceEvent& ev) {
  const std::size_t idx = head_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= buf_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    dropped_by_[ph_index(ev.ph)].fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf_[idx] = ev;
}

std::size_t TraceSink::size() const {
  return std::min(head_.load(std::memory_order_relaxed), buf_.size());
}

namespace {
// Event names are static identifiers (no quotes/backslashes), but escape
// defensively anyway so a stray name cannot corrupt the JSON.
void write_escaped(std::ostream& out, const char* s) {
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out << '\\';
    out << *s;
  }
}

void write_event_fields(std::ostream& out, const TraceEvent& ev, double scale,
                        const char* ts_key, const char* dur_key) {
  out << "{\"name\":\"";
  write_escaped(out, ev.name ? ev.name : "?");
  out << "\",\"ph\":\"" << static_cast<char>(ev.ph) << "\",\"pid\":1,\"tid\":"
      << ev.tid << ",\"" << ts_key << "\":"
      << static_cast<std::uint64_t>(static_cast<double>(ev.ts_ns) * scale);
  if (ev.ph == Ph::kComplete) {
    out << ",\"" << dur_key << "\":"
        << static_cast<std::uint64_t>(static_cast<double>(ev.dur_ns) * scale);
  }
  if (ev.ph == Ph::kCounter) {
    // The counter's track value lives in args keyed by the event name.
    out << ",\"args\":{\"";
    write_escaped(out, ev.name ? ev.name : "?");
    out << "\":" << ev.value << '}';
  } else {
    out << ",\"args\":{\"value\":" << ev.value << '}';
  }
  if (ev.ph == Ph::kInstant) out << ",\"s\":\"t\"";
  out << '}';
}
}  // namespace

void TraceSink::write_chrome_trace(std::ostream& out) const {
  const std::size_t n = size();
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) out << ",\n";
    write_event_fields(out, buf_[i], 1e-3, "ts", "dur");
  }
  out << "]}\n";
}

void TraceSink::write_jsonl(std::ostream& out) const {
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    write_event_fields(out, buf_[i], 1.0, "ts_ns", "dur_ns");
    out << '\n';
  }
}

bool TraceSink::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  if (path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0) {
    write_jsonl(out);
  } else {
    write_chrome_trace(out);
  }
  return out.good();
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  const std::size_t n = size();
  return std::vector<TraceEvent>(buf_.begin(),
                                 buf_.begin() + static_cast<std::ptrdiff_t>(n));
}

}  // namespace tsb::obs
