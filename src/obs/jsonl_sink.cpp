#include "obs/jsonl_sink.hpp"

namespace tsb::obs {

namespace detail {
std::atomic<bool> g_stats_enabled{false};
std::atomic<bool> g_audit_enabled{false};
std::atomic<bool> g_chaos_enabled{false};
}  // namespace detail

void JsonObj::key(std::string_view k) {
  if (!first_) s_ += ',';
  first_ = false;
  s_ += '"';
  s_.append(k);
  s_ += "\":";
}

JsonObj& JsonObj::num(std::string_view k, std::int64_t v) {
  key(k);
  s_ += std::to_string(v);
  return *this;
}

JsonObj& JsonObj::numf(std::string_view k, double v) {
  key(k);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  s_ += buf;
  return *this;
}

JsonObj& JsonObj::boolean(std::string_view k, bool v) {
  key(k);
  s_ += v ? "true" : "false";
  return *this;
}

JsonObj& JsonObj::str(std::string_view k, std::string_view v) {
  key(k);
  s_ += '"';
  for (char c : v) {
    if (c == '"' || c == '\\') s_ += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      s_ += ' ';  // control characters never appear in our strings; blunt
      continue;   // them rather than grow an escaper nothing needs
    }
    s_ += c;
  }
  s_ += '"';
  return *this;
}

JsonObj& JsonObj::raw(std::string_view k, std::string_view json) {
  key(k);
  s_.append(json);
  return *this;
}

std::string JsonObj::render() {
  s_ += '}';
  return std::move(s_);
}

std::string json_int_array(const std::vector<int>& xs) {
  std::string s = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) s += ',';
    s += std::to_string(xs[i]);
  }
  return s + "]";
}

std::string json_u64_array(const std::vector<std::uint64_t>& xs) {
  std::string s = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) s += ',';
    s += std::to_string(xs[i]);
  }
  return s + "]";
}

bool JsonlSink::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (f_) {
    std::fclose(f_);
    f_ = nullptr;
  }
  f_ = std::fopen(path.c_str(), "w");
  if (!f_) return false;
  lines_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  gate_.store(true, std::memory_order_release);
  return true;
}

void JsonlSink::close() {
  gate_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  if (f_) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

std::uint64_t JsonlSink::now_ns() const {
  if (!is_open()) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void JsonlSink::write(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!f_) return;
  std::fwrite(line.data(), 1, line.size(), f_);
  std::fputc('\n', f_);
  lines_.fetch_add(1, std::memory_order_relaxed);
}

JsonlSink& stats_sink() {
  // Leaked like Registry::global(): records may be written from object
  // destructors at shutdown.
  static JsonlSink* sink = new JsonlSink(detail::g_stats_enabled);
  return *sink;
}

JsonlSink& audit_sink() {
  static JsonlSink* sink = new JsonlSink(detail::g_audit_enabled);
  return *sink;
}

JsonlSink& chaos_sink() {
  static JsonlSink* sink = new JsonlSink(detail::g_chaos_enabled);
  return *sink;
}

}  // namespace tsb::obs
