#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace tsb::obs {

/// Fields a long-running engine contributes to the --status-file snapshot.
/// Negative values mean "not applicable" and are omitted from the JSON.
struct StatusSnapshot {
  const char* phase = "";        ///< "explore", "valency.reach", ...
  std::int64_t level = -1;       ///< current BFS level
  std::int64_t frontier = -1;    ///< configurations awaiting expansion
  std::int64_t visited = -1;     ///< configurations/nodes so far
  std::int64_t cap = -1;         ///< configuration cap (drives ETA-to-cap)
  std::int64_t steals = -1;      ///< work-stealing: successful steals so far
  std::int64_t idle_spins = -1;  ///< work-stealing: out-of-work spins so far
};

namespace detail {
extern std::atomic<bool> g_status_enabled;
}  // namespace detail

/// True while a --status-file is configured. One relaxed load, so the
/// Heartbeat path can consult it unconditionally.
inline bool status_enabled() {
  return detail::g_status_enabled.load(std::memory_order_relaxed);
}

/// Configure (or, with "", disable) the live status file. The file is
/// atomically rewritten on every publish: the snapshot is written to
/// `path.tmp` and rename(2)d over `path`, so a reader (`tsb top`, a
/// dashboard poller) never sees a torn JSON document.
void set_status_file(const std::string& path);

/// Wall-clock deadline for the ETA-to-deadline projection (the CLI sets it
/// from --time-budget-ms). 0 clears it.
void set_status_deadline_ms(std::uint64_t ms_from_now);

/// Write one snapshot. Callers are expected to be rate-limited already
/// (Heartbeat::beat publishes at the progress interval); the JSON also
/// carries uptime, configs/sec (visited / uptime), ETA projections, the
/// memory-ledger breakdown and peak RSS. No-op when no file is set.
void publish_status(const StatusSnapshot& s);

}  // namespace tsb::obs
