#include "obs/status.hpp"

#include <cstdio>
#include <chrono>
#include <mutex>

#include <vector>

#include "obs/flight.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/memledger.hpp"
#include "obs/metrics.hpp"
#include "obs/watchdog.hpp"

namespace tsb::obs {

namespace detail {
std::atomic<bool> g_status_enabled{false};
}  // namespace detail

namespace {

std::mutex g_status_mu;
std::string g_status_path;
std::chrono::steady_clock::time_point g_status_epoch{};
std::chrono::steady_clock::time_point g_status_deadline =
    std::chrono::steady_clock::time_point::max();

}  // namespace

void set_status_file(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_status_mu);
  g_status_path = path;
  g_status_epoch = std::chrono::steady_clock::now();
  detail::g_status_enabled.store(!path.empty(), std::memory_order_relaxed);
}

void set_status_deadline_ms(std::uint64_t ms_from_now) {
  std::lock_guard<std::mutex> lock(g_status_mu);
  g_status_deadline =
      ms_from_now == 0
          ? std::chrono::steady_clock::time_point::max()
          : std::chrono::steady_clock::now() +
                std::chrono::milliseconds(ms_from_now);
}

void publish_status(const StatusSnapshot& s) {
  if (!status_enabled()) return;
  std::lock_guard<std::mutex> lock(g_status_mu);
  if (g_status_path.empty()) return;

  const auto now = std::chrono::steady_clock::now();
  const double uptime =
      std::chrono::duration<double>(now - g_status_epoch).count();
  JsonObj o;
  o.str("phase", s.phase).numf("uptime_s", uptime);
  if (s.level >= 0) o.num("level", s.level);
  if (s.frontier >= 0) o.num("frontier", s.frontier);
  if (s.visited >= 0) o.num("visited", s.visited);
  if (s.cap >= 0) o.num("cap", s.cap);
  if (s.steals >= 0) o.num("steals", s.steals);
  if (s.idle_spins >= 0) o.num("idle_spins", s.idle_spins);
  double cps = 0.0;
  if (s.visited > 0 && uptime > 0.0) {
    cps = static_cast<double>(s.visited) / uptime;
    o.numf("configs_per_sec", cps);
  }
  if (cps > 0.0 && s.cap > s.visited) {
    o.numf("eta_cap_s", static_cast<double>(s.cap - s.visited) / cps);
  }
  if (g_status_deadline != std::chrono::steady_clock::time_point::max()) {
    o.numf("eta_deadline_s",
           std::chrono::duration<double>(g_status_deadline - now).count());
  }
  // Active watchdog episodes, so a `tsb top` watcher sees the anomaly the
  // moment the telemetry tick latches it (empty and omitted when quiet or
  // when no --telemetry file is feeding the watchdog).
  const std::vector<WatchRule> alerts = Watchdog::global().active_rules();
  if (!alerts.empty()) {
    std::string arr = "[";
    for (std::size_t i = 0; i < alerts.size(); ++i) {
      if (i > 0) arr += ",";
      arr += std::string("\"") + watch_rule_name(alerts[i]) + "\"";
    }
    arr += "]";
    o.raw("watch", arr);
  }
  MemLedger& ledger = MemLedger::global();
  o.num("ledger_total", static_cast<std::int64_t>(ledger.total()))
      .raw("ledger", ledger.json())
      .num("peak_rss_kb", peak_rss_kb())
      .num("flight_events",
           static_cast<std::int64_t>(flight::enabled()
                                         ? flight::events_recorded()
                                         : 0));

  // Atomic rewrite: a reader either sees the previous snapshot or this
  // one, never a prefix.
  const std::string tmp = g_status_path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return;
  const std::string body = o.render();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::rename(tmp.c_str(), g_status_path.c_str());
}

}  // namespace tsb::obs
