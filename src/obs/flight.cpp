#include "obs/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

namespace tsb::obs::flight {

const char* ev_name(Ev ev) {
  switch (ev) {
    case Ev::kNone: return "none";
    case Ev::kLevel: return "level";
    case Ev::kBudgetCheck: return "budget.check";
    case Ev::kBudgetTrip: return "budget.trip";
    case Ev::kValencyQuery: return "valency.query";
    case Ev::kReachQuery: return "reach.query";
    case Ev::kChaosFault: return "chaos.fault";
    case Ev::kPhase: return "phase";
    case Ev::kSteal: return "steal";
    case Ev::kSpill: return "spill";
    case Ev::kWatch: return "watch";
    case Ev::kCkpt: return "ckpt";
  }
  return "?";
}

const char* phase_name(std::int64_t code) {
  switch (code) {
    case 0: return "proposition2";
    case 1: return "lemma4";
    case 2: return "lemma3";
    case 3: return "solo_escape";
  }
  return "?";
}

namespace detail {
std::atomic<bool> g_flight_enabled{false};
std::atomic<bool> g_dump_requested{false};
}  // namespace detail

namespace {

// One slot = 3 relaxed atomics. ts_ev packs nanoseconds-since-enable in
// the high 56 bits and the event type in the low 8 (2+ years of range).
struct Slot {
  std::atomic<std::uint64_t> ts_ev{0};
  std::atomic<std::int64_t> a{0};
  std::atomic<std::int64_t> b{0};
};

struct Ring {
  explicit Ring(int tid, std::size_t cap) : tid(tid), slots(cap) {}
  int tid;
  std::vector<Slot> slots;
  std::atomic<std::uint64_t> head{0};  ///< events ever written
};

std::mutex g_rings_mu;
std::vector<Ring*>& rings() {
  static std::vector<Ring*>* v = new std::vector<Ring*>();
  return *v;
}

thread_local Ring* t_ring = nullptr;

std::size_t g_ring_events = 1u << 16;
std::chrono::steady_clock::time_point g_epoch{};

char g_dump_path[512] = "flight.jsonl";

std::uint64_t now_rel_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - g_epoch)
          .count());
}

// Signal-context dump: snprintf into a stack buffer + write(2) per line,
// no allocation, no stdio streams, no locks (a fatal handler cannot wait
// for a writer mid-record anyway — relaxed slot reads tolerate the race).
void dump_fd(int fd, const char* reason) {
  char buf[256];
  std::uint64_t total = 0;
  std::size_t nrings = 0;
  // Walking the registry unlocked: rings are only ever appended and never
  // freed, and fatal handlers cannot take the mutex.
  std::vector<Ring*>& rs = rings();
  nrings = rs.size();
  for (std::size_t i = 0; i < nrings; ++i) {
    total += rs[i]->head.load(std::memory_order_relaxed);
  }
  int len = std::snprintf(
      buf, sizeof(buf),
      "{\"type\":\"flight.dump\",\"reason\":\"%s\",\"threads\":%zu,"
      "\"events\":%llu,\"ring_events\":%zu}\n",
      reason, nrings, static_cast<unsigned long long>(total), g_ring_events);
  if (len > 0) (void)!write(fd, buf, static_cast<std::size_t>(len));
  for (std::size_t i = 0; i < nrings; ++i) {
    Ring* r = rs[i];
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    const std::uint64_t cap = r->slots.size();
    const std::uint64_t lo = head > cap ? head - cap : 0;
    for (std::uint64_t seq = lo; seq < head; ++seq) {
      const Slot& s = r->slots[seq & (cap - 1)];
      const std::uint64_t ts_ev = s.ts_ev.load(std::memory_order_relaxed);
      const Ev ev = static_cast<Ev>(ts_ev & 0xFF);
      len = std::snprintf(
          buf, sizeof(buf),
          "{\"type\":\"flight.event\",\"tid\":%d,\"seq\":%llu,"
          "\"ts_ns\":%llu,\"ev\":\"%s\",\"a\":%lld,\"b\":%lld}\n",
          r->tid, static_cast<unsigned long long>(seq),
          static_cast<unsigned long long>(ts_ev >> 8), ev_name(ev),
          static_cast<long long>(s.a.load(std::memory_order_relaxed)),
          static_cast<long long>(s.b.load(std::memory_order_relaxed)));
      if (len > 0) (void)!write(fd, buf, static_cast<std::size_t>(len));
    }
  }
}

void sigusr1_handler(int) {
  detail::g_dump_requested.store(true, std::memory_order_relaxed);
}

void fatal_handler(int sig) {
  const int fd =
      open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    dump_fd(fd, "fatal");
    close(fd);
  }
  signal(sig, SIG_DFL);
  raise(sig);
}

}  // namespace

namespace detail {

void record_impl(Ev ev, std::int64_t a, std::int64_t b) {
  Ring* r = t_ring;
  if (r == nullptr) {
    r = new Ring(thread_id(), g_ring_events);  // leaked with the registry
    {
      std::lock_guard<std::mutex> lock(g_rings_mu);
      rings().push_back(r);
    }
    t_ring = r;
  }
  const std::uint64_t seq = r->head.load(std::memory_order_relaxed);
  Slot& s = r->slots[seq & (r->slots.size() - 1)];
  s.ts_ev.store((now_rel_ns() << 8) | static_cast<std::uint64_t>(ev),
                std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  r->head.store(seq + 1, std::memory_order_release);
}

}  // namespace detail

void enable(std::size_t ring_events) {
  if (enabled()) return;
  // Round up to a power of two (the ring index is a mask).
  std::size_t cap = 1;
  while (cap < ring_events) cap <<= 1;
  g_ring_events = cap;
  g_epoch = std::chrono::steady_clock::now();
  detail::g_flight_enabled.store(true, std::memory_order_relaxed);
}

void disable() {
  detail::g_flight_enabled.store(false, std::memory_order_relaxed);
}

std::uint64_t events_recorded() {
  std::lock_guard<std::mutex> lock(g_rings_mu);
  std::uint64_t total = 0;
  for (Ring* r : rings()) total += r->head.load(std::memory_order_relaxed);
  return total;
}

bool dump(const std::string& path, const char* reason) {
  const int fd =
      open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::lock_guard<std::mutex> lock(g_rings_mu);
  dump_fd(fd, reason);
  close(fd);
  return true;
}

void set_dump_path(const std::string& path) {
  std::strncpy(g_dump_path, path.c_str(), sizeof(g_dump_path) - 1);
  g_dump_path[sizeof(g_dump_path) - 1] = '\0';
}

void install_signal_handlers() {
  struct sigaction sa;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sa.sa_handler = sigusr1_handler;
  sigaction(SIGUSR1, &sa, nullptr);
  sa.sa_flags = 0;  // fatal handlers must not restart; they re-raise
  sa.sa_handler = fatal_handler;
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    sigaction(sig, &sa, nullptr);
  }
}

bool service_dump_request() {
  if (!detail::g_dump_requested.load(std::memory_order_relaxed)) return false;
  detail::g_dump_requested.store(false, std::memory_order_relaxed);
  dump(g_dump_path, "sigusr1");
  return true;
}

}  // namespace tsb::obs::flight
