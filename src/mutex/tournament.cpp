#include "mutex/tournament.hpp"

#include <cassert>

namespace tsb::mutex {

TournamentMutex::TournamentMutex(int n) : n_(n) {
  assert(n >= 2);
  leaves_ = 1;
  height_ = 0;
  while (leaves_ < n) {
    leaves_ <<= 1;
    ++height_;
  }
}

std::string TournamentMutex::name() const {
  return "tournament(n=" + std::to_string(n_) + ")";
}

sim::State TournamentMutex::initial_state(sim::ProcId) const {
  return make(kIdle, 0);
}

Section TournamentMutex::section(sim::ProcId, sim::State s) const {
  switch (phase_of(s)) {
    case kIdle:
    case kDone:
      return Section::kRemainder;
    case kCS:
      return Section::kCritical;
    case kExitWrite:
      return Section::kExit;
    default:
      return Section::kTrying;
  }
}

sim::State TournamentMutex::acquired(sim::ProcId p, int level) const {
  (void)p;
  if (level == height_) return make(kCS, 0);
  return make(kWriteFlag, level + 1);
}

sim::PendingOp TournamentMutex::poised(sim::ProcId p, sim::State s) const {
  const int level = level_of(s);
  const int node = node_at(p, level);
  const int side = side_at(p, level);
  switch (phase_of(s)) {
    case kWriteFlag:
      return sim::PendingOp::write(reg_flag(node, side), 1);
    case kWriteTurn:
      return sim::PendingOp::write(reg_turn(node), side);
    case kReadFlag:
      return sim::PendingOp::read(reg_flag(node, 1 - side));
    case kReadTurn:
      return sim::PendingOp::read(reg_turn(node));
    case kExitWrite:
      return sim::PendingOp::write(reg_flag(node, side), 0);
    default:
      assert(false && "no pending memory operation in this section");
      return sim::PendingOp::read(0);
  }
}

sim::State TournamentMutex::after_read(sim::ProcId p, sim::State s,
                                       sim::Value observed) const {
  const int level = level_of(s);
  const int side = side_at(p, level);
  switch (phase_of(s)) {
    case kReadFlag:
      if (observed == 0) return acquired(p, level);  // peer not competing
      return make(kReadTurn, level);
    case kReadTurn:
      if (observed == 1 - side) return acquired(p, level);  // peer yielded
      return make(kReadFlag, level);  // local spin on the node's registers
    default:
      assert(false);
      return s;
  }
}

sim::State TournamentMutex::after_write(sim::ProcId p, sim::State s) const {
  (void)p;
  const int level = level_of(s);
  switch (phase_of(s)) {
    case kWriteFlag:
      return make(kWriteTurn, level);
    case kWriteTurn:
      return make(kReadFlag, level);
    case kExitWrite:
      if (level == 1) return make(kDone, 0);
      return make(kExitWrite, level - 1);  // release the path downwards
    default:
      assert(false);
      return s;
  }
}

sim::State TournamentMutex::begin_trying(sim::ProcId, sim::State s) const {
  assert(phase_of(s) == kIdle || phase_of(s) == kDone);
  (void)s;
  return make(kWriteFlag, 1);
}

sim::State TournamentMutex::begin_exit(sim::ProcId, sim::State s) const {
  assert(phase_of(s) == kCS);
  (void)s;
  return make(kExitWrite, height_);
}

}  // namespace tsb::mutex
