#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mutex/canonical.hpp"

namespace tsb::mutex {

/// Executable version of the Fan–Lynch encoder/decoder argument.
///
/// The encoder compresses a canonical execution down to the process ids of
/// its state-changing memory steps (busy-wait re-reads that change nothing
/// are dropped — they alter neither local state nor any register, so the
/// decoder's replay passes through the identical configurations without
/// them). Each id costs ceil(log2 n) bits.
///
/// The decoder replays the id sequence through the algorithm and the
/// canonical driver's deterministic policy, reconstructing the entire
/// execution — in particular the CS order pi. Since pi ranges over all n!
/// permutations across schedules, any lossless encoding needs
/// log2(n!) = Omega(n log n) bits in the worst case; the benchmark plots
/// measured encoding sizes against that line and against the measured
/// cost.
///
/// Fidelity note: Fan–Lynch's metastep encoding achieves O(C) bits for
/// cost C via amortized batching; this implementation is a simplified
/// lossless encoder with an extra log n factor. The lower-bound line —
/// the substance of the argument — is unaffected.
struct ExecutionEncoding {
  std::vector<std::uint8_t> bytes;  ///< bit-packed symbols
  std::size_t bit_count = 0;
  int bits_per_symbol = 0;
  std::size_t symbols = 0;
};

/// Encode the state-changing schedule of a completed canonical run.
ExecutionEncoding encode_execution(const CanonicalResult& result, int n);

struct DecodeResult {
  bool ok = false;            ///< replay completed every passage
  std::string error;
  std::vector<sim::ProcId> cs_order;  ///< reconstructed pi
  std::size_t steps_replayed = 0;
};

/// Replay an encoding against the algorithm. `eager_start` must match the
/// strategy that produced the run (true for round-robin/randomized — all
/// processes begin trying up front; false for sequential).
DecodeResult decode_execution(const MutexAlgorithm& alg,
                              const ExecutionEncoding& enc, bool eager_start);

/// Tighter variant: run-length coding. Consecutive steps by the same
/// process are stored as one (id, Elias-gamma run length) pair, which is
/// how executions with long solo stretches (sequential canonical runs,
/// low contention) compress toward Fan–Lynch's O(C) regime. Same replay
/// contract as the fixed-width pair; enc.symbols still counts steps.
ExecutionEncoding encode_execution_rle(const CanonicalResult& result, int n);
DecodeResult decode_execution_rle(const MutexAlgorithm& alg,
                                  const ExecutionEncoding& enc,
                                  bool eager_start);

}  // namespace tsb::mutex
