#pragma once

#include "mutex/algorithm.hpp"

namespace tsb::mutex {

/// Lamport's bakery algorithm — the classic O(n)-accesses-per-passage
/// baseline sitting between Peterson (polynomially worse under contention)
/// and the tournament (logarithmically better):
///
///   choosing[i] := 1
///   number[i] := 1 + max(number[0..n-1])
///   choosing[i] := 0
///   for k != i:
///     wait until choosing[k] == 0
///     wait until number[k] == 0 or (number[k], k) > (number[i], i)
///   // critical section
///   number[i] := 0
///
/// Registers: choosing[i] = register i (init 0),
///            number[i]   = register n + i (init 0). Ticket numbers grow
/// without bound in long executions; canonical executions keep them small.
class BakeryMutex final : public MutexAlgorithm {
 public:
  explicit BakeryMutex(int n);

  std::string name() const override;
  int num_processes() const override { return n_; }
  int num_registers() const override { return 2 * n_; }
  sim::Value initial_register(sim::RegId) const override { return 0; }
  sim::State initial_state(sim::ProcId) const override;
  Section section(sim::ProcId p, sim::State s) const override;
  sim::PendingOp poised(sim::ProcId p, sim::State s) const override;
  sim::State after_read(sim::ProcId p, sim::State s,
                        sim::Value observed) const override;
  sim::State after_write(sim::ProcId p, sim::State s) const override;
  sim::State begin_trying(sim::ProcId p, sim::State s) const override;
  sim::State begin_exit(sim::ProcId p, sim::State s) const override;

 private:
  enum Phase : int {
    kIdle = 0,
    kWriteChoosing1,
    kScanMax,        // read number[k], accumulate the max
    kWriteNumber,    // number[p] := max + 1
    kWriteChoosing0,
    kWaitChoosing,   // spin until choosing[k] == 0
    kWaitNumber,     // spin until number[k]==0 or (number[k],k) > (mine,p)
    kCS,
    kExitWrite,      // number[p] := 0
    kDone,
  };
  // Layout: phase (4 bits) | k (8 bits) | my/max number (the rest).
  static sim::State make(int phase, int k, sim::Value num) {
    return static_cast<sim::State>(phase) | (static_cast<sim::State>(k) << 4) |
           (num << 12);
  }
  static int phase_of(sim::State s) { return static_cast<int>(s & 0xf); }
  static int k_of(sim::State s) { return static_cast<int>((s >> 4) & 0xff); }
  static sim::Value num_of(sim::State s) { return s >> 12; }

  int next_other(sim::ProcId p, int k) const;
  sim::State advance_wait(sim::ProcId p, int k, sim::Value mine) const;

  int n_;
};

}  // namespace tsb::mutex
