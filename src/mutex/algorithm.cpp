#include "mutex/algorithm.hpp"

namespace tsb::mutex {

MutexConfig mutex_initial(const MutexAlgorithm& alg) {
  MutexConfig c;
  c.states.reserve(static_cast<std::size_t>(alg.num_processes()));
  for (sim::ProcId p = 0; p < alg.num_processes(); ++p) {
    c.states.push_back(alg.initial_state(p));
  }
  c.regs.reserve(static_cast<std::size_t>(alg.num_registers()));
  for (sim::RegId r = 0; r < alg.num_registers(); ++r) {
    c.regs.push_back(alg.initial_register(r));
  }
  return c;
}

}  // namespace tsb::mutex
