#include "mutex/peterson.hpp"

#include <cassert>

namespace tsb::mutex {

PetersonMutex::PetersonMutex(int n) : n_(n) { assert(n >= 2 && n <= 200); }

std::string PetersonMutex::name() const {
  return "peterson(n=" + std::to_string(n_) + ")";
}

sim::State PetersonMutex::initial_state(sim::ProcId) const {
  return make(kIdle, 0, 0);
}

Section PetersonMutex::section(sim::ProcId, sim::State s) const {
  switch (phase_of(s)) {
    case kIdle:
    case kDone:
      return Section::kRemainder;
    case kCS:
      return Section::kCritical;
    case kExitWrite:
      return Section::kExit;
    default:
      return Section::kTrying;
  }
}

int PetersonMutex::next_other(sim::ProcId p, int k) const {
  int next = k + 1;
  if (next == p) ++next;
  return next;
}

sim::State PetersonMutex::advance_level(sim::ProcId p, int m) const {
  // Levels run 0..n-2; passing the last one grants the critical section.
  if (m == n_ - 2) return make(kCS, 0, 0);
  (void)p;
  return make(kWriteLevel, m + 1, 0);
}

sim::PendingOp PetersonMutex::poised(sim::ProcId p, sim::State s) const {
  const int m = m_of(s);
  switch (phase_of(s)) {
    case kWriteLevel:
      return sim::PendingOp::write(p, m);
    case kWriteWaiting:
      return sim::PendingOp::write(n_ + m, p);
    case kReadWaiting:
      return sim::PendingOp::read(n_ + m);
    case kScan:
      return sim::PendingOp::read(k_of(s));
    case kExitWrite:
      return sim::PendingOp::write(p, -1);
    default:
      assert(false && "no pending memory operation in this section");
      return sim::PendingOp::read(0);
  }
}

sim::State PetersonMutex::after_read(sim::ProcId p, sim::State s,
                                     sim::Value observed) const {
  const int m = m_of(s);
  switch (phase_of(s)) {
    case kReadWaiting:
      if (observed != p) return advance_level(p, m);  // no longer the waiter
      {
        const int k = next_other(p, -1);
        if (k >= n_) return advance_level(p, m);  // n = 1 edge; unreachable
        return make(kScan, m, k);
      }
    case kScan: {
      if (observed >= m) return make(kReadWaiting, m, 0);  // keep waiting
      const int k = next_other(p, k_of(s));
      if (k >= n_) return advance_level(p, m);  // nobody at level >= m
      return make(kScan, m, k);
    }
    default:
      assert(false);
      return s;
  }
}

sim::State PetersonMutex::after_write(sim::ProcId p, sim::State s) const {
  (void)p;
  const int m = m_of(s);
  switch (phase_of(s)) {
    case kWriteLevel:
      return make(kWriteWaiting, m, 0);
    case kWriteWaiting:
      return make(kReadWaiting, m, 0);
    case kExitWrite:
      return make(kDone, 0, 0);
    default:
      assert(false);
      return s;
  }
}

sim::State PetersonMutex::begin_trying(sim::ProcId, sim::State s) const {
  assert(phase_of(s) == kIdle || phase_of(s) == kDone);
  (void)s;
  return make(kWriteLevel, 0, 0);
}

sim::State PetersonMutex::begin_exit(sim::ProcId, sim::State s) const {
  assert(phase_of(s) == kCS);
  (void)s;
  return make(kExitWrite, 0, 0);
}

}  // namespace tsb::mutex
