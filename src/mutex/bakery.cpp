#include "mutex/bakery.hpp"

#include <cassert>

namespace tsb::mutex {

BakeryMutex::BakeryMutex(int n) : n_(n) { assert(n >= 2 && n <= 200); }

std::string BakeryMutex::name() const {
  return "bakery(n=" + std::to_string(n_) + ")";
}

sim::State BakeryMutex::initial_state(sim::ProcId) const {
  return make(kIdle, 0, 0);
}

Section BakeryMutex::section(sim::ProcId, sim::State s) const {
  switch (phase_of(s)) {
    case kIdle:
    case kDone:
      return Section::kRemainder;
    case kCS:
      return Section::kCritical;
    case kExitWrite:
      return Section::kExit;
    default:
      return Section::kTrying;
  }
}

int BakeryMutex::next_other(sim::ProcId p, int k) const {
  int next = k + 1;
  if (next == p) ++next;
  return next;
}

sim::State BakeryMutex::advance_wait(sim::ProcId p, int k,
                                     sim::Value mine) const {
  const int next = next_other(p, k);
  if (next >= n_) return make(kCS, 0, mine);
  return make(kWaitChoosing, next, mine);
}

sim::PendingOp BakeryMutex::poised(sim::ProcId p, sim::State s) const {
  const int k = k_of(s);
  switch (phase_of(s)) {
    case kWriteChoosing1:
      return sim::PendingOp::write(p, 1);
    case kScanMax:
      return sim::PendingOp::read(n_ + k);
    case kWriteNumber:
      return sim::PendingOp::write(n_ + p, num_of(s) + 1);
    case kWriteChoosing0:
      return sim::PendingOp::write(p, 0);
    case kWaitChoosing:
      return sim::PendingOp::read(k);
    case kWaitNumber:
      return sim::PendingOp::read(n_ + k);
    case kExitWrite:
      return sim::PendingOp::write(n_ + p, 0);
    default:
      assert(false && "no pending memory operation in this section");
      return sim::PendingOp::read(0);
  }
}

sim::State BakeryMutex::after_read(sim::ProcId p, sim::State s,
                                   sim::Value observed) const {
  const int k = k_of(s);
  const sim::Value num = num_of(s);
  switch (phase_of(s)) {
    case kScanMax: {
      const sim::Value mx = std::max(num, observed);
      if (k + 1 < n_) return make(kScanMax, k + 1, mx);
      return make(kWriteNumber, 0, mx);
    }
    case kWaitChoosing:
      if (observed != 0) return s;  // spin, zero state change
      return make(kWaitNumber, k, num);
    case kWaitNumber:
      if (observed == 0 || observed > num || (observed == num && k > p)) {
        return advance_wait(p, k, num);
      }
      return s;  // (number[k], k) < (number[p], p): keep waiting
    default:
      assert(false);
      return s;
  }
}

sim::State BakeryMutex::after_write(sim::ProcId p, sim::State s) const {
  (void)p;
  switch (phase_of(s)) {
    case kWriteChoosing1:
      return make(kScanMax, 0, 0);
    case kWriteNumber:
      return make(kWriteChoosing0, 0, num_of(s) + 1);  // remember my ticket
    case kWriteChoosing0: {
      const int first = next_other(p, -1);
      if (first >= n_) return make(kCS, 0, num_of(s));
      return make(kWaitChoosing, first, num_of(s));
    }
    case kExitWrite:
      return make(kDone, 0, 0);
    default:
      assert(false);
      return s;
  }
}

sim::State BakeryMutex::begin_trying(sim::ProcId, sim::State s) const {
  assert(phase_of(s) == kIdle || phase_of(s) == kDone);
  (void)s;
  return make(kWriteChoosing1, 0, 0);
}

sim::State BakeryMutex::begin_exit(sim::ProcId, sim::State s) const {
  assert(phase_of(s) == kCS);
  (void)s;
  return make(kExitWrite, 0, 0);
}

}  // namespace tsb::mutex
