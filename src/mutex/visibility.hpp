#pragma once

#include <string>
#include <vector>

#include "mutex/canonical.hpp"

namespace tsb::mutex {

/// The visibility graph of a canonical execution (Fan–Lynch): there is an
/// edge j -> i ("pi sees pj") iff pj finished its passage before pi
/// entered the critical section.
///
/// The information-theoretic argument rests on two facts this module makes
/// checkable on concrete executions:
///  1. for every pair of processes, at least one sees the other — if two
///     processes missed each other, an adversary could drive both into the
///     CS simultaneously (deck part II); and
///  2. the graph therefore contains a directed chain over all n processes,
///     i.e. it determines the CS permutation pi, which takes
///     log2(n!) = Omega(n log n) bits to specify.
struct VisibilityGraph {
  int n = 0;
  /// sees[i][j]: pi sees pj.
  std::vector<std::vector<bool>> sees;

  /// Fact 1: every pair is ordered at least one way.
  bool tournament_complete() const;

  /// The chain recovered from the graph: processes sorted by how many
  /// others they see (the i-th entrant sees exactly i-1 predecessors in a
  /// canonical execution). Empty if the counts are not 0..n-1.
  std::vector<sim::ProcId> chain() const;

  std::size_t edge_count() const;
  std::string to_string() const;
};

/// Build the graph from a completed canonical execution.
VisibilityGraph build_visibility(const CanonicalResult& result);

}  // namespace tsb::mutex
