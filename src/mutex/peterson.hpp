#pragma once

#include "mutex/algorithm.hpp"

namespace tsb::mutex {

/// Peterson's n-process mutual exclusion, exactly as in the deck:
///
///   // level[0..n-1] = {-1}; waiting[0..n-2] = {-1}
///   for (m = 0; m < n-1; m++) {
///     level[i] = m;
///     waiting[m] = i;
///     while (waiting[m] == i && (exists k != i: level[k] >= m)) { spin }
///   }
///   // critical section
///   level[i] = -1;  // exit
///
/// The waiting condition rescans the level array; whenever other processes
/// move, those reads are informative (cache-coherence misses), which is
/// why Peterson's total work in canonical executions grows like n^3 — the
/// deck's motivating "expensive" baseline for the Fan–Lynch bound.
///
/// Registers: level[i] = register i (initially -1),
///            waiting[m] = register n + m (initially -1).
class PetersonMutex final : public MutexAlgorithm {
 public:
  explicit PetersonMutex(int n);

  std::string name() const override;
  int num_processes() const override { return n_; }
  int num_registers() const override { return 2 * n_ - 1; }
  sim::Value initial_register(sim::RegId) const override { return -1; }
  sim::State initial_state(sim::ProcId) const override;
  Section section(sim::ProcId p, sim::State s) const override;
  sim::PendingOp poised(sim::ProcId p, sim::State s) const override;
  sim::State after_read(sim::ProcId p, sim::State s,
                        sim::Value observed) const override;
  sim::State after_write(sim::ProcId p, sim::State s) const override;
  sim::State begin_trying(sim::ProcId p, sim::State s) const override;
  sim::State begin_exit(sim::ProcId p, sim::State s) const override;

 private:
  enum Phase : int {
    kIdle = 0,
    kWriteLevel,
    kWriteWaiting,
    kReadWaiting,
    kScan,
    kCS,
    kExitWrite,
    kDone,
  };
  static sim::State make(int phase, int m, int k) {
    return static_cast<sim::State>(phase) | (static_cast<sim::State>(m) << 4) |
           (static_cast<sim::State>(k) << 12);
  }
  static int phase_of(sim::State s) { return static_cast<int>(s & 0xf); }
  static int m_of(sim::State s) { return static_cast<int>((s >> 4) & 0xff); }
  static int k_of(sim::State s) { return static_cast<int>((s >> 12) & 0xff); }

  sim::State advance_level(sim::ProcId p, int m) const;
  int next_other(sim::ProcId p, int k) const;  // next k > given, k != p

  int n_;
};

}  // namespace tsb::mutex
