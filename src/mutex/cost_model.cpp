#include "mutex/cost_model.hpp"

#include <cassert>

namespace tsb::mutex {

CostAccountant::CostAccountant(int processes, int registers)
    : n_(processes), m_(registers) {
  valid_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(m_),
                0);
  per_proc_.assign(static_cast<std::size_t>(n_), 0);
}

int CostAccountant::on_read(sim::ProcId p, sim::RegId r) {
  auto& valid = valid_[static_cast<std::size_t>(p) *
                           static_cast<std::size_t>(m_) +
                       static_cast<std::size_t>(r)];
  if (valid) return 0;  // cache hit: local spin, free
  valid = 1;
  ++per_proc_[static_cast<std::size_t>(p)];
  ++total_;
  return 1;
}

int CostAccountant::on_write(sim::ProcId p, sim::RegId r) {
  for (int q = 0; q < n_; ++q) {
    valid_[static_cast<std::size_t>(q) * static_cast<std::size_t>(m_) +
           static_cast<std::size_t>(r)] = static_cast<std::uint8_t>(q == p);
  }
  ++per_proc_[static_cast<std::size_t>(p)];
  ++total_;
  return 1;
}

MutexStep mutex_step(const MutexAlgorithm& alg, const MutexConfig& c,
                     sim::ProcId p, CostAccountant* acct, sim::Trace* trace) {
  const auto up = static_cast<std::size_t>(p);
  const sim::State s = c.states[up];
  const Section sec = alg.section(p, s);
  assert(sec == Section::kTrying || sec == Section::kExit);
  (void)sec;

  const sim::PendingOp op = alg.poised(p, s);
  MutexStep out;
  out.config = c;
  sim::StepRecord rec{p, op, 0};
  if (op.is_read()) {
    const sim::Value observed = c.regs[static_cast<std::size_t>(op.reg)];
    rec.read_result = observed;
    out.config.states[up] = alg.after_read(p, s, observed);
    if (acct != nullptr) out.cost = acct->on_read(p, op.reg);
  } else {
    assert(op.is_write());
    out.config.regs[static_cast<std::size_t>(op.reg)] = op.value;
    out.config.states[up] = alg.after_write(p, s);
    if (acct != nullptr) out.cost = acct->on_write(p, op.reg);
  }
  out.state_changed = out.config.states[up] != s;
  if (trace != nullptr) trace->records.push_back(rec);
  return out;
}

}  // namespace tsb::mutex
