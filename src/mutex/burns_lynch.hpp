#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "mutex/cost_model.hpp"

namespace tsb::mutex {

/// Burns–Lynch covering for mutual exclusion — the origin of the covering
/// argument the paper builds on (deck: "the first covering argument is due
/// to Burns and Lynch [BL93]"). Their theorem: any deadlock-free mutual
/// exclusion algorithm for n processes uses at least n registers.
///
/// The executable form mirrors the perturbation adversary: drive each
/// process, alone, through its trying section until it is poised to write
/// a register nobody covers yet. A correct algorithm must reach such a
/// write before entering the critical section: a process that enters the
/// CS having written only covered registers is invisible after the block
/// write, and a second process can be driven into the CS alongside it.
/// After n stages, n distinct registers are covered.
class MutexCoveringAdversary {
 public:
  struct Options {
    std::size_t step_cap = 1'000'000;
  };

  struct Result {
    bool complete = false;  ///< all n processes escaped: n distinct covered
    int distinct_registers = 0;
    std::vector<std::pair<sim::ProcId, sim::RegId>> covering;
    /// Process that reached the CS without an uncovered write, if any —
    /// for a correct algorithm this never happens; for the broken
    /// NaiveLock it is the smoking gun.
    sim::ProcId invisible_entrant = -1;
    std::string narrative;
  };

  MutexCoveringAdversary(const MutexAlgorithm& alg, Options opts)
      : alg_(alg), opts_(opts) {}
  explicit MutexCoveringAdversary(const MutexAlgorithm& alg)
      : MutexCoveringAdversary(alg, Options{}) {}

  Result run();

 private:
  const MutexAlgorithm& alg_;
  Options opts_;
};

/// Deliberately broken lock: test-and-set *without* the atomicity —
/// read the flag until it is 0, then write 1 and enter. The window between
/// the read and the write admits two processes into the critical section;
/// the canonical driver's exclusion check and the covering adversary's
/// invisible-entrant detection both catch it. Negative control for the
/// Burns–Lynch experiment (and a reminder of why test-and-set must be a
/// primitive — see consensus/historyless.hpp for the swap-based one).
class NaiveLock final : public MutexAlgorithm {
 public:
  explicit NaiveLock(int n) : n_(n) {}

  std::string name() const override {
    return "naive-lock(n=" + std::to_string(n_) + ")";
  }
  int num_processes() const override { return n_; }
  int num_registers() const override { return 1; }
  sim::Value initial_register(sim::RegId) const override { return 0; }
  sim::State initial_state(sim::ProcId) const override { return 0; }
  Section section(sim::ProcId p, sim::State s) const override;
  sim::PendingOp poised(sim::ProcId p, sim::State s) const override;
  sim::State after_read(sim::ProcId p, sim::State s,
                        sim::Value observed) const override;
  sim::State after_write(sim::ProcId p, sim::State s) const override;
  sim::State begin_trying(sim::ProcId p, sim::State s) const override;
  sim::State begin_exit(sim::ProcId p, sim::State s) const override;

 private:
  // States: 0 idle, 1 reading flag, 2 poised to write 1 (the race window),
  // 3 critical, 4 exit write, 5 done.
  int n_;
};

}  // namespace tsb::mutex
