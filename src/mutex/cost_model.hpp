#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mutex/algorithm.hpp"
#include "sim/trace.hpp"

namespace tsb::mutex {

/// Cost accounting in the spirit of Fan–Lynch's state-change cost model,
/// realized as the standard cache-coherent RMR measure:
///
///  * a read of register r by process p costs 1 iff p has no valid cached
///    copy of r (first access, or some other process wrote r since p's
///    last read of it) — busy-waiting on unchanged registers is free;
///  * a write costs 1 and invalidates every other process's cached copy.
///
/// Under this measure the Yang–Anderson-style tournament incurs O(log n)
/// per passage (Theta(n log n) per canonical execution, matching the
/// Fan–Lynch bound's tightness) while Peterson's n-process algorithm,
/// whose waiting condition rescans n registers that keep changing, pays
/// polynomially more — the separation experiment E5 measures both.
class CostAccountant {
 public:
  CostAccountant(int processes, int registers);

  /// Cost of p reading r (and updates the cache).
  int on_read(sim::ProcId p, sim::RegId r);

  /// Cost of p writing r (and invalidates other caches).
  int on_write(sim::ProcId p, sim::RegId r);

  std::int64_t total() const { return total_; }
  std::int64_t total_for(sim::ProcId p) const {
    return per_proc_[static_cast<std::size_t>(p)];
  }

 private:
  int n_;
  int m_;
  std::vector<std::uint8_t> valid_;  // n x m cache-validity matrix
  std::vector<std::int64_t> per_proc_;
  std::int64_t total_ = 0;
};

/// One memory step by p at configuration c. Returns the new configuration;
/// adds the step's cost to `acct` (if non-null), records it in `trace`
/// (if non-null), and reports whether the process's local state changed.
struct MutexStep {
  MutexConfig config;
  bool state_changed = false;
  int cost = 0;
};
MutexStep mutex_step(const MutexAlgorithm& alg, const MutexConfig& c,
                     sim::ProcId p, CostAccountant* acct = nullptr,
                     sim::Trace* trace = nullptr);

}  // namespace tsb::mutex
