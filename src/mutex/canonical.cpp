#include "mutex/canonical.hpp"

#include <cassert>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace tsb::mutex {

std::string CanonicalResult::summary() const {
  std::string s = completed ? "completed" : "DID NOT COMPLETE";
  if (exclusion_violated) s += " MUTUAL EXCLUSION VIOLATED";
  s += " rmr=" + std::to_string(rmr_cost) +
       " state_changes=" + std::to_string(state_change_cost) +
       " steps=" + std::to_string(total_steps);
  return s;
}

CanonicalResult run_canonical(const MutexAlgorithm& alg,
                              const CanonicalOptions& opts) {
  obs::Span span("mutex.canonical");
  const int n = alg.num_processes();
  CanonicalResult out;
  out.per_proc_rmr.assign(static_cast<std::size_t>(n), 0);
  out.enter_step.assign(static_cast<std::size_t>(n), SIZE_MAX);
  out.leave_step.assign(static_cast<std::size_t>(n), SIZE_MAX);
  out.finish_step.assign(static_cast<std::size_t>(n), SIZE_MAX);

  MutexConfig cfg = mutex_initial(alg);
  CostAccountant acct(n, alg.num_registers());
  util::Rng rng(opts.seed);

  std::vector<bool> started(static_cast<std::size_t>(n), false);
  std::vector<bool> finished(static_cast<std::size_t>(n), false);
  std::vector<bool> in_cs(static_cast<std::size_t>(n), false);
  int finished_count = 0;

  // Sequential order (or the identity).
  std::vector<sim::ProcId> order = opts.order;
  if (order.empty()) {
    for (sim::ProcId p = 0; p < n; ++p) order.push_back(p);
  }
  assert(static_cast<int>(order.size()) == n);

  const bool sequential =
      opts.strategy == CanonicalOptions::Strategy::kSequential;
  if (!sequential) {
    for (sim::ProcId p = 0; p < n; ++p) {
      cfg.states[static_cast<std::size_t>(p)] =
          alg.begin_trying(p, cfg.states[static_cast<std::size_t>(p)]);
      started[static_cast<std::size_t>(p)] = true;
    }
  }

  // Event clock: advances on every event (local transitions and memory
  // steps), so CS enter/leave timestamps are strictly ordered.
  std::size_t clock = 0;
  std::size_t rr_cursor = 0;
  auto pick = [&]() -> sim::ProcId {
    if (sequential) {
      for (sim::ProcId p : order) {
        if (!finished[static_cast<std::size_t>(p)]) return p;
      }
      return -1;
    }
    std::vector<sim::ProcId> unfinished;
    for (sim::ProcId p = 0; p < n; ++p) {
      if (!finished[static_cast<std::size_t>(p)]) unfinished.push_back(p);
    }
    if (unfinished.empty()) return -1;
    if (opts.strategy == CanonicalOptions::Strategy::kRoundRobin) {
      return unfinished[(rr_cursor++) % unfinished.size()];
    }
    return unfinished[rng.below(unfinished.size())];
  };

  while (finished_count < n) {
    if (out.total_steps >= opts.step_cap) return out;  // not completed
    const sim::ProcId p = pick();
    if (p < 0) break;
    const auto up = static_cast<std::size_t>(p);

    if (!started[up]) {
      cfg.states[up] = alg.begin_trying(p, cfg.states[up]);
      started[up] = true;
    }
    Section sec = alg.section(p, cfg.states[up]);
    if (sec == Section::kCritical) {
      cfg.states[up] = alg.begin_exit(p, cfg.states[up]);
      in_cs[up] = false;
      out.leave_step[up] = ++clock;
      sec = alg.section(p, cfg.states[up]);
      if (sec == Section::kRemainder) {  // exit needed no memory steps
        finished[up] = true;
        out.finish_step[up] = ++clock;
        ++finished_count;
        continue;
      }
    }
    if (sec == Section::kRemainder) {
      // A process we started that is already back in its remainder.
      finished[up] = true;
      out.finish_step[up] = ++clock;
      ++finished_count;
      continue;
    }

    MutexStep step = mutex_step(alg, cfg, p, &acct);
    cfg = step.config;
    ++out.total_steps;
    ++clock;
    out.rmr_cost += step.cost;
    if (step.state_changed) {
      ++out.state_change_cost;
      out.changing_schedule.push_back(p);
    }

    const Section after = alg.section(p, cfg.states[up]);
    if (after == Section::kCritical && !in_cs[up]) {
      in_cs[up] = true;
      out.cs_order.push_back(p);
      out.enter_step[up] = clock;
      // Exclusion invariant: nobody else may be in the CS now.
      for (sim::ProcId q = 0; q < n; ++q) {
        if (q != p && in_cs[static_cast<std::size_t>(q)]) {
          out.exclusion_violated = true;
        }
      }
    }
    if (after == Section::kRemainder) {
      finished[up] = true;
      out.finish_step[up] = clock;
      ++finished_count;
    }
  }

  for (sim::ProcId p = 0; p < n; ++p) {
    out.per_proc_rmr[static_cast<std::size_t>(p)] = acct.total_for(p);
  }
  out.completed = finished_count == n && !out.exclusion_violated;

  obs::Registry& reg = obs::Registry::global();
  reg.counter("mutex.canonical.runs").add();
  reg.counter("mutex.canonical.steps").add(out.total_steps);
  reg.counter("mutex.canonical.rmr")
      .add(static_cast<std::uint64_t>(out.rmr_cost));
  obs::Histogram& per_proc = reg.histogram("mutex.canonical.per_proc_rmr");
  for (const std::int64_t c : out.per_proc_rmr) {
    per_proc.record(static_cast<std::uint64_t>(c));
  }
  return out;
}

}  // namespace tsb::mutex
