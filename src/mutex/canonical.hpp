#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mutex/cost_model.hpp"
#include "util/rng.hpp"

namespace tsb::mutex {

/// Canonical executions (Fan–Lynch): every process enters the critical
/// section exactly once. The drivers here produce them under different
/// schedulers and account costs in two measures:
///
///  * rmr_cost — cache-coherent RMRs, i.e. non-busy-waiting accesses: a
///    read is charged only if the register changed since the process last
///    read it; every write is charged. This is the "total work" measure of
///    the deck (busy-waiting excluded).
///  * state_change_cost — memory steps after which the process's local
///    state differs (the state-change cost model); always >= rmr-informative
///    reads and the measure the execution encoder is keyed to.
///
/// The scheduler policy is deterministic given the sequence of memory
/// steps: a process begins its trying section before its first memory step,
/// and begins its exit section when it is scheduled while in the critical
/// section. The encoder/decoder pair relies on exactly this determinism.
struct CanonicalOptions {
  enum class Strategy {
    kSequential,  ///< one passage at a time, in `order` (no contention)
    kRoundRobin,  ///< all start trying; rotate among unfinished processes
    kRandomized,  ///< all start trying; uniformly random unfinished process
  };
  Strategy strategy = Strategy::kRoundRobin;
  std::vector<sim::ProcId> order;  ///< kSequential: passage order (default id)
  std::uint64_t seed = 1;          ///< kRandomized
  std::size_t step_cap = 50'000'000;
};

struct CanonicalResult {
  bool completed = false;            ///< every process finished one passage
  bool exclusion_violated = false;   ///< two processes in the CS at once
  std::int64_t rmr_cost = 0;
  std::int64_t state_change_cost = 0;
  std::size_t total_steps = 0;       ///< memory steps executed
  std::vector<sim::ProcId> cs_order; ///< order of CS entries (the pi)
  std::vector<std::int64_t> per_proc_rmr;
  /// Per process: memory-step index at which it entered the CS / left the
  /// CS (began its exit section) / finished its passage (SIZE_MAX if it
  /// never did). Visibility graphs use enter/leave.
  std::vector<std::size_t> enter_step;
  std::vector<std::size_t> leave_step;
  std::vector<std::size_t> finish_step;
  /// Process ids of the state-changing memory steps, in order — the
  /// encoder's input; replaying exactly these steps reproduces the
  /// execution (steps that change no local state change no register that
  /// anyone reads differently... they change nothing at all).
  std::vector<sim::ProcId> changing_schedule;

  std::string summary() const;
};

CanonicalResult run_canonical(const MutexAlgorithm& alg,
                              const CanonicalOptions& opts);

}  // namespace tsb::mutex
