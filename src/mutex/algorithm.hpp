#pragma once

#include <string>
#include <vector>

#include "sim/op.hpp"

namespace tsb::mutex {

/// Where a process is in the mutual-exclusion protocol's lifecycle.
enum class Section { kRemainder, kTrying, kCritical, kExit };

/// A mutual-exclusion algorithm from read/write registers, expressed as a
/// deterministic step machine per process (the model of the Fan–Lynch
/// lower bound, deck part II).
///
/// Memory steps (poised/after_read/after_write) are only taken while the
/// process is in its trying or exit section. Entering the trying section
/// and starting the exit section are local transitions initiated by the
/// scheduler (begin_trying / begin_exit); a process reaches the critical
/// section when a memory step lands it in a state whose section() is
/// kCritical, and returns to the remainder when its exit section's last
/// memory step lands in a kRemainder state.
class MutexAlgorithm {
 public:
  virtual ~MutexAlgorithm() = default;

  virtual std::string name() const = 0;
  virtual int num_processes() const = 0;
  virtual int num_registers() const = 0;
  virtual sim::Value initial_register(sim::RegId r) const = 0;
  virtual sim::State initial_state(sim::ProcId p) const = 0;

  virtual Section section(sim::ProcId p, sim::State s) const = 0;

  /// Pending memory operation; read or write only, valid in trying/exit.
  virtual sim::PendingOp poised(sim::ProcId p, sim::State s) const = 0;
  virtual sim::State after_read(sim::ProcId p, sim::State s,
                                sim::Value observed) const = 0;
  virtual sim::State after_write(sim::ProcId p, sim::State s) const = 0;

  /// Local transition out of the remainder section.
  virtual sim::State begin_trying(sim::ProcId p, sim::State s) const = 0;
  /// Local transition out of the critical section.
  virtual sim::State begin_exit(sim::ProcId p, sim::State s) const = 0;
};

/// Shared-memory configuration for a mutex system.
struct MutexConfig {
  std::vector<sim::State> states;
  std::vector<sim::Value> regs;
};

MutexConfig mutex_initial(const MutexAlgorithm& alg);

}  // namespace tsb::mutex
