#pragma once

#include "mutex/algorithm.hpp"

namespace tsb::mutex {

/// Tournament mutual exclusion: a complete binary tree of two-process
/// Peterson locks, the structure with which Yang–Anderson achieve the
/// O(n log n) canonical-execution cost that makes the Fan–Lynch
/// Omega(n log n) bound tight. A process climbs from its leaf to the root,
/// acquiring the Peterson-2 lock at every node (spinning only on that
/// node's two registers — local spinning), and releases the path top-down
/// on exit. Each passage performs O(log n) writes and informative reads.
///
/// Node nd (1..L-1, heap order, L = next power of two >= n) owns three
/// registers at base 3*(nd-1): flag[0], flag[1], turn.
class TournamentMutex final : public MutexAlgorithm {
 public:
  explicit TournamentMutex(int n);

  std::string name() const override;
  int num_processes() const override { return n_; }
  int num_registers() const override { return 3 * (leaves_ - 1); }
  sim::Value initial_register(sim::RegId) const override { return 0; }
  sim::State initial_state(sim::ProcId) const override;
  Section section(sim::ProcId p, sim::State s) const override;
  sim::PendingOp poised(sim::ProcId p, sim::State s) const override;
  sim::State after_read(sim::ProcId p, sim::State s,
                        sim::Value observed) const override;
  sim::State after_write(sim::ProcId p, sim::State s) const override;
  sim::State begin_trying(sim::ProcId p, sim::State s) const override;
  sim::State begin_exit(sim::ProcId p, sim::State s) const override;

  int height() const { return height_; }

 private:
  enum Phase : int {
    kIdle = 0,
    kWriteFlag,   // flag[side] := 1 at the current node
    kWriteTurn,   // turn := side
    kReadFlag,    // spin: read flag[1-side]
    kReadTurn,    // spin: read turn
    kCS,
    kExitWrite,   // flag[side] := 0, root first
    kDone,
  };
  static sim::State make(int phase, int level) {
    return static_cast<sim::State>(phase) |
           (static_cast<sim::State>(level) << 4);
  }
  static int phase_of(sim::State s) { return static_cast<int>(s & 0xf); }
  static int level_of(sim::State s) { return static_cast<int>(s >> 4); }

  /// Node on p's path at level j (1 = leaf's parent ... height = root).
  int node_at(sim::ProcId p, int level) const {
    return (leaves_ + p) >> level;
  }
  /// Which side of that node p arrives on.
  int side_at(sim::ProcId p, int level) const {
    return ((leaves_ + p) >> (level - 1)) & 1;
  }
  int reg_flag(int node, int side) const { return 3 * (node - 1) + side; }
  int reg_turn(int node) const { return 3 * (node - 1) + 2; }

  sim::State acquired(sim::ProcId p, int level) const;

  int n_;
  int leaves_;
  int height_;
};

}  // namespace tsb::mutex
