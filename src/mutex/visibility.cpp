#include "mutex/visibility.hpp"

#include <algorithm>
#include <cassert>

namespace tsb::mutex {

bool VisibilityGraph::tournament_complete() const {
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (!sees[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] &&
          !sees[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)]) {
        return false;
      }
    }
  }
  return true;
}

std::vector<sim::ProcId> VisibilityGraph::chain() const {
  std::vector<std::pair<int, sim::ProcId>> by_seen;
  for (int i = 0; i < n; ++i) {
    int count = 0;
    for (int j = 0; j < n; ++j) {
      if (sees[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) {
        ++count;
      }
    }
    by_seen.emplace_back(count, i);
  }
  std::sort(by_seen.begin(), by_seen.end());
  std::vector<sim::ProcId> out;
  for (int i = 0; i < n; ++i) {
    if (by_seen[static_cast<std::size_t>(i)].first != i) return {};
    out.push_back(by_seen[static_cast<std::size_t>(i)].second);
  }
  return out;
}

std::size_t VisibilityGraph::edge_count() const {
  std::size_t count = 0;
  for (const auto& row : sees) {
    for (bool b : row) count += b ? 1 : 0;
  }
  return count;
}

std::string VisibilityGraph::to_string() const {
  std::string out;
  for (int i = 0; i < n; ++i) {
    out += "p" + std::to_string(i) + " sees {";
    bool first = true;
    for (int j = 0; j < n; ++j) {
      if (sees[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) {
        if (!first) out += ",";
        out += "p" + std::to_string(j);
        first = false;
      }
    }
    out += "}\n";
  }
  return out;
}

VisibilityGraph build_visibility(const CanonicalResult& result) {
  VisibilityGraph g;
  g.n = static_cast<int>(result.enter_step.size());
  g.sees.assign(static_cast<std::size_t>(g.n),
                std::vector<bool>(static_cast<std::size_t>(g.n), false));
  assert(result.completed);
  for (int i = 0; i < g.n; ++i) {
    for (int j = 0; j < g.n; ++j) {
      if (i == j) continue;
      // pi sees pj iff pj left the CS before pi entered it. Critical
      // sections are disjoint, so this orders every pair one way.
      if (result.leave_step[static_cast<std::size_t>(j)] <
          result.enter_step[static_cast<std::size_t>(i)]) {
        g.sees[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            true;
      }
    }
  }
  return g;
}

}  // namespace tsb::mutex
