#include "mutex/encoder.hpp"

#include <cassert>
#include <functional>

namespace tsb::mutex {

namespace {
int bits_for(int n) {
  int bits = 1;
  while ((1 << bits) < n) ++bits;
  return bits;
}

class BitWriter {
 public:
  explicit BitWriter(ExecutionEncoding& enc) : enc_(enc) {}
  void put(std::uint32_t value, int bits) {
    for (int i = bits - 1; i >= 0; --i) {
      const bool bit = (value >> i) & 1u;
      if (enc_.bit_count % 8 == 0) enc_.bytes.push_back(0);
      if (bit) {
        enc_.bytes.back() |=
            static_cast<std::uint8_t>(1u << (7 - enc_.bit_count % 8));
      }
      ++enc_.bit_count;
    }
  }

 private:
  ExecutionEncoding& enc_;
};

class BitReader {
 public:
  explicit BitReader(const ExecutionEncoding& enc) : enc_(enc) {}
  bool done() const { return pos_ >= enc_.bit_count; }
  std::uint32_t get(int bits) {
    std::uint32_t value = 0;
    for (int i = 0; i < bits; ++i) {
      bool bit = false;
      if (pos_ < enc_.bit_count) {  // reads past the end yield zeros
        const std::size_t byte = pos_ / 8;
        bit = (enc_.bytes[byte] >> (7 - pos_ % 8)) & 1u;
      }
      value = (value << 1) | (bit ? 1u : 0u);
      ++pos_;
    }
    return value;
  }

 private:
  const ExecutionEncoding& enc_;
  std::size_t pos_ = 0;
};
}  // namespace

ExecutionEncoding encode_execution(const CanonicalResult& result, int n) {
  ExecutionEncoding enc;
  enc.bits_per_symbol = bits_for(n);
  enc.symbols = result.changing_schedule.size();
  BitWriter writer(enc);
  for (sim::ProcId p : result.changing_schedule) {
    writer.put(static_cast<std::uint32_t>(p), enc.bits_per_symbol);
  }
  return enc;
}

namespace {

/// Shared replay core: steps the algorithm through a stream of process
/// ids produced by `next_proc` (returns -1 on malformed input).
DecodeResult replay(const MutexAlgorithm& alg, std::size_t symbols,
                    bool eager_start,
                    const std::function<sim::ProcId()>& next_proc) {
  DecodeResult out;
  const int n = alg.num_processes();
  MutexConfig cfg = mutex_initial(alg);
  std::vector<bool> started(static_cast<std::size_t>(n), false);
  std::vector<bool> in_cs(static_cast<std::size_t>(n), false);

  if (eager_start) {
    for (sim::ProcId p = 0; p < n; ++p) {
      cfg.states[static_cast<std::size_t>(p)] =
          alg.begin_trying(p, cfg.states[static_cast<std::size_t>(p)]);
      started[static_cast<std::size_t>(p)] = true;
    }
  }

  for (std::size_t i = 0; i < symbols; ++i) {
    const sim::ProcId p = next_proc();
    if (p < 0 || p >= n) {
      out.error = "decoded process id out of range";
      return out;
    }
    const auto up = static_cast<std::size_t>(p);
    if (!started[up]) {
      cfg.states[up] = alg.begin_trying(p, cfg.states[up]);
      started[up] = true;
    }
    if (alg.section(p, cfg.states[up]) == Section::kCritical) {
      cfg.states[up] = alg.begin_exit(p, cfg.states[up]);
      in_cs[up] = false;
    }
    const Section sec = alg.section(p, cfg.states[up]);
    if (sec != Section::kTrying && sec != Section::kExit) {
      out.error = "decoded step for a process with no pending operation";
      return out;
    }
    MutexStep step = mutex_step(alg, cfg, p);
    if (!step.state_changed) {
      out.error = "decoded step caused no state change; encoding corrupt";
      return out;
    }
    cfg = step.config;
    ++out.steps_replayed;
    if (alg.section(p, cfg.states[up]) == Section::kCritical && !in_cs[up]) {
      in_cs[up] = true;
      out.cs_order.push_back(p);
    }
  }
  out.ok = static_cast<int>(out.cs_order.size()) == n;
  if (!out.ok && out.error.empty()) {
    out.error = "replay finished before every process entered the CS";
  }
  return out;
}

int gamma_bits(std::uint32_t k) {
  int len = 0;
  while ((1u << (len + 1)) <= k) ++len;
  return 2 * len + 1;
}

void put_gamma(BitWriter& w, std::uint32_t k) {
  int len = 0;
  while ((1u << (len + 1)) <= k) ++len;
  for (int i = 0; i < len; ++i) w.put(0, 1);
  w.put(k, len + 1);
}

std::uint32_t get_gamma(BitReader& r) {
  int len = 0;
  while (r.get(1) == 0) {
    if (++len > 32) return 0;  // corrupt/truncated stream
  }
  std::uint32_t k = 1;
  for (int i = 0; i < len; ++i) k = (k << 1) | r.get(1);
  return k;
}

}  // namespace

DecodeResult decode_execution(const MutexAlgorithm& alg,
                              const ExecutionEncoding& enc, bool eager_start) {
  BitReader reader(enc);
  return replay(alg, enc.symbols, eager_start, [&]() -> sim::ProcId {
    return static_cast<sim::ProcId>(reader.get(enc.bits_per_symbol));
  });
}

ExecutionEncoding encode_execution_rle(const CanonicalResult& result, int n) {
  ExecutionEncoding enc;
  enc.bits_per_symbol = bits_for(n);
  enc.symbols = result.changing_schedule.size();
  BitWriter writer(enc);
  std::size_t i = 0;
  const auto& steps = result.changing_schedule;
  while (i < steps.size()) {
    std::size_t j = i;
    while (j < steps.size() && steps[j] == steps[i]) ++j;
    writer.put(static_cast<std::uint32_t>(steps[i]), enc.bits_per_symbol);
    put_gamma(writer, static_cast<std::uint32_t>(j - i));
    i = j;
  }
  (void)gamma_bits;  // exposed for tests via encoding sizes
  return enc;
}

DecodeResult decode_execution_rle(const MutexAlgorithm& alg,
                                  const ExecutionEncoding& enc,
                                  bool eager_start) {
  BitReader reader(enc);
  sim::ProcId current = -1;
  std::uint32_t remaining = 0;
  return replay(alg, enc.symbols, eager_start, [&]() -> sim::ProcId {
    if (remaining == 0) {
      current = static_cast<sim::ProcId>(reader.get(enc.bits_per_symbol));
      remaining = get_gamma(reader);
      if (remaining == 0) return -1;  // malformed run length
    }
    --remaining;
    return current;
  });
}

}  // namespace tsb::mutex
