#include "mutex/burns_lynch.hpp"

#include <cassert>

namespace tsb::mutex {

MutexCoveringAdversary::Result MutexCoveringAdversary::run() {
  Result out;
  const int n = alg_.num_processes();
  MutexConfig cfg = mutex_initial(alg_);
  std::set<sim::RegId> covered;

  for (sim::ProcId p = 0; p < n; ++p) {
    const auto up = static_cast<std::size_t>(p);
    cfg.states[up] = alg_.begin_trying(p, cfg.states[up]);

    bool escaped = false;
    for (std::size_t step = 0; step < opts_.step_cap; ++step) {
      const Section sec = alg_.section(p, cfg.states[up]);
      if (sec == Section::kCritical) {
        // Entered the CS with every write obliterable: Burns-Lynch's
        // invisibility — the algorithm cannot be a correct mutex.
        out.invisible_entrant = p;
        out.narrative += "p" + std::to_string(p) +
                         " reached the CS writing only covered registers — "
                         "invisible to the covering processes\n";
        out.distinct_registers = static_cast<int>(covered.size());
        return out;
      }
      const sim::PendingOp op = alg_.poised(p, cfg.states[up]);
      if (op.is_write() && covered.count(op.reg) == 0) {
        covered.insert(op.reg);
        out.covering.emplace_back(p, op.reg);
        out.narrative += "p" + std::to_string(p) + " covers R" +
                         std::to_string(op.reg) + " after " +
                         std::to_string(step) + " solo steps\n";
        escaped = true;
        break;  // p parks here, poised; it takes no further steps
      }
      cfg = mutex_step(alg_, cfg, p).config;
    }
    if (!escaped) {
      out.narrative += "p" + std::to_string(p) +
                       " exhausted its step budget without escaping\n";
      out.distinct_registers = static_cast<int>(covered.size());
      return out;
    }
  }

  out.distinct_registers = static_cast<int>(covered.size());
  out.complete = out.distinct_registers == n;
  return out;
}

// ---------------------------------------------------------------------------
// NaiveLock
// ---------------------------------------------------------------------------

Section NaiveLock::section(sim::ProcId, sim::State s) const {
  switch (s) {
    case 0:
    case 5:
      return Section::kRemainder;
    case 3:
      return Section::kCritical;
    case 4:
      return Section::kExit;
    default:
      return Section::kTrying;
  }
}

sim::PendingOp NaiveLock::poised(sim::ProcId, sim::State s) const {
  switch (s) {
    case 1:
      return sim::PendingOp::read(0);
    case 2:
      return sim::PendingOp::write(0, 1);  // the non-atomic "set"
    case 4:
      return sim::PendingOp::write(0, 0);
    default:
      assert(false && "no pending memory operation");
      return sim::PendingOp::read(0);
  }
}

sim::State NaiveLock::after_read(sim::ProcId, sim::State s,
                                 sim::Value observed) const {
  assert(s == 1);
  (void)s;
  return observed == 0 ? 2 : 1;  // free: go take it; taken: spin
}

sim::State NaiveLock::after_write(sim::ProcId, sim::State s) const {
  if (s == 2) return 3;  // "acquired" (or so it believes)
  assert(s == 4);
  return 5;
}

sim::State NaiveLock::begin_trying(sim::ProcId, sim::State s) const {
  assert(s == 0 || s == 5);
  (void)s;
  return 1;
}

sim::State NaiveLock::begin_exit(sim::ProcId, sim::State s) const {
  assert(s == 3);
  (void)s;
  return 4;
}

}  // namespace tsb::mutex
