#include "sim/config_arena.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstring>

#include "obs/flight.hpp"
#include "obs/memledger.hpp"
#include "util/iofault.hpp"
#include "util/require.hpp"

namespace tsb::sim {

namespace {
constexpr std::size_t kInitialSlots = 1u << 10;

/// Configurations per delta group in a spilled block (the shared codec's
/// group size — see util/spill_store.hpp for the format).
constexpr std::size_t kGroup = util::spill::kGroupRecords;

// splitmix64 finalizer: one full-avalanche pass over the accumulated
// hash. The per-word step is a single xor-multiply (FNV-ish) — one mul of
// latency per word instead of three — and this finalizer restores
// avalanche in both the low bits (bucket index) and the high bits (slot
// tag). Interning is the engines' single hottest function; the hash runs
// once per protocol step ever taken.
inline std::uint64_t finalize(std::uint64_t h) {
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

}  // namespace

ConfigArena::ConfigArena(int num_states, int num_regs)
    : n_(num_states),
      m_(num_regs),
      words_(static_cast<std::size_t>(num_states) +
             static_cast<std::size_t>(num_regs)),
      scratch_(words_, 0),
      table_(kInitialSlots),
      mask_(kInitialSlots - 1) {
  assert(num_states > 0 && num_regs >= 0);
  shift_ = 64;
  for (std::size_t s = kInitialSlots; s > 1; s >>= 1) --shift_;
  // Segments target ~4 MB of words each: big enough that the directory
  // stays tiny and spill blocks amortize their syscalls, small enough
  // that one segment is a meaningful spill quantum for CI-sized budgets.
  seg_configs_ = kGroup;
  while (seg_configs_ * words_ * sizeof(Value) < (4u << 20) &&
         seg_configs_ < (1u << 20)) {
    seg_configs_ <<= 1;
  }
  seg_mask_ = seg_configs_ - 1;
  seg_shift_ = 0;
  for (std::size_t s = seg_configs_; s > 1; s >>= 1) ++seg_shift_;
}

ConfigArena::~ConfigArena() {
  for (auto& s : segs_) {
    release_map(*s);
    delete[] s->data;
  }
}

void ConfigArena::alloc_seg_data(Seg& s) {
  // Flat, uninitialized block (geas Vec idiom): pages are first touched by
  // the thread that writes configurations into them, which on a NUMA box
  // places each shard-flush's output near the worker that produced it.
  s.data = new Value[seg_configs_ * words_];
  resident_words_bytes_.fetch_add(seg_configs_ * words_ * sizeof(Value),
                                  std::memory_order_relaxed);
}

void ConfigArena::add_segment() {
  auto seg = std::make_unique<Seg>();
  alloc_seg_data(*seg);
  const std::size_t idx = segs_.size();
  if (idx >= dir_cap_) {
    const std::size_t cap = dir_cap_ == 0 ? 64 : dir_cap_ * 2;
    auto fresh = std::make_unique<DirEntry[]>(cap);
    DirEntry* old = dir_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < idx; ++i) {
      fresh[i].store(old[i].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    }
    dir_.store(fresh.get(), std::memory_order_release);
    dir_store_.push_back(std::move(fresh));
    dir_cap_ = cap;
  }
  dir_.load(std::memory_order_relaxed)[idx].store(seg.get(),
                                                  std::memory_order_release);
  segs_.push_back(std::move(seg));
  seg_count_.store(segs_.size(), std::memory_order_release);
}

void ConfigArena::ensure_capacity(std::size_t up_to) {
  if (seg_count_.load(std::memory_order_acquire) * seg_configs_ >= up_to) {
    return;
  }
  std::lock_guard<std::mutex> lk(grow_mu_);
  while (segs_.size() * seg_configs_ < up_to) add_segment();
}

void ConfigArena::clear() {
  count_ = 0;
  for (Slot& s : table_) s = Slot{};
  if (spilled_segments_ != 0 || spill_file_.end_offset() != 0) {
    for (auto& s : segs_) {
      release_map(*s);
      if (s->data == nullptr) alloc_seg_data(*s);  // was spilled; re-arm
    }
    spill_file_.truncate();
    first_resident_seg_ = 0;
    spilled_segments_ = 0;
    spilled_bytes_.store(0, std::memory_order_relaxed);
  }
}

void ConfigArena::pack(const Config& c, Value* dst) const {
  assert(static_cast<int>(c.states.size()) == n_);
  assert(static_cast<int>(c.regs.size()) == m_);
  std::memcpy(dst, c.states.data(),
              static_cast<std::size_t>(n_) * sizeof(Value));
  std::memcpy(dst + n_, c.regs.data(),
              static_cast<std::size_t>(m_) * sizeof(Value));
}

std::uint64_t ConfigArena::hash_words(const Value* w) const {
  std::uint64_t h = 0x5bd1e995u;
  for (std::size_t i = 0; i < words_; ++i) {
    h = (h ^ static_cast<std::uint64_t>(w[i])) * 0x100000001b3ull;
  }
  return finalize(h);
}

void ConfigArena::grow_table() {
  // High-bit bucket indexing makes growth a single sequential pass: each
  // entry's new bucket is a prefix of its stored tag, so nothing is
  // rehashed and the word store is never touched. The only random access
  // is the destination write, which the lookahead prefetch below covers.
  std::vector<Slot> bigger(table_.size() * 2);
  const std::size_t mask = bigger.size() - 1;
  const int shift = shift_ - 1;
  const int tag_shift = shift - 32;  // >= 0 while the table has < 2^32 slots
  const std::size_t nslots = table_.size();
  constexpr std::size_t kAhead = 8;
  for (std::size_t j = 0; j < nslots; ++j) {
    if (j + kAhead < nslots) {
      const Slot& a = table_[j + kAhead];
      if (a.id != kNoConfig) {
        __builtin_prefetch(
            bigger.data() + (static_cast<std::size_t>(a.tag) >> tag_shift), 1);
      }
    }
    const Slot& s = table_[j];
    if (s.id == kNoConfig) continue;
    std::size_t i = static_cast<std::size_t>(s.tag) >> tag_shift;
    while (bigger[i].id != kNoConfig) i = (i + 1) & mask;
    bigger[i] = s;
  }
  table_ = std::move(bigger);
  mask_ = mask;
  shift_ = shift;
}

ConfigId ConfigArena::append_words(const Value* w) {
  assert(count_ < kNoConfig);
  const ConfigId id = static_cast<ConfigId>(count_);
  ensure_capacity(count_ + 1);
  std::memcpy(slot_ptr(id), w, words_ * sizeof(Value));
  ++count_;
  return id;
}

ConfigArena::Interned ConfigArena::intern_words(const Value* w) {
  return intern_prehashed(w, hash_words(w));
}

ConfigArena::Interned ConfigArena::intern_prehashed(const Value* w,
                                                    std::uint64_t h) {
  // Keep the load factor below 0.7 (growth check before the probe so slot
  // references stay valid through the insertion).
  if ((count_ + 1) * 10 >= table_.size() * 7) grow_table();
  const std::uint32_t tag = static_cast<std::uint32_t>(h >> 32);
  std::size_t i = h >> shift_;
  while (true) {
    Slot& s = table_[i];
    if (s.id == kNoConfig) {
      const ConfigId id = append_words(w);
      s.tag = tag;
      s.id = id;
      return {id, true};
    }
    if (s.tag == tag && words_equal(words(s.id), w)) return {s.id, false};
    i = (i + 1) & mask_;
  }
}

ConfigId ConfigArena::find(const Value* w) const {
  const std::uint64_t h = hash_words(w);
  const std::uint32_t tag = static_cast<std::uint32_t>(h >> 32);
  std::size_t i = h >> shift_;
  while (true) {
    const Slot& s = table_[i];
    if (s.id == kNoConfig) return kNoConfig;
    if (s.tag == tag && words_equal(words(s.id), w)) return s.id;
    i = (i + 1) & mask_;
  }
}

// --- out-of-core --------------------------------------------------------

bool ConfigArena::set_spill(const std::string& dir,
                            std::size_t threshold_bytes,
                            std::size_t seg_configs_hint) {
  TSB_REQUIRE(count_ == 0,
              "ConfigArena::set_spill requires an empty arena");
  TSB_REQUIRE(words_ <= 255,
              "spill delta encoding stores slot counts in one byte");
  spill_file_.close();
  // Segment geometry may change below; drop any allocations from a prior
  // run (set_spill is a per-run reconfiguration, not a hot path).
  for (auto& s : segs_) {
    release_map(*s);
    delete[] s->data;
  }
  segs_.clear();
  seg_count_.store(0, std::memory_order_relaxed);
  resident_words_bytes_.store(0, std::memory_order_relaxed);
  spilled_bytes_.store(0, std::memory_order_relaxed);
  first_resident_seg_ = 0;
  spilled_segments_ = 0;
  if (seg_configs_hint != 0) {
    std::size_t sc = kGroup;
    while (sc < seg_configs_hint) sc <<= 1;
    seg_configs_ = sc;
    seg_mask_ = sc - 1;
    seg_shift_ = 0;
    for (std::size_t s = sc; s > 1; s >>= 1) ++seg_shift_;
  }
  if (!spill_file_.open(dir)) return false;
  spill_threshold_ = threshold_bytes;
  return true;
}

void ConfigArena::release_map(Seg& s) {
  if (s.blk.valid()) {
    mapped_bytes_.fetch_sub(s.blk.map_len, std::memory_order_relaxed);
    spill_file_.release(s.blk);
  }
}

bool ConfigArena::spill_segment(Seg& s) {
  // Encode through the shared codec (see util/spill_store.hpp for the
  // block format), then append at a page-aligned offset so the block can
  // be mapped directly. The write goes through the iofault wrapper (so the
  // CI fault matrix can inject ENOSPC/short-write/EINTR here); pwrite_full
  // owns the EINTR and short-write retry loop.
  std::vector<std::uint8_t> block;
  util::spill::encode_block<Value>(s.data, seg_configs_, words_, block);
  util::spill::BackingFile::Block blk;
  if (!spill_file_.append(block.data(), block.size(), blk)) {
    ++spill_failures_;
    return false;
  }
  s.blk = blk;
  delete[] s.data;
  s.data = nullptr;
  resident_words_bytes_.fetch_sub(seg_configs_ * words_ * sizeof(Value),
                                  std::memory_order_relaxed);
  spilled_bytes_.fetch_add(blk.bytes, std::memory_order_relaxed);
  mapped_bytes_.fetch_add(blk.map_len, std::memory_order_relaxed);
  ++spilled_segments_;
  return true;
}

std::size_t ConfigArena::maybe_spill(ConfigId pin_floor) {
  if (!spill_file_.valid()) return 0;
  const std::size_t seg_bytes = seg_configs_ * words_ * sizeof(Value);
  // Only FULL segments spill (the partial tail is still being appended
  // to), and never one at or above the pin floor: callers pin the
  // unexpanded frontier so its reads stay pointer-direct.
  const std::size_t full = count_ >> seg_shift_;
  const std::size_t pinned = static_cast<std::size_t>(pin_floor) >> seg_shift_;
  const std::size_t limit = full < pinned ? full : pinned;
  std::size_t released = 0;
  for (std::size_t i = first_resident_seg_; i < limit; ++i) {
    if (resident_words_bytes_.load(std::memory_order_relaxed) <=
        spill_threshold_) {
      break;
    }
    Seg& s = *segs_[i];
    if (s.data == nullptr) continue;
    if (!spill_segment(s)) {
      const int err = errno;
      spill_file_.close();
      util::spill::throw_spill_failure(
          "arena", err,
          resident_words_bytes_.load(std::memory_order_relaxed),
          spill_threshold_);
    }
    first_resident_seg_ = i + 1;
    released += seg_bytes;
  }
  return released;
}

const Value* ConfigArena::decode_spilled(const Seg& s,
                                         std::size_t local) const {
  static thread_local std::vector<Value> buf;
  if (buf.size() < words_) buf.resize(words_);
  util::spill::decode_record<Value>(s.blk.map + s.blk.skip, local, words_,
                                    buf.data());
  return buf.data();
}

}  // namespace tsb::sim
