#include "sim/config_arena.hpp"

#include <cassert>

namespace tsb::sim {

namespace {
constexpr std::size_t kInitialSlots = 1u << 10;

// splitmix64 finalizer: full-avalanche mix of one word into the running
// hash. Cheaper and better distributed than repeated hash_combine for the
// fixed-width word sequences the arena stores.
inline std::uint64_t mix(std::uint64_t h, std::uint64_t w) {
  h += 0x9e3779b97f4a7c15ull + w;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}
}  // namespace

ConfigArena::ConfigArena(int num_states, int num_regs)
    : n_(num_states),
      m_(num_regs),
      words_(static_cast<std::size_t>(num_states) +
             static_cast<std::size_t>(num_regs)),
      scratch_(words_, 0),
      table_(kInitialSlots),
      mask_(kInitialSlots - 1) {
  assert(num_states > 0 && num_regs >= 0);
}

void ConfigArena::clear() {
  count_ = 0;
  data_.clear();
  for (Slot& s : table_) s = Slot{};
}

void ConfigArena::pack(const Config& c, Value* dst) const {
  assert(static_cast<int>(c.states.size()) == n_);
  assert(static_cast<int>(c.regs.size()) == m_);
  std::memcpy(dst, c.states.data(),
              static_cast<std::size_t>(n_) * sizeof(Value));
  std::memcpy(dst + n_, c.regs.data(),
              static_cast<std::size_t>(m_) * sizeof(Value));
}

std::uint64_t ConfigArena::hash_words(const Value* w) const {
  std::uint64_t h = 0x5bd1e995u;
  for (std::size_t i = 0; i < words_; ++i) {
    h = mix(h, static_cast<std::uint64_t>(w[i]));
  }
  return h;
}

void ConfigArena::grow_table() {
  std::vector<Slot> bigger(table_.size() * 2);
  const std::size_t mask = bigger.size() - 1;
  for (const Slot& s : table_) {
    if (s.id == kNoConfig) continue;
    std::size_t i = s.hash & mask;
    while (bigger[i].id != kNoConfig) i = (i + 1) & mask;
    bigger[i] = s;
  }
  table_ = std::move(bigger);
  mask_ = mask;
}

ConfigId ConfigArena::append_words(const Value* w) {
  assert(count_ < kNoConfig);
  const ConfigId id = static_cast<ConfigId>(count_++);
  data_.insert(data_.end(), w, w + words_);
  return id;
}

ConfigArena::Interned ConfigArena::intern_scratch() {
  // Keep the load factor below 0.7 (growth check before the probe so slot
  // references stay valid through the insertion).
  if ((count_ + 1) * 10 >= table_.size() * 7) grow_table();
  const Value* w = scratch_.data();
  const std::uint64_t h = hash_words(w);
  std::size_t i = h & mask_;
  while (true) {
    Slot& s = table_[i];
    if (s.id == kNoConfig) {
      const ConfigId id = append_words(w);
      s.hash = h;
      s.id = id;
      return {id, true};
    }
    if (s.hash == h && words_equal(words(s.id), w)) return {s.id, false};
    i = (i + 1) & mask_;
  }
}

ConfigId ConfigArena::find(const Value* w) const {
  const std::uint64_t h = hash_words(w);
  std::size_t i = h & mask_;
  while (true) {
    const Slot& s = table_[i];
    if (s.id == kNoConfig) return kNoConfig;
    if (s.hash == h && words_equal(words(s.id), w)) return s.id;
    i = (i + 1) & mask_;
  }
}

}  // namespace tsb::sim
