#include "sim/config_arena.hpp"

#include <cassert>

namespace tsb::sim {

namespace {
constexpr std::size_t kInitialSlots = 1u << 10;

// splitmix64 finalizer: one full-avalanche pass over the accumulated
// hash. The per-word step is a single xor-multiply (FNV-ish) — one mul of
// latency per word instead of three — and this finalizer restores
// avalanche in both the low bits (bucket index) and the high bits (slot
// tag). Interning is the engines' single hottest function; the hash runs
// once per protocol step ever taken.
inline std::uint64_t finalize(std::uint64_t h) {
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}
}  // namespace

ConfigArena::ConfigArena(int num_states, int num_regs)
    : n_(num_states),
      m_(num_regs),
      words_(static_cast<std::size_t>(num_states) +
             static_cast<std::size_t>(num_regs)),
      scratch_(words_, 0),
      table_(kInitialSlots),
      mask_(kInitialSlots - 1) {
  assert(num_states > 0 && num_regs >= 0);
  shift_ = 64;
  for (std::size_t s = kInitialSlots; s > 1; s >>= 1) --shift_;
}

void ConfigArena::clear() {
  count_ = 0;
  data_.clear();
  for (Slot& s : table_) s = Slot{};
}

void ConfigArena::pack(const Config& c, Value* dst) const {
  assert(static_cast<int>(c.states.size()) == n_);
  assert(static_cast<int>(c.regs.size()) == m_);
  std::memcpy(dst, c.states.data(),
              static_cast<std::size_t>(n_) * sizeof(Value));
  std::memcpy(dst + n_, c.regs.data(),
              static_cast<std::size_t>(m_) * sizeof(Value));
}

std::uint64_t ConfigArena::hash_words(const Value* w) const {
  std::uint64_t h = 0x5bd1e995u;
  for (std::size_t i = 0; i < words_; ++i) {
    h = (h ^ static_cast<std::uint64_t>(w[i])) * 0x100000001b3ull;
  }
  return finalize(h);
}

void ConfigArena::grow_table() {
  // High-bit bucket indexing makes growth a single sequential pass: each
  // entry's new bucket is a prefix of its stored tag, so nothing is
  // rehashed and the word store is never touched. The only random access
  // is the destination write, which the lookahead prefetch below covers.
  std::vector<Slot> bigger(table_.size() * 2);
  const std::size_t mask = bigger.size() - 1;
  const int shift = shift_ - 1;
  const int tag_shift = shift - 32;  // >= 0 while the table has < 2^32 slots
  const std::size_t nslots = table_.size();
  constexpr std::size_t kAhead = 8;
  for (std::size_t j = 0; j < nslots; ++j) {
    if (j + kAhead < nslots) {
      const Slot& a = table_[j + kAhead];
      if (a.id != kNoConfig) {
        __builtin_prefetch(
            bigger.data() + (static_cast<std::size_t>(a.tag) >> tag_shift), 1);
      }
    }
    const Slot& s = table_[j];
    if (s.id == kNoConfig) continue;
    std::size_t i = static_cast<std::size_t>(s.tag) >> tag_shift;
    while (bigger[i].id != kNoConfig) i = (i + 1) & mask;
    bigger[i] = s;
  }
  table_ = std::move(bigger);
  mask_ = mask;
  shift_ = shift;
}

ConfigId ConfigArena::append_words(const Value* w) {
  assert(count_ < kNoConfig);
  const ConfigId id = static_cast<ConfigId>(count_++);
  data_.insert(data_.end(), w, w + words_);
  return id;
}

ConfigArena::Interned ConfigArena::intern_words(const Value* w) {
  return intern_prehashed(w, hash_words(w));
}

ConfigArena::Interned ConfigArena::intern_prehashed(const Value* w,
                                                    std::uint64_t h) {
  // Keep the load factor below 0.7 (growth check before the probe so slot
  // references stay valid through the insertion).
  if ((count_ + 1) * 10 >= table_.size() * 7) grow_table();
  const std::uint32_t tag = static_cast<std::uint32_t>(h >> 32);
  std::size_t i = h >> shift_;
  while (true) {
    Slot& s = table_[i];
    if (s.id == kNoConfig) {
      const ConfigId id = append_words(w);
      s.tag = tag;
      s.id = id;
      return {id, true};
    }
    if (s.tag == tag && words_equal(words(s.id), w)) return {s.id, false};
    i = (i + 1) & mask_;
  }
}

ConfigId ConfigArena::find(const Value* w) const {
  const std::uint64_t h = hash_words(w);
  const std::uint32_t tag = static_cast<std::uint32_t>(h >> 32);
  std::size_t i = h >> shift_;
  while (true) {
    const Slot& s = table_[i];
    if (s.id == kNoConfig) return kNoConfig;
    if (s.tag == tag && words_equal(words(s.id), w)) return s.id;
    i = (i + 1) & mask_;
  }
}

}  // namespace tsb::sim
