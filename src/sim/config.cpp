#include "sim/config.hpp"

#include <cassert>

#include "util/rng.hpp"

namespace tsb::sim {

std::uint64_t Config::hash() const {
  std::uint64_t h = 0x5bd1e995u;
  for (State s : states) {
    h = util::hash_combine(h, static_cast<std::uint64_t>(s));
  }
  h = util::hash_combine(h, 0xabcdefull);  // separate the two sections
  for (Value v : regs) {
    h = util::hash_combine(h, static_cast<std::uint64_t>(v));
  }
  return h;
}

std::string Config::to_string() const {
  std::string out = "states=[";
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(states[i]);
  }
  out += "] regs=[";
  for (std::size_t i = 0; i < regs.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(regs[i]);
  }
  return out + "]";
}

Config initial_config(const Protocol& proto, const std::vector<Value>& inputs) {
  assert(static_cast<int>(inputs.size()) == proto.num_processes());
  Config c;
  c.states.reserve(inputs.size());
  for (ProcId p = 0; p < proto.num_processes(); ++p) {
    c.states.push_back(proto.initial_state(p, inputs[p]));
  }
  c.regs.assign(static_cast<std::size_t>(proto.num_registers()),
                proto.initial_register());
  return c;
}

bool indistinguishable(const Config& c, const Config& d, ProcSet p) {
  if (c.regs != d.regs) return false;
  if (c.states.size() != d.states.size()) return false;
  bool same = true;
  p.for_each([&](int proc) {
    if (c.states[static_cast<std::size_t>(proc)] !=
        d.states[static_cast<std::size_t>(proc)]) {
      same = false;
    }
  });
  return same;
}

std::optional<Value> decision_of(const Protocol& proto, const Config& c,
                                 ProcId p) {
  const PendingOp op = proto.poised(p, c.states[static_cast<std::size_t>(p)]);
  if (op.is_decide()) return op.value;
  return std::nullopt;
}

PendingOp poised_in(const Protocol& proto, const Config& c, ProcId p) {
  return proto.poised(p, c.states[static_cast<std::size_t>(p)]);
}

}  // namespace tsb::sim
