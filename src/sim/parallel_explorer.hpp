#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/explorer.hpp"
#include "util/worker_pool.hpp"

namespace tsb::sim {

namespace detail {

/// Concurrent (parent id, stepping process) edge store for the
/// work-stealing explorer: fixed 64Ki-record segments behind an atomic
/// pointer directory, so workers committing disjoint ids write without
/// coordination and nothing ever reallocates under a reader. Segment
/// publication is a CAS (the losing allocator frees); record writes are
/// plain stores to exclusively-owned indices, read only after the pool
/// joins (witness reconstruction) or for already-published ancestors.
class ParentStore {
 public:
  static constexpr std::size_t kSegShift = 16;
  static constexpr std::size_t kSegSize = std::size_t{1} << kSegShift;

  struct Rec {
    ConfigId parent;
    std::int32_t via;
  };

  ParentStore() = default;
  ~ParentStore();
  ParentStore(const ParentStore&) = delete;
  ParentStore& operator=(const ParentStore&) = delete;

  /// Size the directory for ids < cap. Single-threaded (between runs);
  /// existing segments are kept for reuse.
  void prepare(std::size_t cap);

  /// Make id's segment exist. Thread-safe, lock-free.
  void ensure(ConfigId id) {
    const std::size_t seg = id >> kSegShift;
    Rec* p = dir_[seg].load(std::memory_order_acquire);
    if (p != nullptr) return;
    Rec* fresh = new Rec[kSegSize];
    if (dir_[seg].compare_exchange_strong(p, fresh, std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
      bytes_.fetch_add(kSegSize * sizeof(Rec), std::memory_order_relaxed);
    } else {
      delete[] fresh;
    }
  }

  void set(ConfigId id, Rec r) {
    dir_[id >> kSegShift].load(std::memory_order_acquire)[id &
                                                          (kSegSize - 1)] = r;
  }
  Rec get(ConfigId id) const {
    return dir_[id >> kSegShift].load(
        std::memory_order_acquire)[id & (kSegSize - 1)];
  }

  std::size_t memory_bytes() const {
    return bytes_.load(std::memory_order_relaxed) +
           dir_segs_ * sizeof(std::atomic<Rec*>);
  }

 private:
  std::unique_ptr<std::atomic<Rec*>[]> dir_;
  std::size_t dir_segs_ = 0;
  std::atomic<std::size_t> bytes_{0};
};

}  // namespace detail

/// Parallel breadth-first-style enumeration by work stealing.
///
/// Replaces the earlier level-synchronous design (expand / dedup / commit
/// phases with a full-pool rendezvous at every BFS level — the barrier
/// idles every worker at each level tail, which is most of the wall clock
/// on shallow-but-wide spaces). There are no levels and no barriers:
///
///   * Work items are contiguous ConfigId ranges of freshly discovered
///     configurations. Each worker owns a Chase-Lev-style deque — the
///     owner pushes and pops at the bottom, idle workers steal from the
///     top (here guarded by an uncontended per-deque spinlock rather than
///     the lock-free C11 protocol; the critical section is a couple of
///     index updates, and every acquisition moves >= one chunk of work).
///   * The visited set is sharded kShards ways by the top hash bits. A
///     worker expanding a chunk stages successors in per-shard batch
///     buffers and flushes a whole batch under one shard spinlock:
///     probe, allocate ids (one global fetch_add each), write words into
///     the shared segmented ConfigArena, record the parent edge, publish
///     the slot. Batching amortizes the handoff that made the old design
///     slower than sequential at small n. Shard tables and arena segments
///     are allocated (first-touched) by the worker that grows them.
///   * Termination: a global count of discovered-but-unexpanded
///     configurations; a worker with an empty deque that fails to steal
///     exits when the count is zero (every item is counted from before it
///     becomes stealable until after its chunk is fully expanded AND its
///     candidates flushed, so zero really means drained).
///
/// Below Options::parallel_threshold discovered configurations the
/// calling thread runs a sequential warm phase against the same shard
/// tables (no locks, no pool) — small enumerations, the valency oracle's
/// common case, never pay for the machinery at all.
///
/// Determinism contract (relaxed from the old bit-identical rule; see
/// DESIGN.md "work-stealing soundness"): on COMPLETE runs the visited
/// configuration SET — and therefore the visited count and any
/// order-independent visitor verdict — is identical to the sequential
/// Explorer's. Discovery order, id assignment, and witness schedules are
/// not; witnesses remain valid P-only schedules (parents always commit
/// before children) and every consumer replay-verifies them. Truncated
/// runs stop at machine-dependent points but never claim completeness,
/// so budget/cap truncation still proves positives, never negatives.
/// Visitors run serialized under one mutex (possibly from different
/// threads, with happens-before between consecutive calls), so existing
/// single-threaded visitors stay correct unchanged.
class ParallelExplorer {
 public:
  struct Options {
    std::size_t max_configs = 2'000'000;
    int threads = 0;  ///< worker threads; 0 = hardware concurrency
    /// Same meaning as Explorer::Options::stats_min_visited.
    std::size_t stats_min_visited = 10'000;
    /// Ids per stealable work chunk: the deque handoff granularity.
    std::uint32_t chunk_configs = 256;
    /// Stay on the sequential warm path until this many configurations
    /// are discovered; spaces smaller than this never touch the pool.
    std::size_t parallel_threshold = 32'768;
  };

  using Result = ExploreResult;

  explicit ParallelExplorer(const Protocol& proto)
      : ParallelExplorer(proto, Options{}) {}
  ParallelExplorer(const Protocol& proto, Options opts);
  ~ParallelExplorer();

  int threads() const { return pool_.size(); }

  /// Same graceful-degradation contract as Explorer::set_budget: trip the
  /// memory or wall budget and explore() returns truncated +
  /// budget_exhausted. Budget truncation points are machine-dependent.
  void set_budget(std::size_t max_arena_bytes,
                  std::chrono::steady_clock::time_point deadline) {
    budget_bytes_ = max_arena_bytes;
    budget_deadline_ = deadline;
  }

  /// Out-of-core arena spilling; same contract as Explorer::set_spill.
  /// During work-stealing the spill itself runs at a stop-the-world
  /// rendezvous (workers park between chunks), so readers never race a
  /// segment teardown.
  bool set_spill(const std::string& dir, std::size_t threshold_bytes,
                 std::size_t seg_configs_hint = 0) {
    return arena_.set_spill(dir, threshold_bytes, seg_configs_hint);
  }

  /// Heap bytes this exploration owns: arena + parent edges + per-worker
  /// staging buffers + deques + the sharded dedup tables. What
  /// set_budget() caps and the ledger's explore.* accounts report. Safe
  /// to call from any thread mid-run (all inputs are atomics or stable).
  std::size_t tracked_bytes() const;

  template <typename Visit>
  Result explore(const Config& root, ProcSet p, Visit&& visit) {
    VisitFn fn = [](void* ctx, const ConfigView& v) {
      return (*static_cast<std::remove_reference_t<Visit>*>(ctx))(v);
    };
    return explore_impl(root, p, fn, &visit);
  }

  /// Schedule from the last explore()'s root to `target`; target must have
  /// been visited. Empty optional if it was not.
  std::optional<Schedule> witness(const Config& target) const;

  /// Same, by the id a visitor saw.
  std::optional<Schedule> witness_by_id(ConfigId id) const;

  /// Number of configurations interned by the last explore().
  std::size_t size() const { return arena_.size(); }

  ConfigView view(ConfigId id) const { return arena_.view(id); }

  /// Work-stealing forensics for the last explore() (also surfaced as
  /// sim.explore.* metrics, explore.ws stats records, and flight events).
  struct RunStats {
    std::uint64_t steals = 0;       ///< successful chunk steals
    std::uint64_t steal_fails = 0;  ///< full failed victim sweeps
    std::uint64_t idle_spins = 0;   ///< backoff rounds with no work found
    std::uint64_t chunks = 0;       ///< work items expanded
    std::uint64_t spill_pauses = 0; ///< stop-the-world spill rendezvous
    std::uint64_t warm_visited = 0; ///< configs from the sequential phase
    bool went_parallel = false;     ///< pool was engaged at all
  };
  const RunStats& last_run() const { return run_stats_; }

 private:
  static constexpr int kShards = 64;
  static constexpr std::uint32_t kEmptyRef = 0xFFFFFFFFu;
  static constexpr std::size_t kBatch = 48;  ///< candidates per shard flush

  using VisitFn = bool (*)(void*, const ConfigView&);

  /// A stealable range of discovered-but-unexpanded configuration ids.
  struct WorkItem {
    ConfigId begin = 0;
    ConfigId end = 0;
  };

  /// Chase-Lev-style deque: owner pushes/pops the bottom (LIFO keeps the
  /// owner in cache-warm ids), thieves take the top (oldest, largest
  /// ranges first). A per-deque spinlock guards the index updates.
  struct alignas(64) Deque {
    std::atomic_flag lock = ATOMIC_FLAG_INIT;
    std::vector<WorkItem> buf;
    std::size_t top = 0;  ///< buf[top..) is live; buf.back() is the bottom
    std::atomic<std::size_t> cap_bytes{0};

    bool pop(WorkItem& out);    // owner, bottom
    bool steal(WorkItem& out);  // thief, top
    void push(WorkItem item);   // owner, bottom
    void clear();
  };

  /// One shard of the visited set: open addressing over (full hash,
  /// committed ConfigId), grown under the shard lock by the flushing
  /// worker (first-touch placement). `ref` is always a committed id whose
  /// words are already in the arena — publication happens inside the same
  /// lock hold, so a later probe can safely compare words through it.
  struct alignas(64) Shard {
    std::atomic_flag lock = ATOMIC_FLAG_INIT;
    struct Slot {
      std::uint64_t hash = 0;
      std::uint32_t ref = kEmptyRef;
    };
    std::vector<Slot> slots;
    std::size_t mask = 0;
    std::size_t used = 0;

    void reset(std::atomic<std::size_t>& bytes);
    void reserve_for(std::size_t incoming, std::atomic<std::size_t>& bytes);
  };

  /// A successor staged for one shard: meta plus words at the matching
  /// index of the batch's word buffer.
  struct Cand {
    std::uint64_t hash;
    ConfigId parent;
    std::int32_t via;
  };

  struct Batch {
    std::vector<Cand> meta;
    std::vector<Value> words;
  };

  struct alignas(64) WorkerCtx {
    std::vector<Batch> batches;     ///< kShards staging buffers
    std::vector<Value> cur;         ///< copy of the config being expanded
    std::vector<ConfigId> fresh;    ///< new ids from the last flush
    std::vector<WorkItem> runs;     ///< coalesced fresh id ranges
    // Owner-written, other-thread-read (periodic stats): relaxed atomics.
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> steal_fails{0};
    std::atomic<std::uint64_t> idle_spins{0};
    std::atomic<std::uint64_t> chunks{0};
    std::uint64_t visited_delta = 0;  ///< owner-only metric staging
    std::uint64_t dedup_delta = 0;    ///< dedup hits not yet in the registry
    std::uint64_t dedup_run = 0;      ///< dedup hits this run (stats.done)
  };

  /// Stop-the-world spill rendezvous: the requesting worker waits until
  /// every other still-active worker parks between chunks, spills with
  /// the arena quiesced, then releases. Workers that exit (termination)
  /// count themselves out.
  struct SpillSync {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<bool> requested{false};  ///< checked lock-free between chunks
    int active = 0;
    int parked = 0;
  };

  Result explore_impl(const Config& root, ProcSet p, VisitFn fn, void* ctx);
  void worker_main(int t, ProcSet p, VisitFn fn, void* ctx,
                   obs::Heartbeat& hb);
  void expand_chunk(WorkerCtx& w, WorkItem item, ProcSet p, VisitFn fn,
                    void* vctx);
  /// Flush one shard's staged batch; returns false when the run stopped
  /// (truncation/abort) mid-flush.
  void flush_shard(WorkerCtx& w, int s);
  /// Visit + enqueue the ids flush_shard produced.
  void publish_fresh(WorkerCtx& w, int self, VisitFn fn, void* vctx);
  void request_spill();
  /// Stop-the-world rendezvous (same SpillSync protocol as request_spill)
  /// so the checkpoint service can run its serializer — or unwind a
  /// requested stop as CheckpointStop — while every other worker is parked
  /// between chunks and no shared state is being mutated.
  void request_checkpoint();
  void park_for_spill();
  bool stopping() const {
    return stop_.load(std::memory_order_relaxed);
  }
  void update_ledger() const;
  std::size_t committed() const;

  Shard& shard_of(std::uint64_t h) {
    return shards_[(h >> 58) & (kShards - 1)];
  }

  const Protocol& proto_;
  Options opts_;
  std::size_t budget_bytes_ = 0;
  std::chrono::steady_clock::time_point budget_deadline_ =
      std::chrono::steady_clock::time_point::max();

  ConfigArena arena_;
  detail::ParentStore parent_;
  std::vector<Shard> shards_;
  std::vector<Deque> deques_;
  std::vector<WorkerCtx> workers_;
  util::WorkerPool pool_;

  // Per-run shared state.
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::int64_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> truncated_{false};
  std::atomic<bool> aborted_{false};
  std::atomic<bool> budget_exhausted_{false};
  std::atomic<ConfigId> abort_id_{kNoConfig};
  std::atomic<std::size_t> shard_bytes_{0};
  std::mutex visit_mu_;
  SpillSync spill_;
  RunStats run_stats_;
  std::size_t visited_count_ = 0;  ///< committed() of the last run
};

}  // namespace tsb::sim
