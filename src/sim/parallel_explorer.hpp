#pragma once

#include <array>
#include <chrono>
#include <optional>
#include <utility>
#include <vector>

#include "obs/span.hpp"
#include "sim/explorer.hpp"
#include "util/worker_pool.hpp"

namespace tsb::sim {

/// Parallel breadth-first enumeration, bit-identical to Explorer.
///
/// The BFS is level-synchronous; each level runs three phases:
///
///   A (parallel)  — the frontier (a contiguous ConfigId range, since ids
///       are assigned in discovery order) is split into one contiguous
///       slice per worker; each worker expands its slice into a private
///       candidate buffer: packed successor words, parent id, stepping
///       process, and hash.
///   B (parallel)  — the visited set is sharded 16 ways by the top hash
///       bits; each shard's owner scans the level's candidates destined to
///       it *in global discovery order* and probes its open-addressing
///       table: a match (against a committed configuration or an earlier
///       candidate of this level) marks the candidate a duplicate,
///       otherwise the candidate is marked the winner and holds the slot.
///   C (sequential) — candidates are walked in global discovery order
///       (frontier order, then ascending process id — exactly the order
///       the sequential explorer discovers them); winners are appended to
///       the arena, their slot is patched with the final id, and the
///       visitor runs. The configuration cap is re-checked before each
///       frontier entry's candidates, which reproduces the sequential
///       explorer's truncation point exactly.
///
/// Determinism rule (tested in test_explorer_parallel): because phase C
/// assigns ids in the sequential discovery order and duplicate resolution
/// in phase B prefers the earliest occurrence in that same order, the
/// visited set, the id of every configuration, every parent edge (hence
/// every witness schedule), the visit order, and the truncated/aborted
/// verdicts are all identical to Explorer's, for any thread count.
///
/// Only phases A and B run concurrently, and they touch disjoint data
/// (worker-private buffers; shard-private tables) with a barrier between
/// phases — the visitor itself always runs on the calling thread.
class ParallelExplorer {
 public:
  struct Options {
    std::size_t max_configs = 2'000'000;
    int threads = 0;  ///< worker threads; 0 = hardware concurrency
    /// Same meaning as Explorer::Options::stats_min_visited.
    std::size_t stats_min_visited = 10'000;
  };

  using Result = ExploreResult;

  explicit ParallelExplorer(const Protocol& proto)
      : ParallelExplorer(proto, Options{}) {}
  ParallelExplorer(const Protocol& proto, Options opts);

  int threads() const { return pool_.size(); }

  /// Same graceful-degradation contract as Explorer::set_budget: trip the
  /// memory or wall budget and explore() returns truncated +
  /// budget_exhausted. Budgeted runs waive bit-identity with Explorer
  /// (budget truncation points are machine-dependent).
  void set_budget(std::size_t max_arena_bytes,
                  std::chrono::steady_clock::time_point deadline) {
    budget_bytes_ = max_arena_bytes;
    budget_deadline_ = deadline;
  }

  /// Heap bytes this exploration owns: arena + parent edges + per-worker
  /// candidate buffers + the sharded dedup tables. This is what
  /// set_budget() caps and what the ledger's explore.* accounts report —
  /// the parallel explorer's shard tables and candidate buffers are real
  /// memory the raw arena-bytes check used to miss.
  std::size_t tracked_bytes() const;

  template <typename Visit>
  Result explore(const Config& root, ProcSet p, Visit&& visit) {
    arena_.clear();
    parent_.clear();
    for (Shard& sh : shards_) sh.reset();

    Result res;
    detail::ExploreMetrics& metrics = detail::explore_metrics();
    detail::LevelStatsTracker stats("explore-par", opts_.stats_min_visited);
    obs::Heartbeat hb("explore-par");
    const std::size_t W = arena_.words_per_config();

    // Root.
    arena_.pack(root, arena_.scratch());
    const std::uint64_t root_hash = arena_.hash_words(arena_.scratch());
    const ConfigId root_id = arena_.append_words(arena_.scratch());
    shard_of(root_hash).insert_committed(root_hash, root_id);
    parent_.emplace_back(kNoConfig, -1);
    ++res.visited;
    metrics.visited.add();
    if (!visit(arena_.view(root_id))) {
      res.aborted = true;
      res.abort_config = arena_.materialize(root_id);
      if (stats.active()) stats.done(arena_, res, 0);
      return res;
    }

    const int T = pool_.size();
    std::uint64_t dedup_total = 0;
    std::size_t level_idx = 0;
    ConfigId lo = 0;
    while (lo < arena_.size() && !res.aborted && !res.truncated) {
      if (budget_deadline_ != std::chrono::steady_clock::time_point::max() &&
          std::chrono::steady_clock::now() >= budget_deadline_) {
        obs::flight::record(obs::flight::Ev::kBudgetTrip,
                            static_cast<std::int64_t>(tracked_bytes()), 0);
        res.truncated = true;
        res.budget_exhausted = true;
        break;
      }
      const ConfigId hi = static_cast<ConfigId>(arena_.size());
      const ConfigId chunk = (hi - lo + static_cast<ConfigId>(T) - 1) /
                             static_cast<ConfigId>(T);
      for (int t = 0; t < T; ++t) {
        const ConfigId b = lo + static_cast<ConfigId>(t) * chunk;
        workers_[static_cast<std::size_t>(t)].begin = b > hi ? hi : b;
        workers_[static_cast<std::size_t>(t)].end =
            b + chunk > hi ? hi : b + chunk;
      }
      ++level_idx;
      update_ledger();
      obs::flight::record(obs::flight::Ev::kLevel,
                          static_cast<std::int64_t>(level_idx),
                          static_cast<std::int64_t>(hi - lo));
      metrics.frontier.set(static_cast<std::int64_t>(hi - lo));
      hb.beat(
          [&] {
            return "configs=" + std::to_string(res.visited) +
                   " frontier=" + std::to_string(hi - lo) +
                   " threads=" + std::to_string(T);
          },
          [&](obs::StatusSnapshot& s) {
            s.level = static_cast<std::int64_t>(level_idx);
            s.frontier = static_cast<std::int64_t>(hi - lo);
            s.visited = static_cast<std::int64_t>(res.visited);
            s.cap = static_cast<std::int64_t>(opts_.max_configs);
          });

      const auto t_expand = std::chrono::steady_clock::now();
      {
        obs::Span span("par.expand");
        span.set_value(static_cast<std::int64_t>(hi - lo));
        pool_.run([&](int t) {  // phase A
          expand_slice(workers_[static_cast<std::size_t>(t)], p);
        });
      }
      const auto t_dedup = std::chrono::steady_clock::now();
      {
        obs::Span span("par.dedup");
        pool_.run([&](int t) {  // phase B
          for (int s = t; s < kShards; s += T) dedup_shard(s);
        });
      }
      const auto t_commit = std::chrono::steady_clock::now();

      // Phase C: commit in global discovery order.
      std::uint64_t level_dedup = 0;
      {
        obs::Span span("par.commit");
        for (ConfigId pos = lo; pos < hi && !res.aborted; ++pos) {
          if (arena_.size() >= opts_.max_configs) {
            res.truncated = true;
            break;
          }
          if (budget_bytes_ != 0 && tracked_bytes() >= budget_bytes_) {
            update_ledger();
            obs::flight::record(obs::flight::Ev::kBudgetTrip,
                                static_cast<std::int64_t>(tracked_bytes()),
                                static_cast<std::int64_t>(budget_bytes_));
            res.truncated = true;
            res.budget_exhausted = true;
            break;
          }
          Worker& w = workers_[(pos - lo) / chunk];
          while (w.commit_cursor < w.cands.size() &&
                 w.cands[w.commit_cursor].parent == pos) {
            const Candidate& c = w.cands[w.commit_cursor];
            if (!c.winner) {
              metrics.dedup_hits.add();
              ++level_dedup;
              ++w.commit_cursor;
              continue;
            }
            const ConfigId id =
                arena_.append_words(w.words.data() + w.commit_cursor * W);
            shards_[c.shard].commit(c.slot, id);
            parent_.emplace_back(c.parent, c.via);
            ++res.visited;
            metrics.visited.add();
            ++w.commit_cursor;
            if (!visit(arena_.view(id))) {
              res.aborted = true;
              res.abort_config = arena_.materialize(id);
              break;
            }
          }
        }
        span.set_value(static_cast<std::int64_t>(arena_.size()) - hi);
      }
      dedup_total += level_dedup;
      if (stats.active()) {
        commit_level_stats(stats, hi - lo,
                           static_cast<ConfigId>(arena_.size()) - hi,
                           level_dedup, t_expand, t_dedup, t_commit);
      }
      for (Shard& sh : shards_) sh.pending.clear();
      lo = hi;
    }
    update_ledger();
    if (stats.active()) stats.done(arena_, res, dedup_total);
    return res;
  }

  /// Schedule from the last explore()'s root to `target`; target must have
  /// been visited. Empty optional if it was not.
  std::optional<Schedule> witness(const Config& target) const;

  /// Same, by the id a visitor saw.
  std::optional<Schedule> witness_by_id(ConfigId id) const;

  /// Number of configurations interned by the last explore().
  std::size_t size() const { return arena_.size(); }

  ConfigView view(ConfigId id) const { return arena_.view(id); }

 private:
  static constexpr int kShards = 16;  // fixed: independent of thread count
  static constexpr std::uint32_t kPendingBit = 0x80000000u;
  static constexpr std::uint32_t kEmptyRef = 0xFFFFFFFFu;

  struct Candidate {
    std::uint64_t hash;
    ConfigId parent;        ///< frontier position == parent's ConfigId
    std::int32_t via;       ///< stepping process
    std::uint32_t slot;     ///< shard table slot held (winners only)
    std::uint16_t shard;
    std::uint16_t winner;   ///< 1 = first occurrence in discovery order
  };

  struct Worker {
    ConfigId begin = 0;  ///< frontier slice, contiguous id range
    ConfigId end = 0;
    std::vector<Candidate> cands;           ///< in discovery order
    std::vector<Value> words;               ///< cands.size() * W words
    std::vector<std::uint32_t> by_shard[kShards];  ///< candidate indices
    std::size_t commit_cursor = 0;          ///< phase C progress
  };

  /// One shard of the visited set: an open-addressing table whose `ref` is
  /// either a committed ConfigId or (kPendingBit | index) into `pending`,
  /// the words of this level's not-yet-committed winners.
  struct Shard {
    struct Slot {
      std::uint64_t hash = 0;
      std::uint32_t ref = kEmptyRef;
    };
    std::vector<Slot> slots;
    std::size_t mask = 0;
    std::size_t used = 0;  ///< occupied slots (committed + pending)
    std::vector<const Value*> pending;

    void reset();
    void reserve_for(std::size_t incoming);
    void insert_committed(std::uint64_t h, ConfigId id);
    void commit(std::uint32_t slot, ConfigId id) { slots[slot].ref = id; }
  };

  Shard& shard_of(std::uint64_t h) {
    return shards_[(h >> 60) & (kShards - 1)];
  }
  const Shard& shard_of(std::uint64_t h) const {
    return shards_[(h >> 60) & (kShards - 1)];
  }

  void expand_slice(Worker& w, ProcSet p);
  void dedup_shard(int s);
  void update_ledger() const;

  /// Extend the shared per-level stats record with the parallel-only fields
  /// (phase wall times, candidate volume, per-shard occupancy + imbalance)
  /// and buffer it. `t_*` bracket the three phases; "now" closes phase C.
  void commit_level_stats(detail::LevelStatsTracker& stats,
                          std::uint64_t frontier, std::uint64_t discovered,
                          std::uint64_t dedup,
                          std::chrono::steady_clock::time_point t_expand,
                          std::chrono::steady_clock::time_point t_dedup,
                          std::chrono::steady_clock::time_point t_commit);

  const Protocol& proto_;
  Options opts_;
  std::size_t budget_bytes_ = 0;
  std::chrono::steady_clock::time_point budget_deadline_ =
      std::chrono::steady_clock::time_point::max();
  ConfigArena arena_;
  std::vector<std::pair<ConfigId, ProcId>> parent_;
  std::vector<Worker> workers_;
  std::array<Shard, kShards> shards_;
  util::WorkerPool pool_;
};

}  // namespace tsb::sim
