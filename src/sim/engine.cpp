#include "sim/engine.hpp"

#include <cassert>

#include "obs/metrics.hpp"

namespace tsb::sim {

namespace {
// Step counts by op kind; a lower bound's "work" is steps, so every future
// perf PR reads these. Looked up once, then relaxed sharded adds.
struct StepCounters {
  obs::Counter& read = obs::Registry::global().counter("sim.steps.read");
  obs::Counter& write = obs::Registry::global().counter("sim.steps.write");
  obs::Counter& swap = obs::Registry::global().counter("sim.steps.swap");
  obs::Counter& decided_noop =
      obs::Registry::global().counter("sim.steps.decided_noop");
};
StepCounters& step_counters() {
  static StepCounters c;
  return c;
}
}  // namespace

std::string PendingOp::to_string() const {
  switch (kind) {
    case OpKind::kRead:
      return "read(R" + std::to_string(reg) + ")";
    case OpKind::kWrite:
      return "write(R" + std::to_string(reg) + ", " + std::to_string(value) +
             ")";
    case OpKind::kDecide:
      return "decide(" + std::to_string(value) + ")";
    case OpKind::kSwap:
      return "swap(R" + std::to_string(reg) + ", " + std::to_string(value) +
             ")";
  }
  return "?";
}

std::string StepRecord::to_string() const {
  std::string out = "p" + std::to_string(proc) + ": " + op.to_string();
  if (op.is_read() || op.is_swap()) {
    out += " -> " + std::to_string(read_result);
  }
  return out;
}

Value apply_op(const Protocol& proto, const PendingOp& op, ProcId p,
               Value* states, Value* regs) {
  assert(!op.is_decide());
  assert(op.reg >= 0 && op.reg < proto.num_registers());
  const State s = states[p];
  if (op.is_read()) {
    step_counters().read.add();
    const Value observed = regs[op.reg];
    states[p] = proto.after_read(p, s, observed);
    return observed;
  }
  if (op.is_swap()) {
    step_counters().swap.add();
    const Value overwritten = regs[op.reg];
    regs[op.reg] = op.value;
    states[p] = proto.after_swap(p, s, overwritten);
    return overwritten;
  }
  step_counters().write.add();
  regs[op.reg] = op.value;
  states[p] = proto.after_write(p, s);
  return 0;
}

Config step(const Protocol& proto, const Config& c, ProcId p, Trace* trace) {
  assert(p >= 0 && p < proto.num_processes());
  const State s = c.states[static_cast<std::size_t>(p)];
  const PendingOp op = proto.poised(p, s);

  if (op.is_decide()) {
    // Decided processes have terminated; stepping them changes nothing.
    step_counters().decided_noop.add();
    return c;
  }

  Config next = c;
  StepRecord rec{p, op, 0};
  rec.read_result = apply_op(proto, op, p, next.states.data(), next.regs.data());
  if (trace != nullptr) trace->records.push_back(rec);
  return next;
}

Config run(const Protocol& proto, const Config& c, const Schedule& alpha,
           Trace* trace) {
  Config cur = c;
  for (ProcId p : alpha.steps()) cur = step(proto, cur, p, trace);
  return cur;
}

SoloRun run_solo(const Protocol& proto, const Config& c, ProcId p,
                 std::size_t max_steps) {
  SoloRun out;
  out.final = c;
  for (std::size_t i = 0; i < max_steps; ++i) {
    if (auto d = decision_of(proto, out.final, p)) {
      out.decided = true;
      out.decision = *d;
      return out;
    }
    out.final = step(proto, out.final, p, &out.trace);
    out.schedule.push(p);
  }
  if (auto d = decision_of(proto, out.final, p)) {
    out.decided = true;
    out.decision = *d;
  }
  return out;
}

bool all_decided(const Protocol& proto, const Config& c, ProcSet p, Value v) {
  bool ok = true;
  p.for_each([&](int q) {
    auto d = decision_of(proto, c, q);
    if (!d || *d != v) ok = false;
  });
  return ok;
}

bool some_decided(const Protocol& proto, const Config& c, Value v) {
  for (ProcId q = 0; q < proto.num_processes(); ++q) {
    auto d = decision_of(proto, c, q);
    if (d && *d == v) return true;
  }
  return false;
}

ProcSet decided_set(const Protocol& proto, const Config& c) {
  ProcSet out;
  for (ProcId q = 0; q < proto.num_processes(); ++q) {
    if (decision_of(proto, c, q)) out = out.with(q);
  }
  return out;
}

}  // namespace tsb::sim
