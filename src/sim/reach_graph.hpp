#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/canonical.hpp"
#include "sim/config_arena.hpp"
#include "sim/engine.hpp"
#include "util/spill_store.hpp"
#include "util/worker_pool.hpp"

namespace tsb::util::ckpt {
class SectionWriter;
class SectionReader;
}  // namespace tsb::util::ckpt

namespace tsb::sim {

/// Persistent shared-subgraph reachability engine behind the valency oracle.
///
/// The fresh-BFS oracle re-explores from scratch for every (C, P) pair even
/// though the P-only subgraphs of an adversary run overlap almost
/// completely. The overlap is invisible in full-configuration space: the
/// lemma peel loops advance the query root by steps of processes *outside*
/// P, so consecutive roots disagree on some frozen process's state and
/// their raw subgraphs share no configuration at all. It becomes literal
/// sharing under projection. During a P-only execution the states of
/// processes outside P are frozen and inert — every step, register value
/// and P-decision depends only on (P-states, registers) — so Definition 1
/// valency is a function of the *projected* configuration: P's states, the
/// registers, and two "ambient" bits recording which values some frozen
/// process is already poised to decide (Proposition 1(iv) counts those as
/// decided along every P-only execution). This engine therefore keeps one
/// session-long successor graph over interned *projected* configurations
/// (non-P state slots masked to kMaskedState):
///
///  * Edges are per (projected configuration, process) and lazily expanded
///    exactly once. A query for (C, P) walks the stored graph and only pays
///    protocol steps on the frontier no earlier query touched. Two queries
///    whose roots differ only in frozen-process state hit the *same* nodes,
///    edges and facts; peel-loop neighbours that differ in one register
///    value re-merge as soon as P overwrites it, and everything past the
///    merge point is answered from the store.
///
///  * After a pass that drains its frontier (so its negative answers are
///    exact), decided-value facts are propagated backward along the pass's
///    edges and persisted per (configuration, P): "P can / cannot decide v
///    from here", plus the next-hop process of a deciding execution. Later
///    queries consume facts mid-walk — a hit on a node with both values
///    known settles its entire subtree without touching it, and a hit on
///    the root answers the query with zero expansion. Witnesses are rebuilt
///    by chasing next-hops; chains always terminate because a next-hop's
///    target was already fact-positive (or self-deciding) when the hop was
///    recorded, so hops strictly descend in (recording pass, hop distance)
///    order.
///
///  * For symmetric protocols (Protocol::symmetric(), n <= 8) the graph is
///    quotiented by process renaming: nodes are canonical (sorted-states)
///    configurations and queries are canonical (config, ProcSet-orbit)
///    pairs (sim/canonical.hpp), shrinking the stored graph by up to n!.
///    Every stored edge carries the renaming its canonicalization applied,
///    and every BFS entry the composed renaming from the canonical root, so
///    witnesses de-canonicalize back to replayable schedules in the
///    caller's frame. Renaming soundness: a symmetric protocol's step
///    relation commutes with every process permutation, so orbit-translated
///    queries have literally the same P-only execution trees.
///
/// Determinism: node ids, discovery order and witnesses are identical for
/// every thread count. With threads > 1 the per-level protocol steps
/// (successor words, hashes, renamings) are precomputed into per-slot
/// buffers by a WorkerPool, but interning happens on the query thread in
/// exactly the inline order (entry order, ascending process id).
class ReachGraph {
 public:
  struct Options {
    /// Per-query visited cap (BFS entries); hitting it truncates the query
    /// (negative answers unsound — callers surface ever_truncated).
    std::size_t max_configs = 2'000'000;
    int threads = 1;
    /// Passes with at most this many entries persist full fact coverage on
    /// drain (edges recorded, decisions back-propagated, every entry
    /// facted). Bigger passes only persist their witness paths: the lemma
    /// peel loops that facts exist for run small passes, while a
    /// multi-million-entry univalent pass would pay tens of MB of edge
    /// records and fact-map churn for entries no later query probes.
    /// Facts are an optimization — any cap is sound.
    std::size_t fact_entry_cap = 1u << 16;
    /// Whole-engine heap budget (0 = uncapped). Unlike the fresh-BFS
    /// explorers this is cumulative across queries — the shared graph is
    /// the point — so once tripped, every later query throws
    /// util::BudgetExhausted too.
    std::size_t max_arena_bytes = 0;
    /// Out-of-core node arena: once resident packed-node bytes exceed
    /// spill_threshold_bytes (0 = never spill), cold full segments are
    /// delta/varint-compressed to an unlinked backing file under
    /// spill_dir and read back through mmap on demand. Spilled bytes
    /// leave memory_bytes(), so max_arena_bytes caps RAM while the graph
    /// keeps growing on disk. Unlike the explorer's cold-prefix pattern,
    /// re-probes of spilled nodes pay a decode — spilling trades query
    /// speed for the ability to finish at all.
    std::string spill_dir = ".";
    std::size_t spill_threshold_bytes = 0;
    /// Configs per arena segment (power of two, 0 = default ~4 MB): CI
    /// smoke tests shrink it to force spilling on small campaigns.
    std::size_t spill_seg_configs = 0;
    /// Out-of-core edge arrays: with spilling enabled, the per-node edge
    /// data (successor ids, per-edge renamings, decide flags) also spills
    /// — each store's cold full segments compress to the same-format
    /// backing files once their combined resident bytes exceed
    /// spill_threshold_bytes. False reproduces the PR 7 behaviour (node
    /// arena spills, edge arrays stay resident) for A/B runs.
    bool graph_spill = true;
  };

  ReachGraph(const Protocol& proto, Options opts);

  /// Wall-clock watchdog (time_point::max() = none), checked at query
  /// start and every 256 BFS steps; throws util::BudgetExhausted.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
  }

  /// Canonical (projected configuration, ProcSet-orbit, ambient) triple:
  /// the memo key space. For asymmetric protocols the id interns the
  /// P-masked words and pbits is P itself; `ambient` bit v is set iff some
  /// process outside P is poised to decide v in c — part of the key
  /// because it changes the verdicts but not the projected dynamics.
  struct Node {
    ConfigId id = kNoConfig;
    std::uint64_t pbits = 0;
    std::uint8_t ambient = 0;
    bool operator==(const Node&) const = default;
  };

  /// Intern (c, p)'s canonical projected triple. `perm_out` (if non-null)
  /// receives the renaming pi mapping the caller's process ids to canonical
  /// slots; schedules in the canonical frame translate back via pi^-1.
  Node intern_node(const Config& c, ProcSet p, ProcPerm* perm_out);

  struct QueryResult {
    bool can[2] = {false, false};
    /// Deciding schedules in the canonical-root frame (meaningful iff
    /// can[v]); de-canonicalize with the perm intern_node/query returned.
    Schedule witness[2];
    /// Engine id of the deciding *projected* configuration (kNoConfig when
    /// !can[v]).
    ConfigId witness_id[2] = {kNoConfig, kNoConfig};
    bool truncated = false;   ///< hit max_configs; negatives unsound
    bool from_facts = false;  ///< answered with zero new expansion
    std::uint64_t expanded = 0;  ///< edges expanded (protocol steps paid)
    std::uint64_t reused = 0;    ///< stored edges consumed
    std::uint64_t visited = 0;   ///< BFS entries this query
  };

  /// Definition 1 for both values of (c, p) in one walk.
  QueryResult query(const Config& c, ProcSet p, ProcPerm* perm_out);

  bool symmetric() const { return sym_; }
  std::size_t nodes() const { return arena_.size(); }
  std::uint64_t edges_expanded() const { return edges_expanded_; }
  std::uint64_t edges_reused() const { return edges_reused_; }
  /// Queries answered entirely from persisted facts (zero expansion).
  std::uint64_t fact_answers() const { return fact_answers_; }
  /// Queries where a superset projection's stored negative transferred to
  /// the (strictly smaller) query ProcSet at the root.
  std::uint64_t fact_subsumed() const { return fact_subsumed_; }
  std::size_t fact_entries() const { return facts_.size(); }
  std::size_t memory_bytes() const;

  /// Edge-store spill accounting (graph.spill / graph.mapped ledger
  /// accounts): compressed bytes of the spilled edge segments on disk,
  /// their mmap'd read-back pages, and the resident remainder.
  bool edge_spill_enabled() const { return edge_spill_on_; }
  std::size_t edge_spilled_bytes() const {
    return succ_.spilled_bytes() + perm_.spilled_bytes() +
           flags_.spilled_bytes();
  }
  std::size_t edge_mapped_bytes() const {
    return succ_.mapped_bytes() + perm_.mapped_bytes() + flags_.mapped_bytes();
  }
  std::size_t edge_resident_bytes() const {
    return succ_.resident_bytes() + perm_.resident_bytes() +
           flags_.resident_bytes();
  }
  std::size_t edge_spilled_segments() const {
    return succ_.spilled_segments() + perm_.spilled_segments() +
           flags_.spilled_segments();
  }
  std::size_t edge_faulted_in() const {
    return succ_.faulted_in() + perm_.faulted_in() + flags_.faulted_in();
  }

  /// Serialize the engine's persistent cross-query state (node words,
  /// decide flags, successor edges and renamings, the fact map, and the
  /// expansion counters) as one "graph" checkpoint section. Per-query
  /// scratch is deliberately excluded: checkpoints happen at quiescent
  /// points and resume re-runs the in-flight query from its root, walking
  /// the restored edges instead of re-paying protocol steps.
  void save(util::ckpt::SectionWriter& w) const;
  /// Inverse of save(). Must run on a freshly constructed engine (the
  /// ctor has already configured arena spill while the arena is empty);
  /// node words are re-interned in id order so the dedup table rebuilds
  /// exactly, then flags/edges/facts are bulk-loaded without
  /// register_config. Shape mismatch (different n, word count, or
  /// symmetry mode) throws util::CheckpointInvalid.
  void restore(util::ckpt::SectionReader& r);

  /// State word marking a masked (outside-P) slot of a projected
  /// configuration. Protocols never produce it: every state in this repo is
  /// a small packed non-negative word or kNilValue (-1).
  static constexpr Value kMaskedState = std::numeric_limits<Value>::min();

 private:
  static constexpr std::uint32_t kNoEntry = 0xFFFFFFFFu;
  /// succ_ sentinel: edge never computed. Distinct from kNoConfig, which
  /// marks "process decided here, no edge".
  static constexpr ConfigId kUnexpanded = 0xFFFFFFFEu;
  static constexpr std::uint8_t kWpSelf = 0xFF;   ///< decides at this node
  static constexpr std::uint8_t kWpUnset = 0xFE;

  /// One BFS node occurrence in the current query. Deliberately 12 bytes:
  /// the entry stream is pushed and re-read tens of millions of times per
  /// adversary run, so the symmetric-mode renaming lives in the parallel
  /// entry_perm_ vector instead of padding every asymmetric entry to 24.
  struct Entry {
    ConfigId id;
    std::uint32_t parent;  ///< entry index (kNoEntry at the root)
    std::uint8_t via;      ///< process (parent's frame) that reached us
    std::uint8_t pbits;    ///< P in this node's frame (symmetric mode)
    std::uint8_t fact;     ///< cached fact bits (known/can) at enqueue
  };
  struct EdgeRec {
    std::uint32_t from, to;  ///< entry indices
    std::uint8_t via;        ///< process in `from`'s frame
  };

  /// Open-addressing (config, pbits, ambient) -> packed fact map. Packing:
  /// bit v = known[v], bit 2+v = can[v], byte 1+v = next-hop process of a
  /// deciding execution (kWpSelf: decides here). Key 0 is the empty
  /// sentinel — real keys always carry a non-empty P in the high bits.
  class FactMap {
   public:
    const std::uint32_t* find(std::uint64_t key) const;
    std::uint32_t& at_or_insert(std::uint64_t key);
    std::size_t size() const { return count_; }
    std::size_t memory_bytes() const {
      return slots_.capacity() * sizeof(Slot);
    }
    /// Visit every occupied slot (checkpoint serialization). Order is the
    /// table's probe order — arbitrary but content-complete; restore goes
    /// through at_or_insert so the rebuilt table is content-equal.
    template <class Fn>
    void for_each(Fn&& fn) const {
      for (const Slot& s : slots_) {
        if (s.key != 0) fn(s.key, s.val);
      }
    }

   private:
    struct Slot {
      std::uint64_t key = 0;
      std::uint32_t val = 0;
    };
    void grow();
    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t count_ = 0;
  };

  /// Folds the query-constant ambient bits in above the id; pbits sits
  /// above those (facts_on_ caps n so nothing collides).
  std::uint64_t fact_key(ConfigId id, std::uint64_t pbits) const {
    return (pbits << 34) |
           (static_cast<std::uint64_t>(query_ambient_) << 32) | id;
  }
  std::uint8_t fact_probe(ConfigId id, std::uint64_t pbits) const {
    if (!facts_on_) return 0;
    const std::uint32_t* f = facts_.find(fact_key(id, pbits));
    return f ? static_cast<std::uint8_t>(*f & 0x0F) : 0;
  }

  void register_config(ConfigId id);
  void compute_successor(ConfigId id, int q, Value* out, ProcPerm* sigma) const;
  ConfigId expand_edge(ConfigId id, int q, ProcPerm* sigma);
  void precompute_level(std::uint32_t lo, std::uint32_t hi);
  void check_budget();
  void update_ledger() const;
  void ensure_marks(ConfigId id);
  /// Spill cold full edge segments until their combined resident bytes
  /// drop to the spill threshold. Renamings go first (largest, read only
  /// on edge reuse), then successor rows, then the decide flags last
  /// (hottest: one byte per dequeue). Quiescent points only.
  void maybe_spill_edges();
  /// Root-level fact subsumption: bit v set means some superset projection
  /// P ∪ {q} holds an exact stored negative "cannot decide v" at this
  /// configuration, which transfers to the query's strictly smaller P.
  std::uint8_t subsume_root_bits(const Config& c, ProcSet p);

  const Protocol& proto_;
  Options opts_;
  int n_;
  std::size_t words_;
  bool sym_;
  bool facts_on_;

  ConfigArena arena_;
  /// Per-node edge data, one spillable record per node id. flags_: bit v
  /// set iff some process poised-decides v here. succ_: n successor ids
  /// per node ([q] -> successor, kUnexpanded / kNoConfig sentinels).
  /// perm_: symmetric mode only, the renaming sigma per edge.
  util::spill::SpillStore<std::uint8_t> flags_;
  util::spill::SpillStore<ConfigId> succ_;
  util::spill::SpillStore<std::uint64_t> perm_;
  bool edge_spill_on_ = false;
  FactMap facts_;

  std::chrono::steady_clock::time_point deadline_ =
      std::chrono::steady_clock::time_point::max();
  std::uint64_t edges_expanded_ = 0;
  std::uint64_t edges_reused_ = 0;
  std::uint64_t fact_answers_ = 0;
  std::uint64_t fact_subsumed_ = 0;

  // Per-query state (members so allocations are reused across queries).
  std::uint64_t query_pbits_ = 0;   ///< asymmetric mode: constant P
  std::uint8_t query_ambient_ = 0;  ///< bit v: frozen proc poised-decides v
  bool recording_ = false;          ///< still under fact_entry_cap
  std::vector<Entry> entries_;
  std::vector<ProcPerm> entry_perm_;  ///< symmetric mode: canonical-root
                                      ///< frame -> entry frame, per entry
  std::vector<EdgeRec> edges_;
  std::vector<std::uint32_t> mark_epoch_;  ///< asymmetric visited marks
  std::vector<std::uint32_t> mark_idx_;
  std::uint32_t epoch_ = 0;
  std::unordered_map<std::uint64_t, std::uint32_t> visited_;  ///< symmetric
  std::vector<Value> stage_;      ///< inline expansion staging buffer
  std::vector<Value> sub_stage_;  ///< superset-projection probe staging
  std::vector<Value> exp_words_;  ///< per-process successor staging: the
                                  ///< expansion loop computes and hashes a
                                  ///< whole entry's successors (prefetching
                                  ///< their dedup slots) before interning any

  // Backward-propagation scratch.
  std::vector<std::uint32_t> rev_off_;
  std::vector<std::uint32_t> rev_cursor_;
  std::vector<std::uint32_t> rev_from_;
  std::vector<std::uint8_t> rev_via_;
  std::vector<std::uint8_t> pos_;    ///< per entry: bit v = can decide v
  std::vector<std::uint8_t> wtmp_;   ///< per entry * 2: next-hop proc
  std::vector<std::uint32_t> work_;

  // Level-batched parallel expansion (threads > 1).
  std::unique_ptr<util::WorkerPool> pool_;
  std::unordered_map<std::uint64_t, std::uint32_t> batch_index_;
  std::vector<std::uint64_t> batch_keys_;
  std::vector<Value> batch_words_;
  std::vector<std::uint64_t> batch_perms_;
};

}  // namespace tsb::sim
