#include "sim/schedule.hpp"

namespace tsb::sim {

Schedule Schedule::solo(ProcId p, std::size_t count) {
  Schedule s;
  s.steps_.assign(count, p);
  return s;
}

void Schedule::append(const Schedule& other) {
  steps_.insert(steps_.end(), other.steps_.begin(), other.steps_.end());
}

Schedule Schedule::prefix(std::size_t k) const {
  Schedule s;
  s.steps_.assign(steps_.begin(),
                  steps_.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(k, steps_.size())));
  return s;
}

util::ProcSet Schedule::participants() const {
  util::ProcSet set;
  for (ProcId p : steps_) set = set.with(p);
  return set;
}

bool Schedule::only(util::ProcSet p) const {
  for (ProcId q : steps_) {
    if (!p.contains(q)) return false;
  }
  return true;
}

std::string Schedule::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (i) out += " ";
    out += "p" + std::to_string(steps_[i]);
  }
  return out;
}

}  // namespace tsb::sim
