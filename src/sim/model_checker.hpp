#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/explorer.hpp"

namespace tsb::sim {

/// Exhaustive verification of agreement / validity / solo termination over
/// the full reachable configuration graph of a protocol.
///
/// This is how the repository earns trust in its upper-bound protocols: the
/// consensus implementations are not "believed correct", they are checked
/// exhaustively for every input vector at small n before the adversary and
/// the benchmarks run against them.
///
/// The checker verifies, for each initial configuration:
///  * Agreement (k-set): at most k distinct values are ever decided; for
///    consensus k = 1, i.e. no two processes decide differently.
///  * Validity: every decided value is some process's input.
///  * Solo termination (= obstruction-freedom / nondeterministic solo
///    termination for deterministic protocols): from every reachable
///    configuration, every undecided process decides within
///    `solo_step_cap` of its own steps when run alone.
class ModelChecker {
 public:
  struct Options {
    int k = 1;                        ///< k-set agreement; 1 = consensus
    std::size_t max_configs = 2'000'000;
    std::size_t solo_step_cap = 10'000;
    /// Worker threads for the reachability sweep; > 1 uses the
    /// ParallelExplorer (identical configs, verdicts, and witnesses).
    int threads = 1;
    bool check_solo_termination = true;
    /// Check solo termination on every visited configuration. Quadratic-ish;
    /// disable (false) to only check initial configurations.
    bool solo_from_every_config = true;
    /// When true, a solo-termination failure aborts with a violation.
    /// When false, failures are only counted (Report::solo_failures) and a
    /// sample failing configuration is retained — used for protocols whose
    /// simulation cap deliberately sacrifices liveness at capped
    /// configurations (see consensus::BallotConsensus).
    bool fail_on_solo_violation = true;
  };

  struct Report {
    bool ok = true;
    bool truncated = false;  ///< state space exceeded max_configs somewhere
    std::size_t total_configs = 0;   ///< summed over initial configurations
    std::size_t initial_configs = 0;
    std::size_t solo_runs_checked = 0;
    std::size_t max_solo_steps_seen = 0;
    std::size_t solo_failures = 0;  ///< configs where some solo run stalled
    std::optional<Config> sample_solo_failure;

    // First violation found, if any.
    std::string violation;            ///< human-readable description
    std::optional<Config> bad_config;
    std::optional<Schedule> schedule_to_bad;  ///< from its initial config
    std::optional<std::vector<Value>> bad_inputs;

    std::string summary() const;
  };

  explicit ModelChecker(const Protocol& proto)
      : ModelChecker(proto, Options{}) {}
  ModelChecker(const Protocol& proto, Options opts)
      : proto_(proto), opts_(opts) {}

  /// Check the protocol for every input vector in `input_vectors`.
  Report check(const std::vector<std::vector<Value>>& input_vectors);

  /// Check for all 2^n binary input vectors.
  Report check_all_binary_inputs();

 private:
  template <typename ExplorerT>
  Report check_impl(ExplorerT& explorer,
                    const std::vector<std::vector<Value>>& input_vectors);

  const Protocol& proto_;
  Options opts_;
};

/// All binary input vectors for n processes, in lexicographic order.
std::vector<std::vector<Value>> all_binary_inputs(int n);

}  // namespace tsb::sim
