#include "sim/reach_graph.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "obs/flight.hpp"
#include "obs/memledger.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"
#include "util/checkpoint.hpp"
#include "util/require.hpp"

namespace tsb::sim {

namespace {
inline std::uint64_t mix64(std::uint64_t h) {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}
}  // namespace

// ---------------------------------------------------------------- FactMap

const std::uint32_t* ReachGraph::FactMap::find(std::uint64_t key) const {
  if (slots_.empty()) return nullptr;
  std::size_t i = mix64(key) & mask_;
  while (true) {
    const Slot& s = slots_[i];
    if (s.key == 0) return nullptr;
    if (s.key == key) return &s.val;
    i = (i + 1) & mask_;
  }
}

std::uint32_t& ReachGraph::FactMap::at_or_insert(std::uint64_t key) {
  if (slots_.empty() || (count_ + 1) * 10 >= slots_.size() * 7) grow();
  std::size_t i = mix64(key) & mask_;
  while (true) {
    Slot& s = slots_[i];
    if (s.key == 0) {
      s.key = key;
      ++count_;
      return s.val;
    }
    if (s.key == key) return s.val;
    i = (i + 1) & mask_;
  }
}

void ReachGraph::FactMap::grow() {
  const std::size_t cap = slots_.empty() ? 1024 : slots_.size() * 2;
  std::vector<Slot> bigger(cap);
  const std::size_t mask = cap - 1;
  for (const Slot& s : slots_) {
    if (s.key == 0) continue;
    std::size_t i = mix64(s.key) & mask;
    while (bigger[i].key != 0) i = (i + 1) & mask;
    bigger[i] = s;
  }
  slots_ = std::move(bigger);
  mask_ = mask;
}

// -------------------------------------------------------------- ReachGraph

ReachGraph::ReachGraph(const Protocol& proto, Options opts)
    : proto_(proto),
      opts_(opts),
      n_(proto.num_processes()),
      words_(static_cast<std::size_t>(proto.num_processes()) +
             static_cast<std::size_t>(proto.num_registers())),
      sym_(proto.symmetric() && proto.num_processes() <= ProcPerm::kMaxProcs),
      // Fact keys pack P and the ambient bits above the 32-bit id; for
      // n > 28 (no experiment goes near it) facts are simply disabled —
      // edge reuse still works.
      facts_on_(proto.num_processes() <= 28),
      arena_(proto.num_processes(), proto.num_registers()),
      stage_(words_, 0),
      sub_stage_(words_, 0),
      exp_words_(words_ * static_cast<std::size_t>(proto.num_processes()), 0) {
  if (opts_.threads > 1) {
    pool_ = std::make_unique<util::WorkerPool>(opts_.threads);
  }
  flags_.init("graph.flags", 1, 0);
  succ_.init("graph.succ", static_cast<std::size_t>(n_), kUnexpanded);
  if (sym_) {
    perm_.init("graph.perm", static_cast<std::size_t>(n_),
               ProcPerm::identity().packed());
  }
  if (opts_.spill_threshold_bytes != 0 && !opts_.spill_dir.empty()) {
    arena_.set_spill(opts_.spill_dir, opts_.spill_threshold_bytes,
                     opts_.spill_seg_configs);
    if (opts_.graph_spill) {
      // The edge stores share the arena's segment-size hint so CI smoke
      // runs that shrink segments to force spilling force it everywhere.
      edge_spill_on_ =
          flags_.set_spill(opts_.spill_dir, opts_.spill_seg_configs) &&
          succ_.set_spill(opts_.spill_dir, opts_.spill_seg_configs) &&
          (!sym_ || perm_.set_spill(opts_.spill_dir, opts_.spill_seg_configs));
    }
  }
}

std::size_t ReachGraph::memory_bytes() const {
  return arena_.memory_bytes() + edge_resident_bytes() +
         facts_.memory_bytes() + entries_.capacity() * sizeof(Entry) +
         entry_perm_.capacity() * sizeof(ProcPerm) +
         edges_.capacity() * sizeof(EdgeRec) +
         (mark_epoch_.capacity() + mark_idx_.capacity()) *
             sizeof(std::uint32_t);
}

void ReachGraph::update_ledger() const {
  // Accounts mirror memory_bytes() exactly, so the exit-4 budget report
  // attributes 100% of the graph's tracked bytes to named subsystems.
  obs::MemLedger& ledger = obs::MemLedger::global();
  ledger.set(obs::MemAccount::kReachNodes, arena_.memory_bytes());
  ledger.set(obs::MemAccount::kReachEdges, edge_resident_bytes());
  ledger.set(obs::MemAccount::kReachFacts, facts_.memory_bytes());
  ledger.set(obs::MemAccount::kReachQuery,
             entries_.capacity() * sizeof(Entry) +
                 entry_perm_.capacity() * sizeof(ProcPerm) +
                 edges_.capacity() * sizeof(EdgeRec) +
                 (mark_epoch_.capacity() + mark_idx_.capacity()) *
                     sizeof(std::uint32_t));
  if (arena_.spill_enabled() || arena_.spilled_bytes() != 0) {
    // Disk-resident and mmap-resident bytes are tracked separately: the
    // spill file is not RAM (excluded from memory_bytes/budget), while
    // mapped read-back pages are reclaimable page cache.
    ledger.set(obs::MemAccount::kArenaSpill, arena_.spilled_bytes());
    ledger.set(obs::MemAccount::kArenaMapped, arena_.mapped_bytes());
  }
  if (edge_spill_on_ || edge_spilled_bytes() != 0) {
    ledger.set(obs::MemAccount::kGraphSpill, edge_spilled_bytes());
    ledger.set(obs::MemAccount::kGraphMapped, edge_mapped_bytes());
  }
}

void ReachGraph::check_budget() {
  // The budget poll doubles as the ledger refresh and a flight-recorder
  // breadcrumb: every 256 BFS steps, current tracked bytes vs budget.
  update_ledger();
  const std::size_t bytes = memory_bytes();
  obs::flight::record(obs::flight::Ev::kBudgetCheck,
                      static_cast<std::int64_t>(bytes),
                      static_cast<std::int64_t>(opts_.max_arena_bytes));
  if (opts_.max_arena_bytes != 0 && bytes >= opts_.max_arena_bytes) {
    obs::flight::record(obs::flight::Ev::kBudgetTrip,
                        static_cast<std::int64_t>(bytes),
                        static_cast<std::int64_t>(opts_.max_arena_bytes));
    throw util::BudgetExhausted(
        "reachability engine memory budget exhausted (" +
        std::to_string(opts_.max_arena_bytes) +
        " bytes; the shared graph is cumulative across queries) after " +
        std::to_string(arena_.size()) + " graph nodes; ledger: " +
        obs::MemLedger::global().attribution(3));
  }
  if (deadline_ != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() >= deadline_) {
    obs::flight::record(obs::flight::Ev::kBudgetTrip,
                        static_cast<std::int64_t>(bytes), 0);
    throw util::BudgetExhausted(
        "valency wall-clock budget exhausted during a shared-graph query; "
        "ledger: " +
        obs::MemLedger::global().attribution(3));
  }
}

void ReachGraph::save(util::ckpt::SectionWriter& w) const {
  w.begin("graph");
  w.put_u32(static_cast<std::uint32_t>(n_));
  w.put_u32(static_cast<std::uint32_t>(words_));
  w.put_u8(sym_ ? 1 : 0);
  w.put_u8(facts_on_ ? 1 : 0);
  const std::size_t count = arena_.size();
  w.put_u64(count);
  // Logical node words in id order; arena_.words() decodes spilled
  // segments transparently, so the checkpoint is independent of which
  // segments happen to be on disk at write time. The edge stores stream
  // record by record through read() for the same reason: a checkpoint
  // taken while edge segments sit on disk is byte-identical to one taken
  // fully resident.
  for (std::size_t id = 0; id < count; ++id) {
    w.put_bytes(arena_.words(static_cast<ConfigId>(id)),
                words_ * sizeof(Value));
  }
  for (std::size_t id = 0; id < count; ++id) w.put_bytes(flags_.read(id), 1);
  for (std::size_t id = 0; id < count; ++id) {
    w.put_bytes(succ_.read(id), static_cast<std::size_t>(n_) * sizeof(ConfigId));
  }
  if (sym_) {
    for (std::size_t id = 0; id < count; ++id) {
      w.put_bytes(perm_.read(id),
                  static_cast<std::size_t>(n_) * sizeof(std::uint64_t));
    }
  }
  w.put_u64(facts_.size());
  facts_.for_each([&](std::uint64_t key, std::uint32_t val) {
    w.put_u64(key);
    w.put_u32(val);
  });
  w.put_u64(edges_expanded_);
  w.put_u64(edges_reused_);
  w.put_u64(fact_answers_);
  w.put_u64(fact_subsumed_);
  w.end();
}

void ReachGraph::restore(util::ckpt::SectionReader& r) {
  TSB_REQUIRE(arena_.size() == 0,
              "ReachGraph::restore requires a freshly constructed engine");
  r.expect("graph");
  if (r.get_u32() != static_cast<std::uint32_t>(n_) ||
      r.get_u32() != static_cast<std::uint32_t>(words_) ||
      r.get_u8() != (sym_ ? 1 : 0) || r.get_u8() != (facts_on_ ? 1 : 0)) {
    throw util::CheckpointInvalid(
        "checkpoint graph section disagrees with the protocol's shape "
        "(process count, word count, or symmetry mode)");
  }
  const std::uint64_t count = r.get_u64();
  // Re-intern in id order: the arena's dedup table (and any spill
  // segmentation) rebuilds itself, and ids are stable because interning
  // order defines them.
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t* p = r.get_bytes(words_ * sizeof(Value));
    std::memcpy(stage_.data(), p, words_ * sizeof(Value));
    const auto [id, inserted] = arena_.intern_words(stage_.data());
    if (!inserted || static_cast<std::uint64_t>(id) != i) {
      throw util::CheckpointInvalid(
          "checkpoint graph section re-interned to a different id (node " +
          std::to_string(i) + " -> " + std::to_string(id) +
          "): duplicate or reordered node words");
    }
  }
  // Bulk-load flags/edges/facts without register_config: the stored
  // values already carry its decide scan. Everything lands resident
  // (restore runs on a fresh engine); the trailing maybe_spill_edges()
  // re-establishes the memory plan before the first query.
  const std::size_t edge_count = count * static_cast<std::size_t>(n_);
  flags_.ensure(count);
  succ_.ensure(count);
  if (sym_) perm_.ensure(count);
  if (count != 0) {
    const std::uint8_t* fb = r.get_bytes(count);
    for (std::uint64_t i = 0; i < count; ++i) *flags_.write_ptr(i) = fb[i];
    const std::uint8_t* sb = r.get_bytes(edge_count * sizeof(ConfigId));
    for (std::uint64_t i = 0; i < count; ++i) {
      std::memcpy(succ_.write_ptr(i),
                  sb + i * static_cast<std::size_t>(n_) * sizeof(ConfigId),
                  static_cast<std::size_t>(n_) * sizeof(ConfigId));
    }
    if (sym_) {
      const std::uint8_t* pb = r.get_bytes(edge_count * sizeof(std::uint64_t));
      for (std::uint64_t i = 0; i < count; ++i) {
        std::memcpy(perm_.write_ptr(i),
                    pb + i * static_cast<std::size_t>(n_) * sizeof(std::uint64_t),
                    static_cast<std::size_t>(n_) * sizeof(std::uint64_t));
      }
    }
  }
  const std::uint64_t fact_count = r.get_u64();
  for (std::uint64_t i = 0; i < fact_count; ++i) {
    const std::uint64_t key = r.get_u64();
    const std::uint32_t val = r.get_u32();
    if (key == 0) {
      throw util::CheckpointInvalid(
          "checkpoint graph section carries an empty-sentinel fact key");
    }
    facts_.at_or_insert(key) = val;
  }
  edges_expanded_ = r.get_u64();
  edges_reused_ = r.get_u64();
  fact_answers_ = r.get_u64();
  fact_subsumed_ = r.get_u64();
  r.done();
  maybe_spill_edges();
  update_ledger();
}

void ReachGraph::register_config(ConfigId id) {
  flags_.ensure(arena_.size());
  succ_.ensure(arena_.size());
  if (sym_) perm_.ensure(arena_.size());
  // Decide scan happens once per configuration ever (the fresh-BFS oracle
  // pays it once per visit per pass); decided processes get their "no edge"
  // marker now so expansion never re-derives it. Masked slots are frozen
  // processes outside the projection's P — their (query-constant) decide
  // contribution is query_ambient_, not a per-node flag. A fresh id always
  // lands in the resident tail segment, so these write_ptrs never fault.
  const Value* st = arena_.words(id);
  ConfigId* srow = succ_.write_ptr(id);
  std::uint8_t flags = 0;
  for (int q = 0; q < n_; ++q) {
    if (st[q] == kMaskedState) continue;
    const PendingOp op = proto_.poised(q, st[q]);
    if (!op.is_decide()) continue;
    if (op.value == 0 || op.value == 1) {
      flags |= static_cast<std::uint8_t>(1u << op.value);
    }
    srow[q] = kNoConfig;
  }
  *flags_.write_ptr(id) = flags;
}

ReachGraph::Node ReachGraph::intern_node(const Config& c, ProcSet p,
                                         ProcPerm* perm_out) {
  arena_.pack(c, stage_.data());
  // Project: ambient decide bits from the frozen processes, then mask
  // their state slots so nodes are shared by every query whose root agrees
  // on (P-states, registers) — the whole of what P-only dynamics see.
  std::uint8_t ambient = 0;
  for (int q = 0; q < n_; ++q) {
    if (p.contains(q)) continue;
    const PendingOp op = proto_.poised(q, stage_[static_cast<std::size_t>(q)]);
    if (op.is_decide() && (op.value == 0 || op.value == 1)) {
      ambient |= static_cast<std::uint8_t>(1u << op.value);
    }
    stage_[static_cast<std::size_t>(q)] = kMaskedState;
  }
  ProcPerm pi;
  std::uint64_t pbits = p.bits();
  if (sym_) {
    const ProcPerm rho = canonicalize_states(stage_.data(), n_);
    ProcSet pc;
    const ProcPerm tau = refine_procset(stage_.data(), n_, rho.apply(p), &pc);
    pi = ProcPerm::compose(rho, tau);
    pbits = pc.bits();
  }
  const auto [id, inserted] = arena_.intern_words(stage_.data());
  if (inserted) register_config(id);
  if (perm_out) *perm_out = pi;
  return Node{id, pbits, ambient};
}

void ReachGraph::compute_successor(ConfigId id, int q, Value* out,
                                   ProcPerm* sigma) const {
  std::memcpy(out, arena_.words(id), words_ * sizeof(Value));
  // register_config() pre-marked decided processes kNoConfig, so the op
  // here is never a decide.
  const PendingOp op = proto_.poised(q, out[q]);
  apply_op(proto_, op, q, out, out + n_);
  *sigma = sym_ ? canonicalize_states(out, n_) : ProcPerm::identity();
}

ConfigId ReachGraph::expand_edge(ConfigId id, int q, ProcPerm* sigma) {
  const std::uint64_t key = static_cast<std::uint64_t>(id) * n_ + q;
  const Value* buf = nullptr;
  if (pool_) {
    if (auto it = batch_index_.find(key); it != batch_index_.end()) {
      buf = batch_words_.data() + static_cast<std::size_t>(it->second) * words_;
      *sigma = ProcPerm(batch_perms_[it->second]);
    }
  }
  if (!buf) {
    compute_successor(id, q, stage_.data(), sigma);
    buf = stage_.data();
  }
  const auto [sid, inserted] = arena_.intern_words(buf);
  if (inserted) register_config(sid);
  succ_.write_ptr(id)[q] = sid;
  if (sym_) perm_.write_ptr(id)[q] = sigma->packed();
  ++edges_expanded_;
  return sid;
}

void ReachGraph::precompute_level(std::uint32_t lo, std::uint32_t hi) {
  // Collect the level's unexpanded edges, then compute their successor
  // words/renamings on the pool. Interning still happens on the query
  // thread in inline order, so ids and discovery order are bit-identical
  // to threads == 1; on early exit the precomputed leftovers are simply
  // never interned.
  batch_index_.clear();
  std::uint32_t count = 0;
  for (std::uint32_t i = lo; i < hi; ++i) {
    const Entry& e = entries_[i];
    if ((e.fact & 0x3) == 0x3) continue;  // pruned at dequeue
    const std::uint64_t pb = sym_ ? e.pbits : query_pbits_;
    const ConfigId* row = succ_.read(e.id);
    ProcSet(pb).for_each([&](int q) {
      if (row[q] != kUnexpanded) return;
      const std::uint64_t ei = static_cast<std::uint64_t>(e.id) * n_ + q;
      if (batch_index_.try_emplace(ei, count).second) ++count;
    });
  }
  if (count == 0) return;
  batch_keys_.resize(count);
  for (const auto& [key, slot] : batch_index_) batch_keys_[slot] = key;
  batch_words_.resize(static_cast<std::size_t>(count) * words_);
  batch_perms_.resize(count);
  const int workers = pool_->size();
  pool_->run([&](int w) {
    for (std::uint32_t slot = static_cast<std::uint32_t>(w); slot < count;
         slot += static_cast<std::uint32_t>(workers)) {
      const std::uint64_t key = batch_keys_[slot];
      ProcPerm sigma;
      compute_successor(static_cast<ConfigId>(key / n_),
                        static_cast<int>(key % n_),
                        batch_words_.data() +
                            static_cast<std::size_t>(slot) * words_,
                        &sigma);
      batch_perms_[slot] = sigma.packed();
    }
  });
}

void ReachGraph::ensure_marks(ConfigId id) {
  if (static_cast<std::size_t>(id) < mark_epoch_.size()) return;
  // Geometric growth: ids arrive in insertion order, so growing to the
  // arena's size exactly would mean one resize call per new configuration.
  const std::size_t ns = std::max(arena_.size(), mark_epoch_.size() * 2);
  mark_epoch_.resize(ns, 0);
  mark_idx_.resize(ns, kNoEntry);
}

void ReachGraph::maybe_spill_edges() {
  if (!edge_spill_on_) return;
  const std::size_t target = opts_.spill_threshold_bytes;
  std::size_t resident = edge_resident_bytes();
  if (resident <= target) return;
  std::size_t over = resident - target;
  std::size_t released = 0;
  // Coldest stores first: renamings (largest per record, read only when an
  // edge is reused in symmetric mode), then successor rows, then the decide
  // flags last — one byte per node but touched on every dequeue. Each store
  // spills down only by the remaining overshoot, so a hot flags store stays
  // resident while perm/succ can cover the plan. No pin: the shared graph
  // has no cold-prefix structure, and the drain pass never spills.
  const auto spill_one = [&](auto& store) {
    if (over == 0) return;
    const std::size_t cur = store.resident_bytes();
    const std::size_t want = cur > over ? cur - over : 0;
    const std::size_t rel =
        store.maybe_spill(want, std::numeric_limits<std::size_t>::max());
    released += rel;
    over -= rel < over ? rel : over;
  };
  spill_one(perm_);
  spill_one(succ_);
  spill_one(flags_);
  if (released != 0) {
    obs::flight::record(obs::flight::Ev::kSpill,
                        static_cast<std::int64_t>(released),
                        static_cast<std::int64_t>(edge_spilled_bytes()));
  }
}

std::uint8_t ReachGraph::subsume_root_bits(const Config& c, ProcSet p) {
  // For each q0 outside P, look up the exact stored fact of the superset
  // projection P ∪ {q0} at this configuration — find() only, never intern:
  // a probe must not grow the graph. Negative bits transfer to P:
  // monotonicity (every P-only execution is a (P ∪ {q0})-only execution)
  // rules out deciding inside P, and the negative itself rules out the two
  // ways the ambient context could differ — an outside-everything decider
  // would have made the superset fact positive via its ambient bit, and a
  // poised q0 would have made the superset root self-deciding. Positive
  // facts do NOT transfer (their witness may schedule q0).
  std::uint8_t neg = 0;
  for (int q0 = 0; q0 < n_ && neg != 0x3; ++q0) {
    if (p.contains(q0)) continue;
    const ProcSet sup = p.with(q0);
    arena_.pack(c, sub_stage_.data());
    std::uint8_t ambient = 0;
    for (int q = 0; q < n_; ++q) {
      if (sup.contains(q)) continue;
      const PendingOp op =
          proto_.poised(q, sub_stage_[static_cast<std::size_t>(q)]);
      if (op.is_decide() && (op.value == 0 || op.value == 1)) {
        ambient |= static_cast<std::uint8_t>(1u << op.value);
      }
      sub_stage_[static_cast<std::size_t>(q)] = kMaskedState;
    }
    std::uint64_t pbits = sup.bits();
    if (sym_) {
      const ProcPerm rho = canonicalize_states(sub_stage_.data(), n_);
      ProcSet pc;
      refine_procset(sub_stage_.data(), n_, rho.apply(sup), &pc);
      pbits = pc.bits();
    }
    const ConfigId id = arena_.find(sub_stage_.data());
    if (id == kNoConfig) continue;
    const std::uint32_t* f = facts_.find(
        (pbits << 34) | (static_cast<std::uint64_t>(ambient) << 32) | id);
    if (f == nullptr) continue;
    for (int v = 0; v < 2; ++v) {
      if (((*f >> v) & 1) && !((*f >> (2 + v)) & 1)) {
        neg |= static_cast<std::uint8_t>(1u << v);
      }
    }
  }
  return neg;
}

ReachGraph::QueryResult ReachGraph::query(const Config& c, ProcSet p,
                                          ProcPerm* perm_out) {
  obs::Span span("valency.query");
  check_budget();
  QueryResult res;
  ProcPerm pi0;
  const Node root = intern_node(c, p, &pi0);
  obs::flight::record(obs::flight::Ev::kReachQuery,
                      static_cast<std::int64_t>(root.id),
                      static_cast<std::int64_t>(root.pbits));
  if (perm_out) *perm_out = pi0;
  query_pbits_ = root.pbits;
  query_ambient_ = root.ambient;  // before any fact_probe: it keys on this
  recording_ = facts_on_;

  entries_.clear();
  entry_perm_.clear();
  edges_.clear();
  batch_index_.clear();
  if (sym_) {
    visited_.clear();
  } else if (++epoch_ == 0) {
    std::fill(mark_epoch_.begin(), mark_epoch_.end(), 0);
    epoch_ = 1;
  }

  // Enter a node occurrence, deduplicating per query. Entry perms are
  // relative to the *canonical root* (identity there), so witnesses come
  // out in the canonical frame and memoize cleanly; callers translate via
  // pi0^-1.
  auto enter = [&](ConfigId id, std::uint8_t pb, std::uint32_t parent,
                   std::uint8_t via, ProcPerm perm) -> std::uint32_t {
    if (sym_) {
      const std::uint64_t key = (static_cast<std::uint64_t>(id) << 8) | pb;
      const auto [it, fresh] =
          visited_.try_emplace(key, static_cast<std::uint32_t>(entries_.size()));
      if (!fresh) return it->second;
    } else {
      ensure_marks(id);
      if (mark_epoch_[id] == epoch_) return mark_idx_[id];
      mark_epoch_[id] = epoch_;
      mark_idx_[id] = static_cast<std::uint32_t>(entries_.size());
    }
    const std::uint64_t fpb = sym_ ? pb : query_pbits_;
    entries_.push_back(Entry{id, parent, via, pb, fact_probe(id, fpb)});
    if (sym_) entry_perm_.push_back(perm);
    ++res.visited;
    return static_cast<std::uint32_t>(entries_.size() - 1);
  };

  enter(root.id, static_cast<std::uint8_t>(sym_ ? root.pbits : 0), kNoEntry, 0,
        ProcPerm::identity());

  // Root-level fact subsumption: a stored exact negative for a superset
  // projection P ∪ {q0} at this configuration transfers to the strictly
  // smaller P (P-only executions are a subset of the superset's, and the
  // negative rules out both an ambient decider and a poised q0). Bits the
  // root's own exact fact already knows are skipped so fact_subsumed_
  // counts only queries where subsumption added information.
  std::uint8_t neg_known = 0;
  if (facts_on_ && (entries_[0].fact & 0x3) != 0x3) {
    neg_known = static_cast<std::uint8_t>(subsume_root_bits(c, p) &
                                          ~entries_[0].fact & 0x3);
    if (neg_known != 0) {
      ++fact_subsumed_;
      entries_[0].fact |= neg_known;  // known, can stays 0
      // Persist into the root's exact fact slot so the next identical
      // query answers without re-probing the superset keys.
      std::uint32_t& slot = facts_.at_or_insert(fact_key(root.id, root.pbits));
      slot |= neg_known;
    }
  }

  std::uint32_t found[2] = {kNoEntry, kNoEntry};
  bool by_fact[2] = {false, false};
  bool early = false;
  obs::Heartbeat hb("valency.reach");

  std::size_t head = 0;
  std::size_t level_end = 0;
  std::uint64_t steps = 0;
  while (head < entries_.size()) {
    if (pool_ && head == level_end) {
      const std::uint32_t lo = static_cast<std::uint32_t>(head);
      level_end = entries_.size();
      precompute_level(lo, static_cast<std::uint32_t>(level_end));
    }
    if ((++steps & 0xFF) == 1) {
      check_budget();
      // Quiescent point: the pool only runs inside precompute_level and
      // every arena read in the loop body copies or probes synchronously,
      // so cold full segments can be compressed out to disk here, and the
      // whole engine state is consistent for a checkpoint (per-query
      // scratch excluded — resume replays the in-flight query over the
      // restored edges). No pin — the shared graph has no cold-prefix
      // structure, so the oldest full segments go first.
      util::ckpt::CheckpointService::global().poll(256);
      if (arena_.spill_needed(arena_.size())) {
        const std::size_t released = arena_.maybe_spill(kNoConfig);
        if (released != 0) {
          obs::flight::record(obs::flight::Ev::kSpill,
                              static_cast<std::int64_t>(released),
                              static_cast<std::int64_t>(arena_.spilled_bytes()));
        }
      }
      maybe_spill_edges();
      hb.beat(
          [&] {
            return "nodes=" + std::to_string(arena_.size()) +
                   " entries=" + std::to_string(entries_.size()) +
                   " facts=" + std::to_string(facts_.size());
          },
          [&](obs::StatusSnapshot& s) {
            s.frontier = static_cast<std::int64_t>(entries_.size() - head);
            s.visited = static_cast<std::int64_t>(arena_.size());
            s.cap = static_cast<std::int64_t>(opts_.max_configs);
          });
    }
    const std::uint32_t cur = static_cast<std::uint32_t>(head++);
    const Entry e = entries_[cur];  // copy: entries_ grows below

    // Self-decision first — matches the fresh-BFS explorers' "first
    // deciding configuration in discovery order" witness choice — then
    // persisted facts. Ambient bits count as decisions at every node
    // (frozen processes stay poised throughout the P-only subgraph).
    const std::uint8_t df =
        static_cast<std::uint8_t>(*flags_.read(e.id) | query_ambient_);
    for (int v = 0; v < 2; ++v) {
      if (found[v] == kNoEntry && ((df >> v) & 1)) found[v] = cur;
    }
    for (int v = 0; v < 2; ++v) {
      if (found[v] == kNoEntry && ((e.fact >> v) & 1) &&
          ((e.fact >> (2 + v)) & 1)) {
        found[v] = cur;
        by_fact[v] = true;
      }
    }
    // A value covered by a subsumed negative can never be found; treat it
    // as settled so e.g. a bivalence probe stops at the first witness of
    // the other value instead of draining the subgraph.
    if ((found[0] != kNoEntry || (neg_known & 0x1)) &&
        (found[1] != kNoEntry || (neg_known & 0x2))) {
      early = true;
      break;
    }
    // A fully known fact settles the entire subtree: skipping it keeps the
    // pass exact, because the skipped node's answers are themselves exact.
    if ((e.fact & 0x3) == 0x3) continue;

    if (entries_.size() >= opts_.max_configs) {
      res.truncated = true;
      break;
    }
    if (recording_ && entries_.size() > opts_.fact_entry_cap) {
      recording_ = false;
      edges_.clear();  // keeps capacity, which stays O(fact_entry_cap)
    }

    const std::uint64_t pb = sym_ ? e.pbits : query_pbits_;
    const ProcPerm eperm = sym_ ? entry_perm_[cur] : ProcPerm::identity();
    // Snapshot this entry's successor (and renaming) row into locals: a
    // spilled row decodes into a thread-local buffer that later store reads
    // would clobber, and the interning below can grow the stores. Edge
    // writes go through lazily fetched write pointers — write_ptr faults a
    // spilled segment back resident, and the heap row it returns is stable
    // across store growth (segments never move).
    ConfigId srow[64];
    std::memcpy(srow, succ_.read(e.id),
                static_cast<std::size_t>(n_) * sizeof(ConfigId));
    std::uint64_t prow[64];
    if (sym_) {
      std::memcpy(prow, perm_.read(e.id),
                  static_cast<std::size_t>(n_) * sizeof(std::uint64_t));
    }
    ConfigId* wrow = nullptr;
    std::uint64_t* pwrow = nullptr;
    // Inline expansion is two-phase: first compute, hash and prefetch
    // every unexpanded successor of this entry, then intern them. The
    // dedup table dwarfs the cache at adversary scale, so overlapping up
    // to |P| probe misses (instead of paying them serially) is worth more
    // than any saving inside a single intern. The batched threads > 1
    // path already staged its successor words in precompute_level.
    ProcPerm pend_sigma[64];
    std::uint64_t pend_h[64];
    int npend = 0;
    if (!pool_) {
      ProcSet(pb).for_each([&](int q) {
        const ConfigId s = srow[q];
        if (s == kUnexpanded) {
          Value* buf =
              exp_words_.data() + static_cast<std::size_t>(npend) * words_;
          compute_successor(e.id, q, buf, &pend_sigma[npend]);
          pend_h[npend] = arena_.hash_words(buf);
          arena_.prefetch(pend_h[npend]);
          ++npend;
        } else if (s != kNoConfig && !sym_ &&
                   static_cast<std::size_t>(s) < mark_epoch_.size()) {
          __builtin_prefetch(&mark_epoch_[s]);
        }
      });
    }
    int pend = 0;
    ProcSet(pb).for_each([&](int q) {
      ConfigId s = srow[q];
      if (s == kNoConfig) return;  // q decided here: no edge
      ProcPerm sigma;
      if (s == kUnexpanded) {
        if (pool_) {
          s = expand_edge(e.id, q, &sigma);
        } else {
          const Value* buf =
              exp_words_.data() + static_cast<std::size_t>(pend) * words_;
          sigma = pend_sigma[pend];
          const auto [sid, inserted] =
              arena_.intern_prehashed(buf, pend_h[pend]);
          ++pend;
          if (inserted) register_config(sid);
          if (!wrow) wrow = succ_.write_ptr(e.id);
          wrow[q] = sid;
          if (sym_) {
            if (!pwrow) pwrow = perm_.write_ptr(e.id);
            pwrow[q] = sigma.packed();
          }
          ++edges_expanded_;
          s = sid;
        }
        ++res.expanded;
      } else {
        ++res.reused;
        ++edges_reused_;
        if (sym_) sigma = ProcPerm(prow[q]);
      }
      std::uint32_t child;
      if (sym_) {
        ProcSet cpbs;
        const ProcPerm tau = refine_procset(
            arena_.words(s), n_, sigma.apply(ProcSet(pb)), &cpbs);
        const ProcPerm cperm =
            ProcPerm::compose(ProcPerm::compose(eperm, sigma), tau);
        child = enter(s, static_cast<std::uint8_t>(cpbs.bits()), cur,
                      static_cast<std::uint8_t>(q), cperm);
      } else {
        child = enter(s, 0, cur, static_cast<std::uint8_t>(q),
                      ProcPerm::identity());
      }
      if (recording_) {
        edges_.push_back(EdgeRec{cur, child, static_cast<std::uint8_t>(q)});
      }
    });
  }

  // Witness chase: extend a path from `ent` by following per-value
  // next-hop facts to a self-deciding configuration. Terminates because a
  // hop's target was already fact-positive (or self-deciding) when the hop
  // was recorded — hops strictly descend in (recording pass, hop distance).
  auto chase = [&](std::uint32_t ent, int v,
                   std::vector<ProcId>& out) -> ConfigId {
    ConfigId id = entries_[ent].id;
    std::uint64_t pb = sym_ ? entries_[ent].pbits : query_pbits_;
    ProcPerm pi = sym_ ? entry_perm_[ent] : ProcPerm::identity();
    while (true) {
      if (((*flags_.read(id) | query_ambient_) >> v) & 1) return id;
      const std::uint32_t* f = facts_.find(fact_key(id, pb));
      TSB_REQUIRE(f != nullptr && ((*f >> v) & 1) && ((*f >> (2 + v)) & 1),
                  "fact chase hit a node without a positive fact");
      const int q = static_cast<int>((*f >> (8 + 8 * v)) & 0xFF);
      TSB_REQUIRE(q != kWpUnset && q != kWpSelf && q < n_,
                  "fact chase: malformed next-hop");
      out.push_back(sym_ ? pi.inverse()(q) : q);
      const ConfigId s = succ_.read(id)[q];
      TSB_REQUIRE(s != kUnexpanded && s != kNoConfig,
                  "fact chase: next-hop edge missing");
      if (sym_) {
        const ProcPerm sigma(perm_.read(id)[q]);
        ProcSet cpbs;
        const ProcPerm tau = refine_procset(arena_.words(s), n_,
                                            sigma.apply(ProcSet(pb)), &cpbs);
        pb = cpbs.bits();
        pi = ProcPerm::compose(ProcPerm::compose(pi, sigma), tau);
      }
      id = s;
    }
  };

  // Path from the canonical root to entry `t`, in the canonical frame.
  auto path_to = [&](std::uint32_t t, std::vector<ProcId>& out) {
    const std::size_t base = out.size();
    while (entries_[t].parent != kNoEntry) {
      const Entry& et = entries_[t];
      out.push_back(sym_ ? entry_perm_[et.parent].inverse()(et.via)
                         : static_cast<ProcId>(et.via));
      t = et.parent;
    }
    std::reverse(out.begin() + static_cast<std::ptrdiff_t>(base), out.end());
  };

  for (int v = 0; v < 2; ++v) {
    if (found[v] == kNoEntry) continue;
    res.can[v] = true;
    std::vector<ProcId> steps_out;
    path_to(found[v], steps_out);
    if (by_fact[v]) {
      res.witness_id[v] = chase(found[v], v, steps_out);
    } else {
      res.witness_id[v] = entries_[found[v]].id;
    }
    res.witness[v] = Schedule(std::move(steps_out));
  }
  TSB_REQUIRE((neg_known & ((res.can[0] ? 1u : 0u) | (res.can[1] ? 2u : 0u))) ==
                  0,
              "subsumed superset negative contradicts a found witness");
  // "Answered from facts": no graph work at all, and persisted facts (not
  // just the root configuration deciding by itself) carried the verdicts —
  // including a subsumed superset negative settling its value for free.
  res.from_facts = res.expanded == 0 && res.reused == 0 &&
                   (by_fact[0] || by_fact[1] || neg_known != 0 ||
                    (entries_[0].fact & 0x3) == 0x3);
  if (res.from_facts) ++fact_answers_;

  if (facts_on_) {
    if (recording_ && !early && !res.truncated) {
      // The pass drained: every visited entry's answers are exact (skipped
      // subtrees were behind fully known facts). Propagate decisions
      // backward over this pass's edges and persist the results.
      const std::size_t ne = entries_.size();
      rev_off_.assign(ne + 1, 0);
      for (const EdgeRec& er : edges_) ++rev_off_[er.to + 1];
      for (std::size_t i = 1; i <= ne; ++i) rev_off_[i] += rev_off_[i - 1];
      rev_cursor_.assign(rev_off_.begin(), rev_off_.end() - 1);
      rev_from_.resize(edges_.size());
      rev_via_.resize(edges_.size());
      for (const EdgeRec& er : edges_) {
        const std::uint32_t slot = rev_cursor_[er.to]++;
        rev_from_[slot] = er.from;
        rev_via_[slot] = er.via;
      }
      pos_.assign(ne, 0);
      wtmp_.assign(ne * 2, kWpUnset);
      for (int v = 0; v < 2; ++v) {
        work_.clear();
        for (std::size_t i = 0; i < ne; ++i) {
          const Entry& ei = entries_[i];
          const bool self = ((*flags_.read(ei.id) | query_ambient_) >> v) & 1;
          const bool fact_pos =
              ((ei.fact >> v) & 1) && ((ei.fact >> (2 + v)) & 1);
          if (!self && !fact_pos) continue;
          pos_[i] |= static_cast<std::uint8_t>(1u << v);
          if (self) wtmp_[i * 2 + v] = kWpSelf;
          work_.push_back(static_cast<std::uint32_t>(i));
        }
        for (std::size_t k = 0; k < work_.size(); ++k) {
          const std::uint32_t t = work_[k];
          for (std::uint32_t s = rev_off_[t]; s < rev_off_[t + 1]; ++s) {
            const std::uint32_t u = rev_from_[s];
            if ((pos_[u] >> v) & 1) continue;
            pos_[u] |= static_cast<std::uint8_t>(1u << v);
            wtmp_[u * 2 + v] = rev_via_[s];
            work_.push_back(u);
          }
        }
      }
      for (std::size_t i = 0; i < ne; ++i) {
        const Entry& ei = entries_[i];
        std::uint32_t& slot =
            facts_.at_or_insert(fact_key(ei.id, sym_ ? ei.pbits : query_pbits_));
        for (int v = 0; v < 2; ++v) {
          if ((slot >> v) & 1) continue;  // never overwrite a known fact
          slot |= 1u << v;
          if ((pos_[i] >> v) & 1) {
            slot |= 1u << (2 + v);
            std::uint8_t w = wtmp_[i * 2 + v];
            if (w == kWpUnset) w = kWpSelf;
            slot |= static_cast<std::uint32_t>(w) << (8 + 8 * v);
          }
        }
      }
    } else {
      // Interrupted pass (early exit or cap) or one past fact_entry_cap:
      // only the found witness paths are certainly positive; record those
      // so prefix-pattern queries (the lemma peel loops) land on facts
      // next time.
      for (int v = 0; v < 2; ++v) {
        if (found[v] == kNoEntry || by_fact[v]) continue;
        std::uint32_t t = found[v];
        std::uint8_t via_down = kWpSelf;  // found entry decides itself
        while (true) {
          const Entry& et = entries_[t];
          std::uint32_t& slot = facts_.at_or_insert(
              fact_key(et.id, sym_ ? et.pbits : query_pbits_));
          if (!((slot >> v) & 1)) {
            slot |= (1u << v) | (1u << (2 + v));
            slot |= static_cast<std::uint32_t>(via_down) << (8 + 8 * v);
          }
          if (et.parent == kNoEntry) break;
          via_down = et.via;
          t = et.parent;
        }
      }
    }
  }

  return res;
}

}  // namespace tsb::sim
