#pragma once

#include <optional>

#include "sim/config.hpp"
#include "sim/schedule.hpp"
#include "sim/trace.hpp"

namespace tsb::sim {

/// Execution engine: applies steps and schedules to configurations.
///
/// The engine is the single owner of the model's operational semantics;
/// the valency analyzer, the adversary, the model checker and the
/// certificate checker all go through these functions, so there is exactly
/// one definition of "what a step does" in the repository.

/// Apply one step by process p at configuration c. If p has decided, the
/// step is a no-op (decided processes take no further steps). If `trace`
/// is non-null the executed step is appended.
Config step(const Protocol& proto, const Config& c, ProcId p,
            Trace* trace = nullptr);

/// Apply an already-fetched pending operation (must not be kDecide) of
/// process p directly to a configuration's words in place: `states` is the
/// n state words, `regs` the m register words. Returns the value the
/// operation observed (register contents for a read, overwritten value for
/// a swap, 0 for a write). This is step()'s mutation core, exposed so the
/// packed-arena explorers can expand configurations without materializing
/// Config objects; there is still exactly one definition of "what a step
/// does".
Value apply_op(const Protocol& proto, const PendingOp& op, ProcId p,
               Value* states, Value* regs);

/// Apply a schedule (left to right). C-alpha in the paper's notation.
Config run(const Protocol& proto, const Config& c, const Schedule& alpha,
           Trace* trace = nullptr);

/// Result of running a process solo until it decides (or a step cap).
struct SoloRun {
  bool decided = false;
  Value decision = 0;
  Schedule schedule;  ///< the {p}-only schedule executed
  Trace trace;
  Config final;
};

/// Run p solo from c for at most `max_steps` steps, stopping when p decides.
/// For an obstruction-free (nondeterministic solo terminating) protocol,
/// p decides before any reasonable cap; a cap hit is reported, not fatal,
/// so callers can flag non-conforming protocols.
SoloRun run_solo(const Protocol& proto, const Config& c, ProcId p,
                 std::size_t max_steps);

/// True iff every process in P has decided in c and all decisions equal v.
bool all_decided(const Protocol& proto, const Config& c, ProcSet p, Value v);

/// True iff some process (any) has decided v in c.
bool some_decided(const Protocol& proto, const Config& c, Value v);

/// The set of processes that have decided in c.
ProcSet decided_set(const Protocol& proto, const Config& c);

}  // namespace tsb::sim
