#include "sim/protocol_search.hpp"

#include <cassert>
#include <limits>

namespace tsb::sim {

namespace {
constexpr std::uint8_t kRead = 0;
constexpr std::uint8_t kWrite = 1;
constexpr std::uint8_t kDecide = 2;

// Register observations are mapped to {0: empty, 1: value 0, 2: value 1}.
int obs_index(Value v) {
  if (v == kEmptyRegister) return 0;
  return v == 0 ? 1 : 2;
}
}  // namespace

std::string TableProtocolSpec::to_string() const {
  std::string out;
  for (int s = 0; s < num_states(); ++s) {
    const auto us = static_cast<std::size_t>(s);
    out += "s" + std::to_string(s) + "(pref=" + std::to_string(s & 1) + "): ";
    switch (op_kind[us]) {
      case kRead:
        out += "read R" + std::to_string(op_reg[us]) + " ->[empty,0,1] s" +
               std::to_string(read_next[us * 3 + 0]) + ",s" +
               std::to_string(read_next[us * 3 + 1]) + ",s" +
               std::to_string(read_next[us * 3 + 2]);
        break;
      case kWrite:
        out += "write R" + std::to_string(op_reg[us]) + " := " +
               std::to_string(op_val[us]) + " -> s" +
               std::to_string(write_next[us]);
        break;
      default:
        out += "decide " + std::to_string(s & 1);
    }
    out += "; ";
  }
  return out;
}

TableProtocol::TableProtocol(TableProtocolSpec spec) : spec_(std::move(spec)) {
  [[maybe_unused]] const auto states = static_cast<std::size_t>(spec_.num_states());
  assert(spec_.op_kind.size() == states);
  assert(spec_.op_reg.size() == states);
  assert(spec_.op_val.size() == states);
  assert(spec_.read_next.size() == states * 3);
  assert(spec_.write_next.size() == states);
}

State TableProtocol::initial_state(ProcId, Value input) const {
  // mode 0, pref = input. Anonymous: independent of the process id.
  return input == 0 ? 0 : 1;
}

PendingOp TableProtocol::poised(ProcId, State s) const {
  const auto us = static_cast<std::size_t>(s);
  switch (spec_.op_kind[us]) {
    case kRead:
      return PendingOp::read(spec_.op_reg[us]);
    case kWrite:
      return PendingOp::write(spec_.op_reg[us], spec_.op_val[us]);
    default:
      return PendingOp::decide(s & 1);
  }
}

State TableProtocol::after_read(ProcId, State s, Value observed) const {
  return spec_.read_next[static_cast<std::size_t>(s) * 3 +
                         static_cast<std::size_t>(obs_index(observed))];
}

State TableProtocol::after_write(ProcId, State s) const {
  return spec_.write_next[static_cast<std::size_t>(s)];
}

std::size_t ProtocolSearch::family_size(const Options& opts) {
  const std::size_t s = static_cast<std::size_t>(2 * opts.modes);
  const std::size_t m = static_cast<std::size_t>(opts.m);
  // Per state: m reads x S^3 transition tables + 2m writes x S successors
  // + 1 decide.
  const std::size_t per_state = m * s * s * s + 2 * m * s + 1;
  std::size_t total = 1;
  for (std::size_t i = 0; i < s; ++i) {
    if (total > std::numeric_limits<std::size_t>::max() / per_state) {
      return std::numeric_limits<std::size_t>::max();
    }
    total *= per_state;
  }
  return total;
}

bool ProtocolSearch::plausible(const TableProtocolSpec& spec) {
  // A protocol that can never decide is hopeless; skip the model checker.
  for (std::uint8_t k : spec.op_kind) {
    if (k == kDecide) return true;
  }
  return false;
}

void ProtocolSearch::check_one(const Options& opts,
                               const TableProtocolSpec& spec, Stats& stats) {
  ++stats.candidates;
  if (!plausible(spec)) {
    ++stats.skipped_trivial;
    return;
  }
  TableProtocol proto(spec);

  ModelChecker::Options safety_opts;
  safety_opts.k = 1;
  safety_opts.max_configs = opts.max_configs;
  safety_opts.check_solo_termination = false;
  ModelChecker safety(proto, safety_opts);
  auto safety_rep = safety.check_all_binary_inputs();
  if (!safety_rep.ok || safety_rep.truncated) return;
  ++stats.safe;

  ModelChecker::Options live_opts = safety_opts;
  live_opts.check_solo_termination = true;
  live_opts.solo_step_cap = opts.solo_step_cap;
  ModelChecker live(proto, live_opts);
  auto live_rep = live.check_all_binary_inputs();
  if (!live_rep.ok || live_rep.truncated) return;
  ++stats.live;
  stats.winners.push_back(spec);
}

ProtocolSearch::Stats ProtocolSearch::exhaustive(const Options& opts) {
  Stats stats;
  const int s_count = 2 * opts.modes;
  TableProtocolSpec spec;
  spec.n = opts.n;
  spec.m = opts.m;
  spec.modes = opts.modes;
  const auto us_count = static_cast<std::size_t>(s_count);
  spec.op_kind.assign(us_count, kDecide);
  spec.op_reg.assign(us_count, 0);
  spec.op_val.assign(us_count, 0);
  spec.read_next.assign(us_count * 3, 0);
  spec.write_next.assign(us_count, 0);

  bool stop = false;
  auto capped = [&] {
    return opts.max_candidates != 0 && stats.candidates >= opts.max_candidates;
  };

  // Depth-first enumeration over states; per state, iterate its local
  // branches (action + the transitions that action actually uses), so no
  // genome is visited twice with differing don't-care digits.
  std::function<void(int)> go = [&](int s) {
    if (stop) return;
    if (s == s_count) {
      check_one(opts, spec, stats);
      if (capped()) stop = true;
      return;
    }
    const auto us = static_cast<std::size_t>(s);

    // Reads.
    spec.op_kind[us] = kRead;
    for (int reg = 0; reg < opts.m && !stop; ++reg) {
      spec.op_reg[us] = static_cast<std::uint8_t>(reg);
      for (int a = 0; a < s_count && !stop; ++a) {
        spec.read_next[us * 3 + 0] = static_cast<std::uint8_t>(a);
        for (int b = 0; b < s_count && !stop; ++b) {
          spec.read_next[us * 3 + 1] = static_cast<std::uint8_t>(b);
          for (int c = 0; c < s_count && !stop; ++c) {
            spec.read_next[us * 3 + 2] = static_cast<std::uint8_t>(c);
            go(s + 1);
          }
        }
      }
    }
    spec.read_next[us * 3 + 0] = spec.read_next[us * 3 + 1] =
        spec.read_next[us * 3 + 2] = 0;

    // Writes.
    spec.op_kind[us] = kWrite;
    for (int reg = 0; reg < opts.m && !stop; ++reg) {
      spec.op_reg[us] = static_cast<std::uint8_t>(reg);
      for (int val = 0; val <= 1 && !stop; ++val) {
        spec.op_val[us] = static_cast<std::uint8_t>(val);
        for (int nxt = 0; nxt < s_count && !stop; ++nxt) {
          spec.write_next[us] = static_cast<std::uint8_t>(nxt);
          go(s + 1);
        }
      }
    }
    spec.op_reg[us] = spec.op_val[us] = spec.write_next[us] = 0;

    // Decide.
    if (!stop) {
      spec.op_kind[us] = kDecide;
      go(s + 1);
    }
  };
  go(0);
  return stats;
}

ProtocolSearch::Stats ProtocolSearch::sample(const Options& opts,
                                             std::size_t count,
                                             util::Rng& rng) {
  Stats stats;
  const int s_count = 2 * opts.modes;
  const auto us_count = static_cast<std::size_t>(s_count);
  const std::uint64_t s64 = static_cast<std::uint64_t>(s_count);
  const std::uint64_t m64 = static_cast<std::uint64_t>(opts.m);
  const std::uint64_t read_branches = m64 * s64 * s64 * s64;
  const std::uint64_t write_branches = 2 * m64 * s64;
  const std::uint64_t per_state = read_branches + write_branches + 1;

  for (std::size_t i = 0; i < count; ++i) {
    TableProtocolSpec spec;
    spec.n = opts.n;
    spec.m = opts.m;
    spec.modes = opts.modes;
    spec.op_kind.assign(us_count, kDecide);
    spec.op_reg.assign(us_count, 0);
    spec.op_val.assign(us_count, 0);
    spec.read_next.assign(us_count * 3, 0);
    spec.write_next.assign(us_count, 0);

    for (std::size_t us = 0; us < us_count; ++us) {
      std::uint64_t branch = rng.below(per_state);
      if (branch < read_branches) {
        spec.op_kind[us] = kRead;
        spec.op_reg[us] = static_cast<std::uint8_t>(branch % m64);
        branch /= m64;
        spec.read_next[us * 3 + 0] = static_cast<std::uint8_t>(branch % s64);
        branch /= s64;
        spec.read_next[us * 3 + 1] = static_cast<std::uint8_t>(branch % s64);
        branch /= s64;
        spec.read_next[us * 3 + 2] = static_cast<std::uint8_t>(branch % s64);
      } else if (branch < read_branches + write_branches) {
        branch -= read_branches;
        spec.op_kind[us] = kWrite;
        spec.op_reg[us] = static_cast<std::uint8_t>(branch % m64);
        branch /= m64;
        spec.op_val[us] = static_cast<std::uint8_t>(branch % 2);
        branch /= 2;
        spec.write_next[us] = static_cast<std::uint8_t>(rng.below(s64));
      } else {
        spec.op_kind[us] = kDecide;
      }
    }
    check_one(opts, spec, stats);
  }
  return stats;
}

}  // namespace tsb::sim
