#pragma once

#include <stdexcept>
#include <string>

#include "sim/op.hpp"
#include "sim/value.hpp"

namespace tsb::sim {

/// A protocol in the asynchronous read/write shared-memory model,
/// expressed as a deterministic step machine per process.
///
/// This is the model of Zhu's paper (Section 2): each process runs a
/// deterministic algorithm; a configuration consists of every process's
/// local state plus the contents of every register; a step by process p is
/// the operation p is poised to perform in its current state.
///
/// Determinism matters: the lower bound is stated for nondeterministic
/// solo-terminating protocols, which subsume randomized ones by fixing the
/// coin flips. We model randomized protocols by baking a coin stream into
/// the local state (see consensus/randomized.hpp), so the simulator itself
/// stays deterministic and configurations remain pure value types.
///
/// Contract:
///  * `poised(p, s)` must be a pure function of (p, s).
///  * After `poised(p, s).is_decide()`, the state is terminal; the engine
///    never calls `after_*` on it. Decisions are stable by construction.
///  * `after_read` / `after_write` return the successor local state. They
///    must be pure; the engine owns register mutation.
class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::string name() const = 0;

  /// Number of processes the instance is configured for (n >= 2).
  virtual int num_processes() const = 0;

  /// Number of shared registers the protocol uses (its space complexity).
  virtual int num_registers() const = 0;

  /// Initial contents of every register; the model requires this to be the
  /// same in all initial configurations (independent of inputs).
  virtual Value initial_register() const { return kEmptyRegister; }

  /// True if the protocol is process-oblivious ("anonymous"):
  /// initial_state(), poised() and after_*() ignore their ProcId argument,
  /// so every renaming of the processes is an automorphism of the step
  /// relation. The reachability engine exploits this with canonical forms
  /// (sim/canonical.hpp), shrinking visited sets by up to n! — declaring
  /// symmetry for a protocol that does consult process ids is UNSOUND; the
  /// engine replay-verifies de-canonicalized witnesses to catch it.
  virtual bool symmetric() const { return false; }

  /// Initial local state of process p with input `input`.
  virtual State initial_state(ProcId p, Value input) const = 0;

  /// The operation process p is poised to perform in local state s.
  virtual PendingOp poised(ProcId p, State s) const = 0;

  /// Successor state after p's pending read returned `observed`.
  virtual State after_read(ProcId p, State s, Value observed) const = 0;

  /// Successor state after p's pending write was applied.
  virtual State after_write(ProcId p, State s) const = 0;

  /// Successor state after p's pending swap returned the overwritten value
  /// `observed`. Only called for protocols that issue kSwap ops (the
  /// historyless extension, paper Section 4); read/write protocols never
  /// override this.
  virtual State after_swap(ProcId p, State s, Value observed) const {
    (void)p;
    (void)s;
    (void)observed;
    // Reaching this means poised() returned kSwap without an override.
    throw std::logic_error("protocol issued a swap without after_swap");
  }
};

}  // namespace tsb::sim
