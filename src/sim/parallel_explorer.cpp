#include "sim/parallel_explorer.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "obs/span.hpp"

namespace tsb::sim {

namespace {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

inline void spin_lock(std::atomic_flag& f) {
  while (f.test_and_set(std::memory_order_acquire)) cpu_pause();
}

inline void spin_unlock(std::atomic_flag& f) {
  f.clear(std::memory_order_release);
}

struct StealMetrics {
  obs::Counter& steals;
  obs::Counter& steal_fails;
  obs::Counter& idle_spins;
  obs::Counter& chunks;
};

StealMetrics& steal_metrics() {
  static StealMetrics m{
      obs::Registry::global().counter("sim.explore.steals"),
      obs::Registry::global().counter("sim.explore.steal_fails"),
      obs::Registry::global().counter("sim.explore.idle_spins"),
      obs::Registry::global().counter("sim.explore.chunks"),
  };
  return m;
}

}  // namespace

namespace detail {

ParentStore::~ParentStore() {
  for (std::size_t i = 0; i < dir_segs_; ++i) {
    delete[] dir_[i].load(std::memory_order_relaxed);
  }
}

void ParentStore::prepare(std::size_t cap) {
  const std::size_t need = (cap + kSegSize - 1) >> kSegShift;
  if (need <= dir_segs_) return;
  auto bigger = std::make_unique<std::atomic<Rec*>[]>(need);
  for (std::size_t i = 0; i < dir_segs_; ++i) {
    bigger[i].store(dir_[i].load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  }
  for (std::size_t i = dir_segs_; i < need; ++i) {
    bigger[i].store(nullptr, std::memory_order_relaxed);
  }
  dir_ = std::move(bigger);
  dir_segs_ = need;
}

}  // namespace detail

// --- Deque --------------------------------------------------------------

bool ParallelExplorer::Deque::pop(WorkItem& out) {
  spin_lock(lock);
  if (top == buf.size()) {
    spin_unlock(lock);
    return false;
  }
  out = buf.back();
  buf.pop_back();
  if (top == buf.size()) {
    buf.clear();
    top = 0;
  }
  spin_unlock(lock);
  return true;
}

bool ParallelExplorer::Deque::steal(WorkItem& out) {
  spin_lock(lock);
  if (top == buf.size()) {
    spin_unlock(lock);
    return false;
  }
  out = buf[top++];
  if (top == buf.size()) {
    buf.clear();
    top = 0;
  } else if (top >= 1024 && top * 2 >= buf.size()) {
    buf.erase(buf.begin(),
              buf.begin() + static_cast<std::ptrdiff_t>(top));
    top = 0;
  }
  spin_unlock(lock);
  return true;
}

void ParallelExplorer::Deque::push(WorkItem item) {
  spin_lock(lock);
  buf.push_back(item);
  cap_bytes.store(buf.capacity() * sizeof(WorkItem),
                  std::memory_order_relaxed);
  spin_unlock(lock);
}

void ParallelExplorer::Deque::clear() {
  buf.clear();
  top = 0;
}

// --- Shard --------------------------------------------------------------

void ParallelExplorer::Shard::reset(std::atomic<std::size_t>&) {
  // Swap against a fresh table rather than assign(): assign() keeps the
  // prior run's capacity, so a reused explorer (the valency oracle runs
  // many queries through one instance) would hold every shard at its
  // high-water mark forever — and the next reserve_for would see a new
  // capacity *smaller* than `before`. The caller recomputes shard_bytes_
  // from the released capacities right after resetting every shard.
  std::vector<Slot>(std::size_t{1} << 10).swap(slots);
  mask = slots.size() - 1;
  used = 0;
}

void ParallelExplorer::Shard::reserve_for(std::size_t incoming,
                                          std::atomic<std::size_t>& bytes) {
  // Keep the load factor below 0.7 for the worst case where every incoming
  // candidate is new. Runs under the shard lock; the grown table is
  // allocated (first-touched) by the flushing worker.
  std::size_t needed = slots.size();
  while ((used + incoming) * 10 >= needed * 7) needed *= 2;
  if (needed == slots.size()) return;
  const std::size_t before = slots.capacity() * sizeof(Slot);
  std::vector<Slot> bigger(needed);
  const std::size_t bigger_mask = needed - 1;
  for (const Slot& s : slots) {
    if (s.ref == kEmptyRef) continue;
    std::size_t i = s.hash & bigger_mask;
    while (bigger[i].ref != kEmptyRef) i = (i + 1) & bigger_mask;
    bigger[i] = s;
  }
  slots = std::move(bigger);
  mask = bigger_mask;
  // Add-then-subtract instead of adding the difference: the counter always
  // includes `before`, so this never goes negative in aggregate, whereas a
  // single unsigned delta would wrap to ~2^64 if the new capacity were ever
  // smaller than the old one — corrupting tracked_bytes() and spuriously
  // tripping every later memory budget check.
  bytes.fetch_add(slots.capacity() * sizeof(Slot), std::memory_order_relaxed);
  bytes.fetch_sub(before, std::memory_order_relaxed);
}

// --- ParallelExplorer ---------------------------------------------------

ParallelExplorer::ParallelExplorer(const Protocol& proto, Options opts)
    : proto_(proto),
      opts_(opts),
      arena_(proto.num_processes(), proto.num_registers()),
      shards_(kShards),
      deques_(static_cast<std::size_t>(resolve_threads(opts.threads))),
      workers_(static_cast<std::size_t>(resolve_threads(opts.threads))),
      pool_(resolve_threads(opts.threads)) {
  // At least 1: the root is always interned, and prepare(0) would leave the
  // parent directory empty for the root's ensure()/set() to dereference.
  opts_.max_configs =
      std::clamp<std::size_t>(opts_.max_configs, 1, kNoConfig - 1);
  if (opts_.chunk_configs == 0) opts_.chunk_configs = 1;
  const std::size_t W = arena_.words_per_config();
  for (WorkerCtx& w : workers_) {
    w.batches.resize(kShards);
    for (Batch& b : w.batches) {
      b.meta.reserve(kBatch);
      b.words.reserve(kBatch * W);
    }
    w.cur.resize(W);
  }
}

ParallelExplorer::~ParallelExplorer() = default;

std::size_t ParallelExplorer::tracked_bytes() const {
  const std::size_t W = arena_.words_per_config();
  // Staging buffers are bounded by their reserve; counting the bound keeps
  // this callable from any worker without touching vector internals that
  // another thread might be growing.
  const std::size_t staging =
      workers_.size() *
      (kShards * kBatch * (W * sizeof(Value) + sizeof(Cand)) +
       W * sizeof(Value));
  std::size_t deque_bytes = 0;
  for (const Deque& d : deques_) {
    deque_bytes += d.cap_bytes.load(std::memory_order_relaxed);
  }
  return arena_.memory_bytes() + parent_.memory_bytes() +
         shard_bytes_.load(std::memory_order_relaxed) + staging + deque_bytes;
}

void ParallelExplorer::update_ledger() const {
  obs::MemLedger& ledger = obs::MemLedger::global();
  ledger.set(obs::MemAccount::kArenaWords, arena_.words_bytes());
  ledger.set(obs::MemAccount::kArenaTable, arena_.table_bytes());
  if (arena_.spill_enabled() || arena_.spilled_bytes() != 0) {
    ledger.set(obs::MemAccount::kArenaSpill, arena_.spilled_bytes());
    ledger.set(obs::MemAccount::kArenaMapped, arena_.mapped_bytes());
  }
  const std::size_t W = arena_.words_per_config();
  std::size_t frontier =
      parent_.memory_bytes() +
      workers_.size() *
          (kShards * kBatch * (W * sizeof(Value) + sizeof(Cand)) +
           W * sizeof(Value));
  for (const Deque& d : deques_) {
    frontier += d.cap_bytes.load(std::memory_order_relaxed);
  }
  ledger.set(obs::MemAccount::kExploreFrontier, frontier);
  ledger.set(obs::MemAccount::kExploreShards,
             shard_bytes_.load(std::memory_order_relaxed));
}

std::size_t ParallelExplorer::committed() const {
  const std::uint64_t raw = next_id_.load(std::memory_order_relaxed);
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(raw, opts_.max_configs));
}

void ParallelExplorer::flush_shard(WorkerCtx& w, int s) {
  Batch& b = w.batches[static_cast<std::size_t>(s)];
  if (b.meta.empty()) return;
  Shard& sh = shards_[static_cast<std::size_t>(s)];
  const std::size_t W = arena_.words_per_config();
  const std::uint64_t cap = opts_.max_configs;

  spin_lock(sh.lock);
  sh.reserve_for(b.meta.size(), shard_bytes_);
  for (std::size_t k = 0; k < b.meta.size(); ++k) {
    const Cand& c = b.meta[k];
    const Value* cw = b.words.data() + k * W;
    std::size_t i = c.hash & sh.mask;
    while (true) {
      Shard::Slot& slot = sh.slots[i];
      if (slot.ref == kEmptyRef) {
        const std::uint64_t raw =
            next_id_.fetch_add(1, std::memory_order_relaxed);
        if (raw >= cap) {
          // Cap reached: drop the rest of the batch. Nothing was inserted
          // for this candidate, so probe chains stay intact; the run is
          // truncated and never claims completeness.
          truncated_.store(true, std::memory_order_relaxed);
          stop_.store(true, std::memory_order_release);
          spin_unlock(sh.lock);
          b.meta.clear();
          b.words.clear();
          return;
        }
        const ConfigId id = static_cast<ConfigId>(raw);
        arena_.ensure_capacity(raw + 1);
        std::memcpy(arena_.slot_ptr(id), cw, W * sizeof(Value));
        parent_.ensure(id);
        parent_.set(id, {c.parent, c.via});
        slot.hash = c.hash;
        slot.ref = id;
        ++sh.used;
        w.fresh.push_back(id);
        break;
      }
      if (slot.hash == c.hash &&
          arena_.words_equal(arena_.words(slot.ref), cw)) {
        ++w.dedup_delta;
        break;
      }
      i = (i + 1) & sh.mask;
    }
  }
  spin_unlock(sh.lock);
  b.meta.clear();
  b.words.clear();
}

void ParallelExplorer::publish_fresh(WorkerCtx& w, int self, VisitFn fn,
                                     void* vctx) {
  if (w.fresh.empty()) return;
  detail::ExploreMetrics& metrics = detail::explore_metrics();
  metrics.visited.add(w.fresh.size());
  w.visited_delta += w.fresh.size();
  {
    std::lock_guard<std::mutex> lk(visit_mu_);
    for (ConfigId id : w.fresh) {
      if (aborted_.load(std::memory_order_relaxed)) break;
      if (!fn(vctx, arena_.view(id))) {
        bool expected = false;
        if (aborted_.compare_exchange_strong(expected, true)) {
          abort_id_.store(id, std::memory_order_relaxed);
          stop_.store(true, std::memory_order_release);
        }
        break;
      }
    }
  }
  if (!stopping()) {
    // Coalesce into contiguous runs (ids from this worker's flushes are
    // strictly increasing) and make them stealable. pending_ rises before
    // the items become visible so the termination count never dips to
    // zero with live work in a deque.
    w.runs.clear();
    ConfigId begin = w.fresh.front();
    ConfigId prev = begin;
    for (std::size_t i = 1; i < w.fresh.size(); ++i) {
      const ConfigId id = w.fresh[i];
      if (id != prev + 1) {
        w.runs.push_back({begin, prev + 1});
        begin = id;
      }
      prev = id;
    }
    w.runs.push_back({begin, prev + 1});
    pending_.fetch_add(static_cast<std::int64_t>(w.fresh.size()));
    for (const WorkItem& run : w.runs) deques_[self].push(run);
  }
  w.fresh.clear();
}

void ParallelExplorer::expand_chunk(WorkerCtx& w, WorkItem item, ProcSet p,
                                    VisitFn fn, void* vctx) {
  const std::size_t W = arena_.words_per_config();
  const int n = arena_.num_states();
  const int self = static_cast<int>(&w - workers_.data());
  static thread_local std::vector<Value> succ;
  if (succ.size() < W) succ.resize(W);

  for (ConfigId cur = item.begin; cur < item.end && !stopping(); ++cur) {
    // words() may hand back the thread-local decode buffer of a spilled
    // segment; copy so successor staging (which can itself decode other
    // spilled ids during dedup) cannot clobber the source.
    std::memcpy(w.cur.data(), arena_.words(cur), W * sizeof(Value));
    p.for_each([&](int q) {
      if (stopping()) return;
      const PendingOp op =
          proto_.poised(q, w.cur[static_cast<std::size_t>(q)]);
      if (op.is_decide()) return;  // terminated: no edge
      std::memcpy(succ.data(), w.cur.data(), W * sizeof(Value));
      apply_op(proto_, op, q, succ.data(), succ.data() + n);
      const std::uint64_t h = arena_.hash_words(succ.data());
      const int s = static_cast<int>((h >> 58) & (kShards - 1));
      Batch& b = w.batches[static_cast<std::size_t>(s)];
      const std::size_t k = b.meta.size();
      b.words.resize((k + 1) * W);
      std::memcpy(b.words.data() + k * W, succ.data(), W * sizeof(Value));
      b.meta.push_back(Cand{h, cur, q});
      if (b.meta.size() >= kBatch) {
        flush_shard(w, s);
        publish_fresh(w, self, fn, vctx);
      }
    });
  }
  if (stopping()) {
    for (Batch& b : w.batches) {
      b.meta.clear();
      b.words.clear();
    }
  } else {
    for (int s = 0; s < kShards; ++s) flush_shard(w, s);
    publish_fresh(w, self, fn, vctx);
  }
  // Only after this chunk's candidates are flushed and its children
  // counted may the chunk leave the termination count.
  pending_.fetch_sub(static_cast<std::int64_t>(item.end - item.begin));
}

void ParallelExplorer::request_spill() {
  std::unique_lock<std::mutex> lk(spill_.mu);
  if (spill_.requested.load(std::memory_order_relaxed)) return;
  spill_.requested.store(true, std::memory_order_relaxed);
  spill_.cv.notify_all();
  spill_.cv.wait(lk, [&] { return spill_.parked >= spill_.active - 1; });
  // Quiesced: every other active worker is parked between chunks, so no
  // arena reads or writes are in flight anywhere.
  arena_.set_size(committed());
  std::size_t released = 0;
  try {
    released = arena_.maybe_spill(kNoConfig);
  } catch (...) {
    // Spill failure is fatal (BudgetExhausted), but the parked workers
    // must be released before the exception unwinds through the pool, or
    // they wait on `requested` forever.
    stop_.store(true, std::memory_order_release);
    spill_.requested.store(false, std::memory_order_relaxed);
    spill_.cv.notify_all();
    throw;
  }
  if (released != 0) {
    ++run_stats_.spill_pauses;
    obs::flight::record(obs::flight::Ev::kSpill,
                        static_cast<std::int64_t>(released),
                        static_cast<std::int64_t>(arena_.spilled_bytes()));
    update_ledger();
  }
  spill_.requested.store(false, std::memory_order_relaxed);
  spill_.cv.notify_all();
}

void ParallelExplorer::request_checkpoint() {
  std::unique_lock<std::mutex> lk(spill_.mu);
  if (spill_.requested.load(std::memory_order_relaxed)) return;
  spill_.requested.store(true, std::memory_order_relaxed);
  spill_.cv.notify_all();
  spill_.cv.wait(lk, [&] { return spill_.parked >= spill_.active - 1; });
  // Quiesced exactly like a spill pause: every other worker is parked
  // between chunks, the visitor is idle, and the query thread is blocked
  // in pool_.run() — so the checkpoint serializer may walk any session
  // state. Commit the arena size first so a serializer that reads this
  // explorer sees only fully published configurations.
  arena_.set_size(committed());
  try {
    util::ckpt::CheckpointService::global().poll(0);
  } catch (...) {
    // CheckpointStop (or a write failure) must release the parked workers
    // before unwinding through the pool, or they wait on `requested`
    // forever. stop_ makes them exit instead of resuming work.
    stop_.store(true, std::memory_order_release);
    spill_.requested.store(false, std::memory_order_relaxed);
    spill_.cv.notify_all();
    throw;
  }
  spill_.requested.store(false, std::memory_order_relaxed);
  spill_.cv.notify_all();
}

void ParallelExplorer::park_for_spill() {
  std::unique_lock<std::mutex> lk(spill_.mu);
  if (!spill_.requested.load(std::memory_order_relaxed)) return;
  ++spill_.parked;
  spill_.cv.notify_all();
  spill_.cv.wait(
      lk, [&] { return !spill_.requested.load(std::memory_order_relaxed); });
  --spill_.parked;
}

void ParallelExplorer::worker_main(int t, ProcSet p, VisitFn fn, void* vctx,
                                   obs::Heartbeat& hb) {
  WorkerCtx& w = workers_[static_cast<std::size_t>(t)];
  detail::ExploreMetrics& metrics = detail::explore_metrics();
  const int T = pool_.size();
  int backoff = 0;
  const auto body = [&] {
    while (true) {
      if (stopping()) break;
      if (spill_.requested.load(std::memory_order_relaxed)) park_for_spill();
      WorkItem item{};
      bool got = deques_[static_cast<std::size_t>(t)].pop(item);
      if (!got) {
        for (int i = 1; i < T; ++i) {
          const int v = (t + i) % T;
          if (deques_[static_cast<std::size_t>(v)].steal(item)) {
            got = true;
            w.steals.fetch_add(1, std::memory_order_relaxed);
            obs::flight::record(obs::flight::Ev::kSteal, t, v);
            break;
          }
        }
        if (!got) w.steal_fails.fetch_add(1, std::memory_order_relaxed);
      }
      if (!got) {
        if (pending_.load() == 0) break;
        w.idle_spins.fetch_add(1, std::memory_order_relaxed);
        // Exponential backoff: brief pause bursts, then yields, so an
        // out-of-work worker neither burns a core nor misses a steal.
        if (backoff < 10) ++backoff;
        if (backoff < 6) {
          for (int i = 0; i < (1 << backoff); ++i) cpu_pause();
        } else {
          std::this_thread::yield();
        }
        continue;
      }
      backoff = 0;
      if (item.end - item.begin > opts_.chunk_configs) {
        deques_[static_cast<std::size_t>(t)].push(
            {item.begin + opts_.chunk_configs, item.end});
        item.end = item.begin + opts_.chunk_configs;
      }
      expand_chunk(w, item, p, fn, vctx);
      const std::uint64_t chunks =
          w.chunks.fetch_add(1, std::memory_order_relaxed) + 1;
      if (w.dedup_delta >= 1024) {
        metrics.dedup_hits.add(w.dedup_delta);
        w.dedup_run += w.dedup_delta;
        w.dedup_delta = 0;
      }
      if (budget_bytes_ != 0 && !stopping() &&
          tracked_bytes() >= budget_bytes_) {
        obs::flight::record(obs::flight::Ev::kBudgetTrip,
                            static_cast<std::int64_t>(tracked_bytes()),
                            static_cast<std::int64_t>(budget_bytes_));
        budget_exhausted_.store(true, std::memory_order_relaxed);
        truncated_.store(true, std::memory_order_relaxed);
        stop_.store(true, std::memory_order_release);
      }
      if ((chunks & 0xF) == 0 && !stopping() &&
          budget_deadline_ != std::chrono::steady_clock::time_point::max() &&
          std::chrono::steady_clock::now() >= budget_deadline_) {
        obs::flight::record(obs::flight::Ev::kBudgetTrip,
                            static_cast<std::int64_t>(tracked_bytes()), 0);
        budget_exhausted_.store(true, std::memory_order_relaxed);
        truncated_.store(true, std::memory_order_relaxed);
        stop_.store(true, std::memory_order_release);
      }
      if (arena_.spill_needed(
              static_cast<std::size_t>(next_id_.load(
                  std::memory_order_relaxed))) &&
          !stopping()) {
        request_spill();
      }
      // Checkpoint-due (or stop-requested) between chunks: workers feed
      // their chunk's expansions into the work-count cadence (warm-phase
      // polls stop once the pool takes over), then rendezvous so the write
      // happens with the whole explorer quiesced. Both calls are one or
      // two relaxed loads when checkpointing is not configured.
      util::ckpt::CheckpointService::global().add_work(item.end - item.begin);
      if (!stopping() && util::ckpt::CheckpointService::global().due()) {
        request_checkpoint();
      }
      if (t == 0 && (chunks & 0x3F) == 0) {
        metrics.frontier.set(pending_.load(std::memory_order_relaxed));
        hb.beat(
            [&] {
              return "configs=" + std::to_string(committed()) +
                     " pending=" + std::to_string(pending_.load(
                                       std::memory_order_relaxed)) +
                     " threads=" + std::to_string(T);
            },
            [&](obs::StatusSnapshot& s) {
              s.frontier = pending_.load(std::memory_order_relaxed);
              s.visited = static_cast<std::int64_t>(committed());
              s.cap = static_cast<std::int64_t>(opts_.max_configs);
              // Registry counters only see steals/idle at run end, so the
              // live snapshot aggregates the per-worker atomics directly —
              // telemetry's starvation rule needs mid-run values.
              std::int64_t steals = 0;
              std::int64_t idle = 0;
              for (const WorkerCtx& o : workers_) {
                steals += static_cast<std::int64_t>(
                    o.steals.load(std::memory_order_relaxed));
                idle += static_cast<std::int64_t>(
                    o.idle_spins.load(std::memory_order_relaxed));
              }
              s.steals = steals;
              s.idle_spins = idle;
            });
      }
      if (t == 0 && (chunks & 0xFF) == 0) {
        update_ledger();
        if (obs::stats_enabled()) {
          std::uint64_t steals = 0;
          std::uint64_t idle = 0;
          for (const WorkerCtx& o : workers_) {
            steals += o.steals.load(std::memory_order_relaxed);
            idle += o.idle_spins.load(std::memory_order_relaxed);
          }
          obs::stats_sink().write(
              obs::JsonObj()
                  .str("type", "explore.ws")
                  .str("who", "explore-par")
                  .num("visited", static_cast<std::int64_t>(committed()))
                  .num("pending",
                       pending_.load(std::memory_order_relaxed))
                  .num("steals", static_cast<std::int64_t>(steals))
                  .num("idle_spins", static_cast<std::int64_t>(idle))
                  .num("spilled_bytes",
                       static_cast<std::int64_t>(arena_.spilled_bytes()))
                  .num("resident_bytes",
                       static_cast<std::int64_t>(arena_.words_bytes()))
                  .render());
        }
      }
    }
  };
  try {
    body();
  } catch (...) {
    // Unblock any spill requester waiting on this worker, then let the
    // pool rethrow from run().
    stop_.store(true, std::memory_order_release);
    metrics.dedup_hits.add(w.dedup_delta);
    w.dedup_run += w.dedup_delta;
    w.dedup_delta = 0;
    {
      std::lock_guard<std::mutex> lk(spill_.mu);
      --spill_.active;
    }
    spill_.cv.notify_all();
    throw;
  }
  metrics.dedup_hits.add(w.dedup_delta);
  w.dedup_run += w.dedup_delta;
  w.dedup_delta = 0;
  {
    std::lock_guard<std::mutex> lk(spill_.mu);
    --spill_.active;
  }
  spill_.cv.notify_all();
}

ParallelExplorer::Result ParallelExplorer::explore_impl(const Config& root,
                                                        ProcSet p, VisitFn fn,
                                                        void* vctx) {
  arena_.clear();
  parent_.prepare(opts_.max_configs);
  for (Shard& sh : shards_) sh.reset(shard_bytes_);
  {
    std::size_t sb = 0;
    for (const Shard& sh : shards_) sb += sh.slots.capacity() * sizeof(Shard::Slot);
    shard_bytes_.store(sb, std::memory_order_relaxed);
  }
  for (Deque& d : deques_) d.clear();
  for (WorkerCtx& w : workers_) {
    for (Batch& b : w.batches) {
      b.meta.clear();
      b.words.clear();
    }
    w.fresh.clear();
    w.runs.clear();
    w.steals.store(0, std::memory_order_relaxed);
    w.steal_fails.store(0, std::memory_order_relaxed);
    w.idle_spins.store(0, std::memory_order_relaxed);
    w.chunks.store(0, std::memory_order_relaxed);
    w.visited_delta = 0;
    w.dedup_delta = 0;
    w.dedup_run = 0;
  }
  next_id_.store(0, std::memory_order_relaxed);
  pending_.store(0);
  stop_.store(false, std::memory_order_relaxed);
  truncated_.store(false, std::memory_order_relaxed);
  aborted_.store(false, std::memory_order_relaxed);
  budget_exhausted_.store(false, std::memory_order_relaxed);
  abort_id_.store(kNoConfig, std::memory_order_relaxed);
  run_stats_ = RunStats{};

  Result res;
  detail::ExploreMetrics& metrics = detail::explore_metrics();
  detail::LevelStatsTracker stats("explore-par", opts_.stats_min_visited);
  obs::Heartbeat hb("explore-par");
  const std::size_t W = arena_.words_per_config();
  const int n = arena_.num_states();
  const int T = pool_.size();

  // Root.
  arena_.pack(root, arena_.scratch());
  const std::uint64_t root_hash = arena_.hash_words(arena_.scratch());
  const ConfigId root_id = arena_.append_words(arena_.scratch());
  parent_.ensure(root_id);
  parent_.set(root_id, {kNoConfig, -1});
  {
    Shard& sh = shard_of(root_hash);
    sh.reserve_for(1, shard_bytes_);
    std::size_t i = root_hash & sh.mask;
    while (sh.slots[i].ref != kEmptyRef) i = (i + 1) & sh.mask;
    sh.slots[i] = Shard::Slot{root_hash, root_id};
    ++sh.used;
  }
  ++res.visited;
  metrics.visited.add();
  if (!fn(vctx, arena_.view(root_id))) {
    res.aborted = true;
    res.abort_config = arena_.materialize(root_id);
    next_id_.store(1, std::memory_order_relaxed);
    visited_count_ = 1;
    if (stats.active()) stats.done(arena_, res, 0);
    return res;
  }

  // Sequential warm phase on the calling thread: identical inner loop to
  // Explorer's, but deduplicating against the shard tables the parallel
  // phase will inherit. Small enumerations finish here without ever
  // touching locks, deques, or the pool.
  ConfigId head = 0;
  std::size_t expanded = 0;
  ConfigId level_start = 0;
  ConfigId level_end = 1;
  std::size_t level_idx = 0;
  std::uint64_t level_dedup = 0;
  std::uint64_t dedup_total = 0;
  bool warm_stopped = false;  // truncation/budget/abort ends the run here
  static thread_local std::vector<Value> cur_buf;
  static thread_local std::vector<Value> succ_buf;
  if (cur_buf.size() < W) cur_buf.resize(W);
  if (succ_buf.size() < W) succ_buf.resize(W);

  while (head < arena_.size()) {
    if (head == level_end) {
      if (stats.active()) {
        stats.commit_level(stats.level_record(
            arena_, level_end - level_start,
            static_cast<ConfigId>(arena_.size()) - level_end, level_dedup));
      }
      level_start = level_end;
      level_end = static_cast<ConfigId>(arena_.size());
      level_dedup = 0;
      ++level_idx;
      update_ledger();
      obs::flight::record(obs::flight::Ev::kLevel,
                          static_cast<std::int64_t>(level_idx),
                          static_cast<std::int64_t>(level_end - level_start));
    }
    if (arena_.size() >= opts_.max_configs) {
      res.truncated = true;
      warm_stopped = true;
      break;
    }
    if (budget_bytes_ != 0 && tracked_bytes() >= budget_bytes_) {
      update_ledger();
      obs::flight::record(obs::flight::Ev::kBudgetTrip,
                          static_cast<std::int64_t>(tracked_bytes()),
                          static_cast<std::int64_t>(budget_bytes_));
      res.truncated = true;
      res.budget_exhausted = true;
      warm_stopped = true;
      break;
    }
    ++expanded;
    if ((expanded & 0xFF) == 1 &&
        budget_deadline_ != std::chrono::steady_clock::time_point::max() &&
        std::chrono::steady_clock::now() >= budget_deadline_) {
      obs::flight::record(obs::flight::Ev::kBudgetTrip,
                          static_cast<std::int64_t>(tracked_bytes()), 0);
      res.truncated = true;
      res.budget_exhausted = true;
      warm_stopped = true;
      break;
    }
    if (T > 1 && arena_.size() >= opts_.parallel_threshold) {
      --expanded;
      break;
    }
    if ((expanded & 0xFFF) == 0) {
      // Warm phase runs on the calling thread with the pool idle — the
      // same quiescent contract as the sequential explorer's poll.
      util::ckpt::CheckpointService::global().poll(4096);
      metrics.frontier.set(static_cast<std::int64_t>(arena_.size() - head));
      if (arena_.spill_needed(arena_.size())) {
        const std::size_t released = arena_.maybe_spill(head);
        if (released != 0) {
          obs::flight::record(
              obs::flight::Ev::kSpill, static_cast<std::int64_t>(released),
              static_cast<std::int64_t>(arena_.spilled_bytes()));
        }
      }
      update_ledger();
      hb.beat(
          [&] {
            return "configs=" + std::to_string(res.visited) +
                   " frontier=" + std::to_string(arena_.size() - head);
          },
          [&](obs::StatusSnapshot& s) {
            s.level = static_cast<std::int64_t>(level_idx);
            s.frontier = static_cast<std::int64_t>(arena_.size() - head);
            s.visited = static_cast<std::int64_t>(res.visited);
            s.cap = static_cast<std::int64_t>(opts_.max_configs);
          });
    }
    const ConfigId cur = head++;
    std::memcpy(cur_buf.data(), arena_.words(cur), W * sizeof(Value));
    bool keep_going = true;
    p.for_each([&](int q) {
      if (!keep_going) return;
      const PendingOp op =
          proto_.poised(q, cur_buf[static_cast<std::size_t>(q)]);
      if (op.is_decide()) return;
      std::memcpy(succ_buf.data(), cur_buf.data(), W * sizeof(Value));
      apply_op(proto_, op, q, succ_buf.data(), succ_buf.data() + n);
      const std::uint64_t h = arena_.hash_words(succ_buf.data());
      Shard& sh = shard_of(h);
      sh.reserve_for(1, shard_bytes_);
      std::size_t i = h & sh.mask;
      while (true) {
        Shard::Slot& slot = sh.slots[i];
        if (slot.ref == kEmptyRef) {
          // Strict cap (unlike Explorer's per-expansion check, which can
          // overshoot by a few children): the parallel phase drops at
          // exactly max_configs, so the warm phase must too for a uniform
          // visited <= cap guarantee.
          if (arena_.size() >= opts_.max_configs) {
            res.truncated = true;
            keep_going = false;
            return;
          }
          const ConfigId id = arena_.append_words(succ_buf.data());
          parent_.ensure(id);
          parent_.set(id, {cur, q});
          slot.hash = h;
          slot.ref = id;
          ++sh.used;
          ++res.visited;
          metrics.visited.add();
          if (!fn(vctx, arena_.view(id))) {
            res.aborted = true;
            res.abort_config = arena_.materialize(id);
            keep_going = false;
          }
          return;
        }
        if (slot.hash == h &&
            arena_.words_equal(arena_.words(slot.ref), succ_buf.data())) {
          metrics.dedup_hits.add();
          ++level_dedup;
          ++dedup_total;
          return;
        }
        i = (i + 1) & sh.mask;
      }
    });
    if (!keep_going) {
      warm_stopped = true;
      break;
    }
  }
  run_stats_.warm_visited = arena_.size();
  next_id_.store(arena_.size(), std::memory_order_relaxed);

  if (!warm_stopped && head < arena_.size()) {
    // Hand the unexpanded tail to the pool: chunked round-robin across
    // the worker deques, then steal-balance from there.
    run_stats_.went_parallel = true;
    const ConfigId tail = static_cast<ConfigId>(arena_.size());
    pending_.store(static_cast<std::int64_t>(tail - head));
    std::size_t d = 0;
    for (ConfigId b = head; b < tail; b += opts_.chunk_configs) {
      const ConfigId e = std::min<ConfigId>(b + opts_.chunk_configs, tail);
      deques_[d++ % deques_.size()].push({b, e});
    }
    {
      std::lock_guard<std::mutex> lk(spill_.mu);
      spill_.active = T;
      spill_.parked = 0;
      spill_.requested.store(false, std::memory_order_relaxed);
    }
    {
      obs::Span span("par.steal");
      span.set_value(static_cast<std::int64_t>(tail - head));
      pool_.run([&](int t) { worker_main(t, p, fn, vctx, hb); });
    }
    visited_count_ = committed();
    arena_.set_size(visited_count_);
    res.visited = visited_count_;
    res.truncated = truncated_.load(std::memory_order_relaxed);
    res.aborted = aborted_.load(std::memory_order_relaxed);
    res.budget_exhausted = budget_exhausted_.load(std::memory_order_relaxed);
    if (res.budget_exhausted) res.truncated = true;
    const ConfigId aid = abort_id_.load(std::memory_order_relaxed);
    if (res.aborted && aid != kNoConfig) {
      res.abort_config = arena_.materialize(aid);
    }
  } else {
    visited_count_ = arena_.size();
  }

  // Aggregate work-stealing forensics.
  StealMetrics& sm = steal_metrics();
  for (const WorkerCtx& w : workers_) {
    run_stats_.steals += w.steals.load(std::memory_order_relaxed);
    run_stats_.steal_fails += w.steal_fails.load(std::memory_order_relaxed);
    run_stats_.idle_spins += w.idle_spins.load(std::memory_order_relaxed);
    run_stats_.chunks += w.chunks.load(std::memory_order_relaxed);
    dedup_total += w.dedup_run;
  }
  sm.steals.add(run_stats_.steals);
  sm.steal_fails.add(run_stats_.steal_fails);
  sm.idle_spins.add(run_stats_.idle_spins);
  sm.chunks.add(run_stats_.chunks);

  update_ledger();
  if (stats.active()) {
    // Close the warm phase's level in progress (complete if a small run
    // drained sequentially, partial on truncation/abort/handoff); the
    // parallel phase has no levels — its story is the explore.ws record.
    stats.commit_level(stats.level_record(
        arena_, level_end - level_start,
        static_cast<ConfigId>(run_stats_.warm_visited) - level_end,
        level_dedup));
    if (run_stats_.went_parallel) {
      obs::stats_sink().write(
          obs::JsonObj()
              .str("type", "explore.ws")
              .str("who", "explore-par")
              .num("visited", static_cast<std::int64_t>(res.visited))
              .num("warm_visited",
                   static_cast<std::int64_t>(run_stats_.warm_visited))
              .num("threads", static_cast<std::int64_t>(T))
              .num("chunks", static_cast<std::int64_t>(run_stats_.chunks))
              .num("steals", static_cast<std::int64_t>(run_stats_.steals))
              .num("steal_fails",
                   static_cast<std::int64_t>(run_stats_.steal_fails))
              .num("idle_spins",
                   static_cast<std::int64_t>(run_stats_.idle_spins))
              .num("spill_pauses",
                   static_cast<std::int64_t>(run_stats_.spill_pauses))
              .num("spilled_bytes",
                   static_cast<std::int64_t>(arena_.spilled_bytes()))
              .num("mapped_bytes",
                   static_cast<std::int64_t>(arena_.mapped_bytes()))
              .render());
    }
    stats.done(arena_, res, dedup_total);
  }
  return res;
}

std::optional<Schedule> ParallelExplorer::witness(const Config& target) const {
  std::vector<Value> packed(arena_.words_per_config());
  arena_.pack(target, packed.data());
  const std::uint64_t h = arena_.hash_words(packed.data());
  const Shard& sh = shards_[(h >> 58) & (kShards - 1)];
  if (sh.slots.empty()) return std::nullopt;
  std::size_t i = h & sh.mask;
  while (true) {
    const Shard::Slot& slot = sh.slots[i];
    if (slot.ref == kEmptyRef) return std::nullopt;
    if (slot.hash == h && slot.ref < visited_count_ &&
        arena_.words_equal(arena_.words(slot.ref), packed.data())) {
      return witness_by_id(slot.ref);
    }
    i = (i + 1) & sh.mask;
  }
}

std::optional<Schedule> ParallelExplorer::witness_by_id(ConfigId id) const {
  if (id >= visited_count_) return std::nullopt;
  std::vector<ProcId> rev;
  ConfigId idx = id;
  while (idx != kNoConfig) {
    const auto [par, via] = parent_.get(idx);
    if (par != kNoConfig) rev.push_back(via);
    idx = par;
  }
  std::reverse(rev.begin(), rev.end());
  return Schedule(std::move(rev));
}

}  // namespace tsb::sim
