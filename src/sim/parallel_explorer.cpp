#include "sim/parallel_explorer.hpp"

#include <algorithm>
#include <thread>

namespace tsb::sim {

namespace {
int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}
}  // namespace

ParallelExplorer::ParallelExplorer(const Protocol& proto, Options opts)
    : proto_(proto),
      opts_(opts),
      arena_(proto.num_processes(), proto.num_registers()),
      workers_(static_cast<std::size_t>(resolve_threads(opts.threads))),
      pool_(resolve_threads(opts.threads)) {
  // Ids must stay clear of the pending tag bit.
  opts_.max_configs = std::min<std::size_t>(opts_.max_configs, kPendingBit - 2);
}

std::size_t ParallelExplorer::tracked_bytes() const {
  std::size_t bytes =
      arena_.memory_bytes() +
      parent_.capacity() * sizeof(std::pair<ConfigId, ProcId>);
  for (const Worker& w : workers_) {
    bytes += w.cands.capacity() * sizeof(Candidate) +
             w.words.capacity() * sizeof(Value);
    for (const auto& idx : w.by_shard) {
      bytes += idx.capacity() * sizeof(std::uint32_t);
    }
  }
  for (const Shard& sh : shards_) {
    bytes += sh.slots.capacity() * sizeof(Shard::Slot) +
             sh.pending.capacity() * sizeof(const Value*);
  }
  return bytes;
}

void ParallelExplorer::update_ledger() const {
  obs::MemLedger& ledger = obs::MemLedger::global();
  ledger.set(obs::MemAccount::kArenaWords, arena_.words_bytes());
  ledger.set(obs::MemAccount::kArenaTable, arena_.table_bytes());
  std::size_t frontier =
      parent_.capacity() * sizeof(std::pair<ConfigId, ProcId>);
  for (const Worker& w : workers_) {
    frontier += w.cands.capacity() * sizeof(Candidate) +
                w.words.capacity() * sizeof(Value);
    for (const auto& idx : w.by_shard) {
      frontier += idx.capacity() * sizeof(std::uint32_t);
    }
  }
  ledger.set(obs::MemAccount::kExploreFrontier, frontier);
  std::size_t shard_bytes = 0;
  for (const Shard& sh : shards_) {
    shard_bytes += sh.slots.capacity() * sizeof(Shard::Slot) +
                   sh.pending.capacity() * sizeof(const Value*);
  }
  ledger.set(obs::MemAccount::kExploreShards, shard_bytes);
}

void ParallelExplorer::Shard::reset() {
  slots.assign(1u << 10, Slot{});
  mask = slots.size() - 1;
  used = 0;
  pending.clear();
}

void ParallelExplorer::Shard::reserve_for(std::size_t incoming) {
  // Keep the load factor below 0.7 for the worst case where every incoming
  // candidate is new; grown before any insertion of the level, so slot
  // indices handed to candidates stay valid until the level commits.
  std::size_t needed = slots.size();
  while ((used + incoming) * 10 >= needed * 7) needed *= 2;
  if (needed == slots.size()) return;
  std::vector<Slot> bigger(needed);
  const std::size_t bigger_mask = needed - 1;
  for (const Slot& s : slots) {
    if (s.ref == kEmptyRef) continue;
    std::size_t i = s.hash & bigger_mask;
    while (bigger[i].ref != kEmptyRef) i = (i + 1) & bigger_mask;
    bigger[i] = s;
  }
  slots = std::move(bigger);
  mask = bigger_mask;
}

void ParallelExplorer::Shard::insert_committed(std::uint64_t h, ConfigId id) {
  reserve_for(1);
  std::size_t i = h & mask;
  while (slots[i].ref != kEmptyRef) i = (i + 1) & mask;
  slots[i] = Slot{h, id};
  ++used;
}

void ParallelExplorer::expand_slice(Worker& w, ProcSet p) {
  w.cands.clear();
  w.words.clear();
  w.commit_cursor = 0;
  for (auto& list : w.by_shard) list.clear();

  const std::size_t W = arena_.words_per_config();
  const int n = arena_.num_states();
  for (ConfigId cur = w.begin; cur < w.end; ++cur) {
    // No arena insertions happen during phase A, so this pointer is stable.
    const Value* src = arena_.words(cur);
    p.for_each([&](int q) {
      const PendingOp op =
          proto_.poised(q, src[static_cast<std::size_t>(q)]);
      if (op.is_decide()) return;  // terminated: no edge
      const std::size_t k = w.cands.size();
      w.words.resize((k + 1) * W);
      Value* dst = w.words.data() + k * W;
      std::memcpy(dst, src, W * sizeof(Value));
      apply_op(proto_, op, q, dst, dst + n);
      const std::uint64_t h = arena_.hash_words(dst);
      const auto shard =
          static_cast<std::uint16_t>((h >> 60) & (kShards - 1));
      w.cands.push_back(Candidate{h, cur, q, 0, shard, 0});
      w.by_shard[shard].push_back(static_cast<std::uint32_t>(k));
    });
  }
}

void ParallelExplorer::dedup_shard(int s) {
  Shard& sh = shards_[static_cast<std::size_t>(s)];
  std::size_t incoming = 0;
  for (const Worker& w : workers_) incoming += w.by_shard[s].size();
  sh.reserve_for(incoming);
  sh.pending.clear();

  const std::size_t W = arena_.words_per_config();
  // Workers in index order, candidates in buffer order: exactly the global
  // discovery order, so the earliest occurrence of a configuration wins.
  for (Worker& w : workers_) {
    for (std::uint32_t idx : w.by_shard[s]) {
      Candidate& c = w.cands[idx];
      const Value* cw = w.words.data() + idx * W;
      std::size_t i = c.hash & sh.mask;
      while (true) {
        Shard::Slot& slot = sh.slots[i];
        if (slot.ref == kEmptyRef) {
          slot.hash = c.hash;
          slot.ref =
              kPendingBit | static_cast<std::uint32_t>(sh.pending.size());
          sh.pending.push_back(cw);
          ++sh.used;
          c.winner = 1;
          c.slot = static_cast<std::uint32_t>(i);
          break;
        }
        if (slot.hash == c.hash) {
          const Value* other = (slot.ref & kPendingBit) != 0
                                   ? sh.pending[slot.ref & ~kPendingBit]
                                   : arena_.words(slot.ref);
          if (arena_.words_equal(other, cw)) break;  // duplicate
        }
        i = (i + 1) & sh.mask;
      }
    }
  }
}

void ParallelExplorer::commit_level_stats(
    detail::LevelStatsTracker& stats, std::uint64_t frontier,
    std::uint64_t discovered, std::uint64_t dedup,
    std::chrono::steady_clock::time_point t_expand,
    std::chrono::steady_clock::time_point t_dedup,
    std::chrono::steady_clock::time_point t_commit) {
  const auto t_end = std::chrono::steady_clock::now();
  const auto ms = [](std::chrono::steady_clock::time_point a,
                     std::chrono::steady_clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };

  std::uint64_t candidates = 0;
  for (const Worker& w : workers_) candidates += w.cands.size();

  std::vector<std::uint64_t> shard_used;
  shard_used.reserve(kShards);
  std::uint64_t used_max = 0;
  std::uint64_t used_sum = 0;
  std::uint64_t slots_sum = 0;
  for (const Shard& sh : shards_) {
    const auto used = static_cast<std::uint64_t>(sh.used);
    shard_used.push_back(used);
    used_max = std::max(used_max, used);
    used_sum += used;
    slots_sum += static_cast<std::uint64_t>(sh.slots.size());
  }
  // max/mean occupancy across shards: 1.0 is a perfect hash spread; the
  // stats consumer flags levels where one shard serializes phase B.
  const double imbalance =
      used_sum ? static_cast<double>(used_max) * kShards /
                     static_cast<double>(used_sum)
               : 0.0;

  obs::JsonObj rec = stats.level_record(arena_, frontier, discovered, dedup);
  rec.num("threads", static_cast<std::int64_t>(pool_.size()))
      .num("candidates", static_cast<std::int64_t>(candidates))
      .numf("expand_ms", ms(t_expand, t_dedup))
      .numf("dedup_ms", ms(t_dedup, t_commit))
      .numf("commit_ms", ms(t_commit, t_end))
      .num("shard_slots", static_cast<std::int64_t>(slots_sum))
      .numf("shard_load", slots_sum ? static_cast<double>(used_sum) /
                                          static_cast<double>(slots_sum)
                                    : 0.0)
      .numf("shard_imbalance", imbalance)
      .raw("shard_used", obs::json_u64_array(shard_used));
  stats.commit_level(std::move(rec));
}

std::optional<Schedule> ParallelExplorer::witness(const Config& target) const {
  std::vector<Value> packed(arena_.words_per_config());
  arena_.pack(target, packed.data());
  const std::uint64_t h = arena_.hash_words(packed.data());
  const Shard& sh = shard_of(h);
  std::size_t i = h & sh.mask;
  while (true) {
    const Shard::Slot& slot = sh.slots[i];
    if (slot.ref == kEmptyRef) return std::nullopt;
    // Uncommitted leftovers from an aborted level are not visited configs;
    // skip them without dereferencing (their words are gone).
    if (slot.hash == h && (slot.ref & kPendingBit) == 0 &&
        arena_.words_equal(arena_.words(slot.ref), packed.data())) {
      return witness_by_id(slot.ref);
    }
    i = (i + 1) & sh.mask;
  }
}

std::optional<Schedule> ParallelExplorer::witness_by_id(ConfigId id) const {
  if (id >= parent_.size()) return std::nullopt;
  std::vector<ProcId> rev;
  ConfigId idx = id;
  while (idx != kNoConfig) {
    const auto [par, via] = parent_[idx];
    if (par != kNoConfig) rev.push_back(via);
    idx = par;
  }
  std::reverse(rev.begin(), rev.end());
  return Schedule(std::move(rev));
}

}  // namespace tsb::sim
