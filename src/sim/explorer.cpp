#include "sim/explorer.hpp"

#include <algorithm>

namespace tsb::sim {

namespace detail {
ExploreMetrics& explore_metrics() {
  static ExploreMetrics m{
      obs::Registry::global().counter("sim.explore.visited"),
      obs::Registry::global().counter("sim.explore.dedup_hits"),
      obs::Registry::global().gauge("sim.explore.frontier"),
  };
  return m;
}

namespace {
double elapsed_ms(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}
}  // namespace

LevelStatsTracker::LevelStatsTracker(const char* who, std::size_t min_visited)
    : who_(who), active_(obs::stats_enabled()), min_visited_(min_visited) {
  if (!active_) return;
  t_start_ = std::chrono::steady_clock::now();
  t_level_ = t_start_;
}

obs::JsonObj LevelStatsTracker::level_record(const ConfigArena& arena,
                                             std::uint64_t frontier,
                                             std::uint64_t discovered,
                                             std::uint64_t dedup) {
  const auto now = std::chrono::steady_clock::now();
  const double ms = elapsed_ms(t_level_, now);
  t_level_ = now;
  const std::uint64_t edges = discovered + dedup;
  const std::size_t slots = arena.table_slots();
  const std::int64_t bytes = static_cast<std::int64_t>(arena.memory_bytes());
  const std::int64_t rss = obs::peak_rss_kb();
  obs::Registry& reg = obs::Registry::global();
  reg.gauge("sim.explore.arena_bytes").set(bytes);
  reg.gauge("process.peak_rss_kb").set(rss);
  obs::JsonObj rec;
  rec.str("type", "explore.level")
      .str("who", who_)
      .num("level", static_cast<std::int64_t>(levels_++))
      .num("frontier", static_cast<std::int64_t>(frontier))
      .num("discovered", static_cast<std::int64_t>(discovered))
      .num("dedup_hits", static_cast<std::int64_t>(dedup))
      .numf("dedup_rate", edges ? static_cast<double>(dedup) /
                                      static_cast<double>(edges)
                                : 0.0)
      .num("total_configs", static_cast<std::int64_t>(arena.size()))
      .numf("ms", ms)
      .numf("configs_per_sec",
            ms > 0.0 ? static_cast<double>(discovered) * 1000.0 / ms : 0.0)
      .numf("table_load", slots ? static_cast<double>(arena.size()) /
                                      static_cast<double>(slots)
                                : 0.0)
      .num("table_slots", static_cast<std::int64_t>(slots))
      .num("arena_bytes", bytes)
      .num("peak_rss_kb", rss);
  return rec;
}

void LevelStatsTracker::commit_level(obs::JsonObj&& record) {
  buffered_.push_back(std::move(record).render());
}

void LevelStatsTracker::done(const ConfigArena& arena,
                             const ExploreResult& res,
                             std::uint64_t dedup_total) {
  obs::JsonlSink& sink = obs::stats_sink();
  if (res.visited >= min_visited_) {
    for (const std::string& line : buffered_) sink.write(line);
  }
  const double ms = elapsed_ms(t_start_, std::chrono::steady_clock::now());
  sink.write(obs::JsonObj()
                 .str("type", "explore.done")
                 .str("who", who_)
                 .num("visited", static_cast<std::int64_t>(res.visited))
                 .num("levels", static_cast<std::int64_t>(levels_))
                 .num("dedup_hits", static_cast<std::int64_t>(dedup_total))
                 .boolean("truncated", res.truncated)
                 .boolean("aborted", res.aborted)
                 .numf("ms", ms)
                 .numf("configs_per_sec",
                       ms > 0.0 ? static_cast<double>(res.visited) * 1000.0 / ms
                                : 0.0)
                 .num("arena_bytes",
                      static_cast<std::int64_t>(arena.memory_bytes()))
                 .render());
}
}  // namespace detail

std::optional<Schedule> Explorer::witness(const Config& target) const {
  std::vector<Value> packed(arena_.words_per_config());
  arena_.pack(target, packed.data());
  const ConfigId id = arena_.find(packed.data());
  if (id == kNoConfig) return std::nullopt;
  return witness_by_id(id);
}

std::optional<Schedule> Explorer::witness_by_id(ConfigId id) const {
  if (id >= parent_.size()) return std::nullopt;
  std::vector<ProcId> rev;
  ConfigId idx = id;
  while (idx != kNoConfig) {
    const auto [par, via] = parent_[idx];
    if (par != kNoConfig) rev.push_back(via);
    idx = par;
  }
  std::reverse(rev.begin(), rev.end());
  return Schedule(std::move(rev));
}

}  // namespace tsb::sim
