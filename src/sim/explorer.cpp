#include "sim/explorer.hpp"

#include <algorithm>

namespace tsb::sim {

namespace detail {
ExploreMetrics& explore_metrics() {
  static ExploreMetrics m{
      obs::Registry::global().counter("sim.explore.visited"),
      obs::Registry::global().counter("sim.explore.dedup_hits"),
      obs::Registry::global().gauge("sim.explore.frontier"),
  };
  return m;
}
}  // namespace detail

std::optional<Schedule> Explorer::witness(const Config& target) const {
  std::vector<Value> packed(arena_.words_per_config());
  arena_.pack(target, packed.data());
  const ConfigId id = arena_.find(packed.data());
  if (id == kNoConfig) return std::nullopt;
  return witness_by_id(id);
}

std::optional<Schedule> Explorer::witness_by_id(ConfigId id) const {
  if (id >= parent_.size()) return std::nullopt;
  std::vector<ProcId> rev;
  ConfigId idx = id;
  while (idx != kNoConfig) {
    const auto [par, via] = parent_[idx];
    if (par != kNoConfig) rev.push_back(via);
    idx = par;
  }
  std::reverse(rev.begin(), rev.end());
  return Schedule(std::move(rev));
}

}  // namespace tsb::sim
