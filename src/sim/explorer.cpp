#include "sim/explorer.hpp"

#include <algorithm>
#include <deque>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"

namespace tsb::sim {

namespace {
struct ExploreMetrics {
  obs::Counter& visited =
      obs::Registry::global().counter("sim.explore.visited");
  obs::Counter& dedup_hits =
      obs::Registry::global().counter("sim.explore.dedup_hits");
  obs::Gauge& frontier =
      obs::Registry::global().gauge("sim.explore.frontier");
};
ExploreMetrics& explore_metrics() {
  static ExploreMetrics m;
  return m;
}
}  // namespace

Explorer::Result Explorer::explore(
    const Config& root, ProcSet p,
    const std::function<bool(const Config&)>& visit) {
  index_.clear();
  parent_.clear();

  Result res;
  std::deque<Config> frontier;
  ExploreMetrics& metrics = explore_metrics();
  obs::Heartbeat hb("explore");

  auto discover = [&](const Config& c, int parent, ProcId via) -> bool {
    auto [it, inserted] = index_.try_emplace(c, static_cast<int>(parent_.size()));
    if (!inserted) {
      metrics.dedup_hits.add();
      return true;  // already seen
    }
    parent_.emplace_back(parent, via);
    ++res.visited;
    metrics.visited.add();
    if (!visit(c)) {
      res.aborted = true;
      res.abort_config = c;
      return false;
    }
    frontier.push_back(c);
    return true;
  };

  if (!discover(root, -1, -1)) return res;

  std::size_t expanded = 0;
  while (!frontier.empty()) {
    if (index_.size() >= opts_.max_configs) {
      res.truncated = true;
      break;
    }
    if ((++expanded & 0xFFF) == 0) {
      metrics.frontier.set(static_cast<std::int64_t>(frontier.size()));
      hb.beat([&] {
        return "configs=" + std::to_string(res.visited) +
               " frontier=" + std::to_string(frontier.size());
      });
    }
    Config cur = std::move(frontier.front());
    frontier.pop_front();
    const int cur_idx = index_.at(cur);

    bool keep_going = true;
    p.for_each([&](int q) {
      if (!keep_going) return;
      if (decision_of(proto_, cur, q)) return;  // terminated: no edge
      Config next = step(proto_, cur, q);
      keep_going = discover(next, cur_idx, q);
    });
    if (!keep_going) break;
  }
  return res;
}

std::optional<Schedule> Explorer::witness(const Config& target) const {
  auto it = index_.find(target);
  if (it == index_.end()) return std::nullopt;
  std::vector<ProcId> rev;
  int idx = it->second;
  while (idx >= 0) {
    auto [par, via] = parent_[static_cast<std::size_t>(idx)];
    if (par >= 0) rev.push_back(via);
    idx = par;
  }
  std::reverse(rev.begin(), rev.end());
  return Schedule(std::move(rev));
}

}  // namespace tsb::sim
