#include "sim/model_checker.hpp"

#include <set>

#include "obs/jsonl_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"
#include "sim/parallel_explorer.hpp"

namespace tsb::sim {

namespace {
struct CheckMetrics {
  obs::Counter& initial =
      obs::Registry::global().counter("mc.initial_configs");
  obs::Counter& configs = obs::Registry::global().counter("mc.configs");
  obs::Counter& solo_runs = obs::Registry::global().counter("mc.solo_runs");
  obs::Gauge& max_solo = obs::Registry::global().gauge("mc.max_solo_steps");
};
CheckMetrics& check_metrics() {
  static CheckMetrics m;
  return m;
}
}  // namespace

std::vector<std::vector<Value>> all_binary_inputs(int n) {
  std::vector<std::vector<Value>> out;
  const std::size_t count = 1ull << n;
  out.reserve(count);
  for (std::size_t mask = 0; mask < count; ++mask) {
    std::vector<Value> inputs(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      inputs[static_cast<std::size_t>(p)] = (mask >> p) & 1u;
    }
    out.push_back(std::move(inputs));
  }
  return out;
}

std::string ModelChecker::Report::summary() const {
  std::string s = ok ? "OK" : ("VIOLATION: " + violation);
  s += " (initial configs: " + std::to_string(initial_configs) +
       ", reachable configs: " + std::to_string(total_configs) +
       ", solo runs: " + std::to_string(solo_runs_checked) +
       ", max solo steps: " + std::to_string(max_solo_steps_seen) + ")";
  if (solo_failures > 0) {
    s += " [" + std::to_string(solo_failures) +
         " configs without solo termination]";
  }
  if (truncated) s += " [TRUNCATED: bound exceeded, result incomplete]";
  return s;
}

ModelChecker::Report ModelChecker::check(
    const std::vector<std::vector<Value>>& input_vectors) {
  if (opts_.threads > 1) {
    ParallelExplorer explorer(
        proto_, {.max_configs = opts_.max_configs, .threads = opts_.threads});
    return check_impl(explorer, input_vectors);
  }
  Explorer explorer(proto_, {.max_configs = opts_.max_configs});
  return check_impl(explorer, input_vectors);
}

template <typename ExplorerT>
ModelChecker::Report ModelChecker::check_impl(
    ExplorerT& explorer, const std::vector<std::vector<Value>>& input_vectors) {
  Report rep;
  const int n = proto_.num_processes();
  const ProcSet everyone = ProcSet::first_n(n);
  CheckMetrics& metrics = check_metrics();
  obs::Heartbeat hb("model-check");

  for (const auto& inputs : input_vectors) {
    obs::Span span("mc.input_vector");
    ++rep.initial_configs;
    metrics.initial.add();
    hb.beat([&] {
      return "input " + std::to_string(rep.initial_configs) + "/" +
             std::to_string(input_vectors.size()) +
             " configs=" + std::to_string(rep.total_configs) +
             " solo_runs=" + std::to_string(rep.solo_runs_checked);
    });
    const Config init = initial_config(proto_, inputs);
    const std::set<Value> legal(inputs.begin(), inputs.end());

    auto fail = [&](const ConfigView& c, std::string what) {
      rep.ok = false;
      rep.violation = std::move(what);
      rep.bad_config = c.materialize();
      rep.bad_inputs = inputs;
      return false;  // abort exploration
    };

    auto result = explorer.explore(init, everyone, [&](const ConfigView& c) {
      // Agreement (k-set) + validity over decided values in c.
      std::set<Value> decided;
      for (ProcId p = 0; p < n; ++p) {
        if (auto d = decision_of(proto_, c, p)) {
          decided.insert(*d);
          if (legal.count(*d) == 0) {
            return fail(c, "validity: p" + std::to_string(p) + " decided " +
                               std::to_string(*d) +
                               " which is no process's input");
          }
        }
      }
      if (static_cast<int>(decided.size()) > opts_.k) {
        return fail(c, std::to_string(decided.size()) +
                           " distinct values decided; k = " +
                           std::to_string(opts_.k));
      }

      if (opts_.check_solo_termination && opts_.solo_from_every_config) {
        for (ProcId p = 0; p < n; ++p) {
          if (decision_of(proto_, c, p)) continue;
          // run_solo materializes: it steps through Config objects. The
          // copy is per solo run, not per probe, so it is off the BFS
          // hot path.
          SoloRun solo = run_solo(proto_, c.materialize(), p,
                                  opts_.solo_step_cap);
          ++rep.solo_runs_checked;
          metrics.solo_runs.add();
          metrics.max_solo.set(static_cast<std::int64_t>(solo.schedule.size()));
          rep.max_solo_steps_seen =
              std::max(rep.max_solo_steps_seen, solo.schedule.size());
          if (!solo.decided) {
            if (opts_.fail_on_solo_violation) {
              return fail(c, "solo termination: p" + std::to_string(p) +
                                 " ran alone for " +
                                 std::to_string(opts_.solo_step_cap) +
                                 " steps without deciding");
            }
            ++rep.solo_failures;
            if (!rep.sample_solo_failure) rep.sample_solo_failure =
                c.materialize();
            break;  // count each configuration at most once
          }
        }
      }
      return true;
    });

    rep.total_configs += result.visited;
    metrics.configs.add(result.visited);
    span.set_value(static_cast<std::int64_t>(result.visited));
    rep.truncated = rep.truncated || result.truncated;

    if (obs::stats_enabled()) {
      std::vector<int> in;
      in.reserve(inputs.size());
      for (Value v : inputs) in.push_back(static_cast<int>(v));
      obs::stats_sink().write(
          obs::JsonObj()
              .str("type", "mc.input")
              .num("index", static_cast<std::int64_t>(rep.initial_configs - 1))
              .raw("inputs", obs::json_int_array(in))
              .num("visited", static_cast<std::int64_t>(result.visited))
              .boolean("truncated", result.truncated)
              .num("solo_runs_total",
                   static_cast<std::int64_t>(rep.solo_runs_checked))
              .num("solo_failures_total",
                   static_cast<std::int64_t>(rep.solo_failures))
              .boolean("ok", rep.ok)
              .render());
    }

    if (opts_.check_solo_termination && !opts_.solo_from_every_config) {
      for (ProcId p = 0; p < n; ++p) {
        SoloRun solo = run_solo(proto_, init, p, opts_.solo_step_cap);
        ++rep.solo_runs_checked;
        metrics.solo_runs.add();
        rep.max_solo_steps_seen =
            std::max(rep.max_solo_steps_seen, solo.schedule.size());
        if (!solo.decided) {
          rep.ok = false;
          rep.violation = "solo termination from initial configuration";
          rep.bad_config = init;
          rep.bad_inputs = inputs;
        }
      }
    }

    if (!rep.ok) {
      if (rep.bad_config) {
        rep.schedule_to_bad = explorer.witness(*rep.bad_config);
      }
      return rep;
    }
  }
  return rep;
}

ModelChecker::Report ModelChecker::check_all_binary_inputs() {
  return check(all_binary_inputs(proto_.num_processes()));
}

}  // namespace tsb::sim
