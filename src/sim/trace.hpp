#pragma once

#include <set>
#include <string>
#include <vector>

#include "sim/op.hpp"

namespace tsb::sim {

/// Sequence of executed steps; the "execution" corresponding to a schedule
/// applied at a configuration. Certificates replay traces and check them
/// against raw engine semantics.
struct Trace {
  std::vector<StepRecord> records;

  void append(const Trace& other) {
    records.insert(records.end(), other.records.begin(), other.records.end());
  }

  /// Registers written at least once in the trace (swaps write too).
  std::set<RegId> registers_written() const {
    std::set<RegId> out;
    for (const auto& r : records) {
      if (r.op.is_write() || r.op.is_swap()) out.insert(r.op.reg);
    }
    return out;
  }

  /// Registers accessed (read, written, or swapped).
  std::set<RegId> registers_accessed() const {
    std::set<RegId> out;
    for (const auto& r : records) {
      if (!r.op.is_decide()) out.insert(r.op.reg);
    }
    return out;
  }

  std::string to_string() const {
    std::string out;
    for (const auto& r : records) {
      out += r.to_string();
      out += "\n";
    }
    return out;
  }
};

}  // namespace tsb::sim
