#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/protocol.hpp"
#include "util/proc_set.hpp"

namespace tsb::sim {

using util::ProcSet;

/// A configuration of a protocol: the local state of every process and the
/// contents of every register. Pure value type: copyable, hashable,
/// comparable — the valency analyzer and model checker key everything on it.
struct Config {
  std::vector<State> states;  ///< indexed by ProcId
  std::vector<Value> regs;    ///< indexed by RegId

  bool operator==(const Config&) const = default;

  std::uint64_t hash() const;

  std::string to_string() const;
};

struct ConfigHash {
  std::uint64_t operator()(const Config& c) const { return c.hash(); }
};

/// The initial configuration for the given input vector
/// (inputs.size() == num_processes()).
Config initial_config(const Protocol& proto, const std::vector<Value>& inputs);

/// Configurations C and D are indistinguishable to a set of processes P if
/// every process in P has the same local state in both and every register
/// has the same contents in both (paper, Section 2). Any P-only execution
/// applicable at C is then applicable at D with identical behaviour.
bool indistinguishable(const Config& c, const Config& d, ProcSet p);

/// Whether process p has decided in configuration c, and if so what.
std::optional<Value> decision_of(const Protocol& proto, const Config& c,
                                 ProcId p);

/// The operation process p is poised to perform in c.
PendingOp poised_in(const Protocol& proto, const Config& c, ProcId p);

}  // namespace tsb::sim
