#pragma once

#include <cstdint>

#include "util/packing.hpp"

namespace tsb::sim {

/// Process identifier: index in [0, n).
using ProcId = int;

/// Register identifier: index in [0, m).
using RegId = int;

/// Register contents. The model allows unbounded registers; every protocol
/// in this repository packs its register words losslessly into int64 (see
/// util/packing.hpp), which keeps configurations cheap value types. The
/// lower bound is insensitive to this choice: Zhu's theorem holds "even if
/// the registers are of unbounded size", i.e. large values cannot help, and
/// none of our protocols needs more than a (round, value) pair.
using Value = std::int64_t;

/// Local process state, encoded in one word. Protocols with structured
/// state intern it (util::StateInterner) or pack it (util::packing).
using State = std::int64_t;

/// Initial contents of every register in every initial configuration
/// (the model fixes these to be input-independent).
inline constexpr Value kEmptyRegister = tsb::util::kNilValue;

}  // namespace tsb::sim
