#include "sim/canonical.hpp"

#include <cassert>

namespace tsb::sim {

ProcPerm canonicalize_states(Value* states, int n) {
  assert(n <= ProcPerm::kMaxProcs);
  // Stable insertion sort of (state, original index) pairs. n <= 8, and the
  // engine calls this once per expanded edge, so the quadratic worst case is
  // at most 28 compares — cheaper than std::stable_sort's dispatch.
  Value v[ProcPerm::kMaxProcs];
  std::uint8_t src[ProcPerm::kMaxProcs];  // src[slot] = original process
  for (int i = 0; i < n; ++i) {
    const Value x = states[i];
    int j = i;
    while (j > 0 && v[j - 1] > x) {
      v[j] = v[j - 1];
      src[j] = src[j - 1];
      --j;
    }
    v[j] = x;
    src[j] = static_cast<std::uint8_t>(i);
  }
  ProcPerm pi;
  for (int slot = 0; slot < n; ++slot) {
    states[slot] = v[slot];
    pi.set(src[slot], slot);
  }
  return pi;
}

ProcPerm refine_procset(const Value* sorted_states, int n, ProcSet p,
                        ProcSet* canonical) {
  assert(n <= ProcPerm::kMaxProcs);
  ProcPerm tau;
  std::uint64_t out = 0;
  int i = 0;
  while (i < n) {
    int j = i + 1;
    while (j < n && sorted_states[j] == sorted_states[i]) ++j;
    // Run [i, j) of equal states: members of p take slots i..i+k-1 in
    // relative order, non-members the rest. Relative order is preserved on
    // both sides so tau is deterministic.
    int next_member = i;
    int next_other = i;
    for (int q = i; q < j; ++q) {
      if (p.contains(q)) ++next_other;
    }
    const int members_end = next_other;
    for (int q = i; q < j; ++q) {
      if (p.contains(q)) {
        tau.set(q, next_member++);
      } else {
        tau.set(q, next_other++);
      }
    }
    if (members_end > i) out |= ((1ull << (members_end - i)) - 1ull) << i;
    i = j;
  }
  *canonical = ProcSet(out);
  return tau;
}

}  // namespace tsb::sim
