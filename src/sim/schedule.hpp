#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "sim/value.hpp"
#include "util/proc_set.hpp"

namespace tsb::sim {

/// A schedule: the sequence of process ids taking steps, i.e. an element of
/// Pi^* in the paper's notation. Together with a starting configuration it
/// determines an execution (protocols are deterministic).
class Schedule {
 public:
  Schedule() = default;
  Schedule(std::initializer_list<ProcId> steps) : steps_(steps) {}
  explicit Schedule(std::vector<ProcId> steps) : steps_(std::move(steps)) {}

  static Schedule solo(ProcId p, std::size_t count);

  const std::vector<ProcId>& steps() const { return steps_; }
  std::size_t size() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }
  ProcId operator[](std::size_t i) const { return steps_[i]; }

  void push(ProcId p) { steps_.push_back(p); }
  void append(const Schedule& other);

  /// Concatenation, written multiplicatively as in the paper (C-alpha-beta).
  friend Schedule operator+(Schedule a, const Schedule& b) {
    a.append(b);
    return a;
  }

  /// The first `k` steps.
  Schedule prefix(std::size_t k) const;

  /// Set of processes taking at least one step.
  util::ProcSet participants() const;

  /// True iff every step is by a process in P (a "P-only" schedule).
  bool only(util::ProcSet p) const;

  bool operator==(const Schedule&) const = default;

  std::string to_string() const;

 private:
  std::vector<ProcId> steps_;
};

}  // namespace tsb::sim
