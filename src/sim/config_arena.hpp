#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "sim/config.hpp"

namespace tsb::sim {

/// Dense identifier of a configuration interned in a ConfigArena. Ids are
/// assigned consecutively from 0 in insertion order, so the BFS explorers
/// use the id sequence itself as the frontier: level k is a contiguous id
/// range and no separate queue is needed.
using ConfigId = std::uint32_t;
inline constexpr ConfigId kNoConfig = 0xFFFFFFFFu;

/// Zero-copy read access to one interned configuration: `states` and `regs`
/// point directly into the arena. Valid until the arena's next insertion
/// (insertions may reallocate); visitors that need to retain a
/// configuration call materialize().
struct ConfigView {
  ConfigId id = kNoConfig;
  const Value* states = nullptr;
  const Value* regs = nullptr;
  int num_states = 0;
  int num_regs = 0;

  Config materialize() const {
    Config c;
    c.states.assign(states, states + num_states);
    c.regs.assign(regs, regs + num_regs);
    return c;
  }
};

/// decision_of over a view, without materializing a Config.
inline std::optional<Value> decision_of(const Protocol& proto,
                                        const ConfigView& c, ProcId p) {
  const PendingOp op = proto.poised(p, c.states[p]);
  if (op.is_decide()) return op.value;
  return std::nullopt;
}

/// Packed, interned configuration storage.
///
/// A configuration of an (n, m) protocol is exactly n state words followed
/// by m register words; the arena stores them back to back in one
/// contiguous allocation and deduplicates through an open-addressing hash
/// table of 8-byte slots (a 32-bit hash tag plus the id), so a probe
/// touches the word data only on a tag match and the table stays half the
/// size a full-hash layout would need — at tens of millions of interned
/// configurations the table is the hot-loop cache footprint. Growth
/// re-derives each slot's bucket by rehashing its words from the store.
/// Compared with `std::unordered_map<Config, ...>` (two heap vectors plus
/// a node per entry) this is far smaller and removes every
/// per-configuration allocation from the explorer's hot loop.
///
/// Usage: build the next configuration's words in scratch(), then
/// intern_scratch(). The id space is dense and insertion-ordered.
class ConfigArena {
 public:
  ConfigArena(int num_states, int num_regs);

  int num_states() const { return n_; }
  int num_regs() const { return m_; }
  std::size_t words_per_config() const { return words_; }
  std::size_t size() const { return count_; }

  /// Drop all configurations but keep the allocations for reuse.
  void clear();

  /// Staging buffer for the configuration about to be interned
  /// (words_per_config() words: states then regs).
  Value* scratch() { return scratch_.data(); }

  /// Pack a Config's words into dst (words_per_config() words).
  void pack(const Config& c, Value* dst) const;

  /// Hash of a packed word sequence; the same function the dedup table
  /// stores, exposed so sharded tables (parallel explorer) agree with it.
  std::uint64_t hash_words(const Value* w) const;

  struct Interned {
    ConfigId id;
    bool inserted;  ///< false: already present, id is the prior copy's
  };
  /// Intern the scratch buffer's configuration.
  Interned intern_scratch() { return intern_words(scratch_.data()); }

  /// Intern an externally staged word sequence (words_per_config() words).
  /// `w` must not alias the arena's own word store — insertions may
  /// reallocate it. The reachability engine's batched expansion stages
  /// successor words in per-slot buffers and interns them through this.
  Interned intern_words(const Value* w);

  /// intern_words with the hash precomputed (must be hash_words(w)). Pair
  /// with prefetch(): callers that stage several configurations before
  /// interning any of them can overlap the table's cache misses, which
  /// dominate interning once the table outgrows the cache.
  Interned intern_prehashed(const Value* w, std::uint64_t h);

  /// Hint the CPU to pull the hash's home slot into cache ahead of
  /// intern_prehashed / find on the same hash. Never faults.
  void prefetch(std::uint64_t h) const {
    __builtin_prefetch(table_.data() + (h >> shift_));
  }

  /// Lookup without insertion; kNoConfig if absent.
  ConfigId find(const Value* w) const;

  /// Append words as a new configuration WITHOUT consulting the dedup
  /// table. For callers that own deduplication themselves (the parallel
  /// explorer's sharded visited sets).
  ConfigId append_words(const Value* w);

  const Value* words(ConfigId id) const {
    return data_.data() + words_ * static_cast<std::size_t>(id);
  }
  ConfigView view(ConfigId id) const {
    const Value* w = words(id);
    return ConfigView{id, w, w + n_, n_, m_};
  }
  Config materialize(ConfigId id) const { return view(id).materialize(); }

  bool words_equal(const Value* a, const Value* b) const {
    return std::memcmp(a, b, words_ * sizeof(Value)) == 0;
  }

  /// Capacity of the dedup table (power of two; 0 before first insertion).
  /// Every interned configuration owns exactly one slot, so occupancy is
  /// size() / table_slots() — the load factor the stats records report.
  std::size_t table_slots() const { return table_.size(); }

  /// Heap bytes held by the arena (word store + dedup table + scratch).
  /// Capacities, not sizes: this is what the process actually pays.
  /// The words/table split feeds the memory ledger's arena.words and
  /// arena.table accounts.
  std::size_t words_bytes() const {
    return data_.capacity() * sizeof(Value) +
           scratch_.capacity() * sizeof(Value);
  }
  std::size_t table_bytes() const { return table_.capacity() * sizeof(Slot); }
  std::size_t memory_bytes() const { return words_bytes() + table_bytes(); }

 private:
  /// Buckets are the hash's top log2(table size) bits — a prefix of the
  /// stored tag — so growth re-derives every bucket from tags alone: one
  /// sequential read pass, no rehashing of word data. (Holds while the
  /// table has <= 2^32 slots; the 32-bit id space runs out first.)
  struct Slot {
    std::uint32_t tag = 0;  ///< top 32 hash bits; full equality is by words
    ConfigId id = kNoConfig;
  };

  void grow_table();

  int n_;
  int m_;
  std::size_t words_;
  std::size_t count_ = 0;
  std::vector<Value> data_;     ///< count_ * words_ packed words
  std::vector<Value> scratch_;  ///< words_ staging words
  std::vector<Slot> table_;     ///< open addressing, power-of-two size
  std::size_t mask_ = 0;        ///< table size - 1 (probe wrap)
  int shift_ = 0;               ///< 64 - log2(table size) (bucket index)
};

}  // namespace tsb::sim
