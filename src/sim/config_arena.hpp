#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "util/spill_store.hpp"

namespace tsb::sim {

/// Dense identifier of a configuration interned in a ConfigArena. Ids are
/// assigned consecutively from 0 in insertion order, so the BFS explorers
/// use the id sequence itself as the frontier: level k is a contiguous id
/// range and no separate queue is needed.
using ConfigId = std::uint32_t;
inline constexpr ConfigId kNoConfig = 0xFFFFFFFFu;

/// Zero-copy read access to one interned configuration: `states` and `regs`
/// point directly into the arena's resident segment (or, for a spilled
/// segment, into a thread-local decode buffer that the next words()/view()
/// call on the same thread overwrites). Visitors that need to retain a
/// configuration call materialize().
struct ConfigView {
  ConfigId id = kNoConfig;
  const Value* states = nullptr;
  const Value* regs = nullptr;
  int num_states = 0;
  int num_regs = 0;

  Config materialize() const {
    Config c;
    c.states.assign(states, states + num_states);
    c.regs.assign(regs, regs + num_regs);
    return c;
  }
};

/// decision_of over a view, without materializing a Config.
inline std::optional<Value> decision_of(const Protocol& proto,
                                        const ConfigView& c, ProcId p) {
  const PendingOp op = proto.poised(p, c.states[p]);
  if (op.is_decide()) return op.value;
  return std::nullopt;
}

/// Packed, interned, out-of-core configuration storage.
///
/// A configuration of an (n, m) protocol is exactly n state words followed
/// by m register words. The arena stores them back to back in fixed-size
/// SEGMENTS (a power-of-two number of configurations each, sized to a few
/// MB) allocated flat with new[] — the geas Vec idiom: no per-configuration
/// allocation, no reallocation copying, and word pointers stay stable for
/// the lifetime of a segment's residency. Deduplication goes through an
/// open-addressing hash table of 8-byte slots (a 32-bit hash tag plus the
/// id), so a probe touches the word data only on a tag match and the table
/// stays half the size a full-hash layout would need. Growth re-derives
/// each slot's bucket by rehashing its words from the store.
///
/// Out-of-core operation (set_spill): when resident word bytes exceed the
/// spill threshold, maybe_spill() takes cold FULL segments (lowest ids
/// first — in BFS id order those are the oldest levels), delta/varint
/// compresses them against the previous configuration in the segment (most
/// successors differ from a neighbour in one or two slots), appends the
/// compressed block to an unlinked backing file in the spill directory,
/// maps it read-only, and frees the resident array. words() on a spilled
/// id decodes the configuration into a thread-local buffer. Spilling only
/// happens inside maybe_spill(), which callers invoke at quiescent points
/// (level boundaries, or the parallel explorer's stop-the-world
/// rendezvous), so readers never race a segment teardown.
///
/// Thread safety: interning and spilling are single-threaded (externally
/// synchronized). Concurrent READERS (words/view) plus concurrent WRITERS
/// to distinct reserved ids are safe between spills: the segment directory
/// is an atomic snapshot array and ensure_capacity() publishes fully
/// initialized segments before exposing them.
///
/// Usage: build the next configuration's words in scratch(), then
/// intern_scratch(). The id space is dense and insertion-ordered.
class ConfigArena {
 public:
  ConfigArena(int num_states, int num_regs);
  ~ConfigArena();

  ConfigArena(const ConfigArena&) = delete;
  ConfigArena& operator=(const ConfigArena&) = delete;

  int num_states() const { return n_; }
  int num_regs() const { return m_; }
  std::size_t words_per_config() const { return words_; }
  std::size_t size() const { return count_; }

  /// Drop all configurations but keep the allocations for reuse. Unmaps
  /// spilled blocks and truncates the backing file.
  void clear();

  /// Staging buffer for the configuration about to be interned
  /// (words_per_config() words: states then regs).
  Value* scratch() { return scratch_.data(); }

  /// Pack a Config's words into dst (words_per_config() words).
  void pack(const Config& c, Value* dst) const;

  /// Hash of a packed word sequence; the same function the dedup table
  /// stores, exposed so sharded tables (parallel explorer) agree with it.
  std::uint64_t hash_words(const Value* w) const;

  struct Interned {
    ConfigId id;
    bool inserted;  ///< false: already present, id is the prior copy's
  };
  /// Intern the scratch buffer's configuration.
  Interned intern_scratch() { return intern_words(scratch_.data()); }

  /// Intern an externally staged word sequence (words_per_config() words).
  /// `w` must not alias the arena's own word store. The reachability
  /// engine's batched expansion stages successor words in per-slot buffers
  /// and interns them through this.
  Interned intern_words(const Value* w);

  /// intern_words with the hash precomputed (must be hash_words(w)). Pair
  /// with prefetch(): callers that stage several configurations before
  /// interning any of them can overlap the table's cache misses, which
  /// dominate interning once the table outgrows the cache.
  Interned intern_prehashed(const Value* w, std::uint64_t h);

  /// Hint the CPU to pull the hash's home slot into cache ahead of
  /// intern_prehashed / find on the same hash. Never faults.
  void prefetch(std::uint64_t h) const {
    __builtin_prefetch(table_.data() + (h >> shift_));
  }

  /// Lookup without insertion; kNoConfig if absent.
  ConfigId find(const Value* w) const;

  /// Append words as a new configuration WITHOUT consulting the dedup
  /// table. For callers that own deduplication themselves (the parallel
  /// explorer's sharded visited sets).
  ConfigId append_words(const Value* w);

  /// Read access to one configuration's packed words. Resident segments
  /// return a direct pointer; spilled segments decode into a thread-local
  /// buffer valid until this thread's next words() call on a spilled id.
  const Value* words(ConfigId id) const {
    const Seg* s = dir_.load(std::memory_order_acquire)[id >> seg_shift_].load(
        std::memory_order_acquire);
    const Value* d = s->data;
    if (d != nullptr) {
      return d + (static_cast<std::size_t>(id) & seg_mask_) * words_;
    }
    return decode_spilled(*s, static_cast<std::size_t>(id) & seg_mask_);
  }
  ConfigView view(ConfigId id) const {
    const Value* w = words(id);
    return ConfigView{id, w, w + n_, n_, m_};
  }
  Config materialize(ConfigId id) const { return view(id).materialize(); }

  bool words_equal(const Value* a, const Value* b) const {
    return std::memcmp(a, b, words_ * sizeof(Value)) == 0;
  }

  // --- concurrent-append support (the work-stealing explorer) -----------

  /// Make segments for every id < up_to exist and be resident. Safe to
  /// call concurrently with readers and with writers to other ids;
  /// internally serialized against other ensure_capacity calls.
  void ensure_capacity(std::size_t up_to);

  /// Writable pointer to a reserved (ensure_capacity'd) id's word slot.
  /// The caller owns the id exclusively until it is published.
  Value* slot_ptr(ConfigId id) {
    Seg* s = dir_.load(std::memory_order_acquire)[id >> seg_shift_].load(
        std::memory_order_acquire);
    return s->data + (static_cast<std::size_t>(id) & seg_mask_) * words_;
  }

  /// Publish the final count after a phase of concurrent slot_ptr writes.
  /// (The dedup table is NOT updated; concurrent appenders own dedup.)
  void set_size(std::size_t count) { count_ = count; }

  // --- out-of-core ------------------------------------------------------

  /// Enable spilling: cold full segments move to an unlinked backing file
  /// under `dir` once resident word bytes exceed `threshold_bytes`.
  /// `seg_configs_hint` (power of two, 0 = default ~4 MB segments) is for
  /// tests that need multiple segments within tiny runs. Must be called
  /// while the arena is empty. Returns false if the directory is unusable
  /// (spilling stays disabled).
  bool set_spill(const std::string& dir, std::size_t threshold_bytes,
                 std::size_t seg_configs_hint = 0);

  bool spill_enabled() const { return spill_file_.valid(); }
  std::size_t spill_threshold() const { return spill_threshold_; }

  /// True when resident word bytes exceed the spill threshold and at least
  /// one full cold segment could be released. `cur_size` is the caller's
  /// view of how many configurations exist (the work-stealing explorer's
  /// id counter runs ahead of size()). Cheap; any thread.
  bool spill_needed(std::size_t cur_size) const {
    return spill_file_.valid() &&
           resident_words_bytes_.load(std::memory_order_relaxed) >
               spill_threshold_ &&
           first_resident_seg_ < cur_size >> seg_shift_;
  }

  /// Spill cold full segments (lowest ids first) until resident word bytes
  /// drop to the threshold or only pinned/partial segments remain. Ids >=
  /// pin_floor are never spilled (callers pin the unexpanded frontier so
  /// the hot read path stays pointer-direct). Caller guarantees no
  /// concurrent arena access (quiescent point). Returns bytes released.
  /// A write/mmap failure (ENOSPC, short write that retries don't clear)
  /// throws util::BudgetExhausted after recording a flight event: the
  /// operator's memory plan can no longer be kept, and pretending
  /// otherwise by quietly staying resident would trade a clean exit 4 for
  /// an OOM-kill hours later.
  std::size_t maybe_spill(ConfigId pin_floor);

  std::size_t spilled_bytes() const {
    return spilled_bytes_.load(std::memory_order_relaxed);
  }
  std::size_t mapped_bytes() const {
    return mapped_bytes_.load(std::memory_order_relaxed);
  }
  std::size_t spilled_segments() const { return spilled_segments_; }
  std::size_t spill_failures() const { return spill_failures_; }

  /// Capacity of the dedup table (power of two; 0 before first insertion).
  /// Every interned configuration owns exactly one slot, so occupancy is
  /// size() / table_slots() — the load factor the stats records report.
  std::size_t table_slots() const { return table_.size(); }

  /// Resident heap bytes held by the arena (word segments + dedup table +
  /// scratch). Spilled bytes live in the (unlinked) backing file and
  /// mmap'd blocks are clean file-backed pages the kernel can drop, so
  /// neither counts against the RAM budget; they get their own ledger
  /// accounts (arena.spill / arena.mapped).
  std::size_t words_bytes() const {
    return resident_words_bytes_.load(std::memory_order_relaxed) +
           scratch_.capacity() * sizeof(Value);
  }
  std::size_t table_bytes() const { return table_.capacity() * sizeof(Slot); }
  std::size_t memory_bytes() const { return words_bytes() + table_bytes(); }

  std::size_t segment_configs() const { return seg_configs_; }

 private:
  /// Buckets are the hash's top log2(table size) bits — a prefix of the
  /// stored tag — so growth re-derives every bucket from tags alone: one
  /// sequential read pass, no rehashing of word data. (Holds while the
  /// table has <= 2^32 slots; the 32-bit id space runs out first.)
  struct Slot {
    std::uint32_t tag = 0;  ///< top 32 hash bits; full equality is by words
    ConfigId id = kNoConfig;
  };

  /// One fixed-size segment of seg_configs_ configurations. `data` is the
  /// flat resident array (null once spilled); `blk` describes the
  /// compressed block in the backing file after a spill.
  struct Seg {
    Value* data = nullptr;
    util::spill::BackingFile::Block blk;
  };

  void grow_table();
  const Value* decode_spilled(const Seg& s, std::size_t local) const;
  bool spill_segment(Seg& s);
  void release_map(Seg& s);
  void add_segment();
  void alloc_seg_data(Seg& s);

  int n_;
  int m_;
  std::size_t words_;
  std::size_t count_ = 0;
  std::size_t seg_configs_ = 0;  ///< configs per segment (power of two)
  std::size_t seg_mask_ = 0;     ///< seg_configs_ - 1
  int seg_shift_ = 0;            ///< log2(seg_configs_)

  std::vector<std::unique_ptr<Seg>> segs_;  ///< stable Seg addresses
  /// segs_.size() mirrored for the lock-free ensure_capacity fast path.
  std::atomic<std::size_t> seg_count_{0};
  std::mutex grow_mu_;  ///< serializes segment growth (slow path only)

  /// Lock-free segment directory: an array of atomic Seg pointers,
  /// republished (capacity-doubled) when it fills. Old arrays are retired
  /// (kept until destruction) so a reader holding a stale snapshot never
  /// touches freed memory; doubling bounds the retired total at one extra
  /// copy of the final directory. A reader can only hold a snapshot at
  /// least as new as the publication of any id it was handed, because id
  /// handoff (shard lock / deque steal) happens-after the entry store.
  using DirEntry = std::atomic<Seg*>;
  std::atomic<DirEntry*> dir_{nullptr};
  std::vector<std::unique_ptr<DirEntry[]>> dir_store_;
  std::size_t dir_cap_ = 0;

  std::vector<Value> scratch_;  ///< words_ staging words
  std::vector<Slot> table_;     ///< open addressing, power-of-two size
  std::size_t mask_ = 0;        ///< table size - 1 (probe wrap)
  int shift_ = 0;               ///< 64 - log2(table size) (bucket index)

  // Spill state. resident_words_bytes_ is atomic because the parallel
  // explorer's budget checks read it from worker threads while another
  // worker's flush is growing the arena.
  util::spill::BackingFile spill_file_;
  std::size_t spill_threshold_ = 0;
  std::size_t first_resident_seg_ = 0;
  std::size_t spilled_segments_ = 0;
  std::size_t spill_failures_ = 0;
  std::atomic<std::size_t> resident_words_bytes_{0};
  std::atomic<std::size_t> spilled_bytes_{0};
  std::atomic<std::size_t> mapped_bytes_{0};
};

}  // namespace tsb::sim
