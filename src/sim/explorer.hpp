#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"

namespace tsb::sim {

/// Breadth-first enumeration of the configurations reachable from a root by
/// P-only executions.
///
/// This is the mechanical core behind valency queries ("does there exist a
/// P-only execution from C deciding v?") and the exhaustive model checker.
/// It assumes the P-only reachable space is finite — true for the finite-
/// state protocols the experiments target — and otherwise reports
/// truncation at a configurable cap rather than diverging.
///
/// Steps by already-decided processes are no-ops in the model and are not
/// generated as edges (they would only add self-loops).
class Explorer {
 public:
  struct Options {
    std::size_t max_configs = 2'000'000;
  };

  explicit Explorer(const Protocol& proto) : Explorer(proto, Options{}) {}
  Explorer(const Protocol& proto, Options opts) : proto_(proto), opts_(opts) {}

  struct Result {
    bool truncated = false;       ///< hit max_configs before exhausting
    bool aborted = false;         ///< visitor returned false
    std::size_t visited = 0;      ///< configurations enumerated
    std::optional<Config> abort_config;  ///< config the visitor stopped on
  };

  /// Enumerate configurations reachable from `root` by P-only steps,
  /// calling `visit` on each (including the root). `visit` returning false
  /// aborts the search; the aborting configuration is reported in the
  /// result, and `witness()` can reconstruct the schedule that reached it.
  Result explore(const Config& root, ProcSet p,
                 const std::function<bool(const Config&)>& visit);

  /// Schedule from the last explore()'s root to `target`; target must have
  /// been visited. Empty optional if it was not.
  std::optional<Schedule> witness(const Config& target) const;

 private:
  const Protocol& proto_;
  Options opts_;

  // BFS bookkeeping from the most recent explore() call, kept for witness
  // reconstruction.
  std::unordered_map<Config, int, ConfigHash> index_;
  std::vector<std::pair<int, ProcId>> parent_;  // (parent index, step proc)
};

}  // namespace tsb::sim
