#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/memledger.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "sim/config_arena.hpp"
#include "sim/engine.hpp"
#include "util/checkpoint.hpp"

namespace tsb::sim {

namespace detail {
// Shared explorer metrics (sequential and parallel explorers count into the
// same registry entries). Looked up once, then relaxed sharded adds.
struct ExploreMetrics {
  obs::Counter& visited;
  obs::Counter& dedup_hits;
  obs::Gauge& frontier;
};
ExploreMetrics& explore_metrics();
}  // namespace detail

/// Outcome of a reachability enumeration, shared by Explorer and
/// ParallelExplorer. On complete (untruncated, unaborted) runs the two
/// enumerate the exact same configuration SET — identical `visited` counts
/// and identical verdicts for any order-independent visitor — but the
/// work-stealing parallel path no longer promises the sequential discovery
/// ORDER or id assignment (see parallel_explorer.hpp for the contract and
/// DESIGN.md for why replay verification keeps that sound).
struct ExploreResult {
  bool truncated = false;       ///< hit max_configs before exhausting
  bool aborted = false;         ///< visitor returned false
  /// The truncation came from a set_budget() memory or wall-clock budget
  /// rather than the configuration cap — the graceful-degradation signal
  /// callers surface as a distinct "budget-exhausted" status. Implies
  /// truncated.
  bool budget_exhausted = false;
  std::size_t visited = 0;      ///< configurations enumerated
  std::optional<Config> abort_config;  ///< config the visitor stopped on
};

namespace detail {

/// Per-BFS-level forensics for one explore() call, shared by Explorer and
/// ParallelExplorer. Entirely observational: enabling it changes nothing
/// about discovery order, ids, or verdicts (the determinism tests run with
/// it on).
///
/// Level records are *buffered*, and flushed only if the exploration ends
/// up visiting at least Options::stats_min_visited configurations: the
/// valency oracle runs thousands of small reachability passes per
/// adversary run, and per-level rows for a 40-config pass are noise that
/// would swamp the stats file. Every exploration still contributes one
/// "explore.done" summary record, so nothing is invisible — just folded.
///
/// When stats are disabled the constructor is one relaxed load and every
/// other method is behind active().
class LevelStatsTracker {
 public:
  LevelStatsTracker(const char* who, std::size_t min_visited);

  bool active() const { return active_; }

  /// Start the record for a completed level, preloaded with the fields
  /// both explorers share (timing, rates, arena geometry, peak RSS).
  /// Callers append their own fields and hand it to commit_level().
  obs::JsonObj level_record(const ConfigArena& arena, std::uint64_t frontier,
                            std::uint64_t discovered, std::uint64_t dedup);
  void commit_level(obs::JsonObj&& record);

  /// Emit the always-written summary record and, if the run crossed the
  /// size threshold, the buffered level records before it.
  void done(const ConfigArena& arena, const ExploreResult& res,
            std::uint64_t dedup_total);

 private:
  const char* who_;
  bool active_;
  std::size_t min_visited_;
  std::size_t levels_ = 0;
  std::vector<std::string> buffered_;
  std::chrono::steady_clock::time_point t_start_{};
  std::chrono::steady_clock::time_point t_level_{};
};

}  // namespace detail

/// Breadth-first enumeration of the configurations reachable from a root by
/// P-only executions.
///
/// This is the mechanical core behind valency queries ("does there exist a
/// P-only execution from C deciding v?") and the exhaustive model checker.
/// It assumes the P-only reachable space is finite — true for the finite-
/// state protocols the experiments target — and otherwise reports
/// truncation at a configurable cap rather than diverging.
///
/// Storage is a packed ConfigArena: configurations are interned as
/// fixed-width word sequences with dense 32-bit ids assigned in discovery
/// order, so the BFS frontier is simply the id sequence itself (level k is
/// a contiguous id range) and the visited set is the arena's open-addressing
/// table — no per-configuration allocation, no rehash on lookup.
///
/// The visitor is a template parameter, not a std::function: per-visit
/// checks (e.g. the valency oracle's some_decided scan) inline into the
/// BFS loop. Visitors receive a ConfigView valid only for the duration of
/// the call; call materialize() to retain one.
///
/// Steps by already-decided processes are no-ops in the model and are not
/// generated as edges (they would only add self-loops).
class Explorer {
 public:
  struct Options {
    std::size_t max_configs = 2'000'000;
    /// Runs visiting fewer configurations than this keep only their
    /// "explore.done" summary in the stats JSONL; per-level records are
    /// dropped (see detail::LevelStatsTracker).
    std::size_t stats_min_visited = 10'000;
  };

  using Result = ExploreResult;

  explicit Explorer(const Protocol& proto) : Explorer(proto, Options{}) {}
  Explorer(const Protocol& proto, Options opts)
      : proto_(proto),
        opts_(opts),
        arena_(proto.num_processes(), proto.num_registers()),
        cur_(arena_.words_per_config()) {}

  /// Graceful-degradation budgets: when the exploration's tracked heap
  /// footprint (tracked_bytes(), the same arithmetic the memory ledger
  /// reports) reaches `max_arena_bytes` (0 = uncapped) or the wall clock
  /// passes `deadline` (time_point::max() = none), explore() stops cleanly
  /// with truncated + budget_exhausted set instead of growing without
  /// bound. Unlike the configuration cap, budget truncation points are
  /// machine-dependent, so budgeted runs waive the sequential/parallel
  /// bit-identity contract.
  void set_budget(std::size_t max_arena_bytes,
                  std::chrono::steady_clock::time_point deadline) {
    budget_bytes_ = max_arena_bytes;
    budget_deadline_ = deadline;
  }

  /// Out-of-core operation: cold arena segments spill (delta/varint
  /// compressed) to an unlinked backing file under `dir` once resident
  /// word bytes exceed `threshold_bytes`. Spilled bytes leave
  /// tracked_bytes(), so a memory budget caps RAM while the reachable set
  /// keeps growing on disk. Call before the first explore(). Returns
  /// false (and leaves spilling off) if the directory is unusable.
  /// `seg_configs_hint` shrinks segments for tests that must spill on
  /// tiny runs.
  bool set_spill(const std::string& dir, std::size_t threshold_bytes,
                 std::size_t seg_configs_hint = 0) {
    return arena_.set_spill(dir, threshold_bytes, seg_configs_hint);
  }

  /// Heap bytes this exploration owns — the quantity set_budget() caps and
  /// the ledger's arena.words/arena.table/explore.frontier accounts sum to.
  /// Replaces the raw-RSS proxy budget checks used before the ledger: RSS
  /// counts every subsystem at once and cannot attribute an overrun.
  std::size_t tracked_bytes() const {
    return arena_.memory_bytes() + frontier_bytes();
  }

  /// Enumerate configurations reachable from `root` by P-only steps,
  /// calling `visit` on each (including the root). `visit` returning false
  /// aborts the search; the aborting configuration is reported in the
  /// result, and `witness()` can reconstruct the schedule that reached it.
  ///
  /// Discovery order (the determinism contract shared with
  /// ParallelExplorer): configurations are expanded in id order; each
  /// expansion generates successors in ascending process id; a
  /// configuration reachable along several edges is owned by the earliest
  /// discovery in that order.
  template <typename Visit>
  Result explore(const Config& root, ProcSet p, Visit&& visit) {
    arena_.clear();
    parent_.clear();

    Result res;
    detail::ExploreMetrics& metrics = detail::explore_metrics();
    detail::LevelStatsTracker stats("explore", opts_.stats_min_visited);
    obs::Heartbeat hb("explore");
    const int n = arena_.num_states();

    arena_.pack(root, arena_.scratch());
    arena_.intern_scratch();
    parent_.emplace_back(kNoConfig, -1);
    ++res.visited;
    metrics.visited.add();
    if (!visit(arena_.view(0))) {
      res.aborted = true;
      res.abort_config = arena_.materialize(0);
      if (stats.active()) stats.done(arena_, res, 0);
      return res;
    }

    ConfigId head = 0;
    std::size_t expanded = 0;
    // Ids are assigned in discovery order, so BFS level k is the contiguous
    // id range [level_start, level_end); the boundary bookkeeping below is
    // two compares per expansion and feeds the per-level stats records.
    ConfigId level_start = 0;
    ConfigId level_end = 1;
    std::size_t level_idx = 0;
    std::uint64_t level_dedup = 0;
    std::uint64_t dedup_total = 0;
    while (head < arena_.size()) {
      if (head == level_end) {
        if (stats.active()) {
          stats.commit_level(stats.level_record(
              arena_, level_end - level_start,
              static_cast<ConfigId>(arena_.size()) - level_end, level_dedup));
        }
        level_start = level_end;
        level_end = static_cast<ConfigId>(arena_.size());
        level_dedup = 0;
        ++level_idx;
        update_ledger();
        obs::flight::record(obs::flight::Ev::kLevel,
                            static_cast<std::int64_t>(level_idx),
                            static_cast<std::int64_t>(level_end - level_start));
      }
      if (arena_.size() >= opts_.max_configs) {
        res.truncated = true;
        break;
      }
      if (budget_bytes_ != 0 && tracked_bytes() >= budget_bytes_) {
        update_ledger();
        obs::flight::record(obs::flight::Ev::kBudgetTrip,
                            static_cast<std::int64_t>(tracked_bytes()),
                            static_cast<std::int64_t>(budget_bytes_));
        res.truncated = true;
        res.budget_exhausted = true;
        break;
      }
      ++expanded;
      // Checked on the first expansion and then every 256th: an
      // already-expired deadline truncates immediately, even on graphs far
      // smaller than the check interval.
      if ((expanded & 0xFF) == 1 &&
          budget_deadline_ != std::chrono::steady_clock::time_point::max() &&
          std::chrono::steady_clock::now() >= budget_deadline_) {
        obs::flight::record(obs::flight::Ev::kBudgetTrip,
                            static_cast<std::int64_t>(tracked_bytes()), 0);
        res.truncated = true;
        res.budget_exhausted = true;
        break;
      }
      if ((expanded & 0xFFF) == 0) {
        // Quiescent point: per-pass BFS state is rebuilt by replay on
        // resume, so the checkpoint service may persist the session state
        // (and throw CheckpointStop on a requested stop) right here.
        util::ckpt::CheckpointService::global().poll(4096);
        metrics.frontier.set(static_cast<std::int64_t>(arena_.size() - head));
        if (arena_.spill_needed(arena_.size())) {
          // Pin the unexpanded frontier: ids >= head stay resident so the
          // expansion loop keeps its pointer-direct read path.
          const std::size_t released = arena_.maybe_spill(head);
          if (released != 0) {
            obs::flight::record(
                obs::flight::Ev::kSpill, static_cast<std::int64_t>(released),
                static_cast<std::int64_t>(arena_.spilled_bytes()));
          }
        }
        update_ledger();
        hb.beat(
            [&] {
              return "configs=" + std::to_string(res.visited) +
                     " frontier=" + std::to_string(arena_.size() - head);
            },
            [&](obs::StatusSnapshot& s) {
              s.level = static_cast<std::int64_t>(level_idx);
              s.frontier = static_cast<std::int64_t>(arena_.size() - head);
              s.visited = static_cast<std::int64_t>(res.visited);
              s.cap = static_cast<std::int64_t>(opts_.max_configs);
            });
      }
      const ConfigId cur = head++;
      // Arena insertions may reallocate the word store; expand from a copy.
      std::memcpy(cur_.data(), arena_.words(cur),
                  arena_.words_per_config() * sizeof(Value));

      bool keep_going = true;
      p.for_each([&](int q) {
        if (!keep_going) return;
        const PendingOp op = proto_.poised(q, cur_[static_cast<std::size_t>(q)]);
        if (op.is_decide()) return;  // terminated: no edge
        Value* scratch = arena_.scratch();
        std::memcpy(scratch, cur_.data(),
                    arena_.words_per_config() * sizeof(Value));
        apply_op(proto_, op, q, scratch, scratch + n);
        const auto [id, inserted] = arena_.intern_scratch();
        if (!inserted) {
          metrics.dedup_hits.add();
          ++level_dedup;
          ++dedup_total;
          return;
        }
        parent_.emplace_back(cur, q);
        ++res.visited;
        metrics.visited.add();
        if (!visit(arena_.view(id))) {
          res.aborted = true;
          res.abort_config = arena_.materialize(id);
          keep_going = false;
        }
      });
      if (!keep_going) break;
    }
    update_ledger();
    if (stats.active()) {
      // The level in progress when the loop ended (complete if the frontier
      // drained, partial on truncation/abort).
      stats.commit_level(stats.level_record(
          arena_, level_end - level_start,
          static_cast<ConfigId>(arena_.size()) - level_end, level_dedup));
      stats.done(arena_, res, dedup_total);
    }
    return res;
  }

  /// Schedule from the last explore()'s root to `target`; target must have
  /// been visited. Empty optional if it was not.
  std::optional<Schedule> witness(const Config& target) const;

  /// Same, by the id a visitor saw. id must be a valid id from the last
  /// explore().
  std::optional<Schedule> witness_by_id(ConfigId id) const;

  /// Number of configurations interned by the last explore().
  std::size_t size() const { return arena_.size(); }

  ConfigView view(ConfigId id) const { return arena_.view(id); }

 private:
  std::size_t frontier_bytes() const {
    return parent_.capacity() * sizeof(std::pair<ConfigId, ProcId>) +
           cur_.capacity() * sizeof(Value);
  }
  void update_ledger() const {
    obs::MemLedger& ledger = obs::MemLedger::global();
    ledger.set(obs::MemAccount::kArenaWords, arena_.words_bytes());
    ledger.set(obs::MemAccount::kArenaTable, arena_.table_bytes());
    ledger.set(obs::MemAccount::kExploreFrontier, frontier_bytes());
    if (arena_.spill_enabled() || arena_.spilled_bytes() != 0) {
      ledger.set(obs::MemAccount::kArenaSpill, arena_.spilled_bytes());
      ledger.set(obs::MemAccount::kArenaMapped, arena_.mapped_bytes());
    }
  }

  const Protocol& proto_;
  Options opts_;
  std::size_t budget_bytes_ = 0;
  std::chrono::steady_clock::time_point budget_deadline_ =
      std::chrono::steady_clock::time_point::max();

  // BFS bookkeeping from the most recent explore() call, kept for witness
  // reconstruction.
  ConfigArena arena_;
  std::vector<Value> cur_;  ///< copy of the configuration being expanded
  std::vector<std::pair<ConfigId, ProcId>> parent_;  // (parent id, step proc)
};

}  // namespace tsb::sim
