#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/model_checker.hpp"
#include "sim/protocol.hpp"
#include "util/rng.hpp"

namespace tsb::sim {

/// A finite, table-driven, anonymous protocol: the search space for the
/// brute-force experiment (E7).
///
/// Local state is (mode, pref) with mode in [0, modes) and pref in {0,1}.
/// All processes run the same tables (anonymity). Registers hold values in
/// {empty, 0, 1}. Per state the protocol either reads a register, writes
/// 0/1 to a register, or decides its current preference (deciding pref is
/// forced: it makes Validity structural, shrinking the search space without
/// excluding any protocol that could be correct up to renaming decisions).
struct TableProtocolSpec {
  int n = 2;      ///< processes
  int m = 1;      ///< registers
  int modes = 1;  ///< modes per preference; states = 2 * modes

  // Indexed by state = mode * 2 + pref.
  std::vector<std::uint8_t> op_kind;  ///< 0 = read, 1 = write, 2 = decide
  std::vector<std::uint8_t> op_reg;   ///< operand register for read/write
  std::vector<std::uint8_t> op_val;   ///< value written (0/1) for write

  // Read successor: indexed by state * 3 + obs, obs: 0 = empty, 1, 2 = 0/1.
  std::vector<std::uint8_t> read_next;
  // Write successor: indexed by state.
  std::vector<std::uint8_t> write_next;

  int num_states() const { return 2 * modes; }
  std::string to_string() const;
};

class TableProtocol final : public Protocol {
 public:
  explicit TableProtocol(TableProtocolSpec spec);

  std::string name() const override { return "table-protocol"; }
  int num_processes() const override { return spec_.n; }
  int num_registers() const override { return spec_.m; }
  State initial_state(ProcId p, Value input) const override;
  PendingOp poised(ProcId p, State s) const override;
  State after_read(ProcId p, State s, Value observed) const override;
  State after_write(ProcId p, State s) const override;

  const TableProtocolSpec& spec() const { return spec_; }

 private:
  TableProtocolSpec spec_;
};

/// Brute-force sweep over the TableProtocol family.
class ProtocolSearch {
 public:
  struct Options {
    int n = 2;
    int m = 1;
    int modes = 1;
    std::size_t max_candidates = 0;  ///< 0 = no cap (full enumeration)
    std::size_t solo_step_cap = 64;
    std::size_t max_configs = 20'000;
  };

  struct Stats {
    std::size_t candidates = 0;     ///< genomes examined
    std::size_t skipped_trivial = 0;  ///< rejected without model checking
    std::size_t safe = 0;           ///< pass agreement + validity
    std::size_t live = 0;           ///< additionally pass solo termination
    std::vector<TableProtocolSpec> winners;  ///< fully correct protocols
  };

  /// Exhaustively enumerate every genome (mixed-radix counter) and model
  /// check each. With Options::max_candidates > 0 stops after that many.
  static Stats exhaustive(const Options& opts);

  /// Uniformly sample `count` genomes; useful where exhaustion is infeasible.
  static Stats sample(const Options& opts, std::size_t count, util::Rng& rng);

  /// Total genome count for the family (may saturate at SIZE_MAX).
  static std::size_t family_size(const Options& opts);

 private:
  static Stats run(const Options& opts,
                   const std::function<bool(TableProtocolSpec&)>& next_spec);
  static bool plausible(const TableProtocolSpec& spec);
  static void check_one(const Options& opts, const TableProtocolSpec& spec,
                        Stats& stats);
};

}  // namespace tsb::sim
