#pragma once

#include <string>

#include "sim/value.hpp"

namespace tsb::sim {

/// The things a process can be poised to do in a configuration.
///
/// A step in the model is: read a register (receiving its contents), write
/// a value to a register (receiving an acknowledgement), or decide. Decide
/// is terminal: a decided process takes no further steps, and its decision
/// is a function of its local state.
///
/// kSwap extends the model to *historyless* base objects (the paper's
/// Section 4): an atomic swap writes a value and returns the overwritten
/// one. Zhu's lower bound technique does not carry over to swap — "when a
/// process performs swap, it sees the value it overwrote", so hidden-write
/// obliteration is detectable — and the swap-based protocols in
/// consensus/historyless.hpp demonstrate that boundary executably. The
/// covering machinery (Definition 2) deliberately does NOT count a poised
/// swap as covering a register.
enum class OpKind : std::uint8_t { kRead, kWrite, kDecide, kSwap };

struct PendingOp {
  OpKind kind = OpKind::kRead;
  RegId reg = -1;   ///< target register for kRead / kWrite
  Value value = 0;  ///< value written for kWrite; decision for kDecide

  static PendingOp read(RegId r) { return {OpKind::kRead, r, 0}; }
  static PendingOp write(RegId r, Value v) { return {OpKind::kWrite, r, v}; }
  static PendingOp decide(Value v) { return {OpKind::kDecide, -1, v}; }
  static PendingOp swap(RegId r, Value v) { return {OpKind::kSwap, r, v}; }

  bool is_read() const { return kind == OpKind::kRead; }
  bool is_write() const { return kind == OpKind::kWrite; }
  bool is_decide() const { return kind == OpKind::kDecide; }
  bool is_swap() const { return kind == OpKind::kSwap; }

  bool operator==(const PendingOp&) const = default;

  std::string to_string() const;
};

/// Record of one executed step, for traces and certificates.
struct StepRecord {
  ProcId proc = -1;
  PendingOp op;
  Value read_result = 0;  ///< contents returned, when op.is_read()

  std::string to_string() const;
};

}  // namespace tsb::sim
