#pragma once

#include <cstdint>

#include "sim/value.hpp"
#include "util/proc_set.hpp"

namespace tsb::sim {

using util::ProcSet;

/// Process-permutation canonicalization for symmetric (process-oblivious)
/// protocols.
///
/// When Protocol::symmetric() holds, poised()/after_*()/initial_state()
/// ignore their ProcId argument, so every renaming pi of the processes is an
/// automorphism of the step relation: permuting the *states* component of a
/// configuration (registers are global and untouched) maps executions to
/// executions step for step. Configurations in the same orbit therefore have
/// identical valency behaviour, and the reachability engine only ever needs
/// one representative per orbit — a visited-set reduction of up to n!.
///
/// The canonical representative is the configuration whose state words are
/// sorted ascending. Sorting is *stable* so the renaming is deterministic,
/// and the full packed word sequence (states then registers) is what gets
/// interned, so two configurations collide exactly when their sorted states
/// AND their register contents agree — the renaming is register-content
/// aware in the sense that registers stay part of the identity, they are
/// just never permuted.
///
/// Queries are about a *pair* (C, P), and P breaks the symmetry: renaming is
/// only sound if P is translated along. canonicalize_states() returns the
/// renaming so callers can map process sets and de-canonicalize witness
/// schedules; refine_procset() then picks the orbit-canonical member set
/// among processes with equal states (see its contract).

/// A permutation of process ids for n <= kMaxProcs, packed one image per
/// byte: byte p holds pi(p). Slots >= n are identity so composition and
/// inversion can work on all 8 lanes unconditionally.
class ProcPerm {
 public:
  static constexpr int kMaxProcs = 8;

  constexpr ProcPerm() : packed_(kIdentityBits) {}
  constexpr explicit ProcPerm(std::uint64_t packed) : packed_(packed) {}

  static constexpr ProcPerm identity() { return ProcPerm(); }

  constexpr int operator()(int p) const {
    return static_cast<int>((packed_ >> (8 * p)) & 0xFF);
  }
  constexpr void set(int p, int image) {
    packed_ = (packed_ & ~(0xFFull << (8 * p))) |
              (static_cast<std::uint64_t>(image) << (8 * p));
  }

  constexpr bool is_identity() const { return packed_ == kIdentityBits; }
  constexpr std::uint64_t packed() const { return packed_; }
  constexpr bool operator==(const ProcPerm&) const = default;

  ProcPerm inverse() const {
    ProcPerm inv;
    for (int p = 0; p < kMaxProcs; ++p) inv.set((*this)(p), p);
    return inv;
  }

  /// Composition "a then b": compose(a, b)(p) == b(a(p)).
  static ProcPerm compose(ProcPerm a, ProcPerm b) {
    ProcPerm out;
    for (int p = 0; p < kMaxProcs; ++p) out.set(p, b(a(p)));
    return out;
  }

  /// Image of a process set: { pi(p) : p in s }.
  ProcSet apply(ProcSet s) const {
    std::uint64_t out = 0;
    s.for_each([&](int p) { out |= 1ull << (*this)(p); });
    return ProcSet(out);
  }

 private:
  // Identity packing: byte p holds p.
  static constexpr std::uint64_t kIdentityBits = 0x0706050403020100ull;

  std::uint64_t packed_;
};

/// Stable-sort states[0..n) ascending in place; returns the renaming pi
/// with sorted[pi(p)] = original state of p. n <= ProcPerm::kMaxProcs.
ProcPerm canonicalize_states(Value* states, int n);

/// Orbit-canonical form of a process set over already-sorted states.
///
/// Processes with equal states are interchangeable, so (C~, P1) and
/// (C~, P2) are the same query whenever P1 and P2 pick the same *number* of
/// members from each run of equal states. The canonical member set takes
/// the lowest slots of each run; the returned tau permutes only within
/// runs of equal states (so it fixes the sorted configuration) and maps the
/// given set onto the canonical one: tau.apply(p) == *canonical.
ProcPerm refine_procset(const Value* sorted_states, int n, ProcSet p,
                        ProcSet* canonical);

}  // namespace tsb::sim
