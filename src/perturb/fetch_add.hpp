#pragma once

#include "perturb/long_lived.hpp"

namespace tsb::perturb {

/// fetch&add from n single-writer registers — another member of JTT's
/// set A (besides increment, snapshot, modulo-k counters): fetch_add(1)
/// returns the pre-increment counter value, so the operation itself is
/// the observer.
///
/// Implementation: incrementers collect all registers, then write their
/// own register (own count + 1) and return the collected sum — the classic
/// collect-then-bump structure. This read-collect makes fetch&add's return
/// value only *regular* under concurrency (like a read of the SWMR-sum
/// counter); the perturbation experiment needs exactly that: a squeezed
/// batch of operations must be visible to a later one.
///
/// Processes 0..n-2 run fetch_add(1) repeatedly; process n-1 runs
/// fetch_add(0) (a pure read of the running total, keeping the observer
/// role of the JTT construction).
class FetchAddCounter final : public LongLivedObject {
 public:
  explicit FetchAddCounter(int n);

  std::string name() const override;
  int num_processes() const override { return n_; }
  int num_registers() const override { return n_; }
  sim::Value initial_register() const override { return 0; }
  sim::State initial_state(sim::ProcId p) const override;
  sim::PendingOp poised(sim::ProcId p, sim::State s) const override;
  sim::State after_read(sim::ProcId p, sim::State s,
                        sim::Value observed) const override;
  sim::State after_write(sim::ProcId p, sim::State s) const override;
  sim::State after_complete(sim::ProcId p, sim::State s) const override;

 private:
  // State: (sum << 24) | (count << 10) | (pos << 2) | phase.
  // phase 0 = collecting, 1 = poised to write own register (incrementers
  // only), 2 = poised to complete with `sum`.
  int n_;
};

/// Modulo-k counter from n single-writer registers (JTT's set A requires
/// k >= 2n): inc() bumps the own register; read() returns the collected
/// sum mod k. Same space shape as SwmrCounter; the perturbation argument
/// needs k large enough that squeezing up to k-1 operations stays visible
/// (a squeeze of exactly k would wrap to invisibility — which the
/// adversary demo can exhibit, the executable version of why JTT require
/// k >= 2n).
///
/// Processes 0..n-2 increment; process n-1 reads (mod k).
class ModuloCounter final : public LongLivedObject {
 public:
  ModuloCounter(int n, std::int64_t k);

  std::string name() const override;
  int num_processes() const override { return n_; }
  int num_registers() const override { return n_; }
  sim::Value initial_register() const override { return 0; }
  sim::State initial_state(sim::ProcId p) const override;
  sim::PendingOp poised(sim::ProcId p, sim::State s) const override;
  sim::State after_read(sim::ProcId p, sim::State s,
                        sim::Value observed) const override;
  sim::State after_write(sim::ProcId p, sim::State s) const override;
  sim::State after_complete(sim::ProcId p, sim::State s) const override;

  std::int64_t modulus() const { return k_; }

 private:
  int n_;
  std::int64_t k_;
};

}  // namespace tsb::perturb
