#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "perturb/long_lived.hpp"

namespace tsb::perturb {

/// The Jayanti–Tan–Toueg perturbation adversary (deck part I.1), executable.
///
/// Inductively drives workers p0..p_{n-2} until each is poised to write a
/// register outside the set covered so far: after stage k, k processes
/// cover k distinct registers. For a correct (linearizable, solo-
/// terminating) perturbable object — counters, snapshots — JTT guarantees
/// every stage succeeds, giving n-1 distinct covered registers: the object
/// uses at least n-1 registers.
///
/// The adversary also runs the *perturbation experiment* that powers the
/// proof: with k processes covering, squeeze several operations by a
/// not-yet-covering worker in front of the block write, then let the
/// observer (process n-1) run one operation. If the squeezed operations
/// wrote only covered registers, the block write obliterates them and the
/// observer's result cannot change — which for a counter means completed
/// inc()s were lost. Correct implementations always escape the covered set
/// (demo visible = true); the space-starved CyclicCounter gets caught
/// (escape fails and the demo exhibits the lost updates).
class PerturbationAdversary {
 public:
  struct Options {
    std::size_t escape_step_cap = 100'000;  ///< per-stage solo step budget
    std::int64_t squeeze_ops = 3;           ///< operations squeezed per demo
    bool run_demos = true;
  };

  struct Demo {
    int stage = 0;                ///< covering size when the demo ran
    sim::ProcId perturber = -1;
    std::int64_t squeezed_ops = 0;
    sim::Value observer_without = 0;  ///< result after block write, no squeeze
    sim::Value observer_with = 0;     ///< result after squeeze + block write
    bool visible = false;             ///< the squeeze changed the result
  };

  struct Result {
    bool covering_complete = false;  ///< all n-1 stages escaped
    int failed_stage = -1;           ///< stage whose escape failed, or -1
    std::vector<std::pair<sim::ProcId, sim::RegId>> covering;
    int distinct_registers = 0;
    std::vector<Demo> demos;
    /// Demos where a squeeze was invisible: completed operations whose
    /// effect a later operation missed — a linearizability violation for
    /// counters/snapshots.
    int invisible_squeezes = 0;
    std::string narrative;
  };

  PerturbationAdversary(const LongLivedObject& obj, Options opts)
      : obj_(obj), opts_(opts) {}
  explicit PerturbationAdversary(const LongLivedObject& obj)
      : PerturbationAdversary(obj, Options{}) {}

  Result run();

 private:
  Demo run_demo(const LLConfig& cfg,
                const std::vector<std::pair<sim::ProcId, sim::RegId>>& covering,
                sim::ProcId perturber, int stage);

  const LongLivedObject& obj_;
  Options opts_;
};

}  // namespace tsb::perturb
