#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/op.hpp"
#include "sim/trace.hpp"
#include "util/proc_set.hpp"

namespace tsb::perturb {

/// A long-lived shared object implementation in the read/write model —
/// the setting of the Jayanti–Tan–Toueg lower bound (deck part I.1).
///
/// Unlike one-shot consensus (sim::Protocol), processes here perform
/// operations repeatedly: a PendingOp of kind kDecide is reinterpreted as
/// "complete the current operation with this result", after which
/// `after_complete` starts the next operation. Each process runs a fixed
/// operation assigned by the implementation (e.g. workers run inc() and the
/// observer runs read() on a counter).
class LongLivedObject {
 public:
  virtual ~LongLivedObject() = default;

  virtual std::string name() const = 0;
  virtual int num_processes() const = 0;
  virtual int num_registers() const = 0;
  virtual sim::Value initial_register() const = 0;
  virtual sim::State initial_state(sim::ProcId p) const = 0;

  /// kRead/kWrite as in sim::Protocol; kDecide = operation completes,
  /// value = the operation's result.
  virtual sim::PendingOp poised(sim::ProcId p, sim::State s) const = 0;
  virtual sim::State after_read(sim::ProcId p, sim::State s,
                                sim::Value observed) const = 0;
  virtual sim::State after_write(sim::ProcId p, sim::State s) const = 0;

  /// Successor after the pending completion: begins the next operation.
  virtual sim::State after_complete(sim::ProcId p, sim::State s) const = 0;
};

/// A configuration of a long-lived object system, with completion
/// accounting (how many operations each process has finished — the
/// perturbation argument counts completed inc()s).
struct LLConfig {
  std::vector<sim::State> states;
  std::vector<sim::Value> regs;
  std::vector<std::int64_t> completed;    ///< ops finished, per process
  std::vector<sim::Value> last_result;    ///< result of the last finished op

  bool operator==(const LLConfig&) const = default;
};

LLConfig ll_initial(const LongLivedObject& obj);

/// One step by p; completions advance the accounting. Appends to trace if
/// non-null (completions are recorded as kDecide records).
LLConfig ll_step(const LongLivedObject& obj, const LLConfig& c, sim::ProcId p,
                 sim::Trace* trace = nullptr);

/// Run p alone until it completes exactly `ops` operations (or the step cap
/// runs out — returns nullopt then). The returned config is poised at the
/// start of p's next operation.
struct LLSoloRun {
  LLConfig config;
  sim::Value last_result = 0;
  std::size_t steps = 0;
};
std::optional<LLSoloRun> ll_run_ops(const LongLivedObject& obj,
                                    const LLConfig& c, sim::ProcId p,
                                    std::int64_t ops,
                                    std::size_t max_steps = 1'000'000);

/// The register p is poised to write in c, if any.
std::optional<sim::RegId> ll_covered_register(const LongLivedObject& obj,
                                              const LLConfig& c,
                                              sim::ProcId p);

}  // namespace tsb::perturb
