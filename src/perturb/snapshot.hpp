#pragma once

#include "perturb/long_lived.hpp"

namespace tsb::perturb {

/// Single-writer snapshot from n registers, scan by double collect
/// (Afek et al. style, obstruction-free variant: a scan retries until two
/// consecutive collects are identical, which a solo run achieves in two
/// collects; no helping is needed for obstruction freedom).
///
/// Register p holds (seq << 32) | value, written only by process p.
/// update(v): one write with an incremented sequence number.
/// scan(): repeat { collect; collect } until equal; returns the sum of the
/// component values (a digest is enough for the perturbation experiments —
/// the full view is available via the registers themselves).
///
/// Single-writer snapshot is in JTT's set A: its space complexity is at
/// least n-1. This implementation uses n, and the perturbation adversary
/// drives n-1 processes to cover n-1 distinct registers (experiment E4).
///
/// Processes 0..n-2 are updaters (update(k) with k = 1, 2, ... per op);
/// process n-1 is the scanner.
class SwmrSnapshot final : public LongLivedObject {
 public:
  explicit SwmrSnapshot(int n);

  std::string name() const override;
  int num_processes() const override { return n_; }
  int num_registers() const override { return n_; }
  sim::Value initial_register() const override { return 0; }
  sim::State initial_state(sim::ProcId p) const override;
  sim::PendingOp poised(sim::ProcId p, sim::State s) const override;
  sim::State after_read(sim::ProcId p, sim::State s,
                        sim::Value observed) const override;
  sim::State after_write(sim::ProcId p, sim::State s) const override;
  sim::State after_complete(sim::ProcId p, sim::State s) const override;

  static sim::Value pack_entry(sim::Value seq, sim::Value value) {
    return (seq << 32) | (value & 0xffffffff);
  }
  static sim::Value entry_seq(sim::Value e) { return e >> 32; }
  static sim::Value entry_value(sim::Value e) { return e & 0xffffffff; }

 private:
  int n_;
};

}  // namespace tsb::perturb
