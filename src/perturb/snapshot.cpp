#include "perturb/snapshot.hpp"

#include <cassert>

#include "util/interner.hpp"

namespace tsb::perturb {

// Updater p (< n-1) state: (count << 1) | phase, phase 0 = poised write,
// phase 1 = poised complete. Scanner (p == n-1) state: interned byte string
// (see below); the interner lives in the object and is only touched from
// the single-threaded simulation.
namespace {

struct ScanState {
  int phase = 0;              // 0 = first collect, 1 = second collect
  int pos = 0;                // next register to read
  std::vector<sim::Value> view1;    // candidate view (phase 1)
  std::vector<sim::Value> partial;  // entries read in the current collect
  bool done = false;          // poised to complete with `digest`
  sim::Value digest = 0;

  std::string serialize() const {
    util::ByteWriter w;
    w.put_u8(static_cast<std::uint8_t>(phase));
    w.put_u8(static_cast<std::uint8_t>(pos));
    w.put_u8(done ? 1 : 0);
    w.put_i64(digest);
    w.put_i32(static_cast<std::int32_t>(view1.size()));
    for (sim::Value v : view1) w.put_i64(v);
    w.put_i32(static_cast<std::int32_t>(partial.size()));
    for (sim::Value v : partial) w.put_i64(v);
    return w.str();
  }

  static ScanState deserialize(const std::string& bytes) {
    util::ByteReader r(bytes);
    ScanState s;
    s.phase = r.get_u8();
    s.pos = r.get_u8();
    s.done = r.get_u8() != 0;
    s.digest = r.get_i64();
    const auto n1 = static_cast<std::size_t>(r.get_i32());
    s.view1.reserve(n1);
    for (std::size_t i = 0; i < n1; ++i) s.view1.push_back(r.get_i64());
    const auto n2 = static_cast<std::size_t>(r.get_i32());
    s.partial.reserve(n2);
    for (std::size_t i = 0; i < n2; ++i) s.partial.push_back(r.get_i64());
    return s;
  }
};

// One interner per snapshot instance would force mutable members through
// the const Protocol API; a function-local singleton keyed by nothing is
// shared across instances, which is harmless: states are only compared
// within one instance and ids are stable.
util::StateInterner& interner() {
  static util::StateInterner instance;
  return instance;
}

sim::State intern_scan(const ScanState& s) {
  return interner().intern(s.serialize());
}

ScanState lookup_scan(sim::State id) {
  return ScanState::deserialize(interner().lookup(id));
}

}  // namespace

SwmrSnapshot::SwmrSnapshot(int n) : n_(n) { assert(n >= 2); }

std::string SwmrSnapshot::name() const {
  return "swmr-snapshot(n=" + std::to_string(n_) + ")";
}

sim::State SwmrSnapshot::initial_state(sim::ProcId p) const {
  if (p < n_ - 1) return 0;
  return intern_scan(ScanState{});
}

sim::PendingOp SwmrSnapshot::poised(sim::ProcId p, sim::State s) const {
  if (p < n_ - 1) {
    const sim::Value count = s >> 1;
    if ((s & 1) == 0) {
      return sim::PendingOp::write(p, pack_entry(count + 1, count + 1));
    }
    return sim::PendingOp::decide(0);  // update() returns ack
  }
  const ScanState scan = lookup_scan(s);
  if (scan.done) return sim::PendingOp::decide(scan.digest);
  return sim::PendingOp::read(scan.pos);
}

sim::State SwmrSnapshot::after_read(sim::ProcId p, sim::State s,
                                    sim::Value observed) const {
  assert(p == n_ - 1);
  (void)p;
  ScanState scan = lookup_scan(s);
  assert(!scan.done);
  scan.partial.push_back(observed);
  ++scan.pos;
  if (scan.pos < n_) return intern_scan(scan);

  // Collect finished.
  if (scan.phase == 0) {
    scan.phase = 1;
    scan.pos = 0;
    scan.view1 = std::move(scan.partial);
    scan.partial.clear();
    return intern_scan(scan);
  }
  if (scan.partial == scan.view1) {
    // Double collect succeeded: the common view is an atomic snapshot.
    ScanState done;
    done.done = true;
    for (sim::Value e : scan.partial) done.digest += entry_value(e);
    return intern_scan(done);
  }
  // Retry: the latest collect becomes the candidate.
  ScanState retry;
  retry.phase = 1;
  retry.pos = 0;
  retry.view1 = std::move(scan.partial);
  return intern_scan(retry);
}

sim::State SwmrSnapshot::after_write(sim::ProcId p, sim::State s) const {
  assert(p < n_ - 1);
  (void)p;
  return s | 1;
}

sim::State SwmrSnapshot::after_complete(sim::ProcId p, sim::State s) const {
  if (p < n_ - 1) return ((s >> 1) + 1) << 1;
  return intern_scan(ScanState{});
}

}  // namespace tsb::perturb
