#include "perturb/counter.hpp"

#include <cassert>

namespace tsb::perturb {

// ---------------------------------------------------------------------------
// SwmrCounter
//
// Incrementer state: (count << 1) | phase, phase 0 = poised to write own
// register, phase 1 = poised to complete.
// Reader state:      (sum << 8) | (pos << 1) | 1-bit marker unused; the
// reader is identified by its process id, so states need no role tag.
// ---------------------------------------------------------------------------

SwmrCounter::SwmrCounter(int n) : n_(n) { assert(n >= 2); }

std::string SwmrCounter::name() const {
  return "swmr-counter(n=" + std::to_string(n_) + ")";
}

sim::State SwmrCounter::initial_state(sim::ProcId) const { return 0; }

sim::PendingOp SwmrCounter::poised(sim::ProcId p, sim::State s) const {
  if (p < n_ - 1) {
    const sim::Value count = s >> 1;
    if ((s & 1) == 0) return sim::PendingOp::write(p, count + 1);
    return sim::PendingOp::decide(count + 1);  // inc() returns own new count
  }
  // Reader: one read per register, then complete with the sum.
  const sim::Value sum = s >> 8;
  const int pos = static_cast<int>((s >> 1) & 0x7f);
  if (pos < n_) return sim::PendingOp::read(pos);
  return sim::PendingOp::decide(sum);
}

sim::State SwmrCounter::after_read(sim::ProcId p, sim::State s,
                                   sim::Value observed) const {
  assert(p == n_ - 1);
  (void)p;
  const sim::Value sum = (s >> 8) + observed;
  const sim::Value pos = ((s >> 1) & 0x7f) + 1;
  return (sum << 8) | (pos << 1);
}

sim::State SwmrCounter::after_write(sim::ProcId p, sim::State s) const {
  assert(p < n_ - 1);
  (void)p;
  return s | 1;  // same count, now poised to complete
}

sim::State SwmrCounter::after_complete(sim::ProcId p, sim::State s) const {
  if (p < n_ - 1) {
    const sim::Value count = (s >> 1) + 1;
    return count << 1;  // next inc(), poised to write count+1
  }
  return 0;  // reader: fresh collect
}

// ---------------------------------------------------------------------------
// CyclicCounter
//
// Incrementer state: phase 0 = poised to read R[target]; phase 1 = poised
// to write R[target] := observed+1; phase 2 = poised to complete. Layout:
// (observed << 10) | (target << 2) | phase, plus op index to advance the
// target — the target itself carries it (target = ops % m).
// Reader: same collect layout as SwmrCounter but over m registers.
// ---------------------------------------------------------------------------

CyclicCounter::CyclicCounter(int n, int m) : n_(n), m_(m) {
  assert(n >= 2 && m >= 1);
}

std::string CyclicCounter::name() const {
  return "cyclic-counter(n=" + std::to_string(n_) +
         ", m=" + std::to_string(m_) + ")";
}

sim::State CyclicCounter::initial_state(sim::ProcId) const { return 0; }

sim::PendingOp CyclicCounter::poised(sim::ProcId p, sim::State s) const {
  if (p < n_ - 1) {
    const int phase = static_cast<int>(s & 0x3);
    const int target = static_cast<int>((s >> 2) & 0xff);
    const sim::Value observed = s >> 10;
    if (phase == 0) return sim::PendingOp::read(target);
    if (phase == 1) return sim::PendingOp::write(target, observed + 1);
    return sim::PendingOp::decide(observed + 1);
  }
  const sim::Value sum = s >> 8;
  const int pos = static_cast<int>((s >> 1) & 0x7f);
  if (pos < m_) return sim::PendingOp::read(pos);
  return sim::PendingOp::decide(sum);
}

sim::State CyclicCounter::after_read(sim::ProcId p, sim::State s,
                                     sim::Value observed) const {
  if (p < n_ - 1) {
    const sim::State target = (s >> 2) & 0xff;
    return (observed << 10) | (target << 2) | 1;
  }
  const sim::Value sum = (s >> 8) + observed;
  const sim::Value pos = ((s >> 1) & 0x7f) + 1;
  return (sum << 8) | (pos << 1);
}

sim::State CyclicCounter::after_write(sim::ProcId p, sim::State s) const {
  assert(p < n_ - 1);
  (void)p;
  return (s & ~static_cast<sim::State>(0x3)) | 2;  // poised to complete
}

sim::State CyclicCounter::after_complete(sim::ProcId p, sim::State s) const {
  if (p < n_ - 1) {
    const int target = static_cast<int>((s >> 2) & 0xff);
    const int next_target = (target + 1) % m_;
    return static_cast<sim::State>(next_target) << 2;  // phase 0
  }
  return 0;
}

}  // namespace tsb::perturb
