#include "perturb/long_lived.hpp"

#include <cassert>

namespace tsb::perturb {

LLConfig ll_initial(const LongLivedObject& obj) {
  LLConfig c;
  const auto n = static_cast<std::size_t>(obj.num_processes());
  c.states.reserve(n);
  for (sim::ProcId p = 0; p < obj.num_processes(); ++p) {
    c.states.push_back(obj.initial_state(p));
  }
  c.regs.assign(static_cast<std::size_t>(obj.num_registers()),
                obj.initial_register());
  c.completed.assign(n, 0);
  c.last_result.assign(n, 0);
  return c;
}

LLConfig ll_step(const LongLivedObject& obj, const LLConfig& c, sim::ProcId p,
                 sim::Trace* trace) {
  const auto up = static_cast<std::size_t>(p);
  const sim::State s = c.states[up];
  const sim::PendingOp op = obj.poised(p, s);

  LLConfig next = c;
  sim::StepRecord rec{p, op, 0};
  switch (op.kind) {
    case sim::OpKind::kRead: {
      const sim::Value observed = c.regs[static_cast<std::size_t>(op.reg)];
      rec.read_result = observed;
      next.states[up] = obj.after_read(p, s, observed);
      break;
    }
    case sim::OpKind::kWrite:
      next.regs[static_cast<std::size_t>(op.reg)] = op.value;
      next.states[up] = obj.after_write(p, s);
      break;
    case sim::OpKind::kDecide:  // operation completion
      next.completed[up] += 1;
      next.last_result[up] = op.value;
      next.states[up] = obj.after_complete(p, s);
      break;
  }
  if (trace != nullptr) trace->records.push_back(rec);
  return next;
}

std::optional<LLSoloRun> ll_run_ops(const LongLivedObject& obj,
                                    const LLConfig& c, sim::ProcId p,
                                    std::int64_t ops, std::size_t max_steps) {
  LLSoloRun out;
  out.config = c;
  const std::int64_t target = c.completed[static_cast<std::size_t>(p)] + ops;
  while (out.config.completed[static_cast<std::size_t>(p)] < target) {
    if (out.steps++ >= max_steps) return std::nullopt;
    out.config = ll_step(obj, out.config, p);
  }
  out.last_result = out.config.last_result[static_cast<std::size_t>(p)];
  return out;
}

std::optional<sim::RegId> ll_covered_register(const LongLivedObject& obj,
                                              const LLConfig& c,
                                              sim::ProcId p) {
  const sim::PendingOp op =
      obj.poised(p, c.states[static_cast<std::size_t>(p)]);
  if (op.is_write()) return op.reg;
  return std::nullopt;
}

}  // namespace tsb::perturb
