#include "perturb/fetch_add.hpp"

#include <cassert>

namespace tsb::perturb {

// ---------------------------------------------------------------------------
// FetchAddCounter
// State: (sum << 24) | (count << 10) | (pos << 2) | phase.
//   phase 0: reading register `pos` of the collect
//   phase 1: poised to write own register := count + 1 (incrementers)
//   phase 2: poised to complete, returning `sum`
// `count` mirrors the process's own register (single writer).
// ---------------------------------------------------------------------------

namespace {
constexpr sim::State fa_make(sim::Value sum, sim::Value count, int pos,
                             int phase) {
  return (sum << 24) | (count << 10) | (static_cast<sim::State>(pos) << 2) |
         phase;
}
constexpr sim::Value fa_sum(sim::State s) { return s >> 24; }
constexpr sim::Value fa_count(sim::State s) { return (s >> 10) & 0x3fff; }
constexpr int fa_pos(sim::State s) { return static_cast<int>((s >> 2) & 0xff); }
constexpr int fa_phase(sim::State s) { return static_cast<int>(s & 0x3); }
}  // namespace

FetchAddCounter::FetchAddCounter(int n) : n_(n) { assert(n >= 2); }

std::string FetchAddCounter::name() const {
  return "fetch-add(n=" + std::to_string(n_) + ")";
}

sim::State FetchAddCounter::initial_state(sim::ProcId) const {
  return fa_make(0, 0, 0, 0);
}

sim::PendingOp FetchAddCounter::poised(sim::ProcId p, sim::State s) const {
  switch (fa_phase(s)) {
    case 0:
      return sim::PendingOp::read(fa_pos(s));
    case 1:
      return sim::PendingOp::write(p, fa_count(s) + 1);
    default:
      return sim::PendingOp::decide(fa_sum(s));
  }
}

sim::State FetchAddCounter::after_read(sim::ProcId p, sim::State s,
                                       sim::Value observed) const {
  assert(fa_phase(s) == 0);
  const sim::Value sum = fa_sum(s) + observed;
  const int pos = fa_pos(s) + 1;
  if (pos < n_) return fa_make(sum, fa_count(s), pos, 0);
  // Collect done: incrementers bump their register, the observer (n-1)
  // completes directly — fetch_add(0).
  return fa_make(sum, fa_count(s), 0, p < n_ - 1 ? 1 : 2);
}

sim::State FetchAddCounter::after_write(sim::ProcId p, sim::State s) const {
  assert(fa_phase(s) == 1 && p < n_ - 1);
  (void)p;
  return fa_make(fa_sum(s), fa_count(s) + 1, 0, 2);
}

sim::State FetchAddCounter::after_complete(sim::ProcId, sim::State s) const {
  return fa_make(0, fa_count(s), 0, 0);  // fresh collect, keep own mirror
}

// ---------------------------------------------------------------------------
// ModuloCounter
// Incrementer state: (count << 1) | phase (0 write, 1 complete) — as in
// SwmrCounter. Reader: (sum << 8) | (pos << 1); completes with sum % k.
// ---------------------------------------------------------------------------

ModuloCounter::ModuloCounter(int n, std::int64_t k) : n_(n), k_(k) {
  assert(n >= 2 && k >= 2);
}

std::string ModuloCounter::name() const {
  return "modulo-counter(n=" + std::to_string(n_) +
         ", k=" + std::to_string(k_) + ")";
}

sim::State ModuloCounter::initial_state(sim::ProcId) const { return 0; }

sim::PendingOp ModuloCounter::poised(sim::ProcId p, sim::State s) const {
  if (p < n_ - 1) {
    const sim::Value count = s >> 1;
    if ((s & 1) == 0) return sim::PendingOp::write(p, count + 1);
    return sim::PendingOp::decide((count + 1) % k_);
  }
  const sim::Value sum = s >> 8;
  const int pos = static_cast<int>((s >> 1) & 0x7f);
  if (pos < n_) return sim::PendingOp::read(pos);
  return sim::PendingOp::decide(sum % k_);
}

sim::State ModuloCounter::after_read(sim::ProcId p, sim::State s,
                                     sim::Value observed) const {
  assert(p == n_ - 1);
  (void)p;
  const sim::Value sum = (s >> 8) + observed;
  const sim::Value pos = ((s >> 1) & 0x7f) + 1;
  return (sum << 8) | (pos << 1);
}

sim::State ModuloCounter::after_write(sim::ProcId p, sim::State s) const {
  assert(p < n_ - 1);
  (void)p;
  return s | 1;
}

sim::State ModuloCounter::after_complete(sim::ProcId p, sim::State s) const {
  if (p < n_ - 1) return ((s >> 1) + 1) << 1;
  return 0;
}

}  // namespace tsb::perturb
