#pragma once

#include "perturb/long_lived.hpp"

namespace tsb::perturb {

/// Wait-free counter from n single-writer registers (one per process):
/// inc() writes own register := own count + 1 (one step); read() collects
/// all registers and returns their sum. Space complexity n — matching the
/// JTT lower bound of n-1 up to one register, like the implementations the
/// paper calls "nearly optimal".
///
/// Processes 0..n-2 are incrementers; process n-1 is the reader (the
/// observer pn of the perturbation argument).
class SwmrCounter final : public LongLivedObject {
 public:
  explicit SwmrCounter(int n);

  std::string name() const override;
  int num_processes() const override { return n_; }
  int num_registers() const override { return n_; }
  sim::Value initial_register() const override { return 0; }
  sim::State initial_state(sim::ProcId p) const override;
  sim::PendingOp poised(sim::ProcId p, sim::State s) const override;
  sim::State after_read(sim::ProcId p, sim::State s,
                        sim::Value observed) const override;
  sim::State after_write(sim::ProcId p, sim::State s) const override;
  sim::State after_complete(sim::ProcId p, sim::State s) const override;

 private:
  int n_;
};

/// Deliberately space-starved counter: m < n-1 shared registers, inc()
/// spreads writes round-robin (read target, write target+delta... here:
/// read R[i], write R[i]+1 with i cycling per operation), read() sums.
///
/// By JTT this cannot be a correct (linearizable, solo-terminating)
/// counter: with fewer than n-1 registers, updates can be obliterated by
/// covering writes. The perturbation adversary exhibits the violation —
/// completed inc()s that a subsequent read() does not observe. Kept as the
/// negative control for experiment E4.
class CyclicCounter final : public LongLivedObject {
 public:
  CyclicCounter(int n, int m);

  std::string name() const override;
  int num_processes() const override { return n_; }
  int num_registers() const override { return m_; }
  sim::Value initial_register() const override { return 0; }
  sim::State initial_state(sim::ProcId p) const override;
  sim::PendingOp poised(sim::ProcId p, sim::State s) const override;
  sim::State after_read(sim::ProcId p, sim::State s,
                        sim::Value observed) const override;
  sim::State after_write(sim::ProcId p, sim::State s) const override;
  sim::State after_complete(sim::ProcId p, sim::State s) const override;

 private:
  int n_;
  int m_;
};

}  // namespace tsb::perturb
