#include "perturb/perturbation.hpp"

#include <cassert>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_sink.hpp"

namespace tsb::perturb {

namespace {
LLConfig apply_block_write(
    const LongLivedObject& obj, LLConfig cfg,
    const std::vector<std::pair<sim::ProcId, sim::RegId>>& covering) {
  for (auto [p, r] : covering) {
    // The covering process must still be poised at its recorded register:
    // it has taken no steps since it was captured.
    assert(ll_covered_register(obj, cfg, p) == std::optional<sim::RegId>(r));
    cfg = ll_step(obj, cfg, p);
  }
  return cfg;
}
}  // namespace

PerturbationAdversary::Demo PerturbationAdversary::run_demo(
    const LLConfig& cfg,
    const std::vector<std::pair<sim::ProcId, sim::RegId>>& covering,
    sim::ProcId perturber, int stage) {
  Demo demo;
  demo.stage = stage;
  demo.perturber = perturber;
  demo.squeezed_ops = opts_.squeeze_ops;
  const sim::ProcId observer = obj_.num_processes() - 1;

  // Branch without the squeeze: block write, then one observer operation.
  {
    LLConfig c = apply_block_write(obj_, cfg, covering);
    auto run = ll_run_ops(obj_, c, observer, 1, opts_.escape_step_cap);
    assert(run.has_value() && "observer operation did not terminate solo");
    demo.observer_without = run->last_result;
  }
  // Branch with the squeeze in front of the block write.
  {
    auto squeezed =
        ll_run_ops(obj_, cfg, perturber, opts_.squeeze_ops,
                   opts_.escape_step_cap);
    assert(squeezed.has_value() && "squeezed operations did not terminate");
    LLConfig c = apply_block_write(obj_, squeezed->config, covering);
    auto run = ll_run_ops(obj_, c, observer, 1, opts_.escape_step_cap);
    assert(run.has_value());
    demo.observer_with = run->last_result;
  }
  demo.visible = demo.observer_without != demo.observer_with;
  return demo;
}

PerturbationAdversary::Result PerturbationAdversary::run() {
  obs::Span span("perturb.run");
  obs::Registry& reg = obs::Registry::global();
  Result out;
  const int n = obj_.num_processes();
  assert(n >= 2);

  LLConfig cfg = ll_initial(obj_);
  std::set<sim::RegId> covered;

  for (sim::ProcId worker = 0; worker < n - 1; ++worker) {
    const int stage = static_cast<int>(out.covering.size());

    if (opts_.run_demos) {
      Demo demo = run_demo(cfg, out.covering, worker, stage);
      if (!demo.visible) ++out.invisible_squeezes;
      out.narrative += "stage " + std::to_string(stage) + ": squeeze of " +
                       std::to_string(demo.squeezed_ops) + " ops by p" +
                       std::to_string(worker) + " is " +
                       (demo.visible ? "visible" : "INVISIBLE (lost updates)") +
                       " to the observer (" +
                       std::to_string(demo.observer_without) + " -> " +
                       std::to_string(demo.observer_with) + ")\n";
      out.demos.push_back(demo);
    }

    // Escape: run the worker until it is poised to write a fresh register.
    bool escaped = false;
    for (std::size_t step = 0; step < opts_.escape_step_cap; ++step) {
      const sim::PendingOp op =
          obj_.poised(worker, cfg.states[static_cast<std::size_t>(worker)]);
      if (op.is_write() && covered.count(op.reg) == 0) {
        covered.insert(op.reg);
        out.covering.emplace_back(worker, op.reg);
        reg.counter("perturb.stages").add();
        reg.counter("perturb.escape_steps").add(step);
        obs::TraceSink::global().counter(
            "perturb.covered", static_cast<std::int64_t>(covered.size()));
        out.narrative += "stage " + std::to_string(stage) + ": p" +
                         std::to_string(worker) + " covers R" +
                         std::to_string(op.reg) + " after " +
                         std::to_string(step) + " steps\n";
        escaped = true;
        break;
      }
      cfg = ll_step(obj_, cfg, worker);
    }
    if (!escaped) {
      out.failed_stage = static_cast<int>(worker);
      out.narrative += "stage " + std::to_string(stage) + ": p" +
                       std::to_string(worker) +
                       " never escaped the covered set — the object cannot "
                       "be a correct perturbable implementation\n";
      break;
    }
  }

  out.distinct_registers = static_cast<int>(covered.size());
  out.covering_complete = out.distinct_registers == n - 1;
  reg.counter("perturb.demos").add(out.demos.size());
  reg.counter("perturb.invisible_squeezes").add(
      static_cast<std::uint64_t>(out.invisible_squeezes));
  span.set_value(out.distinct_registers);
  return out;
}

}  // namespace tsb::perturb
