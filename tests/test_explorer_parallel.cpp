// The ParallelExplorer's determinism contract: for any thread count it must
// be bit-identical to the sequential Explorer — same visited configurations
// in the same visit order, same ids, same truncated/aborted verdicts, and
// witness schedules that replay to the same configurations. These tests
// also run under TSan in CI to certify the phase-A/phase-B data sharing.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "consensus/ballot.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "sim/explorer.hpp"
#include "sim/parallel_explorer.hpp"
#include "toy_protocol.hpp"

namespace tsb::sim {
namespace {

using test::ToyProtocol;

struct Snapshot {
  std::vector<Config> visit_order;  ///< materialized, in visit order
  std::vector<ConfigId> ids;        ///< id each visit reported
  ExploreResult result;
};

template <typename ExplorerT>
Snapshot snapshot(ExplorerT& explorer, const Config& root, ProcSet p) {
  Snapshot s;
  s.result = explorer.explore(root, p, [&](const ConfigView& c) {
    s.visit_order.push_back(c.materialize());
    s.ids.push_back(c.id);
    return true;
  });
  return s;
}

void expect_identical(const Snapshot& a, const Snapshot& b) {
  EXPECT_EQ(a.result.visited, b.result.visited);
  EXPECT_EQ(a.result.truncated, b.result.truncated);
  EXPECT_EQ(a.result.aborted, b.result.aborted);
  EXPECT_EQ(a.ids, b.ids);
  ASSERT_EQ(a.visit_order.size(), b.visit_order.size());
  for (std::size_t i = 0; i < a.visit_order.size(); ++i) {
    EXPECT_EQ(a.visit_order[i], b.visit_order[i]) << "at visit " << i;
  }
}

TEST(ParallelExplorer, MatchesSequentialOnToyProtocol) {
  ToyProtocol proto(3);
  const Config root = initial_config(proto, {3, 4, 5});
  const ProcSet everyone = ProcSet::first_n(3);

  Explorer seq(proto);
  const Snapshot expected = snapshot(seq, root, everyone);
  ASSERT_FALSE(expected.result.truncated);

  for (int threads : {1, 2, 3, 8}) {
    ParallelExplorer par(proto, {.threads = threads});
    expect_identical(expected, snapshot(par, root, everyone));
  }
}

TEST(ParallelExplorer, MatchesSequentialOnBallotConsensus) {
  const int n = 3;
  consensus::BallotConsensus proto(n, 2 * n);
  const Config root = initial_config(proto, {0, 1, 1});
  const ProcSet everyone = ProcSet::first_n(n);

  Explorer seq(proto);
  const Snapshot expected = snapshot(seq, root, everyone);
  ASSERT_FALSE(expected.result.truncated);
  ASSERT_GT(expected.result.visited, 1000u);  // a real workload, not a toy

  for (int threads : {2, 8}) {
    ParallelExplorer par(proto, {.threads = threads});
    expect_identical(expected, snapshot(par, root, everyone));
  }
}

TEST(ParallelExplorer, MatchesSequentialOnProcessRestriction) {
  consensus::BallotConsensus proto(3, 6);
  const Config root = initial_config(proto, {1, 0, 1});
  const ProcSet sub = ProcSet::first_n(3).without(1);

  Explorer seq(proto);
  const Snapshot expected = snapshot(seq, root, sub);
  ParallelExplorer par(proto, {.threads = 4});
  expect_identical(expected, snapshot(par, root, sub));
}

TEST(ParallelExplorer, MatchesSequentialTruncationPoint) {
  // The cap must cut the enumeration at exactly the same configuration.
  consensus::BallotConsensus proto(3, 6);
  const Config root = initial_config(proto, {0, 1, 0});
  const ProcSet everyone = ProcSet::first_n(3);

  for (std::size_t cap : {2u, 50u, 500u}) {
    Explorer seq(proto, {.max_configs = cap});
    const Snapshot expected = snapshot(seq, root, everyone);
    EXPECT_TRUE(expected.result.truncated);
    ParallelExplorer par(proto, {.max_configs = cap, .threads = 3});
    expect_identical(expected, snapshot(par, root, everyone));
  }
}

TEST(ParallelExplorer, WitnessSchedulesReplayToTheirConfigs) {
  const int n = 3;
  consensus::BallotConsensus proto(n, 2 * n);
  const Config root = initial_config(proto, {1, 1, 0});
  const ProcSet everyone = ProcSet::first_n(n);

  // Abort at the first configuration where any process has decided; the
  // witness must replay to exactly that configuration.
  ParallelExplorer par(proto, {.threads = 8});
  auto result = par.explore(root, everyone, [&](const ConfigView& c) {
    for (ProcId p = 0; p < n; ++p) {
      if (decision_of(proto, c, p)) return false;
    }
    return true;
  });
  ASSERT_TRUE(result.aborted);
  ASSERT_TRUE(result.abort_config.has_value());

  const auto witness = par.witness(*result.abort_config);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->only(everyone));
  EXPECT_EQ(run(proto, root, *witness), *result.abort_config);

  // Sequential exploration aborts on the same configuration with an
  // equivalent witness.
  Explorer seq(proto);
  auto seq_result = seq.explore(root, everyone, [&](const ConfigView& c) {
    for (ProcId p = 0; p < n; ++p) {
      if (decision_of(proto, c, p)) return false;
    }
    return true;
  });
  ASSERT_TRUE(seq_result.aborted);
  EXPECT_EQ(*seq_result.abort_config, *result.abort_config);
  EXPECT_EQ(seq.witness(*seq_result.abort_config), witness);
}

TEST(ParallelExplorer, StatsAndTraceInstrumentationIsPurelyObservational) {
  // With per-level stats streaming and tracing both live, the enumeration
  // must still be bit-identical to the uninstrumented sequential explorer —
  // the forensics layer observes, it never steers. Runs under TSan in CI,
  // which also certifies the stats paths' data sharing.
  const int n = 3;
  consensus::BallotConsensus proto(n, 2 * n);
  const Config root = initial_config(proto, {0, 1, 1});
  const ProcSet everyone = ProcSet::first_n(n);

  Explorer plain(proto);
  const Snapshot expected = snapshot(plain, root, everyone);

  obs::TraceSink::global().enable(1 << 14);
  const std::string stats_path =
      ::testing::TempDir() + "explorer_stats_determinism.jsonl";
  ASSERT_TRUE(obs::stats_sink().open(stats_path));

  Explorer seq(proto, {.stats_min_visited = 0});
  expect_identical(expected, snapshot(seq, root, everyone));
  for (int threads : {2, 8}) {
    ParallelExplorer par(proto,
                         {.threads = threads, .stats_min_visited = 0});
    expect_identical(expected, snapshot(par, root, everyone));
  }

  const std::uint64_t records = obs::stats_sink().lines();
  obs::stats_sink().close();
  obs::TraceSink::global().disable();
  // One "explore.done" per run plus per-level records (min_visited = 0
  // keeps them all): three instrumented runs must have left a trail.
  EXPECT_GE(records, 3u);
}

TEST(ParallelExplorer, RepeatedEightThreadRunsAreIdentical) {
  const int n = 3;
  consensus::BallotConsensus proto(n, 2 * n);
  const Config root = initial_config(proto, {0, 0, 1});
  const ProcSet everyone = ProcSet::first_n(n);

  ParallelExplorer par(proto, {.threads = 8});
  const Snapshot first = snapshot(par, root, everyone);
  const Snapshot second = snapshot(par, root, everyone);
  expect_identical(first, second);

  ParallelExplorer fresh(proto, {.threads = 8});
  expect_identical(first, snapshot(fresh, root, everyone));
}

}  // namespace
}  // namespace tsb::sim
