// The work-stealing ParallelExplorer's determinism contract (relaxed from
// the old level-synchronous design's bit-identical rule): on COMPLETE runs
// the visited configuration SET — and therefore the visited count and any
// order-independent verdict — is identical to the sequential Explorer's
// for every thread count. Discovery order, id assignment, and witness
// schedules are machine-dependent, but every witness must replay to its
// configuration. Truncated runs never claim completeness: whatever they
// visit is a subset of the true reachable set. These tests force the
// parallel path with a tiny parallel_threshold and run under TSan in CI to
// certify the deque/shard/arena data sharing.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "consensus/ballot.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "sim/explorer.hpp"
#include "sim/parallel_explorer.hpp"
#include "toy_protocol.hpp"

namespace tsb::sim {
namespace {

using test::ToyProtocol;

struct SetSnapshot {
  std::vector<std::vector<Value>> packed;  ///< visited set, sorted
  ExploreResult result;
};

/// Run an exploration and capture the visited configurations as packed
/// word vectors, sorted — the canonical form two explorers must agree on.
template <typename ExplorerT>
SetSnapshot set_snapshot(const Protocol& proto, ExplorerT& explorer,
                         const Config& root, ProcSet p) {
  ConfigArena packer(proto.num_processes(), proto.num_registers());
  SetSnapshot s;
  s.result = explorer.explore(root, p, [&](const ConfigView& c) {
    const Config cfg = c.materialize();
    packer.pack(cfg, packer.scratch());
    s.packed.emplace_back(packer.scratch(),
                          packer.scratch() + packer.words_per_config());
    return true;
  });
  std::sort(s.packed.begin(), s.packed.end());
  return s;
}

void expect_same_set(const SetSnapshot& a, const SetSnapshot& b) {
  EXPECT_EQ(a.result.visited, b.result.visited);
  EXPECT_EQ(a.result.truncated, b.result.truncated);
  EXPECT_EQ(a.result.aborted, b.result.aborted);
  ASSERT_EQ(a.packed.size(), b.packed.size());
  EXPECT_EQ(a.packed, b.packed);
}

void expect_no_duplicate_visits(const SetSnapshot& s) {
  // Each configuration is visited exactly once: the sorted set has no
  // adjacent duplicates and its size matches the reported visited count.
  EXPECT_EQ(s.packed.size(), s.result.visited);
  EXPECT_EQ(std::adjacent_find(s.packed.begin(), s.packed.end()),
            s.packed.end());
}

TEST(ParallelExplorer, MatchesSequentialOnToyProtocol) {
  ToyProtocol proto(3);
  const Config root = initial_config(proto, {3, 4, 5});
  const ProcSet everyone = ProcSet::first_n(3);

  Explorer seq(proto);
  const SetSnapshot expected = set_snapshot(proto, seq, root, everyone);
  ASSERT_FALSE(expected.result.truncated);

  for (int threads : {1, 2, 3, 8}) {
    // parallel_threshold = 1 forces even this tiny space through the
    // work-stealing machinery.
    ParallelExplorer par(proto, {.threads = threads,
                                 .chunk_configs = 4,
                                 .parallel_threshold = 1});
    const SetSnapshot got = set_snapshot(proto, par, root, everyone);
    expect_same_set(expected, got);
    expect_no_duplicate_visits(got);
  }
}

TEST(ParallelExplorer, MatchesSequentialOnBallotConsensus) {
  const int n = 3;
  consensus::BallotConsensus proto(n, 2 * n);
  const Config root = initial_config(proto, {0, 1, 1});
  const ProcSet everyone = ProcSet::first_n(n);

  Explorer seq(proto);
  const SetSnapshot expected = set_snapshot(proto, seq, root, everyone);
  ASSERT_FALSE(expected.result.truncated);
  ASSERT_GT(expected.result.visited, 1000u);  // a real workload, not a toy

  for (int threads : {2, 8}) {
    // Small chunks + a low threshold maximize steal traffic.
    ParallelExplorer par(proto, {.threads = threads,
                                 .chunk_configs = 16,
                                 .parallel_threshold = 64});
    const SetSnapshot got = set_snapshot(proto, par, root, everyone);
    expect_same_set(expected, got);
    expect_no_duplicate_visits(got);
    EXPECT_TRUE(par.last_run().went_parallel);
  }
}

TEST(ParallelExplorer, MatchesSequentialOnProcessRestriction) {
  consensus::BallotConsensus proto(3, 6);
  const Config root = initial_config(proto, {1, 0, 1});
  const ProcSet sub = ProcSet::first_n(3).without(1);

  Explorer seq(proto);
  const SetSnapshot expected = set_snapshot(proto, seq, root, sub);
  ParallelExplorer par(proto, {.threads = 4,
                               .chunk_configs = 8,
                               .parallel_threshold = 16});
  expect_same_set(expected, set_snapshot(proto, par, root, sub));
}

TEST(ParallelExplorer, TruncationIsSoundNeverClaimsCompleteness) {
  // A capped run stops at a machine-dependent point, but: it must report
  // truncated, never visit more than the cap allows, visit nothing twice,
  // and visit only genuinely reachable configurations (a subset of the
  // complete enumeration). Exit-4-style truncation proves positives, never
  // negatives.
  consensus::BallotConsensus proto(3, 6);
  const Config root = initial_config(proto, {0, 1, 0});
  const ProcSet everyone = ProcSet::first_n(3);

  Explorer full(proto);
  const SetSnapshot complete = set_snapshot(proto, full, root, everyone);
  ASSERT_FALSE(complete.result.truncated);

  for (std::size_t cap : {2u, 50u, 500u}) {
    for (int threads : {1, 3}) {
      ParallelExplorer par(proto, {.max_configs = cap,
                                   .threads = threads,
                                   .chunk_configs = 4,
                                   .parallel_threshold = 8});
      const SetSnapshot got = set_snapshot(proto, par, root, everyone);
      EXPECT_TRUE(got.result.truncated);
      EXPECT_FALSE(got.result.aborted);
      EXPECT_LE(got.result.visited, cap);
      expect_no_duplicate_visits(got);
      EXPECT_TRUE(std::includes(complete.packed.begin(),
                                complete.packed.end(), got.packed.begin(),
                                got.packed.end()))
          << "cap " << cap << " threads " << threads
          << " visited a configuration the sequential explorer never saw";
    }
  }
}

TEST(ParallelExplorer, WitnessSchedulesReplayToTheirConfigs) {
  const int n = 3;
  consensus::BallotConsensus proto(n, 2 * n);
  const Config root = initial_config(proto, {1, 1, 0});
  const ProcSet everyone = ProcSet::first_n(n);

  // Abort at the first configuration where any process has decided. Which
  // decided configuration aborts the run is order-dependent (and thus not
  // the sequential one's), but the witness must replay to exactly the
  // configuration reported.
  ParallelExplorer par(proto, {.threads = 8,
                               .chunk_configs = 16,
                               .parallel_threshold = 64});
  auto result = par.explore(root, everyone, [&](const ConfigView& c) {
    for (ProcId p = 0; p < n; ++p) {
      if (decision_of(proto, c, p)) return false;
    }
    return true;
  });
  ASSERT_TRUE(result.aborted);
  ASSERT_TRUE(result.abort_config.has_value());

  const auto witness = par.witness(*result.abort_config);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->only(everyone));
  EXPECT_EQ(run(proto, root, *witness), *result.abort_config);

  // The sequential explorer also aborts (some decided configuration is
  // reachable), and its own witness replays too.
  Explorer seq(proto);
  auto seq_result = seq.explore(root, everyone, [&](const ConfigView& c) {
    for (ProcId p = 0; p < n; ++p) {
      if (decision_of(proto, c, p)) return false;
    }
    return true;
  });
  ASSERT_TRUE(seq_result.aborted);
  const auto seq_witness = seq.witness(*seq_result.abort_config);
  ASSERT_TRUE(seq_witness.has_value());
  EXPECT_EQ(run(proto, root, *seq_witness), *seq_result.abort_config);
}

TEST(ParallelExplorer, WitnessByIdReplaysForSampledIds) {
  // Every id a visitor saw must yield a witness that replays to that id's
  // configuration, whatever thread committed it.
  consensus::BallotConsensus proto(3, 6);
  const Config root = initial_config(proto, {0, 1, 1});
  const ProcSet everyone = ProcSet::first_n(3);

  ParallelExplorer par(proto, {.threads = 4,
                               .chunk_configs = 8,
                               .parallel_threshold = 32});
  std::vector<ConfigId> seen;
  auto result = par.explore(root, everyone, [&](const ConfigView& c) {
    seen.push_back(c.id);
    return true;
  });
  ASSERT_FALSE(result.aborted);
  ASSERT_GT(seen.size(), 100u);

  for (std::size_t i = 0; i < seen.size(); i += seen.size() / 64 + 1) {
    const ConfigId id = seen[i];
    const auto w = par.witness_by_id(id);
    ASSERT_TRUE(w.has_value()) << "id " << id;
    EXPECT_TRUE(w->only(everyone));
    EXPECT_EQ(run(proto, root, *w), par.view(id).materialize())
        << "witness for id " << id << " replays elsewhere";
  }
}

TEST(ParallelExplorer, StatsAndTraceInstrumentationIsPurelyObservational) {
  // With per-level stats streaming and tracing both live, the visited set
  // and verdicts must match the uninstrumented sequential explorer — the
  // forensics layer observes, it never steers. Runs under TSan in CI,
  // which also certifies the stats paths' data sharing.
  const int n = 3;
  consensus::BallotConsensus proto(n, 2 * n);
  const Config root = initial_config(proto, {0, 1, 1});
  const ProcSet everyone = ProcSet::first_n(n);

  Explorer plain(proto);
  const SetSnapshot expected = set_snapshot(proto, plain, root, everyone);

  obs::TraceSink::global().enable(1 << 14);
  const std::string stats_path =
      ::testing::TempDir() + "explorer_stats_determinism.jsonl";
  ASSERT_TRUE(obs::stats_sink().open(stats_path));

  Explorer seq(proto, {.stats_min_visited = 0});
  expect_same_set(expected, set_snapshot(proto, seq, root, everyone));
  for (int threads : {2, 8}) {
    ParallelExplorer par(proto, {.threads = threads,
                                 .stats_min_visited = 0,
                                 .chunk_configs = 16,
                                 .parallel_threshold = 64});
    expect_same_set(expected, set_snapshot(proto, par, root, everyone));
  }

  const std::uint64_t records = obs::stats_sink().lines();
  obs::stats_sink().close();
  obs::TraceSink::global().disable();
  // One "explore.done" per run plus per-level and explore.ws records
  // (min_visited = 0 keeps them all): three instrumented runs must have
  // left a trail.
  EXPECT_GE(records, 3u);
}

TEST(ParallelExplorer, RepeatedRunsVisitTheSameSet) {
  // The SET is reproducible run to run and across explorer instances,
  // even though interleavings differ every time.
  const int n = 3;
  consensus::BallotConsensus proto(n, 2 * n);
  const Config root = initial_config(proto, {0, 0, 1});
  const ProcSet everyone = ProcSet::first_n(n);

  ParallelExplorer par(proto, {.threads = 8,
                               .chunk_configs = 16,
                               .parallel_threshold = 64});
  const SetSnapshot first = set_snapshot(proto, par, root, everyone);
  const SetSnapshot second = set_snapshot(proto, par, root, everyone);
  expect_same_set(first, second);

  ParallelExplorer fresh(proto, {.threads = 8,
                                 .chunk_configs = 16,
                                 .parallel_threshold = 64});
  expect_same_set(first, set_snapshot(proto, fresh, root, everyone));
}

TEST(ParallelExplorer, ZeroMaxConfigsClampsToRootOnly) {
  // max_configs = 0 used to leave the parent directory unprepared while
  // the root was still interned — ensure()/set() then dereferenced a null
  // directory. The cap is clamped to 1: the root is visited, nothing else.
  ToyProtocol proto(3);
  const Config root = initial_config(proto, {3, 4, 5});
  ParallelExplorer par(proto, {.max_configs = 0, .threads = 2});
  const auto res = par.explore(root, ProcSet::first_n(3),
                               [](const ConfigView&) { return true; });
  EXPECT_TRUE(res.truncated);
  EXPECT_FALSE(res.aborted);
  EXPECT_EQ(res.visited, 1u);
}

TEST(ParallelExplorer, ReuseUnderBudgetKeepsByteTrackingSane) {
  // Regression: Shard::reset used assign(), which keeps the prior run's
  // (larger) table capacity, so on a reused explorer the next shard growth
  // computed `new_capacity - old_capacity` as a negative unsigned delta —
  // shard_bytes_ wrapped to ~2^64, tracked_bytes() exceeded any memory
  // budget, and every later run spuriously reported budget_exhausted.
  // The valency oracle reuses one ParallelExplorer across queries, so any
  // budgeted multi-query campaign hit this after the first run big enough
  // to grow a shard past its reset size (~46k visited configurations).
  const int n = 4;
  consensus::BallotConsensus proto(n, 2 * n);
  const Config root = initial_config(proto, {0, 1, 0, 1});
  const ProcSet everyone = ProcSet::first_n(n);

  // 150k visited configurations spread over 64 shards push each table to
  // ~4096 slots — well past the 1024-slot reset size, so the second run's
  // regrowth reproduces the negative delta. The ballot n=4 space is >2M
  // configurations, so both runs cap-truncate (schedule-dependent subsets;
  // only per-run invariants are checkable, not set equality).
  ParallelExplorer par(proto, {.max_configs = 150'000,
                               .threads = 2,
                               .chunk_configs = 64,
                               .parallel_threshold = 1024});
  par.set_budget(std::size_t{1} << 30,  // generous: real usage is ~10s of MB
                 std::chrono::steady_clock::time_point::max());

  for (int run = 0; run < 2; ++run) {
    const SetSnapshot s = set_snapshot(proto, par, root, everyone);
    // Pre-fix, the second run died at its first shard growth (~46k
    // visited) with a spurious budget_exhausted: tracked_bytes() had
    // wrapped to ~2^64 and no budget can exceed that.
    EXPECT_FALSE(s.result.budget_exhausted) << "run " << run;
    EXPECT_TRUE(s.result.truncated) << "run " << run;
    EXPECT_GT(s.result.visited, 100'000u) << "run " << run;
    expect_no_duplicate_visits(s);
    EXPECT_LT(par.tracked_bytes(), std::size_t{1} << 30) << "run " << run;
  }
}

TEST(ParallelExplorer, StealAndChunkForensicsAreReported) {
  consensus::BallotConsensus proto(3, 6);
  const Config root = initial_config(proto, {0, 1, 1});
  const ProcSet everyone = ProcSet::first_n(3);

  ParallelExplorer par(proto, {.threads = 4,
                               .chunk_configs = 8,
                               .parallel_threshold = 16});
  const auto result = par.explore(root, everyone,
                                  [](const ConfigView&) { return true; });
  ASSERT_FALSE(result.truncated);
  const auto& rs = par.last_run();
  EXPECT_TRUE(rs.went_parallel);
  EXPECT_GT(rs.chunks, 0u);
  EXPECT_GT(rs.warm_visited, 0u);
  EXPECT_LE(rs.warm_visited, result.visited);

  // Below the threshold the pool must never engage.
  ParallelExplorer warm_only(proto, {.threads = 4,
                                     .parallel_threshold = 100'000'000});
  warm_only.explore(root, everyone, [](const ConfigView&) { return true; });
  EXPECT_FALSE(warm_only.last_run().went_parallel);
  EXPECT_EQ(warm_only.last_run().steals, 0u);
}

}  // namespace
}  // namespace tsb::sim
