// Campaign telemetry: the --telemetry time-series sampler, the anomaly
// watchdog's episode semantics on synthetic timelines, the Timeline parser
// (including crash-truncated files), the cross-run comparator, and the
// end-to-end story: an adversary run's timeline must agree with its own
// exit state.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bound/adversary.hpp"
#include "consensus/ballot.hpp"
#include "obs/obs.hpp"
#include "report.hpp"

namespace tsb {
namespace {

std::string temp_path(const char* stem) {
  return ::testing::TempDir() + stem;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// --- watchdog rules on synthetic timelines ---------------------------------

obs::WatchSample sample(std::uint64_t tick, double cps,
                        const char* phase = "explore") {
  obs::WatchSample s;
  s.tick = tick;
  s.t_s = static_cast<double>(tick);
  s.phase = phase;
  s.visited = static_cast<std::int64_t>(1000 * (tick + 1));
  s.frontier = 100;
  s.cps = cps;
  return s;
}

TEST(Watchdog, QuietTimelineFiresNothing) {
  obs::Watchdog dog;
  for (std::uint64_t t = 0; t < 64; ++t) {
    EXPECT_TRUE(dog.observe(sample(t, 1000.0 + (t % 7))).empty());
  }
  for (int r = 0; r < obs::kWatchRules; ++r) {
    EXPECT_EQ(dog.fires(static_cast<obs::WatchRule>(r)), 0u);
  }
  EXPECT_TRUE(dog.active_rules().empty());
}

TEST(Watchdog, CollapseFiresOncePerEpisodeAndClears) {
  obs::Watchdog dog;
  std::uint64_t t = 0;
  for (; t < 8; ++t) dog.observe(sample(t, 1000.0));
  // Episode 1: rate falls to 5% of the median and stays there.
  std::vector<obs::WatchAlert> fired = dog.observe(sample(t++, 50.0));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, obs::WatchRule::kThroughputCollapse);
  EXPECT_TRUE(dog.active(obs::WatchRule::kThroughputCollapse));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(dog.observe(sample(t++, 50.0)).empty()) << "latched, no refire";
  }
  // Recovery clears the episode...
  bool cleared = false;
  for (int i = 0; i < 16 && !cleared; ++i) {
    dog.observe(sample(t++, 1000.0));
    cleared = !dog.active(obs::WatchRule::kThroughputCollapse);
  }
  EXPECT_TRUE(cleared);
  // ...and a second collapse is a second episode.
  while (dog.fires(obs::WatchRule::kThroughputCollapse) < 2) {
    const auto alerts = dog.observe(sample(t++, 50.0));
    if (!alerts.empty()) break;
    ASSERT_LT(t, 200u) << "second episode never fired";
  }
  EXPECT_EQ(dog.fires(obs::WatchRule::kThroughputCollapse), 2u);
}

TEST(Watchdog, PhaseChangeResetsTheWindow) {
  obs::Watchdog dog;
  std::uint64_t t = 0;
  for (; t < 8; ++t) dog.observe(sample(t, 1'000'000.0, "explore"));
  // lemma4 is legitimately 100x slower; a fresh phase must not inherit
  // explore's median.
  EXPECT_TRUE(dog.observe(sample(t++, 10'000.0, "lemma4")).empty());
  EXPECT_FALSE(dog.active(obs::WatchRule::kThroughputCollapse));
}

TEST(Watchdog, SpillThrashNeedsChurnAndFlatVisited) {
  obs::Watchdog dog;
  std::uint64_t t = 0;
  auto thrash_sample = [&](std::uint64_t mapped, std::int64_t visited) {
    obs::WatchSample s;
    s.tick = t;
    s.t_s = static_cast<double>(t);
    s.phase = "explore";
    s.visited = visited;
    s.frontier = 100;
    s.mapped_bytes = mapped;
    ++t;
    return s;
  };
  // Mapped bytes oscillate hard while visited barely moves: classic
  // map/unmap churn doing no useful work.
  std::uint64_t fires = 0;
  for (int i = 0; i < 12; ++i) {
    const std::uint64_t mapped = (i % 2) == 0 ? 1'000'000 : 10'000;
    fires += dog.observe(thrash_sample(mapped, 500'000 + i)).size();
  }
  EXPECT_EQ(dog.fires(obs::WatchRule::kSpillThrash), 1u);
  EXPECT_EQ(fires, 1u);

  // Same churn with healthy visited growth is a legitimate working set
  // cycling through memory — no alert.
  obs::Watchdog dog2;
  t = 0;
  for (int i = 0; i < 12; ++i) {
    const std::uint64_t mapped = (i % 2) == 0 ? 1'000'000 : 10'000;
    dog2.observe(thrash_sample(mapped, 500'000 + 100'000 * i));
  }
  EXPECT_EQ(dog2.fires(obs::WatchRule::kSpillThrash), 0u);
}

TEST(Watchdog, StealStarvationNeedsGrowingIdleWithPendingWork) {
  obs::Watchdog dog;
  std::uint64_t t = 0;
  auto starve_sample = [&](std::int64_t idle, std::int64_t frontier) {
    obs::WatchSample s;
    s.tick = t;
    s.t_s = static_cast<double>(t);
    s.phase = "explore";
    s.visited = static_cast<std::int64_t>(1000 * (t + 1));
    s.frontier = frontier;
    s.idle_spins = idle;
    ++t;
    return s;
  };
  // Idle spins climbing fast while the frontier stays nonzero.
  for (int i = 0; i < 8; ++i) dog.observe(starve_sample(10'000 * i, 500));
  EXPECT_EQ(dog.fires(obs::WatchRule::kStealStarvation), 1u);

  // A drained frontier makes idle growth normal run-down, not starvation.
  obs::Watchdog dog2;
  t = 0;
  for (int i = 0; i < 8; ++i) dog2.observe(starve_sample(10'000 * i, 0));
  EXPECT_EQ(dog2.fires(obs::WatchRule::kStealStarvation), 0u);

  // A sequential run (idle_spins unknown) never trips the rule.
  obs::Watchdog dog3;
  t = 0;
  for (int i = 0; i < 8; ++i) dog3.observe(starve_sample(-1, 500));
  EXPECT_EQ(dog3.fires(obs::WatchRule::kStealStarvation), 0u);
}

TEST(Watchdog, LedgerRunawayProjectsExitEta) {
  obs::Watchdog dog;
  auto mem_sample = [](std::uint64_t tick, std::uint64_t total,
                       std::uint64_t budget) {
    obs::WatchSample s;
    s.tick = tick;
    s.t_s = static_cast<double>(tick);
    s.phase = "explore";
    s.ledger_total = total;
    s.mem_budget = budget;
    return s;
  };
  // Growing 100 MB/s toward a 1 GB budget: ~8 s to exit 4, inside the 60 s
  // alert horizon.
  const std::uint64_t kBudget = 1'000'000'000;
  std::uint64_t fires = 0;
  for (std::uint64_t t = 0; t < 4; ++t) {
    fires +=
        dog.observe(mem_sample(t, 100'000'000 * (t + 1), kBudget)).size();
  }
  EXPECT_EQ(dog.fires(obs::WatchRule::kLedgerRunaway), 1u);
  EXPECT_EQ(fires, 1u);

  // Without a budget the rule is disarmed no matter the growth.
  obs::Watchdog dog2;
  for (std::uint64_t t = 0; t < 4; ++t) {
    dog2.observe(mem_sample(t, 100'000'000 * (t + 1), 0));
  }
  EXPECT_EQ(dog2.fires(obs::WatchRule::kLedgerRunaway), 0u);
}

// --- sampler round trip ----------------------------------------------------

TEST(Telemetry, RoundTripPreservesCountersAndTickIds) {
  const std::string path = temp_path("roundtrip.tsl");
  obs::Registry::global().reset();
  obs::Registry::global().counter("test.alpha").add(7);
  obs::Registry::global().counter("test.beta").add(123);
  ASSERT_TRUE(obs::telemetry::open(path));
  for (int i = 0; i < 5; ++i) {
    obs::StatusSnapshot s;
    s.phase = "explore";
    s.visited = 1000 * (i + 1);
    s.frontier = 50 - i;
    obs::Registry::global().counter("test.alpha").add(1);
    obs::telemetry::tick(s);
  }
  EXPECT_EQ(obs::telemetry::ticks(), 5u);
  obs::telemetry::close();
  EXPECT_FALSE(obs::telemetry::enabled());

  report::Timeline tl;
  std::string err;
  ASSERT_TRUE(tl.load(path, &err)) << err;
  ASSERT_EQ(tl.ticks().size(), 5u);
  EXPECT_TRUE(tl.monotonic());
  EXPECT_EQ(tl.malformed(), 0u);
  for (std::size_t i = 0; i < 5; ++i) {
    const report::TimelineTick& t = tl.ticks()[i];
    EXPECT_EQ(t.tick, static_cast<std::int64_t>(i));
    EXPECT_EQ(t.phase, "explore");
    EXPECT_EQ(t.visited, static_cast<std::int64_t>(1000 * (i + 1)));
    EXPECT_EQ(t.frontier, static_cast<std::int64_t>(50 - i));
    // Counters are cumulative and exact: alpha bumps once per tick.
    ASSERT_TRUE(t.counters.count("test.alpha"));
    EXPECT_EQ(t.counters.at("test.alpha"),
              static_cast<std::int64_t>(8 + i));
    ASSERT_TRUE(t.counters.count("test.beta"));
    EXPECT_EQ(t.counters.at("test.beta"), 123);
  }
  std::remove(path.c_str());
  obs::Registry::global().reset();
}

TEST(Telemetry, ReopenResetsTickCounterAndWatchdog) {
  const std::string path = temp_path("reopen.tsl");
  ASSERT_TRUE(obs::telemetry::open(path));
  obs::StatusSnapshot s;
  s.phase = "explore";
  obs::telemetry::tick(s);
  obs::telemetry::tick(s);
  EXPECT_EQ(obs::telemetry::ticks(), 2u);
  ASSERT_TRUE(obs::telemetry::open(path));  // a file is one run
  EXPECT_EQ(obs::telemetry::ticks(), 0u);
  obs::telemetry::close();
  std::remove(path.c_str());
}

TEST(Timeline, ToleratesTruncatedFinalLine) {
  const std::string path = temp_path("truncated.tsl");
  ASSERT_TRUE(obs::telemetry::open(path));
  for (int i = 0; i < 3; ++i) {
    obs::StatusSnapshot s;
    s.phase = "explore";
    s.visited = 100 * (i + 1);
    obs::telemetry::tick(s);
  }
  obs::telemetry::close();

  // Simulate a kill -9 mid-append: chop the file mid last record.
  std::string text = slurp(path);
  ASSERT_GT(text.size(), 40u);
  text.resize(text.size() - 25);
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << text;
  }
  report::Timeline tl;
  std::string err;
  ASSERT_TRUE(tl.load(path, &err)) << err;
  EXPECT_EQ(tl.ticks().size(), 2u) << "torn tail dropped, prefix kept";
  EXPECT_EQ(tl.malformed(), 1u);
  EXPECT_TRUE(tl.monotonic());
  std::remove(path.c_str());
}

TEST(Timeline, ActiveAlertsTracksLatchedEpisodes) {
  report::Timeline tl;
  tl.ingest_line(
      R"({"type":"watch.alert","rule":"spill_thrash","tick":4,"t_s":4.0,)"
      R"("phase":"explore","detail":"churn"})");
  tl.ingest_line(
      R"({"type":"watch.alert","rule":"ledger_runaway","tick":5,"t_s":5.0,)"
      R"("phase":"explore","detail":"eta 12s"})");
  tl.ingest_line(
      R"({"type":"watch.clear","rule":"spill_thrash","tick":7,"t_s":7.0})");
  const std::vector<std::string> active = tl.active_alerts();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], "ledger_runaway");
  EXPECT_EQ(tl.alerts().size(), 3u);
}

// --- sparkline -------------------------------------------------------------

TEST(Sparkline, ScalesAndDownsamples) {
  EXPECT_EQ(report::sparkline({}, 4), "    ");
  const std::string flat = report::sparkline({5, 5, 5, 5}, 4);
  EXPECT_EQ(flat, "▁▁▁▁");
  const std::string ramp = report::sparkline({0, 1, 2, 3, 4, 5, 6, 7}, 8);
  EXPECT_EQ(ramp, "▁▂▃▄▅▆▇█");
  // 16 points into 8 cells: still monotone after averaging pairs.
  std::vector<double> xs;
  for (int i = 0; i < 16; ++i) xs.push_back(i);
  const std::string wide = report::sparkline(xs, 8);
  EXPECT_EQ(wide, "▁▂▃▄▅▆▇█");
}

// --- comparator ------------------------------------------------------------

void write_timeline(const std::string& path, double cps_scale,
                    double wall_scale) {
  std::ofstream out(path, std::ios::trunc);
  for (int i = 0; i < 10; ++i) {
    out << R"({"type":"telemetry.tick","tick":)" << i
        << R"(,"t_s":)" << (0.5 * (i + 1) * wall_scale)
        << R"(,"phase":"explore","visited":)" << (1000 * (i + 1))
        << R"(,"cps":)" << (2000.0 * cps_scale)
        << R"(,"peak_rss_kb":1024,"ledger_total":4096,"ledger":{},)"
        << R"("counters":{}})" << "\n";
  }
}

TEST(CompareTimelines, IdenticalFilesPassInjectedSlowdownFails) {
  const std::string a = temp_path("cmp_a.tsl");
  const std::string b = temp_path("cmp_b.tsl");
  write_timeline(a, 1.0, 1.0);
  write_timeline(b, 1.0, 1.0);
  std::ostringstream out;
  EXPECT_EQ(report::compare_timelines(a, b, 25.0, out), 0) << out.str();

  // B at 40% of A's throughput and 1.5x the wall time: both gates trip.
  write_timeline(b, 0.4, 1.5);
  std::ostringstream out2;
  EXPECT_EQ(report::compare_timelines(a, b, 25.0, out2), 1);
  EXPECT_NE(out2.str().find("REGRESSED"), std::string::npos);

  // The same slowdown passes a 90% tolerance.
  std::ostringstream out3;
  EXPECT_EQ(report::compare_timelines(a, b, 90.0, out3), 0) << out3.str();
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(CompareTimelines, MissingOrEmptyFileIsUsage) {
  const std::string a = temp_path("cmp_present.tsl");
  write_timeline(a, 1.0, 1.0);
  std::ostringstream out;
  EXPECT_EQ(report::compare_timelines(a, temp_path("cmp_absent.tsl"), 25.0,
                                      out),
            2);
  const std::string empty = temp_path("cmp_empty.tsl");
  { std::ofstream touch(empty); }
  std::ostringstream out2;
  EXPECT_EQ(report::compare_timelines(a, empty, 25.0, out2), 2);
  std::remove(a.c_str());
  std::remove(empty.c_str());
}

// --- report ingestion ------------------------------------------------------

TEST(RunReport, CountsTelemetryRecords) {
  report::RunReport rep;
  rep.ingest_line(
      R"({"type":"telemetry.tick","tick":0,"t_s":1.0,"phase":"explore"})");
  rep.ingest_line(
      R"({"type":"telemetry.tick","tick":1,"t_s":2.0,"phase":"explore"})");
  rep.ingest_line(
      R"({"type":"watch.alert","rule":"steal_starvation","tick":1,)"
      R"("t_s":2.0,"phase":"explore","detail":"idle"})");
  rep.finalize();
  EXPECT_EQ(rep.telemetry_ticks(), 2u);
  EXPECT_EQ(rep.watch_alerts(), 1u);
  EXPECT_EQ(rep.lines_malformed(), 0u);
  std::ostringstream out;
  rep.render_text(out, 5);
  EXPECT_NE(out.str().find("steal_starvation"), std::string::npos);
}

// --- end to end ------------------------------------------------------------

TEST(TelemetryEndToEnd, AdversaryTimelineMatchesExitState) {
  const std::string path = temp_path("e2e.tsl");
  obs::MemLedger::global().reset();
  ASSERT_TRUE(obs::telemetry::open(path));
  // Fast cadence so even a sub-second n=4 construction lands ticks.
  const auto saved = obs::progress_interval();
  obs::set_progress_interval(std::chrono::milliseconds(1));

  consensus::BallotConsensus proto(4, 8);
  bound::SpaceBoundAdversary adversary(proto, {});
  const auto result = adversary.run();
  ASSERT_TRUE(result.ok) << result.error;

  // The final tick is the CLI's job; mirror it here so the tail of the
  // file reflects the run's exit state.
  obs::StatusSnapshot last;
  last.phase = "done";
  obs::telemetry::tick(last);
  obs::telemetry::close();
  obs::set_progress_interval(saved);

  report::Timeline tl;
  std::string err;
  ASSERT_TRUE(tl.load(path, &err)) << err;
  ASSERT_GE(tl.ticks().size(), 1u);
  EXPECT_TRUE(tl.monotonic()) << "tick ids must strictly increase";
  EXPECT_EQ(tl.malformed(), 0u);
  const report::TimelineTick& final_tick = tl.ticks().back();
  EXPECT_EQ(final_tick.phase, "done");
  // Nothing allocates between the construction's end and the final tick:
  // the timeline's last ledger totals are the exit report's.
  EXPECT_EQ(final_tick.ledger_total,
            static_cast<std::int64_t>(obs::MemLedger::global().total()));
  std::int64_t accounted = 0;
  for (const auto& [name, bytes] : final_tick.ledger) accounted += bytes;
  EXPECT_EQ(accounted, final_tick.ledger_total)
      << "per-account breakdown must sum to the total";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tsb
