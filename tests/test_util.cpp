#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "util/interner.hpp"
#include "util/packing.hpp"
#include "util/proc_set.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace tsb::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be the identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng root(11);
  Rng a = root.split(1);
  Rng b = root.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Packing, PairRoundTrips) {
  for (std::int32_t hi : {-1, 0, 1, 123456, -987654, INT32_MAX, INT32_MIN}) {
    for (std::int32_t lo : {-1, 0, 7, -42, INT32_MAX, INT32_MIN}) {
      const std::int64_t packed = pack_pair(hi, lo);
      EXPECT_EQ(unpack_hi(packed), hi);
      EXPECT_EQ(unpack_lo(packed), lo);
    }
  }
}

TEST(Packing, QuadRoundTrips) {
  const std::int64_t q = pack_quad(1, 2, 3, 65535);
  EXPECT_EQ(quad_a(q), 1);
  EXPECT_EQ(quad_b(q), 2);
  EXPECT_EQ(quad_c(q), 3);
  EXPECT_EQ(quad_d(q), 65535);
}

TEST(ProcSet, BasicSetAlgebra) {
  const ProcSet p = ProcSet::first_n(5);
  EXPECT_EQ(p.size(), 5);
  EXPECT_TRUE(p.contains(0));
  EXPECT_TRUE(p.contains(4));
  EXPECT_FALSE(p.contains(5));

  const ProcSet q = p.without(2);
  EXPECT_EQ(q.size(), 4);
  EXPECT_FALSE(q.contains(2));
  EXPECT_TRUE(q.subset_of(p));
  EXPECT_FALSE(p.subset_of(q));
  EXPECT_EQ((p - q), ProcSet::single(2));
  EXPECT_EQ((q | ProcSet::single(2)), p);
  EXPECT_EQ((p & q), q);
}

TEST(ProcSet, MinAndVector) {
  ProcSet s = ProcSet::single(3).with(7).with(1);
  EXPECT_EQ(s.min(), 1);
  EXPECT_EQ(s.to_vector(), (std::vector<int>{1, 3, 7}));
  EXPECT_EQ(s.to_string(), "{p1,p3,p7}");
}

TEST(ProcSet, ForEachVisitsAscending) {
  ProcSet s = ProcSet::first_n(6).without(2);
  std::vector<int> seen;
  s.for_each([&](int p) { seen.push_back(p); });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 3, 4, 5}));
}

TEST(Interner, RoundTripAndStability) {
  StateInterner interner;
  const auto a = interner.intern("alpha");
  const auto b = interner.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.intern("alpha"), a);
  EXPECT_EQ(interner.lookup(a), "alpha");
  EXPECT_EQ(interner.lookup(b), "beta");
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_TRUE(interner.contains("alpha"));
  EXPECT_FALSE(interner.contains("gamma"));
}

TEST(Interner, ByteWriterReaderRoundTrip) {
  ByteWriter w;
  w.put_i64(-123456789012345);
  w.put_i32(42);
  w.put_u8(255);
  ByteReader r(w.str());
  EXPECT_EQ(r.get_i64(), -123456789012345);
  EXPECT_EQ(r.get_i32(), 42);
  EXPECT_EQ(r.get_u8(), 255);
  EXPECT_TRUE(r.done());
}

TEST(Table, RendersAlignedText) {
  Table t({"name", "value"});
  t.row("alpha", 1).row("b", 22);
  const std::string text = t.to_text("demo");
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvQuotesSpecials) {
  Table t({"a", "b"});
  t.add_row({"x,y", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Stats, WelfordMatchesDirect) {
  Summary s;
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 16.0);
  EXPECT_EQ(s.count(), xs.size());
}

TEST(Stats, FitRecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.5 * i);
  }
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-9);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Stats, Log2Factorial) {
  EXPECT_DOUBLE_EQ(log2_factorial(1), 0.0);
  EXPECT_NEAR(log2_factorial(4), std::log2(24.0), 1e-9);
  EXPECT_NEAR(log2_factorial(10), std::log2(3628800.0), 1e-9);
}

TEST(Stats, Percentile) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
}

}  // namespace
}  // namespace tsb::util
