#include <gtest/gtest.h>

#include "consensus/historyless.hpp"
#include "sim/explorer.hpp"
#include "sim/model_checker.hpp"

namespace tsb::consensus {
namespace {

TEST(EngineSwap, SwapReturnsOverwrittenValueAndWrites) {
  SwapConsensus proto(2);
  sim::Config c = sim::initial_config(proto, {1, 0});
  sim::Trace trace;
  c = sim::step(proto, c, 0, &trace);  // p0 swaps in its proposal 1
  ASSERT_EQ(trace.records.size(), 1u);
  EXPECT_TRUE(trace.records[0].op.is_swap());
  EXPECT_EQ(trace.records[0].read_result, sim::kEmptyRegister);
  EXPECT_EQ(c.regs[0], 1);

  c = sim::step(proto, c, 1, &trace);  // p1 swaps in 0, sees 1
  EXPECT_EQ(trace.records[1].read_result, 1);
  EXPECT_EQ(c.regs[0], 0);
  EXPECT_EQ(trace.registers_written(), std::set<sim::RegId>{0});
}

TEST(EngineSwap, ProtocolsWithoutAfterSwapThrow) {
  // A protocol that issues kSwap without overriding after_swap is a bug;
  // the base class throws rather than corrupting state.
  class Broken final : public sim::Protocol {
   public:
    std::string name() const override { return "broken"; }
    int num_processes() const override { return 1; }
    int num_registers() const override { return 1; }
    sim::State initial_state(sim::ProcId, sim::Value) const override {
      return 0;
    }
    sim::PendingOp poised(sim::ProcId, sim::State) const override {
      return sim::PendingOp::swap(0, 1);
    }
    sim::State after_read(sim::ProcId, sim::State s,
                          sim::Value) const override {
      return s;
    }
    sim::State after_write(sim::ProcId, sim::State s) const override {
      return s;
    }
  };
  Broken proto;
  const sim::Config c = sim::initial_config(proto, {0});
  EXPECT_THROW((void)sim::step(proto, c, 0), std::logic_error);
}

TEST(SwapConsensus, TwoProcessesExhaustivelyCorrect) {
  SwapConsensus proto(2);
  sim::ModelChecker checker(proto);
  const auto report = checker.check_all_binary_inputs();
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_FALSE(report.truncated);
  // Wait-free in exactly one memory step per process.
  EXPECT_LE(report.max_solo_steps_seen, 1u);
}

TEST(SwapConsensus, ThreeProcessesViolateAgreement) {
  // Swap's consensus number is 2; the checker exhibits the violation.
  SwapConsensus proto(3);
  sim::ModelChecker::Options opts;
  opts.check_solo_termination = false;
  sim::ModelChecker checker(proto, opts);
  const auto report = checker.check_all_binary_inputs();
  ASSERT_FALSE(report.ok);
  ASSERT_TRUE(report.schedule_to_bad.has_value());
  const sim::Config init = sim::initial_config(proto, *report.bad_inputs);
  const sim::Config bad = sim::run(proto, init, *report.schedule_to_bad);
  EXPECT_TRUE(sim::some_decided(proto, bad, 0));
  EXPECT_TRUE(sim::some_decided(proto, bad, 1));
}

TEST(SwapConsensus, SecondSwapperAdoptsTheFirst) {
  SwapConsensus proto(2);
  sim::Config c = sim::initial_config(proto, {1, 0});
  c = sim::step(proto, c, 0);
  c = sim::step(proto, c, 1);
  EXPECT_EQ(sim::decision_of(proto, c, 0), std::optional<sim::Value>(1));
  EXPECT_EQ(sim::decision_of(proto, c, 1), std::optional<sim::Value>(1));
}

class TasTest : public ::testing::TestWithParam<int> {};

TEST_P(TasTest, ExactlyOneLeaderInEveryCompleteExecution) {
  const int n = GetParam();
  TasLeaderElection proto(n);
  const std::vector<sim::Value> inputs(static_cast<std::size_t>(n), 0);
  const sim::Config init = sim::initial_config(proto, inputs);
  sim::Explorer explorer(proto);
  bool ok = true;
  std::size_t complete = 0;
  auto result = explorer.explore(
      init, sim::ProcSet::first_n(n), [&](const sim::ConfigView& c) {
        int leaders = 0, decided = 0;
        for (int p = 0; p < n; ++p) {
          if (auto d = sim::decision_of(proto, c, p)) {
            ++decided;
            leaders += *d == 1;
          }
        }
        if (leaders > 1) ok = false;
        if (decided == n) {
          ++complete;
          if (leaders != 1) ok = false;
        }
        return ok;
      });
  EXPECT_TRUE(ok);
  EXPECT_FALSE(result.truncated);
  EXPECT_GT(complete, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TasTest, ::testing::Values(2, 3, 4, 6));

TEST(TasLeaderElection, FirstSwapperIsTheLeader) {
  TasLeaderElection proto(3);
  sim::Config c = sim::initial_config(proto, {0, 0, 0});
  c = sim::step(proto, c, 1);  // p1 swaps first
  c = sim::step(proto, c, 0);
  c = sim::step(proto, c, 2);
  EXPECT_EQ(sim::decision_of(proto, c, 1), std::optional<sim::Value>(1));
  EXPECT_EQ(sim::decision_of(proto, c, 0), std::optional<sim::Value>(0));
  EXPECT_EQ(sim::decision_of(proto, c, 2), std::optional<sim::Value>(0));
}

}  // namespace
}  // namespace tsb::consensus
