#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bound/adversary.hpp"
#include "consensus/ballot.hpp"
#include "obs/jsonl_sink.hpp"
#include "rt/atomic_registers.hpp"
#include "rt/chaos.hpp"
#include "rt/chaos_scheduler.hpp"
#include "rt/fault.hpp"
#include "rt/harness.hpp"
#include "rt/rt_consensus.hpp"
#include "rt/rt_mutex.hpp"
#include "sim/explorer.hpp"
#include "toy_protocol.hpp"
#include "util/require.hpp"

namespace tsb::rt {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// --- fault plan + hook plumbing --------------------------------------------

TEST(FaultPlan, BuildersCountersAndCanonicalString) {
  fault::FaultPlan plan(3);
  plan.crash(0, 3).stall(1, 5, 12).yield(2, 7).crash(2, 9);
  EXPECT_EQ(plan.crashes(), 2);
  EXPECT_EQ(plan.stalls(), 1);
  EXPECT_EQ(plan.yields(), 1);
  EXPECT_EQ(plan.to_string(), "t0:crash@3 t1:stall@5x12 t2:yield@7 t2:crash@9");
  EXPECT_EQ(fault::FaultPlan(2).to_string(), "none");
}

TEST(FaultHook, UnboundAccessIsANoOp) {
  // No chaos run active: the instrumented path must be inert (this is the
  // path every non-chaos test and bench takes on every register access).
  EXPECT_FALSE(fault::thread_bound());
  AtomicRegisterArray regs(2);
  regs.write(0, 1);
  EXPECT_EQ(regs.read(0), 1u);
  fault::interleave();  // also a no-op when unbound
}

TEST(AtomicRegisters, OutOfRangeAccessThrowsNotUb) {
  AtomicRegisterArray regs(3);
  EXPECT_THROW(regs.read(3), util::RequirementFailed);
  EXPECT_THROW(regs.write(7, 1), util::RequirementFailed);
  regs.write(2, 5);  // in range still fine
  EXPECT_EQ(regs.read(2), 5u);
}

// --- harness ---------------------------------------------------------------

TEST(Harness, WorkerExceptionPropagatesAfterAllJoin) {
  std::atomic<int> ran{0};
  try {
    run_threads(4, [&](int p) {
      ran.fetch_add(1);
      if (p == 2) throw std::runtime_error("worker 2 failed");
    });
    FAIL() << "expected the worker's exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker 2 failed");
  }
  // join() must not hang on the throwing worker, and the peers must have
  // been released from the barrier and run to completion.
  EXPECT_EQ(ran.load(), 4);
}

TEST(Harness, FirstOfSeveralExceptionsWins) {
  try {
    run_threads(3, [&](int p) {
      throw std::runtime_error("worker " + std::to_string(p));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("worker ", 0), 0u);
  }
}

// --- chaos scheduler -------------------------------------------------------

TEST(ChaosScheduler, CrashAtAccessKUnwindsExactlyThere) {
  fault::FaultPlan plan(2);
  plan.crash(1, 5);
  AtomicRegisterArray regs(2);
  const auto out = chaos_run(2, plan, {.seed = 3}, [&](int p) {
    for (int i = 0; i < 20; ++i) regs.write(static_cast<std::size_t>(p), 1);
  });
  EXPECT_EQ(out.status[0], ChaosScheduler::ThreadStatus::kDone);
  EXPECT_EQ(out.status[1], ChaosScheduler::ThreadStatus::kCrashed);
  // The crash fires *on* the victim's 5th instrumented access.
  EXPECT_EQ(out.accesses[1], 5u);
  EXPECT_EQ(out.accesses[0], 20u);
  EXPECT_FALSE(out.error);
}

TEST(ChaosScheduler, StalledThreadsCannotDeadlockTheRun) {
  // Stall both threads early and long: the scheduler must fast-forward its
  // step clock past the stalls instead of spinning or deadlocking.
  fault::FaultPlan plan(2);
  plan.stall(0, 2, 1'000).stall(1, 2, 1'000);
  AtomicRegisterArray regs(2);
  const auto out = chaos_run(2, plan, {.seed = 9}, [&](int p) {
    for (int i = 0; i < 8; ++i) regs.write(static_cast<std::size_t>(p), 1);
  });
  EXPECT_EQ(out.status[0], ChaosScheduler::ThreadStatus::kDone);
  EXPECT_EQ(out.status[1], ChaosScheduler::ThreadStatus::kDone);
}

TEST(ChaosScheduler, PerThreadBudgetUnwindsOnlyTheOverBudgetThread) {
  fault::FaultPlan plan(2);
  AtomicRegisterArray regs(2);
  const auto out =
      chaos_run(2, plan, {.seed = 5, .per_thread_budget = 10}, [&](int p) {
        const int iters = p == 0 ? 5 : 50;
        for (int i = 0; i < iters; ++i) {
          regs.write(static_cast<std::size_t>(p), 1);
        }
      });
  EXPECT_EQ(out.status[0], ChaosScheduler::ThreadStatus::kDone);
  EXPECT_EQ(out.status[1], ChaosScheduler::ThreadStatus::kBudget);
}

TEST(ChaosScheduler, SafetyViolationIsCapturedNotSwallowed) {
  fault::FaultPlan plan(2);
  AtomicRegisterArray regs(2);
  const auto out = chaos_run(2, plan, {.seed = 1}, [&](int p) {
    regs.write(static_cast<std::size_t>(p), 1);
    if (p == 1) throw std::logic_error("assertion failed in body");
  });
  EXPECT_EQ(out.status[1], ChaosScheduler::ThreadStatus::kFailed);
  ASSERT_TRUE(out.error);
  EXPECT_THROW(std::rethrow_exception(out.error), std::logic_error);
}

TEST(ChaosScheduler, SoloSurvivorDecidesAfterAllOthersCrash) {
  // The NST property under the harshest crash pattern: every process but
  // one crashes on its first access; the survivor must still decide.
  constexpr int kN = 4;
  fault::FaultPlan plan(kN);
  for (int t = 1; t < kN; ++t) plan.crash(t, 1);
  RtBallotConsensus cons(kN);
  std::vector<std::uint64_t> decided(kN, 0);
  std::vector<char> done(kN, 0);
  const auto out =
      chaos_run(kN, plan, {.seed = 11, .per_thread_budget = 50'000},
                [&](int p) {
                  decided[static_cast<std::size_t>(p)] =
                      cons.propose(p, static_cast<std::uint64_t>(p % 2));
                  done[static_cast<std::size_t>(p)] = 1;
                });
  EXPECT_EQ(out.status[0], ChaosScheduler::ThreadStatus::kDone);
  ASSERT_TRUE(done[0]);
  EXPECT_EQ(decided[0], 0u) << "solo run must decide the survivor's input";
  for (int t = 1; t < kN; ++t) {
    EXPECT_EQ(out.status[static_cast<std::size_t>(t)],
              ChaosScheduler::ThreadStatus::kCrashed);
  }
}

TEST(ChaosScheduler, BakeryStaysExclusiveUnderStalls) {
  constexpr int kN = 3;
  fault::FaultPlan plan(kN);
  plan.stall(0, 4, 300).stall(2, 7, 150);
  RtBakeryMutex mtx(kN);
  std::atomic<int> owner{-1};
  std::atomic<int> entries{0};
  const auto out = chaos_run(kN, plan, {.seed = 21}, [&](int p) {
    for (int i = 0; i < 3; ++i) {
      mtx.lock(p);
      ASSERT_EQ(owner.exchange(p), -1) << "two threads inside the lock";
      fault::interleave();
      ASSERT_EQ(owner.exchange(-1), p);
      entries.fetch_add(1);
      mtx.unlock(p);
    }
  });
  for (int t = 0; t < kN; ++t) {
    EXPECT_EQ(out.status[static_cast<std::size_t>(t)],
              ChaosScheduler::ThreadStatus::kDone);
  }
  EXPECT_EQ(entries.load(), kN * 3);
}

// --- campaign --------------------------------------------------------------

TEST(ChaosCampaign, CleanSweepAcrossAllTargets) {
  chaos::Options opts;
  opts.runs = 60;
  opts.seed = 42;
  opts.n = 3;
  const chaos::Result res = chaos::run_campaign(opts);
  EXPECT_EQ(res.runs, 60);
  EXPECT_EQ(res.violations, 0) << res.first_violation;
  EXPECT_EQ(res.solo_failures, 0) << res.first_violation;
  EXPECT_TRUE(res.ok());
  EXPECT_GT(res.solo_runs, 0) << "campaign should draw some solo scenarios";
}

TEST(ChaosCampaign, CommitAdoptOnlyCampaignIsClean) {
  chaos::Options opts;
  opts.runs = 40;
  opts.seed = 7;
  opts.n = 4;
  opts.targets = {chaos::Target::kCommitAdopt};
  const chaos::Result res = chaos::run_campaign(opts);
  EXPECT_TRUE(res.ok()) << res.first_violation;
}

TEST(ChaosCampaign, MutexStallCampaignIsDeadlockFree) {
  chaos::Options opts;
  opts.runs = 30;
  opts.seed = 13;
  opts.n = 3;
  opts.targets = {chaos::Target::kPeterson, chaos::Target::kTournament,
                  chaos::Target::kBakery};
  opts.allow_crash = false;  // deadlock-freedom assumes crash-free
  const chaos::Result res = chaos::run_campaign(opts);
  EXPECT_TRUE(res.ok()) << res.first_violation;
  EXPECT_EQ(res.timeouts, 0)
      << "a mutex run exhausting its budget means possible deadlock";
}

TEST(ChaosCampaign, ParseTargetsAcceptsNamesAndRejectsUnknown) {
  std::vector<chaos::Target> out;
  EXPECT_TRUE(chaos::parse_targets("all", &out));
  EXPECT_EQ(out.size(), chaos::all_targets().size());
  EXPECT_TRUE(chaos::parse_targets("ballot,commit-adopt,bakery", &out));
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1], chaos::Target::kCommitAdopt);
  EXPECT_FALSE(chaos::parse_targets("ballot,nope", &out));
}

TEST(ChaosCampaign, SameSeedReplaysByteIdentically) {
  const std::string a = ::testing::TempDir() + "chaos_a.jsonl";
  const std::string b = ::testing::TempDir() + "chaos_b.jsonl";
  chaos::Options opts;
  opts.runs = 25;
  opts.seed = 99;
  opts.n = 4;
  for (const std::string& path : {a, b}) {
    ASSERT_TRUE(obs::chaos_sink().open(path));
    chaos::run_campaign(opts);
    obs::chaos_sink().close();
  }
  const std::string ra = slurp(a);
  const std::string rb = slurp(b);
  ASSERT_FALSE(ra.empty());
  // The whole point of the seeded cooperative scheduler: per-run records
  // carry no timestamps and every scheduling decision is a pure function
  // of the seed, so two identical campaigns produce identical bytes.
  EXPECT_EQ(ra, rb);
}

TEST(ChaosCampaign, SingleRunReplaysStandaloneFromItsSeed) {
  const std::string whole = ::testing::TempDir() + "chaos_whole.jsonl";
  const std::string one = ::testing::TempDir() + "chaos_one.jsonl";
  chaos::Options opts;
  opts.runs = 10;
  opts.seed = 500;
  opts.n = 3;
  ASSERT_TRUE(obs::chaos_sink().open(whole));
  chaos::run_campaign(opts);
  obs::chaos_sink().close();

  // Re-run just campaign run #6 as a 1-run campaign seeded at 506.
  chaos::Options single = opts;
  single.runs = 1;
  single.seed = 506;
  ASSERT_TRUE(obs::chaos_sink().open(one));
  chaos::run_campaign(single);
  obs::chaos_sink().close();

  std::istringstream lines(slurp(whole));
  std::string line, want;
  for (int i = 0; i <= 6 && std::getline(lines, line); ++i) want = line;
  std::istringstream got_lines(slurp(one));
  std::string got;
  ASSERT_TRUE(std::getline(got_lines, got));
  // Identical except the run index (0 in the standalone replay).
  const auto strip_run = [](std::string s) {
    const auto pos = s.find("\"run\":");
    const auto comma = s.find(',', pos);
    return s.erase(pos, comma - pos);
  };
  EXPECT_EQ(strip_run(got), strip_run(want));
}

}  // namespace
}  // namespace tsb::rt

namespace tsb::sim {
namespace {

TEST(Explorer, MemBudgetTruncatesWithDistinctStatus) {
  test::ToyProtocol proto(3);
  const Config root = initial_config(proto, {1, 2, 3});
  Explorer explorer(proto);
  explorer.set_budget(/*max_arena_bytes=*/1,
                      std::chrono::steady_clock::time_point::max());
  const auto res = explorer.explore(root, ProcSet::first_n(3),
                                    [](const ConfigView&) { return true; });
  EXPECT_TRUE(res.truncated);
  EXPECT_TRUE(res.budget_exhausted);
}

TEST(Explorer, DeadlineInThePastTruncatesWithDistinctStatus) {
  test::ToyProtocol proto(3);
  const Config root = initial_config(proto, {1, 2, 3});
  Explorer explorer(proto);
  explorer.set_budget(0, std::chrono::steady_clock::now() -
                             std::chrono::seconds(1));
  const auto res = explorer.explore(root, ProcSet::first_n(3),
                                    [](const ConfigView&) { return true; });
  EXPECT_TRUE(res.truncated);
  EXPECT_TRUE(res.budget_exhausted);
}

TEST(Explorer, UnbudgetedRunIsUnaffected) {
  test::ToyProtocol proto(2);
  const Config root = initial_config(proto, {3, 4});
  Explorer explorer(proto);
  const auto res = explorer.explore(root, ProcSet::first_n(2),
                                    [](const ConfigView&) { return true; });
  EXPECT_FALSE(res.truncated);
  EXPECT_FALSE(res.budget_exhausted);
}

}  // namespace
}  // namespace tsb::sim

namespace tsb::bound {
namespace {

TEST(Adversary, MemBudgetYieldsDistinctCleanOutcome) {
  consensus::BallotConsensus proto(3, 6);
  SpaceBoundAdversary::Options opts;
  opts.valency_max_arena_bytes = 1;  // trips on the first valency pass
  SpaceBoundAdversary adversary(proto, opts);
  const auto res = adversary.run();
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.budget_exhausted);
  EXPECT_NE(res.error.find("budget"), std::string::npos) << res.error;
}

TEST(Adversary, UnbudgetedRunStillSucceeds) {
  consensus::BallotConsensus proto(3, 6);
  SpaceBoundAdversary adversary(proto, {});
  const auto res = adversary.run();
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_FALSE(res.budget_exhausted);
}

}  // namespace
}  // namespace tsb::bound
