// In-flight introspection: memory ledger, sampling profiler, flight
// recorder, status file — and the end-to-end budget-exhaustion story the
// pieces exist for (a run killed by --mem-budget must leave a ledger
// attribution, a flight dump, and a status file an operator can read).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bound/adversary.hpp"
#include "consensus/ballot.hpp"
#include "obs/obs.hpp"
#include "report.hpp"

namespace tsb {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_path(const char* stem) {
  return ::testing::TempDir() + stem;
}

// --- memory ledger ---------------------------------------------------------

TEST(MemLedger, SetGetTotalAndPeak) {
  obs::MemLedger ledger;
  EXPECT_EQ(ledger.total(), 0u);
  ledger.set(obs::MemAccount::kArenaWords, 1024);
  ledger.set(obs::MemAccount::kReachEdges, 2048);
  EXPECT_EQ(ledger.get(obs::MemAccount::kArenaWords), 1024u);
  EXPECT_EQ(ledger.total(), 3072u);
  // Shrinking a gauge lowers total but never the watermark.
  ledger.set(obs::MemAccount::kReachEdges, 512);
  EXPECT_EQ(ledger.total(), 1536u);
  EXPECT_EQ(ledger.peak(obs::MemAccount::kReachEdges), 2048u);
  EXPECT_EQ(ledger.peak_total(), 3072u);
  ledger.reset();
  EXPECT_EQ(ledger.total(), 0u);
  EXPECT_EQ(ledger.peak_total(), 0u);
}

TEST(MemLedger, AttributionNamesTopAccounts) {
  obs::MemLedger ledger;
  EXPECT_EQ(ledger.attribution(3), "no tracked allocations");
  ledger.set(obs::MemAccount::kReachNodes, 3 << 20);
  ledger.set(obs::MemAccount::kValencyMemo, 1 << 20);
  const std::string attr = ledger.attribution(2);
  EXPECT_NE(attr.find("reach.nodes"), std::string::npos);
  EXPECT_NE(attr.find("valency.memo"), std::string::npos);
  EXPECT_NE(attr.find("75%"), std::string::npos);
}

TEST(MemLedger, JsonRoundTripsThroughReportParser) {
  obs::MemLedger ledger;
  ledger.set(obs::MemAccount::kArenaTable, 4096);
  report::JsonValue v;
  ASSERT_TRUE(report::parse_json(ledger.json(), v));
  EXPECT_EQ(v.int_or("arena.table", 0), 4096);
}

TEST(MemLedger, RenderShowsSharesAndPeaks) {
  obs::MemLedger ledger;
  ledger.set(obs::MemAccount::kExploreFrontier, 1 << 20);
  std::ostringstream out;
  ledger.render(out);
  EXPECT_NE(out.str().find("explore.frontier"), std::string::npos);
  EXPECT_NE(out.str().find("100.0%"), std::string::npos);
}

// --- sampling profiler -----------------------------------------------------

TEST(Profiler, SamplesAttributeToSpanLabels) {
  obs::Profiler& prof = obs::Profiler::global();
  ASSERT_TRUE(prof.start(500));
  EXPECT_TRUE(obs::profiler_enabled());
  {
    obs::Span span("introspection.spin");
    // Busy-burn enough cpu for SIGPROF to fire a few times at 500 Hz.
    volatile std::uint64_t sink = 0;
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(120);
    while (std::chrono::steady_clock::now() < until) {
      for (int i = 0; i < 1000; ++i) sink += static_cast<std::uint64_t>(i);
    }
  }
  prof.stop();
  EXPECT_FALSE(obs::profiler_enabled());
  EXPECT_GT(prof.cpu_samples() + prof.wall_samples(), 0u);

  const auto stats = prof.aggregate();
  bool found = false;
  for (const auto& row : stats) {
    if (row.label == "introspection.spin") {
      found = true;
      EXPECT_GT(row.cpu_self + row.wall_self, 0u);
      EXPECT_GE(row.cpu_total, row.cpu_self);
    }
  }
  EXPECT_TRUE(found) << "span label never sampled";

  std::ostringstream out;
  prof.render(out);
  EXPECT_NE(out.str().find("introspection.spin"), std::string::npos);
}

// --- flight recorder -------------------------------------------------------
//
// Rings are created per thread at first record with the then-current
// capacity and are never freed, so these tests run in definition order:
// the wrap test goes first (its spawned thread gets a 16-slot ring before
// any larger capacity is configured).

TEST(Flight, RingOverwritesOldestWhenFull) {
  obs::flight::enable(/*ring_events=*/16);
  // Record from a fresh thread so this test owns the ring it asserts on.
  std::thread writer([] {
    for (int i = 0; i < 100; ++i) {
      obs::flight::record(obs::flight::Ev::kBudgetCheck, 1000 + i, 0);
    }
  });
  writer.join();
  const std::string path = temp_path("flight_ring.jsonl");
  ASSERT_TRUE(obs::flight::dump(path, "wrap"));
  obs::flight::disable();
  // Only the last ring_events survive; the dump stays bounded.
  const std::string text = slurp(path);
  EXPECT_EQ(text.find("\"a\":1000,"), std::string::npos);
  EXPECT_NE(text.find("\"a\":1099"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Flight, RecordsFromTwoThreadsAndDumpsParseableJsonl) {
  obs::flight::enable(/*ring_events=*/256);
  const std::uint64_t before = obs::flight::events_recorded();
  obs::flight::record(obs::flight::Ev::kPhase, 1);
  std::thread other([] {
    for (int i = 0; i < 10; ++i) {
      obs::flight::record(obs::flight::Ev::kValencyQuery, i, i % 2);
    }
  });
  other.join();
  EXPECT_GE(obs::flight::events_recorded(), before + 11);

  const std::string path = temp_path("flight_two_threads.jsonl");
  ASSERT_TRUE(obs::flight::dump(path, "test"));
  obs::flight::disable();

  report::RunReport rep;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) rep.ingest_line(line);
  rep.finalize();
  EXPECT_EQ(rep.lines_malformed(), 0u);
  EXPECT_GE(rep.flight_events(), 11u);
  EXPECT_EQ(rep.flight_dump_reason(), "test");
  std::remove(path.c_str());
}

TEST(Flight, Sigusr1RequestsDumpServicedByHeartbeat) {
  obs::flight::enable(/*ring_events=*/64);
  const std::string path = temp_path("flight_usr1.jsonl");
  obs::flight::set_dump_path(path);
  obs::flight::install_signal_handlers();
  obs::flight::record(obs::flight::Ev::kLevel, 7, 42);

  ASSERT_EQ(raise(SIGUSR1), 0);
  // The handler only sets a flag; the next Heartbeat::beat (or a direct
  // service call) performs the dump from a safe context.
  EXPECT_TRUE(obs::flight::service_dump_request());
  EXPECT_FALSE(obs::flight::service_dump_request());  // one-shot
  obs::flight::disable();

  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"reason\":\"sigusr1\""), std::string::npos);
  EXPECT_NE(text.find("\"ev\":\"level\""), std::string::npos);
  std::remove(path.c_str());
}

// --- status file -----------------------------------------------------------

TEST(Status, PublishWritesParseableAtomicSnapshot) {
  const std::string path = temp_path("status.json");
  obs::set_status_file(path);
  ASSERT_TRUE(obs::status_enabled());
  obs::MemLedger::global().set(obs::MemAccount::kReachNodes, 12345);

  obs::StatusSnapshot s;
  s.phase = "test.phase";
  s.level = 3;
  s.frontier = 100;
  s.visited = 500;
  s.cap = 1000;
  obs::publish_status(s);
  obs::set_status_file("");
  EXPECT_FALSE(obs::status_enabled());

  report::JsonValue v;
  ASSERT_TRUE(report::parse_json(slurp(path), v));
  EXPECT_EQ(v.str_or("phase", ""), "test.phase");
  EXPECT_EQ(v.int_or("level", -1), 3);
  EXPECT_EQ(v.int_or("visited", -1), 500);
  EXPECT_EQ(v.int_or("cap", -1), 1000);
  EXPECT_GE(v.num_or("configs_per_sec", -1.0), 0.0);
  const report::JsonValue* ledger = v.find("ledger");
  ASSERT_NE(ledger, nullptr);
  EXPECT_EQ(ledger->int_or("reach.nodes", 0), 12345);
  // No half-written temp file left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  obs::MemLedger::global().reset();
  std::remove(path.c_str());
}

// --- end-to-end: budget exhaustion leaves a full forensic trail ------------

TEST(BudgetExhaustion, LedgerAttributesAndFlightDumpReplays) {
  obs::MemLedger::global().reset();
  obs::flight::enable(/*ring_events=*/4096);

  consensus::BallotConsensus proto(4, 8);
  bound::SpaceBoundAdversary::Options opts;
  opts.valency_max_arena_bytes = 200 << 10;  // trips partway into lemma4
  bound::SpaceBoundAdversary adversary(proto, opts);
  const auto result = adversary.run();
  ASSERT_TRUE(result.budget_exhausted) << result.error;

  // The BudgetExhausted message itself carries the ledger attribution.
  EXPECT_NE(result.error.find("ledger:"), std::string::npos);
  EXPECT_NE(result.error.find("reach."), std::string::npos);

  // The tracked total attributes the engine's memory to named subsystems:
  // everything the reach graph counts against its own budget is in the
  // ledger (the >= 95% acceptance bar, met by construction).
  obs::MemLedger& ledger = obs::MemLedger::global();
  EXPECT_GE(ledger.total(), 200u << 10);
  const std::size_t graph_accounts =
      ledger.get(obs::MemAccount::kReachNodes) +
      ledger.get(obs::MemAccount::kReachEdges) +
      ledger.get(obs::MemAccount::kReachFacts) +
      ledger.get(obs::MemAccount::kReachQuery) +
      ledger.get(obs::MemAccount::kValencyMemo);
  EXPECT_GE(graph_accounts, ledger.total() * 95 / 100);

  // The flight dump replays the run's last moments coherently: phases in
  // construction order, budget checks, and a final trip.
  const std::string path = temp_path("flight_budget.jsonl");
  ASSERT_TRUE(obs::flight::dump(path, "budget"));
  obs::flight::disable();

  report::RunReport rep;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) rep.ingest_line(line);
  rep.finalize();
  EXPECT_EQ(rep.lines_malformed(), 0u);
  EXPECT_GT(rep.flight_events(), 0u);
  EXPECT_EQ(rep.flight_dump_reason(), "budget");
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"ev\":\"phase\""), std::string::npos);
  EXPECT_NE(text.find("\"ev\":\"budget.check\""), std::string::npos);
  EXPECT_NE(text.find("\"ev\":\"budget.trip\""), std::string::npos);

  std::ostringstream rendered;
  rep.render_text(rendered, 5);
  EXPECT_NE(rendered.str().find("flight recorder"), std::string::npos);
  EXPECT_NE(rendered.str().find("budget.trip"), std::string::npos);
  std::remove(path.c_str());
  ledger.reset();
}

// --- out-of-core runs keep the forensic story intact -----------------------

TEST(SpillIntrospection, SpillBytesGetTheirOwnAccountsAndFlightEvents) {
  obs::MemLedger::global().reset();
  obs::flight::enable(/*ring_events=*/4096);

  // Tiny threshold + tiny segments: a small campaign must go out of core.
  consensus::BallotConsensus proto(4, 8);
  bound::SpaceBoundAdversary::Options opts;
  opts.spill_dir = ::testing::TempDir();
  opts.spill_threshold_bytes = 32 << 10;
  opts.spill_seg_configs = 64;
  bound::SpaceBoundAdversary adversary(proto, opts);
  const auto result = adversary.run();
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_TRUE(result.check.ok) << "spilling changed the certificate";

  // Disk-resident and mmap-resident bytes are first-class accounts, not
  // folded into arena.words: an operator reading the ledger can tell RAM
  // from spill file from page cache.
  obs::MemLedger& ledger = obs::MemLedger::global();
  EXPECT_GT(ledger.peak(obs::MemAccount::kArenaSpill), 0u)
      << "the campaign never spilled — threshold/segment hint miscalibrated";
  EXPECT_GT(ledger.peak(obs::MemAccount::kGraphSpill), 0u)
      << "the edge stores never spilled — threshold/segment hint "
         "miscalibrated";
  EXPECT_EQ(obs::mem_account_name(obs::MemAccount::kArenaSpill),
            std::string("arena.spill"));
  EXPECT_EQ(obs::mem_account_name(obs::MemAccount::kArenaMapped),
            std::string("arena.mapped"));
  EXPECT_EQ(obs::mem_account_name(obs::MemAccount::kGraphSpill),
            std::string("graph.spill"));
  EXPECT_EQ(obs::mem_account_name(obs::MemAccount::kGraphMapped),
            std::string("graph.mapped"));

  // The attribution bar survives going out of core: named accounts
  // (including the spill accounts) still cover >= 95% of tracked bytes.
  const std::size_t named =
      ledger.get(obs::MemAccount::kReachNodes) +
      ledger.get(obs::MemAccount::kReachEdges) +
      ledger.get(obs::MemAccount::kReachFacts) +
      ledger.get(obs::MemAccount::kReachQuery) +
      ledger.get(obs::MemAccount::kValencyMemo) +
      ledger.get(obs::MemAccount::kArenaSpill) +
      ledger.get(obs::MemAccount::kArenaMapped) +
      ledger.get(obs::MemAccount::kGraphSpill) +
      ledger.get(obs::MemAccount::kGraphMapped);
  EXPECT_GE(named, ledger.total() * 95 / 100);

  // Every spill left a flight-recorder breadcrumb an operator can replay.
  const std::string path = temp_path("flight_spill.jsonl");
  ASSERT_TRUE(obs::flight::dump(path, "spill"));
  obs::flight::disable();
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"ev\":\"spill\""), std::string::npos);

  report::RunReport rep;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) rep.ingest_line(line);
  rep.finalize();
  EXPECT_EQ(rep.lines_malformed(), 0u);
  std::remove(path.c_str());
  ledger.reset();
}

}  // namespace
}  // namespace tsb
