#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "rt/harness.hpp"

namespace tsb::obs {
namespace {

TEST(Histogram, BucketBoundaries) {
  // Bucket b is exactly the values with bit_width b: {0}, {1}, [2,3],
  // [4,7], ... — every boundary is a power of two.
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(7), 3);
  EXPECT_EQ(Histogram::bucket_of(8), 4);
  EXPECT_EQ(Histogram::bucket_of(1023), 10);
  EXPECT_EQ(Histogram::bucket_of(1024), 11);
  EXPECT_EQ(Histogram::bucket_of(~0ull), 64);

  for (int b = 0; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo(b)), b) << b;
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_hi(b)), b) << b;
    if (b > 0) {
      EXPECT_EQ(Histogram::bucket_hi(b - 1) + 1, Histogram::bucket_lo(b))
          << "buckets must tile the range with no gap at " << b;
    }
  }
}

TEST(Histogram, RecordAndSummarize) {
  Histogram h;
  for (std::uint64_t x : {0ull, 1ull, 2ull, 3ull, 4ull, 100ull, 1000ull}) {
    h.record(x);
  }
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 1110u);
  EXPECT_EQ(h.count_in_bucket(0), 1u);
  EXPECT_EQ(h.count_in_bucket(2), 2u);  // 2 and 3
  // p50 of {0,1,2,3,4,100,1000} is 3; its bucket [2,3] has upper bound 3.
  EXPECT_EQ(h.percentile_upper(50), 3u);
  // p100 lands in 1000's bucket [512,1023].
  EXPECT_EQ(h.percentile_upper(100), 1023u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(Counter, MergeIsExactUnderEightThreads) {
  Counter c;
  Histogram h;
  const int n = 8;
  const std::uint64_t per_thread = 50'000;
  rt::run_threads(n, [&](int) {
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      c.add();
      h.record(i);
    }
  });
  EXPECT_EQ(c.value(), per_thread * n)
      << "sharded relaxed counting must still merge to an exact total";
  EXPECT_EQ(h.count(), per_thread * n);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Registry, NamesAreStableAndJsonExports) {
  Registry& reg = Registry::global();
  Counter& a = reg.counter("test.registry.counter");
  Counter& b = reg.counter("test.registry.counter");
  EXPECT_EQ(&a, &b) << "same name must resolve to the same counter";
  a.reset();
  a.add(41);
  b.add();
  EXPECT_EQ(a.value(), 42u);
  reg.gauge("test.registry.gauge").set(7);
  const std::string json = reg.json();
  EXPECT_NE(json.find("\"test.registry.counter\":42"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"test.registry.gauge\":{\"last\":7,\"max\":7}"),
            std::string::npos)
      << json;
  a.reset();
  reg.gauge("test.registry.gauge").reset();
}

TEST(Gauge, TracksLastAndMax) {
  Gauge g;
  g.set(5);
  g.set(9);
  g.set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 9);
}

// Minimal JSONL field scraping: each line is one flat JSON object written
// by our own exporter, so integer-field extraction by key is sufficient —
// this is a round-trip test, not a JSON parser.
std::int64_t int_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return -1;
  return std::strtoll(line.c_str() + at + needle.size(), nullptr, 10);
}

std::string str_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  return line.substr(start, line.find('"', start) - start);
}

TEST(TraceSink, JsonlRoundTripPreservesPerThreadOrder) {
  TraceSink& sink = TraceSink::global();
  sink.enable(1 << 16);
  const int n = 8;
  const int per_thread = 500;
  rt::run_threads(n, [&](int p) {
    for (int i = 0; i < per_thread; ++i) {
      // Value encodes (thread, sequence) so the parse can check ordering.
      sink.instant("evt", p * per_thread + i);
    }
  });
  sink.disable();
  // n * per_thread instants plus the n "rt.thread" spans the harness emits.
  EXPECT_EQ(sink.size(), static_cast<std::size_t>(n * per_thread + n));
  EXPECT_EQ(sink.dropped(), 0u);

  std::ostringstream out;
  sink.write_jsonl(out);
  std::istringstream in(out.str());

  // Parse back: per thread, ts must be nondecreasing and values must appear
  // in emission order (the sink may interleave threads arbitrarily, but
  // never reorder one thread against itself).
  std::map<std::int64_t, std::int64_t> last_value;
  std::map<std::int64_t, std::int64_t> last_ts;
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) {
    if (str_field(line, "name") != "evt") continue;  // harness span events
    ++lines;
    ASSERT_EQ(str_field(line, "ph"), "i") << line;
    const std::int64_t tid = int_field(line, "tid");
    const std::int64_t ts = int_field(line, "ts_ns");
    const std::int64_t value = int_field(line, "value");
    ASSERT_GE(tid, 0);
    ASSERT_LT(tid, n);
    if (last_value.count(tid)) {
      EXPECT_EQ(value, last_value[tid] + 1)
          << "thread " << tid << " events out of order";
      EXPECT_GE(ts, last_ts[tid]) << "time ran backwards on thread " << tid;
    } else {
      EXPECT_EQ(value, tid * per_thread) << "first event of thread " << tid;
    }
    last_value[tid] = value;
    last_ts[tid] = ts;
  }
  EXPECT_EQ(lines, static_cast<std::size_t>(n * per_thread));
  ASSERT_EQ(last_value.size(), static_cast<std::size_t>(n));
  for (const auto& [tid, v] : last_value) {
    EXPECT_EQ(v, tid * per_thread + per_thread - 1);
  }
}

TEST(TraceSink, BoundedSinkCountsDropsInsteadOfWrapping) {
  TraceSink& sink = TraceSink::global();
  sink.enable(16);
  for (int i = 0; i < 40; ++i) sink.instant("evt", i);
  sink.disable();
  EXPECT_EQ(sink.size(), 16u);
  EXPECT_EQ(sink.dropped(), 24u);
  // The survivors are the prefix — slot claims are in emission order.
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(events[static_cast<std::size_t>(i)].value, i);
}

TEST(TraceSink, DisabledRecordingIsANoOp) {
  TraceSink& sink = TraceSink::global();
  sink.enable(16);
  sink.disable();
  sink.instant("evt", 1);
  sink.counter("evt", 2);
  sink.complete("evt", 0, 1);
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSink, ChromeTraceIsWellFormedJson) {
  TraceSink& sink = TraceSink::global();
  sink.enable(64);
  {
    Span span("outer");
    span.set_value(11);
    sink.counter("covered", 2);
    sink.instant("mark", 3);
  }
  sink.disable();
  std::ostringstream out;
  sink.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_EQ(json.find("\"traceEvents\":["), json.find("\"traceEvents\":"))
      << json;
  // Counter events key their value by the series name (Perfetto's format).
  EXPECT_NE(json.find("\"args\":{\"covered\":2}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << json;
  // Crude but effective structural check: braces balance.
  int depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Heartbeat, DisabledBeatNeverRendersTheLine) {
  set_progress(false);
  Heartbeat hb("test", std::chrono::milliseconds(0));
  bool rendered = false;
  hb.beat([&] {
    rendered = true;
    return std::string("x");
  });
  EXPECT_FALSE(rendered) << "line lambda must not run when progress is off";
}

TEST(Heartbeat, RateLimitSkipsTheLambdaInsideTheInterval) {
  // The interval clock starts at construction, so with a long interval no
  // beat of a short computation ever pays for rendering the line.
  set_progress(true);
  Heartbeat hb("test", std::chrono::hours(1));
  int renders = 0;
  for (int i = 0; i < 1000; ++i) {
    hb.beat([&] {
      ++renders;
      return std::string("never");
    });
  }
  set_progress(false);
  EXPECT_EQ(renders, 0);
}

TEST(Heartbeat, ZeroIntervalRendersEveryBeat) {
  set_progress(true);
  Heartbeat hb("test", std::chrono::milliseconds(0));
  int renders = 0;
  for (int i = 0; i < 3; ++i) {
    hb.beat([&] {
      ++renders;
      return std::string("beat " + std::to_string(renders));
    });
  }
  set_progress(false);
  EXPECT_EQ(renders, 3);
}

TEST(TraceSink, ConcurrentDropAccountingSumsAcrossCategories) {
  // Overfill a tiny buffer from eight threads with a mix of all three
  // event categories; every victim must land in exactly one per-category
  // drop counter, and survivors + drops must reconcile per category.
  TraceSink& sink = TraceSink::global();
  sink.enable(64);
  const int n = 8;
  const int per_thread = 300;
  rt::run_threads(n, [&](int) {
    for (int i = 0; i < per_thread; ++i) {
      switch (i % 3) {
        case 0: sink.instant("evt", i); break;
        case 1: sink.counter("evt", i); break;
        default: sink.complete("evt", 0, 1, i); break;
      }
    }
  });
  sink.disable();
  // Per thread: 100 of each category, plus the harness's own "rt.thread"
  // span at thread exit.
  const std::uint64_t instants = static_cast<std::uint64_t>(n) * 100;
  const std::uint64_t counters = static_cast<std::uint64_t>(n) * 100;
  const std::uint64_t spans = static_cast<std::uint64_t>(n) * 100 + n;
  EXPECT_EQ(sink.size(), 64u);
  EXPECT_EQ(sink.dropped(), instants + counters + spans - 64);
  EXPECT_EQ(sink.dropped(Ph::kComplete) + sink.dropped(Ph::kInstant) +
                sink.dropped(Ph::kCounter),
            sink.dropped())
      << "per-category drops must partition the total";
  std::uint64_t kept[3] = {0, 0, 0};
  for (const TraceEvent& ev : sink.snapshot()) {
    ++kept[ev.ph == Ph::kComplete ? 0 : ev.ph == Ph::kInstant ? 1 : 2];
  }
  EXPECT_EQ(kept[0] + sink.dropped(Ph::kComplete), spans);
  EXPECT_EQ(kept[1] + sink.dropped(Ph::kInstant), instants);
  EXPECT_EQ(kept[2] + sink.dropped(Ph::kCounter), counters);
}

TEST(JsonObj, EscapesQuotesBackslashesAndBluntsControlCharacters) {
  const std::string line = JsonObj()
                               .str("k", "a\"b\\c\nd")
                               .num("n", -3)
                               .boolean("b", true)
                               .raw("a", "[1,2]")
                               .render();
  EXPECT_EQ(line, "{\"k\":\"a\\\"b\\\\c d\",\"n\":-3,\"b\":true,\"a\":[1,2]}");
  EXPECT_EQ(json_int_array({}), "[]");
  EXPECT_EQ(json_int_array({1, -2, 3}), "[1,-2,3]");
}

TEST(JsonlSink, GateFollowsOpenCloseAndLinesCount) {
  JsonlSink& sink = stats_sink();
  ASSERT_FALSE(stats_enabled());
  const std::uint64_t before = sink.lines();
  sink.write("{\"ignored\":true}");  // closed: a no-op, never an error
  EXPECT_EQ(sink.lines(), before);

  const std::string path = ::testing::TempDir() + "obs_jsonl_sink_test.jsonl";
  ASSERT_TRUE(sink.open(path));
  EXPECT_TRUE(stats_enabled()) << "open() must raise the emitters' gate";
  sink.write(JsonObj().str("type", "t").num("x", 1).render());
  sink.write(JsonObj().str("type", "t").num("x", 2).render());
  EXPECT_EQ(sink.lines(), 2u) << "open() must reset the line count";
  EXPECT_GT(sink.now_ns(), 0u);
  sink.close();
  EXPECT_FALSE(stats_enabled()) << "close() must lower the gate";
  sink.write("{\"late\":true}");
  EXPECT_EQ(sink.lines(), 2u);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(int_field(lines[0], "x"), 1);
  EXPECT_EQ(int_field(lines[1], "x"), 2);
  EXPECT_EQ(str_field(lines[0], "type"), "t");
}

TEST(JsonlSink, FailedOpenLeavesTheGateDown) {
  JsonlSink& sink = audit_sink();
  EXPECT_FALSE(sink.open("/nonexistent-dir-tsb-test/audit.jsonl"));
  EXPECT_FALSE(audit_enabled());
}

}  // namespace
}  // namespace tsb::obs
