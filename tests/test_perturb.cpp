#include <gtest/gtest.h>

#include "perturb/counter.hpp"
#include "perturb/perturbation.hpp"
#include "perturb/snapshot.hpp"

namespace tsb::perturb {
namespace {

TEST(LongLivedEngine, CounterIncAndReadSequentially) {
  SwmrCounter counter(3);  // workers p0, p1; reader p2
  LLConfig c = ll_initial(counter);

  auto run0 = ll_run_ops(counter, c, 0, 3);
  ASSERT_TRUE(run0.has_value());
  EXPECT_EQ(run0->config.completed[0], 3);

  auto run1 = ll_run_ops(counter, run0->config, 1, 2);
  ASSERT_TRUE(run1.has_value());

  auto read = ll_run_ops(counter, run1->config, 2, 1);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->last_result, 5) << "read() must sum all completed incs";
}

TEST(LongLivedEngine, IncIsOneWrite) {
  SwmrCounter counter(2);
  LLConfig c = ll_initial(counter);
  sim::Trace trace;
  c = ll_step(counter, c, 0, &trace);  // the write
  c = ll_step(counter, c, 0, &trace);  // the completion
  EXPECT_EQ(c.completed[0], 1);
  ASSERT_EQ(trace.records.size(), 2u);
  EXPECT_TRUE(trace.records[0].op.is_write());
  EXPECT_EQ(trace.records[0].op.reg, 0);
  EXPECT_TRUE(trace.records[1].op.is_decide());
}

TEST(LongLivedEngine, RunOpsReportsCapExhaustion) {
  SwmrCounter counter(2);
  const LLConfig c = ll_initial(counter);
  EXPECT_FALSE(ll_run_ops(counter, c, 0, 1000, /*max_steps=*/5).has_value());
}

TEST(LongLivedEngine, CoveredRegisterTracksPoisedWrites) {
  SwmrCounter counter(2);
  LLConfig c = ll_initial(counter);
  EXPECT_EQ(ll_covered_register(counter, c, 0),
            std::optional<sim::RegId>(0));
  c = ll_step(counter, c, 0);  // write done; poised to complete
  EXPECT_FALSE(ll_covered_register(counter, c, 0).has_value());
}

class SwmrCounterAdversary : public ::testing::TestWithParam<int> {};

TEST_P(SwmrCounterAdversary, CoversNMinusOneDistinctRegisters) {
  const int n = GetParam();
  SwmrCounter counter(n);
  PerturbationAdversary adversary(counter);
  const auto result = adversary.run();
  EXPECT_TRUE(result.covering_complete) << result.narrative;
  EXPECT_EQ(result.distinct_registers, n - 1);
  EXPECT_EQ(result.failed_stage, -1);
  EXPECT_EQ(result.invisible_squeezes, 0)
      << "a correct counter never loses squeezed increments";
  for (const auto& demo : result.demos) {
    EXPECT_TRUE(demo.visible);
    EXPECT_EQ(demo.observer_with - demo.observer_without, demo.squeezed_ops)
        << "every squeezed inc must be visible to the reader";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SwmrCounterAdversary,
                         ::testing::Values(2, 3, 4, 6, 8));

TEST(CyclicCounterAdversary, SpaceStarvedCounterGetsCaught) {
  // m = 2 registers for n = 5 processes: below the JTT bound of n-1 = 4.
  CyclicCounter counter(5, 2);
  PerturbationAdversary adversary(counter);
  const auto result = adversary.run();
  EXPECT_FALSE(result.covering_complete);
  EXPECT_EQ(result.distinct_registers, 2) << "covering stalls at m";
  EXPECT_EQ(result.failed_stage, 2);
  EXPECT_GT(result.invisible_squeezes, 0)
      << "the block write must obliterate some squeezed increments";
}

TEST(CyclicCounterAdversary, InvisibleSqueezeIsALostUpdate) {
  CyclicCounter counter(4, 1);  // every write lands in the one register
  PerturbationAdversary::Options opts;
  opts.squeeze_ops = 5;
  PerturbationAdversary adversary(counter, opts);
  const auto result = adversary.run();
  ASSERT_FALSE(result.demos.empty());
  bool lost = false;
  for (const auto& demo : result.demos) {
    if (!demo.visible) lost = true;
  }
  EXPECT_TRUE(lost);
}

TEST(CyclicCounter, WithEnoughRegistersCoversThem) {
  // m = n-1 exactly meets the bound; the adversary covers all of them.
  CyclicCounter counter(4, 3);
  PerturbationAdversary adversary(counter);
  const auto result = adversary.run();
  EXPECT_TRUE(result.covering_complete) << result.narrative;
  EXPECT_EQ(result.distinct_registers, 3);
}

TEST(Snapshot, SequentialUpdateScan) {
  SwmrSnapshot snap(3);  // updaters p0, p1; scanner p2
  LLConfig c = ll_initial(snap);
  auto u0 = ll_run_ops(snap, c, 0, 2);  // p0's component ends at 2
  ASSERT_TRUE(u0.has_value());
  auto u1 = ll_run_ops(snap, u0->config, 1, 5);  // p1's at 5
  ASSERT_TRUE(u1.has_value());
  auto scan = ll_run_ops(snap, u1->config, 2, 1);
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->last_result, 7) << "digest = sum of component values";
}

TEST(Snapshot, DoubleCollectRetriesOnInterference) {
  SwmrSnapshot snap(2);  // updater p0, scanner p1
  LLConfig c = ll_initial(snap);
  // Scanner completes its first collect (1 read for n=2... n registers = 2:
  // reads R0, R1), then the updater writes, forcing a retry.
  c = ll_step(snap, c, 1);  // scanner reads R0 (first collect)
  c = ll_step(snap, c, 1);  // scanner reads R1 -> first collect done
  c = ll_step(snap, c, 0);  // updater writes R0
  // Scanner's second collect now differs; it must not complete this scan
  // with the stale view.
  auto scan = ll_run_ops(snap, c, 1, 1);
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->last_result, 1) << "scan must reflect the completed update";
}

class SnapshotAdversary : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotAdversary, CoversNMinusOneDistinctRegisters) {
  const int n = GetParam();
  SwmrSnapshot snap(n);
  PerturbationAdversary::Options opts;
  opts.squeeze_ops = 2;
  PerturbationAdversary adversary(snap, opts);
  const auto result = adversary.run();
  EXPECT_TRUE(result.covering_complete) << result.narrative;
  EXPECT_EQ(result.distinct_registers, n - 1);
  EXPECT_EQ(result.invisible_squeezes, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SnapshotAdversary, ::testing::Values(2, 3, 5));

}  // namespace
}  // namespace tsb::perturb
