// Out-of-core edge arrays: the reach graph's per-node successor ids,
// renamings, and decide flags spill to unlinked backing files alongside the
// node arena. The contract mirrors the arena's: spilling is a memory plan,
// not a semantics change —
//
//   * a forced-spill campaign produces the IDENTICAL verdict, certificate,
//     and expansion count as the fully-resident run, at any thread count;
//   * a checkpoint taken while edge segments are on disk restores into a
//     warm oracle that answers without re-exploration;
//   * a write failure on an edge-segment append degrades to
//     util::BudgetExhausted (the CLI's exit-4 path) and leaves no debris —
//     backing files are unlinked at creation, so a fault can strand nothing.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "bound/adversary.hpp"
#include "bound/valency.hpp"
#include "consensus/ballot.hpp"
#include "sim/engine.hpp"
#include "util/checkpoint.hpp"
#include "util/iofault.hpp"
#include "util/require.hpp"
#include "util/spill_store.hpp"

namespace tsb {
namespace {

namespace fs = std::filesystem;
using util::ckpt::SectionReader;
using util::ckpt::SectionWriter;

/// Fresh per-test scratch directory under gtest's temp root.
std::string tdir(const std::string& name) {
  const std::string d = ::testing::TempDir() + "tsb_gspill_" + name;
  std::error_code ec;
  fs::remove_all(d, ec);
  fs::create_directories(d);
  return d;
}

std::size_t dir_entries(const std::string& d) {
  std::size_t n = 0;
  for (const auto& e : fs::directory_iterator(d)) {
    (void)e;
    ++n;
  }
  return n;
}

bound::SpaceBoundAdversary::Result run_adversary(int n, int cap, int threads,
                                                 bool spill, bool graph_spill,
                                                 const std::string& dir) {
  consensus::BallotConsensus proto(n, cap);
  bound::SpaceBoundAdversary::Options opts;
  opts.threads = threads;
  if (spill) {
    opts.spill_dir = dir;
    // Threshold 1 byte + 64-record segments: every cold full segment of
    // every store leaves RAM at each quiescent point, on test-sized runs.
    opts.spill_threshold_bytes = 1;
    opts.spill_seg_configs = 64;
    opts.graph_spill = graph_spill;
  }
  bound::SpaceBoundAdversary adversary(proto, opts);
  return adversary.run();
}

void expect_same_certificate(const bound::SpaceBoundAdversary::Result& a,
                             const bound::SpaceBoundAdversary::Result& b) {
  EXPECT_EQ(a.certificate.protocol, b.certificate.protocol);
  EXPECT_EQ(a.certificate.inputs, b.certificate.inputs);
  EXPECT_EQ(a.certificate.schedule.steps(), b.certificate.schedule.steps());
  EXPECT_EQ(a.certificate.covering, b.certificate.covering);
  EXPECT_EQ(a.check.distinct_registers, b.check.distinct_registers);
  EXPECT_EQ(a.check.registers, b.check.registers);
}

// --- Differential: forced edge spilling ≡ fully resident --------------------

TEST(GraphSpill, ForcedEdgeSpillingMatchesResidentAtAnyThreadCount) {
  const std::pair<int, int> cases[] = {{3, 6}, {4, 8}, {5, 15}};
  for (const auto& [n, cap] : cases) {
    const auto resident = run_adversary(n, cap, 1, false, false, "");
    ASSERT_TRUE(resident.ok) << "n=" << n << ": " << resident.error;
    ASSERT_TRUE(resident.check.ok) << resident.check.error;
    EXPECT_EQ(resident.graph_spilled_bytes, 0u);
    for (const int threads : {1, 2, 4}) {
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " threads=" + std::to_string(threads));
      const std::string dir = tdir("diff_n" + std::to_string(n) + "_t" +
                                   std::to_string(threads));
      const auto spilled = run_adversary(n, cap, threads, true, true, dir);
      ASSERT_TRUE(spilled.ok) << spilled.error;
      EXPECT_TRUE(spilled.check.ok) << spilled.check.error;
      expect_same_certificate(resident, spilled);
      // The engine's discovery order is bit-identical at any thread count,
      // so the expansion counter must match exactly, not approximately.
      EXPECT_EQ(spilled.reach_expanded, resident.reach_expanded);
      EXPECT_EQ(spilled.reach_fact_subsumed, resident.reach_fact_subsumed);
      // The test is vacuous unless edges actually left RAM.
      EXPECT_GT(spilled.graph_spilled_bytes, 0u);
      // Backing files are unlinked at creation: nothing may remain.
      EXPECT_EQ(dir_entries(dir), 0u);
    }
  }
}

TEST(GraphSpill, NoGraphSpillFlagKeepsEdgesResidentWithSameVerdict) {
  // --no-graph-spill reproduces the node-arena-only behaviour: the A/B
  // anchor for attributing wins to edge spilling specifically.
  const auto full = run_adversary(4, 8, 1, true, true, tdir("ab_full"));
  const auto arena_only =
      run_adversary(4, 8, 1, true, false, tdir("ab_arena"));
  ASSERT_TRUE(full.ok) << full.error;
  ASSERT_TRUE(arena_only.ok) << arena_only.error;
  expect_same_certificate(full, arena_only);
  EXPECT_EQ(arena_only.reach_expanded, full.reach_expanded);
  EXPECT_GT(full.graph_spilled_bytes, 0u);
  EXPECT_EQ(arena_only.graph_spilled_bytes, 0u);
}

// --- Checkpoint while edges are on disk -------------------------------------

bound::ValencyOracle::Options spill_opts(const std::string& dir,
                                         bool graph_spill = true) {
  bound::ValencyOracle::Options o;
  o.spill_dir = dir;
  o.spill_threshold_bytes = 1;
  o.spill_seg_configs = 64;
  o.graph_spill = graph_spill;
  return o;
}

TEST(GraphSpillCheckpoint, SaveWithEdgesOnDiskRestoresWarmAndSpilled) {
  consensus::BallotConsensus proto(4, 8);
  const sim::Config init = sim::initial_config(proto, {0, 1, 1, 1});
  const sim::ProcSet everyone = sim::ProcSet::first_n(4);

  bound::ValencyOracle a(proto, spill_opts(tdir("ckpt_a")));
  const bool biv = a.bivalent(init, everyone);
  const bool can0 = a.can_decide(init, everyone, 0);
  // The save must stream edge rows while some of them live on disk —
  // that is the case under test, not an incidental detail.
  ASSERT_GT(a.graph_spilled_bytes(), 0u)
      << "forced spill never engaged; the roundtrip would be vacuous";

  const std::string path = tdir("ckpt_state") + "/state.bin";
  {
    SectionWriter w(path);
    a.save_state(w);
    w.finish();
  }

  bound::ValencyOracle b(proto, spill_opts(tdir("ckpt_b")));
  {
    SectionReader r(path);
    b.restore_state(r);
    r.expect_end();
  }
  EXPECT_EQ(b.graph_nodes(), a.graph_nodes());
  EXPECT_EQ(b.state_fingerprint(), a.state_fingerprint());
  EXPECT_EQ(b.fact_subsumed(), a.fact_subsumed());
  // restore() re-applies the memory plan: the rebuilt stores spill straight
  // back down to the threshold rather than ballooning resident.
  EXPECT_GT(b.graph_spilled_bytes(), 0u);
  EXPECT_EQ(b.bivalent(init, everyone), biv);
  EXPECT_EQ(b.can_decide(init, everyone, 0), can0);
  EXPECT_EQ(b.explorations(), 0u)
      << "restored spilled state missed the memo and re-explored";
}

TEST(GraphSpillCheckpoint, SpilledStateRestoresIntoEdgeResidentOracle) {
  // graph_spill is a pure memory-plan knob, excluded from the fingerprint
  // (unlike spill_thresh/spill_seg, which shape the arena layout): a
  // campaign may checkpoint with edges on disk and resume with them
  // resident, e.g. for an A/B run on the same warm state.
  consensus::BallotConsensus proto(3, 6);
  const sim::Config init = sim::initial_config(proto, {0, 1, 1});
  const sim::ProcSet everyone = sim::ProcSet::first_n(3);

  bound::ValencyOracle spilled(proto, spill_opts(tdir("xr_a")));
  const bool biv = spilled.bivalent(init, everyone);

  const std::string path = tdir("xr_state") + "/state.bin";
  {
    SectionWriter w(path);
    spilled.save_state(w);
    w.finish();
  }

  // Same arena spill plan, edge spilling off.
  bound::ValencyOracle resident(proto,
                                spill_opts(tdir("xr_b"), /*graph_spill=*/false));
  EXPECT_EQ(resident.state_fingerprint(), spilled.state_fingerprint());
  {
    SectionReader r(path);
    resident.restore_state(r);
    r.expect_end();
  }
  EXPECT_EQ(resident.graph_nodes(), spilled.graph_nodes());
  EXPECT_EQ(resident.graph_spilled_bytes(), 0u)
      << "graph_spill=false restore still pushed edges to disk";
  EXPECT_EQ(resident.bivalent(init, everyone), biv);
  EXPECT_EQ(resident.explorations(), 0u);
}

// --- Hostile I/O ------------------------------------------------------------

class GraphSpillFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { util::iofault::disarm(); }
};

TEST_F(GraphSpillFaultTest, EnospcOnEdgeSegmentWriteThrowsBudgetExhausted) {
  // Unit-level: the fault lands on the edge store's own segment append,
  // not on a neighbouring arena write.
  const std::string dir = tdir("enospc_unit");
  util::spill::SpillStore<std::uint64_t> store;
  store.init("graph.test", 4, 0);
  ASSERT_TRUE(store.set_spill(dir, 64));
  store.ensure(512);
  for (std::size_t i = 0; i < 512; ++i) {
    std::uint64_t* row = store.write_ptr(i);
    for (std::size_t w = 0; w < 4; ++w) row[w] = i * 4 + w;
  }
  util::iofault::arm(util::iofault::Kind::kEnospc, 1);
  EXPECT_THROW(
      store.maybe_spill(0, std::numeric_limits<std::size_t>::max()),
      util::BudgetExhausted);
  EXPECT_GE(util::iofault::fired(), 1u);
  util::iofault::disarm();
  EXPECT_EQ(store.spill_failures(), 1u);
  // The failed store keeps serving resident reads — the caller decides to
  // abort (exit 4), the data is never torn.
  EXPECT_EQ(store.read(100)[2], 100u * 4 + 2);
  // No .tmp (or any other) debris: backing files are unlinked at creation.
  EXPECT_EQ(dir_entries(dir), 0u);
}

TEST_F(GraphSpillFaultTest, WriteFaultDuringForcedSpillRunExitsViaBudget) {
  // Integration-level: any spill-write failure inside a forced-spill
  // campaign surfaces as BudgetExhausted (exit 4), never a crash or a
  // wrong verdict, and the spill directory ends empty.
  const std::string dir = tdir("enospc_run");
  consensus::BallotConsensus proto(4, 8);
  bound::ValencyOracle oracle(proto, spill_opts(dir));
  const sim::Config init = sim::initial_config(proto, {0, 1, 1, 1});
  util::iofault::arm(util::iofault::Kind::kEnospc, 1);
  EXPECT_THROW((void)oracle.bivalent(init, sim::ProcSet::first_n(4)),
               util::BudgetExhausted);
  EXPECT_GE(util::iofault::fired(), 1u);
  util::iofault::disarm();
  EXPECT_EQ(dir_entries(dir), 0u);
}

}  // namespace
}  // namespace tsb
