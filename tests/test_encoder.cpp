#include <gtest/gtest.h>

#include <memory>

#include "mutex/bakery.hpp"
#include "mutex/encoder.hpp"
#include "mutex/peterson.hpp"
#include "mutex/tournament.hpp"
#include "util/stats.hpp"

namespace tsb::mutex {
namespace {

enum class Algo { kPeterson, kTournament, kBakery };

std::unique_ptr<MutexAlgorithm> make(Algo a, int n) {
  switch (a) {
    case Algo::kPeterson:
      return std::make_unique<PetersonMutex>(n);
    case Algo::kTournament:
      return std::make_unique<TournamentMutex>(n);
    default:
      return std::make_unique<BakeryMutex>(n);
  }
}

struct Case {
  Algo algo;
  int n;
  CanonicalOptions::Strategy strategy;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const char* names[] = {"peterson", "tournament", "bakery"};
  const char* strat =
      info.param.strategy == CanonicalOptions::Strategy::kSequential
          ? "seq"
          : (info.param.strategy == CanonicalOptions::Strategy::kRoundRobin
                 ? "rr"
                 : "rand");
  return std::string(names[static_cast<int>(info.param.algo)]) + "_n" +
         std::to_string(info.param.n) + "_" + strat + "_s" +
         std::to_string(info.param.seed);
}

class EncoderRoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(EncoderRoundTrip, DecoderRecoversTheCsPermutation) {
  const auto& param = GetParam();
  auto alg = make(param.algo, param.n);
  CanonicalOptions opts;
  opts.strategy = param.strategy;
  opts.seed = param.seed;
  const auto result = run_canonical(*alg, opts);
  ASSERT_TRUE(result.completed) << result.summary();

  const ExecutionEncoding enc = encode_execution(result, param.n);
  EXPECT_EQ(enc.symbols, result.changing_schedule.size());
  EXPECT_EQ(enc.bit_count,
            enc.symbols * static_cast<std::size_t>(enc.bits_per_symbol));

  const bool eager =
      param.strategy != CanonicalOptions::Strategy::kSequential;
  const DecodeResult dec = decode_execution(*alg, enc, eager);
  ASSERT_TRUE(dec.ok) << dec.error;
  EXPECT_EQ(dec.cs_order, result.cs_order)
      << "the encoding must determine the CS permutation";
  EXPECT_EQ(dec.steps_replayed, enc.symbols);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EncoderRoundTrip,
    ::testing::Values(
        Case{Algo::kPeterson, 3, CanonicalOptions::Strategy::kRoundRobin, 1},
        Case{Algo::kPeterson, 5, CanonicalOptions::Strategy::kRandomized, 3},
        Case{Algo::kTournament, 4, CanonicalOptions::Strategy::kRoundRobin, 1},
        Case{Algo::kTournament, 8, CanonicalOptions::Strategy::kRandomized, 9},
        Case{Algo::kBakery, 3, CanonicalOptions::Strategy::kRoundRobin, 1},
        Case{Algo::kBakery, 6, CanonicalOptions::Strategy::kRandomized, 5},
        Case{Algo::kTournament, 6, CanonicalOptions::Strategy::kSequential, 1},
        Case{Algo::kBakery, 4, CanonicalOptions::Strategy::kSequential, 1}),
    case_name);

TEST_P(EncoderRoundTrip, RleVariantAlsoRecoversThePermutation) {
  const auto& param = GetParam();
  auto alg = make(param.algo, param.n);
  CanonicalOptions opts;
  opts.strategy = param.strategy;
  opts.seed = param.seed;
  const auto result = run_canonical(*alg, opts);
  ASSERT_TRUE(result.completed);

  const ExecutionEncoding plain = encode_execution(result, param.n);
  const ExecutionEncoding rle = encode_execution_rle(result, param.n);
  EXPECT_EQ(rle.symbols, plain.symbols);

  const bool eager =
      param.strategy != CanonicalOptions::Strategy::kSequential;
  const DecodeResult dec = decode_execution_rle(*alg, rle, eager);
  ASSERT_TRUE(dec.ok) << dec.error;
  EXPECT_EQ(dec.cs_order, result.cs_order);
  if (param.strategy == CanonicalOptions::Strategy::kSequential) {
    // Long solo runs compress dramatically under run-length coding.
    EXPECT_LT(rle.bit_count, plain.bit_count);
  }
}

TEST(EncoderRle, SequentialRunsCompressTowardO_C) {
  BakeryMutex alg(8);
  CanonicalOptions opts;
  opts.strategy = CanonicalOptions::Strategy::kSequential;
  const auto result = run_canonical(alg, opts);
  ASSERT_TRUE(result.completed);
  const auto plain = encode_execution(result, 8);
  const auto rle = encode_execution_rle(result, 8);
  EXPECT_LT(rle.bit_count * 4, plain.bit_count)
      << "a fully sequential execution is 8 runs; RLE must crush it";
  const auto dec = decode_execution_rle(alg, rle, /*eager_start=*/false);
  ASSERT_TRUE(dec.ok) << dec.error;
  EXPECT_EQ(dec.cs_order, result.cs_order);
}

TEST(EncoderRle, TruncatedStreamFailsCleanly) {
  TournamentMutex alg(4);
  CanonicalOptions opts;
  const auto result = run_canonical(alg, opts);
  ASSERT_TRUE(result.completed);
  ExecutionEncoding rle = encode_execution_rle(result, 4);
  rle.bytes.resize(rle.bytes.size() / 4);
  rle.bit_count = rle.bytes.size() * 8;
  const auto dec = decode_execution_rle(alg, rle, /*eager_start=*/true);
  EXPECT_FALSE(dec.ok);
  EXPECT_FALSE(dec.error.empty());
}

TEST(Encoder, BitsPerSymbolIsCeilLog2) {
  CanonicalResult r;
  r.changing_schedule = {0, 1, 2};
  EXPECT_EQ(encode_execution(r, 2).bits_per_symbol, 1);
  EXPECT_EQ(encode_execution(r, 3).bits_per_symbol, 2);
  EXPECT_EQ(encode_execution(r, 4).bits_per_symbol, 2);
  EXPECT_EQ(encode_execution(r, 5).bits_per_symbol, 3);
  EXPECT_EQ(encode_execution(r, 64).bits_per_symbol, 6);
}

TEST(Encoder, EncodingSizeDominatesInformationBound) {
  // log2(n!) is a lower bound on the bits any lossless encoding of the CS
  // permutation needs; our encodings must sit above it.
  for (int n : {4, 8, 12}) {
    TournamentMutex alg(n);
    CanonicalOptions opts;
    opts.strategy = CanonicalOptions::Strategy::kRandomized;
    opts.seed = 42;
    const auto result = run_canonical(alg, opts);
    ASSERT_TRUE(result.completed);
    const auto enc = encode_execution(result, n);
    EXPECT_GE(static_cast<double>(enc.bit_count), util::log2_factorial(n));
  }
}

TEST(Encoder, DifferentOrdersYieldDifferentEncodings) {
  BakeryMutex alg(4);
  CanonicalOptions a;
  a.strategy = CanonicalOptions::Strategy::kSequential;
  a.order = {0, 1, 2, 3};
  CanonicalOptions b = a;
  b.order = {3, 2, 1, 0};
  const auto ra = run_canonical(alg, a);
  const auto rb = run_canonical(alg, b);
  ASSERT_TRUE(ra.completed);
  ASSERT_TRUE(rb.completed);
  EXPECT_NE(encode_execution(ra, 4).bytes, encode_execution(rb, 4).bytes);
}

TEST(Decoder, DetectsOutOfRangeSymbols) {
  TournamentMutex alg(2);  // 1 bit per symbol; n = 2 ids are always valid,
  // so corrupt by truncation instead: an empty encoding replays nothing.
  ExecutionEncoding enc;
  enc.bits_per_symbol = 1;
  enc.symbols = 0;
  const auto dec = decode_execution(alg, enc, /*eager_start=*/true);
  EXPECT_FALSE(dec.ok);
  EXPECT_FALSE(dec.error.empty());
}

TEST(Decoder, TamperedEncodingDoesNotReproduceTheOrder) {
  BakeryMutex alg(4);
  CanonicalOptions opts;
  opts.strategy = CanonicalOptions::Strategy::kRoundRobin;
  const auto result = run_canonical(alg, opts);
  ASSERT_TRUE(result.completed);
  ExecutionEncoding enc = encode_execution(result, 4);
  ASSERT_FALSE(enc.bytes.empty());
  // Drop the second half of the execution: some process can no longer
  // complete its passage, so the replay must report failure.
  enc.symbols /= 2;
  const auto dec = decode_execution(alg, enc, /*eager_start=*/true);
  EXPECT_FALSE(dec.ok);
  EXPECT_FALSE(dec.error.empty());
}

}  // namespace
}  // namespace tsb::mutex
