#include <gtest/gtest.h>

#include "bound/valency.hpp"
#include "consensus/ballot.hpp"
#include "util/rng.hpp"

namespace tsb::bound {
namespace {

using consensus::BallotConsensus;

class ValencyTest : public ::testing::TestWithParam<int> {
 protected:
  int n() const { return GetParam(); }
};

TEST_P(ValencyTest, Proposition2HoldsAtInitialConfiguration) {
  BallotConsensus proto(n(), 3 * n());
  ValencyOracle oracle(proto);
  std::vector<sim::Value> inputs(static_cast<std::size_t>(n()), 0);
  inputs[1] = 1;
  const Config init = sim::initial_config(proto, inputs);

  EXPECT_TRUE(oracle.univalent_on(init, ProcSet::single(0), 0));
  EXPECT_TRUE(oracle.univalent_on(init, ProcSet::single(1), 1));
  EXPECT_TRUE(oracle.bivalent(init, ProcSet::single(0).with(1)));
  EXPECT_TRUE(oracle.bivalent(init, ProcSet::first_n(n())));
  EXPECT_FALSE(oracle.ever_truncated());
}

TEST_P(ValencyTest, UniformInputsAreUnivalent) {
  BallotConsensus proto(n(), 3 * n());
  ValencyOracle oracle(proto);
  for (sim::Value v : {0, 1}) {
    const std::vector<sim::Value> inputs(static_cast<std::size_t>(n()), v);
    const Config init = sim::initial_config(proto, inputs);
    // Validity: only v can ever be decided.
    EXPECT_TRUE(oracle.univalent_on(init, ProcSet::first_n(n()), v));
  }
}

TEST_P(ValencyTest, SupersetsInheritDecidability) {
  // Proposition 1(ii)/(iii) checked on configurations sampled along random
  // executions.
  BallotConsensus proto(n(), 3 * n());
  ValencyOracle oracle(proto);
  std::vector<sim::Value> inputs(static_cast<std::size_t>(n()), 0);
  inputs[1] = 1;
  Config c = sim::initial_config(proto, inputs);
  util::Rng rng(17);

  for (int step_count = 0; step_count < 12; ++step_count) {
    const ProcSet everyone = ProcSet::first_n(n());
    for (int p = 0; p < n(); ++p) {
      const ProcSet sub = ProcSet::first_n(n()).without(p);
      for (sim::Value v : {0, 1}) {
        if (oracle.can_decide(c, sub, v)) {
          EXPECT_TRUE(oracle.can_decide(c, everyone, v))
              << "superset lost a decidable value";
        }
        if (oracle.univalent_on(c, everyone, v)) {
          EXPECT_TRUE(oracle.univalent_on(c, sub, v))
              << "subset of univalent set not univalent";
        }
      }
    }
    c = sim::step(proto, c, static_cast<int>(rng.below(
                                static_cast<std::uint64_t>(n()))));
  }
}

TEST_P(ValencyTest, DecidingScheduleWitnessesReplay) {
  BallotConsensus proto(n(), 3 * n());
  ValencyOracle oracle(proto);
  std::vector<sim::Value> inputs(static_cast<std::size_t>(n()), 0);
  inputs[1] = 1;
  const Config init = sim::initial_config(proto, inputs);
  const ProcSet everyone = ProcSet::first_n(n());

  for (sim::Value v : {0, 1}) {
    const auto witness = oracle.deciding_schedule(init, everyone, v);
    ASSERT_TRUE(witness.has_value());
    EXPECT_TRUE(witness->only(everyone));
    const Config end = sim::run(proto, init, *witness);
    EXPECT_TRUE(sim::some_decided(proto, end, v));
  }
}

TEST_P(ValencyTest, SomeDecidableAgreesWithCanDecide) {
  BallotConsensus proto(n(), 3 * n());
  ValencyOracle oracle(proto);
  std::vector<sim::Value> inputs(static_cast<std::size_t>(n()), 1);
  const Config init = sim::initial_config(proto, inputs);
  const sim::Value v = oracle.some_decidable(init, ProcSet::single(0));
  EXPECT_TRUE(oracle.can_decide(init, ProcSet::single(0), v));
  EXPECT_EQ(v, 1);  // validity: all inputs are 1
}

TEST_P(ValencyTest, MemoizationIsConsistent) {
  BallotConsensus proto(n(), 3 * n());
  ValencyOracle oracle(proto);
  std::vector<sim::Value> inputs(static_cast<std::size_t>(n()), 0);
  inputs[1] = 1;
  const Config init = sim::initial_config(proto, inputs);
  const ProcSet everyone = ProcSet::first_n(n());

  const bool first = oracle.can_decide(init, everyone, 1);
  const std::size_t misses_before = oracle.queries() - oracle.cache_hits();
  const bool second = oracle.can_decide(init, everyone, 1);
  EXPECT_EQ(first, second);
  EXPECT_EQ(oracle.queries() - oracle.cache_hits(), misses_before)
      << "second identical query should be a cache hit";
}

INSTANTIATE_TEST_SUITE_P(SmallSystems, ValencyTest, ::testing::Values(2, 3));

TEST(Valency, SingletonValencyTracksSoloRun) {
  BallotConsensus proto(2, 6);
  ValencyOracle oracle(proto);
  const Config init = sim::initial_config(proto, {0, 1});
  // A singleton's decidable value from the initial configuration is its
  // solo-run decision.
  for (int p = 0; p < 2; ++p) {
    const auto solo = sim::run_solo(proto, init, p, 10'000);
    ASSERT_TRUE(solo.decided);
    EXPECT_TRUE(oracle.can_decide(init, ProcSet::single(p), solo.decision));
  }
}

}  // namespace
}  // namespace tsb::bound
