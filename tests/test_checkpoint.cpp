// Crash-safe campaigns: the checkpoint state-file format, the durable
// commit protocol, the hostile-I/O fault matrix, and resume soundness.
// The contract under test is three-sided:
//
//   * every write failure degrades to util::BudgetExhausted (the CLI's
//     exit-4 path), never a crash or a half-committed checkpoint;
//   * every read/validation failure — corruption, truncation, version or
//     fingerprint drift, a torn manifest — is refused with
//     util::CheckpointInvalid, never resumed from;
//   * a resumed run replays the deterministic adversary over the warm
//     state and produces the IDENTICAL verdict and certificate that the
//     uninterrupted run produces, at any thread count, even after a
//     SIGKILL that lands mid-write.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bound/adversary.hpp"
#include "bound/valency.hpp"
#include "consensus/ballot.hpp"
#include "sim/config_arena.hpp"
#include "sim/engine.hpp"
#include "util/checkpoint.hpp"
#include "util/iofault.hpp"
#include "util/require.hpp"

namespace tsb {
namespace {

namespace fs = std::filesystem;
using util::BudgetExhausted;
using util::CheckpointInvalid;
using util::CheckpointStop;
using util::ckpt::CheckpointService;
using util::ckpt::Manifest;
using util::ckpt::SectionReader;
using util::ckpt::SectionWriter;

/// Fresh per-test scratch directory under gtest's temp root.
std::string tdir(const std::string& name) {
  const std::string d = ::testing::TempDir() + "tsb_ckpt_" + name;
  std::error_code ec;
  fs::remove_all(d, ec);
  fs::create_directories(d);
  return d;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void flip_byte(const std::string& path, std::size_t off) {
  auto bytes = slurp(path);
  ASSERT_LT(off, bytes.size());
  bytes[off] ^= 0x01;
  spit(path, bytes);
}

/// One "data" section holding bytes 0..63. File layout (all offsets fixed
/// by the format): magic+version = 12, section header = 4 + 4 + 12 = 20,
/// payload at 32..95, END sentinel = 16 bytes at 96..111.
constexpr std::size_t kSamplePayloadOff = 32;
constexpr std::size_t kSamplePayloadLen = 64;
constexpr std::size_t kSampleSentinelLen = 16;

void write_sample(const std::string& path) {
  SectionWriter w(path);
  w.begin("data");
  std::uint8_t buf[kSamplePayloadLen];
  for (std::size_t i = 0; i < sizeof(buf); ++i) {
    buf[i] = static_cast<std::uint8_t>(i);
  }
  w.put_bytes(buf, sizeof(buf));
  w.end();
  w.finish();
}

// --- CRC-32 ----------------------------------------------------------------

TEST(Crc32, KnownAnswerAndSeedChaining) {
  // The IEEE 802.3 check value every CRC-32 implementation must reproduce.
  const char* check = "123456789";
  EXPECT_EQ(util::ckpt::crc32(check, 9), 0xCBF43926u);
  // Seed continuation: folding in two halves equals one pass — the writer
  // streams payloads through exactly this property.
  const std::uint32_t half = util::ckpt::crc32(check, 4);
  EXPECT_EQ(util::ckpt::crc32(check + 4, 5, half),
            util::ckpt::crc32(check, 9));
  EXPECT_EQ(util::ckpt::crc32("", 0), 0u);
}

// --- Section file format ---------------------------------------------------

TEST(SectionFile, RoundtripAllPutGetKinds) {
  const std::string path = tdir("roundtrip") + "/state.bin";
  {
    SectionWriter w(path);
    w.begin("numbers");
    w.put_u8(0xAB);
    w.put_u32(0xDEADBEEFu);
    w.put_u64(0x0123456789ABCDEFull);
    w.put_i64(-42);
    w.end();
    w.begin("text");
    w.put_str("covering certificate");
    w.put_str("");  // empty strings roundtrip too
    w.end();
    w.finish();
    EXPECT_GT(w.bytes_written(), 0u);
  }
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "tmp file must not survive";
  SectionReader r(path);
  r.expect("numbers");
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_i64(), -42);
  r.done();
  r.expect("text");
  EXPECT_EQ(r.get_str(), "covering certificate");
  EXPECT_EQ(r.get_str(), "");
  r.done();
  r.expect_end();
}

TEST(SectionFile, MissingFileIsRefused) {
  EXPECT_THROW(SectionReader r(tdir("missing") + "/nope.bin"),
               CheckpointInvalid);
}

TEST(SectionFile, CorruptPayloadByteIsRefused) {
  const std::string path = tdir("corrupt") + "/state.bin";
  write_sample(path);
  flip_byte(path, kSamplePayloadOff + kSamplePayloadLen / 2);
  SectionReader r(path);
  EXPECT_THROW(r.expect("data"), CheckpointInvalid);
}

TEST(SectionFile, TruncatedPayloadIsRefused) {
  const std::string path = tdir("trunc") + "/state.bin";
  write_sample(path);
  fs::resize_file(path, kSamplePayloadOff + kSamplePayloadLen / 2);
  SectionReader r(path);
  EXPECT_THROW(r.expect("data"), CheckpointInvalid);
}

TEST(SectionFile, MissingEndSentinelIsRefused) {
  // Truncation exactly at a section boundary: the payload itself reads
  // back clean, so only the END sentinel distinguishes "complete file"
  // from "crashed mid-append". The reader must refuse.
  const std::string path = tdir("sentinel") + "/state.bin";
  write_sample(path);
  fs::resize_file(path, fs::file_size(path) - kSampleSentinelLen);
  SectionReader r(path);
  EXPECT_NO_THROW(r.expect("data"));
  EXPECT_THROW(r.expect_end(), CheckpointInvalid);
}

TEST(SectionFile, WrongMagicIsRefused) {
  const std::string path = tdir("magic") + "/state.bin";
  write_sample(path);
  flip_byte(path, 0);
  EXPECT_THROW(SectionReader r(path), CheckpointInvalid);
}

TEST(SectionFile, WrongFormatVersionIsRefused) {
  const std::string path = tdir("version") + "/state.bin";
  write_sample(path);
  flip_byte(path, 8);  // LSB of the little-endian u32 format version
  EXPECT_THROW(SectionReader r(path), CheckpointInvalid);
}

TEST(SectionFile, WrongSectionNameIsRefused) {
  const std::string path = tdir("name") + "/state.bin";
  write_sample(path);
  SectionReader r(path);
  EXPECT_THROW(r.expect("graph"), CheckpointInvalid);
}

TEST(SectionFile, OverreadAndUnderconsumeAreRefused) {
  const std::string path = tdir("cursor") + "/state.bin";
  write_sample(path);
  {
    // Reading past the payload end must throw, not return garbage.
    SectionReader r(path);
    r.expect("data");
    r.get_bytes(kSamplePayloadLen - 4);
    EXPECT_THROW(r.get_u64(), CheckpointInvalid);
  }
  {
    // Leaving bytes unconsumed is a format drift; done() fails loudly.
    SectionReader r(path);
    r.expect("data");
    r.get_u32();
    EXPECT_THROW(r.done(), CheckpointInvalid);
  }
}

// --- Manifest --------------------------------------------------------------

TEST(Manifest, RoundtripPreservesKeys) {
  const std::string path = tdir("manifest") + "/manifest.tsb";
  Manifest m;
  m.set_u64("format", util::ckpt::kFormatVersion);
  m.set_u64("generation", 7);
  m.set("fingerprint", "proto=ballot n=4 cap=8");
  m.set("why", "interval");
  m.save(path);
  const Manifest back = Manifest::load(path);
  EXPECT_EQ(back.kv, m.kv);
  EXPECT_EQ(back.get_u64("generation"), 7u);
  EXPECT_TRUE(back.has("why"));
  EXPECT_FALSE(back.has("absent"));
  EXPECT_THROW(back.get("absent"), std::exception);
}

TEST(Manifest, CorruptTruncatedAndMissingAreRefused) {
  const std::string dir = tdir("manifest_bad");
  const std::string path = dir + "/manifest.tsb";
  Manifest m;
  m.set_u64("generation", 1);
  m.set("fingerprint", "fp");
  m.save(path);

  EXPECT_THROW(Manifest::load(dir + "/never-written.tsb"), CheckpointInvalid);

  const auto pristine = slurp(path);
  flip_byte(path, pristine.size() / 2);
  EXPECT_THROW(Manifest::load(path), CheckpointInvalid);

  spit(path, pristine);
  EXPECT_NO_THROW(Manifest::load(path));  // restored copy is valid again
  fs::resize_file(path, pristine.size() - 4);  // tear off part of the CRC
  EXPECT_THROW(Manifest::load(path), CheckpointInvalid);
}

// --- Hostile-I/O fault matrix ----------------------------------------------

class IoFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { util::iofault::disarm(); }
};

TEST(SectionWriterErrors, RenameFailureLeavesNoTmpDebris) {
  // rename() onto an existing directory fails with EISDIR — a stand-in
  // for any commit-time rename failure. The error contract says "no .tmp
  // debris": finish() must unlink the fully written tmp file itself,
  // because by then it has already closed the fd and the destructor's
  // cleanup no longer fires.
  const std::string dir = tdir("rename_fail");
  const std::string path = dir + "/state.bin";
  fs::create_directories(path);  // occupy the final name with a directory
  EXPECT_THROW(write_sample(path), BudgetExhausted);
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "tmp must be cleaned up";
}

TEST_F(IoFaultTest, EnospcFailsWriterWithBudgetExhausted) {
  const std::string path = tdir("enospc") + "/state.bin";
  util::iofault::arm(util::iofault::Kind::kEnospc, 1);
  EXPECT_THROW(write_sample(path), BudgetExhausted);
  EXPECT_GE(util::iofault::fired(), 1u);
  util::iofault::disarm();
  EXPECT_FALSE(fs::exists(path)) << "failed write must not commit";
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "tmp must be cleaned up";
}

TEST_F(IoFaultTest, ShortWriteDeviceFailsWriterWithBudgetExhausted) {
  // The dying-disk model: one legal short write, then nothing. A correct
  // retry loop makes progress once and must then report the device dead
  // instead of spinning.
  const std::string path = tdir("short") + "/state.bin";
  util::iofault::arm(util::iofault::Kind::kShortWrite, 1);
  EXPECT_THROW(write_sample(path), BudgetExhausted);
  EXPECT_GE(util::iofault::fired(), 1u);
}

TEST_F(IoFaultTest, EintrIsRetriedToSuccess) {
  // EINTR is transient by contract: it injects once and the retry loop
  // must absorb it with no externally visible effect at all.
  const std::string path = tdir("eintr") + "/state.bin";
  util::iofault::arm(util::iofault::Kind::kEintr, 2);
  EXPECT_NO_THROW(write_sample(path));
  EXPECT_EQ(util::iofault::fired(), 1u);
  util::iofault::disarm();
  SectionReader r(path);
  r.expect("data");
  EXPECT_EQ(r.get_bytes(1)[0], 0u);
}

TEST_F(IoFaultTest, BitflipIsCaughtByCrc) {
  const std::string path = tdir("bitflip") + "/state.bin";
  write_sample(path);
  // First read loads magic+version; a mid-buffer flip there is refused at
  // construction. A flip landing in the payload is refused by its CRC.
  // Either way: CheckpointInvalid, never silently corrupt state.
  util::iofault::arm(util::iofault::Kind::kBitflip, 1);
  EXPECT_THROW(
      {
        SectionReader r(path);
        r.expect("data");
      },
      CheckpointInvalid);
}

TEST_F(IoFaultTest, TornRenameStateFileIsRefusedOnLoad) {
  // A crash between "tmp written" and "rename durable", modelled as the
  // renamed file carrying only half its bytes: the writer reports success
  // (the crash is AFTER its syscalls), so only read-side validation can
  // refuse the torn file.
  const std::string path = tdir("torn_state") + "/state.bin";
  util::iofault::arm(util::iofault::Kind::kTornRename, 1);
  EXPECT_NO_THROW(write_sample(path));
  EXPECT_EQ(util::iofault::fired(), 1u);
  util::iofault::disarm();
  EXPECT_THROW(
      {
        SectionReader r(path);
        r.expect("data");
        r.expect_end();
      },
      CheckpointInvalid);
}

TEST_F(IoFaultTest, TornRenameManifestIsRefusedOnLoad) {
  const std::string path = tdir("torn_manifest") + "/manifest.tsb";
  Manifest m;
  m.set_u64("generation", 3);
  m.set("fingerprint", "fp");
  util::iofault::arm(util::iofault::Kind::kTornRename, 1);
  EXPECT_NO_THROW(m.save(path));
  util::iofault::disarm();
  EXPECT_THROW(Manifest::load(path), CheckpointInvalid);
}

TEST_F(IoFaultTest, SpillWriteFailureIsBudgetExhausted) {
  // The arena spill writer shares the wrapped-syscall layer and the same
  // degradation contract: a dead disk mid-spill is a clean budget failure
  // upstream (exit 4 at the CLI), never an abort or silent RAM overrun.
  sim::ConfigArena arena(4, 4);
  ASSERT_TRUE(arena.set_spill(tdir("spill"), 0, 64));
  const std::size_t w = arena.words_per_config();
  std::vector<sim::Value> words(w);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    for (std::size_t j = 0; j < w; ++j) {
      words[j] = static_cast<sim::Value>((i * 31 + j * 7) & 0x3F);
    }
    arena.append_words(words.data());
  }
  util::iofault::arm(util::iofault::Kind::kEnospc, 1);
  EXPECT_THROW(arena.maybe_spill(sim::kNoConfig), BudgetExhausted);
}

// --- CheckpointService orchestration ---------------------------------------

class CheckpointServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { CheckpointService::global().reset(); }
  void TearDown() override {
    CheckpointService::global().reset();
    util::iofault::disarm();
  }

  static void set_trivial_writer() {
    CheckpointService::global().set_writer([](SectionWriter& w) {
      w.begin("trivial");
      w.put_u64(0x5EED);
      w.end();
    });
  }
};

TEST_F(CheckpointServiceTest, WorkCadenceCountsParallelAddWork) {
  auto& svc = CheckpointService::global();
  svc.configure(tdir("cadence"), 0, /*every_work=*/100, "fp");
  set_trivial_writer();
  EXPECT_TRUE(svc.enabled());
  EXPECT_FALSE(svc.due());
  // add_work is the parallel workers' non-quiescent feed: accumulation
  // alone must make the cadence due, with the write deferred to a
  // rendezvoused quiescent point.
  svc.add_work(50);
  EXPECT_FALSE(svc.due());
  svc.add_work(60);
  EXPECT_TRUE(svc.due());
  svc.write_now("interval");
  EXPECT_FALSE(svc.due()) << "write_now must reset the work accumulator";
  EXPECT_EQ(svc.checkpoints_written(), 1u);
  EXPECT_GT(svc.bytes_written(), 0u);
  EXPECT_GE(svc.seconds_since_last_write(), 0);
}

TEST_F(CheckpointServiceTest, GenerationsCommitAndCleanUp) {
  const std::string dir = tdir("gens");
  auto& svc = CheckpointService::global();
  svc.configure(dir, 0, 0, "fp");
  set_trivial_writer();
  svc.write_now("interval");
  svc.write_now("interval");
  // Generation 2 is committed; generation 1's state file is garbage after
  // the commit point and must be gone.
  EXPECT_TRUE(fs::exists(util::ckpt::state_path(dir, 2)));
  EXPECT_FALSE(fs::exists(util::ckpt::state_path(dir, 1)));
  const Manifest m = Manifest::load(util::ckpt::manifest_path(dir));
  EXPECT_EQ(m.get_u64("generation"), 2u);
  EXPECT_EQ(m.get("fingerprint"), "fp");
  EXPECT_EQ(m.get_u64("format"), util::ckpt::kFormatVersion);

  // Reconfiguring over an existing valid checkpoint (the resume path)
  // continues the numbering: the next write must never clobber the state
  // file the manifest still commits to.
  svc.reset();
  svc.configure(dir, 0, 0, "fp");
  set_trivial_writer();
  svc.write_now("interval");
  EXPECT_TRUE(fs::exists(util::ckpt::state_path(dir, 3)));
  EXPECT_FALSE(fs::exists(util::ckpt::state_path(dir, 2)));
  EXPECT_EQ(Manifest::load(util::ckpt::manifest_path(dir)).get_u64(
                "generation"),
            3u);
}

TEST_F(CheckpointServiceTest, StopAfterPollsWritesFinalCheckpointAndThrows) {
  const std::string dir = tdir("stop");
  auto& svc = CheckpointService::global();
  svc.configure(dir, 0, 0, "fp");
  set_trivial_writer();
  svc.stop_after_polls(3);
  EXPECT_NO_THROW(svc.poll(1));
  EXPECT_NO_THROW(svc.poll(1));
  EXPECT_THROW(svc.poll(1), CheckpointStop);
  EXPECT_TRUE(svc.stop_requested());
  EXPECT_EQ(svc.checkpoints_written(), 1u);
  EXPECT_TRUE(fs::exists(util::ckpt::manifest_path(dir)));
}

TEST_F(CheckpointServiceTest, StopWithoutDirectoryStillStopsGracefully) {
  // SIGTERM with no --checkpoint-dir: the run still stops at a quiescent
  // point (instead of dying mid-expansion); there is just nothing to
  // persist.
  auto& svc = CheckpointService::global();
  svc.stop_after_polls(1);
  EXPECT_THROW(svc.poll(1), CheckpointStop);
  EXPECT_EQ(svc.checkpoints_written(), 0u);
}

TEST_F(CheckpointServiceTest, SerializerMayPollWithoutDeadlockOrRecursion) {
  // A serializer whose save_state walks engine code that itself contains
  // quiescent-point hooks (poll/add_work/due) must hit the in_write_
  // reentrancy guard, not deadlock on the service mutex or recurse into a
  // nested write. The write runs with the mutex released, so all three
  // calls return immediately.
  auto& svc = CheckpointService::global();
  svc.configure(tdir("reenter"), 0, /*every_work=*/1, "fp");
  svc.set_writer([&svc](SectionWriter& w) {
    w.begin("reenter");
    EXPECT_NO_THROW(svc.poll(1000));  // due by work count, but in_write_
    EXPECT_FALSE(svc.due());
    svc.add_work(1000);
    w.put_u64(1);
    w.end();
  });
  svc.poll(1);  // work cadence of 1: immediately due, triggers the write
  EXPECT_EQ(svc.checkpoints_written(), 1u)
      << "exactly one write: the serializer's own poll must not nest";
}

// --- Oracle state roundtrip ------------------------------------------------

TEST(OracleState, SaveRestoreRoundtripPreservesVerdictsWarm) {
  consensus::BallotConsensus proto(3, 6);
  const sim::Config init = sim::initial_config(proto, {0, 1, 1});
  const sim::ProcSet everyone = sim::ProcSet::first_n(3);

  bound::ValencyOracle a(proto);
  const bool biv = a.bivalent(init, everyone);
  const bool can0 = a.can_decide(init, everyone, 0);
  ASSERT_GT(a.queries(), 0u);

  const std::string path = tdir("oracle") + "/state.bin";
  {
    SectionWriter w(path);
    a.save_state(w);
    w.finish();
  }

  bound::ValencyOracle b(proto);
  {
    SectionReader r(path);
    b.restore_state(r);
    r.expect_end();
  }
  EXPECT_EQ(b.graph_nodes(), a.graph_nodes());
  EXPECT_EQ(b.state_fingerprint(), a.state_fingerprint());
  // The restored memo answers the same queries without a single fresh
  // reachability pass: that warm-ness is what makes resume's replay of the
  // deterministic adversary cheap AND exact.
  EXPECT_EQ(b.bivalent(init, everyone), biv);
  EXPECT_EQ(b.can_decide(init, everyone, 0), can0);
  EXPECT_EQ(b.explorations(), 0u)
      << "restored state missed the memo and re-explored";
}

TEST(OracleState, RestoreIntoWrongShapeIsRefused) {
  consensus::BallotConsensus p3(3, 6);
  consensus::BallotConsensus p4(4, 8);
  bound::ValencyOracle a(p3);
  const sim::Config init = sim::initial_config(p3, {0, 1, 1});
  (void)a.bivalent(init, sim::ProcSet::first_n(3));

  const std::string path = tdir("oracle_shape") + "/state.bin";
  {
    SectionWriter w(path);
    a.save_state(w);
    w.finish();
  }
  bound::ValencyOracle wrong(p4);
  SectionReader r(path);
  EXPECT_THROW(wrong.restore_state(r), CheckpointInvalid);
}

TEST(OracleState, FingerprintCoversVerdictAffectingOptions) {
  consensus::BallotConsensus p3(3, 6);
  consensus::BallotConsensus p4(4, 8);
  bound::ValencyOracle base(p3);
  bound::ValencyOracle other_shape(p4);
  bound::ValencyOracle no_reuse(p3, {.reuse = false});
  // Threads are deliberately NOT part of the fingerprint: results are
  // thread-independent, so a campaign may resume with a different count.
  bound::ValencyOracle more_threads(p3, {.threads = 4});
  EXPECT_NE(base.state_fingerprint(), other_shape.state_fingerprint());
  EXPECT_NE(base.state_fingerprint(), no_reuse.state_fingerprint());
  EXPECT_EQ(base.state_fingerprint(), more_threads.state_fingerprint());
}

// --- Adversary-level resume ------------------------------------------------

bound::SpaceBoundAdversary::Result run_adversary(
    int n, int cap, int threads, const std::string& checkpoint_dir,
    bool resume, std::uint64_t checkpoint_every, bool reuse = true) {
  consensus::BallotConsensus proto(n, cap);
  bound::SpaceBoundAdversary::Options opts;
  opts.threads = threads;
  opts.reuse = reuse;
  opts.checkpoint_dir = checkpoint_dir;
  opts.checkpoint_every = checkpoint_every;
  opts.resume = resume;
  bound::SpaceBoundAdversary adversary(proto, opts);
  return adversary.run();
}

void expect_same_certificate(const bound::SpaceBoundAdversary::Result& a,
                             const bound::SpaceBoundAdversary::Result& b) {
  EXPECT_EQ(a.certificate.protocol, b.certificate.protocol);
  EXPECT_EQ(a.certificate.inputs, b.certificate.inputs);
  EXPECT_EQ(a.certificate.schedule.steps(), b.certificate.schedule.steps());
  EXPECT_EQ(a.certificate.covering, b.certificate.covering);
  EXPECT_EQ(a.check.distinct_registers, b.check.distinct_registers);
  EXPECT_EQ(a.check.registers, b.check.registers);
}

/// Run n=3 with a tight work cadence to completion, leaving a committed
/// checkpoint behind for the refusal tests to mutilate.
std::string make_completed_checkpoint(const std::string& tag) {
  const std::string dir = tdir(tag);
  CheckpointService::global().reset();
  const auto result = run_adversary(3, 6, 1, dir, false, /*every=*/100);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(fs::exists(util::ckpt::manifest_path(dir)))
      << "cadence never fired on the n=3 run";
  CheckpointService::global().reset();
  return dir;
}

class AdversaryResumeTest : public ::testing::Test {
 protected:
  void SetUp() override { CheckpointService::global().reset(); }
  void TearDown() override { CheckpointService::global().reset(); }
};

TEST_F(AdversaryResumeTest, ResumeWithoutDirectoryIsRefused) {
  EXPECT_THROW(run_adversary(3, 6, 1, "", /*resume=*/true, 0),
               CheckpointInvalid);
}

TEST_F(AdversaryResumeTest, ResumeFromEmptyDirectoryIsRefused) {
  EXPECT_THROW(run_adversary(3, 6, 1, tdir("empty"), /*resume=*/true, 0),
               CheckpointInvalid);
}

TEST_F(AdversaryResumeTest, FingerprintMismatchIsRefused) {
  const std::string dir = make_completed_checkpoint("fp_mismatch");
  // Wrong process count: resuming would silently change the campaign.
  EXPECT_THROW(run_adversary(4, 8, 1, dir, /*resume=*/true, 0),
               CheckpointInvalid);
  CheckpointService::global().reset();
  // Wrong engine flag (reuse off): same refusal, the state layout and the
  // verdict provenance both differ.
  EXPECT_THROW(
      run_adversary(3, 6, 1, dir, /*resume=*/true, 0, /*reuse=*/false),
      CheckpointInvalid);
}

TEST_F(AdversaryResumeTest, FutureFormatVersionIsRefused) {
  const std::string dir = make_completed_checkpoint("format_drift");
  const std::string mpath = util::ckpt::manifest_path(dir);
  Manifest m = Manifest::load(mpath);
  m.set_u64("format", util::ckpt::kFormatVersion + 1);
  m.save(mpath);
  EXPECT_THROW(run_adversary(3, 6, 1, dir, /*resume=*/true, 0),
               CheckpointInvalid);
}

TEST_F(AdversaryResumeTest, CorruptStateFileIsRefused) {
  const std::string dir = make_completed_checkpoint("state_rot");
  const Manifest m = Manifest::load(util::ckpt::manifest_path(dir));
  const std::string spath = dir + "/" + m.get("state");
  ASSERT_TRUE(fs::exists(spath));
  flip_byte(spath, fs::file_size(spath) / 2);
  EXPECT_THROW(run_adversary(3, 6, 1, dir, /*resume=*/true, 0),
               CheckpointInvalid);
}

TEST_F(AdversaryResumeTest, TornManifestIsRefused) {
  const std::string dir = make_completed_checkpoint("manifest_tear");
  const std::string mpath = util::ckpt::manifest_path(dir);
  fs::resize_file(mpath, fs::file_size(mpath) - 4);
  EXPECT_THROW(run_adversary(3, 6, 1, dir, /*resume=*/true, 0),
               CheckpointInvalid);
}

// --- Differential resume soundness -----------------------------------------

TEST_F(AdversaryResumeTest, InterruptedRunResumesToIdenticalCertificate) {
  // The tentpole's acceptance bar: interrupt at a deterministic quiescent
  // point (the test hook stands in for SIGTERM), resume, and require the
  // verdict and certificate to be IDENTICAL to an uninterrupted run — for
  // n = 3..5, at 1/2/4 threads.
  const std::pair<int, int> cases[] = {{3, 6}, {4, 8}, {5, 15}};
  for (const auto& [n, cap] : cases) {
    CheckpointService::global().reset();
    const auto baseline = run_adversary(n, cap, 1, "", false, 0);
    ASSERT_TRUE(baseline.ok) << "n=" << n << ": " << baseline.error;
    for (const int threads : {1, 2, 4}) {
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " threads=" + std::to_string(threads));
      const std::string dir = tdir("diff_n" + std::to_string(n) + "_t" +
                                   std::to_string(threads));
      auto& svc = CheckpointService::global();
      svc.reset();
      svc.stop_after_polls(8);
      const auto stopped = run_adversary(n, cap, threads, dir, false, 0);
      ASSERT_TRUE(stopped.stopped)
          << "hook did not interrupt (ok=" << stopped.ok
          << " error=" << stopped.error << ")";
      ASSERT_FALSE(stopped.ok);
      ASSERT_TRUE(fs::exists(util::ckpt::manifest_path(dir)))
          << "stop did not commit a final checkpoint";

      svc.reset();
      const auto resumed = run_adversary(n, cap, threads, dir, true, 0);
      ASSERT_TRUE(resumed.ok) << resumed.error;
      EXPECT_TRUE(resumed.check.ok) << resumed.check.error;
      expect_same_certificate(baseline, resumed);
      if (threads == 1) {
        // Warm-replay exactness, not just verdict equality: restored
        // counter plus replay expansions equals the uninterrupted total.
        EXPECT_EQ(resumed.reach_expanded, baseline.reach_expanded);
      }
    }
  }
}

TEST_F(AdversaryResumeTest, ResumeIsSoundOnTheNoReuseBackendToo) {
  // reuse = false exercises the Explorer/ParallelExplorer quiescent points
  // and the memo-only (graphless) state file. n = 5 is the smallest
  // instance whose per-pass BFS exceeds the explorers' 4096-expansion poll
  // granularity — smaller no-reuse runs legitimately finish between polls.
  CheckpointService::global().reset();
  const auto baseline = run_adversary(5, 15, 1, "", false, 0, /*reuse=*/false);
  ASSERT_TRUE(baseline.ok) << baseline.error;
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string dir = tdir("noreuse_t" + std::to_string(threads));
    auto& svc = CheckpointService::global();
    svc.reset();
    svc.stop_after_polls(2);
    const auto stopped =
        run_adversary(5, 15, threads, dir, false, 0, /*reuse=*/false);
    ASSERT_TRUE(stopped.stopped) << stopped.error;
    svc.reset();
    const auto resumed =
        run_adversary(5, 15, threads, dir, true, 0, /*reuse=*/false);
    ASSERT_TRUE(resumed.ok) << resumed.error;
    expect_same_certificate(baseline, resumed);
  }
}

// --- Crash recovery (SIGKILL, no unwinding at all) -------------------------

TEST_F(AdversaryResumeTest, SigkillMidRunResumesToIdenticalCertificate) {
  // n = 5 runs long enough (seconds) that SIGKILL reliably lands while the
  // child is still exploring — a genuine mid-campaign crash, not a kill of
  // an already-finished process.
  const std::string dir = tdir("sigkill");
  const auto baseline = run_adversary(5, 15, 1, "", false, 0);
  ASSERT_TRUE(baseline.ok) << baseline.error;

  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1) << std::strerror(errno);
  if (pid == 0) {
    // Child: checkpoint on a tight cadence until SIGKILL lands. No gtest
    // machinery here — a killed child must not run parent teardown.
    CheckpointService::global().reset();
    (void)run_adversary(5, 15, 1, dir, false, /*every=*/20000);
    ::_exit(0);
  }
  // Parent: wait for the first committed manifest, then kill without any
  // warning — the hardest crash there is. Whatever instant the kill lands
  // (mid-serialize, mid-rename, between generations), the directory must
  // hold a complete committed checkpoint.
  const std::string manifest = util::ckpt::manifest_path(dir);
  for (int i = 0; i < 20000 && ::access(manifest.c_str(), F_OK) != 0; ++i) {
    ::usleep(1000);
  }
  ::kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_EQ(::access(manifest.c_str(), F_OK), 0)
      << "child never committed a checkpoint";

  CheckpointService::global().reset();
  const auto resumed = run_adversary(5, 15, 1, dir, true, 0);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_TRUE(resumed.check.ok) << resumed.check.error;
  expect_same_certificate(baseline, resumed);
  EXPECT_EQ(resumed.reach_expanded, baseline.reach_expanded);
}

}  // namespace
}  // namespace tsb
