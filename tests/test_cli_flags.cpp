// The CLI's flag parsing is pure (tools/tsb_flags.hpp): it classifies argv
// without opening sinks or toggling globals, which is what lets these tests
// exercise every parse path — notably --threads=0, which historically fell
// through to "bad flag" — without side effects.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "tsb_flags.hpp"

namespace tsb::cli {
namespace {

TEST(ParseArgs, ThreadsZeroMeansAllHardwareThreads) {
  const auto r = parse_args({"adversary", "--threads=0", "4"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.flags.threads, 0);
  EXPECT_EQ(r.args, (std::vector<std::string>{"adversary", "4"}));

  const int resolved = resolve_threads(r.flags.threads);
  EXPECT_GE(resolved, 1);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) EXPECT_EQ(resolved, static_cast<int>(hw));
}

TEST(ParseArgs, PositiveThreadsResolveToThemselves) {
  const auto r = parse_args({"--threads=3"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.flags.threads, 3);
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(1), 1);
}

TEST(ParseArgs, RejectsNegativeAndMalformedThreads) {
  for (const char* bad :
       {"--threads=-1", "--threads=", "--threads=two", "--threads=2x"}) {
    const auto r = parse_args({bad});
    EXPECT_FALSE(r.ok) << bad;
    EXPECT_NE(r.error.find("--threads"), std::string::npos) << r.error;
  }
}

TEST(ParseArgs, FileFlagsLandInTheirFields) {
  const auto r = parse_args({"--trace=t.jsonl", "--stats=s.jsonl",
                             "--audit=a.jsonl", "--baseline=b.json",
                             "--metrics", "--progress"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.flags.trace_file, "t.jsonl");
  EXPECT_EQ(r.flags.stats_file, "s.jsonl");
  EXPECT_EQ(r.flags.audit_file, "a.jsonl");
  EXPECT_EQ(r.flags.baseline_file, "b.json");
  EXPECT_TRUE(r.flags.metrics);
  EXPECT_TRUE(r.flags.progress);
  EXPECT_TRUE(r.args.empty());
}

TEST(ParseArgs, EmptyFileArgumentsAreErrors) {
  for (const char* bad : {"--trace=", "--stats=", "--audit=", "--baseline="}) {
    EXPECT_FALSE(parse_args({bad}).ok) << bad;
  }
}

TEST(ParseArgs, FlagsMayAppearAnywhereAmongPositionals) {
  const auto r =
      parse_args({"report", "run.jsonl", "--top=7", "audit.jsonl"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.flags.top, 7);
  EXPECT_EQ(r.args,
            (std::vector<std::string>{"report", "run.jsonl", "audit.jsonl"}));
}

TEST(ParseArgs, ValencyCapAndTopValidation) {
  const auto ok = parse_args({"--valency-cap=5000", "--top=1"});
  ASSERT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(ok.flags.valency_cap, 5000u);
  EXPECT_EQ(ok.flags.top, 1);
  EXPECT_FALSE(parse_args({"--valency-cap=0"}).ok);
  EXPECT_FALSE(parse_args({"--top=0"}).ok);
  EXPECT_FALSE(parse_args({"--top=-2"}).ok);
}

TEST(ParseArgs, UnknownFlagIsAnError) {
  const auto r = parse_args({"adversary", "--frobnicate"});
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("--frobnicate"), std::string::npos) << r.error;
}

TEST(ParseArgs, DefaultsMatchTheDocumentedOnes) {
  const auto r = parse_args({});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.flags.threads, 1);
  EXPECT_EQ(r.flags.top, 5);
  EXPECT_EQ(r.flags.valency_cap, 0u);
  EXPECT_FALSE(r.flags.metrics);
  EXPECT_FALSE(r.flags.progress);
}

}  // namespace
}  // namespace tsb::cli
