// The CLI's flag parsing is pure (tools/tsb_flags.hpp): it classifies argv
// without opening sinks or toggling globals, which is what lets these tests
// exercise every parse path — notably --threads=0, which historically fell
// through to "bad flag" — without side effects.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "tsb_flags.hpp"

namespace tsb::cli {
namespace {

TEST(ParseArgs, ThreadsZeroMeansAllHardwareThreads) {
  const auto r = parse_args({"adversary", "--threads=0", "4"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.flags.threads, 0);
  EXPECT_EQ(r.args, (std::vector<std::string>{"adversary", "4"}));

  const int resolved = resolve_threads(r.flags.threads);
  EXPECT_GE(resolved, 1);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) EXPECT_EQ(resolved, static_cast<int>(hw));
}

TEST(ParseArgs, PositiveThreadsResolveToThemselves) {
  const auto r = parse_args({"--threads=3"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.flags.threads, 3);
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(1), 1);
}

TEST(ParseArgs, RejectsNegativeAndMalformedThreads) {
  for (const char* bad :
       {"--threads=-1", "--threads=", "--threads=two", "--threads=2x"}) {
    const auto r = parse_args({bad});
    EXPECT_FALSE(r.ok) << bad;
    EXPECT_NE(r.error.find("--threads"), std::string::npos) << r.error;
  }
}

TEST(ParseArgs, FileFlagsLandInTheirFields) {
  const auto r = parse_args({"--trace=t.jsonl", "--stats=s.jsonl",
                             "--audit=a.jsonl", "--baseline=b.json",
                             "--metrics", "--progress"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.flags.trace_file, "t.jsonl");
  EXPECT_EQ(r.flags.stats_file, "s.jsonl");
  EXPECT_EQ(r.flags.audit_file, "a.jsonl");
  EXPECT_EQ(r.flags.baseline_file, "b.json");
  EXPECT_TRUE(r.flags.metrics);
  EXPECT_TRUE(r.flags.progress);
  EXPECT_TRUE(r.args.empty());
}

TEST(ParseArgs, EmptyFileArgumentsAreErrors) {
  for (const char* bad : {"--trace=", "--stats=", "--audit=", "--baseline="}) {
    EXPECT_FALSE(parse_args({bad}).ok) << bad;
  }
}

TEST(ParseArgs, FlagsMayAppearAnywhereAmongPositionals) {
  const auto r =
      parse_args({"report", "run.jsonl", "--top=7", "audit.jsonl"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.flags.top, 7);
  EXPECT_EQ(r.args,
            (std::vector<std::string>{"report", "run.jsonl", "audit.jsonl"}));
}

TEST(ParseArgs, ValencyCapAndTopValidation) {
  const auto ok = parse_args({"--valency-cap=5000", "--top=1"});
  ASSERT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(ok.flags.valency_cap, 5000u);
  EXPECT_EQ(ok.flags.top, 1);
  EXPECT_FALSE(parse_args({"--valency-cap=0"}).ok);
  EXPECT_FALSE(parse_args({"--top=0"}).ok);
  EXPECT_FALSE(parse_args({"--top=-2"}).ok);
}

TEST(ParseArgs, UnknownFlagIsAnError) {
  const auto r = parse_args({"adversary", "--frobnicate"});
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("--frobnicate"), std::string::npos) << r.error;
}

TEST(ParseArgs, DefaultsMatchTheDocumentedOnes) {
  const auto r = parse_args({});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.flags.threads, 1);
  EXPECT_EQ(r.flags.top, 5);
  EXPECT_EQ(r.flags.valency_cap, 0u);
  EXPECT_FALSE(r.flags.metrics);
  EXPECT_FALSE(r.flags.progress);
  EXPECT_EQ(r.flags.runs, 100);
  EXPECT_EQ(r.flags.seed, 1u);
  EXPECT_EQ(r.flags.mix, "all");
  EXPECT_EQ(r.flags.targets, "all");
  EXPECT_EQ(r.flags.chaos_n, 4);
  EXPECT_EQ(r.flags.run_timeout_ms, 5'000u);
  EXPECT_EQ(r.flags.mem_budget, 0u);
  EXPECT_EQ(r.flags.time_budget_ms, 0u);
}

TEST(ParseArgs, ChaosFlagsAcceptBothForms) {
  // The chaos/budget flags take --flag=V and --flag V; both must parse to
  // the same result.
  const auto eq = parse_args({"chaos", "--runs=250", "--seed=9",
                              "--mix=crash,stall", "--targets=ballot,bakery",
                              "--n=6", "--run-timeout-ms=750",
                              "--out=c.jsonl"});
  const auto sp = parse_args({"chaos", "--runs", "250", "--seed", "9",
                              "--mix", "crash,stall", "--targets",
                              "ballot,bakery", "--n", "6", "--run-timeout-ms",
                              "750", "--out", "c.jsonl"});
  for (const auto* r : {&eq, &sp}) {
    ASSERT_TRUE(r->ok) << r->error;
    EXPECT_EQ(r->flags.runs, 250);
    EXPECT_EQ(r->flags.seed, 9u);
    EXPECT_EQ(r->flags.mix, "crash,stall");
    EXPECT_EQ(r->flags.targets, "ballot,bakery");
    EXPECT_EQ(r->flags.chaos_n, 6);
    EXPECT_EQ(r->flags.run_timeout_ms, 750u);
    EXPECT_EQ(r->flags.chaos_file, "c.jsonl");
    EXPECT_EQ(r->args, (std::vector<std::string>{"chaos"}));
  }
}

TEST(ParseArgs, ChaosFlagValidation) {
  EXPECT_FALSE(parse_args({"--runs=0"}).ok);
  EXPECT_FALSE(parse_args({"--runs"}).ok);  // missing value
  EXPECT_FALSE(parse_args({"--n=1"}).ok);
  EXPECT_FALSE(parse_args({"--n=65"}).ok);
  EXPECT_FALSE(parse_args({"--out="}).ok);
  EXPECT_FALSE(parse_args({"--mix="}).ok);
  EXPECT_FALSE(parse_args({"--seed=abc"}).ok);
}

TEST(ParseBytes, SuffixesAndRejects) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_bytes("123", &v));
  EXPECT_EQ(v, 123u);
  EXPECT_TRUE(parse_bytes("64k", &v));
  EXPECT_EQ(v, 64u << 10);
  EXPECT_TRUE(parse_bytes("256M", &v));
  EXPECT_EQ(v, 256u << 20);
  EXPECT_TRUE(parse_bytes("2g", &v));
  EXPECT_EQ(v, 2ull << 30);
  EXPECT_FALSE(parse_bytes("", &v));
  EXPECT_FALSE(parse_bytes("k", &v));
  EXPECT_FALSE(parse_bytes("12q", &v));
  EXPECT_FALSE(parse_bytes("12kb", &v));
}

TEST(ParseArgs, BudgetFlags) {
  const auto r = parse_args({"adversary", "--mem-budget=512m",
                             "--time-budget-ms", "30000", "6"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.flags.mem_budget, 512ull << 20);
  EXPECT_EQ(r.flags.time_budget_ms, 30'000u);
  EXPECT_EQ(r.args, (std::vector<std::string>{"adversary", "6"}));
  EXPECT_FALSE(parse_args({"--mem-budget=0"}).ok);
  EXPECT_FALSE(parse_args({"--mem-budget=lots"}).ok);
  EXPECT_FALSE(parse_args({"--time-budget-ms=0"}).ok);
}

TEST(ParseArgs, IntrospectionFlags) {
  const auto r = parse_args({"adversary", "--progress-interval-ms=250",
                             "--status-file", "st.json", "--flight=fl.jsonl",
                             "--profile", "--profile-hz=97", "5"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.flags.progress_interval_ms, 250u);
  EXPECT_EQ(r.flags.status_file, "st.json");
  EXPECT_EQ(r.flags.flight_file, "fl.jsonl");
  EXPECT_TRUE(r.flags.profile);
  EXPECT_EQ(r.flags.profile_hz, 97);
  EXPECT_EQ(r.args, (std::vector<std::string>{"adversary", "5"}));
}

TEST(ParseArgs, IntrospectionDefaults) {
  const auto r = parse_args({"adversary"});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.flags.progress_interval_ms, 1'000u);
  EXPECT_TRUE(r.flags.status_file.empty());
  EXPECT_TRUE(r.flags.flight_file.empty());
  EXPECT_FALSE(r.flags.profile);
  EXPECT_EQ(r.flags.profile_hz, 200);
  EXPECT_FALSE(r.flags.once);
}

TEST(ParseArgs, IntrospectionValidation) {
  EXPECT_FALSE(parse_args({"--progress-interval-ms=0"}).ok);
  EXPECT_FALSE(parse_args({"--progress-interval-ms=fast"}).ok);
  EXPECT_FALSE(parse_args({"--status-file="}).ok);
  EXPECT_FALSE(parse_args({"--flight="}).ok);
  EXPECT_FALSE(parse_args({"--profile-hz=0"}).ok);
  EXPECT_FALSE(parse_args({"--profile-hz=20000"}).ok);
  EXPECT_FALSE(parse_args({"--status-file"}).ok);  // missing value
}

TEST(ParseArgs, SpillFlagsAcceptBothFormsAndByteSuffixes) {
  const auto eq = parse_args({"adversary", "--spill-threshold=2g",
                              "--spill-dir=/var/tmp", "--spill-seg-configs=512",
                              "7"});
  const auto sp = parse_args({"adversary", "--spill-threshold", "2g",
                              "--spill-dir", "/var/tmp", "--spill-seg-configs",
                              "512", "7"});
  for (const auto* r : {&eq, &sp}) {
    ASSERT_TRUE(r->ok) << r->error;
    EXPECT_EQ(r->flags.spill_threshold, 2ull << 30);
    EXPECT_EQ(r->flags.spill_dir, "/var/tmp");
    EXPECT_EQ(r->flags.spill_seg_configs, 512u);
    EXPECT_EQ(r->args, (std::vector<std::string>{"adversary", "7"}));
  }
}

TEST(ParseArgs, SpillDefaultsAndValidation) {
  const auto r = parse_args({"adversary"});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.flags.spill_threshold, 0u);  // 0 = spilling off
  EXPECT_EQ(r.flags.spill_dir, ".");
  EXPECT_EQ(r.flags.spill_seg_configs, 0u);
  EXPECT_FALSE(parse_args({"--spill-threshold=0"}).ok);
  EXPECT_FALSE(parse_args({"--spill-threshold=big"}).ok);
  EXPECT_FALSE(parse_args({"--spill-threshold"}).ok);  // missing value
  EXPECT_FALSE(parse_args({"--spill-dir="}).ok);
  EXPECT_FALSE(parse_args({"--spill-seg-configs=0"}).ok);
}

TEST(ParseArgs, WorkStealingKnobs) {
  const auto r = parse_args({"adversary", "--chunk-configs=64",
                             "--parallel-threshold", "1024", "--no-reuse"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.flags.chunk_configs, 64u);
  EXPECT_EQ(r.flags.parallel_threshold, 1024u);
  // Defaults: 0 = keep the explorer's built-in tuning.
  const auto d = parse_args({});
  EXPECT_EQ(d.flags.chunk_configs, 0u);
  EXPECT_EQ(d.flags.parallel_threshold, 0u);
  EXPECT_FALSE(parse_args({"--chunk-configs=0"}).ok);
  EXPECT_FALSE(parse_args({"--chunk-configs=many"}).ok);
  // --parallel-threshold=0 parses (explicit "keep the default").
  EXPECT_TRUE(parse_args({"--parallel-threshold=0"}).ok);
  EXPECT_FALSE(parse_args({"--parallel-threshold=soon"}).ok);
}

TEST(ParseArgs, TopSubcommandOnce) {
  const auto r = parse_args({"top", "st.json", "--once"});
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.flags.once);
  EXPECT_EQ(r.args, (std::vector<std::string>{"top", "st.json"}));
}

TEST(ParseArgs, TelemetryFlagsAcceptBothForms) {
  const auto eq = parse_args({"adversary", "--telemetry=run.tsl", "6"});
  const auto sp = parse_args({"adversary", "--telemetry", "run.tsl", "6"});
  for (const auto* r : {&eq, &sp}) {
    ASSERT_TRUE(r->ok) << r->error;
    EXPECT_EQ(r->flags.telemetry_file, "run.tsl");
    EXPECT_EQ(r->args, (std::vector<std::string>{"adversary", "6"}));
  }
  const auto d = parse_args({"adversary"});
  EXPECT_TRUE(d.flags.telemetry_file.empty());
  EXPECT_FALSE(parse_args({"--telemetry="}).ok);
  EXPECT_FALSE(parse_args({"--telemetry"}).ok);  // missing value
}

TEST(ParseArgs, CompareAndTolerance) {
  const auto r = parse_args(
      {"report", "--compare", "a.tsl", "b.tsl", "--tolerance=10.5"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.flags.compare);
  EXPECT_DOUBLE_EQ(r.flags.tolerance, 10.5);
  EXPECT_EQ(r.args, (std::vector<std::string>{"report", "a.tsl", "b.tsl"}));
  const auto d = parse_args({"report", "x.jsonl"});
  ASSERT_TRUE(d.ok);
  EXPECT_FALSE(d.flags.compare);
  EXPECT_DOUBLE_EQ(d.flags.tolerance, 25.0);
  EXPECT_FALSE(parse_args({"--tolerance=-3"}).ok);
  EXPECT_FALSE(parse_args({"--tolerance=loose"}).ok);
  EXPECT_FALSE(parse_args({"--tolerance="}).ok);
  EXPECT_FALSE(parse_args({"--tolerance"}).ok);  // missing value
}

}  // namespace
}  // namespace tsb::cli
