#include <gtest/gtest.h>

#include "sim/model_checker.hpp"
#include "sim/protocol_search.hpp"

namespace tsb::sim {
namespace {

TableProtocolSpec hand_spec() {
  // A 2-state (modes = 1) spec over one register:
  //   s0 (pref 0): decide 0
  //   s1 (pref 1): read R0; empty -> s1, sees 0 -> s0, sees 1 -> s1
  TableProtocolSpec spec;
  spec.n = 2;
  spec.m = 1;
  spec.modes = 1;
  spec.op_kind = {2, 0};
  spec.op_reg = {0, 0};
  spec.op_val = {0, 0};
  spec.read_next = {0, 0, 0, /*s1:*/ 1, 0, 1};
  spec.write_next = {0, 0};
  return spec;
}

TEST(TableProtocol, MechanicsFollowTheTables) {
  TableProtocol proto(hand_spec());
  EXPECT_EQ(proto.initial_state(0, 0), 0);
  EXPECT_EQ(proto.initial_state(1, 1), 1);

  // State 0 decides its preference 0.
  EXPECT_EQ(proto.poised(0, 0), PendingOp::decide(0));
  // State 1 reads R0 and transitions per the observation.
  EXPECT_EQ(proto.poised(0, 1), PendingOp::read(0));
  EXPECT_EQ(proto.after_read(0, 1, kEmptyRegister), 1);
  EXPECT_EQ(proto.after_read(0, 1, 0), 0);
  EXPECT_EQ(proto.after_read(0, 1, 1), 1);
}

TEST(TableProtocol, SpecToStringMentionsEveryState) {
  const std::string s = hand_spec().to_string();
  EXPECT_NE(s.find("s0"), std::string::npos);
  EXPECT_NE(s.find("s1"), std::string::npos);
  EXPECT_NE(s.find("decide 0"), std::string::npos);
}

TEST(FamilySize, MatchesClosedForm) {
  // Per state: m*S^3 reads + 2m*S writes + 1 decide; genomes = per_state^S.
  ProtocolSearch::Options opts;
  opts.n = 2;
  opts.m = 1;
  opts.modes = 1;  // S = 2: (8 + 4 + 1)^2 = 169
  EXPECT_EQ(ProtocolSearch::family_size(opts), 169u);
  opts.m = 2;  // (2*8 + 8 + 1)^2 = 625
  EXPECT_EQ(ProtocolSearch::family_size(opts), 625u);
  opts.modes = 2;  // S = 4: (2*64 + 16 + 1)^4 = 145^4
  EXPECT_EQ(ProtocolSearch::family_size(opts), 145ull * 145 * 145 * 145);
}

TEST(ExhaustiveSearch, EnumeratesTheWholeFamilyOnce) {
  ProtocolSearch::Options opts;
  opts.n = 2;
  opts.m = 1;
  opts.modes = 1;
  const auto stats = ProtocolSearch::exhaustive(opts);
  EXPECT_EQ(stats.candidates, ProtocolSearch::family_size(opts));
}

TEST(ExhaustiveSearch, NoOneRegisterConsensusForTwoProcesses) {
  // Supports the paper's conjecture (space complexity n, proved for
  // n <= 3): no anonymous table protocol solves 2-process OF consensus
  // with a single register — within this family, checked exhaustively.
  for (int modes : {1, 2}) {
    ProtocolSearch::Options opts;
    opts.n = 2;
    opts.m = 1;
    opts.modes = modes;
    opts.max_candidates = modes == 1 ? 0 : 200'000;  // cap the big family
    const auto stats = ProtocolSearch::exhaustive(opts);
    EXPECT_EQ(stats.live, 0u) << "a winner would be a sensational bug";
    EXPECT_TRUE(stats.winners.empty());
    EXPECT_GT(stats.candidates, 0u);
  }
}

TEST(ExhaustiveSearch, SafeButNotLiveProtocolsExist) {
  // Vacuously safe protocols (never deciding) pass agreement + validity
  // and fail solo termination; the counters must reflect that.
  ProtocolSearch::Options opts;
  opts.n = 2;
  opts.m = 1;
  opts.modes = 1;
  const auto stats = ProtocolSearch::exhaustive(opts);
  EXPECT_GT(stats.safe, stats.live);
  EXPECT_GT(stats.skipped_trivial, 0u) << "all-read genomes are skipped";
}

TEST(SampledSearch, RunsTheRequestedNumberOfCandidates) {
  ProtocolSearch::Options opts;
  opts.n = 2;
  opts.m = 2;
  opts.modes = 2;
  util::Rng rng(2024);
  const auto stats = ProtocolSearch::sample(opts, 2000, rng);
  EXPECT_EQ(stats.candidates, 2000u);
  EXPECT_EQ(stats.live, 0u)
      << "a random 2-register winner at this density would be miraculous";
}

TEST(SampledSearch, DeterministicUnderSeed) {
  ProtocolSearch::Options opts;
  opts.n = 2;
  opts.m = 1;
  opts.modes = 2;
  util::Rng a(7), b(7);
  const auto sa = ProtocolSearch::sample(opts, 500, a);
  const auto sb = ProtocolSearch::sample(opts, 500, b);
  EXPECT_EQ(sa.safe, sb.safe);
  EXPECT_EQ(sa.live, sb.live);
  EXPECT_EQ(sa.skipped_trivial, sb.skipped_trivial);
}

}  // namespace
}  // namespace tsb::sim
