#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/explorer.hpp"
#include "toy_protocol.hpp"

namespace tsb::sim {
namespace {

using test::ToyProtocol;

TEST(Config, InitialConfigurationShape) {
  ToyProtocol proto(3);
  const Config c = initial_config(proto, {5, 6, 7});
  EXPECT_EQ(c.states.size(), 3u);
  EXPECT_EQ(c.regs.size(), 3u);
  for (Value r : c.regs) EXPECT_EQ(r, kEmptyRegister);
  EXPECT_FALSE(decision_of(proto, c, 0).has_value());
}

TEST(Config, HashAndEquality) {
  ToyProtocol proto(2);
  const Config a = initial_config(proto, {0, 1});
  const Config b = initial_config(proto, {0, 1});
  const Config c = initial_config(proto, {1, 1});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a, c);  // hash may collide in principle; equality must not
}

TEST(Engine, WriteStepUpdatesRegisterAndState) {
  ToyProtocol proto(2);
  Config c = initial_config(proto, {5, 9});
  Trace trace;
  c = step(proto, c, 0, &trace);
  EXPECT_EQ(c.regs[0], 5);
  EXPECT_EQ(c.regs[1], kEmptyRegister);
  ASSERT_EQ(trace.records.size(), 1u);
  EXPECT_TRUE(trace.records[0].op.is_write());
  EXPECT_EQ(trace.records[0].op.reg, 0);
  EXPECT_EQ(trace.records[0].op.value, 5);
}

TEST(Engine, ReadStepObservesCurrentContents) {
  ToyProtocol proto(2);
  Config c = initial_config(proto, {5, 9});
  c = step(proto, c, 1);  // p1 writes 9 to R1
  c = step(proto, c, 0);  // p0 writes 5 to R0
  Trace trace;
  c = step(proto, c, 0, &trace);  // p0 reads R1 -> 9
  ASSERT_EQ(trace.records.size(), 1u);
  EXPECT_TRUE(trace.records[0].op.is_read());
  EXPECT_EQ(trace.records[0].read_result, 9);
  const auto decision = decision_of(proto, c, 0);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(*decision, 5 + 10 * 10);  // input + 10 * (9 + 1)
}

TEST(Engine, DecidedProcessStepsAreNoOps) {
  ToyProtocol proto(2);
  Config c = initial_config(proto, {1, 2});
  c = run(proto, c, Schedule{0, 0});  // p0: write, read(empty)
  ASSERT_TRUE(decision_of(proto, c, 0).has_value());
  const Config before = c;
  Trace trace;
  c = step(proto, c, 0, &trace);
  EXPECT_EQ(c, before);
  EXPECT_TRUE(trace.records.empty());
}

TEST(Engine, RunAppliesScheduleLeftToRight) {
  ToyProtocol proto(2);
  const Config c = initial_config(proto, {3, 4});
  // p0 reads before p1 writes vs after: decisions differ.
  const Config fast = run(proto, c, Schedule{0, 0, 1, 1});
  const Config slow = run(proto, c, Schedule{1, 0, 0, 1});
  EXPECT_EQ(*decision_of(proto, fast, 0), 3 + 10 * 0);       // read empty
  EXPECT_EQ(*decision_of(proto, slow, 0), 3 + 10 * (4 + 1));  // read 4
}

TEST(Engine, SoloRunStopsAtDecision) {
  ToyProtocol proto(2);
  const Config c = initial_config(proto, {3, 4});
  const SoloRun solo = run_solo(proto, c, 0, 100);
  EXPECT_TRUE(solo.decided);
  EXPECT_EQ(solo.schedule.size(), 2u);
  EXPECT_TRUE(solo.schedule.only(ProcSet::single(0)));
  EXPECT_EQ(solo.decision, 3);
}

TEST(Engine, SoloRunReportsCapExhaustion) {
  ToyProtocol proto(2);
  const Config c = initial_config(proto, {3, 4});
  const SoloRun solo = run_solo(proto, c, 0, 1);  // needs 2 steps
  EXPECT_FALSE(solo.decided);
  EXPECT_EQ(solo.schedule.size(), 1u);
}

TEST(Engine, DecidedSetAndSomeDecided) {
  ToyProtocol proto(2);
  Config c = initial_config(proto, {3, 4});
  EXPECT_TRUE(decided_set(proto, c).is_empty());
  c = run(proto, c, Schedule{0, 0});
  EXPECT_EQ(decided_set(proto, c), ProcSet::single(0));
  EXPECT_TRUE(some_decided(proto, c, 3));
  EXPECT_FALSE(some_decided(proto, c, 4));
}

TEST(Indistinguishability, SeparatesOnRegistersAndStates) {
  ToyProtocol proto(2);
  const Config a = initial_config(proto, {3, 4});
  Config b = a;
  EXPECT_TRUE(indistinguishable(a, b, ProcSet::first_n(2)));

  b.states[0] = 999;  // p0's state differs
  EXPECT_FALSE(indistinguishable(a, b, ProcSet::first_n(2)));
  EXPECT_TRUE(indistinguishable(a, b, ProcSet::single(1)));

  Config c = a;
  c.regs[0] = 77;  // registers are visible to everyone
  EXPECT_FALSE(indistinguishable(a, c, ProcSet::single(1)));
}

TEST(Schedule, AlgebraAndQueries) {
  const Schedule a{0, 1, 0};
  const Schedule b{2};
  const Schedule ab = a + b;
  EXPECT_EQ(ab.size(), 4u);
  EXPECT_EQ(ab[3], 2);
  EXPECT_EQ(ab.prefix(2), (Schedule{0, 1}));
  EXPECT_EQ(a.participants(), ProcSet::single(0).with(1));
  EXPECT_TRUE(a.only(ProcSet::first_n(2)));
  EXPECT_FALSE(ab.only(ProcSet::first_n(2)));
  EXPECT_EQ(Schedule::solo(3, 2).to_string(), "p3 p3");
}

TEST(Explorer, EnumeratesFullToyGraph) {
  ToyProtocol proto(2);
  const Config root = initial_config(proto, {3, 4});
  Explorer explorer(proto);
  std::size_t decided_both = 0;
  auto result =
      explorer.explore(root, ProcSet::first_n(2), [&](const ConfigView& c) {
        if (decided_set(proto, c.materialize()) == ProcSet::first_n(2)) {
          ++decided_both;
        }
        return true;
      });
  EXPECT_FALSE(result.truncated);
  EXPECT_FALSE(result.aborted);
  // Each process runs write-then-read; interleavings produce a small DAG.
  EXPECT_GE(result.visited, 9u);
  EXPECT_LE(result.visited, 16u);
  EXPECT_GE(decided_both, 1u);
}

TEST(Explorer, WitnessReplaysToTarget) {
  ToyProtocol proto(2);
  const Config root = initial_config(proto, {3, 4});
  Explorer explorer(proto);
  std::optional<Config> target;
  explorer.explore(root, ProcSet::first_n(2), [&](const ConfigView& c) {
    if (decided_set(proto, c.materialize()) == ProcSet::first_n(2)) {
      target = c.materialize();
      return false;  // abort at the first fully-decided configuration
    }
    return true;
  });
  ASSERT_TRUE(target.has_value());
  const auto witness = explorer.witness(*target);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(run(proto, root, *witness), *target);
}

TEST(Explorer, RespectsProcessRestriction) {
  ToyProtocol proto(2);
  const Config root = initial_config(proto, {3, 4});
  Explorer explorer(proto);
  auto result = explorer.explore(root, ProcSet::single(0),
                                 [](const ConfigView&) { return true; });
  // p0 alone: root, after write, after read (decided) = 3 configurations.
  EXPECT_EQ(result.visited, 3u);
}

TEST(Explorer, TruncationReported) {
  ToyProtocol proto(3);
  const Config root = initial_config(proto, {1, 2, 3});
  Explorer explorer(proto, {.max_configs = 2});
  auto result = explorer.explore(root, ProcSet::first_n(3),
                                 [](const ConfigView&) { return true; });
  EXPECT_TRUE(result.truncated);
}

}  // namespace
}  // namespace tsb::sim
