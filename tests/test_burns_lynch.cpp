#include <gtest/gtest.h>

#include <memory>

#include "mutex/bakery.hpp"
#include "mutex/burns_lynch.hpp"
#include "mutex/canonical.hpp"
#include "mutex/peterson.hpp"
#include "mutex/tournament.hpp"

namespace tsb::mutex {
namespace {

enum class Algo { kPeterson, kTournament, kBakery };

std::unique_ptr<MutexAlgorithm> make(Algo a, int n) {
  switch (a) {
    case Algo::kPeterson:
      return std::make_unique<PetersonMutex>(n);
    case Algo::kTournament:
      return std::make_unique<TournamentMutex>(n);
    default:
      return std::make_unique<BakeryMutex>(n);
  }
}

struct Case {
  Algo algo;
  int n;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const char* names[] = {"peterson", "tournament", "bakery"};
  return std::string(names[static_cast<int>(info.param.algo)]) + "_n" +
         std::to_string(info.param.n);
}

class BurnsLynchTest : public ::testing::TestWithParam<Case> {};

TEST_P(BurnsLynchTest, CoversNDistinctRegisters) {
  auto alg = make(GetParam().algo, GetParam().n);
  MutexCoveringAdversary adversary(*alg);
  const auto result = adversary.run();
  EXPECT_TRUE(result.complete) << result.narrative;
  EXPECT_EQ(result.distinct_registers, GetParam().n)
      << "Burns-Lynch: a correct mutex must let the adversary cover n "
         "distinct registers";
  EXPECT_EQ(result.invisible_entrant, -1);
  EXPECT_LE(GetParam().n, alg->num_registers())
      << "covering n distinct registers requires space >= n";
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, BurnsLynchTest,
    ::testing::Values(Case{Algo::kPeterson, 2}, Case{Algo::kPeterson, 5},
                      Case{Algo::kTournament, 4}, Case{Algo::kTournament, 7},
                      Case{Algo::kBakery, 3}, Case{Algo::kBakery, 6}),
    case_name);

TEST(BurnsLynch, CoveringProcessesStayPoised) {
  // The covering is simultaneous: replay the construction and verify every
  // recorded (process, register) claim in the final configuration.
  PetersonMutex alg(4);
  MutexCoveringAdversary adversary(alg);
  const auto result = adversary.run();
  ASSERT_TRUE(result.complete);

  MutexConfig cfg = mutex_initial(alg);
  std::set<sim::RegId> covered;
  for (auto [p, claimed] : result.covering) {
    const auto up = static_cast<std::size_t>(p);
    cfg.states[up] = alg.begin_trying(p, cfg.states[up]);
    for (int guard = 0; guard < 100000; ++guard) {
      const sim::PendingOp op = alg.poised(p, cfg.states[up]);
      if (op.is_write() && covered.count(op.reg) == 0) {
        EXPECT_EQ(op.reg, claimed);
        covered.insert(op.reg);
        break;
      }
      cfg = mutex_step(alg, cfg, p).config;
    }
  }
  EXPECT_EQ(covered.size(), 4u);
}

TEST(NaiveLock, CoveringAdversaryCatchesTheInvisibleEntrant) {
  NaiveLock lock(3);
  MutexCoveringAdversary adversary(lock);
  const auto result = adversary.run();
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.invisible_entrant, 1)
      << "p1 must slip into the CS behind p0's covered write";
  EXPECT_EQ(result.distinct_registers, 1);
}

TEST(NaiveLock, CanonicalDriverDetectsBrokenExclusion) {
  NaiveLock lock(3);
  CanonicalOptions opts;
  opts.strategy = CanonicalOptions::Strategy::kRoundRobin;
  const auto result = run_canonical(lock, opts);
  EXPECT_TRUE(result.exclusion_violated)
      << "round-robin drives two processes through the read-write window";
  EXPECT_FALSE(result.completed);
}

TEST(NaiveLock, WorksWithoutContention) {
  // Solo, the naive lock is fine — the bug needs interleaving, which is
  // the point of the covering adversary.
  NaiveLock lock(2);
  CanonicalOptions opts;
  opts.strategy = CanonicalOptions::Strategy::kSequential;
  const auto result = run_canonical(lock, opts);
  EXPECT_TRUE(result.completed) << result.summary();
  EXPECT_FALSE(result.exclusion_violated);
}

}  // namespace
}  // namespace tsb::mutex
