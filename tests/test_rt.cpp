#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>

#include "rt/atomic_registers.hpp"
#include "rt/commit_adopt.hpp"
#include "rt/harness.hpp"
#include "rt/leader_election.hpp"
#include "rt/rt_consensus.hpp"
#include "rt/rt_counter.hpp"
#include "rt/rt_mutex.hpp"
#include "rt/rt_snapshot.hpp"
#include "util/rng.hpp"

namespace tsb::rt {
namespace {

TEST(AtomicRegisters, InstrumentationCountsAccesses) {
  AtomicRegisterArray regs(4);
  regs.write(0, 7);
  regs.write(0, 8);
  regs.write(2, 9);
  EXPECT_EQ(regs.read(0), 8u);
  EXPECT_EQ(regs.read(3), 0u);
  EXPECT_EQ(regs.total_writes(), 3u);
  EXPECT_EQ(regs.total_reads(), 2u);
  EXPECT_EQ(regs.distinct_registers_written(), 2u);
  EXPECT_EQ(regs.written_registers(), (std::vector<std::size_t>{0, 2}));
  regs.reset_stats();
  EXPECT_EQ(regs.total_writes(), 0u);
  EXPECT_EQ(regs.distinct_registers_written(), 0u);
  EXPECT_EQ(regs.read(0), 8u) << "reset_stats must keep contents";
}

TEST(Harness, BarrierReleasesAllThreads) {
  std::atomic<int> done{0};
  run_threads(8, [&](int) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 8);
}

TEST(CommitAdopt, UnanimousProposalsCommit) {
  AtomicRegisterArray regs(CommitAdopt::registers_needed(4));
  CommitAdopt ca(regs, 0, 4);
  std::atomic<int> commits{0};
  run_threads(4, [&](int p) {
    const auto res = ca.propose(p, 5);
    EXPECT_EQ(res.value, 5u);
    if (res.commit) commits.fetch_add(1);
  });
  EXPECT_EQ(commits.load(), 4) << "all-same proposals must all commit";
}

TEST(CommitAdopt, CommitForcesEveryoneToTheValue) {
  for (int trial = 0; trial < 200; ++trial) {
    AtomicRegisterArray regs(CommitAdopt::registers_needed(3));
    CommitAdopt ca(regs, 0, 3);
    std::atomic<std::uint64_t> committed_value{UINT64_MAX};
    std::uint64_t returned[3];
    run_threads(3, [&](int p) {
      const auto res = ca.propose(p, static_cast<std::uint64_t>(p % 2));
      returned[p] = res.value;
      if (res.commit) committed_value.store(res.value);
    });
    const std::uint64_t committed = committed_value.load();
    if (committed != UINT64_MAX) {
      for (int p = 0; p < 3; ++p) {
        EXPECT_EQ(returned[p], committed)
            << "commit-adopt agreement violated in trial " << trial;
      }
    }
  }
}

std::unique_ptr<RtConsensus> make_consensus(int which, int n,
                                            std::uint64_t seed) {
  switch (which) {
    case 0:
      return std::make_unique<RtBallotConsensus>(n);
    case 1:
      return std::make_unique<RtRoundsConsensus>(n);
    case 2:
      return std::make_unique<RtRandomizedConsensus>(
          n, RtRandomizedConsensus::Coin::kLocal, seed);
    default:
      return std::make_unique<RtRandomizedConsensus>(
          n, RtRandomizedConsensus::Coin::kVoting, seed);
  }
}

struct ConsensusCase {
  int which;
  int n;
};

std::string consensus_case_name(
    const ::testing::TestParamInfo<ConsensusCase>& info) {
  static const char* const names[] = {"ballot", "rounds", "randlocal",
                                      "randvote"};
  return std::string(names[info.param.which]) + "_n" +
         std::to_string(info.param.n);
}

class RtConsensusTest : public ::testing::TestWithParam<ConsensusCase> {};

TEST_P(RtConsensusTest, AgreementAndValidityUnderRealThreads) {
  const auto [which, n] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(which) * 1000 +
                static_cast<std::uint64_t>(n));
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    auto consensus = make_consensus(which, n, rng.next());
    std::vector<std::uint64_t> inputs;
    for (int p = 0; p < n; ++p) inputs.push_back(rng.coin() ? 1 : 0);
    std::vector<std::uint64_t> outputs(static_cast<std::size_t>(n));
    run_threads(n, [&](int p) {
      outputs[static_cast<std::size_t>(p)] =
          consensus->propose(p, inputs[static_cast<std::size_t>(p)]);
    });
    const std::uint64_t decided = outputs[0];
    for (int p = 0; p < n; ++p) {
      EXPECT_EQ(outputs[static_cast<std::size_t>(p)], decided)
          << consensus->name() << " trial " << trial;
    }
    EXPECT_TRUE(std::find(inputs.begin(), inputs.end(), decided) !=
                inputs.end())
        << consensus->name() << ": decided value is nobody's input";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, RtConsensusTest,
    ::testing::Values(ConsensusCase{0, 2}, ConsensusCase{0, 4},
                      ConsensusCase{0, 8}, ConsensusCase{1, 2},
                      ConsensusCase{1, 4}, ConsensusCase{1, 8},
                      ConsensusCase{2, 2}, ConsensusCase{2, 4},
                      ConsensusCase{3, 4}, ConsensusCase{3, 8}),
    consensus_case_name);

TEST(RtBallot, SpaceUsageIsExactlyN) {
  const int n = 6;
  RtBallotConsensus consensus(n);
  run_threads(n, [&](int p) {
    (void)consensus.propose(p, static_cast<std::uint64_t>(p % 2));
  });
  // With all n participating, every single-writer register is written:
  // the protocol exercises n >= n-1 registers, matching the bound.
  EXPECT_EQ(consensus.registers().distinct_registers_written(),
            static_cast<std::size_t>(n));
}

TEST(RtCounter, SequentialSemantics) {
  RtSwmrCounter counter(3);
  counter.inc(0);
  counter.inc(0);
  counter.inc(1);
  EXPECT_EQ(counter.read(), 3u);
}

TEST(RtCounter, ConcurrentIncrementsAllLand) {
  const int n = 8;
  const int per_thread = 10'000;
  RtSwmrCounter counter(n);
  run_threads(n, [&](int p) {
    for (int i = 0; i < per_thread; ++i) counter.inc(p);
  });
  EXPECT_EQ(counter.read(), static_cast<std::uint64_t>(n) * per_thread);
}

TEST(RtCounter, ConcurrentReadsAreRegular) {
  // A read concurrent with incs returns at least the incs completed before
  // it started and at most those started before it ended.
  const int workers = 4;
  const int per_thread = 20'000;
  RtSwmrCounter counter(workers + 1);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  run_threads(workers + 1, [&](int p) {
    if (p < workers) {
      for (int i = 0; i < per_thread; ++i) counter.inc(p);
      if (p == 0) stop.store(true);
    } else {
      std::uint64_t last = 0;
      while (!stop.load()) {
        const std::uint64_t now = counter.read();
        if (now < last) violations.fetch_add(1);  // monotonicity
        last = now;
      }
    }
  });
  EXPECT_EQ(violations.load(), 0u);
}

TEST(RtSnapshot, ComponentsAreMonotoneAcrossScans) {
  const int updaters = 3;
  const int per_thread = 5'000;
  RtSwmrSnapshot snap(updaters + 1);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  run_threads(updaters + 1, [&](int p) {
    if (p < updaters) {
      for (int i = 1; i <= per_thread; ++i) {
        snap.update(p, static_cast<std::uint32_t>(i));
      }
      if (p == 0) stop.store(true);
    } else {
      std::vector<std::uint32_t> last(updaters + 1, 0);
      while (!stop.load()) {
        const auto view = snap.scan();
        for (std::size_t i = 0; i < view.size(); ++i) {
          if (view[i] < last[i]) violations.fetch_add(1);
        }
        last = view;
      }
    }
  });
  EXPECT_EQ(violations.load(), 0u)
      << "snapshot components regressed across scans";
}

TEST(RtSnapshot, QuiescentScanIsExact) {
  RtSwmrSnapshot snap(3);
  snap.update(0, 10);
  snap.update(1, 20);
  snap.update(1, 21);
  const auto view = snap.scan();
  EXPECT_EQ(view, (std::vector<std::uint32_t>{10, 21, 0}));
}

struct MutexCase {
  enum class Kind { kPeterson, kTournament, kBakery };
  Kind kind;
  int n;
};

class RtMutexTest : public ::testing::TestWithParam<MutexCase> {};

TEST_P(RtMutexTest, ExclusionProtectsAPlainCounter) {
  const auto [kind, n] = GetParam();
  std::unique_ptr<RtMutex> mtx;
  switch (kind) {
    case MutexCase::Kind::kPeterson:
      mtx = std::make_unique<RtPetersonMutex>(n);
      break;
    case MutexCase::Kind::kTournament:
      mtx = std::make_unique<RtTournamentMutex>(n);
      break;
    case MutexCase::Kind::kBakery:
      mtx = std::make_unique<RtBakeryMutex>(n);
      break;
  }
  const int per_thread = kind == MutexCase::Kind::kPeterson ? 500 : 2000;
  long counter = 0;  // deliberately unprotected by atomics
  run_threads(n, [&](int p) {
    for (int i = 0; i < per_thread; ++i) {
      mtx->lock(p);
      const long snapshot = counter;
      cpu_relax();
      counter = snapshot + 1;
      mtx->unlock(p);
    }
  });
  EXPECT_EQ(counter, static_cast<long>(n) * per_thread)
      << mtx->name() << ": lost updates imply broken mutual exclusion";
}

INSTANTIATE_TEST_SUITE_P(
    Locks, RtMutexTest,
    ::testing::Values(MutexCase{MutexCase::Kind::kPeterson, 2},
                      MutexCase{MutexCase::Kind::kPeterson, 4},
                      MutexCase{MutexCase::Kind::kTournament, 2},
                      MutexCase{MutexCase::Kind::kTournament, 4},
                      MutexCase{MutexCase::Kind::kTournament, 8},
                      MutexCase{MutexCase::Kind::kBakery, 2},
                      MutexCase{MutexCase::Kind::kBakery, 4}),
    [](const auto& info) {
      const char* name =
          info.param.kind == MutexCase::Kind::kPeterson     ? "peterson"
          : info.param.kind == MutexCase::Kind::kTournament ? "tournament"
                                                            : "bakery";
      return std::string(name) + "_n" + std::to_string(info.param.n);
    });

TEST(RtBakery, UsesExactlyTwoNRegisters) {
  RtBakeryMutex mtx(5);
  EXPECT_EQ(mtx.registers().size(), 10u)
      << "bakery: choosing[i] and number[i] per process";
}

TEST(LeaderElection, ExactlyOneLeaderEveryTrial) {
  for (int n : {2, 3, 5, 8}) {
    for (int trial = 0; trial < 50; ++trial) {
      RtLeaderElection election(n);
      std::atomic<int> leaders{0};
      run_threads(n, [&](int p) {
        if (election.participate(p)) leaders.fetch_add(1);
      });
      ASSERT_EQ(leaders.load(), 1)
          << "n = " << n << " trial " << trial << ": leader count wrong";
    }
  }
}

TEST(LeaderElection, SoloParticipantWins) {
  RtLeaderElection election(4);
  EXPECT_TRUE(election.participate(2));
  // A later arrival must lose against the established winner.
  EXPECT_FALSE(election.participate(3));
}

TEST(RandomizedConsensus, RoundsStatisticIsPopulated) {
  RtRandomizedConsensus consensus(4, RtRandomizedConsensus::Coin::kVoting,
                                  1234);
  run_threads(4, [&](int p) {
    (void)consensus.propose(p, static_cast<std::uint64_t>(p % 2));
  });
  EXPECT_GE(consensus.max_round_used(), 0);
  EXPECT_LT(consensus.max_round_used(), 4096);
}

}  // namespace
}  // namespace tsb::rt
