#include <gtest/gtest.h>

#include "consensus/ballot.hpp"
#include "consensus/kset.hpp"
#include "consensus/racing.hpp"
#include "sim/model_checker.hpp"

namespace tsb::sim {
namespace {

using consensus::BallotConsensus;
using consensus::PartitionedKSet;
using consensus::RacingConsensus;

TEST(AllBinaryInputs, EnumeratesLexicographically) {
  const auto inputs = all_binary_inputs(2);
  ASSERT_EQ(inputs.size(), 4u);
  EXPECT_EQ(inputs[0], (std::vector<Value>{0, 0}));
  EXPECT_EQ(inputs[1], (std::vector<Value>{1, 0}));
  EXPECT_EQ(inputs[2], (std::vector<Value>{0, 1}));
  EXPECT_EQ(inputs[3], (std::vector<Value>{1, 1}));
}

TEST(ModelChecker, RacingStrictMajorityIsUnsafe) {
  // The plausible-looking memoryless racing protocol falls to covered-write
  // obliteration — the checker finds the agreement violation at n = 2.
  RacingConsensus proto(2, RacingConsensus::AdoptRule::kStrictMajority);
  ModelChecker::Options opts;
  opts.check_solo_termination = false;
  ModelChecker checker(proto, opts);
  const auto report = checker.check_all_binary_inputs();
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violation.find("distinct values decided"),
            std::string::npos)
      << report.summary();
  ASSERT_TRUE(report.schedule_to_bad.has_value());
  ASSERT_TRUE(report.bad_inputs.has_value());

  // The witness must replay to a genuinely disagreeing configuration.
  const Config init = initial_config(proto, *report.bad_inputs);
  const Config bad = run(proto, init, *report.schedule_to_bad);
  EXPECT_TRUE(some_decided(proto, bad, 0));
  EXPECT_TRUE(some_decided(proto, bad, 1));
}

TEST(ModelChecker, RacingAtLeastRuleIsCorrectForTwoProcesses) {
  // A striking checker find: with the "adopt on >=" rule the memoryless
  // racing protocol IS a correct obstruction-free consensus protocol for
  // n = 2 — finite-state, anonymous, multi-writer, 2 = n registers
  // (consistent with the paper's conjecture that n are necessary).
  // Verified exhaustively, including solo termination from every one of
  // the reachable configurations.
  RacingConsensus proto(2, RacingConsensus::AdoptRule::kAtLeast);
  ModelChecker::Options opts;
  opts.solo_step_cap = 1000;
  ModelChecker checker(proto, opts);
  const auto report = checker.check_all_binary_inputs();
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_FALSE(report.truncated);
  EXPECT_EQ(report.solo_failures, 0u);
}

TEST(ModelChecker, RacingAtLeastRuleFailsAtThreeProcesses) {
  // ... but the same rule falls to a deeper obliteration at n = 3.
  RacingConsensus proto(3, RacingConsensus::AdoptRule::kAtLeast);
  ModelChecker::Options opts;
  opts.check_solo_termination = false;
  ModelChecker checker(proto, opts);
  const auto report = checker.check_all_binary_inputs();
  EXPECT_FALSE(report.ok);
  ASSERT_TRUE(report.schedule_to_bad.has_value());
  const Config init = initial_config(proto, *report.bad_inputs);
  const Config bad = run(proto, init, *report.schedule_to_bad);
  EXPECT_TRUE(some_decided(proto, bad, 0));
  EXPECT_TRUE(some_decided(proto, bad, 1));
}

class BallotSafetyTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BallotSafetyTest, ExhaustiveAgreementAndValidity) {
  const auto [n, cap] = GetParam();
  BallotConsensus proto(n, cap);
  ModelChecker::Options opts;
  opts.max_configs = 10'000'000;
  opts.check_solo_termination = false;
  ModelChecker checker(proto, opts);
  const auto report = checker.check_all_binary_inputs();
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_FALSE(report.truncated);
  EXPECT_GT(report.total_configs, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Caps, BallotSafetyTest,
    ::testing::Values(std::pair{2, 2}, std::pair{2, 4}, std::pair{2, 6},
                      std::pair{3, 3}, std::pair{3, 6}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.first) + "cap" +
             std::to_string(info.param.second);
    });

TEST(ModelChecker, BallotSoloFailuresOnlyAtStuckConfigurations) {
  BallotConsensus proto(2, 4);
  ModelChecker::Options opts;
  opts.solo_step_cap = 200;
  opts.fail_on_solo_violation = false;
  ModelChecker checker(proto, opts);
  const auto report = checker.check_all_binary_inputs();
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_GT(report.solo_failures, 0u)
      << "any finite cap leaves some capped configurations";
  ASSERT_TRUE(report.sample_solo_failure.has_value());

  // The sample failure must be explainable by the cap: some process is
  // stuck or becomes stuck during its fruitless solo run.
  const Config& c = *report.sample_solo_failure;
  bool cap_involved = false;
  for (ProcId p = 0; p < 2; ++p) {
    if (decision_of(proto, c, p)) continue;
    SoloRun solo = run_solo(proto, c, p, 200);
    if (solo.decided) continue;
    for (ProcId q = 0; q < 2; ++q) {
      if (proto.is_stuck_state(solo.final.states[static_cast<std::size_t>(q)])) {
        cap_involved = true;
      }
    }
  }
  EXPECT_TRUE(cap_involved)
      << "a solo failure not caused by the ballot cap would be a real bug";
}

TEST(ModelChecker, KSetSpecAcceptsPartitionedProtocol) {
  PartitionedKSet proto(4, 2, 2);
  ModelChecker::Options opts;
  opts.k = 2;
  opts.max_configs = 20'000'000;
  opts.check_solo_termination = false;
  ModelChecker checker(proto, opts);
  const auto report = checker.check_all_binary_inputs();
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(ModelChecker, ConsensusSpecRejectsKSetProtocol) {
  // With k = 1 the 2-set protocol must be flagged: groups can decide
  // differently.
  PartitionedKSet proto(4, 2, 2);
  ModelChecker::Options opts;
  opts.k = 1;
  opts.max_configs = 20'000'000;
  opts.check_solo_termination = false;
  ModelChecker checker(proto, opts);
  const auto report = checker.check_all_binary_inputs();
  EXPECT_FALSE(report.ok);
}

TEST(ModelChecker, TruncationIsReportedNotSilent) {
  BallotConsensus proto(3, 9);
  ModelChecker::Options opts;
  opts.max_configs = 100;  // far below the real reachable count
  opts.check_solo_termination = false;
  ModelChecker checker(proto, opts);
  const auto report = checker.check_all_binary_inputs();
  EXPECT_TRUE(report.truncated);
  EXPECT_NE(report.summary().find("TRUNCATED"), std::string::npos);
}

TEST(ModelChecker, SoloTerminationFailureProducesViolation) {
  BallotConsensus proto(2, 2);
  ModelChecker::Options opts;
  opts.solo_step_cap = 200;
  opts.fail_on_solo_violation = true;  // strict mode
  ModelChecker checker(proto, opts);
  const auto report = checker.check_all_binary_inputs();
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violation.find("solo termination"), std::string::npos);
}

}  // namespace
}  // namespace tsb::sim
