#include <gtest/gtest.h>

#include <memory>

#include "mutex/bakery.hpp"
#include "mutex/canonical.hpp"
#include "mutex/peterson.hpp"
#include "mutex/tournament.hpp"
#include "mutex/visibility.hpp"
#include "util/stats.hpp"

namespace tsb::mutex {
namespace {

enum class Algo { kPeterson, kTournament, kBakery };

std::unique_ptr<MutexAlgorithm> make(Algo a, int n) {
  switch (a) {
    case Algo::kPeterson:
      return std::make_unique<PetersonMutex>(n);
    case Algo::kTournament:
      return std::make_unique<TournamentMutex>(n);
    default:
      return std::make_unique<BakeryMutex>(n);
  }
}

struct Case {
  Algo algo;
  int n;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const char* names[] = {"peterson", "tournament", "bakery"};
  return std::string(names[static_cast<int>(info.param.algo)]) + "_n" +
         std::to_string(info.param.n);
}

class MutexAlgoTest : public ::testing::TestWithParam<Case> {};

TEST_P(MutexAlgoTest, SequentialCanonicalCompletes) {
  auto alg = make(GetParam().algo, GetParam().n);
  CanonicalOptions opts;
  opts.strategy = CanonicalOptions::Strategy::kSequential;
  const auto result = run_canonical(*alg, opts);
  EXPECT_TRUE(result.completed) << result.summary();
  EXPECT_FALSE(result.exclusion_violated);
  ASSERT_EQ(static_cast<int>(result.cs_order.size()), GetParam().n);
}

TEST_P(MutexAlgoTest, SequentialRespectsRequestedOrder) {
  const int n = GetParam().n;
  auto alg = make(GetParam().algo, n);
  CanonicalOptions opts;
  opts.strategy = CanonicalOptions::Strategy::kSequential;
  for (int p = 0; p < n; ++p) opts.order.push_back(n - 1 - p);  // reversed
  const auto result = run_canonical(*alg, opts);
  ASSERT_TRUE(result.completed) << result.summary();
  EXPECT_EQ(result.cs_order, opts.order);
}

TEST_P(MutexAlgoTest, RoundRobinCanonicalCompletesWithExclusion) {
  auto alg = make(GetParam().algo, GetParam().n);
  CanonicalOptions opts;
  opts.strategy = CanonicalOptions::Strategy::kRoundRobin;
  const auto result = run_canonical(*alg, opts);
  EXPECT_TRUE(result.completed) << result.summary();
  EXPECT_FALSE(result.exclusion_violated);
  EXPECT_EQ(static_cast<int>(result.cs_order.size()), GetParam().n);
  EXPECT_GT(result.rmr_cost, 0);
  EXPECT_GE(result.state_change_cost, result.cs_order.size());
}

TEST_P(MutexAlgoTest, RandomizedSchedulesKeepExclusion) {
  auto alg = make(GetParam().algo, GetParam().n);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    CanonicalOptions opts;
    opts.strategy = CanonicalOptions::Strategy::kRandomized;
    opts.seed = seed;
    const auto result = run_canonical(*alg, opts);
    EXPECT_TRUE(result.completed) << "seed " << seed << ": "
                                  << result.summary();
    EXPECT_FALSE(result.exclusion_violated) << "seed " << seed;
  }
}

TEST_P(MutexAlgoTest, VisibilityGraphIsATournamentChain) {
  auto alg = make(GetParam().algo, GetParam().n);
  CanonicalOptions opts;
  opts.strategy = CanonicalOptions::Strategy::kRandomized;
  opts.seed = 7;
  const auto result = run_canonical(*alg, opts);
  ASSERT_TRUE(result.completed);

  const VisibilityGraph g = build_visibility(result);
  EXPECT_TRUE(g.tournament_complete())
      << "every pair must be ordered:\n"
      << g.to_string();
  EXPECT_EQ(g.chain(), result.cs_order)
      << "the visibility graph determines the CS permutation";
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, MutexAlgoTest,
    ::testing::Values(Case{Algo::kPeterson, 2}, Case{Algo::kPeterson, 3},
                      Case{Algo::kPeterson, 5}, Case{Algo::kTournament, 2},
                      Case{Algo::kTournament, 4}, Case{Algo::kTournament, 7},
                      Case{Algo::kBakery, 2}, Case{Algo::kBakery, 3},
                      Case{Algo::kBakery, 6}),
    case_name);

TEST(CostModel, ReadsAreFreeUntilInvalidated) {
  CostAccountant acct(2, 1);
  EXPECT_EQ(acct.on_read(0, 0), 1);  // first access: miss
  EXPECT_EQ(acct.on_read(0, 0), 0);  // cached
  EXPECT_EQ(acct.on_read(0, 0), 0);
  EXPECT_EQ(acct.on_write(1, 0), 1);  // invalidates p0's copy
  EXPECT_EQ(acct.on_read(0, 0), 1);   // miss again
  EXPECT_EQ(acct.on_read(1, 0), 0);   // the writer's own copy is valid
  EXPECT_EQ(acct.total(), 3);
  EXPECT_EQ(acct.total_for(0), 2);
  EXPECT_EQ(acct.total_for(1), 1);
}

TEST(CostModel, SequentialTournamentPassageIsLogarithmic) {
  // Contention-free passage: O(log n) writes + reads per process.
  for (int n : {2, 4, 8, 16, 32}) {
    TournamentMutex alg(n);
    CanonicalOptions opts;
    opts.strategy = CanonicalOptions::Strategy::kSequential;
    const auto result = run_canonical(alg, opts);
    ASSERT_TRUE(result.completed);
    const double per_passage =
        static_cast<double>(result.rmr_cost) / n;
    EXPECT_LE(per_passage, 6.0 * alg.height() + 6.0)
        << "n = " << n << ": tournament passage must be O(log n)";
  }
}

TEST(CostModel, ContendedSeparationPetersonVsTournament) {
  // Under the contended canonical schedule Peterson pays far more than the
  // tournament; this is the shape E5 quantifies. Here only the ordering is
  // asserted, at one size, so the test stays robust.
  const int n = 16;
  PetersonMutex peterson(n);
  TournamentMutex tournament(n);
  CanonicalOptions opts;
  opts.strategy = CanonicalOptions::Strategy::kRoundRobin;
  const auto pr = run_canonical(peterson, opts);
  const auto tr = run_canonical(tournament, opts);
  ASSERT_TRUE(pr.completed);
  ASSERT_TRUE(tr.completed);
  EXPECT_GT(pr.rmr_cost, 2 * tr.rmr_cost)
      << "peterson=" << pr.rmr_cost << " tournament=" << tr.rmr_cost;
}

TEST(CostModel, BusyWaitingIsFree) {
  // A blocked Peterson process that keeps polling an unchanged memory
  // pays nothing after its first scan.
  PetersonMutex alg(2);
  MutexConfig cfg = mutex_initial(alg);
  CostAccountant acct(2, alg.num_registers());

  // p0 acquires the lock (runs alone to the CS).
  cfg.states[0] = alg.begin_trying(0, cfg.states[0]);
  for (int i = 0; i < 100 && alg.section(0, cfg.states[0]) != Section::kCritical;
       ++i) {
    cfg = mutex_step(alg, cfg, 0, &acct).config;
  }
  ASSERT_EQ(alg.section(0, cfg.states[0]), Section::kCritical);

  // p1 tries and blocks; after warming its cache, further spinning is free.
  cfg.states[1] = alg.begin_trying(1, cfg.states[1]);
  for (int i = 0; i < 50; ++i) cfg = mutex_step(alg, cfg, 1, &acct).config;
  const auto warm = acct.total_for(1);
  for (int i = 0; i < 200; ++i) cfg = mutex_step(alg, cfg, 1, &acct).config;
  EXPECT_EQ(acct.total_for(1), warm)
      << "spinning on unchanged registers must cost zero RMRs";
  EXPECT_EQ(alg.section(1, cfg.states[1]), Section::kTrying);
}

TEST(Canonical, StepCapReportsIncomplete) {
  PetersonMutex alg(3);
  CanonicalOptions opts;
  opts.step_cap = 5;
  const auto result = run_canonical(alg, opts);
  EXPECT_FALSE(result.completed);
}

TEST(Visibility, SequentialRunSeesAllPredecessors) {
  BakeryMutex alg(4);
  CanonicalOptions opts;
  opts.strategy = CanonicalOptions::Strategy::kSequential;
  const auto result = run_canonical(alg, opts);
  ASSERT_TRUE(result.completed);
  const VisibilityGraph g = build_visibility(result);
  // In a fully sequential run the i-th entrant sees exactly i-1 others.
  EXPECT_EQ(g.edge_count(), 4u * 3u / 2u);
  EXPECT_EQ(g.chain(), result.cs_order);
}

}  // namespace
}  // namespace tsb::mutex
