// Canonicalization (sim/canonical.*) and shared-subgraph engine soundness:
//
//  * the canonical form is invariant under all n! process renamings and
//    refine_procset's orbit representative round-trips through its renaming;
//  * the symmetric-mode oracle interns ONE exploration per orbit and every
//    de-canonicalized witness replays through the raw engine;
//  * persisted facts answer repeat queries with zero expansion;
//  * the shared-subgraph backend is bit-identical to the fresh-BFS backend
//    (the differential anchor) on ballot instances n = 3..5, sequentially
//    and with worker threads, both query-by-query and through the full
//    Theorem 1 adversary.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <optional>
#include <tuple>
#include <vector>

#include "bound/adversary.hpp"
#include "bound/valency.hpp"
#include "consensus/ballot.hpp"
#include "consensus/racing.hpp"
#include "sim/canonical.hpp"
#include "sim/engine.hpp"
#include "sim/reach_graph.hpp"
#include "util/rng.hpp"

namespace tsb::bound {
namespace {

using consensus::BallotConsensus;
using consensus::RacingConsensus;
using sim::ProcPerm;
using sim::Value;

std::vector<std::vector<int>> all_permutations(int n) {
  std::vector<int> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  std::vector<std::vector<int>> out;
  do {
    out.push_back(p);
  } while (std::next_permutation(p.begin(), p.end()));
  return out;
}

TEST(ProcPerm, IdentityInverseComposeAndSetImage) {
  EXPECT_TRUE(ProcPerm::identity().is_identity());
  ProcPerm pi;
  pi.set(0, 2);
  pi.set(1, 0);
  pi.set(2, 1);
  EXPECT_EQ(pi(0), 2);
  EXPECT_EQ(pi(1), 0);
  EXPECT_EQ(pi(2), 1);
  EXPECT_FALSE(pi.is_identity());

  const ProcPerm inv = pi.inverse();
  EXPECT_TRUE(ProcPerm::compose(pi, inv).is_identity());
  EXPECT_TRUE(ProcPerm::compose(inv, pi).is_identity());

  // compose(a, b)(p) == b(a(p)).
  ProcPerm rho;
  rho.set(0, 1);
  rho.set(1, 0);
  const ProcPerm both = ProcPerm::compose(pi, rho);
  for (int p = 0; p < ProcPerm::kMaxProcs; ++p) {
    EXPECT_EQ(both(p), rho(pi(p)));
  }

  EXPECT_EQ(pi.apply(ProcSet::single(0)), ProcSet::single(2));
  EXPECT_EQ(pi.apply(ProcSet::single(1).with(2)),
            ProcSet::single(0).with(1));
}

TEST(Canonicalize, SortedFormInvariantUnderAllRenamings) {
  util::Rng rng(23);
  for (int n = 1; n <= 4; ++n) {
    const auto perms = all_permutations(n);
    for (int trial = 0; trial < 25; ++trial) {
      std::vector<Value> orig(static_cast<std::size_t>(n));
      for (Value& s : orig) {
        // Small alphabet (including the nil state) so duplicate runs and
        // ties — the cases stable sorting exists for — actually occur.
        s = static_cast<Value>(rng.range(-1, 2));
      }

      std::vector<Value> canon = orig;
      const ProcPerm pi0 = sim::canonicalize_states(canon.data(), n);
      EXPECT_TRUE(std::is_sorted(canon.begin(), canon.end()));
      for (int p = 0; p < n; ++p) {
        // Contract: sorted[pi(p)] == original state of p.
        EXPECT_EQ(canon[static_cast<std::size_t>(pi0(p))], orig[p]);
      }

      for (const auto& perm : perms) {
        // Renamed configuration: process p moves to slot perm[p].
        std::vector<Value> renamed(static_cast<std::size_t>(n));
        for (int p = 0; p < n; ++p) {
          renamed[static_cast<std::size_t>(perm[p])] = orig[p];
        }
        const ProcPerm pi = sim::canonicalize_states(renamed.data(), n);
        EXPECT_EQ(renamed, canon) << "orbit members canonicalize apart";
        for (int p = 0; p < n; ++p) {
          EXPECT_EQ(renamed[static_cast<std::size_t>(pi(perm[p]))], orig[p]);
        }
      }
    }
  }
}

TEST(Canonicalize, RefineProcsetOrbitRoundTrips) {
  util::Rng rng(31);
  for (int n = 2; n <= 4; ++n) {
    for (int trial = 0; trial < 25; ++trial) {
      std::vector<Value> sorted(static_cast<std::size_t>(n));
      for (Value& s : sorted) s = static_cast<Value>(rng.range(0, 1));
      std::sort(sorted.begin(), sorted.end());

      for (std::uint64_t bits = 1; bits < (1ull << n); ++bits) {
        const ProcSet p{bits};
        ProcSet canonical;
        const ProcPerm tau =
            sim::refine_procset(sorted.data(), n, p, &canonical);

        // tau maps the queried set onto the canonical member set...
        EXPECT_EQ(tau.apply(p), canonical);
        // ...while fixing the sorted configuration (it only permutes
        // within runs of equal states)...
        for (int q = 0; q < n; ++q) {
          EXPECT_EQ(sorted[static_cast<std::size_t>(tau(q))], sorted[q]);
        }
        // ...and round-trips: tau^-1 maps the representative back.
        EXPECT_EQ(tau.inverse().apply(canonical), p);
        EXPECT_EQ(canonical.size(), p.size());

        // The representative is a fixpoint: refining it is the identity
        // on the set.
        ProcSet again;
        sim::refine_procset(sorted.data(), n, canonical, &again);
        EXPECT_EQ(again, canonical);
      }
    }
  }
}

// Renamed configuration of a symmetric protocol: process p moves to slot
// perm[p]; registers are global and untouched.
Config rename_config(const Config& c, const std::vector<int>& perm) {
  Config out = c;
  for (std::size_t p = 0; p < perm.size(); ++p) {
    out.states[static_cast<std::size_t>(perm[p])] = c.states[p];
  }
  return out;
}

ProcSet rename_set(ProcSet s, const std::vector<int>& perm) {
  std::uint64_t bits = 0;
  s.for_each([&](int p) { bits |= 1ull << perm[static_cast<std::size_t>(p)]; });
  return ProcSet{bits};
}

TEST(Canonicalize, OracleRunsOneExplorationPerOrbit) {
  // RacingConsensus is process-oblivious (symmetric() == true), so every
  // renaming of a (config, procset) query is the SAME canonical pair: the
  // first query explores, all 3! - 1 renamed variants must be memo hits
  // with identical verdicts.
  RacingConsensus proto(3);
  ASSERT_TRUE(proto.symmetric());
  ValencyOracle oracle(proto);
  ASSERT_TRUE(oracle.reuse_enabled());

  const Config c = sim::initial_config(proto, {0, 1, 1});
  const ProcSet p = ProcSet::single(0).with(1);
  const bool base[2] = {oracle.can_decide(c, p, 0),
                        oracle.can_decide(c, p, 1)};
  EXPECT_EQ(oracle.explorations(), 1u);
  EXPECT_TRUE(oracle.engine_symmetric());

  for (const auto& perm : all_permutations(3)) {
    const Config d = rename_config(c, perm);
    const ProcSet q = rename_set(p, perm);
    EXPECT_EQ(oracle.can_decide(d, q, 0), base[0]);
    EXPECT_EQ(oracle.can_decide(d, q, 1), base[1]);
  }
  EXPECT_EQ(oracle.explorations(), 1u)
      << "a renamed query escaped the orbit memo";
  EXPECT_GE(oracle.cache_hits(), 6u);
}

TEST(Canonicalize, EqualStateProcessesShareTheOrbitMemo) {
  // Processes 0 and 1 start with the same input, hence the same state:
  // ({C}, {0}) and ({C}, {1}) are one orbit even without renaming the
  // configuration. refine_procset is what merges them.
  RacingConsensus proto(3);
  ValencyOracle oracle(proto);
  const Config c = sim::initial_config(proto, {0, 0, 1});

  const bool a = oracle.can_decide(c, ProcSet::single(0), 0);
  EXPECT_EQ(oracle.explorations(), 1u);
  const bool b = oracle.can_decide(c, ProcSet::single(1), 0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(oracle.explorations(), 1u) << "equal-state singleton missed";
  // The distinct-state process is a genuinely different query.
  oracle.can_decide(c, ProcSet::single(2), 0);
  EXPECT_EQ(oracle.explorations(), 2u);
}

TEST(Canonicalize, WitnessesReplayAfterDecanonicalization) {
  // Witnesses come out of the engine in the canonical frame; the oracle
  // must hand back schedules in the CALLER's frame. Replay each one
  // through the raw engine from the original (un-renamed) configuration.
  RacingConsensus proto(3);
  ValencyOracle oracle(proto);
  util::Rng rng(47);

  Config c = sim::initial_config(proto, {1, 0, 0});
  for (int step_count = 0; step_count < 10; ++step_count) {
    for (std::uint64_t bits = 1; bits < (1ull << 3); ++bits) {
      const ProcSet p{bits};
      for (Value v : {0, 1}) {
        if (!oracle.can_decide(c, p, v)) continue;
        const std::optional<sim::Schedule> w =
            oracle.deciding_schedule(c, p, v);
        ASSERT_TRUE(w.has_value());
        EXPECT_TRUE(w->only(p)) << "witness steps outside P";
        const Config end = sim::run(proto, c, *w);
        EXPECT_TRUE(sim::some_decided(proto, end, v))
            << "de-canonicalized witness does not decide " << v;
      }
    }
    c = sim::step(proto, c, static_cast<int>(rng.below(3)));
  }
}

TEST(FactAnswers, DrainedPassAnswersRepeatAndPrefixQueriesForFree) {
  // A drained exhaustive pass persists per-node decided-value facts. A
  // repeat of the same query — and a query from any configuration the
  // pass visited — must be answered purely from facts: zero expansion.
  BallotConsensus proto(3, 9);
  sim::ReachGraph graph(proto, {});
  const Config c = sim::initial_config(proto, {1, 1, 1});
  const ProcSet p = ProcSet::single(1).with(2);

  ProcPerm pi;
  const auto first = graph.query(c, p, &pi);
  EXPECT_FALSE(first.truncated);
  EXPECT_FALSE(first.from_facts);
  EXPECT_GT(first.expanded, 0u);
  EXPECT_TRUE(first.can[1]);   // uniform inputs: univalent on 1
  EXPECT_FALSE(first.can[0]);

  const auto again = graph.query(c, p, &pi);
  EXPECT_TRUE(again.from_facts);
  EXPECT_EQ(again.expanded, 0u);
  EXPECT_EQ(again.can[0], first.can[0]);
  EXPECT_EQ(again.can[1], first.can[1]);
  EXPECT_EQ(graph.fact_answers(), 1u);

  // One P-step deeper: still inside the facted subgraph.
  const Config c2 = sim::step(proto, c, 1);
  const auto prefix = graph.query(c2, p, &pi);
  EXPECT_TRUE(prefix.from_facts);
  EXPECT_EQ(prefix.expanded, 0u);
  EXPECT_TRUE(prefix.can[1]);
}

// --- differential: shared-subgraph engine vs fresh-BFS anchor ------------

class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  int n() const { return std::get<0>(GetParam()); }
  int threads() const { return std::get<1>(GetParam()); }
};

TEST_P(DifferentialTest, SharedEngineMatchesFreshBfsQueryByQuery) {
  BallotConsensus proto(n(), 3 * n());
  ValencyOracle shared(proto, {.threads = threads(), .reuse = true});
  ValencyOracle fresh(proto, {.threads = threads(), .reuse = false});
  util::Rng rng(101 + static_cast<std::uint64_t>(n()));

  std::vector<Value> inputs(static_cast<std::size_t>(n()), 0);
  inputs[0] = 1;
  Config c = sim::initial_config(proto, inputs);

  std::vector<ProcSet> sets;
  for (int p = 0; p < n(); ++p) sets.push_back(ProcSet::single(p));
  if (n() <= 4) {
    sets.push_back(ProcSet::first_n(n()));
    sets.push_back(ProcSet::first_n(n()).without(0));
    sets.push_back(ProcSet::first_n(n()).without(n() - 1));
  } else {
    // At n = 5 an everyone-query explores the full reachable space and
    // trips the 2M-config cap; stick to the |P| <= 3 sets the adversary's
    // lemma loops actually ask about.
    sets.push_back(ProcSet::single(0).with(1));
    sets.push_back(ProcSet::single(n() - 2).with(n() - 1));
    sets.push_back(ProcSet::single(0).with(1).with(2));
    sets.push_back(ProcSet::single(2).with(3).with(4));
  }

  for (int step_count = 0; step_count < 8; ++step_count) {
    for (const ProcSet p : sets) {
      for (Value v : {0, 1}) {
        const bool want = fresh.can_decide(c, p, v);
        ASSERT_EQ(shared.can_decide(c, p, v), want)
            << "verdict diverged at n=" << n() << " step=" << step_count
            << " P=" << p.to_string() << " v=" << v;
        if (!want) continue;
        // Both backends must also produce REPLAYABLE witnesses (they may
        // legitimately differ schedule-for-schedule).
        for (ValencyOracle* o : {&shared, &fresh}) {
          const auto w = o->deciding_schedule(c, p, v);
          ASSERT_TRUE(w.has_value());
          EXPECT_TRUE(
              sim::some_decided(proto, sim::run(proto, c, *w), v));
        }
      }
    }
    c = sim::step(proto, c, static_cast<int>(
                                rng.below(static_cast<std::uint64_t>(n()))));
  }
  EXPECT_FALSE(shared.ever_truncated());
  EXPECT_FALSE(fresh.ever_truncated());
  EXPECT_GT(shared.edges_reused(), 0u);
  EXPECT_EQ(fresh.edges_expanded(), 0u);
}

TEST_P(DifferentialTest, AdversaryCertifiesIdenticallyInBothModes) {
  BallotConsensus proto(n(), 3 * n());
  SpaceBoundAdversary::Options opts;
  opts.threads = threads();

  opts.reuse = true;
  const auto with_reuse = SpaceBoundAdversary(proto, opts).run();
  opts.reuse = false;
  const auto without = SpaceBoundAdversary(proto, opts).run();

  ASSERT_TRUE(with_reuse.ok) << with_reuse.error;
  ASSERT_TRUE(without.ok) << without.error;
  EXPECT_EQ(with_reuse.check.distinct_registers, n() - 1);
  EXPECT_EQ(without.check.distinct_registers, n() - 1);
  // The constructions walk the same lemma decision tree, so the verdict
  // stream — and with it the certificate — must agree exactly.
  EXPECT_EQ(with_reuse.certificate.schedule, without.certificate.schedule);
  EXPECT_EQ(with_reuse.certificate.covering, without.certificate.covering);
  EXPECT_EQ(with_reuse.valency_queries, without.valency_queries);
  EXPECT_GT(with_reuse.reach_reused, 0u);
  EXPECT_EQ(without.reach_expanded, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Ballot, DifferentialTest,
    ::testing::Combine(::testing::Values(3, 4, 5), ::testing::Values(1, 2)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "t" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tsb::bound
