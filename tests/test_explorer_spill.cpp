// Out-of-core arena spilling: cold segments are delta/varint-compressed to
// an unlinked backing file and read back through mmap on demand. Nothing
// about the enumeration may change — the spilled explorer must produce the
// same visited set, the same verdicts, and witnesses that replay, while
// the memory ledger attributes the bytes that left RAM. Tiny segment
// hints force multi-segment spilling on test-sized runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "consensus/ballot.hpp"
#include "obs/obs.hpp"
#include "sim/config_arena.hpp"
#include "sim/engine.hpp"
#include "sim/explorer.hpp"
#include "sim/parallel_explorer.hpp"

namespace tsb::sim {
namespace {

// Deterministic synthetic word patterns (valid for the codec regardless of
// protocol meaning: the spill layer stores opaque fixed-width words).
std::vector<Value> synth_words(std::size_t words, std::uint64_t seed) {
  std::vector<Value> w(words);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (std::size_t i = 0; i < words; ++i) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    // Small magnitudes dominate real configurations; mix in a few wild
    // values so the zigzag/varint paths see long deltas too.
    w[i] = (x & 0xF) == 0 ? static_cast<Value>(x >> 20)
                          : static_cast<Value>(x & 0x3F);
  }
  return w;
}

TEST(ArenaSpill, SpilledSegmentsDecodeBitExact) {
  ConfigArena arena(4, 4);
  ASSERT_TRUE(arena.set_spill(::testing::TempDir(), 0, 64));
  const std::size_t W = arena.words_per_config();

  std::vector<std::vector<Value>> expect;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    expect.push_back(synth_words(W, i));
    const ConfigId id = arena.append_words(expect.back().data());
    ASSERT_EQ(id, static_cast<ConfigId>(i));
  }
  ASSERT_TRUE(arena.spill_needed(arena.size()));
  const std::size_t released = arena.maybe_spill(kNoConfig);
  EXPECT_GT(released, 0u);
  EXPECT_GT(arena.spilled_segments(), 0u);
  EXPECT_GT(arena.spilled_bytes(), 0u);
  EXPECT_EQ(arena.spill_failures(), 0u);
  // Compression must beat the raw encoding on this correlated data.
  EXPECT_LT(arena.spilled_bytes(),
            arena.spilled_segments() * arena.segment_configs() * W *
                sizeof(Value));

  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(arena.words_equal(arena.words(static_cast<ConfigId>(i)),
                                  expect[i].data()))
        << "id " << i << " decoded differently after spilling";
  }
}

TEST(ArenaSpill, DedupProbesCompareThroughSpilledSegments) {
  ConfigArena arena(4, 4);
  ASSERT_TRUE(arena.set_spill(::testing::TempDir(), 0, 64));
  const std::size_t W = arena.words_per_config();

  std::vector<ConfigId> ids;
  for (std::uint64_t i = 0; i < 500; ++i) {
    const auto w = synth_words(W, i);
    std::memcpy(arena.scratch(), w.data(), W * sizeof(Value));
    const auto [id, inserted] = arena.intern_scratch();
    ASSERT_TRUE(inserted);
    ids.push_back(id);
  }
  ASSERT_GT(arena.maybe_spill(kNoConfig), 0u);

  // Re-interning every configuration must dedup against spilled words.
  for (std::uint64_t i = 0; i < 500; ++i) {
    const auto w = synth_words(W, i);
    std::memcpy(arena.scratch(), w.data(), W * sizeof(Value));
    const auto [id, inserted] = arena.intern_scratch();
    EXPECT_FALSE(inserted) << "seed " << i;
    EXPECT_EQ(id, ids[i]);
  }
}

TEST(ArenaSpill, ClearRearmsSpilledSegmentsForReuse) {
  ConfigArena arena(4, 4);
  ASSERT_TRUE(arena.set_spill(::testing::TempDir(), 0, 64));
  const std::size_t W = arena.words_per_config();

  for (std::uint64_t i = 0; i < 300; ++i) {
    arena.append_words(synth_words(W, i).data());
  }
  ASSERT_GT(arena.maybe_spill(kNoConfig), 0u);
  arena.clear();
  EXPECT_EQ(arena.size(), 0u);
  EXPECT_EQ(arena.spilled_bytes(), 0u);

  // Second generation with different contents: the re-armed segments must
  // hold and spill the new words correctly.
  std::vector<std::vector<Value>> expect;
  for (std::uint64_t i = 0; i < 300; ++i) {
    expect.push_back(synth_words(W, 7'000 + i));
    arena.append_words(expect.back().data());
  }
  ASSERT_GT(arena.maybe_spill(kNoConfig), 0u);
  for (std::uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(arena.words_equal(arena.words(static_cast<ConfigId>(i)),
                                  expect[i].data()))
        << "id " << i;
  }
}

struct SetSnapshot {
  std::vector<std::vector<Value>> packed;
  ExploreResult result;
};

template <typename ExplorerT>
SetSnapshot set_snapshot(const Protocol& proto, ExplorerT& explorer,
                         const Config& root, ProcSet p) {
  ConfigArena packer(proto.num_processes(), proto.num_registers());
  SetSnapshot s;
  s.result = explorer.explore(root, p, [&](const ConfigView& c) {
    const Config cfg = c.materialize();
    packer.pack(cfg, packer.scratch());
    s.packed.emplace_back(packer.scratch(),
                          packer.scratch() + packer.words_per_config());
    return true;
  });
  std::sort(s.packed.begin(), s.packed.end());
  return s;
}

TEST(ExplorerSpill, SequentialSpillRunMatchesAllInRam) {
  consensus::BallotConsensus proto(3, 6);
  const Config root = initial_config(proto, {0, 1, 1});
  const ProcSet everyone = ProcSet::first_n(3);

  Explorer plain(proto);
  const SetSnapshot expected = set_snapshot(proto, plain, root, everyone);
  ASSERT_FALSE(expected.result.truncated);

  obs::MemLedger::global().reset();
  Explorer spilly(proto);
  // Threshold well below the space's footprint + tiny segments: the run
  // must spill repeatedly and still enumerate the identical set.
  ASSERT_TRUE(spilly.set_spill(::testing::TempDir(), 1 << 14, 256));
  const SetSnapshot got = set_snapshot(proto, spilly, root, everyone);

  EXPECT_EQ(expected.result.visited, got.result.visited);
  EXPECT_EQ(expected.result.truncated, got.result.truncated);
  EXPECT_EQ(expected.packed, got.packed);
  EXPECT_GT(obs::MemLedger::global().peak(obs::MemAccount::kArenaSpill), 0u)
      << "run never spilled: the threshold/segment hint is miscalibrated";
}

TEST(ExplorerSpill, WorkStealingSpillRunMatchesAllInRamAcrossThreads) {
  consensus::BallotConsensus proto(3, 6);
  const Config root = initial_config(proto, {1, 0, 1});
  const ProcSet everyone = ProcSet::first_n(3);

  Explorer plain(proto);
  const SetSnapshot expected = set_snapshot(proto, plain, root, everyone);
  ASSERT_FALSE(expected.result.truncated);

  for (int threads : {1, 2, 4}) {
    obs::MemLedger::global().reset();
    ParallelExplorer par(proto, {.threads = threads,
                                 .chunk_configs = 16,
                                 .parallel_threshold = 64});
    ASSERT_TRUE(par.set_spill(::testing::TempDir(), 1 << 14, 256));
    const SetSnapshot got = set_snapshot(proto, par, root, everyone);
    EXPECT_EQ(expected.result.visited, got.result.visited) << threads;
    EXPECT_EQ(expected.result.truncated, got.result.truncated);
    EXPECT_EQ(expected.packed, got.packed) << threads << " threads";
    EXPECT_GT(obs::MemLedger::global().peak(obs::MemAccount::kArenaSpill),
              0u)
        << threads << " threads never spilled";
  }
}

TEST(ExplorerSpill, WitnessesReplayThroughSpilledSegments) {
  consensus::BallotConsensus proto(3, 6);
  const Config root = initial_config(proto, {0, 1, 0});
  const ProcSet everyone = ProcSet::first_n(3);

  ParallelExplorer par(proto, {.threads = 4,
                               .chunk_configs = 16,
                               .parallel_threshold = 64});
  ASSERT_TRUE(par.set_spill(::testing::TempDir(), 1 << 14, 256));
  std::vector<ConfigId> seen;
  auto result = par.explore(root, everyone, [&](const ConfigView& c) {
    seen.push_back(c.id);
    return true;
  });
  ASSERT_FALSE(result.aborted);
  ASSERT_GT(seen.size(), 100u);

  // Witness reconstruction and view() must read through spilled segments.
  for (std::size_t i = 0; i < seen.size(); i += seen.size() / 32 + 1) {
    const ConfigId id = seen[i];
    const auto w = par.witness_by_id(id);
    ASSERT_TRUE(w.has_value()) << "id " << id;
    EXPECT_EQ(run(proto, root, *w), par.view(id).materialize())
        << "witness for id " << id;
  }
}

TEST(ExplorerSpill, CappedSpillRunStaysSoundUnderTruncation) {
  // Budget-style truncation with spilling active: never more than the
  // cap, no duplicate visits, truncated verdict set — exit-4 semantics
  // (prove positives, never negatives) survive going out of core.
  consensus::BallotConsensus proto(4, 8);
  const Config root = initial_config(proto, {0, 1, 1, 0});
  const ProcSet everyone = ProcSet::first_n(4);
  const std::size_t cap = 20'000;

  ParallelExplorer par(proto, {.max_configs = cap,
                               .threads = 4,
                               .chunk_configs = 32,
                               .parallel_threshold = 256});
  ASSERT_TRUE(par.set_spill(::testing::TempDir(), 1 << 15, 512));
  const SetSnapshot got = set_snapshot(proto, par, root, everyone);
  EXPECT_TRUE(got.result.truncated);
  EXPECT_LE(got.result.visited, cap);
  EXPECT_EQ(got.packed.size(), got.result.visited);
  EXPECT_EQ(std::adjacent_find(got.packed.begin(), got.packed.end()),
            got.packed.end())
      << "a configuration was visited twice";
}

}  // namespace
}  // namespace tsb::sim
